package rbmim

import "testing"

func TestFacadeDetectorRoundTrip(t *testing.T) {
	gen, err := NewRBF(GeneratorConfig{Features: 8, Classes: 3, Seed: 1}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(DetectorConfig{Features: 8, Classes: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		in := gen.Next()
		st := det.Update(Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y})
		if st != None && st != Warning && st != Drift {
			t.Fatalf("unexpected state %v", st)
		}
	}
	if det.Name() != "RBM-IM" {
		t.Fatalf("detector name %q", det.Name())
	}
}

func TestFacadeReferenceDetectors(t *testing.T) {
	dets := []Detector{
		NewDDM(), NewEDDM(), NewRDDM(), NewADWIN(), NewHDDMA(), NewFHDDM(),
		NewWSTD(0, 0, 0, 0), NewPerfSim(4), NewDDMOCI(4),
	}
	for _, d := range dets {
		for i := 0; i < 200; i++ {
			d.Update(Observation{TrueClass: i % 4, Predicted: i % 4})
		}
		d.Reset()
	}
}

func TestFacadeStreamComposition(t *testing.T) {
	before, err := NewRandomTree(GeneratorConfig{Features: 6, Classes: 4, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRandomTree(GeneratorConfig{Features: 6, Classes: 4, Seed: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	drift := NewDriftStream(before, after, SuddenDrift, 500, 0, 5)
	skewed := NewImbalanced(drift, 50, 6)
	local := NewLocalDriftInjector(skewed, []int{3}, SuddenDrift, 800, 0, 7)
	for i := 0; i < 1000; i++ {
		in := local.Next()
		if in.Y < 0 || in.Y >= 4 {
			t.Fatalf("label out of range: %d", in.Y)
		}
	}
}

func TestFacadePipelineAndBenchmarks(t *testing.T) {
	benches := Benchmarks()
	if len(benches) != 24 {
		t.Fatalf("want 24 benchmarks, got %d", len(benches))
	}
	specs := RealWorldSpecs()
	if len(specs) != 12 {
		t.Fatalf("want 12 real-world specs, got %d", len(specs))
	}
	s, n, err := benches[5].Build(0.002, 9) // EEG surrogate
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(DetectorConfig{Features: s.Schema().Features, Classes: s.Schema().Classes})
	if err != nil {
		t.Fatal(err)
	}
	res := RunPipeline(s, det, PipelineConfig{Instances: n, MetricWindow: 500})
	if res.PMAUC <= 0 || res.PMAUC > 100 {
		t.Fatalf("pmAUC out of range: %v", res.PMAUC)
	}
}

func TestFacadeDynamicImbalance(t *testing.T) {
	base, err := NewRBF(GeneratorConfig{Features: 5, Classes: 4, Seed: 10}, 2, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	s := NewDynamicImbalance(base, 10, 100, 2000, 1000, 11)
	// Measure within a single role-switch window: over full rotation cycles
	// the aggregate counts equalize by design (each class takes each role).
	counts := make([]int, 4)
	for i := 0; i < 900; i++ {
		counts[s.Next().Y]++
	}
	max, min := counts[0], counts[0]
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if min == 0 {
		min = 1
	}
	if max/min < 3 {
		t.Fatalf("dynamic imbalance not visible: counts=%v", counts)
	}
}
