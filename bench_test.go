package rbmim

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus micro-benchmarks of the core primitives.
// The table/figure benches run the same code paths as the cmd/ tools at a
// reduced scale (BENCH_SCALE below), printing the reproduced rows/series via
// b.Log when run with -v:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable3 -v          # also prints the table
//
// Full-size regeneration is the cmd/ tools' job (e.g. cmd/driftbench
// -scale 1.0); the benches exist to (a) keep every experiment executable
// under `go test -bench`, and (b) measure the cost of each experiment's
// inner loops.

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/eval"
	"rbmim/internal/monitor"
	"rbmim/internal/realworld"
	"rbmim/internal/stats"
	"rbmim/internal/synth"
)

// benchScale keeps the per-iteration work of the experiment benches around a
// few seconds on a laptop.
const benchScale = 0.002

// BenchmarkTableI regenerates the benchmark-properties table (Table I): it
// measures full construction and a 2k-instance draw of every one of the 24
// streams.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bench := range eval.AllBenchmarks() {
			s, _, err := bench.Build(benchScale, 42)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 2000; j++ {
				s.Next()
			}
		}
	}
}

// BenchmarkTable3 regenerates Experiment 1 (Table III) on a stream subset:
// all six detectors over a mixed real/artificial pair of benchmarks, with
// Friedman ranks.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := eval.RunTable3(eval.Table3Config{
			Scale:        benchScale,
			Seed:         42,
			MetricWindow: 500,
			Benchmarks:   []string{"EEG", "RBF5"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			eval.WriteTable3(logWriter{b}, out)
		}
	}
}

// BenchmarkFig4Ranks regenerates the Bonferroni-Dunn rank analysis of
// Figures 4-5 from a Table III run.
func BenchmarkFig4Ranks(b *testing.B) {
	out, err := eval.RunTable3(eval.Table3Config{
		Scale:        benchScale,
		Seed:         42,
		MetricWindow: 500,
		Benchmarks:   []string{"EEG", "RBF5", "Hyperplane5", "Aggrawal5"},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores := make([][]float64, len(out.Rows))
		for r, row := range out.Rows {
			scores[r] = make([]float64, len(row.Results))
			for c, res := range row.Results {
				scores[r][c] = res.PMAUC
			}
		}
		fr := stats.Friedman(scores)
		cd := stats.BonferroniDunnCD(len(out.Detectors), len(out.Rows), 0.05)
		if i == 0 && testing.Verbose() {
			b.Logf("ranks=%v chi2=%.3f CD=%.3f", fr.AvgRanks, fr.ChiSquare, cd)
		}
	}
}

// BenchmarkFig6Bayes regenerates the Bayesian signed test of Figures 6-7
// (RBM-IM vs PerfSim under pmAUC).
func BenchmarkFig6Bayes(b *testing.B) {
	out, err := eval.RunTable3(eval.Table3Config{
		Scale:        benchScale,
		Seed:         42,
		MetricWindow: 500,
		Benchmarks:   []string{"EEG", "RBF5", "Hyperplane5", "Aggrawal5"},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eval.WriteBayesianComparison(io.Discard, out, "PerfSim", "RBM-IM", "pmauc", 1.0, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8LocalDrift regenerates one panel of Experiment 2 (Figure 8):
// the local-drift sweep on RBF10 with 1 and 10 drifted classes.
func BenchmarkFig8LocalDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := eval.RunLocalDriftSweep(eval.SweepConfig{
			Scale:        benchScale,
			Seed:         42,
			MetricWindow: 500,
			Benchmarks:   []string{"RBF10"},
			Values:       []int{1, 10},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			eval.WriteSweep(logWriter{b}, out, "classes")
		}
	}
}

// BenchmarkFig9Imbalance regenerates one panel of Experiment 3 (Figure 9):
// the imbalance-ratio sweep on Hyperplane10 at IR 50 and 500.
func BenchmarkFig9Imbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := eval.RunImbalanceSweep(eval.SweepConfig{
			Scale:        benchScale,
			Seed:         42,
			MetricWindow: 500,
			Benchmarks:   []string{"Hyperplane10"},
			Values:       []int{50, 500},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			eval.WriteSweep(logWriter{b}, out, "IR")
		}
	}
}

// BenchmarkDetectorUpdate measures the per-instance cost of every detector
// (the "test time" row of Table III) on a 20-feature 5-class stream.
func BenchmarkDetectorUpdate(b *testing.B) {
	gen, err := synth.NewRBF(synth.Config{Features: 20, Classes: 5, Seed: 3}, 3, 0.08)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-draw observations so stream cost is excluded.
	obs := make([]detectors.Observation, 4096)
	for i := range obs {
		in := gen.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	fax := eval.PaperDetectors(20)
	fax = append(fax, eval.ExtraDetectors()...)
	for _, f := range fax {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			det := f.New(5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.Update(obs[i%len(obs)])
			}
		})
	}
}

// BenchmarkDetectorUpdateBatch compares RBM-IM's per-instance Update loop
// against its native batched path (detectors.BatchDetector) on 256-
// observation blocks. ns/op is per block; the ns/obs metric is comparable
// across the two sub-benches. Both paths are allocation-free in steady
// state; the batched path additionally skips TrainBatch's discarded
// pre-update scoring pass and the per-observation interface dispatch.
func BenchmarkDetectorUpdateBatch(b *testing.B) {
	const block = 256
	gen, err := synth.NewRBF(synth.Config{Features: 20, Classes: 5, Seed: 3}, 3, 0.08)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]detectors.Observation, 4096)
	for i := range obs {
		in := gen.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	newDet := func() detectors.Detector {
		return eval.PaperDetectors(20)[5].New(5) // RBM-IM
	}
	perObs := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/block, "ns/obs")
	}
	b.Run("perInstance", func(b *testing.B) {
		det := newDet()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := (i * block) % len(obs)
			for j := 0; j < block; j++ {
				det.Update(obs[base+j])
			}
		}
		perObs(b)
	})
	b.Run("batch256", func(b *testing.B) {
		det := newDet()
		states := make([]detectors.State, block)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := (i * block) % len(obs)
			detectors.UpdateBatch(det, obs[base:base+block], states)
		}
		perObs(b)
	})
}

// BenchmarkRBMTrainBatch measures one CD-1 mini-batch update at the paper's
// default batch size for three stream widths.
func BenchmarkRBMTrainBatch(b *testing.B) {
	for _, width := range []int{20, 40, 80} {
		width := width
		b.Run(map[int]string{20: "20features", 40: "40features", 80: "80features"}[width], func(b *testing.B) {
			rbm, err := core.NewRBM(core.RBMConfig{
				Visible: width, Hidden: 2 * width, Classes: 10,
				LearningRate: 0.5, Momentum: 0.9, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			gen, err := synth.NewRBF(synth.Config{Features: width, Classes: 10, Seed: 5}, 3, 0.08)
			if err != nil {
				b.Fatal(err)
			}
			xs := make([][]float64, 50)
			ys := make([]int, 50)
			for i := range xs {
				in := gen.Next()
				xs[i] = in.X
				ys[i] = in.Y
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rbm.TrainBatch(xs, ys)
			}
		})
	}
}

// BenchmarkReconstructionError measures the per-instance scoring cost of the
// trained RBM (the detector's hot path).
func BenchmarkReconstructionError(b *testing.B) {
	rbm, err := core.NewRBM(core.RBMConfig{Visible: 40, Hidden: 80, Classes: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 40)
	for i := range x {
		x[i] = float64(i) / 40
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rbm.ReconstructionError(x, i%10)
	}
}

// BenchmarkClassifier measures the base learner's predict+train cycle.
func BenchmarkClassifier(b *testing.B) {
	gen, err := synth.NewRBF(synth.Config{Features: 20, Classes: 10, Seed: 9}, 3, 0.08)
	if err != nil {
		b.Fatal(err)
	}
	ins := make([]Instance, 4096)
	for i := range ins {
		ins[i] = gen.Next()
	}
	tree := newBenchTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := ins[i%len(ins)]
		tree.Predict(in.X)
		tree.Train(in.X, in.Y)
	}
}

// BenchmarkStreamGenerators measures raw generation cost per family.
func BenchmarkStreamGenerators(b *testing.B) {
	cfg := synth.Config{Features: 40, Classes: 10, Seed: 2}
	hyp, _ := synth.NewHyperplane(cfg, 0)
	rbf, _ := synth.NewRBF(cfg, 3, 0.08)
	tree, _ := synth.NewRandomTree(cfg, 0)
	agr, _ := synth.NewAgrawal(cfg, 0)
	for _, tc := range []struct {
		name string
		s    Stream
	}{{"Hyperplane", hyp}, {"RBF", rbf}, {"RandomTree", tree}, {"Agrawal", agr}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc.s.Next()
			}
		})
	}
}

// BenchmarkRealWorldSurrogates measures the composed surrogate streams
// (generator + drift orchestration + imbalance wrapper).
func BenchmarkRealWorldSurrogates(b *testing.B) {
	for _, name := range []string{"EEG", "Covertype", "IntelSensors"} {
		name := name
		b.Run(name, func(b *testing.B) {
			spec, err := realworld.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			s, n, err := spec.Build(1, 3)
			if err != nil {
				b.Fatal(err)
			}
			drawn := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if drawn == n {
					// b.N can exceed the stream's full Table I length
					// (e.g. EEG is only ~15k instances): restart it.
					b.StopTimer()
					s, n, err = spec.Build(1, 3)
					if err != nil {
						b.Fatal(err)
					}
					drawn = 0
					b.StartTimer()
				}
				s.Next()
				drawn++
			}
		})
	}
}

// BenchmarkAblationAdaptiveWindow compares RBM-IM with and without the
// ADWIN-driven self-adaptive window (the design choice called out in
// DESIGN.md) on a sudden-drift pipeline.
func BenchmarkAblationAdaptiveWindow(b *testing.B) {
	for _, adaptive := range []bool{true, false} {
		adaptive := adaptive
		name := "adaptive"
		if !adaptive {
			name = "fixed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, err := eval.ArtificialByName("RBF5")
				if err != nil {
					b.Fatal(err)
				}
				s, n, err := spec.Build(eval.BuildOptions{Scale: benchScale, Seed: 21})
				if err != nil {
					b.Fatal(err)
				}
				det, err := core.NewDetector(core.Config{
					Features:       s.Schema().Features,
					Classes:        s.Schema().Classes,
					AdaptiveWindow: adaptive,
					Seed:           22,
				})
				if err != nil {
					b.Fatal(err)
				}
				res := eval.RunPipeline(s, det, eval.PipelineConfig{Instances: n, MetricWindow: 500, Seed: 23})
				if i == 0 && testing.Verbose() {
					b.Logf("%s: pmAUC=%.2f TP=%d FA=%d", name, res.PMAUC, res.TruePositives, res.FalseAlarms)
				}
			}
		})
	}
}

// BenchmarkAblationSkewInsensitiveLoss compares the class-balanced loss
// (beta = 0.99) against plain unweighted CD (beta ~ 0, making every class
// weight 1) on an extremely imbalanced pipeline.
func BenchmarkAblationSkewInsensitiveLoss(b *testing.B) {
	for _, balanced := range []bool{true, false} {
		balanced := balanced
		name := "classBalanced"
		if !balanced {
			name = "unweighted"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, err := eval.ArtificialByName("RBF10")
				if err != nil {
					b.Fatal(err)
				}
				s, n, err := spec.Build(eval.BuildOptions{Scale: benchScale, Seed: 31, IROverride: 400})
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.Config{
					Features:       s.Schema().Features,
					Classes:        s.Schema().Classes,
					AdaptiveWindow: true,
					Seed:           32,
				}
				if !balanced {
					cfg.Beta = 1e-9 // effective-number weights collapse to 1
				}
				det, err := core.NewDetector(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res := eval.RunPipeline(s, det, eval.PipelineConfig{Instances: n, MetricWindow: 500, Seed: 33})
				if i == 0 && testing.Verbose() {
					b.Logf("%s: pmAUC=%.2f pmGM=%.2f", name, res.PMAUC, res.PMGM)
				}
			}
		})
	}
}

// BenchmarkMonitorIngest measures multi-stream throughput of the sharded
// Monitor at increasing shard counts: 64 independent streams fed from
// GOMAXPROCS producers via RunParallel. Throughput (ns/op = ns/observation)
// should improve with shards until the producer count or memory bandwidth
// saturates; cmd/monitorbench runs the same sweep at full scale with
// per-shard balance reporting.
func BenchmarkMonitorIngest(b *testing.B) {
	const (
		streams  = 64
		features = 20
		classes  = 5
	)
	gen, err := synth.NewRBF(synth.Config{Features: features, Classes: classes, Seed: 17}, 3, 0.08)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]detectors.Observation, 4096)
	for i := range obs {
		in := gen.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("stream-%02d", i)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("%dshards", shards), func(b *testing.B) {
			m, err := monitor.New(monitor.Config{
				Detector:  core.Config{Features: features, Classes: classes, Seed: 7},
				Shards:    shards,
				QueueSize: 4096,
			})
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for range m.Events() {
				}
			}()
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1))
				for pb.Next() {
					i++
					if err := m.Ingest(ids[i%streams], obs[i%len(obs)]); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			m.Close()
		})
	}
}

// BenchmarkMonitorIngestSingleStream measures the per-observation overhead
// the Monitor adds over a bare detector (hashing, copy, channel hop) in the
// degenerate single-stream single-shard case.
func BenchmarkMonitorIngestSingleStream(b *testing.B) {
	gen, err := synth.NewRBF(synth.Config{Features: 20, Classes: 5, Seed: 17}, 3, 0.08)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]detectors.Observation, 4096)
	for i := range obs {
		in := gen.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	m, err := monitor.New(monitor.Config{
		Detector:  core.Config{Features: 20, Classes: 5, Seed: 7},
		Shards:    1,
		QueueSize: 4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for range m.Events() {
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Ingest("only", obs[i%len(obs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m.Close()
}

// benchCountDetector is a near-free detector isolating the monitor's own
// ingestion path (hash, lock, slab copy, queue hop, shard dispatch) from
// detector cost.
type benchCountDetector struct{ n uint64 }

func (d *benchCountDetector) Update(detectors.Observation) detectors.State {
	d.n++
	return detectors.None
}
func (d *benchCountDetector) Reset()       {}
func (d *benchCountDetector) Name() string { return "count" }

// BenchmarkMonitorIngestBatch compares per-instance Ingest against
// IngestBatch at block 256 across 64 streams. ns/op is per 256-observation
// block; the ns/obs metric is comparable across sub-benches. The "overhead"
// variants host a near-free detector, isolating the monitor path that
// batching amortizes (one queue hop, one pooled slab, and one shard
// dispatch per block instead of 256); the "RBM-IM" variants show the same
// comparison under a real detector load. Steady state is 0 allocs/op (run
// with -benchmem; the first iterations warm the pools).
func BenchmarkMonitorIngestBatch(b *testing.B) {
	const (
		streams  = 64
		features = 20
		classes  = 5
		block    = 256
	)
	gen, err := synth.NewRBF(synth.Config{Features: features, Classes: classes, Seed: 17}, 3, 0.08)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]detectors.Observation, 4096)
	for i := range obs {
		in := gen.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("stream-%02d", i)
	}
	newConfig := func(name string, queue int) monitor.Config {
		if name == "overhead" {
			return monitor.Config{
				NewDetector: func(string) (detectors.Detector, error) { return &benchCountDetector{}, nil },
				Shards:      4,
				QueueSize:   queue,
			}
		}
		cfg := monitor.Config{
			Detector:  core.Config{Features: features, Classes: classes, Seed: 7},
			Shards:    4,
			QueueSize: queue,
		}
		// The tele-off variant isolates the stage-histogram cost (queue-wait
		// stamps + detector timing) for the overhead table in EXPERIMENTS.md;
		// the default variants run at full telemetry, the production level.
		if name == "RBM-IM-tele-off" {
			cfg.Telemetry = TelemetryOff
		}
		return cfg
	}
	perObs := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/block, "ns/obs")
	}
	for _, name := range []string{"overhead", "RBM-IM", "RBM-IM-tele-off"} {
		name := name
		// Both modes bound the same number of in-flight observations (4096),
		// so backpressure engages identically and the pooled slabs actually
		// recycle; the timed region includes the Close drain, making ns/obs
		// a true end-to-end throughput figure rather than producer-side cost.
		b.Run(name+"/perInstance", func(b *testing.B) {
			m, err := monitor.New(newConfig(name, 4096))
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for range m.Events() {
				}
			}()
			// Warm pools and detectors before measuring steady state.
			for s := 0; s < streams; s++ {
				for j := 0; j < block; j++ {
					if err := m.Ingest(ids[s], obs[j]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := ids[i%streams]
				base := (i * block) % len(obs)
				for j := 0; j < block; j++ {
					if err := m.Ingest(id, obs[base+j]); err != nil {
						b.Fatal(err)
					}
				}
			}
			m.Close()
			b.StopTimer()
			perObs(b)
		})
		b.Run(name+"/batch256", func(b *testing.B) {
			m, err := monitor.New(newConfig(name, 4096/block))
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for range m.Events() {
				}
			}()
			for s := 0; s < streams; s++ {
				if err := m.IngestBatch(ids[s], obs[:block]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := (i * block) % len(obs)
				if err := m.IngestBatch(ids[i%streams], obs[base:base+block]); err != nil {
					b.Fatal(err)
				}
			}
			m.Close()
			b.StopTimer()
			perObs(b)
		})
	}
}

// logWriter adapts b.Log to io.Writer for the report helpers.
type logWriter struct{ b *testing.B }

func (w logWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

// newBenchTree builds the base classifier via the internal package (the
// façade intentionally does not re-export the classifier).
func newBenchTree() interface {
	Predict([]float64) (int, []float64)
	Train([]float64, int)
} {
	return benchTreeFactory()
}

// BenchmarkMonitorCheckpoint measures what state persistence costs the
// ingest path: the single-stream single-shard Ingest loop (the monitor's
// per-observation floor) with checkpointing off, against an in-memory store
// snapshotting every 100 ms and a filesystem store at the same cadence.
// Snapshots are serialized on the shard goroutine into pooled buffers and
// written by the async writer, so ns/obs should be statistically unchanged
// and steady state stays 0 allocs/op (run with -benchmem). The ns/obs
// metric feeds scripts/benchguard against BENCH_checkpoint.json in CI.
func BenchmarkMonitorCheckpoint(b *testing.B) {
	gen, err := synth.NewRBF(synth.Config{Features: 20, Classes: 5, Seed: 17}, 3, 0.08)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]detectors.Observation, 4096)
	for i := range obs {
		in := gen.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	modes := []struct {
		name  string
		store func(b *testing.B) monitor.Store
	}{
		{"off", func(*testing.B) monitor.Store { return nil }},
		{"mem", func(*testing.B) monitor.Store { return monitor.NewMemStore() }},
		{"fs", func(b *testing.B) monitor.Store {
			store, err := monitor.NewFSStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return store
		}},
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			m, err := monitor.New(monitor.Config{
				Detector:   core.Config{Features: 20, Classes: 5, Seed: 7},
				Shards:     1,
				QueueSize:  4096,
				Checkpoint: monitor.CheckpointConfig{Store: mode.store(b), Interval: 100 * time.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for range m.Events() {
				}
			}()
			// Warm the detector, pools, and checkpoint scratch.
			for i := 0; i < 512; i++ {
				if err := m.Ingest("only", obs[i%len(obs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Ingest("only", obs[i%len(obs)]); err != nil {
					b.Fatal(err)
				}
			}
			m.Close() // the drain is part of the measured throughput
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/obs")
			if sn := m.Snapshot(); sn.CheckpointErrors != 0 {
				b.Fatalf("checkpoint errors during bench: %d", sn.CheckpointErrors)
			}
		})
	}
}

// BenchmarkDetectorSaveState measures one full RBM-IM snapshot: the
// serialization runs on the shard goroutine in production, so this is the
// per-stream pause a checkpoint tick injects between micro-batches. The
// snapshot_bytes metric records the per-stream footprint a Store holds.
func BenchmarkDetectorSaveState(b *testing.B) {
	for _, features := range []int{20, 80} {
		features := features
		b.Run(fmt.Sprintf("%dfeatures", features), func(b *testing.B) {
			det, err := core.NewDetector(core.Config{Features: features, Classes: 5, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			gen, err := synth.NewRBF(synth.Config{Features: features, Classes: 5, Seed: 3}, 3, 0.08)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 2000; i++ {
				in := gen.Next()
				det.Update(detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y})
			}
			var frame []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if frame, err = det.AppendState(frame[:0]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(frame)), "snapshot_bytes")
		})
	}
}
