package rbmim

import "rbmim/internal/classifier"

// benchTreeFactory constructs the cost-sensitive perceptron tree for the
// classifier benchmark.
func benchTreeFactory() *classifier.PerceptronTree {
	return classifier.NewPerceptronTree(20, 10, 7)
}
