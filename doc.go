// Package rbmim is a from-scratch Go reproduction of "Concept Drift
// Detection from Multi-Class Imbalanced Data Streams" (Korycki & Krawczyk,
// ICDE 2021). It provides:
//
//   - The RBM-IM trainable drift detector: a three-layer Restricted
//     Boltzmann Machine with a class-balanced, skew-insensitive loss that
//     tracks per-class reconstruction-error trends inside self-adaptive
//     windows and confirms changes with a Granger causality test — detecting
//     both global drifts and local drifts confined to single minority
//     classes.
//   - Nine reference drift detectors (DDM, EDDM, RDDM, ADWIN, HDDM-A,
//     FHDDM, WSTD, PerfSim, DDM-OCI) behind one Detector interface.
//   - Multi-class stream generators (Agrawal, Hyperplane, RBF, RandomTree,
//     SEA), drift orchestration (sudden / gradual / incremental, global and
//     local), dynamic class-imbalance schedules with role switching, and
//     synthetic surrogates for the paper's 12 real-world benchmarks.
//   - A cost-sensitive perceptron tree base classifier, prequential
//     multi-class AUC / G-mean metrics, and the full experiment harness
//     that regenerates every table and figure of the paper's evaluation.
//   - A sharded multi-stream Monitor service (NewMonitor) that hosts one
//     independent detector per stream across a fixed pool of worker
//     shards, with consistent-hash placement, drift-event subscription,
//     idle-stream GC, and aggregate snapshot statistics.
//   - Checkpointable detector state (SaveDetector / LoadDetector and
//     MonitorConfig.Checkpoint): versioned CRC-protected snapshots with
//     bit-identical resume for RBM-IM, periodic per-stream persistence,
//     spill-on-evict, and transparent rehydration through pluggable
//     in-memory or filesystem stores.
//   - A network serving layer (NewServer / Dial): the Monitor behind a
//     codec-framed binary TCP protocol with a zero-allocation batch
//     ingest path on both ends, streamed drift-event subscriptions,
//     explicit backpressure (Busy replies), a checkpoint-flush barrier,
//     and an HTTP sidecar with /healthz and Prometheus /metrics —
//     cmd/driftserver is the ready-made binary.
//
// # Quick start
//
//	det, err := rbmim.NewDetector(rbmim.DetectorConfig{Features: 20, Classes: 5})
//	if err != nil { ... }
//	for {
//		x, y := nextInstance()
//		if det.Update(rbmim.Observation{X: x, TrueClass: y, Predicted: y}) == rbmim.Drift {
//			fmt.Println("drift on classes", det.DriftClasses())
//		}
//	}
//
// See the examples/ directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology.
package rbmim
