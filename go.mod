module rbmim

go 1.24
