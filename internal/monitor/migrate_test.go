package monitor

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rbmim/internal/detectors"
)

// TestExportImportEquivalence is the migration acceptance gate at the
// monitor level: exporting a stream mid-workload from one monitor and
// importing it into another must produce the identical drift decisions —
// same count, same per-stream sequence positions — as one uninterrupted
// monitor, and must leave the detector in byte-identical state (the final
// exports of both runs compare equal). The cut lands mid-mini-batch so the
// partially filled batch travels through the handoff frame too.
func TestExportImportEquivalence(t *testing.T) {
	const n, cut = 2400, 1237
	obs := ckptObs(3, n, 6, 3)

	feed := func(m *Monitor, seg []detectors.Observation) {
		t.Helper()
		for _, o := range seg {
			if err := m.Ingest("sensor-7", o); err != nil {
				t.Fatal(err)
			}
		}
	}
	drain := func(m *Monitor) {
		go func() {
			for range m.Events() {
			}
		}()
	}

	// Control: one uninterrupted monitor.
	var control driftCollector
	cm, err := New(Config{Detector: ckptDetectorConfig(), Shards: 1, OnDrift: control.onDrift})
	if err != nil {
		t.Fatal(err)
	}
	drain(cm)
	feed(cm, obs)
	if err := cm.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	controlState, err := cm.ExportStream("sensor-7")
	if err != nil {
		t.Fatal(err)
	}
	cm.Close()

	// Migrated: first half on source, export/import, second half on target.
	var col driftCollector
	src, err := New(Config{Detector: ckptDetectorConfig(), Shards: 1, OnDrift: col.onDrift})
	if err != nil {
		t.Fatal(err)
	}
	drain(src)
	feed(src, obs[:cut])
	state, err := src.ExportStream("sensor-7")
	if err != nil {
		t.Fatal(err)
	}
	// The export removes the stream from the source.
	if ids, err := src.StreamIDs(); err != nil || len(ids) != 0 {
		t.Fatalf("source still hosts %v after export (err %v)", ids, err)
	}
	src.Close()

	dst, err := New(Config{Detector: ckptDetectorConfig(), Shards: 4, OnDrift: col.onDrift})
	if err != nil {
		t.Fatal(err)
	}
	drain(dst)
	if err := dst.ImportStream("sensor-7", state); err != nil {
		t.Fatal(err)
	}
	feed(dst, obs[cut:])
	if err := dst.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	if got := dst.Snapshot().Rehydrated; got != 1 {
		t.Fatalf("target Rehydrated = %d, want 1 (imports count as rehydrations)", got)
	}
	migratedState, err := dst.ExportStream("sensor-7")
	if err != nil {
		t.Fatal(err)
	}
	dst.Close()

	if len(control.seqs) == 0 {
		t.Fatal("control run detected no drifts; the test stream is too tame")
	}
	if len(col.seqs) != len(control.seqs) {
		t.Fatalf("drift counts differ: migrated %d vs uninterrupted %d", len(col.seqs), len(control.seqs))
	}
	for i := range control.seqs {
		if control.seqs[i] != col.seqs[i] {
			t.Fatalf("drift %d at seq %d migrated vs %d uninterrupted", i, col.seqs[i], control.seqs[i])
		}
	}
	if !bytes.Equal(controlState, migratedState) {
		t.Fatal("final detector states differ: migration is not bit-identical")
	}
}

// TestExportStreamNotFound pins the miss behavior: a stream the monitor
// neither hosts nor has checkpointed is ErrStreamNotFound.
func TestExportStreamNotFound(t *testing.T) {
	m, err := New(Config{Detector: ckptDetectorConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.ExportStream("never-seen"); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("ExportStream(unknown) = %v, want ErrStreamNotFound", err)
	}
}

// TestExportFallsBackToStore pins export idempotency: an evicted (spilled)
// stream — and a re-sent export whose first reply was lost — serves the
// same bytes from the checkpoint store.
func TestExportFallsBackToStore(t *testing.T) {
	store := NewMemStore()
	m, err := New(Config{
		Detector:   ckptDetectorConfig(),
		Shards:     1,
		Checkpoint: CheckpointConfig{Store: store, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, o := range ckptObs(4, 40, 6, 3) {
		if err := m.Ingest("spilled", o); err != nil {
			t.Fatal(err)
		}
	}
	resident, err := m.ExportStream("spilled")
	if err != nil {
		t.Fatal(err)
	}
	// The stream is gone from memory now; a second export (a retry after a
	// lost reply) must read the spilled copy and return identical bytes.
	again, err := m.ExportStream("spilled")
	if err != nil {
		t.Fatalf("re-export after spill: %v", err)
	}
	if !bytes.Equal(resident, again) {
		t.Fatal("re-exported bytes differ from the original export")
	}
}

// TestImportResidentStreamRefused pins the duplicate-handoff refusal the
// cluster layer relies on: importing onto a live stream is an error, and
// the resident detector is untouched.
func TestImportResidentStreamRefused(t *testing.T) {
	m, err := New(Config{Detector: ckptDetectorConfig(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	obs := ckptObs(5, 60, 6, 3)
	for _, o := range obs[:40] {
		if err := m.Ingest("busy", o); err != nil {
			t.Fatal(err)
		}
	}
	state, err := m.ExportStream("busy")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ImportStream("busy", state); err != nil {
		t.Fatal(err)
	}
	err = m.ImportStream("busy", state)
	if err == nil || !strings.Contains(err.Error(), "already resident") {
		t.Fatalf("ImportStream(resident) = %v, want already-resident refusal", err)
	}
}

// TestStreamIDs pins the listing across shards.
func TestStreamIDs(t *testing.T) {
	m, err := New(Config{Detector: ckptDetectorConfig(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	obs := ckptObs(6, 3, 6, 3)
	for _, id := range []string{"c-stream", "a-stream", "b-stream"} {
		if err := m.Ingest(id, obs[0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	ids, err := m.StreamIDs()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a-stream", "b-stream", "c-stream"}
	if len(ids) != len(want) {
		t.Fatalf("StreamIDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("StreamIDs = %v, want %v (sorted)", ids, want)
		}
	}
}

// slowDetector stalls each update so the shard queue visibly fills.
type slowDetector struct{}

func (slowDetector) Update(detectors.Observation) detectors.State {
	time.Sleep(200 * time.Microsecond)
	return detectors.None
}
func (slowDetector) Reset()       {}
func (slowDetector) Name() string { return "slow" }

// TestQueueHighWaterResetsOnFlush pins the windowed high-water satellite: a
// burst drives the mark up, and the next FlushCheckpoints barrier resets it
// to the live occupancy instead of letting it ratchet forever.
func TestQueueHighWaterResetsOnFlush(t *testing.T) {
	m, err := New(Config{
		NewDetector: func(string) (detectors.Detector, error) { return slowDetector{}, nil },
		Shards:      1,
		QueueSize:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	obs := ckptObs(7, 400, 6, 3)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(obs); i += 4 {
				_ = m.Ingest("hot", obs[i])
			}
		}(p)
	}
	wg.Wait()
	if hw := m.Snapshot().QueueHighWater; hw == 0 {
		t.Fatal("burst never filled the queue; QueueSize too large for the test")
	}
	// Two barriers: the first resets the mark while late envelopes may still
	// trail it; after the second, nothing has entered the queue since the
	// reset, so the mark must be back at (or near) empty.
	if err := m.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	if hw := m.Snapshot().QueueHighWater; hw > 1 {
		t.Fatalf("QueueHighWater = %d after quiescent flush, want <= 1 (windowed reset)", hw)
	}
}
