package monitor

import (
	"fmt"
	"reflect"
	"testing"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/stream"
	"rbmim/internal/synth"
	"rbmim/internal/telemetry"
)

// driftTrace runs one real-detector sudden-drift workload at the given
// telemetry level and returns the ordered (seq, classes) drift trace plus
// the final snapshot. Everything that feeds a detection decision is seeded,
// so two runs differing only in level must trace identically.
func driftTrace(t *testing.T, level telemetry.Level) ([]string, Snapshot) {
	t.Helper()
	m, err := New(Config{
		Detector: core.Config{
			Features: 8, Classes: 3, Seed: 11,
			BatchSize: 25, WarmupBatches: 10, AdaptiveWindow: true,
		},
		Shards:    2,
		Telemetry: level,
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range m.Events() {
			trace = append(trace, fmt.Sprintf("%s/%d%v", ev.StreamID, ev.Seq, ev.Classes))
		}
	}()
	base := synth.Config{Features: 8, Classes: 3, Seed: 3}
	before, err := synth.NewRBF(base, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	afterCfg := base
	afterCfg.Seed = 99
	after, err := synth.NewRBF(afterCfg, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	src := stream.NewDriftStream(before, after, stream.Sudden, 6000, 0, 1)
	for i := 0; i < 12000; i++ {
		in := src.Next()
		if err := m.Ingest("feed", detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	<-done
	return trace, m.Snapshot()
}

// TestTelemetryBitIdentity is the acceptance property of the telemetry
// layer: drift decisions with full stage timing are bit-identical to drift
// decisions with timing off. The histograms observe; they never perturb.
func TestTelemetryBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("real-detector drift run is slow")
	}
	full, fullSn := driftTrace(t, telemetry.Full)
	off, offSn := driftTrace(t, telemetry.Off)
	if len(full) == 0 {
		t.Fatal("no drift events despite a sudden concept change")
	}
	if !reflect.DeepEqual(full, off) {
		t.Fatalf("drift traces diverge by telemetry level:\nfull: %v\noff:  %v", full, off)
	}
	if fullSn.Drifts != offSn.Drifts || fullSn.Ingested != offSn.Ingested {
		t.Fatalf("counters diverge: full drifts=%d ingested=%d, off drifts=%d ingested=%d",
			fullSn.Drifts, fullSn.Ingested, offSn.Drifts, offSn.Ingested)
	}

	// The level difference shows up only where it should: the stage list.
	stages := make(map[string]uint64)
	for _, st := range fullSn.Latency {
		stages[st.Stage] = st.Count
	}
	for _, want := range []string{"queue_wait", "detector_update"} {
		if stages[want] == 0 {
			t.Fatalf("full telemetry snapshot lacks stage %q (have %v)", want, fullSn.Latency)
		}
	}
	if len(offSn.Latency) != 0 {
		t.Fatalf("telemetry-off snapshot has latency stages %v, want none", offSn.Latency)
	}
}
