package monitor

import (
	"fmt"
	"io"
	"strconv"

	"rbmim/internal/telemetry"
)

// Snapshot has two canonical text encodings, shared by every consumer
// (the server's Snapshot reply and /metrics endpoint, monitorbench -json,
// driftserver's shutdown report) instead of each printing its own:
//
//   - AppendJSON / MarshalJSON: one JSON object whose keys are the Go field
//     names in declaration order, so the encoding is byte-stable for a given
//     snapshot and round-trips through encoding/json.Unmarshal;
//   - WritePrometheus: the Prometheus text exposition format under the
//     rbmim_ metric prefix, with per-class and per-shard breakdowns as
//     labelled series.

// AppendJSON appends the canonical JSON encoding of the snapshot to b and
// returns the extended slice. Field order is the struct declaration order;
// Uptime is encoded as integer nanoseconds (time.Duration's underlying
// representation, which stdlib Unmarshal accepts).
func (s Snapshot) AppendJSON(b []byte) []byte {
	field := func(name string) {
		if b[len(b)-1] != '{' {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, name...)
		b = append(b, '"', ':')
	}
	num := func(name string, v int64) {
		field(name)
		b = strconv.AppendInt(b, v, 10)
	}
	unum := func(name string, v uint64) {
		field(name)
		b = strconv.AppendUint(b, v, 10)
	}
	unums := func(name string, vs []uint64) {
		field(name)
		if vs == nil {
			b = append(b, "null"...)
			return
		}
		b = append(b, '[')
		for i, v := range vs {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendUint(b, v, 10)
		}
		b = append(b, ']')
	}

	b = append(b, '{')
	num("Shards", int64(s.Shards))
	num("Streams", int64(s.Streams))
	unum("Ingested", s.Ingested)
	unum("Drifts", s.Drifts)
	unum("Warnings", s.Warnings)
	unums("DriftsByClass", s.DriftsByClass)
	unum("Dropped", s.Dropped)
	unum("EventsDropped", s.EventsDropped)
	unum("IdleEvicted", s.IdleEvicted)
	unum("StreamErrors", s.StreamErrors)
	unum("Received", s.Received)
	unum("Rejected", s.Rejected)
	unum("Queued", s.Queued)
	num("QueueCap", int64(s.QueueCap))
	unum("QueueHighWater", s.QueueHighWater)
	unum("Checkpoints", s.Checkpoints)
	unum("CheckpointErrors", s.CheckpointErrors)
	unum("Rehydrated", s.Rehydrated)
	num("Subscribers", int64(s.Subscribers))
	unum("SubscriberDropped", s.SubscriberDropped)
	unum("SubscribersEvicted", s.SubscribersEvicted)
	unum("InFlightHighWater", s.InFlightHighWater)
	unum("RepliesCoalesced", s.RepliesCoalesced)
	unum("Shedded", s.Shedded)
	unum("DedupHits", s.DedupHits)
	field("ShardStreams")
	if s.ShardStreams == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i, v := range s.ShardStreams {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(v), 10)
		}
		b = append(b, ']')
	}
	unums("ShardIngested", s.ShardIngested)
	num("Uptime", int64(s.Uptime))
	field("InstancesPerSec")
	b = strconv.AppendFloat(b, s.InstancesPerSec, 'g', -1, 64)
	field("Latency")
	if s.Latency == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i := range s.Latency {
			if i > 0 {
				b = append(b, ',')
			}
			st := &s.Latency[i]
			b = append(b, `{"Stage":`...)
			b = strconv.AppendQuote(b, st.Stage)
			b = append(b, `,"Count":`...)
			b = strconv.AppendUint(b, st.Count, 10)
			b = append(b, `,"SumNS":`...)
			b = strconv.AppendInt(b, st.SumNS, 10)
			b = append(b, `,"P50NS":`...)
			b = strconv.AppendInt(b, st.P50NS, 10)
			b = append(b, `,"P95NS":`...)
			b = strconv.AppendInt(b, st.P95NS, 10)
			b = append(b, `,"P99NS":`...)
			b = strconv.AppendInt(b, st.P99NS, 10)
			b = append(b, `,"Buckets":`...)
			if st.Buckets == nil {
				b = append(b, "null"...)
			} else {
				b = append(b, '[')
				for j, v := range st.Buckets {
					if j > 0 {
						b = append(b, ',')
					}
					b = strconv.AppendUint(b, v, 10)
				}
				b = append(b, ']')
			}
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, '}')
	return b
}

// MarshalJSON implements json.Marshaler with the canonical stable-field-order
// encoding (see AppendJSON).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	return s.AppendJSON(nil), nil
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4) under the rbmim_ prefix — the payload of the
// server's /metrics endpoint.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var err error
	emit := func(name, help, typ string, value float64) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, value)
	}
	emit("rbmim_shards", "Worker shard count.", "gauge", float64(s.Shards))
	emit("rbmim_streams", "Live streams across all shards.", "gauge", float64(s.Streams))
	emit("rbmim_ingested_total", "Observations processed since start.", "counter", float64(s.Ingested))
	emit("rbmim_drifts_total", "Drift detections since start.", "counter", float64(s.Drifts))
	emit("rbmim_warnings_total", "Warning signals since start.", "counter", float64(s.Warnings))
	if len(s.DriftsByClass) > 0 && err == nil {
		_, err = fmt.Fprintf(w, "# HELP rbmim_drifts_by_class_total Drifts attributed to each class.\n# TYPE rbmim_drifts_by_class_total counter\n")
		for k, v := range s.DriftsByClass {
			if err != nil {
				break
			}
			_, err = fmt.Fprintf(w, "rbmim_drifts_by_class_total{class=\"%d\"} %d\n", k, v)
		}
	}
	emit("rbmim_dropped_total", "Observations dropped by TryIngest on full shard queues.", "counter", float64(s.Dropped))
	emit("rbmim_received_total", "Observations accepted into shard ring queues.", "counter", float64(s.Received))
	emit("rbmim_rejected_total", "Received observations refused at processing time (factory failures, stream caps).", "counter", float64(s.Rejected))
	emit("rbmim_queued", "Observations received but not yet processed, sampled across shard rings.", "gauge", float64(s.Queued))
	emit("rbmim_queue_capacity", "Per-shard ring capacity in envelopes.", "gauge", float64(s.QueueCap))
	emit("rbmim_queue_high_water", "Largest per-shard ring occupancy observed since the last checkpoint-flush barrier, in envelopes.", "gauge", float64(s.QueueHighWater))
	emit("rbmim_events_dropped_total", "Drift events dropped on the full shared event channel.", "counter", float64(s.EventsDropped))
	emit("rbmim_idle_evicted_total", "Streams evicted by idle GC.", "counter", float64(s.IdleEvicted))
	emit("rbmim_stream_errors_total", "Observations rejected by factory failures, stream caps, and evicts of non-resident streams.", "counter", float64(s.StreamErrors))
	emit("rbmim_checkpoints_total", "Detector snapshots written to the checkpoint store.", "counter", float64(s.Checkpoints))
	emit("rbmim_checkpoint_errors_total", "Checkpoint serialization, store, and rehydration failures.", "counter", float64(s.CheckpointErrors))
	emit("rbmim_rehydrated_total", "Streams restored from the checkpoint store.", "counter", float64(s.Rehydrated))
	emit("rbmim_subscribers", "Live event-fanout subscriptions.", "gauge", float64(s.Subscribers))
	emit("rbmim_subscriber_dropped_total", "Events dropped on full per-subscriber queues.", "counter", float64(s.SubscriberDropped))
	emit("rbmim_subscribers_evicted_total", "Subscriptions closed by the monitor for exceeding the drop eviction limit.", "counter", float64(s.SubscribersEvicted))
	emit("rbmim_inflight_high_water", "Largest pipelined in-flight request count observed on any server connection.", "gauge", float64(s.InFlightHighWater))
	emit("rbmim_replies_coalesced_total", "Reply frames coalesced into a preceding frame's socket write.", "counter", float64(s.RepliesCoalesced))
	emit("rbmim_shedded_total", "Blocking ingests refused with Busy by overload shedding.", "counter", float64(s.Shedded))
	emit("rbmim_dedup_hits_total", "Retried ingests acknowledged without re-ingesting (exactly-once dedup window).", "counter", float64(s.DedupHits))
	if len(s.ShardStreams) > 0 && err == nil {
		_, err = fmt.Fprintf(w, "# HELP rbmim_shard_streams Live streams per shard.\n# TYPE rbmim_shard_streams gauge\n")
		for i, v := range s.ShardStreams {
			if err != nil {
				break
			}
			_, err = fmt.Fprintf(w, "rbmim_shard_streams{shard=\"%d\"} %d\n", i, v)
		}
	}
	if len(s.ShardIngested) > 0 && err == nil {
		_, err = fmt.Fprintf(w, "# HELP rbmim_shard_ingested_total Observations processed per shard.\n# TYPE rbmim_shard_ingested_total counter\n")
		for i, v := range s.ShardIngested {
			if err != nil {
				break
			}
			_, err = fmt.Fprintf(w, "rbmim_shard_ingested_total{shard=\"%d\"} %d\n", i, v)
		}
	}
	emit("rbmim_uptime_seconds", "Seconds since the monitor started.", "gauge", s.Uptime.Seconds())
	emit("rbmim_instances_per_second", "Ingested / uptime.", "gauge", s.InstancesPerSec)
	if err == nil && len(s.Latency) > 0 {
		// One histogram family, one series set per stage. Latency is sorted
		// by stage name (Monitor.Snapshot assembles it sorted; MergeSnapshots
		// re-sorts), so consecutive scrapes are byte-identical.
		err = telemetry.WriteStages(w, "rbmim_stage_seconds",
			"Per-stage latency (log2 buckets): queue_wait, detector_update, checkpoint_save/put, serve_<kind>.", s.Latency)
	}
	return err
}

// MergeSnapshots folds the snapshots of several monitors (typically one per
// cluster member) into a single fleet-wide view. Counters and population
// gauges sum; DriftsByClass sums element-wise (sized to the widest member);
// ShardStreams and ShardIngested concatenate in argument order, so per-shard
// balance stays inspectable across the fleet; QueueCap, QueueHighWater,
// InFlightHighWater, and Uptime take the worst (largest) member, because a
// fleet is as saturated as its hottest node and as old as its oldest; and
// InstancesPerSec is recomputed as total Ingested over that Uptime. The
// conservation identity (Received == Ingested + Rejected + Queued at
// quiescence) survives merging because every term is a sum.
func MergeSnapshots(sns ...Snapshot) Snapshot {
	var out Snapshot
	var latencies [][]telemetry.Stage
	for _, s := range sns {
		out.Shards += s.Shards
		out.Streams += s.Streams
		out.Ingested += s.Ingested
		out.Drifts += s.Drifts
		out.Warnings += s.Warnings
		for k, v := range s.DriftsByClass {
			for len(out.DriftsByClass) <= k {
				out.DriftsByClass = append(out.DriftsByClass, 0)
			}
			out.DriftsByClass[k] += v
		}
		out.Dropped += s.Dropped
		out.EventsDropped += s.EventsDropped
		out.IdleEvicted += s.IdleEvicted
		out.StreamErrors += s.StreamErrors
		out.Received += s.Received
		out.Rejected += s.Rejected
		out.Queued += s.Queued
		if s.QueueCap > out.QueueCap {
			out.QueueCap = s.QueueCap
		}
		if s.QueueHighWater > out.QueueHighWater {
			out.QueueHighWater = s.QueueHighWater
		}
		out.Checkpoints += s.Checkpoints
		out.CheckpointErrors += s.CheckpointErrors
		out.Rehydrated += s.Rehydrated
		out.Subscribers += s.Subscribers
		out.SubscriberDropped += s.SubscriberDropped
		out.SubscribersEvicted += s.SubscribersEvicted
		if s.InFlightHighWater > out.InFlightHighWater {
			out.InFlightHighWater = s.InFlightHighWater
		}
		out.RepliesCoalesced += s.RepliesCoalesced
		out.Shedded += s.Shedded
		out.DedupHits += s.DedupHits
		out.ShardStreams = append(out.ShardStreams, s.ShardStreams...)
		out.ShardIngested = append(out.ShardIngested, s.ShardIngested...)
		if s.Uptime > out.Uptime {
			out.Uptime = s.Uptime
		}
		if s.Latency != nil {
			latencies = append(latencies, s.Latency)
		}
	}
	if len(latencies) > 0 {
		// Same-named stages merge bucket-wise (quantiles recomputed from the
		// summed buckets), so the fleet view reports true cluster-wide
		// percentiles rather than an average of per-member percentiles.
		out.Latency = telemetry.MergeStages(latencies...)
	}
	if secs := out.Uptime.Seconds(); secs > 0 {
		out.InstancesPerSec = float64(out.Ingested) / secs
	}
	return out
}
