package monitor

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"rbmim/internal/codec"
	"rbmim/internal/detectors"
	"rbmim/internal/telemetry"
)

// Checkpointing gives the monitor's per-stream detector state a life outside
// RAM: periodic snapshots on a configurable cadence, spill instead of drop on
// Evict and idle GC, transparent rehydration when a known stream re-ingests,
// and a full flush on Close — so a restarted (or resharded) monitor resumes
// every stream's trained detector instead of retraining from scratch.
//
// All serialization happens on the owning shard goroutine (detectors are
// single-goroutine objects) into pooled buffers; the store writes happen on a
// dedicated writer goroutine, so neither snapshot cadence nor store latency
// touches the ingest hot path, which stays allocation-free. Rehydration reads
// are synchronous but only occur when a stream is first materialized on a
// shard — a cold path by construction.

// Store persists per-stream checkpoint blobs. Implementations must be safe
// for concurrent use (the monitor's writer goroutine and shard goroutines may
// touch different streams at once) and must not retain the data slice passed
// to Put beyond the call.
type Store interface {
	// Put durably records data as the newest checkpoint of the stream.
	Put(streamID string, data []byte) error
	// Get returns the newest checkpoint of the stream. The returned slice is
	// only valid until the next Put for the same stream; callers decode it
	// immediately. ok is false when the stream has no checkpoint.
	Get(streamID string) (data []byte, ok bool, err error)
	// Delete removes the stream's checkpoint; deleting a missing stream is
	// not an error.
	Delete(streamID string) error
}

// MemStore is an in-process Store: checkpoints live in a map, per-stream
// buffers are reused across Puts so steady-state snapshotting does not churn
// the heap. Useful for tests, for spill-and-rehydrate within one process,
// and as the reference Store implementation.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Put copies data into the stream's buffer.
func (s *MemStore) Put(streamID string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := s.m[streamID]
	if cap(buf) < len(data) {
		buf = make([]byte, len(data))
	}
	buf = buf[:len(data)]
	copy(buf, data)
	s.m[streamID] = buf
	return nil
}

// Get returns the stream's stored bytes (a view; see Store.Get).
func (s *MemStore) Get(streamID string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[streamID]
	return data, ok, nil
}

// Delete removes the stream's checkpoint.
func (s *MemStore) Delete(streamID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, streamID)
	return nil
}

// Len returns the number of checkpointed streams.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// FSStore persists checkpoints as one file per stream under a directory,
// surviving process restarts. Writes go through a temp file and rename, so a
// crash mid-write leaves the previous checkpoint intact (and the codec CRC
// rejects torn content regardless). Stream IDs are escaped into safe file
// names, so arbitrary IDs — including path separators — round-trip.
type FSStore struct {
	dir string
}

// NewFSStore builds a filesystem store rooted at dir, creating it if needed.
func NewFSStore(dir string) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("monitor: checkpoint dir: %w", err)
	}
	return &FSStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FSStore) Dir() string { return s.dir }

// escapeStreamID maps an arbitrary stream ID onto a filesystem-safe name.
// Lowercase alphanumerics, '-' and '_' pass through; everything else —
// uppercase included — becomes %XX, so the mapping stays injective even on
// case-insensitive filesystems (macOS, Windows), where "Sensor-1" and
// "sensor-1" must not resolve to the same file. Escaped names longer than
// maxEscapedID fall back to a truncated prefix plus the FNV-1a digest of
// the exact ID (collisions then require a 64-bit hash collision between
// same-prefix IDs).
func escapeStreamID(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	if b.Len() == 0 {
		return "%empty"
	}
	if b.Len() > maxEscapedID {
		return fmt.Sprintf("%s-%016x", b.String()[:maxEscapedID], fnv1a(id))
	}
	return b.String()
}

// maxEscapedID bounds the readable part of a checkpoint file name, keeping
// the full name (plus hash suffix and ".ckpt") well under common 255-byte
// filename limits.
const maxEscapedID = 160

func (s *FSStore) path(streamID string) string {
	return filepath.Join(s.dir, escapeStreamID(streamID)+".ckpt")
}

// Put atomically replaces the stream's checkpoint file.
func (s *FSStore) Put(streamID string, data []byte) error {
	path := s.path(streamID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Get reads the stream's checkpoint file.
func (s *FSStore) Get(streamID string) ([]byte, bool, error) {
	data, err := os.ReadFile(s.path(streamID))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// Delete removes the stream's checkpoint file.
func (s *FSStore) Delete(streamID string) error {
	err := os.Remove(s.path(streamID))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// CheckpointConfig enables and tunes detector-state persistence; the zero
// value (no Store) disables checkpointing entirely.
type CheckpointConfig struct {
	// Store receives the snapshots. nil disables checkpointing.
	Store Store
	// Interval is the periodic per-stream snapshot cadence; streams that saw
	// no traffic since their last snapshot are skipped. Zero defaults to
	// 30 s. Evict, idle GC, and Close snapshot regardless of cadence.
	Interval time.Duration
	// QueueSize bounds the async write queue (snapshots in flight to the
	// Store); default 256. When the queue is full a periodic snapshot is
	// skipped (counted in Snapshot.CheckpointErrors) and retried on the next
	// tick; spill and close-time snapshots block instead, because their
	// state would otherwise be lost.
	QueueSize int
}

func (c *CheckpointConfig) withDefaults() {
	if c.Store == nil {
		return
	}
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
}

// ckptMsg is one message to the checkpoint writer goroutine: either a
// snapshot to persist (buf != nil) or a barrier (done != nil) that the
// writer acknowledges once every previously queued write has reached the
// Store — the ordering fence rehydration needs.
type ckptMsg struct {
	id   string
	buf  *bytes.Buffer
	done chan struct{}
}

// ckptWriter drains the checkpoint queue onto the Store. It is the only
// goroutine that calls Store.Put, so per-stream write order equals queue
// order.
func (m *Monitor) ckptWriter() {
	defer m.ckptWg.Done()
	for msg := range m.ckptCh {
		if msg.done != nil {
			close(msg.done)
			continue
		}
		var putStart int64
		if m.tele != nil {
			putStart = telemetry.Now()
		}
		if err := m.cfg.Checkpoint.Store.Put(msg.id, msg.buf.Bytes()); err != nil {
			m.ckptErrors.Add(1)
		} else {
			m.checkpoints.Add(1)
		}
		if m.tele != nil {
			m.tele.ckptPut.Observe(telemetry.Now() - putStart)
		}
		msg.buf.Reset()
		m.ckptPool.Put(msg.buf)
	}
}

// ckptBarrier blocks until every checkpoint queued before the call has been
// written to the Store. Used before rehydration reads so a queued spill of
// the same stream cannot be overtaken.
func (m *Monitor) ckptBarrier() {
	done := make(chan struct{})
	m.ckptCh <- ckptMsg{done: done}
	<-done
}

// snapshotStream serializes one stream's detector into a pooled buffer and
// queues the write. block selects blocking enqueue (spill / close, where
// dropping would lose the only copy) versus drop-and-retry-next-tick
// (periodic cadence). Serialization runs on the shard goroutine — the
// detector's owner — so no locking is needed; the store write happens on the
// writer goroutine.
func (s *shard) snapshotStream(id string, st *streamState, block bool) {
	sd, ok := st.det.(detectors.StatefulDetector)
	if !ok {
		return // not checkpointable; skip silently (documented)
	}
	m := s.m
	buf := m.ckptPool.Get().(*bytes.Buffer)
	buf.Reset()
	// Envelope: monitor frame wrapping [seq | detector frame], so the
	// stream's observation counter survives alongside the detector.
	var saveStart int64
	if m.tele != nil {
		saveStart = telemetry.Now()
	}
	s.ckptScratch.Reset()
	s.ckptScratch.U64(st.seq)
	if err := sd.SaveState(s.ckptScratch); err != nil {
		m.ckptErrors.Add(1)
		m.ckptPool.Put(buf)
		return
	}
	if m.tele != nil {
		m.tele.ckptSave.Observe(telemetry.Now() - saveStart)
	}
	s.ckptFrame = codec.AppendFrame(s.ckptFrame[:0], codec.KindMonitorStream, s.ckptScratch.Bytes())
	buf.Write(s.ckptFrame) // copy into the pooled buffer; the scratch stays shard-owned
	msg := ckptMsg{id: id, buf: buf}
	if block {
		m.ckptCh <- msg
		s.snapshotted[id] = struct{}{}
		st.dirty = false
		return
	}
	select {
	case m.ckptCh <- msg:
		s.snapshotted[id] = struct{}{}
		st.dirty = false
	default:
		// Queue full: count it, retry on the next tick (the stream stays
		// dirty).
		m.ckptErrors.Add(1)
		buf.Reset()
		m.ckptPool.Put(buf)
	}
}

// snapshotDirty walks the shard's streams on the checkpoint tick and
// snapshots those that saw traffic since their last snapshot.
func (s *shard) snapshotDirty() {
	for id, st := range s.streams {
		if st.dirty {
			s.snapshotStream(id, st, false)
		}
	}
}

// finalCheckpoint flushes every dirty resident stream on shutdown (blocking
// enqueue: Close must not lose state). Runs on the shard goroutine after its
// queue drained.
func (s *shard) finalCheckpoint() {
	if !s.m.ckptEnabled() {
		return
	}
	for id, st := range s.streams {
		if st.dirty {
			s.snapshotStream(id, st, true)
		}
	}
}

// spill persists a stream's state before it leaves memory (explicit Evict or
// idle GC). Blocking: a dropped spill would be the only copy.
func (s *shard) spill(id string, st *streamState) {
	if !s.m.ckptEnabled() {
		return
	}
	s.snapshotStream(id, st, true)
}

// rehydrate restores a newly created detector from the stream's stored
// checkpoint, if one exists. Returns the restored sequence counter (0 when
// nothing was restored). Load failures (corrupt snapshot, incompatible
// detector) are counted and the fresh detector is used as-is — a monitor
// must keep ingesting even when a checkpoint went bad.
func (s *shard) rehydrate(id string, det detectors.Detector) uint64 {
	m := s.m
	if !m.ckptEnabled() {
		return 0
	}
	sd, ok := det.(detectors.StatefulDetector)
	if !ok {
		return 0
	}
	// Fence: a spill of this stream may still sit in the write queue, so all
	// queued writes must reach the Store before the read below. Only pay the
	// round-trip when this shard has ever enqueued a snapshot for the
	// stream — writes for a stream originate exclusively on its (consistent-
	// hash-stable) shard, so a genuinely new stream materializes without
	// stalling behind unrelated pending writes.
	if _, ever := s.snapshotted[id]; ever {
		m.ckptBarrier()
	}
	data, ok, err := m.cfg.Checkpoint.Store.Get(id)
	if err != nil {
		m.ckptErrors.Add(1)
		return 0
	}
	if !ok {
		return 0
	}
	payload, err := codec.ExpectFrame(data, codec.KindMonitorStream)
	if err != nil {
		m.ckptErrors.Add(1)
		return 0
	}
	rd := codec.NewReader(payload)
	seq := rd.U64()
	if rd.Err() != nil {
		m.ckptErrors.Add(1)
		return 0
	}
	if err := sd.LoadState(bytes.NewReader(payload[8:])); err != nil {
		m.ckptErrors.Add(1)
		return 0
	}
	m.rehydrated.Add(1)
	return seq
}

func (m *Monitor) ckptEnabled() bool { return m.cfg.Checkpoint.Store != nil }

// newEnvelopeFrame builds a stream-envelope frame from a sequence counter
// and an already-framed detector snapshot — the exact layout snapshotStream
// produces into shard scratch (kept in one place for tests and tooling).
func newEnvelopeFrame(seq uint64, detectorFrame []byte) []byte {
	b := codec.NewBuffer(nil)
	b.U64(seq)
	b.Write(detectorFrame)
	return codec.AppendFrame(nil, codec.KindMonitorStream, b.Bytes())
}
