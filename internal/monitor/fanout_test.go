package monitor

import (
	"sync"
	"testing"
	"time"

	"rbmim/internal/detectors"
)

// driftConfig returns a monitor whose every stream drifts every n
// observations — deterministic event pressure for fan-out tests.
func driftConfig(shards, n int) Config {
	return Config{
		Shards: shards,
		NewDetector: func(string) (detectors.Detector, error) {
			return &driftEveryN{n: n, class: 0}, nil
		},
	}
}

// TestCloseIdempotentAndConcurrent is the regression test for double-Close:
// sequential double Close must be a no-op, and a Close racing another Close
// must not return before the teardown is complete — the contract the network
// server's shutdown path relies on.
func TestCloseIdempotentAndConcurrent(t *testing.T) {
	// A never-drifting detector keeps the event channel deterministically
	// empty, so a received value below can only mean "channel still open".
	m, err := New(driftConfig(4, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := m.Ingest("s", detectors.Observation{X: make([]float64, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	const closers = 8
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Close()
			// Every Close call, winner or not, must only return once the
			// event channel is closed.
			if _, ok := <-m.Events(); ok {
				t.Error("Close returned before the event channel was closed")
			}
		}()
	}
	wg.Wait()
	m.Close() // and once more sequentially
	if got := m.Snapshot().Ingested; got != 64 {
		t.Fatalf("ingested %d observations, want 64", got)
	}
}

// TestSubscribeFanout verifies that every subscriber receives every event,
// independently of the shared Events channel.
func TestSubscribeFanout(t *testing.T) {
	m, err := New(driftConfig(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	sub1, err := m.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := m.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Subscribers; got != 2 {
		t.Fatalf("Subscribers = %d, want 2", got)
	}
	go func() {
		for range m.Events() {
		}
	}()
	o := detectors.Observation{X: make([]float64, 4)}
	for i := 0; i < 50; i++ { // 5 drifts at n=10
		if err := m.Ingest("s", o); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	count := func(sub *Subscription) int {
		n := 0
		for range sub.Events() {
			n++
		}
		return n
	}
	if n1, n2 := count(sub1), count(sub2); n1 != 5 || n2 != 5 {
		t.Fatalf("subscribers saw %d and %d events, want 5 and 5", n1, n2)
	}
	if d := sub1.Dropped() + sub2.Dropped(); d != 0 {
		t.Fatalf("unexpected subscriber drops: %d", d)
	}
	if _, err := m.Subscribe(1); err != ErrClosed {
		t.Fatalf("Subscribe after Close = %v, want ErrClosed", err)
	}
}

// TestSubscriberDropAccounting fills a 1-slot subscription that nobody
// drains: the overflow must be dropped and counted — per subscription and in
// the aggregate snapshot — without disturbing a healthy subscriber.
func TestSubscriberDropAccounting(t *testing.T) {
	m, err := New(driftConfig(1, 1)) // every observation drifts
	if err != nil {
		t.Fatal(err)
	}
	slow, err := m.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := m.Subscribe(1024)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range m.Events() {
		}
	}()
	o := detectors.Observation{X: make([]float64, 4)}
	const obs = 200
	for i := 0; i < obs; i++ {
		if err := m.Ingest("s", o); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	received := 0
	for range healthy.Events() {
		received++
	}
	if received != obs {
		t.Fatalf("healthy subscriber saw %d events, want %d", received, obs)
	}
	if d := slow.Dropped(); d != obs-1 {
		t.Fatalf("slow subscriber dropped %d events, want %d", d, obs-1)
	}
	if sn := m.Snapshot(); sn.SubscriberDropped != obs-1 {
		t.Fatalf("SubscriberDropped = %d, want %d", sn.SubscriberDropped, obs-1)
	}
}

// TestSubscriberEviction: with SubscriberEvictDrops set, a subscriber that
// keeps dropping must be evicted — channel closed, Evicted reported, counted
// once in the snapshot — while a healthy subscriber is untouched, and a
// user-initiated Close must never be counted as an eviction.
func TestSubscriberEviction(t *testing.T) {
	cfg := driftConfig(1, 1) // every observation drifts
	cfg.SubscriberEvictDrops = 5
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := m.Subscribe(1) // nobody drains it
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := m.Subscribe(1024)
	if err != nil {
		t.Fatal(err)
	}
	o := detectors.Observation{X: make([]float64, 4)}
	const obs = 50
	for i := 0; i < obs; i++ {
		if err := m.Ingest("s", o); err != nil {
			t.Fatal(err)
		}
	}
	// The flush barrier means every publish — and therefore the eviction,
	// which happens inside publish — has completed.
	if err := m.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	// The evicted subscription's channel is closed without Monitor.Close:
	// this range must terminate on its own (one buffered event, then close).
	got := 0
	for range slow.Events() {
		got++
	}
	if got != 1 {
		t.Fatalf("evicted subscriber saw %d events, want 1 (its buffer)", got)
	}
	if !slow.Evicted() {
		t.Fatal("Evicted() = false on a monitor-evicted subscription")
	}
	if d := slow.Dropped(); d < 5 {
		t.Fatalf("evicted subscriber dropped %d events, want >= 5", d)
	}
	sn := m.Snapshot()
	if sn.SubscribersEvicted != 1 {
		t.Fatalf("SubscribersEvicted = %d, want 1", sn.SubscribersEvicted)
	}
	if sn.Subscribers != 1 {
		t.Fatalf("Subscribers = %d, want 1 (healthy only)", sn.Subscribers)
	}
	// A user Close is not an eviction, even on a monitor with the policy on.
	healthy.Close()
	if healthy.Evicted() {
		t.Fatal("user-closed subscription reports Evicted")
	}
	m.Close()
	if got := m.Snapshot().SubscribersEvicted; got != 1 {
		t.Fatalf("SubscribersEvicted after Close = %d, want 1", got)
	}
	n := 0
	for range healthy.Events() {
		n++
	}
	if n != obs {
		t.Fatalf("healthy subscriber saw %d events, want %d", n, obs)
	}
}

// TestSubscriptionCloseDetaches verifies a closed subscription stops
// receiving and that closing twice (or concurrently with Monitor.Close) is
// safe.
func TestSubscriptionCloseDetaches(t *testing.T) {
	m, err := New(driftConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe(1024)
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	sub.Close() // idempotent
	if got := m.Snapshot().Subscribers; got != 0 {
		t.Fatalf("Subscribers after Close = %d, want 0", got)
	}
	o := detectors.Observation{X: make([]float64, 4)}
	for i := 0; i < 10; i++ {
		if err := m.Ingest("s", o); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	n := 0
	for range sub.Events() {
		n++
	}
	if n != 0 {
		t.Fatalf("closed subscription still received %d events", n)
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("closed subscription counted %d drops", d)
	}
}

// TestFlushCheckpointsBarrier verifies the two halves of the contract: with
// a Store, every dirty stream is durably checkpointed when the call returns
// (no Close needed); without one, the call is still a full processing
// barrier.
func TestFlushCheckpointsBarrier(t *testing.T) {
	store := NewMemStore()
	cfg := testConfig(2)
	cfg.Checkpoint = CheckpointConfig{Store: store, Interval: time.Hour} // cadence never fires
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := detectors.Observation{X: make([]float64, 8)}
	for _, id := range []string{"a", "b", "c"} {
		for i := 0; i < 40; i++ {
			if err := m.Ingest(id, o); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	if got := store.Len(); got != 3 {
		t.Fatalf("store holds %d checkpoints after flush, want 3", got)
	}
	sn := m.Snapshot()
	if sn.Ingested != 120 {
		t.Fatalf("flush is not a processing barrier: Ingested = %d, want 120", sn.Ingested)
	}
	if sn.Checkpoints != 3 {
		t.Fatalf("Checkpoints = %d, want 3", sn.Checkpoints)
	}
	// A second flush with no traffic since must write nothing new.
	if err := m.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Checkpoints; got != 3 {
		t.Fatalf("idle flush wrote checkpoints: %d, want 3", got)
	}
	m.Close()
	if err := m.FlushCheckpoints(); err != ErrClosed {
		t.Fatalf("FlushCheckpoints after Close = %v, want ErrClosed", err)
	}

	// Without a Store the call degrades to a pure barrier.
	m2, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := m2.Ingest("only", o); err != nil {
			t.Fatal(err)
		}
	}
	if err := m2.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	if got := m2.Snapshot().Ingested; got != 64 {
		t.Fatalf("storeless flush barrier: Ingested = %d, want 64", got)
	}
	m2.Close()
}
