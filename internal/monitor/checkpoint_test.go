package monitor

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
)

// ckptDetectorConfig is the small deterministic template the checkpoint
// tests share.
func ckptDetectorConfig() core.Config {
	return core.Config{
		Features: 6, Classes: 3, BatchSize: 10,
		WarmupBatches: 3, TrendWindow: 8, AdaptiveWindow: true, Seed: 5,
	}
}

// ckptObs draws a reproducible observation sequence with a level shift in
// the back half so drifts actually fire after a resume.
func ckptObs(seed int64, n, features, classes int) []detectors.Observation {
	rng := rand.New(rand.NewSource(seed))
	obs := make([]detectors.Observation, n)
	for i := range obs {
		x := make([]float64, features)
		for j := range x {
			x[j] = rng.Float64() * 2
			if i > (3*n)/4 {
				x[j] += 2.5
			}
		}
		y := rng.Intn(classes)
		obs[i] = detectors.Observation{X: x, TrueClass: y, Predicted: y}
	}
	return obs
}

// driftCollector gathers events synchronously via OnDrift (deterministic,
// unlike the lossy event channel).
type driftCollector struct {
	mu   sync.Mutex
	seqs []uint64
}

func (c *driftCollector) onDrift(ev Event) {
	c.mu.Lock()
	c.seqs = append(c.seqs, ev.Seq)
	c.mu.Unlock()
}

// TestEvictUnknownStreamCountsStreamError pins the satellite semantics:
// evicting a stream the shard does not host is a counted no-op.
func TestEvictUnknownStreamCountsStreamError(t *testing.T) {
	m, err := New(Config{Detector: ckptDetectorConfig(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Evict("never-seen"); err != nil {
		t.Fatal(err)
	}
	// A resident stream evicts cleanly, a second evict of it counts again.
	obs := ckptObs(1, 20, 6, 3)
	for _, o := range obs {
		if err := m.Ingest("resident", o); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Evict("resident"); err != nil {
		t.Fatal(err)
	}
	if err := m.Evict("resident"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if got := m.Snapshot().StreamErrors; got != 2 {
		t.Fatalf("StreamErrors = %d, want 2 (one unknown evict, one double evict)", got)
	}
}

// TestMonitorKillResumeMatchesUninterrupted is the monitor-level half of the
// acceptance criteria: feeding a stream through monitor #1, closing it
// (flush to the store), and feeding the rest through monitor #2 sharing the
// store must produce the identical drift decisions — same count, same
// per-stream sequence positions — as one uninterrupted monitor. The cut
// lands mid-mini-batch so the partial batch travels through the store too.
func TestMonitorKillResumeMatchesUninterrupted(t *testing.T) {
	const n, cut = 2400, 1237
	obs := ckptObs(2, n, 6, 3)

	run := func(store Store, segments ...[]detectors.Observation) ([]uint64, uint64) {
		var col driftCollector
		var rehydrated uint64
		for _, seg := range segments {
			m, err := New(Config{
				Detector:   ckptDetectorConfig(),
				Shards:     1,
				OnDrift:    col.onDrift,
				Checkpoint: CheckpointConfig{Store: store, Interval: time.Hour},
			})
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				for range m.Events() {
				}
			}()
			for _, o := range seg {
				if err := m.Ingest("sensor-1", o); err != nil {
					t.Fatal(err)
				}
			}
			m.Close()
			rehydrated += m.Snapshot().Rehydrated
		}
		return col.seqs, rehydrated
	}

	controlSeqs, _ := run(NewMemStore(), obs)
	resumedSeqs, rehydrated := run(NewMemStore(), obs[:cut], obs[cut:])
	if rehydrated != 1 {
		t.Fatalf("rehydrated = %d, want 1", rehydrated)
	}
	if len(controlSeqs) == 0 {
		t.Fatal("control run detected no drifts; the test stream is too tame")
	}
	if len(resumedSeqs) != len(controlSeqs) {
		t.Fatalf("drift counts differ: resumed %d vs uninterrupted %d", len(resumedSeqs), len(controlSeqs))
	}
	for i := range controlSeqs {
		if controlSeqs[i] != resumedSeqs[i] {
			t.Fatalf("drift %d at seq %d resumed vs %d uninterrupted", i, resumedSeqs[i], controlSeqs[i])
		}
	}
}

// TestEvictSpillsAndReingestRehydrates pins the spill path: Evict persists
// the detector, and the next ingest restores it (Rehydrated counted, seq
// continued).
func TestEvictSpillsAndReingestRehydrates(t *testing.T) {
	store := NewMemStore()
	var col driftCollector
	m, err := New(Config{
		Detector:   ckptDetectorConfig(),
		Shards:     1,
		OnDrift:    col.onDrift,
		Checkpoint: CheckpointConfig{Store: store, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range m.Events() {
		}
	}()
	obs := ckptObs(3, 2400, 6, 3)
	for _, o := range obs[:1200] {
		if err := m.Ingest("s", o); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Evict("s"); err != nil {
		t.Fatal(err)
	}
	for _, o := range obs[1200:] {
		if err := m.Ingest("s", o); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	sn := m.Snapshot()
	if store.Len() != 1 {
		t.Fatalf("store holds %d streams, want 1", store.Len())
	}
	if sn.Rehydrated != 1 {
		t.Fatalf("Rehydrated = %d, want 1", sn.Rehydrated)
	}
	if sn.CheckpointErrors != 0 {
		t.Fatalf("CheckpointErrors = %d", sn.CheckpointErrors)
	}
	// Seq continued across the spill: every drift after the evict carries a
	// sequence above 1200.
	for _, seq := range col.seqs {
		if seq > 1200 {
			return
		}
	}
	// No post-evict drifts at all would mean the level shift was missed —
	// which the control in TestMonitorKillResumeMatchesUninterrupted rules
	// out — so reaching here is a real failure.
	t.Fatalf("no drift after the evict continued the sequence: %v", col.seqs)
}

// TestIdleGCSpillsToStore pins that idle GC writes the state out before
// dropping the stream.
func TestIdleGCSpillsToStore(t *testing.T) {
	store := NewMemStore()
	m, err := New(Config{
		Detector:   ckptDetectorConfig(),
		Shards:     1,
		IdleTTL:    30 * time.Millisecond,
		GCInterval: 10 * time.Millisecond,
		Checkpoint: CheckpointConfig{Store: store, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, o := range ckptObs(4, 50, 6, 3) {
		if err := m.Ingest("idle-stream", o); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Streams() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle stream never collected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The spill goes through the async writer; poll for it.
	for store.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle GC dropped the stream without spilling")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.Snapshot().IdleEvicted; got != 1 {
		t.Fatalf("IdleEvicted = %d, want 1", got)
	}
}

// TestPeriodicSnapshotCadence pins that a live stream is snapshotted on the
// configured interval without any evict.
func TestPeriodicSnapshotCadence(t *testing.T) {
	store := NewMemStore()
	m, err := New(Config{
		Detector:   ckptDetectorConfig(),
		Shards:     1,
		Checkpoint: CheckpointConfig{Store: store, Interval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := ckptObs(5, 40, 6, 3)
	deadline := time.Now().Add(5 * time.Second)
	for m.Snapshot().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no periodic snapshot within 5s")
		}
		for _, o := range obs {
			if err := m.Ingest("live", o); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Close()
	if store.Len() != 1 {
		t.Fatalf("store holds %d streams, want 1", store.Len())
	}
}

// TestCloseFlushesWithoutCadence pins the Close-time flush: a huge interval
// means no periodic snapshot ever fires, yet Close must persist the state.
func TestCloseFlushesWithoutCadence(t *testing.T) {
	store := NewMemStore()
	m, err := New(Config{
		Detector:   ckptDetectorConfig(),
		Shards:     2,
		Checkpoint: CheckpointConfig{Store: store, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := ckptObs(6, 35, 6, 3) // 35 obs: ends mid-mini-batch
	for _, id := range []string{"a", "b", "c"} {
		for _, o := range obs {
			if err := m.Ingest(id, o); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Close()
	if store.Len() != 3 {
		t.Fatalf("store holds %d streams after Close, want 3", store.Len())
	}
	if got := m.Snapshot().Checkpoints; got != 3 {
		t.Fatalf("Checkpoints = %d, want 3", got)
	}
}

// TestCorruptStoreEntryFallsBackToFresh pins rehydration robustness: a
// corrupt checkpoint is counted and the stream starts fresh instead of
// wedging ingest.
func TestCorruptStoreEntryFallsBackToFresh(t *testing.T) {
	store := NewMemStore()
	if err := store.Put("s", []byte("definitely not a frame")); err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Detector:   ckptDetectorConfig(),
		Shards:     1,
		Checkpoint: CheckpointConfig{Store: store, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ckptObs(7, 60, 6, 3) {
		if err := m.Ingest("s", o); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	sn := m.Snapshot()
	if sn.Ingested != 60 {
		t.Fatalf("Ingested = %d, want 60", sn.Ingested)
	}
	if sn.Rehydrated != 0 || sn.CheckpointErrors == 0 {
		t.Fatalf("Rehydrated=%d CheckpointErrors=%d, want 0 and >0", sn.Rehydrated, sn.CheckpointErrors)
	}
}

// TestNonStatefulDetectorsAreSkipped pins that checkpointing quietly skips
// detectors that cannot serialize (no errors, no store writes).
func TestNonStatefulDetectorsAreSkipped(t *testing.T) {
	store := NewMemStore()
	m, err := New(Config{
		Detector: ckptDetectorConfig(), // sizes per-class stats
		NewDetector: func(string) (detectors.Detector, error) {
			return detectors.NewRDDM(), nil // RDDM is not a StatefulDetector
		},
		Shards:     1,
		Checkpoint: CheckpointConfig{Store: store, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ckptObs(8, 40, 6, 3) {
		if err := m.Ingest("s", o); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Evict("s"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	sn := m.Snapshot()
	if store.Len() != 0 || sn.Checkpoints != 0 || sn.CheckpointErrors != 0 {
		t.Fatalf("non-stateful detector produced store activity: len=%d ckpts=%d errs=%d",
			store.Len(), sn.Checkpoints, sn.CheckpointErrors)
	}
}

// TestFSStoreSurvivesRestart pins the filesystem store end to end: monitor
// #1 checkpoints to disk, a brand-new monitor in a simulated new process
// rehydrates from the same directory, including stream IDs that need
// filename escaping.
func TestFSStoreSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")
	store1, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := "tenant/7:sensör #1" // path separators and non-ASCII must round-trip
	obs := ckptObs(9, 1200, 6, 3)

	m1, err := New(Config{
		Detector:   ckptDetectorConfig(),
		Shards:     1,
		Checkpoint: CheckpointConfig{Store: store1, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs[:700] {
		if err := m1.Ingest(id, o); err != nil {
			t.Fatal(err)
		}
	}
	m1.Close()

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("checkpoint dir: %v entries, err %v", len(entries), err)
	}

	store2, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(Config{
		Detector:   ckptDetectorConfig(),
		Shards:     1,
		Checkpoint: CheckpointConfig{Store: store2, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs[700:] {
		if err := m2.Ingest(id, o); err != nil {
			t.Fatal(err)
		}
	}
	m2.Close()
	sn := m2.Snapshot()
	if sn.Rehydrated != 1 || sn.CheckpointErrors != 0 {
		t.Fatalf("Rehydrated=%d CheckpointErrors=%d, want 1 and 0", sn.Rehydrated, sn.CheckpointErrors)
	}
}

// TestFSStoreEscaping pins the ID → filename mapping directly.
func TestFSStoreEscaping(t *testing.T) {
	store, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"plain", "a/b", "../escape", "", "ütf8 ☃", "trailing.", "a", "A"}
	for i, id := range ids {
		if err := store.Put(id, []byte{byte(i)}); err != nil {
			t.Fatalf("Put(%q): %v", id, err)
		}
	}
	for i, id := range ids {
		data, ok, err := store.Get(id)
		if err != nil || !ok || len(data) != 1 || data[0] != byte(i) {
			t.Fatalf("Get(%q) = %v %v %v", id, data, ok, err)
		}
	}
	if err := store.Delete("a/b"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := store.Get("a/b"); ok {
		t.Fatal("deleted entry still present")
	}
	if err := store.Delete("missing"); err != nil {
		t.Fatal("deleting a missing entry errored")
	}
	// Every file the store wrote must live directly inside its dir (the
	// "../escape" ID must not climb out).
	entries, err := os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(ids)-1 {
		t.Fatalf("dir holds %d entries, want %d", len(entries), len(ids)-1)
	}
}

// TestCheckpointEnvelopeRejectsForeignFrames pins that a stream envelope
// containing a detector frame of the wrong type counts as a rehydration
// error and the stream starts fresh.
func TestCheckpointEnvelopeRejectsForeignFrames(t *testing.T) {
	store := NewMemStore()
	// Persist a DDM snapshot wrapped in a stream envelope under the ID an
	// RBM-IM monitor will claim.
	var inner bytes.Buffer
	if err := detectors.NewDDM().SaveState(&inner); err != nil {
		t.Fatal(err)
	}
	env := newEnvelopeFrame(42, inner.Bytes())
	if err := store.Put("s", env); err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Detector:   ckptDetectorConfig(),
		Shards:     1,
		Checkpoint: CheckpointConfig{Store: store, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ckptObs(10, 30, 6, 3) {
		if err := m.Ingest("s", o); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	sn := m.Snapshot()
	if sn.Rehydrated != 0 || sn.CheckpointErrors == 0 {
		t.Fatalf("Rehydrated=%d CheckpointErrors=%d, want 0 and >0", sn.Rehydrated, sn.CheckpointErrors)
	}
}
