package monitor

// Stream-to-shard placement. Stream IDs are hashed with FNV-1a and placed on
// a shard by Jump Consistent Hash (Lamping & Veach, 2014): when the shard
// count changes between two monitor deployments, only ~1/n of the streams
// move — the property that keeps per-stream detector state (which lives on
// its shard) maximally reusable across resizes in systems that snapshot and
// restore it.

// fnv1a hashes s with the 64-bit FNV-1a function.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// jumpHash maps key onto one of buckets shards with the jump consistent
// hash algorithm. buckets must be >= 1.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// ShardFor returns the shard index for a stream ID: FNV-1a over the ID, jump
// consistent hash over the shard count. It is exported because the placement
// function doubles as the client-side connection-affinity function — a
// pipelined client pool routing stream X over connection ShardFor(X, conns)
// keeps every stream on one connection (preserving per-stream order) with the
// same minimal-movement property under pool resizes that the monitor's shard
// placement has.
func ShardFor(id string, shards int) int {
	return jumpHash(fnv1a(id), shards)
}

// Hash64 exposes the placement hash (64-bit FNV-1a) for callers that build
// their own consistent structures over stream IDs — the cluster client's
// hash ring and its striped migration gates (internal/server) hash with the
// same function the monitor places shards with, so one hash quality story
// covers every placement decision in the system.
func Hash64(s string) uint64 { return fnv1a(s) }
