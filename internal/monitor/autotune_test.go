package monitor

import (
	"runtime"
	"strings"
	"testing"
)

func TestAutotuneShardsTracksGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(p)
		if got := AutotuneShards(); got != p {
			t.Errorf("GOMAXPROCS=%d: AutotuneShards() = %d, want %d", p, got, p)
		}
	}
}

func TestConfigZeroShardsAutotunes(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	m, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.Snapshot().Shards; got != 4 {
		t.Fatalf("Shards = %d with Config.Shards=0 and GOMAXPROCS=4, want 4", got)
	}
}

// TestTuneAdviceBranches forces each saturation regime by seeding ring
// high-water marks directly and pinning GOMAXPROCS.
func TestTuneAdviceBranches(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	cases := []struct {
		name        string
		shards      int
		procs       int
		highFrac    float64 // high-water / capacity to plant on shard 0
		recommended int
		reasonHas   string
	}{
		{"oversharded", 8, 2, 0.0, 2, "more shards than schedulable cores"},
		{"saturated-with-headroom", 2, 8, 0.9, 4, "add shards"},
		{"saturated-at-core-limit", 4, 4, 1.0, 4, "scale out"},
		{"balanced", 2, 4, 0.1, 2, "balanced"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runtime.GOMAXPROCS(tc.procs)
			cfg := testConfig(tc.shards)
			cfg.QueueSize = 64
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			r := m.shards[0].in
			r.highWater.Store(uint64(tc.highFrac * float64(r.cap())))
			a := m.TuneAdvice()
			if a.Shards != tc.shards || a.GOMAXPROCS != tc.procs {
				t.Fatalf("advice observed shards=%d procs=%d, want %d/%d", a.Shards, a.GOMAXPROCS, tc.shards, tc.procs)
			}
			if a.Recommended != tc.recommended {
				t.Fatalf("Recommended = %d, want %d (%s)", a.Recommended, tc.recommended, a)
			}
			if !strings.Contains(a.Reason, tc.reasonHas) {
				t.Fatalf("Reason %q does not mention %q", a.Reason, tc.reasonHas)
			}
			if s := a.String(); !strings.Contains(s, "recommended=") {
				t.Fatalf("String() = %q, want the recommended= field", s)
			}
		})
	}
}
