package monitor

// Bounded MPSC ring buffer — the shard ingest queue. Replaces the previous
// buffered-channel queues: many producer goroutines (Ingest/IngestBatch
// callers, server connections) push envelopes concurrently, exactly one
// consumer (the shard goroutine) drains them, and per-producer FIFO order is
// preserved — the property the ordering-equivalence guarantee rests on
// (drift decisions are sequence-dependent, so a stream's observations must
// reach its detector in send order).
//
// The slot protocol is Vyukov's bounded MPMC queue specialised to a single
// consumer: each slot carries a sequence number; producers claim a ticket
// with one CAS on the head index and publish by storing seq = ticket+1;
// the consumer owns the tail outright and retires a slot by storing
// seq = ticket+capacity. Producers never read the tail and the consumer
// never touches the head, so the only cross-side traffic is the per-slot
// seq — and head and tail live on their own cache lines to keep producer
// CAS traffic from invalidating the consumer's line (false sharing).
//
// Batches move as units: an IngestBatch slab is one envelope, one ticket,
// one slot — the queue cost of a 256-observation block equals that of a
// single observation — and the consumer pops up to a whole micro-batch of
// envelopes per wakeup (popBatch), so a busy shard pays the synchronization
// cost once per drain, not once per message.
//
// Waiting is adaptive spin-then-park on both sides. The consumer spins
// briefly (work usually arrives within microseconds under load), then
// publishes a parked flag and blocks on a wake channel; a producer that
// observes the flag clears it with a CAS and sends one token — at most one
// wakeup per park, no thundering herd. Producers that hit a full ring spin,
// then queue on a condition variable that the consumer broadcasts only when
// the waiter count is non-zero, so the uncontended fast path never touches
// the lock.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// cacheLinePad separates hot indices so producer CAS traffic and consumer
// stores do not share a line (64 bytes on amd64/arm64; 128 would also cover
// adjacent-line prefetchers, but 64 matches the rest of the codebase).
const cacheLinePad = 64

// ringSlot is one queue cell: the Vyukov sequence number plus the envelope
// payload. Slots are deliberately unpadded — envelopes are written once per
// hop and adjacent-slot sharing is amortized by batch pops.
type ringSlot struct {
	seq atomic.Uint64
	env envelope
}

// ring is the bounded MPSC queue. Capacity is rounded up to a power of two
// so index math is a mask, not a division.
type ring struct {
	mask  uint64
	slots []ringSlot

	_    [cacheLinePad]byte
	head atomic.Uint64 // next producer ticket; CAS-claimed
	_    [cacheLinePad]byte
	tail atomic.Uint64 // next consumer ticket; written only by the consumer
	_    [cacheLinePad]byte

	// parked is 1 while the consumer is blocked on wake; a producer that
	// CASes it back to 0 owns the (single) wakeup token.
	parked atomic.Uint32
	wake   chan struct{}

	// highWater tracks the maximum envelope occupancy the consumer has
	// observed — the signal the shard-count autotuner reads.
	highWater atomic.Uint64

	// Full-ring producer parking. waiters is read by the consumer on every
	// drain; the mutex and cond are only touched on the slow path.
	waiters atomic.Int32
	fullMu  sync.Mutex
	full    *sync.Cond
}

// newRing builds a ring with at least the given capacity (rounded up to a
// power of two). The minimum is 2: with a single slot the published sequence
// (ticket+1) and the recycled sequence (ticket+capacity) coincide, and a
// producer would overwrite an unconsumed envelope.
func newRing(capacity int) *ring {
	n := uint64(2)
	for int(n) < capacity {
		n <<= 1
	}
	r := &ring{
		mask:  n - 1,
		slots: make([]ringSlot, n),
		wake:  make(chan struct{}, 1),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	r.full = sync.NewCond(&r.fullMu)
	return r
}

// cap returns the ring's envelope capacity.
func (r *ring) cap() int { return len(r.slots) }

// occupancy returns the current number of queued envelopes. head can lead
// the published slots by in-flight claims, so this is a bounded estimate —
// exact whenever producers are quiescent.
func (r *ring) occupancy() uint64 {
	head := r.head.Load()
	tail := r.tail.Load()
	if head < tail { // racing loads; re-read order makes this transient
		return 0
	}
	return head - tail
}

// tryPush attempts to enqueue without blocking; false means the ring is
// full. Safe for any number of concurrent producers.
func (r *ring) tryPush(env envelope) bool {
	pos := r.head.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.head.CompareAndSwap(pos, pos+1) {
				s.env = env
				s.seq.Store(pos + 1)
				r.wakeConsumer()
				return true
			}
			pos = r.head.Load()
		case d < 0:
			// The slot still holds an unconsumed envelope from the previous
			// lap: the ring is full.
			return false
		default:
			// Another producer claimed this ticket; chase the head.
			pos = r.head.Load()
		}
	}
}

// pushSpins bounds how many yielding retries a producer burns on a full
// ring before parking on the condition variable.
const pushSpins = 64

// push enqueues, blocking while the ring is full — the backpressure path of
// Ingest/IngestBatch. It always succeeds.
func (r *ring) push(env envelope) {
	for i := 0; i < pushSpins; i++ {
		if r.tryPush(env) {
			return
		}
		runtime.Gosched()
	}
	r.fullMu.Lock()
	r.waiters.Add(1)
	// Re-try after registering as a waiter and before every wait: the
	// consumer frees slots, then checks waiters — either it sees our
	// registration and broadcasts, or our retry sees the freed slots.
	for !r.tryPush(env) {
		r.full.Wait()
	}
	r.waiters.Add(-1)
	r.fullMu.Unlock()
}

// wakeConsumer delivers at most one wakeup token when the consumer is
// parked. The CAS makes exactly one of the racing producers responsible.
func (r *ring) wakeConsumer() {
	if r.parked.Load() == 1 && r.parked.CompareAndSwap(1, 0) {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}

// popBatch dequeues up to len(dst) envelopes into dst and returns how many
// it moved. Consumer-only. It records the pre-drain occupancy high-water
// mark and wakes parked producers when slots were freed.
func (r *ring) popBatch(dst []envelope) int {
	pos := r.tail.Load()
	if occ := r.head.Load() - pos; occ > r.highWater.Load() {
		r.highWater.Store(occ) // single writer: plain store is a max-update
	}
	n := 0
	for n < len(dst) {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		if int64(seq)-int64(pos+1) < 0 {
			break // slot not yet published: ring is empty (from our side)
		}
		dst[n] = s.env
		s.env = envelope{} // drop slab references so the pool can recycle
		s.seq.Store(pos + r.mask + 1)
		pos++
		n++
	}
	if n > 0 {
		r.tail.Store(pos)
		if r.waiters.Load() > 0 {
			r.fullMu.Lock()
			r.full.Broadcast()
			r.fullMu.Unlock()
		}
	}
	return n
}

// resetHighWater restarts the high-water window at the current occupancy.
// Consumer-only, like every highWater store (popBatch records the mark, the
// shard goroutine resets it on the FlushCheckpoints barrier), so the plain
// store never races a concurrent max-update.
func (r *ring) resetHighWater() { r.highWater.Store(r.occupancy()) }

// prepark publishes the consumer's intent to sleep. The caller must re-check
// occupancy() afterwards and only block on wakeCh() when it is still zero:
// a producer either sees parked==1 (and sends a token) or published its slot
// before our flag store (and the occupancy re-check sees it) — Go atomics
// are sequentially consistent, so both cannot be missed.
func (r *ring) prepark() { r.parked.Store(1) }

// unpark withdraws the parked flag (after a wakeup, a ticker firing, or an
// aborted park). A stale token left in wake only causes one spurious — and
// harmless — extra loop iteration later.
func (r *ring) unpark() { r.parked.Store(0) }

// wakeCh is the channel the parked consumer blocks on.
func (r *ring) wakeCh() <-chan struct{} { return r.wake }
