package monitor

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"rbmim/internal/telemetry"
	"rbmim/internal/telemetry/telemetrytest"
)

func testSnapshot() Snapshot {
	return Snapshot{
		Shards:             4,
		Streams:            17,
		Ingested:           123456,
		Drifts:             42,
		Warnings:           7,
		DriftsByClass:      []uint64{3, 0, 39},
		Dropped:            5,
		EventsDropped:      2,
		IdleEvicted:        1,
		StreamErrors:       9,
		Received:           123465,
		Rejected:           9,
		Queued:             0,
		QueueCap:           1024,
		QueueHighWater:     512,
		Checkpoints:        88,
		CheckpointErrors:   1,
		Rehydrated:         6,
		Subscribers:        3,
		SubscriberDropped:  11,
		SubscribersEvicted: 1,
		InFlightHighWater:  16,
		RepliesCoalesced:   2048,
		Shedded:            13,
		DedupHits:          21,
		ShardStreams:       []int{5, 4, 4, 4},
		ShardIngested:      []uint64{31000, 30000, 31456, 31000},
		Uptime:             90 * time.Second,
		InstancesPerSec:    1371.7333333333333,
		Latency:            testStages(),
	}
}

// testStages builds latency stages through real histograms so the stored
// quantiles are consistent with the bucket vectors.
func testStages() []telemetry.Stage {
	var qw, det telemetry.Histogram
	for i := int64(1); i <= 1<<20; i *= 2 {
		qw.Observe(i)
		det.Observe(i * 3)
	}
	return []telemetry.Stage{det.Load("detector_update"), qw.Load("queue_wait")}
}

// TestSnapshotJSONRoundTrip: the canonical encoding must round-trip through
// stdlib Unmarshal field-for-field (the server's Snapshot reply decodes this
// way) and be byte-stable across calls.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	sn := testSnapshot()
	data, err := json.Marshal(sn)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sn, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, sn)
	}
	if again, _ := json.Marshal(sn); !bytes.Equal(data, again) {
		t.Fatal("encoding is not byte-stable across calls")
	}
	// Nil slices must survive too (a custom-factory monitor has nil
	// DriftsByClass).
	sn.DriftsByClass = nil
	data, err = json.Marshal(sn)
	if err != nil {
		t.Fatal(err)
	}
	back = Snapshot{}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.DriftsByClass != nil {
		t.Fatalf("nil DriftsByClass decoded as %v", back.DriftsByClass)
	}
}

// TestSnapshotJSONStableFieldOrder pins the declaration order of the keys —
// the property ad-hoc struct printing (and map-based encoders) cannot give.
func TestSnapshotJSONStableFieldOrder(t *testing.T) {
	data := string(testSnapshot().AppendJSON(nil))
	order := []string{
		"Shards", "Streams", "Ingested", "Drifts", "Warnings",
		"DriftsByClass", "Dropped", "EventsDropped", "IdleEvicted",
		"StreamErrors", "Received", "Rejected", "Queued", "QueueCap",
		"QueueHighWater", "Checkpoints", "CheckpointErrors", "Rehydrated",
		"Subscribers", "SubscriberDropped", "SubscribersEvicted",
		"InFlightHighWater", "RepliesCoalesced", "Shedded", "DedupHits",
		"ShardStreams", "ShardIngested", "Uptime", "InstancesPerSec",
		"Latency",
	}
	pos := -1
	for _, key := range order {
		i := strings.Index(data, `"`+key+`"`)
		if i < 0 {
			t.Fatalf("key %q missing from %s", key, data)
		}
		if i < pos {
			t.Fatalf("key %q out of declaration order in %s", key, data)
		}
		pos = i
	}
	// The field set must not silently diverge from the struct.
	if n := reflect.TypeOf(Snapshot{}).NumField(); n != len(order) {
		t.Fatalf("Snapshot has %d fields but the canonical encoding emits %d — update AppendJSON and this test", n, len(order))
	}
}

// TestSnapshotPrometheus spot-checks the exposition format: metric lines,
// HELP/TYPE headers, and the labelled per-class / per-shard series.
func TestSnapshotPrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := testSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rbmim_ingested_total counter",
		"rbmim_ingested_total 123456",
		"rbmim_streams 17",
		"rbmim_drifts_total 42",
		`rbmim_drifts_by_class_total{class="2"} 39`,
		`rbmim_shard_ingested_total{shard="3"} 31000`,
		"rbmim_subscribers 3",
		"rbmim_subscriber_dropped_total 11",
		"rbmim_subscribers_evicted_total 1",
		"rbmim_inflight_high_water 16",
		"rbmim_replies_coalesced_total 2048",
		"rbmim_shedded_total 13",
		"rbmim_dedup_hits_total 21",
		"rbmim_uptime_seconds 90",
		"rbmim_checkpoints_total 88",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Fatalf("malformed metric line %q", line)
		}
	}
}

// TestSnapshotPrometheusHistograms checks the latency family against the
// exposition invariants (cumulative buckets, le="+Inf" == _count) and that
// repeated scrapes of the same snapshot are byte-identical.
func TestSnapshotPrometheusHistograms(t *testing.T) {
	sn := testSnapshot()
	var a, b bytes.Buffer
	if err := sn.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := sn.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := a.String()
	if out != b.String() {
		t.Fatal("two scrapes of the same snapshot differ")
	}
	if !strings.Contains(out, "# TYPE rbmim_stage_seconds histogram") {
		t.Fatalf("missing histogram TYPE header:\n%s", out)
	}
	for _, stage := range []string{"detector_update", "queue_wait"} {
		if !strings.Contains(out, `rbmim_stage_seconds_bucket{stage="`+stage+`"`) {
			t.Fatalf("missing bucket series for stage %q", stage)
		}
	}
	telemetrytest.CheckHistogramExposition(t, out, "rbmim_stage_seconds")
}

// TestMergeSnapshotsLatency: cluster merging sums latency histograms
// bucket-wise — a split fleet's merged stages equal one combined histogram.
func TestMergeSnapshotsLatency(t *testing.T) {
	var whole, a, b telemetry.Histogram
	for i := int64(1); i < 4096; i += 7 {
		whole.Observe(i)
		if i%2 == 1 {
			a.Observe(i)
		} else {
			b.Observe(i)
		}
	}
	m1 := Snapshot{Latency: []telemetry.Stage{a.Load("queue_wait")}}
	m2 := Snapshot{Latency: []telemetry.Stage{b.Load("queue_wait"), b.Load("detector_update")}}
	m3 := Snapshot{} // a telemetry-off member contributes nothing
	merged := MergeSnapshots(m1, m2, m3)
	var got *telemetry.Stage
	for i := range merged.Latency {
		if merged.Latency[i].Stage == "queue_wait" {
			got = &merged.Latency[i]
		}
	}
	if got == nil {
		t.Fatalf("merged snapshot lost queue_wait: %+v", merged.Latency)
	}
	want := whole.Load("queue_wait")
	if got.Count != want.Count || got.SumNS != want.SumNS {
		t.Fatalf("merged Count=%d SumNS=%d, want %d/%d", got.Count, got.SumNS, want.Count, want.SumNS)
	}
	for i := range want.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: merged %d, want %d", i, got.Buckets[i], want.Buckets[i])
		}
	}
}
