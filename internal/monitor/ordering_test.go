package monitor

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"rbmim/internal/codec"
	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/stream"
	"rbmim/internal/synth"
)

// buildOrderingWorkload generates a deterministic multi-stream workload with
// a sudden concept change halfway through each stream, so the equivalence
// check covers real drift decisions, not just quiet streams.
func buildOrderingWorkload(t *testing.T, streams, perStream int) map[string][]detectors.Observation {
	t.Helper()
	base := synth.Config{Features: 8, Classes: 3, Seed: 3}
	work := make(map[string][]detectors.Observation, streams)
	for s := 0; s < streams; s++ {
		before, err := synth.NewRBF(base, 3, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		afterCfg := base
		afterCfg.Seed = 200 + int64(s)
		after, err := synth.NewRBF(afterCfg, 3, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		src := stream.NewDriftStream(before, after, stream.Sudden, perStream/2, 0, 1)
		obs := make([]detectors.Observation, perStream)
		for i := range obs {
			in := src.Next()
			obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
		}
		work[fmt.Sprintf("stream-%d", s)] = obs
	}
	return work
}

// runOrderingWorkload pushes the workload through a monitor with the given
// parallelism and returns (per-stream drift sequence numbers, per-stream
// weight checksums restored from flushed checkpoints). Streams are split
// across `producers` goroutines — each stream is owned by exactly one
// producer, so per-stream send order is preserved while producers race each
// other on the shard rings.
func runOrderingWorkload(t *testing.T, work map[string][]detectors.Observation, shards, producers, procs int) (map[string][]uint64, map[string]uint64) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	var mu sync.Mutex
	drifts := make(map[string][]uint64)
	store := NewMemStore()
	m, err := New(Config{
		Detector: core.Config{
			Features: 8, Classes: 3, Seed: 11,
			BatchSize: 25, WarmupBatches: 5, AdaptiveWindow: true,
		},
		Shards:     shards,
		QueueSize:  128,
		Checkpoint: CheckpointConfig{Store: store},
		// OnDrift runs on the shard goroutine; per-stream events therefore
		// arrive in sequence order even while shards interleave.
		OnDrift: func(ev Event) {
			mu.Lock()
			drifts[ev.StreamID] = append(drifts[ev.StreamID], ev.Seq)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(work))
	for id := range work {
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		mine := make([]string, 0, len(ids)/producers+1)
		for i := p; i < len(ids); i += producers {
			mine = append(mine, ids[i])
		}
		wg.Add(1)
		go func(mine []string) {
			defer wg.Done()
			// Interleave blocks across the producer's streams so shard
			// queues see mixed traffic, not one stream at a time.
			const block = 50
			for off := 0; ; off += block {
				sent := false
				for _, id := range mine {
					obs := work[id]
					if off >= len(obs) {
						continue
					}
					end := off + block
					if end > len(obs) {
						end = len(obs)
					}
					if err := m.IngestBatch(id, obs[off:end]); err != nil {
						t.Errorf("IngestBatch(%s): %v", id, err)
						return
					}
					sent = true
				}
				if !sent {
					return
				}
			}
		}(mine)
	}
	wg.Wait()
	if err := m.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sums := make(map[string]uint64, len(ids))
	for _, id := range ids {
		data, ok, err := store.Get(id)
		if err != nil || !ok {
			t.Fatalf("checkpoint for %s after flush: ok=%v err=%v", id, ok, err)
		}
		// Restore into a fresh detector and checksum the learned weights.
		// The raw frame is NOT hashed directly: it also carries the last
		// drift's attributed class list, which is a block-union and hence
		// grouping-dependent — the weights are the bit-identity guarantee.
		det, err := core.NewDetector(core.Config{
			Features: 8, Classes: 3, Seed: 11 ^ int64(fnv1a(id)),
			BatchSize: 25, WarmupBatches: 5, AdaptiveWindow: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Stored frames are the monitor envelope: seq (8 bytes) + detector
		// frame (see newEnvelopeFrame).
		payload, err := codec.ExpectFrame(data, codec.KindMonitorStream)
		if err != nil {
			t.Fatalf("checkpoint frame for %s: %v", id, err)
		}
		if err := det.LoadStateBytes(payload[8:]); err != nil {
			t.Fatalf("restore %s: %v", id, err)
		}
		sums[id] = det.RBM().WeightChecksum()
	}
	sn := m.Snapshot()
	m.Close()
	// Conservation at the flush barrier: everything accepted was processed.
	if sn.Received != sn.Ingested+sn.Rejected || sn.Queued != 0 {
		t.Fatalf("counters not conserved at barrier: %+v", sn)
	}
	return drifts, sums
}

// TestOrderingEquivalenceAcrossParallelism is the tentpole guarantee: the
// same workload run single-threaded (1 shard, 1 producer, GOMAXPROCS=1) and
// fully parallel (8 shards, 8 producers, GOMAXPROCS=8) must yield identical
// per-stream drift decisions (sequence numbers at detection) and bit-identical
// detector state, verified via checkpoint checksums after a flush barrier.
//
// Event.Classes is deliberately NOT compared: batched attribution is the
// union over a flushed block's drifting mini-batches, so the class list
// depends on how observations were grouped in flight — the weights and the
// drift decisions do not.
func TestOrderingEquivalenceAcrossParallelism(t *testing.T) {
	streams, perStream := 6, 4000
	if testing.Short() {
		streams, perStream = 4, 1500
	}
	work := buildOrderingWorkload(t, streams, perStream)
	serialDrifts, serialSums := runOrderingWorkload(t, work, 1, 1, 1)
	parallelDrifts, parallelSums := runOrderingWorkload(t, work, 8, 8, 8)

	total := 0
	for id := range work {
		s, p := serialDrifts[id], parallelDrifts[id]
		if len(s) != len(p) {
			t.Fatalf("%s: %d drifts serial vs %d parallel\nserial:   %v\nparallel: %v", id, len(s), len(p), s, p)
		}
		for i := range s {
			if s[i] != p[i] {
				t.Fatalf("%s: drift %d at seq %d serial vs %d parallel", id, i, s[i], p[i])
			}
		}
		total += len(s)
		if serialSums[id] != parallelSums[id] {
			t.Fatalf("%s: weight checksum %x serial vs %x parallel — detector state diverged", id, serialSums[id], parallelSums[id])
		}
	}
	if total == 0 {
		t.Fatal("no drift detected on any stream: the equivalence check is vacuous")
	}
}
