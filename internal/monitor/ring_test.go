package monitor

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024},
	} {
		if got := newRing(tc.ask).cap(); got != tc.want {
			t.Errorf("newRing(%d).cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestRingFullEmptyWraparound exercises the boundary conditions across
// several laps: an empty ring pops nothing, a full ring refuses pushes, and
// the slot sequence numbers survive index wraparound.
func TestRingFullEmptyWraparound(t *testing.T) {
	r := newRing(4)
	dst := make([]envelope, 8)
	if n := r.popBatch(dst); n != 0 {
		t.Fatalf("empty ring popped %d envelopes", n)
	}
	for lap := 0; lap < 10; lap++ {
		for i := 0; i < 4; i++ {
			if !r.tryPush(envelope{id: fmt.Sprintf("%d-%d", lap, i)}) {
				t.Fatalf("lap %d: push %d refused below capacity", lap, i)
			}
		}
		if r.tryPush(envelope{id: "overflow"}) {
			t.Fatalf("lap %d: push accepted on a full ring", lap)
		}
		if got := r.occupancy(); got != 4 {
			t.Fatalf("lap %d: occupancy = %d, want 4", lap, got)
		}
		n := r.popBatch(dst)
		if n != 4 {
			t.Fatalf("lap %d: popped %d envelopes, want 4", lap, n)
		}
		for i := 0; i < n; i++ {
			if want := fmt.Sprintf("%d-%d", lap, i); dst[i].id != want {
				t.Fatalf("lap %d: pop %d = %q, want %q (FIFO violated)", lap, i, dst[i].id, want)
			}
		}
		if got := r.occupancy(); got != 0 {
			t.Fatalf("lap %d: occupancy after drain = %d, want 0", lap, got)
		}
	}
	// Partial pops interleaved with pushes must also hold FIFO across the
	// wraparound seam.
	seq := 0
	next := 0
	for step := 0; step < 100; step++ {
		if r.tryPush(envelope{id: strconv.Itoa(seq)}) {
			seq++
		}
		if step%3 == 0 {
			for i, n := 0, r.popBatch(dst[:1]); i < n; i++ {
				if dst[i].id != strconv.Itoa(next) {
					t.Fatalf("step %d: popped %q, want %d", step, dst[i].id, next)
				}
				next++
			}
		}
	}
}

// refQueue is the mutex-guarded reference implementation the model-based
// test checks the ring against: same capacity semantics, same FIFO order.
type refQueue struct {
	mu  sync.Mutex
	cap int
	q   []envelope
}

func (r *refQueue) tryPush(env envelope) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.q) >= r.cap {
		return false
	}
	r.q = append(r.q, env)
	return true
}

func (r *refQueue) popBatch(dst []envelope) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := copy(dst, r.q)
	r.q = r.q[:copy(r.q, r.q[n:])]
	return n
}

// TestRingModelBased drives the ring and the reference queue through the
// same randomized operation sequence and demands identical accept/refuse
// decisions and identical popped contents at every step.
func TestRingModelBased(t *testing.T) {
	for _, capacity := range []int{2, 4, 16, 64} {
		rng := rand.New(rand.NewSource(int64(1000 + capacity)))
		r := newRing(capacity)
		ref := &refQueue{cap: r.cap()} // the ring may round up; mirror it
		seq := 0
		got := make([]envelope, 32)
		want := make([]envelope, 32)
		for step := 0; step < 20000; step++ {
			if rng.Intn(2) == 0 {
				env := envelope{id: strconv.Itoa(seq), op: opcode(seq % 3)}
				seq++
				if ok, wantOK := r.tryPush(env), ref.tryPush(env); ok != wantOK {
					t.Fatalf("cap %d step %d: tryPush = %v, reference = %v", capacity, step, ok, wantOK)
				}
			} else {
				k := 1 + rng.Intn(len(got))
				n, wantN := r.popBatch(got[:k]), ref.popBatch(want[:k])
				if n != wantN {
					t.Fatalf("cap %d step %d: popBatch(%d) = %d, reference = %d", capacity, step, k, n, wantN)
				}
				for i := 0; i < n; i++ {
					if got[i].id != want[i].id || got[i].op != want[i].op {
						t.Fatalf("cap %d step %d: pop %d = %+v, reference %+v", capacity, step, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestRingConcurrentStress hammers one ring from many producers while the
// consumer mimics the shard loop (batch pops plus the spin-then-park
// protocol). Every producer's envelopes must arrive exactly once and in that
// producer's send order — the per-stream ordering guarantee the monitor's
// parallel ingest plane is built on. Run under -race in CI.
func TestRingConcurrentStress(t *testing.T) {
	const (
		producers = 8
		perProd   = 5000
	)
	r := newRing(64) // small: forces the full-ring parking path constantly
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				r.push(envelope{id: strconv.Itoa(p) + "-" + strconv.Itoa(i)})
			}
		}(p)
	}
	lastSeen := make([]int, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	received := 0
	dst := make([]envelope, microBatch)
	for received < producers*perProd {
		n := r.popBatch(dst)
		if n == 0 {
			// Exercise the same park/wake handshake the shard loop uses.
			r.prepark()
			if r.occupancy() == 0 {
				select {
				case <-r.wakeCh():
				default:
					runtime.Gosched()
				}
			}
			r.unpark()
			continue
		}
		for i := 0; i < n; i++ {
			part := strings.SplitN(dst[i].id, "-", 2)
			p, _ := strconv.Atoi(part[0])
			seq, _ := strconv.Atoi(part[1])
			if seq != lastSeen[p]+1 {
				t.Fatalf("producer %d: got seq %d after %d (reorder or loss)", p, seq, lastSeen[p])
			}
			lastSeen[p] = seq
			received++
		}
	}
	wg.Wait()
	if got := r.popBatch(dst); got != 0 {
		t.Fatalf("ring still holds %d envelopes after full drain", got)
	}
	for p, last := range lastSeen {
		if last != perProd-1 {
			t.Fatalf("producer %d: last delivered seq %d, want %d", p, last, perProd-1)
		}
	}
	if hw := r.highWater.Load(); hw == 0 || hw > uint64(r.cap()) {
		t.Fatalf("highWater = %d, want within (0, %d]", hw, r.cap())
	}
}

// TestRingBlockingPushBackpressure pins the slow path: producers that hit a
// full ring must park and complete once the consumer drains — no lost
// wakeups, no spins forever.
func TestRingBlockingPushBackpressure(t *testing.T) {
	r := newRing(2)
	for i := 0; i < r.cap(); i++ {
		if !r.tryPush(envelope{id: "fill"}) {
			t.Fatal("fill push refused")
		}
	}
	done := make(chan struct{})
	go func() {
		r.push(envelope{id: "parked"}) // must block: ring is full
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("push on a full ring returned before a drain")
	default:
	}
	dst := make([]envelope, 1)
	for drained := 0; drained < r.cap(); {
		drained += r.popBatch(dst)
	}
	<-done // the parked producer must now complete
	if got := r.occupancy(); got != 1 {
		t.Fatalf("occupancy = %d, want 1 (the parked producer's envelope)", got)
	}
}
