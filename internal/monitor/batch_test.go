package monitor

import (
	"fmt"
	"sync"
	"testing"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/synth"
)

// recordingDetector captures the labels it saw, so tests can assert both
// delivery and per-stream ordering across the batched path.
type recordingDetector struct {
	mu     sync.Mutex
	labels []int
}

func (r *recordingDetector) Update(o detectors.Observation) detectors.State {
	r.mu.Lock()
	r.labels = append(r.labels, o.TrueClass)
	r.mu.Unlock()
	return detectors.None
}
func (r *recordingDetector) Reset()       {}
func (r *recordingDetector) Name() string { return "recorder" }
func (r *recordingDetector) seen() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.labels...)
}

// blockingDetector parks every Update on a channel, letting tests hold a
// shard busy while its queue fills.
type blockingDetector struct{ gate chan struct{} }

func (b *blockingDetector) Update(detectors.Observation) detectors.State {
	<-b.gate
	return detectors.None
}
func (b *blockingDetector) Reset()       {}
func (b *blockingDetector) Name() string { return "blocker" }

// alwaysDrift signals Drift on every observation.
type alwaysDrift struct{}

func (alwaysDrift) Update(detectors.Observation) detectors.State { return detectors.Drift }
func (alwaysDrift) Reset()                                       {}
func (alwaysDrift) Name() string                                 { return "alwaysDrift" }

func TestIngestBatchMatchesPerInstanceIngest(t *testing.T) {
	// The same pre-drawn drifting workload through two monitors — one fed
	// per instance, one in 64-observation blocks — must produce identical
	// ingest and drift counts (RBM-IM's batched path is state-identical).
	const instances = 12000
	gen, err := synth.NewRBF(synth.Config{Features: 8, Classes: 3, Seed: 3}, 3, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]detectors.Observation, instances)
	for i := range obs {
		in := gen.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	run := func(batch int) Snapshot {
		m, err := New(testConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for range m.Events() {
			}
		}()
		for start := 0; start < instances; start += batch {
			end := start + batch
			if end > instances {
				end = instances
			}
			if batch == 1 {
				if err := m.Ingest("s", obs[start]); err != nil {
					t.Error(err)
				}
			} else if err := m.IngestBatch("s", obs[start:end]); err != nil {
				t.Error(err)
			}
		}
		m.Close()
		return m.Snapshot()
	}
	single := run(1)
	batched := run(64)
	if single.Ingested != batched.Ingested || single.Ingested != instances {
		t.Fatalf("ingested: single=%d batched=%d want %d", single.Ingested, batched.Ingested, instances)
	}
	if single.Drifts != batched.Drifts || single.Warnings != batched.Warnings {
		t.Fatalf("signals diverge: single drifts=%d warnings=%d, batched drifts=%d warnings=%d",
			single.Drifts, single.Warnings, batched.Drifts, batched.Warnings)
	}
}

func TestIngestBatchPreservesPerStreamOrder(t *testing.T) {
	recorders := map[string]*recordingDetector{}
	var mu sync.Mutex
	m, err := New(Config{
		Shards: 2,
		NewDetector: func(id string) (detectors.Detector, error) {
			r := &recordingDetector{}
			mu.Lock()
			recorders[id] = r
			mu.Unlock()
			return r, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0}
	const rounds = 200
	for i := 0; i < rounds; i++ {
		// Interleave singles and blocks on two streams; per-stream label
		// order must come out monotonically increasing.
		if err := m.Ingest("a", detectors.Observation{X: x, TrueClass: 3 * i}); err != nil {
			t.Fatal(err)
		}
		block := []detectors.Observation{
			{X: x, TrueClass: 3*i + 1},
			{X: x, TrueClass: 3*i + 2},
		}
		if err := m.IngestBatch("a", block); err != nil {
			t.Fatal(err)
		}
		if err := m.IngestBatch("b", block[:1]); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	a := recorders["a"].seen()
	if len(a) != 3*rounds {
		t.Fatalf("stream a saw %d observations, want %d", len(a), 3*rounds)
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("stream a order violated at %d: %d after %d", i, a[i], a[i-1])
		}
	}
	if b := recorders["b"].seen(); len(b) != rounds {
		t.Fatalf("stream b saw %d observations, want %d", len(b), rounds)
	}
}

func TestIngestBatchCopiesBuffers(t *testing.T) {
	m, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// One backing array reused across calls, including Scores: the monitor
	// must have slab-copied everything before returning.
	x := make([]float64, 8)
	scores := make([]float64, 3)
	block := make([]detectors.Observation, 4)
	for i := 0; i < 64; i++ {
		for j := range block {
			for k := range x {
				x[k] = float64(i + j + k)
			}
			scores[0] = float64(i)
			block[j] = detectors.Observation{X: x, TrueClass: i % 3, Predicted: i % 3, Scores: scores}
		}
		if err := m.IngestBatch("reused", block); err != nil {
			t.Fatal(err)
		}
		for k := range x {
			x[k] = -1
		}
		scores[0] = -1
	}
}

func TestIngestBatchEmptyAndClosed(t *testing.T) {
	m, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.IngestBatch("s", nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	m.Close()
	if err := m.IngestBatch("s", make([]detectors.Observation, 1)); err != ErrClosed {
		t.Fatalf("IngestBatch after Close = %v, want ErrClosed", err)
	}
	if _, err := m.TryIngestBatch("s", make([]detectors.Observation, 1)); err != ErrClosed {
		t.Fatalf("TryIngestBatch after Close = %v, want ErrClosed", err)
	}
}

// TestBackpressureDropAccounting pins every shedding path to Snapshot:
// TryIngest / TryIngestBatch drops on a full queue must surface in Dropped,
// with blocked work eventually processed once the detector unblocks.
func TestBackpressureDropAccounting(t *testing.T) {
	gate := make(chan struct{})
	cfg := Config{
		Shards:    1,
		QueueSize: 1,
		NewDetector: func(string) (detectors.Detector, error) {
			return &blockingDetector{gate: gate}, nil
		},
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0}
	obs := detectors.Observation{X: x}
	// First observation is pulled by the shard and parks inside Update;
	// the queue (capacity 1) then fills. Keep shedding until a drop is
	// observed — the shard can drain at most one more envelope meanwhile.
	if err := m.Ingest("s", obs); err != nil {
		t.Fatal(err)
	}
	sent := uint64(1)
	var dropsSingle, dropsBatch uint64
	for dropsSingle == 0 || dropsBatch == 0 {
		ok, err := m.TryIngest("s", obs)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			sent++
		} else {
			dropsSingle++
		}
		ok, err = m.TryIngestBatch("s", []detectors.Observation{obs, obs, obs})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			sent += 3
		} else {
			dropsBatch += 3
		}
	}
	close(gate) // unblock every parked Update
	m.Close()
	sn := m.Snapshot()
	if want := dropsSingle + dropsBatch; sn.Dropped != want {
		t.Fatalf("Snapshot.Dropped = %d, want %d (%d single + %d batched)", sn.Dropped, want, dropsSingle, dropsBatch)
	}
	if sn.Ingested != sent {
		t.Fatalf("Snapshot.Ingested = %d, want %d accepted observations", sn.Ingested, sent)
	}
}

// TestEventChannelDropAccounting pins slow-subscriber shedding: with a full
// event buffer and no consumer, drifts keep counting but the overflow is
// recorded in EventsDropped rather than stalling the shard.
func TestEventChannelDropAccounting(t *testing.T) {
	m, err := New(Config{
		Shards:      1,
		EventBuffer: 1,
		NewDetector: func(string) (detectors.Detector, error) { return alwaysDrift{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	block := make([]detectors.Observation, n)
	for i := range block {
		block[i] = detectors.Observation{X: []float64{0}}
	}
	if err := m.IngestBatch("s", block); err != nil {
		t.Fatal(err)
	}
	m.Close()
	sn := m.Snapshot()
	if sn.Drifts != n {
		t.Fatalf("Snapshot.Drifts = %d, want %d", sn.Drifts, n)
	}
	if sn.EventsDropped != n-1 {
		t.Fatalf("Snapshot.EventsDropped = %d, want %d (buffer of 1, no subscriber)", sn.EventsDropped, n-1)
	}
}

// TestMaxStreamsPerShardAccounting pins stream-cap shedding: observations
// for streams beyond the cap are rejected and counted per observation in
// StreamErrors, while the admitted stream keeps flowing.
func TestMaxStreamsPerShardAccounting(t *testing.T) {
	m, err := New(Config{
		Detector:           core.Config{Features: 1, Classes: 2, Seed: 1},
		Shards:             1,
		MaxStreamsPerShard: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0}
	obs := detectors.Observation{X: x}
	if err := m.Ingest("admitted", obs); err != nil {
		t.Fatal(err)
	}
	const rejectedSingles, rejectedBlock = 5, 7
	for i := 0; i < rejectedSingles; i++ {
		if err := m.Ingest(fmt.Sprintf("over-%d", i), obs); err != nil {
			t.Fatal(err)
		}
	}
	block := make([]detectors.Observation, rejectedBlock)
	for i := range block {
		block[i] = obs
	}
	if err := m.IngestBatch("over-batch", block); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest("admitted", obs); err != nil {
		t.Fatal(err)
	}
	m.Close()
	sn := m.Snapshot()
	if want := uint64(rejectedSingles + rejectedBlock); sn.StreamErrors != want {
		t.Fatalf("Snapshot.StreamErrors = %d, want %d rejected observations", sn.StreamErrors, want)
	}
	if sn.Streams != 1 || sn.Ingested != 2 {
		t.Fatalf("streams=%d ingested=%d, want the admitted stream's 2 observations only", sn.Streams, sn.Ingested)
	}
}

// TestEvictFlushesQueuedObservations: an Evict arriving in the same
// micro-batch as queued observations must let the detector consume them
// before the stream is removed.
func TestEvictFlushesQueuedObservations(t *testing.T) {
	var rec *recordingDetector
	var mu sync.Mutex
	m, err := New(Config{
		Shards: 1,
		NewDetector: func(string) (detectors.Detector, error) {
			r := &recordingDetector{}
			mu.Lock()
			rec = r
			mu.Unlock()
			return r, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	block := make([]detectors.Observation, 10)
	for i := range block {
		block[i] = detectors.Observation{X: []float64{0}, TrueClass: i}
	}
	if err := m.IngestBatch("s", block); err != nil {
		t.Fatal(err)
	}
	if err := m.Evict("s"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if m.Streams() != 0 {
		t.Fatalf("stream survived Evict: %d streams", m.Streams())
	}
	mu.Lock()
	defer mu.Unlock()
	if rec == nil || len(rec.seen()) != 10 {
		t.Fatalf("detector saw %v observations before eviction, want all 10", rec.seen())
	}
}
