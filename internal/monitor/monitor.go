// Package monitor multiplexes many independent data streams onto a fixed
// pool of worker shards, giving every stream its own RBM-IM (or any other)
// drift detector while bounding goroutines and memory to the shard count.
// This is the multi-tenant deployment shape the paper motivates — thousands
// of IoT / intrusion / sensor feeds, each imbalanced in its own way, each
// needing skew-insensitive per-class drift detection — run as one service:
//
//	m, _ := monitor.New(monitor.Config{
//		Detector: core.Config{Features: 20, Classes: 5},
//	})
//	defer m.Close()
//	go func() {
//		for ev := range m.Events() {
//			log.Printf("stream %s drifted on classes %v", ev.StreamID, ev.Classes)
//		}
//	}()
//	m.Ingest("sensor-17", detectors.Observation{X: x, TrueClass: y, Predicted: p})
//
// Streams are placed on shards by consistent hashing of the stream ID
// (FNV-1a + jump hash), so placement is deterministic, balanced, and maximally
// stable under shard-count changes. Each shard is a single goroutine that
// owns its streams' detectors outright — no locks on the hot path — and
// drains a buffered channel of observations. Detectors are created lazily on
// first ingest, evicted explicitly via Evict, or garbage-collected after
// Config.IdleTTL without traffic.
package monitor

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
)

// Factory builds a fresh detector for a newly observed stream. The monitor
// hands each detector observations whose X slice is a pooled buffer that is
// reused the moment Update returns, so detectors built by a Factory must
// not retain o.X past Update (copy it if they need history; RBM-IM and all
// bundled baselines already comply).
type Factory func(streamID string) (detectors.Detector, error)

// Config parameterizes a Monitor. The zero value of every field except
// Detector (or NewDetector) selects a sensible default.
type Config struct {
	// Detector is the RBM-IM configuration template used by the default
	// factory; Features and Classes are required unless NewDetector is set.
	// Every stream gets an independent detector seeded from Detector.Seed
	// and the stream ID, so runs are reproducible per stream.
	Detector core.Config
	// NewDetector overrides the default RBM-IM factory, letting the monitor
	// host any detectors.Detector implementation (e.g. a cheap baseline for
	// low-value streams). When set, Detector is ignored except for Classes,
	// which sizes the per-class drift statistics.
	NewDetector Factory
	// Shards is the number of worker goroutines; default runtime.NumCPU().
	Shards int
	// QueueSize is each shard's buffered-channel capacity; default 1024.
	// Ingest blocks when the target shard's queue is full (backpressure);
	// TryIngest drops instead.
	QueueSize int
	// EventBuffer is the capacity of the drift-event channel; default 256.
	// Events are dropped (and counted) when the channel is full, so slow
	// subscribers never stall detection.
	EventBuffer int
	// IdleTTL evicts streams that have received no observations for this
	// long; zero disables idle GC.
	IdleTTL time.Duration
	// GCInterval is how often each shard sweeps for idle streams; default
	// IdleTTL/4 (bounded to [1s, 1min]).
	GCInterval time.Duration
	// MaxStreamsPerShard caps the streams a shard will host; new streams
	// beyond the cap are dropped and counted. Zero means unlimited.
	MaxStreamsPerShard int
	// OnDrift, when set, is invoked synchronously on the shard goroutine for
	// every drift (before the event is offered to the channel). It must be
	// fast and safe for concurrent invocation across shards.
	OnDrift func(Event)
}

func (c *Config) withDefaults() error {
	if c.NewDetector == nil {
		base := c.Detector
		if base.Features < 1 || base.Classes < 2 {
			return fmt.Errorf("monitor: Detector needs Features >= 1 and Classes >= 2 (got %d/%d); set Detector or NewDetector", base.Features, base.Classes)
		}
		c.NewDetector = func(streamID string) (detectors.Detector, error) {
			cfg := base
			// Decorrelate per-stream randomness while keeping every stream
			// individually reproducible.
			cfg.Seed = base.Seed ^ int64(fnv1a(streamID))
			return core.NewDetector(cfg)
		}
		// Validate the template eagerly so misconfiguration surfaces at
		// construction, not on the first ingest.
		if _, err := c.NewDetector("monitor-probe"); err != nil {
			return err
		}
	}
	if c.Shards <= 0 {
		c.Shards = runtime.NumCPU()
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.IdleTTL > 0 && c.GCInterval <= 0 {
		c.GCInterval = c.IdleTTL / 4
		if c.GCInterval < time.Second {
			c.GCInterval = time.Second
		}
		if c.GCInterval > time.Minute {
			c.GCInterval = time.Minute
		}
	}
	return nil
}

// Event is one detected drift on one stream.
type Event struct {
	// StreamID identifies the drifted stream.
	StreamID string
	// Classes lists the classes the detector attributed the drift to
	// (nil for detectors that cannot attribute).
	Classes []int
	// Seq is the observation count of the stream at detection time.
	Seq uint64
	// At is the wall-clock detection time.
	At time.Time
}

// ErrClosed is returned by Ingest/TryIngest/Evict after Close.
var ErrClosed = errors.New("monitor: closed")

// Monitor is the sharded multi-stream drift-detection service. All methods
// are safe for concurrent use.
type Monitor struct {
	cfg    Config
	shards []*shard
	events chan Event
	start  time.Time

	mu     sync.RWMutex // guards closed against in-flight sends
	closed bool
	wg     sync.WaitGroup

	eventsDropped atomic.Uint64
}

// New builds and starts a Monitor.
func New(cfg Config) (*Monitor, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	m := &Monitor{
		cfg:    cfg,
		events: make(chan Event, cfg.EventBuffer),
		start:  time.Now(),
	}
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		s := &shard{
			m:       m,
			in:      make(chan envelope, cfg.QueueSize),
			streams: make(map[string]*streamState),
			// Pool of pointers: putting a *[]float64 into an interface is
			// allocation-free, unlike a raw slice header.
			pool: sync.Pool{New: func() any {
				b := make([]float64, 0, 64)
				return &b
			}},
		}
		if cfg.Detector.Classes > 0 {
			s.driftsByClass = make([]atomic.Uint64, cfg.Detector.Classes)
		}
		m.shards[i] = s
		m.wg.Add(1)
		go s.run()
	}
	return m, nil
}

// Ingest routes one observation to the given stream's detector, creating the
// detector on first sight. It blocks when the stream's shard queue is full
// (backpressure) and returns ErrClosed after Close. The observation's X
// slice is copied; callers may reuse its backing array immediately.
func (m *Monitor) Ingest(streamID string, o detectors.Observation) error {
	s := m.shards[shardFor(streamID, len(m.shards))]
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	env := envelope{op: opIngest, id: streamID, obs: o}
	env.buf = s.copyX(o.X)
	env.obs.X = *env.buf
	s.in <- env
	return nil
}

// TryIngest is Ingest without backpressure: when the shard queue is full the
// observation is dropped, counted, and false is returned.
func (m *Monitor) TryIngest(streamID string, o detectors.Observation) (bool, error) {
	s := m.shards[shardFor(streamID, len(m.shards))]
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return false, ErrClosed
	}
	env := envelope{op: opIngest, id: streamID, obs: o}
	env.buf = s.copyX(o.X)
	env.obs.X = *env.buf
	select {
	case s.in <- env:
		return true, nil
	default:
		s.pool.Put(env.buf)
		s.dropped.Add(1)
		return false, nil
	}
}

// Evict asynchronously removes a stream and its detector.
func (m *Monitor) Evict(streamID string) error {
	s := m.shards[shardFor(streamID, len(m.shards))]
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	s.in <- envelope{op: opEvict, id: streamID}
	return nil
}

// Events returns the drift-event channel. It is closed by Close after all
// shards drain, so a range loop over it terminates cleanly.
func (m *Monitor) Events() <-chan Event { return m.events }

// Close stops ingestion, drains every shard queue, waits for the workers to
// exit, and closes the event channel. It is idempotent.
func (m *Monitor) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	for _, s := range m.shards {
		close(s.in)
	}
	m.wg.Wait()
	close(m.events)
}

// publish offers a drift event to the subscriber, dropping when the channel
// is full so shards never stall on a slow consumer.
func (m *Monitor) publish(ev Event) {
	if m.cfg.OnDrift != nil {
		m.cfg.OnDrift(ev)
	}
	select {
	case m.events <- ev:
	default:
		m.eventsDropped.Add(1)
	}
}

// Snapshot is a point-in-time aggregate view of the monitor.
type Snapshot struct {
	// Shards is the worker count; Streams the live stream count.
	Shards, Streams int
	// Ingested / Drifts / Warnings count processed observations and
	// detector signals since start.
	Ingested, Drifts, Warnings uint64
	// DriftsByClass breaks drifts down by attributed class (nil when the
	// class count is unknown, i.e. a custom factory without Detector.Classes).
	DriftsByClass []uint64
	// Dropped counts TryIngest drops; EventsDropped counts drift events
	// dropped on the full event channel; IdleEvicted counts idle-GC
	// evictions; StreamErrors counts detector-factory failures and
	// per-shard stream-cap rejections.
	Dropped, EventsDropped, IdleEvicted, StreamErrors uint64
	// ShardStreams / ShardIngested expose the per-shard balance.
	ShardStreams  []int
	ShardIngested []uint64
	// Uptime is time since New; InstancesPerSec is Ingested / Uptime.
	Uptime          time.Duration
	InstancesPerSec float64
}

// Snapshot aggregates the per-shard statistics. It is cheap (atomic reads)
// and safe to call at any time, including after Close.
func (m *Monitor) Snapshot() Snapshot {
	sn := Snapshot{
		Shards:        len(m.shards),
		EventsDropped: m.eventsDropped.Load(),
		Uptime:        time.Since(m.start),
		ShardStreams:  make([]int, len(m.shards)),
		ShardIngested: make([]uint64, len(m.shards)),
	}
	if m.cfg.Detector.Classes > 0 {
		sn.DriftsByClass = make([]uint64, m.cfg.Detector.Classes)
	}
	for i, s := range m.shards {
		sn.ShardStreams[i] = int(s.streamCount.Load())
		sn.ShardIngested[i] = s.ingested.Load()
		sn.Streams += sn.ShardStreams[i]
		sn.Ingested += sn.ShardIngested[i]
		sn.Drifts += s.drifts.Load()
		sn.Warnings += s.warnings.Load()
		sn.Dropped += s.dropped.Load()
		sn.IdleEvicted += s.idleEvicted.Load()
		sn.StreamErrors += s.streamErrors.Load()
		for k := range sn.DriftsByClass {
			sn.DriftsByClass[k] += s.driftsByClass[k].Load()
		}
	}
	if secs := sn.Uptime.Seconds(); secs > 0 {
		sn.InstancesPerSec = float64(sn.Ingested) / secs
	}
	return sn
}

// Streams returns the number of live streams across all shards.
func (m *Monitor) Streams() int {
	n := 0
	for _, s := range m.shards {
		n += int(s.streamCount.Load())
	}
	return n
}

type opcode uint8

const (
	opIngest opcode = iota
	opEvict
)

// envelope is one message on a shard's queue. buf owns the pooled copy of
// obs.X and is returned to the shard's pool once the detector consumes it.
type envelope struct {
	op  opcode
	id  string
	obs detectors.Observation
	buf *[]float64
}

// streamState is one stream's detector plus bookkeeping; owned exclusively
// by its shard goroutine.
type streamState struct {
	det      detectors.Detector
	seq      uint64
	lastSeen time.Time
}

// shard is one worker: a goroutine draining a queue of observations for the
// streams consistently hashed onto it. All mutable per-stream state is
// confined to the goroutine; only the atomic counters are shared.
type shard struct {
	m       *Monitor
	in      chan envelope
	streams map[string]*streamState
	pool    sync.Pool // []float64 buffers carrying copied X vectors

	streamCount   atomic.Int64
	ingested      atomic.Uint64
	drifts        atomic.Uint64
	warnings      atomic.Uint64
	dropped       atomic.Uint64
	idleEvicted   atomic.Uint64
	streamErrors  atomic.Uint64
	driftsByClass []atomic.Uint64
}

// copyX copies x into a pooled buffer so callers can reuse their slice the
// moment Ingest returns; the buffer is returned to the pool after the
// detector consumes it (steady state allocates nothing).
func (s *shard) copyX(x []float64) *[]float64 {
	bp := s.pool.Get().(*[]float64)
	b := *bp
	if cap(b) < len(x) {
		b = make([]float64, 0, len(x))
	}
	b = b[:len(x)]
	copy(b, x)
	*bp = b
	return bp
}

func (s *shard) run() {
	defer s.m.wg.Done()
	var gcC <-chan time.Time
	if s.m.cfg.IdleTTL > 0 {
		t := time.NewTicker(s.m.cfg.GCInterval)
		defer t.Stop()
		gcC = t.C
	}
	for {
		select {
		case env, ok := <-s.in:
			if !ok {
				return
			}
			s.handle(env)
		case <-gcC:
			s.gcIdle()
		}
	}
}

func (s *shard) handle(env envelope) {
	switch env.op {
	case opEvict:
		if _, ok := s.streams[env.id]; ok {
			delete(s.streams, env.id)
			s.streamCount.Add(-1)
		}
	case opIngest:
		st, ok := s.streams[env.id]
		if !ok {
			max := s.m.cfg.MaxStreamsPerShard
			if max > 0 && len(s.streams) >= max {
				s.streamErrors.Add(1)
				s.pool.Put(env.buf)
				return
			}
			det, err := s.m.cfg.NewDetector(env.id)
			if err != nil {
				s.streamErrors.Add(1)
				s.pool.Put(env.buf)
				return
			}
			st = &streamState{det: det}
			s.streams[env.id] = st
			s.streamCount.Add(1)
		}
		st.seq++
		st.lastSeen = time.Now()
		state := st.det.Update(env.obs)
		s.pool.Put(env.buf)
		s.ingested.Add(1)
		switch state {
		case detectors.Warning:
			s.warnings.Add(1)
		case detectors.Drift:
			s.drifts.Add(1)
			ev := Event{StreamID: env.id, Seq: st.seq, At: st.lastSeen}
			if attr, ok := st.det.(detectors.ClassAttributor); ok {
				ev.Classes = append(ev.Classes, attr.DriftClasses()...)
			}
			for _, k := range ev.Classes {
				if k >= 0 && k < len(s.driftsByClass) {
					s.driftsByClass[k].Add(1)
				}
			}
			s.m.publish(ev)
		}
	}
}

// gcIdle evicts streams idle for longer than IdleTTL.
func (s *shard) gcIdle() {
	cutoff := time.Now().Add(-s.m.cfg.IdleTTL)
	for id, st := range s.streams {
		if st.lastSeen.Before(cutoff) {
			delete(s.streams, id)
			s.streamCount.Add(-1)
			s.idleEvicted.Add(1)
		}
	}
}
