// Package monitor multiplexes many independent data streams onto a fixed
// pool of worker shards, giving every stream its own RBM-IM (or any other)
// drift detector while bounding goroutines and memory to the shard count.
// This is the multi-tenant deployment shape the paper motivates — thousands
// of IoT / intrusion / sensor feeds, each imbalanced in its own way, each
// needing skew-insensitive per-class drift detection — run as one service:
//
//	m, _ := monitor.New(monitor.Config{
//		Detector: core.Config{Features: 20, Classes: 5},
//	})
//	defer m.Close()
//	go func() {
//		for ev := range m.Events() {
//			log.Printf("stream %s drifted on classes %v", ev.StreamID, ev.Classes)
//		}
//	}()
//	m.Ingest("sensor-17", detectors.Observation{X: x, TrueClass: y, Predicted: p})
//
// Streams are placed on shards by consistent hashing of the stream ID
// (FNV-1a + jump hash), so placement is deterministic, balanced, and maximally
// stable under shard-count changes. Each shard is a single goroutine that
// owns its streams' detectors outright — no locks on the hot path — and
// drains a bounded MPSC ring buffer (see ring.go) of observations in
// micro-batches: every wakeup pops whatever is queued (bounded), groups it
// per stream, and hands each stream's run to its detector in one UpdateBatch
// call. Producers with blocks of observations should use IngestBatch, which
// moves a whole block through the queue in a single copied slab — one ring
// slot per block. Because a stream lives on exactly one shard and the ring
// preserves per-producer FIFO order, a stream's observations reach its
// detector in send order at any GOMAXPROCS: the parallel monitor's per-stream
// drift decisions are identical to a sequential run's (ordering_test.go
// proves it). Detectors are created lazily on first ingest, evicted
// explicitly via Evict, or garbage-collected after Config.IdleTTL without
// traffic.
package monitor

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rbmim/internal/codec"
	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/telemetry"
)

// Factory builds a fresh detector for a newly observed stream. The monitor
// hands each detector observations whose X and Scores slices view a pooled
// slab that is reused the moment the detector consumed them, so detectors
// built by a Factory must not retain o.X or o.Scores past Update /
// UpdateBatch (copy them if they need history; RBM-IM and all bundled
// baselines already comply). Detectors implementing detectors.BatchDetector
// receive whole micro-batches in one call.
type Factory func(streamID string) (detectors.Detector, error)

// Config parameterizes a Monitor. The zero value of every field except
// Detector (or NewDetector) selects a sensible default.
type Config struct {
	// Detector is the RBM-IM configuration template used by the default
	// factory; Features and Classes are required unless NewDetector is set.
	// Every stream gets an independent detector seeded from Detector.Seed
	// and the stream ID, so runs are reproducible per stream.
	Detector core.Config
	// NewDetector overrides the default RBM-IM factory, letting the monitor
	// host any detectors.Detector implementation (e.g. a cheap baseline for
	// low-value streams). When set, Detector is ignored except for Classes,
	// which sizes the per-class drift statistics.
	NewDetector Factory
	// Shards is the number of worker goroutines; <= 0 selects
	// AutotuneShards() (runtime.GOMAXPROCS at construction — one worker per
	// schedulable core).
	Shards int
	// QueueSize is each shard's ring-buffer capacity in envelopes (an
	// IngestBatch block occupies one envelope), rounded up to a power of
	// two; default 1024. Ingest blocks when the target shard's ring is full
	// (backpressure); TryIngest drops instead.
	QueueSize int
	// EventBuffer is the capacity of the drift-event channel; default 256.
	// Events are dropped (and counted) when the channel is full, so slow
	// subscribers never stall detection.
	EventBuffer int
	// SubscriberEvictDrops, when > 0, evicts a Subscribe fan-out queue once
	// it has dropped this many events: the subscription is closed (its Events
	// channel terminates) and the eviction counted in
	// Snapshot.SubscribersEvicted. Dropping protects the shards from a slow
	// subscriber; eviction additionally reclaims the queue and tells the
	// subscriber — rather than silently thinning its event stream forever —
	// that it fell irrecoverably behind and should reconnect and resync.
	// Zero keeps the drop-only policy.
	SubscriberEvictDrops int
	// IdleTTL evicts streams that have received no observations for this
	// long; zero disables idle GC.
	IdleTTL time.Duration
	// GCInterval is how often each shard sweeps for idle streams; default
	// IdleTTL/4 (bounded to [1s, 1min]).
	GCInterval time.Duration
	// MaxStreamsPerShard caps the streams a shard will host; new streams
	// beyond the cap are dropped and counted. Zero means unlimited.
	MaxStreamsPerShard int
	// OnDrift, when set, is invoked synchronously on the shard goroutine for
	// every drift (before the event is offered to the channel). It must be
	// fast and safe for concurrent invocation across shards.
	OnDrift func(Event)
	// Checkpoint enables detector-state persistence: periodic per-stream
	// snapshots, spill (instead of drop) on Evict and idle GC, transparent
	// rehydration when a checkpointed stream re-ingests, and a full flush on
	// Close. The zero value (no Store) disables checkpointing. See
	// CheckpointConfig.
	Checkpoint CheckpointConfig
	// Telemetry selects the latency-instrumentation level. The zero value
	// (telemetry.Full) times every monitor stage — shard queue-wait,
	// detector update, checkpoint save and store put — into log2 histograms
	// exported via Snapshot.Latency and WritePrometheus. telemetry.Basic and
	// telemetry.Off skip the monitor-side stages. Telemetry never changes
	// detection output: drift decisions are bit-identical at every level.
	Telemetry telemetry.Level
}

func (c *Config) withDefaults() error {
	if c.NewDetector == nil {
		base := c.Detector
		if base.Features < 1 || base.Classes < 2 {
			return fmt.Errorf("monitor: Detector needs Features >= 1 and Classes >= 2 (got %d/%d); set Detector or NewDetector", base.Features, base.Classes)
		}
		c.NewDetector = func(streamID string) (detectors.Detector, error) {
			cfg := base
			// Decorrelate per-stream randomness while keeping every stream
			// individually reproducible.
			cfg.Seed = base.Seed ^ int64(fnv1a(streamID))
			return core.NewDetector(cfg)
		}
		// Validate the template eagerly so misconfiguration surfaces at
		// construction, not on the first ingest.
		if _, err := c.NewDetector("monitor-probe"); err != nil {
			return err
		}
	}
	if c.Shards <= 0 {
		c.Shards = AutotuneShards()
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	c.Checkpoint.withDefaults()
	if c.IdleTTL > 0 && c.GCInterval <= 0 {
		c.GCInterval = c.IdleTTL / 4
		if c.GCInterval < time.Second {
			c.GCInterval = time.Second
		}
		if c.GCInterval > time.Minute {
			c.GCInterval = time.Minute
		}
	}
	return nil
}

// Event is one detected drift on one stream.
type Event struct {
	// StreamID identifies the drifted stream.
	StreamID string
	// Classes lists the classes the detector attributed the drift to
	// (nil for detectors that cannot attribute).
	Classes []int
	// Seq is the observation count of the stream at detection time.
	Seq uint64
	// At is the wall-clock detection time.
	At time.Time
	// Record is the drift flight record — the detector's recent per-class
	// reconstruction-error / trend / ADWIN-width samples leading into this
	// drift (see core.DriftRecord). Nil for detectors without a flight
	// recorder. The record is immutable; events may share it.
	Record *core.DriftRecord
}

// ErrClosed is returned by Ingest/TryIngest/Evict after Close.
var ErrClosed = errors.New("monitor: closed")

// Monitor is the sharded multi-stream drift-detection service. All methods
// are safe for concurrent use.
type Monitor struct {
	cfg    Config
	shards []*shard
	events chan Event
	start  time.Time

	mu        sync.RWMutex // guards closed against in-flight sends
	closed    bool
	closeDone chan struct{} // closed once Close has fully torn down
	wg        sync.WaitGroup

	eventsDropped atomic.Uint64

	// Event fan-out (Subscribe): every subscriber gets its own bounded
	// queue, so one slow consumer drops its own events without stalling
	// detection or starving the other subscribers.
	subMu       sync.RWMutex
	subs        map[*Subscription]struct{}
	subsClosed  bool
	subDropped  atomic.Uint64
	subsEvicted atomic.Uint64

	// Checkpoint plumbing (see checkpoint.go): shards serialize into pooled
	// buffers and enqueue; the single writer goroutine performs the Store
	// writes, keeping store latency off the shard loops.
	ckptCh      chan ckptMsg
	ckptWg      sync.WaitGroup
	ckptPool    sync.Pool
	checkpoints atomic.Uint64
	ckptErrors  atomic.Uint64
	rehydrated  atomic.Uint64

	// tele holds the monitor-side stage histograms; nil when
	// Config.Telemetry disables monitor timing (Basic or Off).
	tele *monitorTele
	// lastDrift maps stream ID -> DriftReport of the stream's most recent
	// drift (written on the shard goroutine in tally, read by LastDrift).
	// Reports survive eviction: they are history, not stream state.
	lastDrift sync.Map
}

// monitorTele bundles the monitor's stage histograms.
type monitorTele struct {
	queueWait telemetry.Histogram // envelope push -> shard pop
	detector  telemetry.Histogram // one flush's Update/UpdateBatch run
	ckptSave  telemetry.Histogram // one stream's SaveState serialization
	ckptPut   telemetry.Histogram // one checkpoint Store.Put
}

// stages snapshots the histograms, sorted by stage name (the order every
// exporter relies on for deterministic output). Stages that never observed
// a sample are omitted — a monitor without a checkpoint store does not
// export empty checkpoint series.
func (t *monitorTele) stages() []telemetry.Stage {
	if t == nil {
		return nil
	}
	all := []telemetry.Stage{
		t.ckptPut.Load("checkpoint_put"),
		t.ckptSave.Load("checkpoint_save"),
		t.detector.Load("detector_update"),
		t.queueWait.Load("queue_wait"),
	}
	out := all[:0]
	for _, st := range all {
		if st.Count > 0 {
			out = append(out, st)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// New builds and starts a Monitor.
func New(cfg Config) (*Monitor, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	m := &Monitor{
		cfg:       cfg,
		events:    make(chan Event, cfg.EventBuffer),
		closeDone: make(chan struct{}),
		subs:      make(map[*Subscription]struct{}),
		start:     time.Now(),
	}
	if cfg.Telemetry == telemetry.Full {
		m.tele = &monitorTele{}
	}
	if m.ckptEnabled() {
		m.ckptCh = make(chan ckptMsg, cfg.Checkpoint.QueueSize)
		m.ckptPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
		m.ckptWg.Add(1)
		go m.ckptWriter()
	}
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		s := &shard{
			m:       m,
			in:      newRing(cfg.QueueSize),
			streams: make(map[string]*streamState),
			groups:  make(map[string]*obsGroup),
			// Pool of pointers: putting a *batchBuf into an interface is
			// allocation-free, unlike a value would be.
			pool:        sync.Pool{New: func() any { return new(batchBuf) }},
			ckptScratch: codec.NewBuffer(nil),
			snapshotted: make(map[string]struct{}),
		}
		if cfg.Detector.Classes > 0 {
			s.driftsByClass = make([]atomic.Uint64, cfg.Detector.Classes)
		}
		m.shards[i] = s
		m.wg.Add(1)
		go s.run()
	}
	return m, nil
}

// Ingest routes one observation to the given stream's detector, creating the
// detector on first sight. It blocks when the stream's shard queue is full
// (backpressure) and returns ErrClosed after Close. The observation's X and
// Scores slices are copied; callers may reuse their backing arrays
// immediately.
func (m *Monitor) Ingest(streamID string, o detectors.Observation) error {
	s := m.shards[ShardFor(streamID, len(m.shards))]
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	s.send(envelope{op: opIngest, id: streamID, bat: s.copyOne(o)}, 1)
	return nil
}

// IngestBatch routes a block of observations for one stream through a single
// queue operation: all X and Scores slices are copied into one pooled slab,
// the block travels as one envelope (one ring slot instead of len(obs)),
// and the shard hands it to the stream's detector in one UpdateBatch call.
// Per-stream observation order is preserved. Like Ingest it blocks when the
// shard queue is full and returns ErrClosed after Close; callers may reuse
// every backing array the moment it returns. An empty block is a no-op.
func (m *Monitor) IngestBatch(streamID string, obs []detectors.Observation) error {
	s := m.shards[ShardFor(streamID, len(m.shards))]
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	if len(obs) == 0 {
		return nil
	}
	s.send(envelope{op: opIngest, id: streamID, bat: s.copyBatch(obs)}, len(obs))
	return nil
}

// TryIngest is Ingest without backpressure: when the shard queue is full the
// observation is dropped, counted, and false is returned.
func (m *Monitor) TryIngest(streamID string, o detectors.Observation) (bool, error) {
	s := m.shards[ShardFor(streamID, len(m.shards))]
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return false, ErrClosed
	}
	env := envelope{op: opIngest, id: streamID, bat: s.copyOne(o)}
	if s.trySend(env, 1) {
		return true, nil
	}
	s.pool.Put(env.bat)
	s.dropped.Add(1)
	return false, nil
}

// TryIngestBatch is IngestBatch without backpressure: when the shard queue
// is full the whole block is dropped, its observations counted as dropped,
// and false is returned.
func (m *Monitor) TryIngestBatch(streamID string, obs []detectors.Observation) (bool, error) {
	s := m.shards[ShardFor(streamID, len(m.shards))]
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return false, ErrClosed
	}
	if len(obs) == 0 {
		return true, nil
	}
	env := envelope{op: opIngest, id: streamID, bat: s.copyBatch(obs)}
	if s.trySend(env, len(obs)) {
		return true, nil
	}
	s.pool.Put(env.bat)
	s.dropped.Add(uint64(len(obs)))
	return false, nil
}

// Evict asynchronously removes a stream and its detector from memory,
// flushing the stream's queued observations first. With checkpointing
// enabled the detector's state is spilled to the Store before removal, so a
// later ingest for the same stream resumes the trained detector instead of
// starting fresh; the Store entry is retained. Evicting a stream that is not
// currently resident on its shard (never ingested, already evicted, or
// already collected by idle GC) is a documented no-op that is counted in
// Snapshot.StreamErrors — the caller's view of the stream population has
// drifted from the monitor's, which is worth surfacing.
func (m *Monitor) Evict(streamID string) error {
	s := m.shards[ShardFor(streamID, len(m.shards))]
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	s.in.push(envelope{op: opEvict, id: streamID})
	return nil
}

// Events returns the drift-event channel. It is closed by Close after all
// shards drain, so a range loop over it terminates cleanly. For multiple
// independent consumers use Subscribe, which gives each its own bounded
// queue and drop accounting.
func (m *Monitor) Events() <-chan Event { return m.events }

// Subscription is one subscriber's private, bounded drift-event queue (see
// Monitor.Subscribe). Events that arrive while the queue is full are dropped
// for this subscriber only and counted in Dropped.
type Subscription struct {
	m       *Monitor
	ch      chan Event
	dropped atomic.Uint64
	evicted atomic.Bool
	once    sync.Once
}

// Events returns the subscription's event channel. It is closed by
// Subscription.Close or by Monitor.Close after the shards drain, so a range
// loop terminates cleanly either way.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped returns how many events this subscriber lost to a full queue.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription from the monitor and closes its channel.
// It is idempotent and safe to call concurrently with Monitor.Close.
func (s *Subscription) Close() { s.close(false) }

// Evicted reports whether the monitor evicted this subscription for falling
// behind (see Config.SubscriberEvictDrops). Meaningful once the Events
// channel has closed.
func (s *Subscription) Evicted() bool { return s.evicted.Load() }

// close tears the subscription down; evicted marks a monitor-initiated
// eviction. The once makes user Close and eviction race safely — whichever
// runs first wins, and only a winning eviction is counted.
func (s *Subscription) close(evicted bool) {
	s.once.Do(func() {
		if evicted {
			s.evicted.Store(true)
			s.m.subsEvicted.Add(1)
		}
		s.m.subMu.Lock()
		delete(s.m.subs, s)
		close(s.ch)
		s.m.subMu.Unlock()
	})
}

// Subscribe registers a new drift-event subscriber with its own queue of the
// given capacity (<= 0 selects Config.EventBuffer). Every subscriber
// receives every event, independently of the shared Events channel; a
// subscriber that falls behind drops its own events (counted per
// subscription and in Snapshot.SubscriberDropped) without affecting anyone
// else — the fan-out shape the network server needs, one subscription per
// subscribed connection. Returns ErrClosed after Close.
func (m *Monitor) Subscribe(buffer int) (*Subscription, error) {
	if buffer <= 0 {
		buffer = m.cfg.EventBuffer
	}
	m.subMu.Lock()
	defer m.subMu.Unlock()
	if m.subsClosed {
		return nil, ErrClosed
	}
	sub := &Subscription{m: m, ch: make(chan Event, buffer)}
	m.subs[sub] = struct{}{}
	return sub, nil
}

// Close stops ingestion, drains every shard queue, waits for the workers to
// exit, and closes the event channel and every subscription. It is
// idempotent, and a concurrent second Close blocks until the teardown is
// complete — callers never observe a Close that returned while events were
// still being delivered.
func (m *Monitor) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.closeDone
		return
	}
	m.closed = true
	m.mu.Unlock()
	// closed is set and every in-flight producer held the read lock, so the
	// opClose envelope below is the last push each ring will ever see: the
	// worker drains everything queued before it, then exits.
	for _, s := range m.shards {
		s.in.push(envelope{op: opClose})
	}
	m.wg.Wait()
	if m.ckptEnabled() {
		// Shards have flushed their final snapshots into the queue; drain it
		// to the Store before reporting closed, so a successor monitor
		// sharing the Store rehydrates the newest state.
		close(m.ckptCh)
		m.ckptWg.Wait()
	}
	// No shard can publish anymore; close the fan-out so subscriber range
	// loops terminate, and refuse new subscriptions from here on.
	m.subMu.Lock()
	m.subsClosed = true
	subs := make([]*Subscription, 0, len(m.subs))
	for sub := range m.subs {
		subs = append(subs, sub)
	}
	m.subMu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
	close(m.events)
	close(m.closeDone)
}

// FlushCheckpoints processes everything queued ahead of it and flushes every
// dirty stream's detector state to the checkpoint Store, returning once the
// writes have durably reached the Store. Because the flush request travels
// each shard's queue like any observation, it doubles as a full processing
// barrier: every Ingest/IngestBatch/Evict that happened-before the call has
// been applied when it returns, with or without checkpointing configured
// (without a Store it is only the barrier). Returns ErrClosed after Close
// (which performs the same flush itself).
func (m *Monitor) FlushCheckpoints() error {
	// The read lock is held for the whole flush: it keeps Close (write lock)
	// from closing the shard queues or the checkpoint writer mid-flush, and
	// nothing below acquires m.mu, so there is no lock-order risk.
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	dones := make([]chan struct{}, len(m.shards))
	for i, s := range m.shards {
		dones[i] = make(chan struct{})
		s.in.push(envelope{op: opFlush, done: dones[i]})
	}
	for _, done := range dones {
		<-done
	}
	if m.ckptEnabled() {
		// The shards have enqueued their snapshots; fence the writer so they
		// have reached the Store before reporting done.
		m.ckptBarrier()
	}
	return nil
}

// publish offers a drift event to the shared Events channel and to every
// subscription, dropping per receiver when a queue is full so shards never
// stall on a slow consumer.
func (m *Monitor) publish(ev Event) {
	if m.cfg.OnDrift != nil {
		m.cfg.OnDrift(ev)
	}
	select {
	case m.events <- ev:
	default:
		m.eventsDropped.Add(1)
	}
	limit := uint64(m.cfg.SubscriberEvictDrops)
	var evict []*Subscription
	m.subMu.RLock()
	for sub := range m.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			m.subDropped.Add(1)
			if limit > 0 && sub.dropped.Load() >= limit {
				// Closing takes the write lock; collect now, evict below.
				evict = append(evict, sub)
			}
		}
	}
	m.subMu.RUnlock()
	for _, sub := range evict {
		sub.close(true)
	}
}

// Snapshot is a point-in-time aggregate view of the monitor.
type Snapshot struct {
	// Shards is the worker count; Streams the live stream count.
	Shards, Streams int
	// Ingested / Drifts / Warnings count processed observations and
	// detector signals since start.
	Ingested, Drifts, Warnings uint64
	// DriftsByClass breaks drifts down by attributed class (nil when the
	// class count is unknown, i.e. a custom factory without Detector.Classes).
	DriftsByClass []uint64
	// Dropped counts observations dropped by TryIngest / TryIngestBatch on
	// full shard queues; EventsDropped counts drift events dropped on the
	// full event channel; IdleEvicted counts idle-GC evictions; StreamErrors
	// counts observations rejected by detector-factory failures and
	// per-shard stream-cap limits (MaxStreamsPerShard), plus Evict calls for
	// streams that were not resident (see Evict).
	Dropped, EventsDropped, IdleEvicted, StreamErrors uint64
	// Received counts observations accepted into shard ring queues (every
	// Ingest/IngestBatch plus successful Try* calls); Rejected counts
	// received observations refused at processing time (factory failures and
	// stream caps — the observation portion of StreamErrors); Queued is the
	// number received but not yet resolved, sampled across the shard rings.
	// Conservation holds at any quiescent point (e.g. after the
	// FlushCheckpoints barrier): Received == Ingested + Rejected + Queued,
	// with Queued == 0.
	Received, Rejected, Queued uint64
	// QueueCap is each shard's ring capacity in envelopes (QueueSize rounded
	// up to a power of two); QueueHighWater is the largest per-shard envelope
	// occupancy any shard worker has observed since the last FlushCheckpoints
	// barrier — together they are the saturation signal Monitor.TuneAdvice
	// reads. The windowed reading (each flush barrier resets the mark to the
	// occupancy it observes) keeps rebalance and tuning decisions off stale
	// peaks: a queue that saturated once at startup reads shallow again after
	// the next flush, rather than forever.
	QueueCap       int
	QueueHighWater uint64
	// Checkpoints counts snapshots written to the checkpoint Store;
	// CheckpointErrors counts failed serializations, Store errors, skipped
	// snapshots on a full write queue, and rehydration failures; Rehydrated
	// counts streams restored from serialized state — Store reads on first
	// ingest and migration imports (ImportStream), which restore the same
	// envelope over the wire. Checkpoints/CheckpointErrors are zero without
	// Config.Checkpoint; Rehydrated can still move via imports.
	Checkpoints, CheckpointErrors, Rehydrated uint64
	// Subscribers is the number of live Subscribe fan-out queues;
	// SubscriberDropped counts events dropped across all subscribers
	// (including since-closed ones) on full per-subscriber queues;
	// SubscribersEvicted counts subscriptions the monitor closed for
	// exceeding Config.SubscriberEvictDrops.
	Subscribers        int
	SubscriberDropped  uint64
	SubscribersEvicted uint64
	// Wire-path counters, owned by the network server (internal/server) and
	// overlaid onto its Snapshot reply and /metrics payload; always zero on
	// an in-process monitor. InFlightHighWater is the largest number of
	// pipelined requests any connection has had in flight at once;
	// RepliesCoalesced counts reply frames that rode a previous frame's
	// socket write (syscalls saved by the coalescing reply writer); Shedded
	// counts blocking ingests refused with Busy by overload shedding
	// (server.Config.ShedHighWater); DedupHits counts retried ingests
	// acknowledged without re-ingesting by the exactly-once dedup window.
	InFlightHighWater uint64
	RepliesCoalesced  uint64
	Shedded           uint64
	DedupHits         uint64
	// ShardStreams / ShardIngested expose the per-shard balance.
	ShardStreams  []int
	ShardIngested []uint64
	// Uptime is time since New; InstancesPerSec is Ingested / Uptime.
	Uptime          time.Duration
	InstancesPerSec float64
	// Latency holds the stage latency histograms (telemetry.Stage: log2
	// buckets plus p50/p95/p99), sorted by stage name. Monitor stages are
	// queue_wait, detector_update, checkpoint_save, checkpoint_put; the
	// network server overlays its serve_* stages onto its Snapshot reply.
	// Empty when Config.Telemetry is Basic or Off. MergeSnapshots merges
	// same-named stages bucket-wise, so fleet views keep true quantiles.
	Latency []telemetry.Stage
}

// Snapshot aggregates the per-shard statistics. It is cheap (atomic reads)
// and safe to call at any time, including after Close.
func (m *Monitor) Snapshot() Snapshot {
	sn := Snapshot{
		Shards:             len(m.shards),
		EventsDropped:      m.eventsDropped.Load(),
		Checkpoints:        m.checkpoints.Load(),
		CheckpointErrors:   m.ckptErrors.Load(),
		Rehydrated:         m.rehydrated.Load(),
		SubscriberDropped:  m.subDropped.Load(),
		SubscribersEvicted: m.subsEvicted.Load(),
		Uptime:             time.Since(m.start),
		ShardStreams:       make([]int, len(m.shards)),
		ShardIngested:      make([]uint64, len(m.shards)),
	}
	m.subMu.RLock()
	sn.Subscribers = len(m.subs)
	m.subMu.RUnlock()
	if m.cfg.Detector.Classes > 0 {
		sn.DriftsByClass = make([]uint64, m.cfg.Detector.Classes)
	}
	for i, s := range m.shards {
		sn.ShardStreams[i] = int(s.streamCount.Load())
		sn.ShardIngested[i] = s.ingested.Load()
		sn.Streams += sn.ShardStreams[i]
		sn.Ingested += sn.ShardIngested[i]
		sn.Drifts += s.drifts.Load()
		sn.Warnings += s.warnings.Load()
		sn.Dropped += s.dropped.Load()
		sn.IdleEvicted += s.idleEvicted.Load()
		sn.StreamErrors += s.streamErrors.Load()
		sn.Received += s.received.Load()
		sn.Rejected += s.rejected.Load()
		// queued can dip negative transiently (a concurrent drain's decrement
		// racing a producer's increment); clamp per shard.
		if q := s.queued.Load(); q > 0 {
			sn.Queued += uint64(q)
		}
		sn.QueueCap = s.in.cap()
		if hw := s.in.highWater.Load(); hw > sn.QueueHighWater {
			sn.QueueHighWater = hw
		}
		for k := range sn.DriftsByClass {
			sn.DriftsByClass[k] += s.driftsByClass[k].Load()
		}
	}
	if secs := sn.Uptime.Seconds(); secs > 0 {
		sn.InstancesPerSec = float64(sn.Ingested) / secs
	}
	sn.Latency = m.tele.stages()
	return sn
}

// QueuePressure reports the current ring occupancy and capacity of the
// shard that owns streamID — the saturation signal the network server's
// overload shedding reads before accepting more blocking work for that
// stream. Occupancy is in envelopes (an IngestBatch block is one envelope),
// sampled from the same conservation counter Snapshot.Queued aggregates; it
// is exact at quiescence and monotonically consistent under concurrency.
func (m *Monitor) QueuePressure(streamID string) (queued uint64, capacity int) {
	s := m.shards[ShardFor(streamID, len(m.shards))]
	if q := s.queued.Load(); q > 0 {
		queued = uint64(q)
	}
	return queued, s.in.cap()
}

// Streams returns the number of live streams across all shards.
func (m *Monitor) Streams() int {
	n := 0
	for _, s := range m.shards {
		n += int(s.streamCount.Load())
	}
	return n
}

type opcode uint8

const (
	opIngest opcode = iota
	opEvict
	// opFlush is a barrier: the shard applies everything queued ahead of it,
	// snapshots its dirty streams (blocking, when checkpointing is on), and
	// closes the envelope's done channel. See Monitor.FlushCheckpoints.
	opFlush
	// opClose is the shutdown sentinel Close pushes after refusing new
	// producers: necessarily the last envelope on the ring, so the worker
	// drains everything ahead of it and exits.
	opClose
	// opExport / opImport / opList are the stream-migration operations (see
	// migrate.go): export serializes a stream's detector into a checkpoint
	// envelope frame and removes the stream (spilling first, like Evict);
	// import installs a previously exported frame as a new resident stream;
	// list collects the shard's resident stream IDs. All three travel the
	// shard queue like observations, so they serialize cleanly against the
	// stream's in-flight ingests.
	opExport
	opImport
	opList
)

// batchBuf is the pooled carrier of one Ingest/IngestBatch call: the copied
// observations, whose X and Scores slices view slab — one allocation-free
// block per queue hop instead of one pooled buffer per observation.
type batchBuf struct {
	obs  []detectors.Observation
	slab []float64
}

// envelope is one message on a shard's queue. bat owns the pooled copies of
// the observations (nil for opEvict/opFlush) and is returned to the shard's
// pool once the detector consumed the block; done is the opFlush
// acknowledgement channel (nil otherwise); xfer carries the request and
// result of a migration operation (opExport/opImport/opList only).
type envelope struct {
	op   opcode
	id   string
	bat  *batchBuf
	done chan struct{}
	xfer *xferOp
	// at is the telemetry clock reading when the envelope was pushed
	// (stamp-at-push), read at pop for the queue_wait histogram; zero when
	// monitor telemetry is off. Stamping at push rather than timing the pop
	// loop is what makes the number mean "how long did work sit in the
	// ring", including the time a full ring blocked the producer's view of
	// progress.
	at int64
}

// streamState is one stream's detector plus bookkeeping; owned exclusively
// by its shard goroutine.
type streamState struct {
	det      detectors.Detector
	seq      uint64
	lastSeen time.Time
	// dirty marks traffic since the last snapshot; cleared when a snapshot
	// of this stream is queued to the checkpoint writer.
	dirty bool
}

// obsGroup accumulates one stream's observations across the envelopes of a
// micro-batch, keeping the owning batchBufs alive until the flush.
type obsGroup struct {
	obs  []detectors.Observation
	bats []*batchBuf
}

// microBatch bounds how many envelopes one shard wakeup drains before
// flushing. It trades per-observation channel/dispatch overhead against
// event latency: 128 envelopes is far below queue capacity, so a drift is
// never delayed by more than one flush of work already queued anyway.
const microBatch = 128

// shard is one worker: a goroutine draining a ring buffer of observations
// for the streams consistently hashed onto it. Every wakeup pops the ring in
// a micro-batch, groups the observations per stream, and feeds each stream's
// run to its detector in one UpdateBatch call. All mutable per-stream state
// is confined to the goroutine; only the atomic counters are shared.
type shard struct {
	m       *Monitor
	in      *ring
	streams map[string]*streamState
	pool    sync.Pool // *batchBuf slabs carrying copied observations

	// Micro-batch scratch, reused across wakeups so the steady-state drain
	// allocates nothing: per-stream groups (map + first-appearance order +
	// freelist) and the per-flush detector states.
	groups    map[string]*obsGroup
	order     []string
	groupFree []*obsGroup
	states    []detectors.State

	// Checkpoint scratch (checkpoint.go): the envelope payload builder and
	// the framed snapshot, both reused across snapshots so the periodic
	// cadence allocates nothing beyond the pooled write buffers; snapshotted
	// remembers which stream IDs this shard has ever enqueued a snapshot
	// for, so rehydration only pays the write-queue barrier when a write of
	// that stream could actually be in flight.
	ckptScratch *codec.Buffer
	ckptFrame   []byte
	snapshotted map[string]struct{}

	streamCount   atomic.Int64
	ingested      atomic.Uint64
	drifts        atomic.Uint64
	warnings      atomic.Uint64
	dropped       atomic.Uint64
	idleEvicted   atomic.Uint64
	streamErrors  atomic.Uint64
	driftsByClass []atomic.Uint64

	// Conservation counters (see Snapshot.Received): received and queued are
	// adjusted by producers at push time; queued is drawn down and rejected
	// raised on the shard goroutine as observations resolve. queued is
	// signed because a Try* producer's increment races the drain's decrement.
	received atomic.Uint64
	rejected atomic.Uint64
	queued   atomic.Int64
}

// send pushes an envelope carrying n observations, blocking on a full ring
// (the Ingest/IngestBatch backpressure path). Counters move before the push
// so a concurrent Snapshot never sees queued dip below zero on this path.
func (s *shard) send(env envelope, n int) {
	if s.m.tele != nil {
		env.at = telemetry.Now()
	}
	s.received.Add(uint64(n))
	s.queued.Add(int64(n))
	s.in.push(env)
}

// trySend is send without backpressure: on a full ring the counters are
// rolled back and false returned (the caller counts the drop).
func (s *shard) trySend(env envelope, n int) bool {
	if s.m.tele != nil {
		env.at = telemetry.Now()
	}
	s.received.Add(uint64(n))
	s.queued.Add(int64(n))
	if s.in.tryPush(env) {
		return true
	}
	s.received.Add(-uint64(n))
	s.queued.Add(int64(-n))
	return false
}

// appendObs copies o's X (and Scores, when present) onto slab and returns
// the rewritten observation whose slices view slab. Callers presize slab so
// the appends never relocate earlier observations' views.
func appendObs(slab []float64, o detectors.Observation) ([]float64, detectors.Observation) {
	start := len(slab)
	slab = append(slab, o.X...)
	o.X = slab[start:len(slab):len(slab)]
	if o.Scores != nil {
		start = len(slab)
		slab = append(slab, o.Scores...)
		o.Scores = slab[start:len(slab):len(slab)]
	}
	return slab, o
}

// copyOne copies a single observation into a pooled batchBuf so callers can
// reuse their slices the moment Ingest returns (steady state allocates
// nothing).
func (s *shard) copyOne(o detectors.Observation) *batchBuf {
	bat := s.pool.Get().(*batchBuf)
	if need := len(o.X) + len(o.Scores); cap(bat.slab) < need {
		bat.slab = make([]float64, 0, need)
	}
	bat.slab = bat.slab[:0]
	if cap(bat.obs) < 1 {
		bat.obs = make([]detectors.Observation, 0, 16)
	}
	bat.obs = bat.obs[:1]
	bat.slab, bat.obs[0] = appendObs(bat.slab, o)
	return bat
}

// copyBatch copies a block of observations into one pooled slab.
func (s *shard) copyBatch(obs []detectors.Observation) *batchBuf {
	bat := s.pool.Get().(*batchBuf)
	need := 0
	for i := range obs {
		need += len(obs[i].X) + len(obs[i].Scores)
	}
	if cap(bat.slab) < need {
		bat.slab = make([]float64, 0, need)
	}
	bat.slab = bat.slab[:0]
	if cap(bat.obs) < len(obs) {
		bat.obs = make([]detectors.Observation, 0, len(obs))
	}
	bat.obs = bat.obs[:len(obs)]
	for i := range obs {
		bat.slab, bat.obs[i] = appendObs(bat.slab, obs[i])
	}
	return bat
}

// Adaptive spin bounds for the worker's wait-for-work loop: the budget
// doubles whenever spinning paid off (work arrived before parking) and
// halves after a futile spin, so a loaded shard burns a few yields instead
// of a futex round-trip while an idle one converges to parking almost
// immediately.
const (
	spinMin     = 4
	spinDefault = 32
	spinMax     = 256
)

func (s *shard) run() {
	defer s.m.wg.Done()
	// Registered after wg.Done, so it runs first (LIFO): the close-time
	// state flush reaches the checkpoint queue before Close's wg.Wait
	// releases and the queue is drained.
	defer s.finalCheckpoint()
	var gcC <-chan time.Time
	if s.m.cfg.IdleTTL > 0 {
		t := time.NewTicker(s.m.cfg.GCInterval)
		defer t.Stop()
		gcC = t.C
	}
	var ckptC <-chan time.Time
	if s.m.ckptEnabled() {
		t := time.NewTicker(s.m.cfg.Checkpoint.Interval)
		defer t.Stop()
		ckptC = t.C
	}
	pending := make([]envelope, microBatch)
	spins := spinDefault
	for {
		// Pop whatever is already queued (bounded) so the per-stream
		// grouping in process amortizes detector dispatch over the whole
		// micro-batch.
		if n := s.in.popBatch(pending); n > 0 {
			if s.process(pending[:n]) {
				return // opClose drained
			}
			// Give the maintenance tickers a chance between drains without
			// ever blocking the hot loop (nil channels never fire).
			select {
			case <-gcC:
				s.gcIdle()
			case <-ckptC:
				s.snapshotDirty()
			default:
			}
			continue
		}
		// Ring empty: spin briefly — under load the next envelope lands
		// within microseconds and parking would cost two scheduler hops.
		if s.spinForWork(&spins) {
			continue
		}
		// Park. The flag-then-recheck order pairs with the producer's
		// publish-then-check-flag order (see ring.prepark): one side always
		// sees the other.
		s.in.prepark()
		if s.in.occupancy() > 0 {
			s.in.unpark()
			continue
		}
		select {
		case <-s.in.wakeCh():
		case <-gcC:
			s.gcIdle()
		case <-ckptC:
			s.snapshotDirty()
		}
		s.in.unpark()
	}
}

// spinForWork yields up to the adaptive budget waiting for the ring to go
// non-empty, growing the budget on success and shrinking it on a futile
// spin. Returns true when work arrived.
func (s *shard) spinForWork(spins *int) bool {
	for i := 0; i < *spins; i++ {
		if s.in.occupancy() > 0 {
			if *spins < spinMax {
				*spins *= 2
			}
			return true
		}
		runtime.Gosched()
	}
	if *spins > spinMin {
		*spins /= 2
	}
	return false
}

// process groups a drained micro-batch per stream and flushes each stream's
// run through its detector once, returning true when the batch contained the
// opClose sentinel. Per-stream observation order is preserved: observations
// accumulate in arrival order and an Evict flushes the stream's queued
// observations before removing it.
func (s *shard) process(pending []envelope) (closing bool) {
	if t := s.m.tele; t != nil {
		// One clock read per micro-batch: queue-wait is dominated by ring
		// residency, not the sub-microsecond drain spread.
		now := telemetry.Now()
		for i := range pending {
			if at := pending[i].at; at > 0 {
				t.queueWait.Observe(now - at)
			}
		}
	}
	var flushDones []chan struct{}
	var listOps []*xferOp
	for _, env := range pending {
		switch env.op {
		case opClose:
			// Necessarily the last envelope Close will ever push; finish the
			// batch (it can only contain earlier envelopes) and report done.
			closing = true
		case opFlush:
			// Acknowledged after the group flush below, so every envelope
			// queued before the flush has been applied; observations later in
			// this same micro-batch may also be included, which only
			// strengthens the "everything before" guarantee.
			flushDones = append(flushDones, env.done)
		case opEvict:
			// Flush the stream's queued observations first (an empty group —
			// already flushed earlier in this micro-batch — must not be
			// flushed again: flush would materialize a fresh stream).
			if g, ok := s.groups[env.id]; ok && len(g.obs) > 0 {
				s.flush(env.id, g)
			}
			if st, ok := s.streams[env.id]; ok {
				// Spill instead of drop: with checkpointing enabled the
				// trained detector survives in the Store and a later ingest
				// rehydrates it.
				s.spill(env.id, st)
				delete(s.streams, env.id)
				s.streamCount.Add(-1)
			} else {
				// Evicting a non-resident stream is a no-op, but it means the
				// caller's stream bookkeeping disagrees with the monitor's —
				// counted so the disagreement is visible (see Evict).
				s.streamErrors.Add(1)
			}
		case opExport:
			// Like Evict: apply the stream's queued observations first, so
			// the exported state reflects everything sent before the export.
			if g, ok := s.groups[env.id]; ok && len(g.obs) > 0 {
				s.flush(env.id, g)
			}
			s.exportStream(env.id, env.xfer)
		case opImport:
			s.importStream(env.id, env.xfer)
		case opList:
			// Answered after the group flush below, so streams whose first
			// observations are earlier in this micro-batch are included.
			listOps = append(listOps, env.xfer)
		case opIngest:
			g, ok := s.groups[env.id]
			if !ok {
				g = s.getGroup()
				s.groups[env.id] = g
				s.order = append(s.order, env.id)
			}
			g.obs = append(g.obs, env.bat.obs...)
			g.bats = append(g.bats, env.bat)
		}
	}
	for _, id := range s.order {
		g := s.groups[id]
		if len(g.obs) > 0 {
			s.flush(id, g)
		}
		delete(s.groups, id)
		s.putGroup(g)
	}
	s.order = s.order[:0]
	for _, x := range listOps {
		for id := range s.streams {
			x.ids = append(x.ids, id)
		}
		close(x.done)
	}
	if len(flushDones) > 0 {
		// Explicit flush: snapshot every dirty stream with a blocking
		// enqueue — unlike the periodic cadence, a requested flush must not
		// skip streams on a momentarily full write queue.
		if s.m.ckptEnabled() {
			for id, st := range s.streams {
				if st.dirty {
					s.snapshotStream(id, st, true)
				}
			}
		}
		// The flush barrier also starts a fresh queue high-water window (see
		// Snapshot.QueueHighWater): everything queued ahead of it has been
		// applied, so the pre-barrier peak is stale for tuning decisions.
		s.in.resetHighWater()
		for _, done := range flushDones {
			close(done)
		}
	}
	return closing
}

func (s *shard) getGroup() *obsGroup {
	if n := len(s.groupFree); n > 0 {
		g := s.groupFree[n-1]
		s.groupFree = s.groupFree[:n-1]
		return g
	}
	return &obsGroup{}
}

func (s *shard) putGroup(g *obsGroup) {
	s.groupFree = append(s.groupFree, g)
}

// release returns a flushed group's batchBufs to the pool and resets it for
// reuse within the same micro-batch (an Evict may flush mid-batch).
func (s *shard) release(g *obsGroup) {
	for i, bat := range g.bats {
		s.pool.Put(bat)
		g.bats[i] = nil
	}
	g.bats = g.bats[:0]
	g.obs = g.obs[:0]
}

// flush runs one stream's accumulated observations through its detector,
// creating the detector on first sight, and records states and drift events.
func (s *shard) flush(id string, g *obsGroup) {
	n := len(g.obs)
	st, ok := s.streams[id]
	if !ok {
		if max := s.m.cfg.MaxStreamsPerShard; max > 0 && len(s.streams) >= max {
			s.reject(n)
			s.release(g)
			return
		}
		det, err := s.m.cfg.NewDetector(id)
		if err != nil {
			s.reject(n)
			s.release(g)
			return
		}
		st = &streamState{det: det}
		// A checkpointed stream resumes its trained detector and sequence
		// counter; a genuinely new stream starts at zero.
		st.seq = s.rehydrate(id, det)
		s.streams[id] = st
		s.streamCount.Add(1)
	}
	now := time.Now()
	st.lastSeen = now
	var detStart int64
	if s.m.tele != nil {
		detStart = telemetry.Now()
	}
	if bd, ok := st.det.(detectors.BatchDetector); ok {
		if cap(s.states) < n {
			s.states = make([]detectors.State, n)
		}
		states := s.states[:n]
		bd.UpdateBatch(g.obs, states)
		if t := s.m.tele; t != nil {
			t.detector.Observe(telemetry.Now() - detStart)
		}
		// Batched attribution is per block: DriftClasses after UpdateBatch
		// is the union over the block's drifting mini-batches, so every
		// drift event of this flush carries the same class list.
		var classes []int
		if attr, ok := st.det.(detectors.ClassAttributor); ok {
			classes = attr.DriftClasses()
		}
		for _, state := range states {
			st.seq++
			s.tally(id, st, state, classes, now)
		}
	} else {
		// Legacy detectors keep exact per-observation attribution: classes
		// are read immediately after the Update that signalled the drift.
		for i := range g.obs {
			st.seq++
			state := st.det.Update(g.obs[i])
			var classes []int
			if state == detectors.Drift {
				if attr, ok := st.det.(detectors.ClassAttributor); ok {
					classes = attr.DriftClasses()
				}
			}
			s.tally(id, st, state, classes, now)
		}
		if t := s.m.tele; t != nil {
			t.detector.Observe(telemetry.Now() - detStart)
		}
	}
	s.ingested.Add(uint64(n))
	s.queued.Add(int64(-n))
	st.dirty = true
	s.release(g)
}

// reject resolves n received-but-unprocessable observations (factory
// failure, stream cap): they leave the queue into Rejected, and StreamErrors
// keeps its historical per-observation accounting.
func (s *shard) reject(n int) {
	s.streamErrors.Add(uint64(n))
	s.rejected.Add(uint64(n))
	s.queued.Add(int64(-n))
}

// tally records one observation's detector state and publishes drift events.
func (s *shard) tally(id string, st *streamState, state detectors.State, classes []int, now time.Time) {
	switch state {
	case detectors.Warning:
		s.warnings.Add(1)
	case detectors.Drift:
		s.drifts.Add(1)
		ev := Event{StreamID: id, Seq: st.seq, At: now}
		ev.Classes = append(ev.Classes, classes...)
		// Attach the flight record when the detector keeps one. A batched
		// flush with several drifting mini-batches attaches the latest
		// record to each of its events; records are immutable, so sharing
		// the pointer is safe.
		if rec, ok := st.det.(driftRecorder); ok {
			ev.Record = rec.LastDriftRecord()
		}
		for _, k := range ev.Classes {
			if k >= 0 && k < len(s.driftsByClass) {
				s.driftsByClass[k].Add(1)
			}
		}
		s.m.lastDrift.Store(id, DriftReport{
			StreamID: id, Seq: st.seq, At: now,
			Classes: ev.Classes, Record: ev.Record,
		})
		s.m.publish(ev)
	}
}

// driftRecorder is the optional detector capability behind Event.Record
// (implemented by core.Detector).
type driftRecorder interface {
	LastDriftRecord() *core.DriftRecord
}

// DriftReport is the retrievable form of a stream's most recent drift: the
// event coordinates plus the flight record (nil for detectors without a
// recorder). Served over the wire by the LastDrift request.
type DriftReport struct {
	StreamID string
	Seq      uint64
	At       time.Time
	Classes  []int
	Record   *core.DriftRecord
}

// LastDrift returns the report of streamID's most recent drift, or false if
// the stream has never drifted in this process. Reports survive stream
// eviction (they describe history, not live state) but are process-local:
// they are not checkpointed and do not migrate.
func (m *Monitor) LastDrift(streamID string) (DriftReport, bool) {
	v, ok := m.lastDrift.Load(streamID)
	if !ok {
		return DriftReport{}, false
	}
	return v.(DriftReport), true
}

// gcIdle evicts streams idle for longer than IdleTTL, spilling their state
// to the checkpoint store first (so an idle stream that later wakes up
// resumes its trained detector).
func (s *shard) gcIdle() {
	cutoff := time.Now().Add(-s.m.cfg.IdleTTL)
	for id, st := range s.streams {
		if st.lastSeen.Before(cutoff) {
			s.spill(id, st)
			delete(s.streams, id)
			s.streamCount.Add(-1)
			s.idleEvicted.Add(1)
		}
	}
}
