package monitor

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"rbmim/internal/codec"
	"rbmim/internal/detectors"
)

// Live stream migration: export a stream's trained detector as the same
// checkpoint envelope frame the Store holds ([seq | detector frame] inside a
// KindMonitorStream codec frame), and import such a frame into another
// monitor as a new resident stream. This is the in-process half of the
// cluster handoff (internal/server): because export serializes exactly like
// snapshotStream and import restores exactly like rehydrate, a migrated
// stream's continuation is bit-identical to never having moved — the
// save→load→continue equivalence the checkpoint layer already guarantees
// carries over to cross-process handoff byte for byte.
//
// Both operations travel the owning shard's queue like observations, so they
// order cleanly against the stream's in-flight ingests: everything enqueued
// before the export is applied to the detector before it is serialized, and
// anything enqueued after the export materializes a fresh (or store-
// rehydrated) stream, exactly as a sequential interleaving would.

// ErrStreamNotFound is returned (wrapped) by ExportStream when the stream is
// neither resident nor present in the checkpoint Store.
var ErrStreamNotFound = errors.New("monitor: stream not found")

// xferOp is the request/result carrier of one migration operation. The
// requesting goroutine allocates it, the shard goroutine fills frame/ids/err
// and closes done; migration is a cold path, so these allocations never
// touch the ingest steady state.
type xferOp struct {
	frame []byte
	ids   []string
	err   error
	done  chan struct{}
}

// ExportStream serializes the stream's detector state into a checkpoint
// envelope frame, removes the stream from the monitor, and returns the
// frame. With checkpointing enabled the state is also spilled to the Store
// first (exactly like Evict), which makes export idempotent under retry: a
// re-sent export after a lost reply — the stream no longer resident — falls
// back to the Store and returns the same bytes, and a handoff that fails
// downstream self-heals because the next ingest rehydrates from that spill.
// Without a Store, a lost export reply loses the trained state (the frame
// existed only in the reply), so cluster members should run checkpointed.
//
// Exporting a stream that is neither resident nor in the Store returns an
// error wrapping ErrStreamNotFound.
func (m *Monitor) ExportStream(streamID string) ([]byte, error) {
	s := m.shards[ShardFor(streamID, len(m.shards))]
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	x := &xferOp{done: make(chan struct{})}
	s.in.push(envelope{op: opExport, id: streamID, xfer: x})
	<-x.done
	return x.frame, x.err
}

// ImportStream installs a frame produced by ExportStream (on this or any
// other monitor with a compatible detector configuration) as a new resident
// stream. The restored detector continues bit-identically from where the
// exporter left it, sequence counter included. Importing over an already
// resident stream is an error — the caller (the cluster client) must route
// ingests away from the target until the import completes, and a silent
// overwrite would destroy trained state. With checkpointing enabled the
// imported state is persisted immediately, so the Store's newest entry for
// the stream is the handed-off state rather than a stale pre-migration
// spill. Imports count toward Snapshot.Rehydrated: the stream was restored
// from serialized state, just delivered over the wire instead of read from
// the Store.
func (m *Monitor) ImportStream(streamID string, frame []byte) error {
	s := m.shards[ShardFor(streamID, len(m.shards))]
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	x := &xferOp{frame: frame, done: make(chan struct{})}
	s.in.push(envelope{op: opImport, id: streamID, xfer: x})
	<-x.done
	return x.err
}

// StreamIDs returns the IDs of every currently resident stream, sorted. Like
// FlushCheckpoints it travels the shard queues, so the listing reflects at
// least everything enqueued before the call — the enumeration a cluster
// rebalance needs to decide which streams a topology change remapped.
func (m *Monitor) StreamIDs() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	ops := make([]*xferOp, len(m.shards))
	for i, s := range m.shards {
		ops[i] = &xferOp{done: make(chan struct{})}
		s.in.push(envelope{op: opList, xfer: ops[i]})
	}
	var ids []string
	for _, x := range ops {
		<-x.done
		ids = append(ids, x.ids...)
	}
	sort.Strings(ids)
	return ids, nil
}

// exportStream runs on the shard goroutine (opExport), after the stream's
// queued observations were flushed. Resident: serialize exactly like
// snapshotStream, spill, remove. Not resident: fall back to the Store (the
// idempotent-retry and already-evicted cases).
func (s *shard) exportStream(id string, x *xferOp) {
	defer close(x.done)
	st, ok := s.streams[id]
	if !ok {
		x.frame, x.err = s.storedEnvelope(id)
		return
	}
	sd, ok := st.det.(detectors.StatefulDetector)
	if !ok {
		x.err = fmt.Errorf("monitor: export %q: detector is not checkpointable", id)
		return
	}
	s.ckptScratch.Reset()
	s.ckptScratch.U64(st.seq)
	if err := sd.SaveState(s.ckptScratch); err != nil {
		s.m.ckptErrors.Add(1)
		x.err = fmt.Errorf("monitor: export %q: %w", id, err)
		return
	}
	x.frame = codec.AppendFrame(nil, codec.KindMonitorStream, s.ckptScratch.Bytes())
	// Spill-then-remove, exactly like Evict. SaveState is deterministic, so
	// the Store copy matches the returned frame byte for byte.
	s.spill(id, st)
	delete(s.streams, id)
	s.streamCount.Add(-1)
}

// storedEnvelope reads the stream's newest checkpoint from the Store,
// validating and copying it (Store.Get returns a transient view). The same
// write-queue fence as rehydrate keeps a queued spill from being overtaken.
func (s *shard) storedEnvelope(id string) ([]byte, error) {
	m := s.m
	if !m.ckptEnabled() {
		return nil, fmt.Errorf("%w: %q", ErrStreamNotFound, id)
	}
	if _, ever := s.snapshotted[id]; ever {
		m.ckptBarrier()
	}
	data, ok, err := m.cfg.Checkpoint.Store.Get(id)
	if err != nil {
		m.ckptErrors.Add(1)
		return nil, fmt.Errorf("monitor: export %q: %w", id, err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrStreamNotFound, id)
	}
	if _, err := codec.ExpectFrame(data, codec.KindMonitorStream); err != nil {
		m.ckptErrors.Add(1)
		return nil, fmt.Errorf("monitor: export %q: %w", id, err)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// importStream runs on the shard goroutine (opImport): decode exactly like
// rehydrate, install, persist.
func (s *shard) importStream(id string, x *xferOp) {
	defer close(x.done)
	if _, ok := s.streams[id]; ok {
		x.err = fmt.Errorf("monitor: import %q: stream already resident", id)
		return
	}
	if max := s.m.cfg.MaxStreamsPerShard; max > 0 && len(s.streams) >= max {
		x.err = fmt.Errorf("monitor: import %q: shard at MaxStreamsPerShard (%d)", id, max)
		return
	}
	payload, err := codec.ExpectFrame(x.frame, codec.KindMonitorStream)
	if err != nil {
		x.err = fmt.Errorf("monitor: import %q: %w", id, err)
		return
	}
	rd := codec.NewReader(payload)
	seq := rd.U64()
	if rd.Err() != nil {
		x.err = fmt.Errorf("monitor: import %q: %w", id, rd.Err())
		return
	}
	det, err := s.m.cfg.NewDetector(id)
	if err != nil {
		x.err = fmt.Errorf("monitor: import %q: %w", id, err)
		return
	}
	sd, ok := det.(detectors.StatefulDetector)
	if !ok {
		x.err = fmt.Errorf("monitor: import %q: detector is not checkpointable", id)
		return
	}
	if err := sd.LoadState(bytes.NewReader(payload[8:])); err != nil {
		x.err = fmt.Errorf("monitor: import %q: %w", id, err)
		return
	}
	st := &streamState{det: det, seq: seq, lastSeen: time.Now(), dirty: true}
	s.streams[id] = st
	s.streamCount.Add(1)
	s.m.rehydrated.Add(1)
	// Persist now (blocking, like any spill) so the Store's newest entry is
	// the handed-off state, not a stale spill from a previous residence.
	s.spill(id, st)
}
