package monitor

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/stream"
	"rbmim/internal/synth"
)

// testConfig returns a small, fast monitor configuration.
func testConfig(shards int) Config {
	return Config{
		Detector: core.Config{Features: 8, Classes: 3, Seed: 7},
		Shards:   shards,
	}
}

func TestShardPlacementIsDeterministicAndBalanced(t *testing.T) {
	const shards, streams = 8, 4096
	counts := make([]int, shards)
	for i := 0; i < streams; i++ {
		id := fmt.Sprintf("stream-%d", i)
		s1 := ShardFor(id, shards)
		s2 := ShardFor(id, shards)
		if s1 != s2 {
			t.Fatalf("placement of %q not deterministic: %d vs %d", id, s1, s2)
		}
		counts[s1]++
	}
	want := streams / shards
	for s, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("shard %d holds %d streams, want within [%d, %d]", s, c, want/2, want*2)
		}
	}
}

func TestJumpHashStability(t *testing.T) {
	// Growing the shard pool must move only a minority of streams — the
	// consistent-hashing property that keeps detector state reusable.
	const streams = 2000
	moved := 0
	for i := 0; i < streams; i++ {
		id := fmt.Sprintf("s%d", i)
		if ShardFor(id, 8) != ShardFor(id, 9) {
			moved++
		}
	}
	// Ideal is streams/9 ≈ 222; allow generous slack.
	if moved > streams/4 {
		t.Fatalf("%d of %d streams moved when growing 8 -> 9 shards; want ~1/9", moved, streams)
	}
}

func TestConcurrentIngestAcrossShards(t *testing.T) {
	m, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	const (
		producers = 8
		perStream = 400
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen, err := synth.NewRBF(synth.Config{Features: 8, Classes: 3, Seed: int64(p)}, 3, 0.08)
			if err != nil {
				t.Error(err)
				return
			}
			id := fmt.Sprintf("producer-%d", p)
			for i := 0; i < perStream; i++ {
				in := gen.Next()
				if err := m.Ingest(id, detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	m.Close()
	sn := m.Snapshot()
	if got, want := sn.Ingested, uint64(producers*perStream); got != want {
		t.Fatalf("ingested %d observations, want %d", got, want)
	}
	if sn.Streams != producers {
		t.Fatalf("monitor tracks %d streams, want %d", sn.Streams, producers)
	}
	if sn.Shards != 4 {
		t.Fatalf("snapshot reports %d shards, want 4", sn.Shards)
	}
	total := 0
	for _, c := range sn.ShardStreams {
		total += c
	}
	if total != producers {
		t.Fatalf("per-shard stream counts sum to %d, want %d", total, producers)
	}
}

func TestIngestCopiesFeatureVector(t *testing.T) {
	m, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	x := make([]float64, 8)
	for i := 0; i < 100; i++ {
		for j := range x {
			x[j] = float64(i + j)
		}
		if err := m.Ingest("reused-buffer", detectors.Observation{X: x, TrueClass: i % 3, Predicted: i % 3}); err != nil {
			t.Fatal(err)
		}
		// Immediately clobber the caller-owned buffer: the monitor must have
		// taken its own copy.
		for j := range x {
			x[j] = -1
		}
	}
}

// driftEveryN is a deterministic detector stub: it signals Drift every n-th
// observation and records how many updates it received.
type driftEveryN struct {
	n       int
	updates int
	class   int
}

func (d *driftEveryN) Update(detectors.Observation) detectors.State {
	d.updates++
	if d.updates%d.n == 0 {
		return detectors.Drift
	}
	return detectors.None
}
func (d *driftEveryN) Reset()              {}
func (d *driftEveryN) Name() string        { return "driftEveryN" }
func (d *driftEveryN) DriftClasses() []int { return []int{d.class} }

func TestPerStreamIsolationOfDriftSignals(t *testing.T) {
	// Two streams on one monitor: one drifts every 10 observations, the
	// other never. Events must carry only the drifting stream's ID, and the
	// quiet stream's detector must still receive all its observations.
	dets := map[string]*driftEveryN{}
	var mu sync.Mutex
	cfg := Config{
		Shards: 2,
		NewDetector: func(id string) (detectors.Detector, error) {
			n := 1 << 30
			if id == "noisy" {
				n = 10
			}
			d := &driftEveryN{n: n, class: 1}
			mu.Lock()
			dets[id] = d
			mu.Unlock()
			return d, nil
		},
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range m.Events() {
			events = append(events, ev)
		}
	}()
	x := []float64{0.5}
	for i := 0; i < 100; i++ {
		for _, id := range []string{"noisy", "quiet"} {
			if err := m.Ingest(id, detectors.Observation{X: x, TrueClass: 0, Predicted: 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Close()
	<-done
	if len(events) != 10 {
		t.Fatalf("got %d drift events, want 10", len(events))
	}
	for _, ev := range events {
		if ev.StreamID != "noisy" {
			t.Fatalf("drift event attributed to %q, want only %q", ev.StreamID, "noisy")
		}
		if len(ev.Classes) != 1 || ev.Classes[0] != 1 {
			t.Fatalf("drift event classes = %v, want [1]", ev.Classes)
		}
	}
	if dets["quiet"].updates != 100 {
		t.Fatalf("quiet stream's detector saw %d updates, want 100", dets["quiet"].updates)
	}
	sn := m.Snapshot()
	if sn.Drifts != 10 {
		t.Fatalf("snapshot drifts = %d, want 10", sn.Drifts)
	}
}

func TestIdleStreamEviction(t *testing.T) {
	cfg := testConfig(2)
	cfg.IdleTTL = 50 * time.Millisecond
	cfg.GCInterval = 10 * time.Millisecond
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	x := make([]float64, 8)
	for i := 0; i < 4; i++ {
		if err := m.Ingest(fmt.Sprintf("ephemeral-%d", i), detectors.Observation{X: x}); err != nil {
			t.Fatal(err)
		}
	}
	// Keep one stream warm while the others age out.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := m.Ingest("persistent", detectors.Observation{X: x}); err != nil {
			t.Fatal(err)
		}
		if m.Streams() == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.Streams(); got != 1 {
		t.Fatalf("after idle GC %d streams remain, want 1 (persistent)", got)
	}
	if sn := m.Snapshot(); sn.IdleEvicted != 4 {
		t.Fatalf("idle-evicted %d streams, want 4", sn.IdleEvicted)
	}
}

func TestExplicitEvictAndRecreate(t *testing.T) {
	var created int
	var mu sync.Mutex
	cfg := Config{
		Shards: 1,
		NewDetector: func(id string) (detectors.Detector, error) {
			mu.Lock()
			created++
			mu.Unlock()
			return &driftEveryN{n: 1 << 30}, nil
		},
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1}
	obs := detectors.Observation{X: x}
	if err := m.Ingest("s", obs); err != nil {
		t.Fatal(err)
	}
	if err := m.Evict("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest("s", obs); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if m.Streams() != 1 {
		t.Fatalf("stream count = %d, want 1", m.Streams())
	}
	if created != 2 {
		t.Fatalf("detector factory ran %d times, want 2 (evict forces re-creation)", created)
	}
}

func TestCloseSemantics(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // idempotent
	if err := m.Ingest("s", detectors.Observation{X: make([]float64, 8)}); err != ErrClosed {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}
	if _, err := m.TryIngest("s", detectors.Observation{X: make([]float64, 8)}); err != ErrClosed {
		t.Fatalf("TryIngest after Close = %v, want ErrClosed", err)
	}
	if err := m.Evict("s"); err != ErrClosed {
		t.Fatalf("Evict after Close = %v, want ErrClosed", err)
	}
	if _, ok := <-m.Events(); ok {
		t.Fatal("event channel should be closed after Close")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with zero config should fail (no detector template or factory)")
	}
	if _, err := New(Config{Detector: core.Config{Features: 5, Classes: 1}}); err == nil {
		t.Fatal("New should reject Classes < 2")
	}
}

func TestOnDriftCallback(t *testing.T) {
	var mu sync.Mutex
	var calls []Event
	cfg := Config{
		Shards: 1,
		NewDetector: func(id string) (detectors.Detector, error) {
			return &driftEveryN{n: 5}, nil
		},
		OnDrift: func(ev Event) {
			mu.Lock()
			calls = append(calls, ev)
			mu.Unlock()
		},
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0}
	for i := 0; i < 25; i++ {
		if err := m.Ingest("cb", detectors.Observation{X: x}); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	if len(calls) != 5 {
		t.Fatalf("OnDrift ran %d times, want 5", len(calls))
	}
	if calls[0].Seq != 5 {
		t.Fatalf("first drift at seq %d, want 5", calls[0].Seq)
	}
}

// TestEndToEndDriftDetection drives a real sudden drift through the monitor
// with real RBM-IM detectors on several streams and expects the drifted
// streams to emit events.
func TestEndToEndDriftDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end drift run is slow")
	}
	cfg := Config{
		Detector: core.Config{
			Features: 8, Classes: 3, Seed: 11,
			BatchSize: 25, WarmupBatches: 10, AdaptiveWindow: true,
		},
		Shards: 2,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drifted := make(map[string]bool)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range m.Events() {
			drifted[ev.StreamID] = true
		}
	}()
	base := synth.Config{Features: 8, Classes: 3, Seed: 3}
	for s := 0; s < 3; s++ {
		before, err := synth.NewRBF(base, 3, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		afterCfg := base
		afterCfg.Seed = 99 + int64(s)
		after, err := synth.NewRBF(afterCfg, 3, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		src := stream.NewDriftStream(before, after, stream.Sudden, 6000, 0, 1)
		id := fmt.Sprintf("feed-%d", s)
		for i := 0; i < 12000; i++ {
			in := src.Next()
			if err := m.Ingest(id, detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Close()
	<-done
	if len(drifted) == 0 {
		t.Fatal("no stream reported drift despite a sudden concept change on every stream")
	}
	sn := m.Snapshot()
	if sn.Drifts == 0 || sn.Ingested != 36000 {
		t.Fatalf("snapshot = %+v, want 36000 ingested and > 0 drifts", sn)
	}
}
