package monitor

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
)

// TestConcurrentSoakWithConservation is the CI -race soak: at least eight
// goroutines hammer every externally visible mutation path at once —
// blocking and non-blocking ingest, eviction, checkpoint flush barriers,
// subscription churn, and snapshot polling — against small rings so the
// full-queue and backpressure paths fire constantly. After a final flush
// barrier the counters must balance exactly:
//
//	accepted (producer side) == Received == Ingested + Rejected
//	Queued == 0
//	attempted == accepted + Dropped
//
// Any lost wakeup deadlocks the test; any racy counter breaks the equations;
// any memory race trips the detector.
func TestConcurrentSoakWithConservation(t *testing.T) {
	const (
		producers = 6
		perProd   = 400
		batchLen  = 8
		streams   = 24
	)
	store := NewMemStore()
	m, err := New(Config{
		Detector:   core.Config{Features: 4, Classes: 2, Seed: 5},
		Shards:     4,
		QueueSize:  8, // tiny: keeps rings saturated
		Checkpoint: CheckpointConfig{Store: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	var attempted, accepted, dropped atomic.Uint64
	var wgProd, wgChurn sync.WaitGroup
	stop := make(chan struct{})

	// Blocking + non-blocking producers.
	for p := 0; p < producers; p++ {
		wgProd.Add(1)
		go func(p int) {
			defer wgProd.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < perProd; i++ {
				id := fmt.Sprintf("soak-%d", rng.Intn(streams))
				obs := make([]detectors.Observation, batchLen)
				for j := range obs {
					obs[j] = detectors.Observation{X: []float64{rng.Float64(), 1, 2, 3}}
				}
				switch i % 3 {
				case 0:
					attempted.Add(batchLen)
					if err := m.IngestBatch(id, obs); err != nil {
						t.Errorf("IngestBatch: %v", err)
						return
					}
					accepted.Add(batchLen)
				case 1:
					attempted.Add(batchLen)
					ok, err := m.TryIngestBatch(id, obs)
					if err != nil {
						t.Errorf("TryIngestBatch: %v", err)
						return
					}
					if ok {
						accepted.Add(batchLen)
					} else {
						dropped.Add(batchLen)
					}
				default:
					attempted.Add(1)
					ok, err := m.TryIngest(id, obs[0])
					if err != nil {
						t.Errorf("TryIngest: %v", err)
						return
					}
					if ok {
						accepted.Add(1)
					} else {
						dropped.Add(1)
					}
				}
			}
		}(p)
	}
	// Evictor: spills random streams back to the store mid-traffic.
	wgChurn.Add(1)
	go func() {
		defer wgChurn.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Evict(fmt.Sprintf("soak-%d", rng.Intn(streams))); err != nil {
				t.Errorf("Evict: %v", err)
				return
			}
		}
	}()
	// Flusher: checkpoint barriers while everything is in flight.
	wgChurn.Add(1)
	go func() {
		defer wgChurn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.FlushCheckpoints(); err != nil {
				t.Errorf("FlushCheckpoints: %v", err)
				return
			}
		}
	}()
	// Subscriber churn: attach, drain a little, detach.
	wgChurn.Add(1)
	go func() {
		defer wgChurn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sub, err := m.Subscribe(4)
			if err != nil {
				t.Errorf("Subscribe: %v", err)
				return
			}
			for i := 0; i < 8; i++ {
				select {
				case <-sub.Events():
				default:
				}
			}
			sub.Close()
		}
	}()
	// Snapshot poller: reads the counters while they move.
	wgChurn.Add(1)
	go func() {
		defer wgChurn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// No mid-flight equation can hold exactly (the counters are read
			// at different instants); the poller's job is to race the reads
			// against the writers and let -race judge.
			_ = m.Snapshot()
		}
	}()

	// Wait for the producers' fixed quota, stop the churners, then fence all
	// shards so every accepted observation has been applied or rejected.
	wgProd.Wait()
	close(stop)
	wgChurn.Wait()

	if err := m.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn := m.Snapshot()
	if got, want := sn.Received, accepted.Load(); got != want {
		t.Fatalf("Received = %d, producer-side accepted = %d", got, want)
	}
	if got, want := sn.Dropped, dropped.Load(); got != want {
		t.Fatalf("Dropped = %d, producer-side dropped = %d", got, want)
	}
	if attempted.Load() != accepted.Load()+dropped.Load() {
		t.Fatalf("attempted %d != accepted %d + dropped %d", attempted.Load(), accepted.Load(), dropped.Load())
	}
	if sn.Received != sn.Ingested+sn.Rejected {
		t.Fatalf("conservation violated at barrier: Received %d != Ingested %d + Rejected %d", sn.Received, sn.Ingested, sn.Rejected)
	}
	if sn.Queued != 0 {
		t.Fatalf("Queued = %d at barrier, want 0", sn.Queued)
	}
	m.Close()
}
