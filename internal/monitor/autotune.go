package monitor

// Shard-count autotuning. Shards are the monitor's unit of parallelism —
// each one is a goroutine that owns its streams' detectors — so the right
// count is keyed off how many cores the Go scheduler may actually use
// (runtime.GOMAXPROCS), not the machine's nominal CPU count, and corrected
// by what the ring queues observe at runtime: sustained high occupancy with
// schedulable cores to spare means detector work is the bottleneck and more
// shards would help; more shards than cores only adds context switching and
// spreads cache footprint without adding parallelism.

import (
	"fmt"
	"runtime"
)

// AutotuneShards returns the shard count New selects when Config.Shards is
// zero: one worker per schedulable core (runtime.GOMAXPROCS at call time).
// Producers live on the caller's goroutines, so with every core busy the
// workers and producers time-share — which is the throughput-optimal shape
// for a saturated monitor, and harmless for an idle one because parked
// shards cost nothing.
func AutotuneShards() int {
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return p
	}
	return 1
}

// TuneAdvice is Monitor.TuneAdvice's verdict: the observed saturation signal
// and the shard count it recommends for the next deployment (resharding is a
// restart-time decision — consistent hashing plus the checkpoint store move
// only ~1/n of the streams' state).
type TuneAdvice struct {
	// Shards is the running shard count; GOMAXPROCS the schedulable cores
	// observed now.
	Shards, GOMAXPROCS int
	// Occupancy is the worst per-shard ring high-water mark as a fraction of
	// ring capacity — 1.0 means some shard's queue has been completely full.
	// The mark is windowed, not lifetime: each FlushCheckpoints barrier
	// resets it (see Snapshot.QueueHighWater), so the advice reflects load
	// since the last flush rather than a stale startup peak.
	Occupancy float64
	// Recommended is the advised shard count for these conditions; equal to
	// Shards when the current count looks right.
	Recommended int
	// Reason explains the recommendation in one sentence.
	Reason string
}

// String formats the advice for log lines and CLI output.
func (a TuneAdvice) String() string {
	return fmt.Sprintf("shards=%d gomaxprocs=%d occupancy=%.2f recommended=%d (%s)",
		a.Shards, a.GOMAXPROCS, a.Occupancy, a.Recommended, a.Reason)
}

// occupancyHigh is the high-water fraction above which queues count as
// saturating: above it, backpressure (blocked Ingest calls) is imminent.
const occupancyHigh = 0.5

// TuneAdvice inspects the ring high-water marks and current GOMAXPROCS and
// recommends a shard count. It is cheap (atomic reads) and safe to call at
// any time, including after Close.
func (m *Monitor) TuneAdvice() TuneAdvice {
	a := TuneAdvice{
		Shards:      len(m.shards),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Recommended: len(m.shards),
	}
	for _, s := range m.shards {
		if f := float64(s.in.highWater.Load()) / float64(s.in.cap()); f > a.Occupancy {
			a.Occupancy = f
		}
	}
	switch {
	case a.Shards > a.GOMAXPROCS:
		a.Recommended = a.GOMAXPROCS
		a.Reason = "more shards than schedulable cores: extra shards add scheduling and cache pressure without parallelism"
	case a.Occupancy >= occupancyHigh && a.Shards < a.GOMAXPROCS:
		if a.Recommended = a.Shards * 2; a.Recommended > a.GOMAXPROCS {
			a.Recommended = a.GOMAXPROCS
		}
		a.Reason = "queues saturating with schedulable cores to spare: detector work is the bottleneck, add shards"
	case a.Occupancy >= occupancyHigh:
		a.Reason = "queues saturating with every core occupied: the box is the bottleneck, scale out instead"
	default:
		a.Reason = "balanced: queues shallow at the current shard count"
	}
	return a
}
