package monitor

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
)

// BenchmarkMonitorParallelIngest measures aggregate ingest throughput with
// the full detector pipeline live: every parallel worker owns one stream and
// pushes IngestBatch blocks through the shard rings while the autotuned
// shard pool (one per GOMAXPROCS) trains real RBM-IM detectors. Run with
// `go test -cpu 1,4,8` for the multi-core scaling series; the ns/obs metric
// is gated per parallelism level by scripts/benchguard -percpu, so a
// regression that only appears under contention cannot hide behind the
// single-proc number. The closing FlushCheckpoints barrier keeps queued work
// inside the timed region — the metric is end-to-end applied observations,
// not enqueue rate.
func BenchmarkMonitorParallelIngest(b *testing.B) {
	const block = 128
	m, err := New(Config{
		Detector:  core.Config{Features: 8, Classes: 3, Seed: 7, BatchSize: 50},
		Shards:    0, // autotune: one shard per schedulable core
		QueueSize: 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := fmt.Sprintf("bench-%d", next.Add(1))
		rng := rand.New(rand.NewSource(int64(next.Load())))
		obs := make([]detectors.Observation, block)
		for i := range obs {
			obs[i] = detectors.Observation{
				X:         []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), 1, 2, 3, 4},
				TrueClass: i % 3, Predicted: i % 3,
			}
		}
		for pb.Next() {
			if err := m.IngestBatch(id, obs); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if err := m.FlushCheckpoints(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*block), "ns/obs")
}
