package detectors

// BatchDetector is implemented by detectors with a native batched update
// path. UpdateBatch must be observationally equivalent to calling Update once
// per element of obs in order: the i-th state written into states is the
// state Update would have returned for obs[i], and the detector's internal
// state afterwards matches the sequential run exactly. The value of batching
// is amortization — one interface dispatch, one bounds check, one scratch
// setup for a whole block — not different semantics.
//
// One deliberate relaxation: a ClassAttributor's DriftClasses, queried after
// UpdateBatch, describes the drifts of the whole call (for RBM-IM, the union
// of classes over every mini-batch that drifted during the block) rather
// than only the single most recent Update. Callers that need per-signal
// attribution at observation granularity should feed one observation at a
// time, which is exactly what the adapter below does for legacy detectors.
type BatchDetector interface {
	Detector
	// UpdateBatch consumes len(obs) observations, writing the per-observation
	// detector state into states[i]. states must have at least len(obs)
	// elements; the implementation must not retain obs, the observations' X
	// or Scores slices, or states past the call.
	UpdateBatch(obs []Observation, states []State)
}

// UpdateBatch feeds a block of observations to det, using its native batched
// path when it implements BatchDetector and a plain per-observation loop
// otherwise, so callers can batch unconditionally while every legacy
// detector keeps working unchanged. states must have at least len(obs)
// elements.
func UpdateBatch(det Detector, obs []Observation, states []State) {
	if bd, ok := det.(BatchDetector); ok {
		bd.UpdateBatch(obs, states)
		return
	}
	for i := range obs {
		states[i] = det.Update(obs[i])
	}
}
