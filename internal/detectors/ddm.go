package detectors

import "math"

// DDM is the Drift Detection Method of Gama et al. (2004). It models the
// classifier's error rate p_t with standard deviation s_t = sqrt(p(1-p)/t),
// remembers the minimum of p+s, and raises a warning when p+s exceeds
// p_min + 2 s_min and a drift when it exceeds p_min + 3 s_min.
type DDM struct {
	// MinInstances is the number of observations before testing (default 30).
	MinInstances int
	// WarningLevel and DriftLevel are the multipliers on s_min (defaults 2, 3).
	WarningLevel, DriftLevel float64

	n      float64
	errCnt float64
	pMin   float64
	sMin   float64
	psMin  float64
}

// NewDDM builds a DDM with the canonical parameters.
func NewDDM() *DDM {
	d := &DDM{MinInstances: 30, WarningLevel: 2, DriftLevel: 3}
	d.Reset()
	return d
}

// Name returns "DDM".
func (d *DDM) Name() string { return "DDM" }

// Reset restores the initial state.
func (d *DDM) Reset() {
	d.n, d.errCnt = 0, 0
	d.pMin, d.sMin, d.psMin = math.Inf(1), math.Inf(1), math.Inf(1)
}

// Update consumes one prediction outcome.
func (d *DDM) Update(o Observation) State {
	d.n++
	if !o.Correct() {
		d.errCnt++
	}
	p := d.errCnt / d.n
	s := math.Sqrt(p * (1 - p) / d.n)
	if d.n < float64(d.MinInstances) {
		return None
	}
	if p+s < d.psMin {
		d.pMin, d.sMin, d.psMin = p, s, p+s
	}
	switch {
	case p+s > d.pMin+d.DriftLevel*d.sMin:
		d.Reset()
		return Drift
	case p+s > d.pMin+d.WarningLevel*d.sMin:
		return Warning
	default:
		return None
	}
}
