package detectors

import "rbmim/internal/stats"

// ADWINDetector wraps the adaptive-windowing algorithm (Bifet & Gavalda
// 2007) as a drift detector over the 0/1 error indicator: the window shrinks
// — and drift is signalled — whenever two sub-windows of the recent error
// sequence have significantly different means.
type ADWINDetector struct {
	// Delta is the ADWIN confidence parameter (default 0.002).
	Delta float64

	win *stats.ADWIN
}

// NewADWINDetector builds the detector with the canonical delta.
func NewADWINDetector(delta float64) *ADWINDetector {
	if delta <= 0 {
		delta = 0.002
	}
	return &ADWINDetector{Delta: delta, win: stats.NewADWIN(delta)}
}

// Name returns "ADWIN".
func (a *ADWINDetector) Name() string { return "ADWIN" }

// Reset clears the window.
func (a *ADWINDetector) Reset() { a.win = stats.NewADWIN(a.Delta) }

// Update consumes one prediction outcome.
func (a *ADWINDetector) Update(o Observation) State {
	v := 0.0
	if !o.Correct() {
		v = 1
	}
	if a.win.Add(v) {
		return Drift
	}
	return None
}
