package detectors

import (
	"fmt"
	"io"

	"rbmim/internal/codec"
	"rbmim/internal/stats"
)

// Checkpoint support for the baseline detectors. Each snapshot is one
// internal/codec frame whose payload carries the detector's parameters and
// mutable statistics; LoadState restores both (parameters are state for the
// baselines — unlike RBM-IM there is no construction-time network shape that
// must match). Like every StatefulDetector, a failed load leaves the
// receiver untouched.

// saveFrame encodes payload via enc and writes one frame of the given kind.
func saveFrame(w io.Writer, kind uint8, enc func(*codec.Buffer)) error {
	b := codec.NewBuffer(nil)
	enc(b)
	return codec.WriteFrame(w, kind, b.Bytes())
}

// loadFrame reads one frame of the given kind and decodes it with dec, which
// must stage into temporaries and only mutate its receiver on full success.
func loadFrame(r io.Reader, kind uint8, dec func(*codec.Reader) error) error {
	k, payload, err := codec.ReadFrame(r)
	if err != nil {
		return err
	}
	if k != kind {
		return fmt.Errorf("%w: frame kind %d, want %d", codec.ErrInvalid, k, kind)
	}
	rd := codec.NewReader(payload)
	if err := dec(rd); err != nil {
		return err
	}
	return rd.Done()
}

// SaveState writes the DDM's parameters and error statistics.
func (d *DDM) SaveState(w io.Writer) error {
	return saveFrame(w, codec.KindDDM, func(b *codec.Buffer) {
		b.Int(d.MinInstances)
		b.F64(d.WarningLevel)
		b.F64(d.DriftLevel)
		b.F64(d.n)
		b.F64(d.errCnt)
		b.F64(d.pMin)
		b.F64(d.sMin)
		b.F64(d.psMin)
	})
}

// LoadState restores state written by SaveState.
func (d *DDM) LoadState(r io.Reader) error {
	return loadFrame(r, codec.KindDDM, func(rd *codec.Reader) error {
		tmp := DDM{
			MinInstances: rd.Int(),
			WarningLevel: rd.F64(),
			DriftLevel:   rd.F64(),
			n:            rd.F64(),
			errCnt:       rd.F64(),
			pMin:         rd.F64(),
			sMin:         rd.F64(),
			psMin:        rd.F64(),
		}
		if rd.Err() != nil {
			return rd.Err()
		}
		if tmp.n < 0 || tmp.errCnt < 0 || tmp.errCnt > tmp.n {
			rd.Fail("ddm counters n=%v errors=%v", tmp.n, tmp.errCnt)
			return rd.Err()
		}
		*d = tmp
		return nil
	})
}

// SaveState writes the EDDM's parameters and error-distance statistics.
func (e *EDDM) SaveState(w io.Writer) error {
	return saveFrame(w, codec.KindEDDM, func(b *codec.Buffer) {
		b.F64(e.WarningThreshold)
		b.F64(e.DriftThreshold)
		b.Int(e.MinErrors)
		b.F64(e.n)
		b.F64(e.lastErrAt)
		b.F64(e.numErrors)
		b.F64(e.meanDist)
		b.F64(e.m2Dist)
		b.F64(e.maxMeanStd)
	})
}

// LoadState restores state written by SaveState.
func (e *EDDM) LoadState(r io.Reader) error {
	return loadFrame(r, codec.KindEDDM, func(rd *codec.Reader) error {
		tmp := EDDM{
			WarningThreshold: rd.F64(),
			DriftThreshold:   rd.F64(),
			MinErrors:        rd.Int(),
			n:                rd.F64(),
			lastErrAt:        rd.F64(),
			numErrors:        rd.F64(),
			meanDist:         rd.F64(),
			m2Dist:           rd.F64(),
			maxMeanStd:       rd.F64(),
		}
		if rd.Err() != nil {
			return rd.Err()
		}
		if tmp.n < 0 || tmp.numErrors < 0 || tmp.lastErrAt > tmp.n {
			rd.Fail("eddm counters n=%v errors=%v lastErrAt=%v", tmp.n, tmp.numErrors, tmp.lastErrAt)
			return rd.Err()
		}
		*e = tmp
		return nil
	})
}

// SaveState writes the ADWIN detector's window state.
func (a *ADWINDetector) SaveState(w io.Writer) error {
	return saveFrame(w, codec.KindADWINDetector, func(b *codec.Buffer) {
		b.F64(a.Delta)
		a.win.EncodeState(b)
	})
}

// LoadState restores state written by SaveState.
func (a *ADWINDetector) LoadState(r io.Reader) error {
	return loadFrame(r, codec.KindADWINDetector, func(rd *codec.Reader) error {
		delta := rd.F64()
		if rd.Err() != nil {
			return rd.Err()
		}
		if delta <= 0 || delta >= 1 {
			rd.Fail("adwin detector delta %v outside (0,1)", delta)
			return rd.Err()
		}
		win := stats.NewADWIN(delta)
		if err := win.DecodeState(rd); err != nil {
			return err
		}
		a.Delta = delta
		a.win = win
		return nil
	})
}

// Interface conformance for the checkpointable baselines.
var (
	_ StatefulDetector = (*DDM)(nil)
	_ StatefulDetector = (*EDDM)(nil)
	_ StatefulDetector = (*ADWINDetector)(nil)
)
