package detectors

import "math"

// PerfSim is the performance-similarity drift detector of Antwi, Viktor &
// Japkowicz (2012) for imbalanced streams. It tracks the entire confusion
// matrix over consecutive evaluation windows and compares them with the
// cosine similarity of their vectorized forms: a similarity dropping below
// 1 - lambda signals drift. Monitoring all matrix components (not just
// accuracy) is what gives it sensitivity to minority-class changes.
type PerfSim struct {
	// Lambda is the differentiation weight (Table II sweeps {0.1..0.4};
	// default 0.2): drift when similarity < 1 - Lambda.
	Lambda float64
	// MinErrors is the minimum number of misclassifications a window must
	// contain before it participates in a comparison (default 30).
	MinErrors int
	// WindowSize is the number of observations per confusion-matrix window
	// (default 500).
	WindowSize int

	classes int
	current []float64 // vectorized confusion matrix being filled
	prev    []float64 // last completed window's matrix
	count   int
	errors  int
	hasPrev bool
}

// NewPerfSim builds the detector for a stream with the given class count
// (zero parameter values select defaults).
func NewPerfSim(classes int, lambda float64, minErrors, windowSize int) *PerfSim {
	if lambda <= 0 {
		lambda = 0.2
	}
	if minErrors <= 0 {
		minErrors = 30
	}
	if windowSize <= 0 {
		windowSize = 500
	}
	p := &PerfSim{Lambda: lambda, MinErrors: minErrors, WindowSize: windowSize, classes: classes}
	p.Reset()
	return p
}

// Name returns "PerfSim".
func (p *PerfSim) Name() string { return "PerfSim" }

// Reset restores the initial state.
func (p *PerfSim) Reset() {
	p.current = make([]float64, p.classes*p.classes)
	p.prev = nil
	p.count, p.errors = 0, 0
	p.hasPrev = false
}

// Update consumes one prediction outcome.
func (p *PerfSim) Update(o Observation) State {
	if o.TrueClass >= 0 && o.TrueClass < p.classes && o.Predicted >= 0 && o.Predicted < p.classes {
		p.current[o.TrueClass*p.classes+o.Predicted]++
	}
	if !o.Correct() {
		p.errors++
	}
	p.count++
	if p.count < p.WindowSize {
		return None
	}
	// Window complete: compare with the previous one.
	state := None
	if p.hasPrev && p.errors >= p.MinErrors {
		sim := cosineSimilarity(p.prev, p.current)
		if sim < 1-p.Lambda {
			state = Drift
		} else if sim < 1-p.Lambda/2 {
			state = Warning
		}
	}
	p.prev = p.current
	p.hasPrev = true
	p.current = make([]float64, p.classes*p.classes)
	p.count, p.errors = 0, 0
	if state == Drift {
		// After drift the old window no longer represents the concept.
		p.hasPrev = false
		p.prev = nil
	}
	return state
}

// cosineSimilarity returns the cosine of the angle between a and b
// (1 when either is a zero vector, meaning "no evidence of change").
func cosineSimilarity(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
