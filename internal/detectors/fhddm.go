package detectors

import "math"

// FHDDM is the Fast Hoeffding Drift Detection Method of Pesaranghader &
// Viktor (2016). It slides a window of size n over the correct-prediction
// indicator, remembers the maximum windowed probability of correctness
// p_max, and signals drift when p_max - p_current exceeds the Hoeffding
// epsilon sqrt(ln(1/delta)/(2n)).
type FHDDM struct {
	// WindowSize is the sliding window length n (default 100; Table II
	// sweeps {25,50,75,100}).
	WindowSize int
	// Delta is the allowed error of the Hoeffding bound (default 1e-6;
	// Table II sweeps {1e-6..1e-3}).
	Delta float64

	win     []bool
	pos     int
	filled  int
	correct int
	pMax    float64
	eps     float64
}

// NewFHDDM builds the detector with the given window and delta (zero values
// select the canonical defaults).
func NewFHDDM(windowSize int, delta float64) *FHDDM {
	if windowSize <= 0 {
		windowSize = 100
	}
	if delta <= 0 {
		delta = 1e-6
	}
	f := &FHDDM{WindowSize: windowSize, Delta: delta}
	f.Reset()
	return f
}

// Name returns "FHDDM".
func (f *FHDDM) Name() string { return "FHDDM" }

// Reset restores the initial state.
func (f *FHDDM) Reset() {
	f.win = make([]bool, f.WindowSize)
	f.pos, f.filled, f.correct = 0, 0, 0
	f.pMax = 0
	f.eps = math.Sqrt(math.Log(1/f.Delta) / (2 * float64(f.WindowSize)))
}

// Update consumes one prediction outcome.
func (f *FHDDM) Update(o Observation) State {
	c := o.Correct()
	if f.filled == f.WindowSize {
		if f.win[f.pos] {
			f.correct--
		}
	} else {
		f.filled++
	}
	f.win[f.pos] = c
	if c {
		f.correct++
	}
	f.pos = (f.pos + 1) % f.WindowSize
	if f.filled < f.WindowSize {
		return None
	}
	p := float64(f.correct) / float64(f.WindowSize)
	if p > f.pMax {
		f.pMax = p
	}
	if f.pMax-p > f.eps {
		f.Reset()
		return Drift
	}
	return None
}
