// Package detectors implements the reference concept drift detectors the
// paper compares against: the standard-stream detectors DDM, EDDM, RDDM,
// ADWIN, HDDM-A, FHDDM and WSTD, and the skew-insensitive detectors PerfSim
// and DDM-OCI. All of them consume the same per-instance Observation and
// expose the same three-state output (none / warning / drift), so the
// evaluation harness can swap them freely — exactly how the paper's MOA
// test bed binds detectors to the shared base classifier.
package detectors

import (
	"fmt"
	"io"
)

// State is a drift detector's output after one observation.
type State int

const (
	// None means the stream looks stationary.
	None State = iota
	// Warning means a change is suspected; learners may start background
	// models.
	Warning
	// Drift means a concept change was detected; learners should adapt.
	Drift
)

// String names the state for logs and tables.
func (s State) String() string {
	switch s {
	case Warning:
		return "warning"
	case Drift:
		return "drift"
	default:
		return "none"
	}
}

// Observation is one prequential outcome handed to a detector: the instance
// (features), the ground-truth label, the classifier's prediction and its
// per-class scores. Statistical detectors use only Correct(); the
// skew-insensitive ones use the label/prediction pair; trainable detectors
// (RBM-IM) additionally consume X.
type Observation struct {
	// X is the feature vector of the instance.
	X []float64
	// TrueClass is the ground-truth label.
	TrueClass int
	// Predicted is the classifier's label.
	Predicted int
	// Scores, when non-nil, holds the classifier's per-class support.
	Scores []float64
}

// Correct reports whether the classifier was right.
func (o Observation) Correct() bool { return o.TrueClass == o.Predicted }

// Detector is a concept drift detector fed one observation at a time.
// Implementations are single-goroutine objects.
type Detector interface {
	// Update consumes one observation and returns the detector state.
	Update(o Observation) State
	// Reset returns the detector to its initial state (typically called
	// after the learner adapts to a detected drift).
	Reset()
	// Name returns the detector's table abbreviation (e.g. "RDDM").
	Name() string
}

// ClassAttributor is implemented by detectors that can attribute a drift to
// specific classes (local drift detection). After Update returns Drift,
// DriftClasses lists the affected labels observed at that step.
type ClassAttributor interface {
	DriftClasses() []int
}

// StatefulDetector is implemented by detectors whose trained state can leave
// memory and come back: SaveState writes one self-describing, versioned,
// CRC-protected snapshot frame (see internal/codec); LoadState restores it
// into a compatibly constructed detector. The contract every implementation
// must honour:
//
//   - save → load → continue is observationally identical to never stopping
//     (for RBM-IM this is bit-identical, RNG position included);
//   - LoadState on corrupt, truncated, or wrong-version input returns an
//     error wrapping codec.ErrInvalid and leaves the receiver completely
//     unchanged — no partial loads, no panics;
//   - both methods are single-goroutine like the rest of the detector.
//
// RBM-IM and the DDM / EDDM / ADWIN baselines implement it, so the monitor
// and the eval pipeline can checkpoint and resume any of them.
type StatefulDetector interface {
	Detector
	// SaveState writes the detector's complete mutable state to w.
	SaveState(w io.Writer) error
	// LoadState restores state previously written by SaveState of the same
	// detector type.
	LoadState(r io.Reader) error
}

// Factory builds a fresh detector instance; used by experiment runners so
// every stream gets an independent detector.
type Factory struct {
	// Name is the detector abbreviation used in tables.
	Name string
	// New constructs a detector for a stream with the given class count.
	New func(classes int) Detector
}

// Validate reports whether the factory is usable.
func (f Factory) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("detectors: factory needs a name")
	}
	if f.New == nil {
		return fmt.Errorf("detectors: factory %q needs a constructor", f.Name)
	}
	return nil
}
