package detectors

import "math"

// RDDM is the Reactive Drift Detection Method of Barros et al. (2017): DDM
// plus mechanisms against desensitization on long stable runs. It keeps the
// prediction outcomes observed since the current warning phase began; on a
// drift detection the DDM statistics are rebuilt from only that warning
// buffer (the recent, possibly drifted regime), and on overlong runs or
// stuck warnings the statistics are recomputed from the most recent
// MinInstances outcomes.
type RDDM struct {
	// WarningLevel and DriftLevel are the s-multipliers (defaults 1.773 and
	// 2.258, the RDDM paper's calibration; Table II sweeps thresholds).
	WarningLevel, DriftLevel float64
	// MinErrors gates testing until this many errors are seen (default 30).
	MinErrors int
	// MinInstances is the number of recent outcomes kept for pruning
	// (default 7000).
	MinInstances int
	// MaxInstances is the run length that triggers pruning (default 40000).
	MaxInstances int
	// WarnLimit prunes after this many consecutive warnings (default 1400).
	WarnLimit int

	ring     []bool
	ringPos  int
	ringFull bool

	warnBuf []bool // outcomes since the current warning phase began

	n      float64
	errCnt float64
	pMin   float64
	sMin   float64
	psMin  float64
	warns  int
}

// NewRDDM builds an RDDM with the original calibration.
func NewRDDM() *RDDM {
	r := &RDDM{
		WarningLevel: 1.773,
		DriftLevel:   2.258,
		MinErrors:    30,
		MinInstances: 7000,
		MaxInstances: 40000,
		WarnLimit:    1400,
	}
	r.Reset()
	return r
}

// Name returns "RDDM".
func (r *RDDM) Name() string { return "RDDM" }

// Reset restores the initial state.
func (r *RDDM) Reset() {
	r.ring = make([]bool, r.MinInstances)
	r.ringPos, r.ringFull = 0, false
	r.warnBuf = nil
	r.resetStats()
}

func (r *RDDM) resetStats() {
	r.n, r.errCnt = 0, 0
	r.pMin, r.sMin, r.psMin = math.Inf(1), math.Inf(1), math.Inf(1)
	r.warns = 0
}

// observe folds one outcome into the DDM statistics and returns the state.
func (r *RDDM) observe(wrong bool) State {
	r.n++
	if wrong {
		r.errCnt++
	}
	p := r.errCnt / r.n
	s := math.Sqrt(p * (1 - p) / r.n)
	if r.errCnt >= float64(r.MinErrors) && p+s < r.psMin {
		r.pMin, r.sMin, r.psMin = p, s, p+s
	}
	if r.errCnt < float64(r.MinErrors) || math.IsInf(r.psMin, 1) {
		return None
	}
	switch {
	case p+s > r.pMin+r.DriftLevel*r.sMin:
		return Drift
	case p+s > r.pMin+r.WarningLevel*r.sMin:
		return Warning
	default:
		return None
	}
}

// Update consumes one prediction outcome.
func (r *RDDM) Update(o Observation) State {
	wrong := !o.Correct()
	r.ring[r.ringPos] = wrong
	r.ringPos = (r.ringPos + 1) % len(r.ring)
	if r.ringPos == 0 {
		r.ringFull = true
	}

	state := r.observe(wrong)
	switch state {
	case Drift:
		// Rebuild the statistics from the warning-period buffer: the new
		// concept's outcomes seed the fresh baseline.
		buf := r.warnBuf
		if len(buf) > r.MinInstances {
			buf = buf[len(buf)-r.MinInstances:]
		}
		r.resetStats()
		for _, w := range buf {
			r.n++
			if w {
				r.errCnt++
			}
		}
		r.warnBuf = nil
		return Drift
	case Warning:
		r.warns++
		r.warnBuf = append(r.warnBuf, wrong)
		if r.warns >= r.WarnLimit {
			r.pruneToRecent()
		}
	default:
		r.warns = 0
		r.warnBuf = nil
	}
	// Reactive pruning against desensitization on very long stable runs.
	if int(r.n) >= r.MaxInstances {
		r.pruneToRecent()
	}
	return state
}

// pruneToRecent recomputes the statistics over the most recent ring
// contents, discarding older history (the RDDM "reactive" mechanism).
func (r *RDDM) pruneToRecent() {
	stored := r.ringPos
	if r.ringFull {
		stored = len(r.ring)
	}
	start := 0
	if r.ringFull {
		start = r.ringPos
	}
	r.resetStats()
	for i := 0; i < stored; i++ {
		r.observe(r.ring[(start+i)%len(r.ring)])
	}
}
