package detectors_test

import (
	"bytes"
	"math/rand"
	"testing"

	"rbmim/internal/detectors"
)

// TestBaselineStateRoundTrip pins save/load equivalence for the stateful
// baselines: a restored detector must make the identical decisions as the
// original on a shared suffix.
func TestBaselineStateRoundTrip(t *testing.T) {
	builders := map[string]func() detectors.StatefulDetector{
		"DDM":   func() detectors.StatefulDetector { return detectors.NewDDM() },
		"EDDM":  func() detectors.StatefulDetector { return detectors.NewEDDM() },
		"ADWIN": func() detectors.StatefulDetector { return detectors.NewADWINDetector(0.002) },
	}
	for name, build := range builders {
		rng := rand.New(rand.NewSource(3))
		orig := build()
		obs := func(i int) detectors.Observation {
			p := 0.1
			if i > 800 {
				p = 0.45 // error-rate jump drives warnings/drifts
			}
			correct := rng.Float64() >= p
			o := detectors.Observation{TrueClass: 1}
			if correct {
				o.Predicted = 1
			}
			return o
		}
		for i := 0; i < 700; i++ {
			orig.Update(obs(i))
		}
		var buf bytes.Buffer
		if err := orig.SaveState(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		restored := build()
		if err := restored.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 700; i < 1600; i++ {
			o := obs(i)
			if s1, s2 := orig.Update(o), restored.Update(o); s1 != s2 {
				t.Fatalf("%s: step %d diverged: %v vs %v", name, i, s1, s2)
			}
		}
		// Cross-type loads must be rejected (kind mismatch).
		var ddmBuf bytes.Buffer
		if err := detectors.NewDDM().SaveState(&ddmBuf); err != nil {
			t.Fatal(err)
		}
		if name != "DDM" {
			if err := restored.LoadState(bytes.NewReader(ddmBuf.Bytes())); err == nil {
				t.Fatalf("%s accepted a DDM snapshot", name)
			}
		}
	}
}
