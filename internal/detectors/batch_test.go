package detectors

import (
	"math/rand"
	"testing"
)

// batchObs draws a deterministic prequential outcome sequence whose error
// rate jumps halfway, so detectors traverse warning and drift states during
// the comparison (not just None).
func batchObs(n int, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	obs := make([]Observation, n)
	for i := range obs {
		rate := 0.1
		if i >= n/2 {
			rate = 0.6
		}
		pred := 0
		if rng.Float64() < rate {
			pred = 1
		}
		obs[i] = Observation{TrueClass: 0, Predicted: pred}
	}
	return obs
}

func TestUpdateBatchAdapterMatchesSequential(t *testing.T) {
	const n = 12000
	obs := batchObs(n, 11)
	for _, chunk := range []int{1, 7, 64, 256} {
		seq := allDetectors()
		bat := allDetectors()
		for di := range seq {
			want := make([]State, n)
			for i := range obs {
				want[i] = seq[di].Update(obs[i])
			}
			got := make([]State, n)
			for start := 0; start < n; start += chunk {
				end := start + chunk
				if end > n {
					end = n
				}
				UpdateBatch(bat[di], obs[start:end], got[start:end])
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s chunk=%d: state[%d] = %v via UpdateBatch, %v sequentially",
						seq[di].Name(), chunk, i, got[i], want[i])
				}
			}
		}
	}
}

func TestUpdateBatchEmptyIsNoop(t *testing.T) {
	d := NewDDM()
	UpdateBatch(d, nil, nil)
	if got := d.Update(Observation{TrueClass: 0, Predicted: 0}); got != None {
		t.Fatalf("state after empty batch = %v, want None", got)
	}
}
