package detectors

import "math"

// HDDMA is the A-test variant of the Hoeffding-bound drift detection methods
// of Frias-Blanco et al. (2015). It compares the running mean of the error
// indicator over the full history against the minimum running mean seen,
// declaring a warning/drift when the difference exceeds the Hoeffding bound
// at the respective confidence.
type HDDMA struct {
	// DriftConfidence and WarningConfidence are the bound deltas
	// (defaults 0.001 and 0.005).
	DriftConfidence, WarningConfidence float64

	total float64
	sum   float64
	// Minimum envelope: the smallest bound-corrected mean and its count.
	cutSum   float64
	cutCount float64
}

// NewHDDMA builds the detector with the canonical confidences.
func NewHDDMA() *HDDMA {
	h := &HDDMA{DriftConfidence: 0.001, WarningConfidence: 0.005}
	h.Reset()
	return h
}

// Name returns "HDDM-A".
func (h *HDDMA) Name() string { return "HDDM-A" }

// Reset restores the initial state.
func (h *HDDMA) Reset() {
	h.total, h.sum = 0, 0
	h.cutSum, h.cutCount = 0, 0
}

func hoeffdingEps(delta, n float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(math.Log(1/delta) / (2 * n))
}

// Update consumes one prediction outcome.
func (h *HDDMA) Update(o Observation) State {
	x := 0.0
	if !o.Correct() {
		x = 1
	}
	h.total++
	h.sum += x

	mean := h.sum / h.total
	epsNow := hoeffdingEps(h.WarningConfidence, h.total)
	// Track the cut point minimizing the corrected mean.
	if h.cutCount == 0 || mean+epsNow < h.cutSum/h.cutCount+hoeffdingEps(h.WarningConfidence, h.cutCount) {
		h.cutSum, h.cutCount = h.sum, h.total
	}
	if h.cutCount >= h.total {
		return None
	}
	// Test the region after the cut against the region before it.
	nAfter := h.total - h.cutCount
	meanBefore := h.cutSum / h.cutCount
	meanAfter := (h.sum - h.cutSum) / nAfter
	if meanAfter <= meanBefore {
		return None
	}
	invN := 1/h.cutCount + 1/nAfter
	diff := meanAfter - meanBefore
	if diff > math.Sqrt(invN/2*math.Log(1/h.DriftConfidence)) {
		h.Reset()
		return Drift
	}
	if diff > math.Sqrt(invN/2*math.Log(1/h.WarningConfidence)) {
		return Warning
	}
	return None
}
