package detectors

import "rbmim/internal/stats"

// WSTD is the Wilcoxon Rank Sum Test Drift detector of de Barros et al.
// (2018). It keeps a sliding window of the correct-prediction indicator
// split into an "older" and a "recent" sub-window (the older one capped at
// MaxOldInstances) and runs the Wilcoxon rank-sum test between them; a
// p-value below the drift (warning) significance signals drift (warning).
type WSTD struct {
	// WindowSize is the recent sub-window length (Table II sweeps
	// {25,50,75,100}; default 75).
	WindowSize int
	// WarningSig and DriftSig are the test significances (defaults 0.05 and
	// 0.003).
	WarningSig, DriftSig float64
	// MaxOldInstances caps the older sub-window (default 2000).
	MaxOldInstances int

	old    []float64
	recent []float64
}

// NewWSTD builds the detector (zero values select defaults).
func NewWSTD(windowSize int, warningSig, driftSig float64, maxOld int) *WSTD {
	if windowSize <= 0 {
		windowSize = 75
	}
	if warningSig <= 0 {
		warningSig = 0.05
	}
	if driftSig <= 0 {
		driftSig = 0.003
	}
	if maxOld <= 0 {
		maxOld = 2000
	}
	w := &WSTD{WindowSize: windowSize, WarningSig: warningSig, DriftSig: driftSig, MaxOldInstances: maxOld}
	w.Reset()
	return w
}

// Name returns "WSTD".
func (w *WSTD) Name() string { return "WSTD" }

// Reset restores the initial state.
func (w *WSTD) Reset() {
	w.old = w.old[:0]
	w.recent = w.recent[:0]
}

// Update consumes one prediction outcome.
func (w *WSTD) Update(o Observation) State {
	v := 0.0
	if o.Correct() {
		v = 1
	}
	w.recent = append(w.recent, v)
	if len(w.recent) > w.WindowSize {
		// Move the oldest recent observation into the older sub-window.
		w.old = append(w.old, w.recent[0])
		w.recent = w.recent[1:]
		if len(w.old) > w.MaxOldInstances {
			w.old = w.old[len(w.old)-w.MaxOldInstances:]
		}
	}
	if len(w.recent) < w.WindowSize || len(w.old) < w.WindowSize {
		return None
	}
	_, p := stats.WilcoxonRankSum(w.old, w.recent)
	switch {
	case p < w.DriftSig:
		w.Reset()
		return Drift
	case p < w.WarningSig:
		return Warning
	default:
		return None
	}
}
