package detectors

import (
	"math/rand"
	"testing"
)

// feed drives a detector with a Bernoulli error stream: errRate errors on
// average, switching to errRate2 after switchAt observations. It returns the
// observation indices of drift signals.
func feed(d Detector, n int, errRate, errRate2 float64, switchAt int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	var drifts []int
	for i := 0; i < n; i++ {
		rate := errRate
		if i >= switchAt {
			rate = errRate2
		}
		pred := 0
		if rng.Float64() < rate {
			pred = 1 // wrong prediction
		}
		if d.Update(Observation{TrueClass: 0, Predicted: pred}) == Drift {
			drifts = append(drifts, i)
		}
	}
	return drifts
}

// allDetectors builds every baseline detector for a 4-class stream.
func allDetectors() []Detector {
	return []Detector{
		NewDDM(),
		NewEDDM(),
		NewRDDM(),
		NewADWINDetector(0.002),
		NewHDDMA(),
		NewFHDDM(100, 1e-4),
		NewWSTD(75, 0.05, 0.005, 2000),
		NewPerfSim(4, 0.2, 30, 500),
		NewDDMOCI(4, 0.9, 30),
	}
}

func TestDetectorNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range allDetectors() {
		if d.Name() == "" {
			t.Fatal("empty detector name")
		}
		if seen[d.Name()] {
			t.Fatalf("duplicate detector name %q", d.Name())
		}
		seen[d.Name()] = true
	}
}

func TestDetectorsStableStreamFewAlarms(t *testing.T) {
	// DDM-OCI re-arms its per-class envelope after every alarm, which makes
	// it the chattiest of the set on long noisy streams.
	allowance := map[string]int{"DDM-OCI": 20}
	for _, d := range allDetectors() {
		drifts := feed(d, 20000, 0.2, 0.2, 20000, 7)
		limit := 12
		if a, ok := allowance[d.Name()]; ok {
			limit = a
		}
		if len(drifts) > limit {
			t.Errorf("%s: %d alarms on a stable stream", d.Name(), len(drifts))
		}
	}
}

func TestErrorRateDetectorsCatchErrorJump(t *testing.T) {
	// Error rate jumps 0.1 -> 0.6 at 10000. Every error-rate based detector
	// must notice within 3000 observations.
	for _, d := range []Detector{
		NewDDM(), NewRDDM(), NewADWINDetector(0.002), NewHDDMA(),
		NewFHDDM(100, 1e-4), NewWSTD(75, 0.05, 0.005, 2000),
	} {
		drifts := feed(d, 15000, 0.1, 0.6, 10000, 11)
		found := false
		for _, at := range drifts {
			if at >= 10000 && at <= 13000 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: error jump not detected (signals: %v)", d.Name(), drifts)
		}
	}
}

func TestEDDMCatchesGradualDegradation(t *testing.T) {
	d := NewEDDM()
	rng := rand.New(rand.NewSource(3))
	var drifts []int
	for i := 0; i < 30000; i++ {
		rate := 0.05
		if i >= 10000 {
			// Gradually rising error rate.
			rate = 0.05 + 0.5*float64(i-10000)/20000
		}
		pred := 0
		if rng.Float64() < rate {
			pred = 1
		}
		if d.Update(Observation{TrueClass: 0, Predicted: pred}) == Drift {
			drifts = append(drifts, i)
		}
	}
	found := false
	for _, at := range drifts {
		if at >= 10000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("EDDM missed gradual degradation, signals: %v", drifts)
	}
}

func TestDDMWarningPrecedesDrift(t *testing.T) {
	d := NewDDM()
	rng := rand.New(rand.NewSource(5))
	sawWarning := false
	for i := 0; i < 12000; i++ {
		rate := 0.1
		if i >= 8000 {
			rate = 0.45
		}
		pred := 0
		if rng.Float64() < rate {
			pred = 1
		}
		state := d.Update(Observation{TrueClass: 0, Predicted: pred})
		if state == Warning {
			sawWarning = true
		}
		if state == Drift {
			if !sawWarning {
				t.Fatal("drift without any preceding warning")
			}
			return
		}
	}
	t.Fatal("no drift detected")
}

func TestResetRestoresInitialBehavior(t *testing.T) {
	// EDDM and DDM-OCI are known to alarm more often on short noisy
	// stretches (their envelope statistics re-arm quickly); allow them more
	// slack than the error-rate detectors.
	allowance := map[string]int{"EDDM": 8, "DDM-OCI": 8}
	for _, d := range allDetectors() {
		// Drive into a drift, reset, then a stable stream must not alarm
		// immediately.
		feed(d, 12000, 0.1, 0.7, 8000, 13)
		d.Reset()
		drifts := feed(d, 3000, 0.1, 0.1, 3000, 17)
		limit := 2
		if a, ok := allowance[d.Name()]; ok {
			limit = a
		}
		if len(drifts) > limit {
			t.Errorf("%s: %d alarms right after reset on stable data", d.Name(), len(drifts))
		}
	}
}

func TestDDMOCIDetectsMinorityRecallDrop(t *testing.T) {
	d := NewDDMOCI(3, 0.95, 10)
	rng := rand.New(rand.NewSource(19))
	var drifts []int
	driftedClassSeen := false
	for i := 0; i < 40000; i++ {
		// Class 2 is a 2% minority; its recall collapses at i=20000 while
		// the majority classes stay accurate.
		y := 0
		if rng.Float64() < 0.5 {
			y = 1
		}
		if rng.Float64() < 0.02 {
			y = 2
		}
		pred := y
		if y == 2 && i >= 20000 {
			pred = 0 // minority misclassified after its local drift
		} else if rng.Float64() < 0.05 {
			pred = (y + 1) % 3
		}
		if d.Update(Observation{TrueClass: y, Predicted: pred}) == Drift {
			drifts = append(drifts, i)
			if i >= 20000 {
				for _, c := range d.DriftClasses() {
					if c == 2 {
						driftedClassSeen = true
					}
				}
			}
		}
	}
	if !driftedClassSeen {
		t.Fatalf("DDM-OCI missed the minority recall collapse, signals: %v", drifts)
	}
}

func TestPerfSimDetectsConfusionShift(t *testing.T) {
	d := NewPerfSim(3, 0.2, 10, 200)
	rng := rand.New(rand.NewSource(23))
	var drifts []int
	for i := 0; i < 20000; i++ {
		y := rng.Intn(3)
		pred := y
		if i >= 10000 {
			// The confusion structure changes completely: class 0 now
			// predicted as class 1.
			if y == 0 {
				pred = 1
			}
		} else if rng.Float64() < 0.05 {
			pred = (y + 1) % 3
		}
		if d.Update(Observation{TrueClass: y, Predicted: pred}) == Drift {
			drifts = append(drifts, i)
		}
	}
	found := false
	for _, at := range drifts {
		if at >= 10000 && at <= 12000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("PerfSim missed the confusion shift, signals: %v", drifts)
	}
}

func TestFHDDMWindowTooSmallStillWorks(t *testing.T) {
	d := NewFHDDM(25, 1e-3)
	drifts := feed(d, 8000, 0.05, 0.8, 5000, 29)
	found := false
	for _, at := range drifts {
		if at >= 5000 {
			found = true
		}
	}
	if !found {
		t.Fatal("FHDDM with small window missed a huge jump")
	}
}

func TestObservationCorrect(t *testing.T) {
	if !(Observation{TrueClass: 2, Predicted: 2}).Correct() {
		t.Fatal("matching classes should be correct")
	}
	if (Observation{TrueClass: 2, Predicted: 1}).Correct() {
		t.Fatal("mismatched classes should be incorrect")
	}
}

func TestStateString(t *testing.T) {
	if None.String() != "none" || Warning.String() != "warning" || Drift.String() != "drift" {
		t.Fatal("state names wrong")
	}
}

func TestFactoryValidate(t *testing.T) {
	if err := (Factory{}).Validate(); err == nil {
		t.Fatal("empty factory should fail")
	}
	if err := (Factory{Name: "X"}).Validate(); err == nil {
		t.Fatal("factory without constructor should fail")
	}
	ok := Factory{Name: "DDM", New: func(int) Detector { return NewDDM() }}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := []float64{1, 0, 0}
	if got := cosineSimilarity(a, a); got != 1 {
		t.Fatalf("self similarity = %v", got)
	}
	b := []float64{0, 1, 0}
	if got := cosineSimilarity(a, b); got != 0 {
		t.Fatalf("orthogonal similarity = %v", got)
	}
	zero := []float64{0, 0, 0}
	if got := cosineSimilarity(a, zero); got != 1 {
		t.Fatalf("zero vector should yield neutral 1, got %v", got)
	}
}
