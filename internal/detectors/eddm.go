package detectors

import "math"

// EDDM is the Early Drift Detection Method of Baena-Garcia et al. (2006).
// Instead of the raw error rate it tracks the distance (in instances)
// between consecutive errors: under a stable concept that distance grows,
// so a shrinking ratio against the best distance seen signals change. It is
// more reactive to gradual drift than DDM, at some cost on sudden drifts.
type EDDM struct {
	// WarningThreshold and DriftThreshold are the canonical 0.95 / 0.90
	// ratios.
	WarningThreshold, DriftThreshold float64
	// MinErrors is the number of errors before testing (default 30).
	MinErrors int

	n          float64
	lastErrAt  float64
	numErrors  float64
	meanDist   float64
	m2Dist     float64 // Welford accumulator
	maxMeanStd float64 // max of mean + 2*std
}

// NewEDDM builds an EDDM with the canonical thresholds.
func NewEDDM() *EDDM {
	e := &EDDM{WarningThreshold: 0.95, DriftThreshold: 0.90, MinErrors: 30}
	e.Reset()
	return e
}

// Name returns "EDDM".
func (e *EDDM) Name() string { return "EDDM" }

// Reset restores the initial state.
func (e *EDDM) Reset() {
	e.n, e.lastErrAt, e.numErrors = 0, 0, 0
	e.meanDist, e.m2Dist, e.maxMeanStd = 0, 0, 0
}

// Update consumes one prediction outcome.
func (e *EDDM) Update(o Observation) State {
	e.n++
	if o.Correct() {
		return None
	}
	dist := e.n - e.lastErrAt
	e.lastErrAt = e.n
	e.numErrors++
	// Welford update of the error-distance distribution.
	delta := dist - e.meanDist
	e.meanDist += delta / e.numErrors
	e.m2Dist += delta * (dist - e.meanDist)
	if e.numErrors < float64(e.MinErrors) {
		return None
	}
	std := math.Sqrt(e.m2Dist / e.numErrors)
	cur := e.meanDist + 2*std
	if cur > e.maxMeanStd {
		e.maxMeanStd = cur
		return None
	}
	ratio := cur / e.maxMeanStd
	switch {
	case ratio < e.DriftThreshold:
		e.Reset()
		return Drift
	case ratio < e.WarningThreshold:
		return Warning
	default:
		return None
	}
}
