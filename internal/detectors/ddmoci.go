package detectors

import "math"

// DDMOCI is the Drift Detection Method for Online Class Imbalance (Wang et
// al.), the per-class-recall detector the paper uses as its second
// skew-insensitive reference. For every class it maintains a time-decayed
// recall R_k; a DDM-style test on each recall (tracking the maximum of
// R_k - s_k and alarming when the current value degrades past the
// warning/drift levels) signals drift, so changes confined to minority
// classes are visible as soon as their recall moves. Because the alarm is
// per class, DDMOCI can attribute drifts to classes (ClassAttributor).
type DDMOCI struct {
	// Decay is the time-decay factor of the per-class recall estimate
	// (default 0.99).
	Decay float64
	// WarningLevel and DriftLevel are the s-multipliers (defaults 2, 3,
	// mirrored from DDM; Table II sweeps thresholds around these).
	WarningLevel, DriftLevel float64
	// MinErrors gates testing until this many errors were seen overall
	// (default 30).
	MinErrors int

	classes int
	recall  []float64 // decayed recall per class
	nSeen   []float64 // decayed count per class
	seen    []int     // raw arrival count per class (gates testing)
	rMax    []float64 // max of recall
	sMax    []float64 // s at the max
	errors  int
	drifted []int
}

// NewDDMOCI builds the detector for the given class count (zero values
// select defaults).
func NewDDMOCI(classes int, decay float64, minErrors int) *DDMOCI {
	if decay <= 0 || decay >= 1 {
		decay = 0.99
	}
	if minErrors <= 0 {
		minErrors = 30
	}
	d := &DDMOCI{
		Decay:        decay,
		WarningLevel: 2,
		DriftLevel:   3,
		MinErrors:    minErrors,
		classes:      classes,
	}
	d.Reset()
	return d
}

// Name returns "DDM-OCI".
func (d *DDMOCI) Name() string { return "DDM-OCI" }

// Reset restores the initial state.
func (d *DDMOCI) Reset() {
	d.recall = make([]float64, d.classes)
	d.nSeen = make([]float64, d.classes)
	d.seen = make([]int, d.classes)
	d.rMax = make([]float64, d.classes)
	d.sMax = make([]float64, d.classes)
	d.errors = 0
	d.drifted = nil
}

// DriftClasses lists the classes whose recall triggered the last drift.
func (d *DDMOCI) DriftClasses() []int { return d.drifted }

// Update consumes one prediction outcome.
func (d *DDMOCI) Update(o Observation) State {
	k := o.TrueClass
	if k < 0 || k >= d.classes {
		return None
	}
	hit := 0.0
	if o.Correct() {
		hit = 1
	} else {
		d.errors++
	}
	// Time-decayed recall update (Wang et al.'s formulation): a decayed
	// running average of the per-class hit indicator.
	d.nSeen[k] = d.Decay*d.nSeen[k] + 1
	d.recall[k] = d.recall[k] + (hit-d.recall[k])/d.nSeen[k]
	d.seen[k]++

	if d.errors < d.MinErrors || d.seen[k] < 30 {
		return None
	}
	r := d.recall[k]
	s := math.Sqrt(r * (1 - r) / d.nSeen[k])
	if r-s > d.rMax[k]-d.sMax[k] {
		d.rMax[k], d.sMax[k] = r, s
	}
	// The drop is normalized by the combined deviation of the envelope and
	// the current estimate; normalizing by sMax alone makes the detector
	// fire on routine fluctuations whenever the envelope was captured at a
	// low-variance moment.
	drop := (d.rMax[k] - r) / maxf(math.Sqrt(d.sMax[k]*d.sMax[k]+s*s), 1e-9)
	switch {
	case drop > d.DriftLevel:
		d.drifted = []int{k}
		// Reset only the triggering class's envelope so other classes keep
		// their statistics (per-class monitoring).
		d.rMax[k], d.sMax[k] = r, s
		d.nSeen[k] = 1
		d.seen[k] = 0
		d.recall[k] = hit
		return Drift
	case drop > d.WarningLevel:
		return Warning
	default:
		return None
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
