package stats

import (
	"math/rand"
	"testing"
)

func TestADWINStationaryKeepsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewADWIN(0.002)
	detections := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if a.Add(rng.NormFloat64()*0.1 + 0.5) {
			detections++
		}
	}
	if detections > 4 {
		t.Fatalf("stationary stream caused %d detections", detections)
	}
	if a.Width() < n/4 {
		t.Fatalf("window collapsed on stationary data: width=%d", a.Width())
	}
}

func TestADWINDetectsMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewADWIN(0.002)
	for i := 0; i < 3000; i++ {
		a.Add(rng.NormFloat64()*0.1 + 0.2)
	}
	widthBefore := a.Width()
	detected := false
	for i := 0; i < 3000; i++ {
		if a.Add(rng.NormFloat64()*0.1 + 0.8) {
			detected = true
		}
	}
	if !detected {
		t.Fatal("mean shift not detected")
	}
	if a.Width() >= widthBefore+3000 {
		t.Fatalf("window did not shrink: %d -> %d", widthBefore, a.Width())
	}
}

func TestADWINMeanTracksRecentData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewADWIN(0.002)
	for i := 0; i < 2000; i++ {
		a.Add(rng.NormFloat64()*0.05 + 0.1)
	}
	for i := 0; i < 4000; i++ {
		a.Add(rng.NormFloat64()*0.05 + 0.9)
	}
	if m := a.Mean(); m < 0.7 {
		t.Fatalf("mean %v should track the new level ~0.9", m)
	}
}

func TestADWINWidthCountsInsertions(t *testing.T) {
	a := NewADWIN(0.002)
	for i := 0; i < 100; i++ {
		a.Add(0.5)
	}
	if a.Width() != 100 {
		t.Fatalf("width = %d, want 100", a.Width())
	}
}

func TestADWINReset(t *testing.T) {
	a := NewADWIN(0.002)
	for i := 0; i < 500; i++ {
		a.Add(1)
	}
	a.Reset()
	if a.Width() != 0 || a.Mean() != 0 {
		t.Fatal("reset should clear the window")
	}
}

func TestADWINInvalidDeltaDefaults(t *testing.T) {
	a := NewADWIN(-1)
	if a.delta != 0.002 {
		t.Fatalf("invalid delta should default to 0.002, got %v", a.delta)
	}
}
