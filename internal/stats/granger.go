package stats

import (
	"errors"
	"math"
)

// GrangerResult holds the outcome of a Granger causality test.
type GrangerResult struct {
	// F is the F-statistic of the restriction test.
	F float64
	// PValue is the upper-tail probability under H0 ("x does not
	// Granger-cause y"). Small values mean x helps forecast y.
	PValue float64
	// Lags is the lag order p used.
	Lags int
	// Obs is the number of usable regression rows.
	Obs int
	// Causal reports whether H0 was rejected at the supplied significance
	// level, i.e. whether a Granger-causal relationship was found.
	Causal bool
}

// ErrGrangerInsufficient is returned when the series are too short for the
// requested lag order.
var ErrGrangerInsufficient = errors.New("stats: series too short for Granger test")

// GrangerCausality tests whether x Granger-causes y at the given lag order
// and significance level. Following the paper's citation of first-difference
// Granger testing for non-stationary processes, both series are first
// differenced before the lagged regressions are fit.
//
// The restricted model regresses dy_t on its own p lags; the unrestricted
// model adds p lags of dx. The F statistic
//
//	F = ((RSS_r - RSS_u)/p) / (RSS_u/(n - 2p - 1))
//
// is compared against the F(p, n-2p-1) distribution.
func GrangerCausality(x, y []float64, lags int, alpha float64) (GrangerResult, error) {
	if lags < 1 {
		lags = 1
	}
	if len(x) != len(y) {
		return GrangerResult{}, errors.New("stats: Granger series length mismatch")
	}
	dx := Diff(x)
	dy := Diff(y)
	n := len(dy) - lags
	minRows := 2*lags + 2
	if n < minRows {
		return GrangerResult{}, ErrGrangerInsufficient
	}
	// Build the regression rows.
	rows := n
	// Restricted: intercept + p lags of dy.
	xr := make([][]float64, rows)
	// Unrestricted: intercept + p lags of dy + p lags of dx.
	xu := make([][]float64, rows)
	target := make([]float64, rows)
	for t := 0; t < rows; t++ {
		ti := t + lags
		target[t] = dy[ti]
		r := make([]float64, 1+lags)
		u := make([]float64, 1+2*lags)
		r[0], u[0] = 1, 1
		for l := 1; l <= lags; l++ {
			r[l] = dy[ti-l]
			u[l] = dy[ti-l]
			u[lags+l] = dx[ti-l]
		}
		xr[t] = r
		xu[t] = u
	}
	rssR, okR := regressRSS(xr, target)
	rssU, okU := regressRSS(xu, target)
	if !okR || !okU {
		return GrangerResult{}, errors.New("stats: Granger design matrix is singular")
	}
	dfDen := float64(rows - 2*lags - 1)
	if dfDen <= 0 {
		return GrangerResult{}, ErrGrangerInsufficient
	}
	var f float64
	if rssU <= 1e-300 {
		// Perfect unrestricted fit: treat as infinitely strong causality
		// when it improves on the restricted model, neutral otherwise.
		if rssR > 1e-300 {
			f = math.Inf(1)
		} else {
			f = 0
		}
	} else {
		f = ((rssR - rssU) / float64(lags)) / (rssU / dfDen)
	}
	if f < 0 {
		f = 0
	}
	var p float64
	if math.IsInf(f, 1) {
		p = 0
	} else {
		p = FSurvival(f, float64(lags), dfDen)
	}
	return GrangerResult{
		F:      f,
		PValue: p,
		Lags:   lags,
		Obs:    rows,
		Causal: p < alpha,
	}, nil
}

// Diff returns the first differences of s (length len(s)-1).
func Diff(s []float64) []float64 {
	if len(s) < 2 {
		return nil
	}
	d := make([]float64, len(s)-1)
	for i := 1; i < len(s); i++ {
		d[i-1] = s[i] - s[i-1]
	}
	return d
}

// regressRSS solves the least-squares problem min ||Xb - y||^2 via the
// normal equations with a tiny ridge for numerical safety, returning the
// residual sum of squares. ok is false when the system is unsolvable.
func regressRSS(x [][]float64, y []float64) (rss float64, ok bool) {
	if len(x) == 0 {
		return 0, false
	}
	k := len(x[0])
	// Normal equations: (X'X) b = X'y.
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	for r := range x {
		for i := 0; i < k; i++ {
			xi := x[r][i]
			xty[i] += xi * y[r]
			for j := i; j < k; j++ {
				xtx[i][j] += xi * x[r][j]
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += 1e-10 // ridge jitter keeps near-singular systems solvable
	}
	b, solved := SolveLinear(xtx, xty)
	if !solved {
		return 0, false
	}
	for r := range x {
		pred := 0.0
		for i := 0; i < k; i++ {
			pred += x[r][i] * b[i]
		}
		d := y[r] - pred
		rss += d * d
	}
	return rss, true
}

// SolveLinear solves A b = y by Gaussian elimination with partial pivoting.
// A is modified in place. ok is false for singular systems.
func SolveLinear(a [][]float64, y []float64) (b []float64, ok bool) {
	n := len(a)
	if n == 0 || len(y) != n {
		return nil, false
	}
	// Augment.
	rhs := make([]float64, n)
	copy(rhs, y)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	b = make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := rhs[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * b[c]
		}
		b[r] = sum / a[r][r]
	}
	return b, true
}
