package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestGrangerDetectsCausalLink(t *testing.T) {
	// y_t = 0.9 * x_{t-1} + small noise: x strongly Granger-causes y.
	rng := rand.New(rand.NewSource(5))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = 0.5*x[i-1] + rng.NormFloat64()
		y[i] = 0.9*x[i-1] + 0.05*rng.NormFloat64()
	}
	res, err := GrangerCausality(x, y, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Causal {
		t.Fatalf("expected causality, p=%v F=%v", res.PValue, res.F)
	}
}

func TestGrangerIndependentNoiseNotCausal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rejected := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		n := 120
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		res, err := GrangerCausality(x, y, 1, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.Causal {
			rejected++
		}
	}
	// At alpha = 0.05, roughly 5% of independent trials find "causality";
	// allow generous slack.
	if rejected > trials/4 {
		t.Fatalf("independent noise flagged causal in %d/%d trials", rejected, trials)
	}
}

func TestGrangerInsufficientData(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{1, 2, 3}
	if _, err := GrangerCausality(x, y, 1, 0.05); err == nil {
		t.Fatal("expected ErrGrangerInsufficient for tiny series")
	}
}

func TestGrangerLengthMismatch(t *testing.T) {
	if _, err := GrangerCausality(make([]float64, 30), make([]float64, 29), 1, 0.05); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestGrangerHigherLagOrder(t *testing.T) {
	// y depends on x at lag 2 only; a lag-2 test should find it.
	rng := rand.New(rand.NewSource(11))
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 2; i < n; i++ {
		x[i] = rng.NormFloat64()
		y[i] = 0.8*x[i-2] + 0.1*rng.NormFloat64()
	}
	res, err := GrangerCausality(x, y, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Causal {
		t.Fatalf("lag-2 dependence not found, p=%v", res.PValue)
	}
}

func TestDiff(t *testing.T) {
	d := Diff([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	if len(d) != 3 {
		t.Fatalf("diff length %d", len(d))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("diff = %v, want %v", d, want)
		}
	}
	if Diff([]float64{1}) != nil {
		t.Error("single-element diff should be nil")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	y := []float64{5, 10}
	b, ok := SolveLinear(a, y)
	if !ok {
		t.Fatal("solver failed")
	}
	// Solution: x = 1, y = 3.
	approx(t, b[0], 1, 1e-9, "b0")
	approx(t, b[1], 3, 1e-9, "b1")
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, ok := SolveLinear(a, []float64{1, 2}); ok {
		t.Fatal("singular system should fail")
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Zero on the first diagonal position requires pivoting.
	a := [][]float64{{0, 1}, {1, 0}}
	b, ok := SolveLinear(a, []float64{2, 3})
	if !ok {
		t.Fatal("pivoting solver failed")
	}
	approx(t, b[0], 3, 1e-12, "pivot b0")
	approx(t, b[1], 2, 1e-12, "pivot b1")
}

func TestGrangerPValueRange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 60
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 1; i < n; i++ {
			x[i] = rng.NormFloat64()
			y[i] = 0.3*y[i-1] + rng.NormFloat64()
		}
		res, err := GrangerCausality(x, y, 1, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 0 || res.PValue > 1 || math.IsNaN(res.PValue) {
			t.Fatalf("p-value out of range: %v", res.PValue)
		}
		if res.F < 0 {
			t.Fatalf("negative F: %v", res.F)
		}
	}
}
