package stats

import "math"

// OLS fits y = alpha + beta*x by ordinary least squares and returns the
// intercept, slope, and residual sum of squares. Inputs must have equal,
// nonzero length; with fewer than two points the slope is zero.
func OLS(x, y []float64) (alpha, beta, rss float64) {
	n := float64(len(x))
	if len(x) != len(y) || len(x) == 0 {
		return 0, 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		alpha = sy / n
	} else {
		beta = (n*sxy - sx*sy) / den
		alpha = (sy - beta*sx) / n
	}
	for i := range x {
		r := y[i] - alpha - beta*x[i]
		rss += r * r
	}
	return alpha, beta, rss
}

// SlidingTrend maintains the slope of a simple linear regression of a value
// series against time over a sliding window of at most W points, using the
// incremental sums of Eq. 29-37 of the paper: TR_t, T_t, R_t, T2_t are
// updated in O(1) per observation, with the t > W case subtracting the
// contribution of the observation leaving the window (Eq. 33-36).
type SlidingTrend struct {
	w    int
	t    int
	tr   float64 // sum of t*R over the window (TR_t)
	st   float64 // sum of t over the window (T_t)
	sr   float64 // sum of R over the window (R_t)
	st2  float64 // sum of t^2 over the window (T2_t)
	hist []float64
	head int
	full bool
}

// NewSlidingTrend creates a trend tracker with window capacity w (>= 2).
func NewSlidingTrend(w int) *SlidingTrend {
	if w < 2 {
		w = 2
	}
	return &SlidingTrend{w: w, hist: make([]float64, w)}
}

// SetWindow resizes the window capacity. Shrinking drops the oldest
// observations; growing keeps history and simply allows more. Used by the
// self-adaptive window mechanism.
func (s *SlidingTrend) SetWindow(w int) {
	if w < 2 {
		w = 2
	}
	if w == s.w {
		return
	}
	// Rebuild from retained history (cheap: windows are small).
	vals := s.Values()
	if len(vals) > w {
		vals = vals[len(vals)-w:]
	}
	ns := NewSlidingTrend(w)
	// Preserve the absolute clock so trends remain comparable.
	startT := s.t - len(vals)
	ns.t = startT
	for _, v := range vals {
		ns.Add(v)
	}
	*s = *ns
}

// Add appends the next observation R(M_t) at the next time index.
func (s *SlidingTrend) Add(r float64) {
	s.t++
	t := float64(s.t)
	if s.Count() == s.w {
		// Evict the oldest observation (time t-W) per Eq. 33-36.
		old := s.hist[s.head]
		tOld := float64(s.t - s.w)
		s.tr -= tOld * old
		s.st -= tOld
		s.sr -= old
		s.st2 -= tOld * tOld
	}
	s.hist[s.head] = r
	s.head = (s.head + 1) % s.w
	if s.head == 0 {
		s.full = true
	}
	s.tr += t * r
	s.st += t
	s.sr += r
	s.st2 += t * t
}

// Count returns how many observations the window currently holds (Eq. 37).
func (s *SlidingTrend) Count() int {
	if s.full {
		return s.w
	}
	return s.head
}

// Window returns the current capacity W.
func (s *SlidingTrend) Window() int { return s.w }

// Values returns the retained observations in chronological order.
func (s *SlidingTrend) Values() []float64 {
	return s.ValuesInto(nil)
}

// ValuesInto writes the retained observations in chronological order into
// dst, reusing its backing array when large enough (the detector hot path
// passes a struct-owned scratch slice to stay allocation-free). Returns the
// filled slice.
func (s *SlidingTrend) ValuesInto(dst []float64) []float64 {
	n := s.Count()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if s.full {
		for i := 0; i < s.w; i++ {
			dst[i] = s.hist[(s.head+i)%s.w]
		}
		return dst
	}
	copy(dst, s.hist[:s.head])
	return dst
}

// Slope returns the regression slope Qr(t) of Eq. 28 over the current
// window; zero when fewer than two observations are held.
func (s *SlidingTrend) Slope() float64 {
	n := float64(s.Count())
	if n < 2 {
		return 0
	}
	den := n*s.st2 - s.st*s.st
	if den == 0 || math.IsNaN(den) {
		return 0
	}
	return (n*s.tr - s.st*s.sr) / den
}

// Mean returns the mean of the retained observations.
func (s *SlidingTrend) Mean() float64 {
	n := float64(s.Count())
	if n == 0 {
		return 0
	}
	return s.sr / n
}
