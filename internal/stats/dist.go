// Package stats implements, from scratch on the standard library, every
// piece of statistical machinery the reproduction needs: probability
// distributions (normal, Student-t, F, chi-square), special functions
// (regularized incomplete beta and gamma), ordinary and incremental sliding
// linear regression, the Hoeffding bound, the Wilcoxon rank-sum test, the
// Friedman test with Bonferroni-Dunn post-hoc, the Bayesian signed test, the
// Granger causality test on first differences, and a Nelder-Mead simplex
// optimizer for self hyper-parameter tuning.
package stats

import (
	"math"
)

// NormalCDF returns P(Z <= z) for the standard normal distribution.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z such that NormalCDF(z) == p, using the
// Acklam rational approximation refined by one Newton step. Accurate to
// ~1e-9 over (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Newton refinement using the analytic density.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// lgamma returns log|Gamma(x)| without the sign (inputs here are positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegularizedIncompleteBeta computes I_x(a, b), the CDF of the Beta(a, b)
// distribution at x, via the continued-fraction expansion (Numerical Recipes
// style, modified Lentz algorithm).
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegularizedIncompleteGamma computes P(a, x) = gamma(a, x)/Gamma(a), the CDF
// of the Gamma(a, 1) distribution at x, switching between the series and
// continued-fraction representations for stability.
func RegularizedIncompleteGamma(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
	}
	// Continued fraction for Q(a, x); P = 1 - Q.
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lgamma(a)) * h
	return 1 - q
}

// ChiSquareCDF returns P(X <= x) for a chi-square with k degrees of freedom.
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 {
		return 0
	}
	return RegularizedIncompleteGamma(float64(k)/2, x/2)
}

// StudentTCDF returns P(T <= t) for Student's t with v degrees of freedom.
func StudentTCDF(t float64, v float64) float64 {
	if v <= 0 {
		return math.NaN()
	}
	x := v / (v + t*t)
	p := 0.5 * RegularizedIncompleteBeta(v/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTQuantile returns the t such that StudentTCDF(t, v) == p, via
// bisection (sufficient accuracy for hypothesis testing).
func StudentTQuantile(p float64, v float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := -1e6, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, v) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10 {
			break
		}
	}
	return (lo + hi) / 2
}

// FCDF returns P(X <= f) for an F distribution with d1 and d2 degrees of
// freedom.
func FCDF(f float64, d1, d2 float64) float64 {
	if f <= 0 {
		return 0
	}
	x := d1 * f / (d1*f + d2)
	return RegularizedIncompleteBeta(d1/2, d2/2, x)
}

// FSurvival returns the upper-tail p-value P(X > f) for the F distribution.
func FSurvival(f float64, d1, d2 float64) float64 {
	return 1 - FCDF(f, d1, d2)
}

// HoeffdingBound returns the epsilon such that the true mean of a random
// variable with the given range differs from the empirical mean of n
// observations by more than epsilon with probability at most delta.
func HoeffdingBound(rangeWidth float64, delta float64, n float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(rangeWidth * rangeWidth * math.Log(1/delta) / (2 * n))
}
