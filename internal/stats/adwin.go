package stats

import "math"

// ADWIN is the adaptive windowing algorithm of Bifet & Gavalda (2007). It
// maintains a variable-length window over a real-valued sequence, shrinking
// it whenever two sub-windows exhibit statistically distinct means. It serves
// two roles in this repository: as the self-adaptive window-size oracle
// inside RBM-IM (the paper's Eq. 28-37 statistics use an ADWIN-chosen W) and
// as a baseline drift detector in internal/detectors.
type ADWIN struct {
	delta float64

	// Exponential histogram: rows of buckets; row i holds buckets that each
	// summarize 2^i elements, with at most maxBuckets buckets per row.
	rows  []adwinRow
	total float64 // sum of all elements
	varSq float64 // sum of per-bucket internal variances
	width int     // number of elements in the window

	// detected is set by Add when the last insertion shrank the window.
	detected bool

	// minClock throttles cut checks: cuts are only attempted every
	// clock insertions (32, as in the reference implementation).
	clock int
	ticks int
}

type adwinBucket struct {
	sum float64
	// variance within the bucket times its size (internal sum of squares).
	varSq float64
}

type adwinRow struct {
	size    int // elements per bucket in this row (2^level)
	buckets []adwinBucket
}

const adwinMaxBuckets = 5

// NewADWIN builds an adaptive window with confidence parameter delta
// (smaller = more conservative; the canonical default is 0.002).
func NewADWIN(delta float64) *ADWIN {
	if delta <= 0 || delta >= 1 {
		delta = 0.002
	}
	return &ADWIN{
		delta: delta,
		rows:  []adwinRow{{size: 1}},
		clock: 32,
	}
}

// Width returns the current window length.
func (a *ADWIN) Width() int { return a.width }

// Mean returns the mean of the current window (0 when empty).
func (a *ADWIN) Mean() float64 {
	if a.width == 0 {
		return 0
	}
	return a.total / float64(a.width)
}

// Detected reports whether the most recent Add shrank the window, i.e.
// whether a change was detected at that step.
func (a *ADWIN) Detected() bool { return a.detected }

// Add inserts x and returns true when the insertion caused the window to
// shrink (change detected).
func (a *ADWIN) Add(x float64) bool {
	a.insert(x)
	a.ticks++
	a.detected = false
	if a.ticks%a.clock == 0 && a.width > 8 {
		a.detected = a.checkCut()
	}
	return a.detected
}

// insert places x as a fresh size-1 bucket and compresses rows that overflow.
func (a *ADWIN) insert(x float64) {
	a.rows[0].buckets = append(a.rows[0].buckets, adwinBucket{sum: x})
	a.width++
	a.total += x
	// Compress: when a row exceeds maxBuckets, merge its two oldest buckets
	// into one bucket of the next row.
	for i := 0; i < len(a.rows); i++ {
		if len(a.rows[i].buckets) <= adwinMaxBuckets {
			break
		}
		if i+1 == len(a.rows) {
			a.rows = append(a.rows, adwinRow{size: a.rows[i].size * 2})
		}
		b0 := a.rows[i].buckets[0]
		b1 := a.rows[i].buckets[1]
		n := float64(a.rows[i].size)
		mu0, mu1 := b0.sum/n, b1.sum/n
		d := mu0 - mu1
		merged := adwinBucket{
			sum:   b0.sum + b1.sum,
			varSq: b0.varSq + b1.varSq + n*n/(2*n)*d*d,
		}
		a.varSq += n * n / (2 * n) * d * d
		a.rows[i].buckets = a.rows[i].buckets[2:]
		a.rows[i+1].buckets = append(a.rows[i+1].buckets, merged)
	}
}

// checkCut scans split points from oldest to newest and drops the oldest
// buckets while any split shows significantly different means. Returns true
// when at least one bucket was dropped.
func (a *ADWIN) checkCut() bool {
	shrunk := false
	for repeat := true; repeat; {
		repeat = false
		// Walk splits: accumulate the "old" side from the oldest bucket
		// (highest row, front) toward the newest.
		n0, s0 := 0.0, 0.0
		n := float64(a.width)
		total := a.total
		stop := false
		for i := len(a.rows) - 1; i >= 0 && !stop; i-- {
			row := a.rows[i]
			for j := 0; j < len(row.buckets) && !stop; j++ {
				n0 += float64(row.size)
				s0 += row.buckets[j].sum
				n1 := n - n0
				if n0 < 1 || n1 < 1 {
					continue
				}
				mu0 := s0 / n0
				mu1 := (total - s0) / n1
				if a.cutExpression(n0, n1, mu0, mu1) {
					// Drop the oldest bucket and re-scan.
					a.dropOldest()
					shrunk = true
					repeat = a.width > 8
					stop = true
				}
			}
		}
	}
	return shrunk
}

// cutExpression implements the ADWIN2 variance-based bound.
func (a *ADWIN) cutExpression(n0, n1, mu0, mu1 float64) bool {
	n := n0 + n1
	diff := math.Abs(mu0 - mu1)
	v := a.windowVariance()
	dd := math.Log(2 * math.Log(n) / a.delta)
	m := 1/(n0) + 1/(n1)
	eps := math.Sqrt(2*m*v*dd) + 2.0/3.0*dd*m
	return diff > eps
}

// windowVariance estimates the variance of the window contents.
func (a *ADWIN) windowVariance() float64 {
	if a.width < 2 {
		return 0
	}
	mean := a.Mean()
	// Total sum of squares = internal variances + between-bucket spread.
	ss := a.varSq
	for _, row := range a.rows {
		n := float64(row.size)
		for _, b := range row.buckets {
			d := b.sum/n - mean
			ss += n * d * d
		}
	}
	return ss / float64(a.width)
}

// dropOldest removes the oldest bucket from the window.
func (a *ADWIN) dropOldest() {
	for i := len(a.rows) - 1; i >= 0; i-- {
		if len(a.rows[i].buckets) == 0 {
			continue
		}
		b := a.rows[i].buckets[0]
		a.rows[i].buckets = a.rows[i].buckets[1:]
		a.width -= a.rows[i].size
		a.total -= b.sum
		a.varSq -= b.varSq
		if a.varSq < 0 {
			a.varSq = 0
		}
		// Trim empty trailing rows.
		for len(a.rows) > 1 && len(a.rows[len(a.rows)-1].buckets) == 0 {
			a.rows = a.rows[:len(a.rows)-1]
		}
		return
	}
}

// Reset clears the window.
func (a *ADWIN) Reset() {
	a.rows = []adwinRow{{size: 1}}
	a.total, a.varSq = 0, 0
	a.width, a.ticks = 0, 0
	a.detected = false
}
