package stats

import (
	"math"
	"sort"
)

// NelderMeadOptions configures the simplex optimizer.
type NelderMeadOptions struct {
	// MaxEvals bounds the number of objective evaluations (default 200).
	MaxEvals int
	// Tol is the simplex-spread stopping tolerance on objective values
	// (default 1e-6).
	Tol float64
	// Step is the initial simplex displacement per coordinate (default 0.1
	// of |x0_i| or 0.1 when x0_i is zero).
	Step float64
}

// NelderMead minimizes f starting from x0 using the Nelder-Mead downhill
// simplex with standard coefficients (reflection 1, expansion 2, contraction
// 0.5, shrink 0.5). It returns the best point and value found. This is the
// optimizer behind the self hyper-parameter tuning of Veloso et al. (2018)
// that the paper uses for all detectors.
func NelderMead(f func([]float64) float64, x0 []float64, opt NelderMeadOptions) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, math.NaN()
	}
	if opt.MaxEvals <= 0 {
		opt.MaxEvals = 200
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-6
	}
	if opt.Step <= 0 {
		opt.Step = 0.1
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	type vertex struct {
		x []float64
		v float64
	}
	simplex := make([]vertex, n+1)
	base := append([]float64(nil), x0...)
	simplex[0] = vertex{base, eval(base)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		d := opt.Step * math.Abs(x[i])
		if d == 0 {
			d = opt.Step
		}
		x[i] += d
		simplex[i+1] = vertex{x, eval(x)}
	}
	order := func() {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
	}
	centroid := func() []float64 {
		c := make([]float64, n)
		for i := 0; i < n; i++ { // all but worst
			for j := 0; j < n; j++ {
				c[j] += simplex[i].x[j]
			}
		}
		for j := range c {
			c[j] /= float64(n)
		}
		return c
	}
	combine := func(c, x []float64, coef float64) []float64 {
		out := make([]float64, n)
		for j := 0; j < n; j++ {
			out[j] = c[j] + coef*(c[j]-x[j])
		}
		return out
	}
	for evals < opt.MaxEvals {
		order()
		if math.Abs(simplex[n].v-simplex[0].v) < opt.Tol {
			break
		}
		c := centroid()
		worst := simplex[n]
		// Reflection.
		xr := combine(c, worst.x, 1)
		vr := eval(xr)
		switch {
		case vr < simplex[0].v:
			// Expansion.
			xe := combine(c, worst.x, 2)
			ve := eval(xe)
			if ve < vr {
				simplex[n] = vertex{xe, ve}
			} else {
				simplex[n] = vertex{xr, vr}
			}
		case vr < simplex[n-1].v:
			simplex[n] = vertex{xr, vr}
		default:
			// Contraction.
			xc := combine(c, worst.x, -0.5)
			vc := eval(xc)
			if vc < worst.v {
				simplex[n] = vertex{xc, vc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + 0.5*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].v = eval(simplex[i].x)
				}
			}
		}
	}
	order()
	return simplex[0].x, simplex[0].v
}

// Mean returns the arithmetic mean of s (0 for empty input).
func Mean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Variance returns the unbiased sample variance of s (0 when len < 2).
func Variance(s []float64) float64 {
	n := len(s)
	if n < 2 {
		return 0
	}
	m := Mean(s)
	sum := 0.0
	for _, v := range s {
		d := v - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the sample standard deviation of s.
func StdDev(s []float64) float64 { return math.Sqrt(Variance(s)) }
