package stats

import (
	"math"
	"math/rand"
	"testing"

	"rbmim/internal/codec"
)

// TestADWINStateRoundTrip pins that a restored ADWIN continues bit-identically
// to the original: same widths, means, and detection decisions on a shared
// suffix of insertions.
func TestADWINStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewADWIN(0.002)
	for i := 0; i < 500; i++ {
		v := rng.NormFloat64()
		if i > 300 {
			v += 3 // level shift so cuts actually happen
		}
		a.Add(v)
	}

	w := codec.NewBuffer(nil)
	a.EncodeState(w)
	b := NewADWIN(0.5) // deliberately different parameters; decode replaces them
	if err := b.DecodeState(codec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if b.Width() != a.Width() || math.Float64bits(b.Mean()) != math.Float64bits(a.Mean()) {
		t.Fatalf("restored width/mean %d/%v vs %d/%v", b.Width(), b.Mean(), a.Width(), a.Mean())
	}
	// Continue both with the identical suffix: every decision must agree.
	for i := 0; i < 400; i++ {
		v := rng.NormFloat64() * float64(1+i%7)
		da, db := a.Add(v), b.Add(v)
		if da != db || a.Width() != b.Width() || math.Float64bits(a.Mean()) != math.Float64bits(b.Mean()) {
			t.Fatalf("step %d diverged: detect %v/%v width %d/%d", i, da, db, a.Width(), b.Width())
		}
	}
}

func TestADWINDecodeRejectsCorruptState(t *testing.T) {
	a := NewADWIN(0.002)
	for i := 0; i < 100; i++ {
		a.Add(float64(i % 10))
	}
	w := codec.NewBuffer(nil)
	a.EncodeState(w)
	valid := append([]byte(nil), w.Bytes()...)

	// Truncations at every length must fail and leave the receiver usable.
	for n := 0; n < len(valid); n++ {
		fresh := NewADWIN(0.002)
		if err := fresh.DecodeState(codec.NewReader(valid[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		if fresh.Width() != 0 {
			t.Fatalf("failed decode mutated receiver (width %d)", fresh.Width())
		}
		fresh.Add(1) // must not panic after failed decode
	}
}

func TestSlidingTrendStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSlidingTrend(16)
	for i := 0; i < 57; i++ {
		s.Add(rng.Float64() + float64(i)*0.01)
	}
	w := codec.NewBuffer(nil)
	s.EncodeState(w)
	restored := NewSlidingTrend(4)
	if err := restored.DecodeState(codec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.Window() != s.Window() {
		t.Fatalf("count/window %d/%d vs %d/%d", restored.Count(), restored.Window(), s.Count(), s.Window())
	}
	if math.Float64bits(restored.Slope()) != math.Float64bits(s.Slope()) {
		t.Fatalf("slope %v vs %v", restored.Slope(), s.Slope())
	}
	for i := 0; i < 40; i++ {
		v := rng.Float64()
		s.Add(v)
		restored.Add(v)
		if math.Float64bits(restored.Slope()) != math.Float64bits(s.Slope()) ||
			math.Float64bits(restored.Mean()) != math.Float64bits(s.Mean()) {
			t.Fatalf("step %d diverged: slope %v vs %v", i, restored.Slope(), s.Slope())
		}
	}
}

func TestSlidingTrendDecodeRejectsBadCursor(t *testing.T) {
	s := NewSlidingTrend(8)
	s.Add(1)
	w := codec.NewBuffer(nil)
	s.EncodeState(w)
	valid := w.Bytes()

	// head beyond the window must be rejected: rewrite the head field (offset
	// = 6 fixed 8-byte fields) to an out-of-range value.
	bad := append([]byte(nil), valid...)
	badW := codec.NewBuffer(nil)
	badW.Int(99)
	copy(bad[6*8:], badW.Bytes())
	fresh := NewSlidingTrend(8)
	if err := fresh.DecodeState(codec.NewReader(bad)); err == nil {
		t.Fatal("out-of-range head accepted")
	}
}
