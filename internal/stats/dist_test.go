package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-12, "Phi(0)")
	approx(t, NormalCDF(1.959963985), 0.975, 1e-6, "Phi(1.96)")
	approx(t, NormalCDF(-1.959963985), 0.025, 1e-6, "Phi(-1.96)")
	approx(t, NormalCDF(3), 0.998650, 1e-5, "Phi(3)")
	if NormalCDF(-40) != 0 && NormalCDF(-40) > 1e-300 {
		t.Errorf("deep tail should underflow toward 0, got %v", NormalCDF(-40))
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999} {
		z := NormalQuantile(p)
		approx(t, NormalCDF(z), p, 1e-8, "CDF(Quantile(p))")
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at bounds should be infinite")
	}
}

func TestNormalQuantileMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		pa := 0.001 + 0.998*math.Abs(math.Mod(a, 1))
		pb := 0.001 + 0.998*math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa) <= NormalQuantile(pb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegularizedIncompleteBeta(t *testing.T) {
	// I_x(1,1) is the uniform CDF.
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		approx(t, RegularizedIncompleteBeta(1, 1, x), x, 1e-10, "I_x(1,1)")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	approx(t, RegularizedIncompleteBeta(2, 5, 0.3), 1-RegularizedIncompleteBeta(5, 2, 0.7), 1e-10, "beta symmetry")
	// Known value: I_{0.5}(2,2) = 0.5.
	approx(t, RegularizedIncompleteBeta(2, 2, 0.5), 0.5, 1e-10, "I_0.5(2,2)")
	if RegularizedIncompleteBeta(3, 4, 0) != 0 || RegularizedIncompleteBeta(3, 4, 1) != 1 {
		t.Error("beta CDF bounds wrong")
	}
}

func TestRegularizedIncompleteGamma(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.5, 1, 2, 5} {
		approx(t, RegularizedIncompleteGamma(1, x), 1-math.Exp(-x), 1e-10, "P(1,x)")
	}
	if RegularizedIncompleteGamma(2, 0) != 0 {
		t.Error("P(a,0) should be 0")
	}
	// Monotone in x.
	if RegularizedIncompleteGamma(3, 2) >= RegularizedIncompleteGamma(3, 4) {
		t.Error("incomplete gamma should increase in x")
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Chi-square with 1 dof at 3.841 is ~0.95.
	approx(t, ChiSquareCDF(3.841, 1), 0.95, 1e-3, "chi2(1) 95%")
	// Chi-square with 5 dof at 11.07 is ~0.95.
	approx(t, ChiSquareCDF(11.0705, 5), 0.95, 1e-3, "chi2(5) 95%")
	if ChiSquareCDF(-1, 3) != 0 {
		t.Error("negative support should be 0")
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	approx(t, StudentTCDF(0, 10), 0.5, 1e-12, "t(10) at 0")
	// t with 10 dof: P(T <= 2.228) ~ 0.975.
	approx(t, StudentTCDF(2.228, 10), 0.975, 1e-3, "t(10) 97.5%")
	// Symmetry.
	approx(t, StudentTCDF(-1.5, 7)+StudentTCDF(1.5, 7), 1, 1e-10, "t symmetry")
	// Converges to the normal for large dof.
	approx(t, StudentTCDF(1.96, 1e6), NormalCDF(1.96), 1e-4, "t -> normal")
}

func TestStudentTQuantileRoundTrip(t *testing.T) {
	for _, v := range []float64{3, 10, 30} {
		for _, p := range []float64{0.05, 0.5, 0.9, 0.975} {
			q := StudentTQuantile(p, v)
			approx(t, StudentTCDF(q, v), p, 1e-6, "t quantile round trip")
		}
	}
}

func TestFCDFKnownValues(t *testing.T) {
	// F(1,1) at 161.4 ~ 0.95.
	approx(t, FCDF(161.45, 1, 1), 0.95, 1e-3, "F(1,1) 95%")
	// F(5,10) at 3.33 ~ 0.95.
	approx(t, FCDF(3.3258, 5, 10), 0.95, 1e-3, "F(5,10) 95%")
	if FCDF(0, 3, 3) != 0 {
		t.Error("F CDF at 0 should be 0")
	}
	approx(t, FSurvival(3.3258, 5, 10), 0.05, 1e-3, "F survival")
}

func TestFCDFMatchesChiSquareLimit(t *testing.T) {
	// d1*F(d1, inf) -> chi2(d1): compare at large d2.
	d1 := 4.0
	x := 2.0
	approx(t, FCDF(x, d1, 1e7), ChiSquareCDF(d1*x, int(d1)), 1e-4, "F -> chi2 limit")
}

func TestHoeffdingBound(t *testing.T) {
	// Bound shrinks with n and grows with range.
	if HoeffdingBound(1, 0.05, 100) <= HoeffdingBound(1, 0.05, 1000) {
		t.Error("bound should shrink with more samples")
	}
	if HoeffdingBound(2, 0.05, 100) <= HoeffdingBound(1, 0.05, 100) {
		t.Error("bound should grow with range")
	}
	if !math.IsInf(HoeffdingBound(1, 0.05, 0), 1) {
		t.Error("zero samples should give infinite bound")
	}
	// Known value: R=1, delta=0.05, n=1000 -> ~0.0387.
	approx(t, HoeffdingBound(1, 0.05, 1000), 0.03870, 1e-4, "hoeffding known value")
}

func TestDistributionCDFBoundsProperty(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Abs(math.Mod(raw, 50))
		checks := []float64{
			ChiSquareCDF(x, 3),
			StudentTCDF(x-25, 7),
			FCDF(x, 3, 8),
			NormalCDF(x - 25),
		}
		for _, c := range checks {
			if c < 0 || c > 1 || math.IsNaN(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
