package stats

import (
	"math"
	"math/rand"
	"sort"
)

// WilcoxonRankSum performs the two-sample Wilcoxon rank-sum (Mann-Whitney)
// test with the normal approximation and tie correction, returning the
// standardized statistic and the two-sided p-value. It is the statistical
// core of the WSTD drift detector.
func WilcoxonRankSum(a, b []float64) (z, pValue float64) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return 0, 1
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Assign mid-ranks with tie groups.
	ranks := make([]float64, len(all))
	tieCorrection := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	n := fn1 + fn2
	mu := fn1 * (n + 1) / 2
	sigma2 := fn1 * fn2 / 12 * (n + 1 - tieCorrection/(n*(n-1)))
	if sigma2 <= 0 {
		return 0, 1
	}
	z = (r1 - mu) / math.Sqrt(sigma2)
	pValue = 2 * (1 - NormalCDF(math.Abs(z)))
	if pValue > 1 {
		pValue = 1
	}
	return z, pValue
}

// FriedmanResult reports the Friedman rank test over k algorithms and N
// datasets.
type FriedmanResult struct {
	// AvgRanks holds the average rank of each algorithm (1 = best).
	AvgRanks []float64
	// ChiSquare is the Friedman chi-square statistic.
	ChiSquare float64
	// FStat is the Iman-Davenport correction of the statistic.
	FStat float64
	// PValue is the chi-square upper-tail p-value.
	PValue float64
}

// Friedman ranks algorithms per dataset (higher score = better = lower rank)
// and computes the Friedman test. scores[i][j] is algorithm j's score on
// dataset i. Ties receive mid-ranks.
func Friedman(scores [][]float64) FriedmanResult {
	n := len(scores)
	if n == 0 {
		return FriedmanResult{}
	}
	k := len(scores[0])
	sumRanks := make([]float64, k)
	for _, row := range scores {
		idx := make([]int, k)
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
		// Mid-ranks for ties.
		r := make([]float64, k)
		for i := 0; i < k; {
			j := i
			for j < k && row[idx[j]] == row[idx[i]] {
				j++
			}
			mid := float64(i+j+1) / 2
			for t := i; t < j; t++ {
				r[idx[t]] = mid
			}
			i = j
		}
		for j := 0; j < k; j++ {
			sumRanks[j] += r[j]
		}
	}
	avg := make([]float64, k)
	for j := range avg {
		avg[j] = sumRanks[j] / float64(n)
	}
	fk, fn := float64(k), float64(n)
	sum := 0.0
	for _, r := range avg {
		sum += r * r
	}
	chi := 12 * fn / (fk * (fk + 1)) * (sum - fk*(fk+1)*(fk+1)/4)
	var f float64
	den := fn*(fk-1) - chi
	if den > 0 {
		f = (fn - 1) * chi / den
	} else {
		f = math.Inf(1)
	}
	return FriedmanResult{
		AvgRanks:  avg,
		ChiSquare: chi,
		FStat:     f,
		PValue:    1 - ChiSquareCDF(chi, k-1),
	}
}

// BonferroniDunnCD returns the critical difference of the Bonferroni-Dunn
// post-hoc test for k algorithms over N datasets at the given significance
// level: two algorithms differ significantly when their average ranks differ
// by more than CD. The control-comparison critical value q_alpha is obtained
// from the normal quantile with the Bonferroni correction over k-1
// comparisons (Demsar 2006).
func BonferroniDunnCD(k, n int, alpha float64) float64 {
	if k < 2 || n < 1 {
		return math.NaN()
	}
	// Demsar (2006), Table 5(b): the critical value is the two-tailed
	// normal quantile with Bonferroni correction over k-1 comparisons
	// (e.g. 2.576 for k=6 at alpha=0.05).
	q := NormalQuantile(1 - alpha/float64(2*(k-1)))
	return q * math.Sqrt(float64(k*(k+1))/(6*float64(n)))
}

// BayesianSignedResult reports the Bayesian signed test probabilities that
// the first algorithm is practically worse (Left), equivalent (Rope), or
// better (Right) than the second.
type BayesianSignedResult struct {
	Left, Rope, Right float64
	// Samples holds the Monte Carlo posterior draws as (pLeft, pRope,
	// pRight) triples for plotting the simplex cloud of Figs. 6-7.
	Samples [][3]float64
}

// BayesianSignedTest runs the Bayesian signed test of Benavoli et al. (2017)
// on paired score differences d_i = b_i - a_i with a region of practical
// equivalence of +-rope. It draws Monte Carlo samples from the Dirichlet
// posterior over the (left, rope, right) probabilities with the prior placed
// on the rope, and reports P(left), P(rope), P(right) as the fraction of
// draws in which each region has the largest probability.
func BayesianSignedTest(a, b []float64, rope float64, draws int, rng *rand.Rand) BayesianSignedResult {
	if len(a) != len(b) || len(a) == 0 {
		return BayesianSignedResult{}
	}
	if draws <= 0 {
		draws = 50000
	}
	// Dirichlet concentration: prior pseudo-count 1 on the rope plus one
	// count per observation in its region.
	alphaL, alphaR, alphaRope := 0.0, 0.0, 1.0
	for i := range a {
		d := b[i] - a[i]
		switch {
		case d < -rope:
			alphaL++
		case d > rope:
			alphaR++
		default:
			alphaRope++
		}
	}
	res := BayesianSignedResult{Samples: make([][3]float64, 0, draws)}
	for s := 0; s < draws; s++ {
		gl := gammaSample(rng, alphaL)
		gr := gammaSample(rng, alphaRope)
		gg := gammaSample(rng, alphaR)
		tot := gl + gr + gg
		if tot == 0 {
			continue
		}
		pl, pr, pg := gl/tot, gr/tot, gg/tot
		res.Samples = append(res.Samples, [3]float64{pl, pr, pg})
		switch {
		case pl > pr && pl > pg:
			res.Left++
		case pg > pr && pg > pl:
			res.Right++
		default:
			res.Rope++
		}
	}
	n := float64(len(res.Samples))
	if n > 0 {
		res.Left /= n
		res.Rope /= n
		res.Right /= n
	}
	return res
}

// gammaSample draws from Gamma(shape, 1) by Marsaglia-Tsang, with the
// boost for shape < 1. Zero shape returns 0 (a degenerate Dirichlet
// component).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boosting: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
