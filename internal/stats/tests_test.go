package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWilcoxonIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	_, p := WilcoxonRankSum(a, a)
	if p < 0.9 {
		t.Fatalf("identical samples should not differ, p=%v", p)
	}
}

func TestWilcoxonSeparatedSamples(t *testing.T) {
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 100
	}
	z, p := WilcoxonRankSum(a, b)
	if p > 1e-6 {
		t.Fatalf("separated samples should differ, p=%v", p)
	}
	if z >= 0 {
		t.Fatalf("a ranks below b, z should be negative, got %v", z)
	}
}

func TestWilcoxonEmptyInput(t *testing.T) {
	if _, p := WilcoxonRankSum(nil, []float64{1}); p != 1 {
		t.Fatal("empty input should return p=1")
	}
}

func TestWilcoxonFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rejections := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		a := make([]float64, 40)
		b := make([]float64, 40)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
		}
		if _, p := WilcoxonRankSum(a, b); p < 0.05 {
			rejections++
		}
	}
	// Expect about 5%; allow up to 12%.
	if rejections > trials*12/100 {
		t.Fatalf("false positive rate too high: %d/%d", rejections, trials)
	}
}

func TestFriedmanRanking(t *testing.T) {
	// Algorithm 2 dominates, algorithm 0 is worst, on 10 datasets.
	scores := make([][]float64, 10)
	for i := range scores {
		scores[i] = []float64{10 + float64(i), 50 + float64(i), 90 + float64(i)}
	}
	res := Friedman(scores)
	if len(res.AvgRanks) != 3 {
		t.Fatalf("ranks len = %d", len(res.AvgRanks))
	}
	approx(t, res.AvgRanks[2], 1, 1e-9, "dominating rank")
	approx(t, res.AvgRanks[0], 3, 1e-9, "worst rank")
	if res.PValue > 0.01 {
		t.Fatalf("clear dominance should be significant, p=%v", res.PValue)
	}
}

func TestFriedmanTiesGetMidRanks(t *testing.T) {
	scores := [][]float64{{1, 1, 2}}
	res := Friedman(scores)
	approx(t, res.AvgRanks[2], 1, 1e-9, "winner rank")
	approx(t, res.AvgRanks[0], 2.5, 1e-9, "tied rank a")
	approx(t, res.AvgRanks[1], 2.5, 1e-9, "tied rank b")
}

func TestFriedmanEmpty(t *testing.T) {
	res := Friedman(nil)
	if res.AvgRanks != nil {
		t.Fatal("empty input should yield empty result")
	}
}

func TestBonferroniDunnCD(t *testing.T) {
	// Demsar (2006): k=6, N=24, alpha=0.05 gives CD ~ 1.37... with
	// q_0.05 ~ 2.576 for 5 comparisons: CD = 2.576*sqrt(6*7/(6*24)).
	cd := BonferroniDunnCD(6, 24, 0.05)
	want := 2.576 * math.Sqrt(6.0*7.0/(6.0*24.0))
	approx(t, cd, want, 0.02, "CD(6,24)")
	if !math.IsNaN(BonferroniDunnCD(1, 10, 0.05)) {
		t.Error("k<2 should give NaN")
	}
}

func TestBayesianSignedTestDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 24)
	b := make([]float64, 24)
	for i := range a {
		a[i] = 50
		b[i] = 70 // b dominates by far more than the rope
	}
	res := BayesianSignedTest(a, b, 1.0, 20000, rng)
	if res.Right < 0.95 {
		t.Fatalf("P(right) = %v, want near 1", res.Right)
	}
}

func TestBayesianSignedTestRope(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 24)
	b := make([]float64, 24)
	for i := range a {
		a[i] = 50
		b[i] = 50.001 // within any reasonable rope
	}
	res := BayesianSignedTest(a, b, 1.0, 20000, rng)
	if res.Rope < 0.9 {
		t.Fatalf("P(rope) = %v, want near 1", res.Rope)
	}
}

func TestBayesianSignedTestProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := []float64{1, 5, 3, 8, 2, 9, 4}
	b := []float64{2, 4, 5, 6, 3, 8, 6}
	res := BayesianSignedTest(a, b, 0.5, 10000, rng)
	approx(t, res.Left+res.Rope+res.Right, 1, 1e-9, "probability simplex")
	if len(res.Samples) == 0 {
		t.Fatal("samples missing")
	}
	for _, s := range res.Samples[:100] {
		approx(t, s[0]+s[1]+s[2], 1, 1e-9, "sample simplex")
	}
}

func TestBayesianSignedTestEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	res := BayesianSignedTest(nil, nil, 0.5, 100, rng)
	if res.Left != 0 || res.Rope != 0 || res.Right != 0 {
		t.Fatal("empty input should produce zero result")
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, shape := range []float64{0.5, 1, 3, 10} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Errorf("Gamma(%v) sample mean = %v, want ~%v", shape, mean, shape)
		}
	}
	if gammaSample(rng, 0) != 0 {
		t.Error("zero shape should give 0")
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	s := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(s), 5, 1e-12, "mean")
	approx(t, Variance(s), 32.0/7.0, 1e-12, "variance")
	approx(t, StdDev(s), math.Sqrt(32.0/7.0), 1e-12, "stddev")
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+2)*(x[1]+2)
	}
	best, v := NelderMead(f, []float64{0, 0}, NelderMeadOptions{MaxEvals: 500, Tol: 1e-12})
	approx(t, best[0], 3, 1e-3, "x0")
	approx(t, best[1], -2, 1e-3, "x1")
	if v > 1e-5 {
		t.Fatalf("objective at optimum = %v", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	best, v := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxEvals: 4000, Tol: 1e-14})
	if v > 1e-3 {
		t.Fatalf("Rosenbrock not minimized: f=%v at %v", v, best)
	}
}

func TestNelderMeadEmptyInput(t *testing.T) {
	x, v := NelderMead(func([]float64) float64 { return 0 }, nil, NelderMeadOptions{})
	if x != nil || !math.IsNaN(v) {
		t.Fatal("empty input should return nil/NaN")
	}
}
