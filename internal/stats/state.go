package stats

import "rbmim/internal/codec"

// This file serializes the two stateful statistics RBM-IM's per-class
// monitors carry across checkpoints: the ADWIN exponential histogram and the
// sliding trend regression. Both follow the repository-wide checkpoint
// contract (see internal/codec): EncodeState appends the full mutable state
// to a codec.Buffer; DecodeState reads it back, validating every structural
// invariant, and replaces the receiver only after the whole decode
// succeeded — a failed decode leaves the receiver untouched.

// EncodeState appends the ADWIN's complete state.
func (a *ADWIN) EncodeState(w *codec.Buffer) {
	w.F64(a.delta)
	w.Int(a.clock)
	w.Int(a.ticks)
	w.Int(a.width)
	w.F64(a.total)
	w.F64(a.varSq)
	w.Bool(a.detected)
	w.Int(len(a.rows))
	for _, row := range a.rows {
		w.Int(row.size)
		w.Int(len(row.buckets))
		for _, b := range row.buckets {
			w.F64(b.sum)
			w.F64(b.varSq)
		}
	}
}

// DecodeState restores state written by EncodeState. On error the receiver
// is unchanged.
func (a *ADWIN) DecodeState(r *codec.Reader) error {
	tmp := ADWIN{
		delta:    r.F64(),
		clock:    r.Int(),
		ticks:    r.Int(),
		width:    r.Int(),
		total:    r.F64(),
		varSq:    r.F64(),
		detected: r.Bool(),
	}
	nRows := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if tmp.delta <= 0 || tmp.delta >= 1 {
		r.Fail("adwin delta %v outside (0,1)", tmp.delta)
		return r.Err()
	}
	if tmp.clock < 1 || tmp.ticks < 0 || tmp.width < 0 {
		r.Fail("adwin counters negative or zero clock")
		return r.Err()
	}
	if nRows < 1 || nRows > 64 {
		r.Fail("adwin has %d histogram rows", nRows)
		return r.Err()
	}
	tmp.rows = make([]adwinRow, nRows)
	elems := 0
	wantSize := 1
	for i := range tmp.rows {
		size := r.Int()
		nb := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		// Row i summarizes 2^i elements per bucket and holds at most
		// maxBuckets+? buckets (compression keeps rows at maxBuckets, but a
		// snapshot can only ever be taken at a compressed state).
		if size != wantSize || nb < 0 || nb > adwinMaxBuckets {
			r.Fail("adwin row %d: size %d buckets %d", i, size, nb)
			return r.Err()
		}
		wantSize *= 2
		row := adwinRow{size: size, buckets: make([]adwinBucket, nb)}
		for j := range row.buckets {
			row.buckets[j] = adwinBucket{sum: r.F64(), varSq: r.F64()}
		}
		tmp.rows[i] = row
		elems += size * nb
	}
	if r.Err() != nil {
		return r.Err()
	}
	if elems != tmp.width {
		r.Fail("adwin width %d but histogram holds %d elements", tmp.width, elems)
		return r.Err()
	}
	*a = tmp
	return nil
}

// EncodeState appends the trend tracker's complete state.
func (s *SlidingTrend) EncodeState(w *codec.Buffer) {
	w.Int(s.w)
	w.Int(s.t)
	w.F64(s.tr)
	w.F64(s.st)
	w.F64(s.sr)
	w.F64(s.st2)
	w.Int(s.head)
	w.Bool(s.full)
	w.F64s(s.hist)
}

// DecodeState restores state written by EncodeState. On error the receiver
// is unchanged.
func (s *SlidingTrend) DecodeState(r *codec.Reader) error {
	tmp := SlidingTrend{
		w:   r.Int(),
		t:   r.Int(),
		tr:  r.F64(),
		st:  r.F64(),
		sr:  r.F64(),
		st2: r.F64(),
	}
	tmp.head = r.Int()
	tmp.full = r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if tmp.w < 2 {
		r.Fail("trend window %d < 2", tmp.w)
		return r.Err()
	}
	tmp.hist = r.F64sLen(tmp.w)
	if r.Err() != nil {
		return r.Err()
	}
	if tmp.head < 0 || tmp.head >= tmp.w || tmp.t < 0 {
		r.Fail("trend cursor head=%d t=%d window=%d", tmp.head, tmp.t, tmp.w)
		return r.Err()
	}
	*s = tmp
	return nil
}
