package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOLSExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	a, b, rss := OLS(x, y)
	approx(t, a, 1, 1e-10, "intercept")
	approx(t, b, 2, 1e-10, "slope")
	approx(t, rss, 0, 1e-10, "rss")
}

func TestOLSConstantSeries(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 4, 4}
	a, b, _ := OLS(x, y)
	approx(t, a, 4, 1e-10, "intercept of constant")
	approx(t, b, 0, 1e-10, "slope of constant")
}

func TestOLSDegenerateInputs(t *testing.T) {
	if a, b, rss := OLS(nil, nil); a != 0 || b != 0 || rss != 0 {
		t.Error("empty input should return zeros")
	}
	// All x identical: slope undefined -> 0, intercept = mean.
	a, b, _ := OLS([]float64{2, 2, 2}, []float64{1, 2, 3})
	approx(t, a, 2, 1e-10, "degenerate intercept")
	approx(t, b, 0, 1e-10, "degenerate slope")
}

func TestSlidingTrendMatchesOLSWithinWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	st := NewSlidingTrend(8)
	var xs, ys []float64
	for i := 1; i <= 8; i++ {
		v := 0.5*float64(i) + rng.NormFloat64()*0.1
		st.Add(v)
		xs = append(xs, float64(i))
		ys = append(ys, v)
	}
	_, beta, _ := OLS(xs, ys)
	approx(t, st.Slope(), beta, 1e-9, "incremental slope vs OLS")
}

func TestSlidingTrendEviction(t *testing.T) {
	st := NewSlidingTrend(4)
	// Feed a ramp then a plateau; after the window slides fully onto the
	// plateau the slope must be ~0.
	for i := 0; i < 4; i++ {
		st.Add(float64(i))
	}
	if st.Slope() <= 0.9 {
		t.Fatalf("ramp slope = %v, want ~1", st.Slope())
	}
	for i := 0; i < 8; i++ {
		st.Add(10)
	}
	approx(t, st.Slope(), 0, 1e-9, "plateau slope after eviction")
	if st.Count() != 4 {
		t.Fatalf("window count = %d, want 4", st.Count())
	}
	approx(t, st.Mean(), 10, 1e-9, "plateau mean")
}

func TestSlidingTrendEvictionMatchesOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	st := NewSlidingTrend(6)
	var all []float64
	for i := 0; i < 40; i++ {
		v := rng.Float64() * 10
		st.Add(v)
		all = append(all, v)
	}
	// Compare against OLS on the last 6 points with absolute time indices.
	xs := make([]float64, 6)
	ys := make([]float64, 6)
	for i := 0; i < 6; i++ {
		xs[i] = float64(35 + i)
		ys[i] = all[34+i]
	}
	_, beta, _ := OLS(xs, ys)
	approx(t, st.Slope(), beta, 1e-9, "slope after many evictions")
}

func TestSlidingTrendSetWindow(t *testing.T) {
	st := NewSlidingTrend(8)
	for i := 0; i < 8; i++ {
		st.Add(float64(i))
	}
	st.SetWindow(4)
	if st.Window() != 4 {
		t.Fatalf("window = %d, want 4", st.Window())
	}
	if st.Count() != 4 {
		t.Fatalf("count after shrink = %d, want 4", st.Count())
	}
	// The retained points are the most recent four: 4,5,6,7 -> slope 1.
	approx(t, st.Slope(), 1, 1e-9, "slope preserved after shrink")
	st.SetWindow(16)
	if st.Window() != 16 || st.Count() != 4 {
		t.Fatalf("grow should retain history: window=%d count=%d", st.Window(), st.Count())
	}
}

func TestSlidingTrendValuesOrder(t *testing.T) {
	st := NewSlidingTrend(3)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		st.Add(v)
	}
	vals := st.Values()
	want := []float64{3, 4, 5}
	if len(vals) != 3 {
		t.Fatalf("values len = %d", len(vals))
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("values = %v, want %v", vals, want)
		}
	}
}

func TestSlidingTrendSlopeFiniteProperty(t *testing.T) {
	f := func(raw []float64) bool {
		st := NewSlidingTrend(5)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			st.Add(math.Mod(v, 1e6))
			s := st.Slope()
			if math.IsNaN(s) || math.IsInf(s, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
