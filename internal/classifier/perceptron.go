// Package classifier implements the shared base learner of the paper's
// experiments: an Adaptive Cost-Sensitive Perceptron Tree in the spirit of
// Krawczyk & Skryjomski (ECML-PKDD 2017) — a streaming Hoeffding-style
// decision tree whose leaves hold cost-sensitive multiclass perceptrons. The
// classifier is deliberately dependent on an attached drift detector for
// adaptation: on a global drift signal it rebuilds, and on a local
// (per-class) signal it re-initializes only the affected class weights, so
// the quality a detector delivers is directly visible in the prequential
// metrics.
package classifier

import (
	"math"
	"math/rand"
)

// CostSensitivePerceptron is an online multiclass perceptron whose update
// magnitude is scaled inversely with the (decayed) frequency of the true
// class, boosting minority-class plasticity — the skew-insensitivity the
// paper requires from the base learner.
type CostSensitivePerceptron struct {
	// LearningRate is the base step (default 0.1).
	LearningRate float64
	// Decay is the class-frequency decay per observation (default 0.999).
	Decay float64

	classes  int
	features int
	w        [][]float64 // [class][feature+1], last entry is the bias
	counts   []float64   // decayed per-class counts
	total    float64
	scratch  []float64
}

// NewCostSensitivePerceptron builds a perceptron for the given shape.
func NewCostSensitivePerceptron(features, classes int, seed int64) *CostSensitivePerceptron {
	p := &CostSensitivePerceptron{
		LearningRate: 0.1,
		Decay:        0.999,
		classes:      classes,
		features:     features,
	}
	p.init(seed)
	return p
}

func (p *CostSensitivePerceptron) init(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	p.w = make([][]float64, p.classes)
	for k := range p.w {
		p.w[k] = make([]float64, p.features+1)
		for i := range p.w[k] {
			p.w[k][i] = (rng.Float64() - 0.5) * 0.02
		}
	}
	p.counts = make([]float64, p.classes)
	p.total = 0
	p.scratch = make([]float64, p.classes)
}

// RawScores writes the per-class linear scores for x into dst.
func (p *CostSensitivePerceptron) RawScores(x []float64, dst []float64) []float64 {
	if cap(dst) < p.classes {
		dst = make([]float64, p.classes)
	}
	dst = dst[:p.classes]
	for k := 0; k < p.classes; k++ {
		s := p.w[k][p.features]
		wk := p.w[k]
		for i, xi := range x {
			s += wk[i] * xi
		}
		dst[k] = s
	}
	return dst
}

// Predict returns the argmax class and softmax-normalized scores. The
// returned slice is reused across calls; callers must copy to retain it.
func (p *CostSensitivePerceptron) Predict(x []float64) (int, []float64) {
	scores := p.RawScores(x, p.scratch)
	p.scratch = scores
	best, bestV := 0, math.Inf(-1)
	for k, s := range scores {
		if s > bestV {
			best, bestV = k, s
		}
	}
	// Softmax with max subtraction for stability.
	sum := 0.0
	for k, s := range scores {
		e := math.Exp(s - bestV)
		scores[k] = e
		sum += e
	}
	for k := range scores {
		scores[k] /= sum
	}
	return best, scores
}

// classCost returns the cost multiplier of class k: total/(K*n_k), the
// balanced-class weight.
func (p *CostSensitivePerceptron) classCost(k int) float64 {
	if p.counts[k] <= 0 || p.total <= 0 {
		return 1
	}
	c := p.total / (float64(p.classes) * p.counts[k])
	if c > 100 {
		c = 100
	}
	return c
}

// Train performs one cost-sensitive perceptron update.
func (p *CostSensitivePerceptron) Train(x []float64, y int) {
	if y < 0 || y >= p.classes {
		return
	}
	for k := range p.counts {
		p.counts[k] *= p.Decay
	}
	p.total = p.total*p.Decay + 1
	p.counts[y]++

	scores := p.RawScores(x, p.scratch)
	p.scratch = scores
	pred, bestV := 0, math.Inf(-1)
	for k, s := range scores {
		if s > bestV {
			pred, bestV = k, s
		}
	}
	if pred == y {
		return
	}
	eta := p.LearningRate * p.classCost(y)
	// The losing class's weights are pushed down more gently when it is a
	// minority class: without this, long majority-dominated stretches erode
	// minority boundaries (catastrophic interference under extreme skew).
	etaNeg := eta
	if cp := p.classCost(pred); cp > 1 {
		etaNeg = eta / cp
	}
	wy, wp := p.w[y], p.w[pred]
	for i, xi := range x {
		wy[i] += eta * xi
		wp[i] -= etaNeg * xi
	}
	wy[p.features] += eta
	wp[p.features] -= etaNeg
}

// ResetClass re-initializes the weights and statistics of a single class,
// used on local drift signals.
func (p *CostSensitivePerceptron) ResetClass(k int, seed int64) {
	if k < 0 || k >= p.classes {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range p.w[k] {
		p.w[k][i] = (rng.Float64() - 0.5) * 0.02
	}
	p.counts[k] = 0
}

// Clone returns a deep copy (used when a leaf splits).
func (p *CostSensitivePerceptron) Clone() *CostSensitivePerceptron {
	cp := &CostSensitivePerceptron{
		LearningRate: p.LearningRate,
		Decay:        p.Decay,
		classes:      p.classes,
		features:     p.features,
		total:        p.total,
	}
	cp.w = make([][]float64, p.classes)
	for k := range p.w {
		cp.w[k] = append([]float64(nil), p.w[k]...)
	}
	cp.counts = append([]float64(nil), p.counts...)
	cp.scratch = make([]float64, p.classes)
	return cp
}
