package classifier

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlob emits instances from two well-separated Gaussian blobs.
func twoBlob(rng *rand.Rand) ([]float64, int) {
	y := rng.Intn(2)
	base := 0.2
	if y == 1 {
		base = 0.8
	}
	x := make([]float64, 4)
	for i := range x {
		x[i] = base + rng.NormFloat64()*0.05
	}
	return x, y
}

func TestPerceptronLearnsSeparableProblem(t *testing.T) {
	p := NewCostSensitivePerceptron(4, 2, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		x, y := twoBlob(rng)
		p.Train(x, y)
	}
	correct := 0
	for i := 0; i < 500; i++ {
		x, y := twoBlob(rng)
		pred, _ := p.Predict(x)
		if pred == y {
			correct++
		}
	}
	if correct < 480 {
		t.Fatalf("accuracy %d/500 on separable blobs", correct)
	}
}

func TestPerceptronScoresAreDistribution(t *testing.T) {
	p := NewCostSensitivePerceptron(3, 4, 1)
	_, scores := p.Predict([]float64{0.1, 0.5, 0.9})
	sum := 0.0
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score out of range: %v", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scores sum to %v", sum)
	}
}

func TestPerceptronCostFavorsMinority(t *testing.T) {
	p := NewCostSensitivePerceptron(4, 2, 3)
	// 50:1 imbalance.
	for i := 0; i < 500; i++ {
		y := 0
		if i%50 == 0 {
			y = 1
		}
		p.counts[y]++
		p.total++
	}
	if p.classCost(1) <= p.classCost(0) {
		t.Fatalf("minority cost %v should exceed majority cost %v", p.classCost(1), p.classCost(0))
	}
	if p.classCost(0) > 1.01 {
		t.Fatalf("majority cost %v should be at most ~1", p.classCost(0))
	}
}

func TestPerceptronMinorityRecallUnderImbalance(t *testing.T) {
	p := NewCostSensitivePerceptron(4, 2, 4)
	rng := rand.New(rand.NewSource(5))
	gen := func() ([]float64, int) {
		y := 0
		if rng.Float64() < 0.03 { // 3% minority
			y = 1
		}
		base := 0.25
		if y == 1 {
			base = 0.75
		}
		x := make([]float64, 4)
		for i := range x {
			x[i] = base + rng.NormFloat64()*0.08
		}
		return x, y
	}
	for i := 0; i < 20000; i++ {
		x, y := gen()
		p.Train(x, y)
	}
	hits, total := 0, 0
	for i := 0; i < 20000; i++ {
		x, y := gen()
		if y != 1 {
			continue
		}
		total++
		if pred, _ := p.Predict(x); pred == 1 {
			hits++
		}
	}
	if total == 0 {
		t.Skip("no minority samples drawn")
	}
	recall := float64(hits) / float64(total)
	if recall < 0.9 {
		t.Fatalf("minority recall %v under 3%% imbalance", recall)
	}
}

func TestPerceptronResetClass(t *testing.T) {
	p := NewCostSensitivePerceptron(4, 3, 6)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		p.Train(x, rng.Intn(3))
	}
	before := append([]float64(nil), p.w[1]...)
	p.ResetClass(1, 99)
	changed := false
	for i := range before {
		if p.w[1][i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("ResetClass did not change the weights")
	}
	if p.counts[1] != 0 {
		t.Fatal("ResetClass should clear the class count")
	}
	// Out-of-range class is a no-op.
	p.ResetClass(99, 1)
}

func TestPerceptronClone(t *testing.T) {
	p := NewCostSensitivePerceptron(3, 2, 8)
	p.Train([]float64{0.1, 0.2, 0.3}, 1)
	cp := p.Clone()
	cp.Train([]float64{0.9, 0.9, 0.9}, 0)
	cp.w[0][0] = 42
	if p.w[0][0] == 42 {
		t.Fatal("clone shares weight storage")
	}
}

func TestTreeLearnsXorStyleProblem(t *testing.T) {
	// A problem a single linear model cannot solve: label = quadrant parity.
	tree := NewPerceptronTree(2, 2, 9)
	tree.GracePeriod = 100
	rng := rand.New(rand.NewSource(10))
	gen := func() ([]float64, int) {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if (x[0] > 0.5) != (x[1] > 0.5) {
			y = 1
		}
		return x, y
	}
	for i := 0; i < 20000; i++ {
		x, y := gen()
		tree.Train(x, y)
	}
	correct := 0
	const n = 2000
	for i := 0; i < n; i++ {
		x, y := gen()
		if pred, _ := tree.Predict(x); pred == y {
			correct++
		}
	}
	acc := float64(correct) / n
	if acc < 0.8 {
		t.Fatalf("XOR accuracy %v; tree did not split usefully (leaves=%d)", acc, tree.Leaves())
	}
	if tree.Leaves() < 2 {
		t.Fatal("tree never split")
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	tree := NewPerceptronTree(3, 3, 11)
	tree.MaxDepth = 2
	tree.GracePeriod = 50
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 10000; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		tree.Train(x, rng.Intn(3))
	}
	if d := tree.Depth(); d > 2 {
		t.Fatalf("depth %d exceeds max 2", d)
	}
}

func TestTreeReset(t *testing.T) {
	tree := NewPerceptronTree(2, 2, 13)
	tree.GracePeriod = 50
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 5000; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if x[0] > 0.5 {
			y = 1
		}
		tree.Train(x, y)
	}
	tree.Reset()
	if tree.Leaves() != 1 || tree.Depth() != 0 {
		t.Fatal("reset should produce a single-leaf tree")
	}
}

func TestTreeResetClassesKeepsOthers(t *testing.T) {
	tree := NewPerceptronTree(4, 3, 15)
	rng := rand.New(rand.NewSource(16))
	gen := func() ([]float64, int) {
		y := rng.Intn(3)
		x := make([]float64, 4)
		for i := range x {
			x[i] = float64(y)/3 + 0.15 + rng.NormFloat64()*0.04
		}
		return x, y
	}
	for i := 0; i < 10000; i++ {
		x, y := gen()
		tree.Train(x, y)
	}
	accOf := func(class int) float64 {
		hit, tot := 0, 0
		for i := 0; i < 3000; i++ {
			x, y := gen()
			if y != class {
				continue
			}
			tot++
			if pred, _ := tree.Predict(x); pred == y {
				hit++
			}
		}
		return float64(hit) / float64(tot)
	}
	acc0Before := accOf(0)
	tree.ResetClasses([]int{2})
	if acc0 := accOf(0); acc0 < acc0Before-0.15 {
		t.Fatalf("resetting class 2 damaged class 0: %v -> %v", acc0Before, acc0)
	}
}

func TestTreePredictScoresValidProperty(t *testing.T) {
	tree := NewPerceptronTree(3, 4, 17)
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 2000; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		tree.Train(x, rng.Intn(4))
	}
	f := func(a, b, c float64) bool {
		x := []float64{clampUnit(a), clampUnit(b), clampUnit(c)}
		pred, scores := tree.Predict(x)
		if pred < 0 || pred >= 4 {
			return false
		}
		sum := 0.0
		for _, s := range scores {
			if s < 0 || math.IsNaN(s) {
				return false
			}
			sum += s
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTreeIgnoresInvalidLabels(t *testing.T) {
	tree := NewPerceptronTree(2, 2, 19)
	tree.Train([]float64{0.5, 0.5}, -1)
	tree.Train([]float64{0.5, 0.5}, 99)
	// No panic and no learning from garbage.
	if tree.Leaves() != 1 {
		t.Fatal("invalid labels should not grow the tree")
	}
}

func clampUnit(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	return math.Abs(math.Mod(v, 1))
}
