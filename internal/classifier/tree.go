package classifier

import (
	"math"

	"rbmim/internal/stats"
)

// PerceptronTree is the Adaptive Cost-Sensitive Perceptron Tree: a streaming
// binary decision tree grown with the Hoeffding bound whose leaves each hold
// a cost-sensitive multiclass perceptron. Internal nodes route on a single
// feature threshold chosen to maximize Gini reduction estimated from
// per-class Gaussian feature summaries.
type PerceptronTree struct {
	// GracePeriod is the number of leaf observations between split attempts
	// (default 200).
	GracePeriod int
	// SplitConfidence is the Hoeffding bound delta (default 1e-6).
	SplitConfidence float64
	// TieThreshold forces a split when the top-two merits are this close
	// (default 0.05).
	TieThreshold float64
	// MaxDepth bounds tree growth (default 6).
	MaxDepth int

	features, classes int
	seed              int64
	root              *ptNode
	nextSeed          int64
}

type ptNode struct {
	// Internal node routing.
	feature   int
	threshold float64
	left      *ptNode
	right     *ptNode

	// Leaf payload.
	perceptron *CostSensitivePerceptron
	depth      int
	seen       int
	sinceSplit int
	// Per-class Gaussian summaries per feature for split selection.
	counts []float64   // [class]
	sum    [][]float64 // [class][feature]
	sumSq  [][]float64 // [class][feature]
}

// NewPerceptronTree builds an empty tree for the given shape.
func NewPerceptronTree(features, classes int, seed int64) *PerceptronTree {
	t := &PerceptronTree{
		GracePeriod:     200,
		SplitConfidence: 1e-6,
		TieThreshold:    0.05,
		MaxDepth:        6,
		features:        features,
		classes:         classes,
		seed:            seed,
		nextSeed:        seed,
	}
	t.root = t.newLeaf(0)
	return t
}

func (t *PerceptronTree) newLeaf(depth int) *ptNode {
	t.nextSeed++
	n := &ptNode{
		perceptron: NewCostSensitivePerceptron(t.features, t.classes, t.nextSeed),
		depth:      depth,
		counts:     make([]float64, t.classes),
		sum:        make([][]float64, t.classes),
		sumSq:      make([][]float64, t.classes),
	}
	for k := 0; k < t.classes; k++ {
		n.sum[k] = make([]float64, t.features)
		n.sumSq[k] = make([]float64, t.features)
	}
	return n
}

// Classes returns the class count the tree was built for.
func (t *PerceptronTree) Classes() int { return t.classes }

// Features returns the feature count the tree was built for.
func (t *PerceptronTree) Features() int { return t.features }

// leafFor routes x to its leaf.
func (t *PerceptronTree) leafFor(x []float64) *ptNode {
	n := t.root
	for n.left != nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// Predict returns the predicted class and per-class posterior scores for x.
// The score slice is owned by the leaf's perceptron and valid until the next
// call; copy to retain.
func (t *PerceptronTree) Predict(x []float64) (int, []float64) {
	return t.leafFor(x).perceptron.Predict(x)
}

// Train consumes one labeled instance, updating the routed leaf and
// attempting a split when the grace period has elapsed.
func (t *PerceptronTree) Train(x []float64, y int) {
	if y < 0 || y >= t.classes {
		return
	}
	leaf := t.leafFor(x)
	leaf.perceptron.Train(x, y)
	leaf.seen++
	leaf.sinceSplit++
	leaf.counts[y]++
	for i, xi := range x {
		leaf.sum[y][i] += xi
		leaf.sumSq[y][i] += xi * xi
	}
	if leaf.sinceSplit >= t.GracePeriod && leaf.depth < t.MaxDepth {
		t.trySplit(leaf)
		leaf.sinceSplit = 0
	}
}

// trySplit evaluates candidate single-feature splits with the Hoeffding
// bound and converts the leaf into an internal node when one wins.
func (t *PerceptronTree) trySplit(leaf *ptNode) {
	total := 0.0
	for _, c := range leaf.counts {
		total += c
	}
	if total < float64(2*t.classes) {
		return
	}
	baseGini := giniFromCounts(leaf.counts, total)
	best, second := -1.0, -1.0
	bestFeat, bestThr := -1, 0.0
	for f := 0; f < t.features; f++ {
		thr, merit := t.splitMerit(leaf, f, total, baseGini)
		if merit > best {
			second = best
			best, bestFeat, bestThr = merit, f, thr
		} else if merit > second {
			second = merit
		}
	}
	if bestFeat < 0 || best <= 0 {
		return
	}
	eps := stats.HoeffdingBound(1.0, t.SplitConfidence, total)
	if best-second > eps || eps < t.TieThreshold {
		left := t.newLeaf(leaf.depth + 1)
		right := t.newLeaf(leaf.depth + 1)
		// Children inherit the parent's perceptron so accuracy does not
		// collapse on split.
		left.perceptron = leaf.perceptron.Clone()
		right.perceptron = leaf.perceptron.Clone()
		leaf.feature = bestFeat
		leaf.threshold = bestThr
		leaf.left, leaf.right = left, right
		leaf.perceptron = nil
		leaf.counts, leaf.sum, leaf.sumSq = nil, nil, nil
	}
}

// splitMerit estimates the Gini reduction of splitting on feature f at the
// class-weighted mean threshold, using the Gaussian summaries.
func (t *PerceptronTree) splitMerit(leaf *ptNode, f int, total, baseGini float64) (thr, merit float64) {
	// Candidate threshold: overall mean of the feature.
	sum := 0.0
	for k := 0; k < t.classes; k++ {
		sum += leaf.sum[k][f]
	}
	thr = sum / total
	// Estimate per-class mass on each side via the Gaussian CDF.
	leftCounts := make([]float64, t.classes)
	rightCounts := make([]float64, t.classes)
	var leftTotal, rightTotal float64
	for k := 0; k < t.classes; k++ {
		c := leaf.counts[k]
		if c == 0 {
			continue
		}
		mean := leaf.sum[k][f] / c
		variance := leaf.sumSq[k][f]/c - mean*mean
		if variance < 1e-8 {
			variance = 1e-8
		}
		pLeft := stats.NormalCDF((thr - mean) / math.Sqrt(variance))
		leftCounts[k] = c * pLeft
		rightCounts[k] = c * (1 - pLeft)
		leftTotal += leftCounts[k]
		rightTotal += rightCounts[k]
	}
	if leftTotal < 1 || rightTotal < 1 {
		return thr, 0
	}
	after := leftTotal/total*giniFromCounts(leftCounts, leftTotal) +
		rightTotal/total*giniFromCounts(rightCounts, rightTotal)
	return thr, baseGini - after
}

func giniFromCounts(counts []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / total
		g -= p * p
	}
	return g
}

// Reset discards the whole tree — the global-drift adaptation.
func (t *PerceptronTree) Reset() {
	t.root = t.newLeaf(0)
}

// ResetClasses re-initializes the given classes' perceptron weights in every
// leaf — the local-drift adaptation that preserves knowledge of unaffected
// classes.
func (t *PerceptronTree) ResetClasses(classes []int) {
	var walk func(n *ptNode)
	walk = func(n *ptNode) {
		if n == nil {
			return
		}
		if n.left == nil {
			for _, k := range classes {
				t.nextSeed++
				n.perceptron.ResetClass(k, t.nextSeed)
				if n.counts != nil && k >= 0 && k < len(n.counts) {
					n.counts[k] = 0
					for i := range n.sum[k] {
						n.sum[k][i], n.sumSq[k][i] = 0, 0
					}
				}
			}
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
}

// Leaves returns the number of leaves (for tests and diagnostics).
func (t *PerceptronTree) Leaves() int {
	var count func(n *ptNode) int
	count = func(n *ptNode) int {
		if n == nil {
			return 0
		}
		if n.left == nil {
			return 1
		}
		return count(n.left) + count(n.right)
	}
	return count(t.root)
}

// Depth returns the maximum depth of the tree.
func (t *PerceptronTree) Depth() int {
	var depth func(n *ptNode) int
	depth = func(n *ptNode) int {
		if n == nil || n.left == nil {
			return 0
		}
		l, r := depth(n.left), depth(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(t.root)
}
