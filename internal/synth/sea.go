package synth

import (
	"math/rand"

	"rbmim/internal/stream"
)

// SEA is a multi-class generalization of the SEA concepts generator
// (Street & Kim 2001): instances are uniform over [0,1]^d, and the label is
// the bin of x[0]+x[1] under concept-specific thresholds. It is not part of
// the paper's benchmark table but is provided as an extra family for tests,
// examples, and ablation benches — its two-feature decision rule makes
// detector behaviour easy to reason about.
type SEA struct {
	cfg Config
	// Offset shifts the thresholds; different offsets are different
	// concepts.
	Offset float64

	rng    *rand.Rand
	breaks []float64
}

// NewSEA builds a SEA concept with the given threshold offset.
func NewSEA(cfg Config, offset float64) (*SEA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Features < 2 {
		cfg.Features = 2
	}
	s := &SEA{cfg: cfg, Offset: offset}
	s.init()
	return s, nil
}

func (s *SEA) init() {
	s.rng = rand.New(rand.NewSource(s.cfg.Seed))
	K := s.cfg.Classes
	s.breaks = make([]float64, K-1)
	for i := range s.breaks {
		// x0+x1 spans [0,2]; spread breakpoints across it, shifted by the
		// concept offset.
		s.breaks[i] = 2*float64(i+1)/float64(K) + s.Offset
	}
}

// Schema describes the unit-cube feature space.
func (s *SEA) Schema() stream.Schema {
	return unitSchema(s.cfg.Features, s.cfg.Classes)
}

// Next draws x uniformly and bins x[0]+x[1].
func (s *SEA) Next() stream.Instance {
	x := make([]float64, s.cfg.Features)
	for i := range x {
		x[i] = s.rng.Float64()
	}
	sum := x[0] + x[1]
	y := len(s.breaks)
	for i, b := range s.breaks {
		if sum < b {
			y = i
			break
		}
	}
	y = maybeFlip(s.rng, y, s.cfg.Classes, s.cfg.Noise)
	return stream.Instance{X: x, Y: y, Weight: 1}
}

// Restart re-seeds the concept.
func (s *SEA) Restart() { s.init() }
