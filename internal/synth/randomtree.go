package synth

import (
	"math/rand"

	"rbmim/internal/stream"
)

// RandomTree labels uniform random feature vectors by a randomly grown
// binary decision tree whose leaves carry class labels (round-robin across
// classes so every class is reachable). A new seed grows a new tree — a new
// concept — so sudden drift is composed via stream.DriftStream, matching the
// paper's RandomTree5/10/20 streams.
type RandomTree struct {
	cfg Config
	// Depth is the maximum tree depth (default 2 + log2(classes)).
	Depth int

	rng  *rand.Rand
	root *rtNode
	leaf int // round-robin label assignment counter
}

type rtNode struct {
	feature     int
	threshold   float64
	label       int
	left, right *rtNode
}

// NewRandomTree builds a random-tree concept. depth <= 0 picks a default
// deep enough to host every class.
func NewRandomTree(cfg Config, depth int) (*RandomTree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if depth <= 0 {
		depth = 3
		for 1<<depth < 2*cfg.Classes {
			depth++
		}
	}
	t := &RandomTree{cfg: cfg, Depth: depth}
	t.init()
	return t, nil
}

func (t *RandomTree) init() {
	t.rng = rand.New(rand.NewSource(t.cfg.Seed))
	t.leaf = 0
	t.root = t.grow(0)
}

func (t *RandomTree) grow(depth int) *rtNode {
	if depth >= t.Depth || (depth > 2 && t.rng.Float64() < 0.15) {
		n := &rtNode{label: t.leaf % t.cfg.Classes}
		t.leaf++
		return n
	}
	n := &rtNode{
		feature:   t.rng.Intn(t.cfg.Features),
		threshold: 0.1 + 0.8*t.rng.Float64(),
	}
	n.left = t.grow(depth + 1)
	n.right = t.grow(depth + 1)
	return n
}

// Schema describes the unit-cube feature space.
func (t *RandomTree) Schema() stream.Schema {
	return unitSchema(t.cfg.Features, t.cfg.Classes)
}

// Next draws x uniformly and labels it by tree traversal.
func (t *RandomTree) Next() stream.Instance {
	x := make([]float64, t.cfg.Features)
	for i := range x {
		x[i] = t.rng.Float64()
	}
	n := t.root
	for n.left != nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	y := maybeFlip(t.rng, n.label, t.cfg.Classes, t.cfg.Noise)
	return stream.Instance{X: x, Y: y, Weight: 1}
}

// Restart regrows the identical tree from the seed.
func (t *RandomTree) Restart() { t.init() }
