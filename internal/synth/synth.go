// Package synth provides multi-class re-implementations of the stream
// generators used in the paper's artificial benchmarks: Agrawal, Hyperplane,
// RBF, and RandomTree (plus a SEA extra), each parameterized by feature and
// class count and fully seeded. Concepts are first-class: a generator can be
// instantiated per concept and composed with stream.DriftStream /
// stream.MultiDriftStream, and Hyperplane and Agrawal additionally support
// in-place incremental morphing via stream.Interpolatable.
package synth

import (
	"fmt"
	"math/rand"

	"rbmim/internal/stream"
)

// Config carries the shared generator parameters.
type Config struct {
	// Features is the dimensionality d.
	Features int
	// Classes is the number of labels K.
	Classes int
	// Seed drives every random choice of the generator.
	Seed int64
	// Noise is the probability that an emitted label is replaced by a
	// uniformly random one (label noise).
	Noise float64
}

// Validate checks the shared parameters.
func (c Config) Validate() error {
	if c.Features < 1 {
		return fmt.Errorf("synth: need at least 1 feature, got %d", c.Features)
	}
	if c.Classes < 2 {
		return fmt.Errorf("synth: need at least 2 classes, got %d", c.Classes)
	}
	if c.Noise < 0 || c.Noise > 1 {
		return fmt.Errorf("synth: noise must be in [0,1], got %v", c.Noise)
	}
	return nil
}

// unitSchema returns a schema with [0,1] bounds on every feature.
func unitSchema(features, classes int) stream.Schema {
	mn := make([]float64, features)
	mx := make([]float64, features)
	for i := range mx {
		mx[i] = 1
	}
	return stream.Schema{Features: features, Classes: classes, Min: mn, Max: mx}
}

// maybeFlip applies label noise.
func maybeFlip(rng *rand.Rand, y, classes int, noise float64) int {
	if noise > 0 && rng.Float64() < noise {
		return rng.Intn(classes)
	}
	return y
}
