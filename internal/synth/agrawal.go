package synth

import (
	"math"
	"math/rand"

	"rbmim/internal/stream"
)

// Agrawal is a multi-class generalization of the classic Agrawal loan
// generator. The first nine features keep their original semantics (salary,
// commission, age, education level, car, zip code, house value, years owned,
// loan amount), min-max scaled to [0,1]; any further features are
// uninformative noise, mirroring how the paper widens the stream to 20/40/80
// features. The concept is one of ten scoring functions built from the
// semantic attributes; the score is binned into K classes by fixed quantile
// breakpoints. Changing the function index changes the concept, and
// SetProgress blends two functions' scores for true incremental drift — the
// Aggrawal5/10/20 streams of Table I use exactly that.
type Agrawal struct {
	cfg Config
	// Function selects the active scoring function in [0, 9].
	Function int

	rng    *rand.Rand
	target int     // function blended toward under SetProgress
	alpha  float64 // blend progress
	breaks []float64
}

// NewAgrawal builds an Agrawal concept with the given scoring function
// (0..9). The drift target defaults to (function+1) mod 10.
func NewAgrawal(cfg Config, function int) (*Agrawal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Features < 9 {
		cfg.Features = 9
	}
	if function < 0 || function > 9 {
		function = 0
	}
	a := &Agrawal{cfg: cfg, Function: function, target: (function + 1) % 10}
	a.init()
	return a, nil
}

func (a *Agrawal) init() {
	a.rng = rand.New(rand.NewSource(a.cfg.Seed))
	a.alpha = 0
	// Equal-width breakpoints over the score range [0,1]; scores are
	// constructed to be roughly uniform so classes are balanced before the
	// imbalance wrapper reshapes them.
	K := a.cfg.Classes
	a.breaks = make([]float64, K-1)
	for i := range a.breaks {
		a.breaks[i] = float64(i+1) / float64(K)
	}
}

// SetDriftTarget picks the function blended toward during incremental drift.
func (a *Agrawal) SetDriftTarget(function int) {
	if function >= 0 && function <= 9 {
		a.target = function
	}
}

// SetProgress blends the active function's score with the drift target's
// (stream.Interpolatable).
func (a *Agrawal) SetProgress(alpha float64) {
	if alpha < 0 {
		alpha = 0
	} else if alpha > 1 {
		alpha = 1
	}
	a.alpha = alpha
}

// Schema describes the feature space ([0,1] after scaling).
func (a *Agrawal) Schema() stream.Schema {
	return unitSchema(a.cfg.Features, a.cfg.Classes)
}

// Next synthesizes the semantic attributes, scores them under the (possibly
// blended) concept, and bins the score into a class.
func (a *Agrawal) Next() stream.Instance {
	x := make([]float64, a.cfg.Features)
	// Semantic attributes, already scaled to [0,1]:
	salary := a.rng.Float64()             // 20k..150k scaled
	commission := a.rng.Float64()         // 0..75k scaled
	age := a.rng.Float64()                // 20..80 scaled
	elevel := float64(a.rng.Intn(5)) / 4  // education level 0..4
	car := float64(a.rng.Intn(20)) / 19   // make of car 1..20
	zipcode := float64(a.rng.Intn(9)) / 8 // zip code 0..8
	hvalue := a.rng.Float64()             // house value scaled
	hyears := a.rng.Float64()             // years owned scaled
	loan := a.rng.Float64()               // loan amount scaled
	x[0], x[1], x[2], x[3], x[4] = salary, commission, age, elevel, car
	x[5], x[6], x[7], x[8] = zipcode, hvalue, hyears, loan
	for i := 9; i < a.cfg.Features; i++ {
		x[i] = a.rng.Float64()
	}
	score := a.score(a.Function, x)
	if a.alpha > 0 {
		score = (1-a.alpha)*score + a.alpha*a.score(a.target, x)
	}
	y := a.bin(score)
	y = maybeFlip(a.rng, y, a.cfg.Classes, a.cfg.Noise)
	return stream.Instance{X: x, Y: y, Weight: 1}
}

// score maps the semantic attributes to [0,1] under one of ten functions.
// Each echoes the flavor of the original Agrawal predicates (age/salary
// bands, education, house equity) while producing a continuous value
// suitable for K-way binning.
func (a *Agrawal) score(fn int, x []float64) float64 {
	salary, commission, age, elevel := x[0], x[1], x[2], x[3]
	car, zipcode, hvalue, hyears, loan := x[4], x[5], x[6], x[7], x[8]
	equity := hvalue * hyears
	var s float64
	switch fn {
	case 0:
		s = 0.6*age + 0.4*salary
	case 1:
		s = 0.5*salary + 0.3*commission + 0.2*elevel
	case 2:
		s = 0.4*age + 0.3*elevel + 0.3*zipcode
	case 3:
		s = 0.5*equity + 0.3*salary + 0.2*age
	case 4:
		s = 0.45*loan + 0.35*salary + 0.2*hvalue
	case 5:
		s = 0.5*math.Abs(age-salary) + 0.5*commission
	case 6:
		s = 0.4*car + 0.3*salary + 0.3*equity
	case 7:
		s = 0.6*elevel + 0.2*loan + 0.2*age
	case 8:
		s = 0.35*salary + 0.35*hvalue + 0.3*math.Abs(commission-loan)
	default:
		s = 0.3*age + 0.3*equity + 0.2*salary + 0.2*zipcode
	}
	if s < 0 {
		s = 0
	} else if s > 1 {
		s = 1
	}
	return s
}

// bin maps a score to a class via the breakpoints, stretching the score so
// every class has mass.
func (a *Agrawal) bin(score float64) int {
	// Scores concentrate mid-range; apply a mild CDF-like stretch so the
	// extreme classes are populated.
	s := 0.5 + 0.5*math.Tanh(3.5*(score-0.5))
	for i, b := range a.breaks {
		if s < b {
			return i
		}
	}
	return a.cfg.Classes - 1
}

// Restart re-seeds the concept.
func (a *Agrawal) Restart() { a.init() }
