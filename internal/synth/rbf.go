package synth

import (
	"math/rand"

	"rbmim/internal/stream"
)

// RBF is the multi-class radial-basis-function generator: every class owns
// CentroidsPerClass Gaussian centroids inside the unit cube, and instances
// are drawn by picking a class, picking one of its centroids by weight, and
// sampling around it. A freshly seeded RBF is a new concept, so sudden drift
// (the paper's RBF5/10/20 streams) is obtained by composing two instances
// with stream.DriftStream.
type RBF struct {
	cfg Config
	// CentroidsPerClass is the number of Gaussian components per class.
	CentroidsPerClass int
	// Spread is the standard deviation of each component (default 0.07).
	Spread float64

	rng       *rand.Rand
	centroids [][][]float64 // [class][centroid][feature]
	weights   [][]float64   // [class][centroid], normalized
}

// NewRBF builds an RBF concept. centroidsPerClass <= 0 defaults to 3;
// spread <= 0 defaults to 0.07.
func NewRBF(cfg Config, centroidsPerClass int, spread float64) (*RBF, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if centroidsPerClass <= 0 {
		centroidsPerClass = 3
	}
	if spread <= 0 {
		spread = 0.07
	}
	r := &RBF{cfg: cfg, CentroidsPerClass: centroidsPerClass, Spread: spread}
	r.init()
	return r, nil
}

func (r *RBF) init() {
	r.rng = rand.New(rand.NewSource(r.cfg.Seed))
	K, d, c := r.cfg.Classes, r.cfg.Features, r.CentroidsPerClass
	r.centroids = make([][][]float64, K)
	r.weights = make([][]float64, K)
	for k := 0; k < K; k++ {
		r.centroids[k] = make([][]float64, c)
		r.weights[k] = make([]float64, c)
		sum := 0.0
		for j := 0; j < c; j++ {
			cent := make([]float64, d)
			for i := range cent {
				cent[i] = r.rng.Float64()
			}
			r.centroids[k][j] = cent
			w := 0.2 + r.rng.Float64()
			r.weights[k][j] = w
			sum += w
		}
		for j := range r.weights[k] {
			r.weights[k][j] /= sum
		}
	}
}

// Schema describes the unit-cube feature space.
func (r *RBF) Schema() stream.Schema {
	return unitSchema(r.cfg.Features, r.cfg.Classes)
}

// Next draws a class uniformly, then a centroid by weight, then a Gaussian
// sample around it (clamped to [0,1]).
func (r *RBF) Next() stream.Instance {
	k := r.rng.Intn(r.cfg.Classes)
	j := r.pickCentroid(k)
	cent := r.centroids[k][j]
	x := make([]float64, r.cfg.Features)
	for i := range x {
		v := cent[i] + r.rng.NormFloat64()*r.Spread
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		x[i] = v
	}
	y := maybeFlip(r.rng, k, r.cfg.Classes, r.cfg.Noise)
	return stream.Instance{X: x, Y: y, Weight: 1}
}

func (r *RBF) pickCentroid(k int) int {
	u := r.rng.Float64()
	acc := 0.0
	for j, w := range r.weights[k] {
		acc += w
		if u < acc {
			return j
		}
	}
	return len(r.weights[k]) - 1
}

// MoveCentroids displaces every centroid of the given classes by a random
// bounded offset, realizing a *local* real concept drift within this
// generator (used by tests and the class-role demos; the benchmark harness
// uses stream.LocalDriftInjector, which works across all generator families).
func (r *RBF) MoveCentroids(classes []int, magnitude float64) {
	for _, k := range classes {
		if k < 0 || k >= r.cfg.Classes {
			continue
		}
		for _, cent := range r.centroids[k] {
			for i := range cent {
				cent[i] += (r.rng.Float64()*2 - 1) * magnitude
				if cent[i] < 0 {
					cent[i] = 0
				} else if cent[i] > 1 {
					cent[i] = 1
				}
			}
		}
	}
}

// Restart re-seeds the generator to its initial concept.
func (r *RBF) Restart() { r.init() }
