package synth

import (
	"math"
	"math/rand"

	"rbmim/internal/stream"
)

// Hyperplane is the multi-class rotating-hyperplane generator. Each class k
// owns a weight vector w_k; an instance x ~ U[0,1]^d is labeled
// argmax_k (w_k . x + b_k). The concept drifts by rotating the weight
// vectors: continuously (DriftSpeed, the classic MOA behaviour giving
// gradual/incremental streams) and/or by morphing toward a target concept
// through SetProgress (stream.Interpolatable), which DriftStream uses to
// realize true incremental drift with intermediate concepts (Eq. 3).
type Hyperplane struct {
	cfg Config
	// DriftSpeed is the per-instance magnitude of autonomous weight
	// rotation (0 = static concept).
	DriftSpeed float64

	rng     *rand.Rand
	w       [][]float64 // current weights, [classes][features]
	b       []float64
	w0, w1  [][]float64 // endpoints for SetProgress morphing
	b0, b1  []float64
	dir     [][]float64 // autonomous drift direction
	mixed   bool
	scratch []float64
}

// NewHyperplane builds a hyperplane concept from the config. driftSpeed sets
// the autonomous rotation magnitude per instance.
func NewHyperplane(cfg Config, driftSpeed float64) (*Hyperplane, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hyperplane{cfg: cfg, DriftSpeed: driftSpeed}
	h.init()
	return h, nil
}

func (h *Hyperplane) init() {
	h.rng = rand.New(rand.NewSource(h.cfg.Seed))
	K, d := h.cfg.Classes, h.cfg.Features
	h.w = randMatrix(h.rng, K, d, -1, 1)
	h.b = randVector(h.rng, K, -0.2, 0.2)
	h.w0 = cloneMatrix(h.w)
	h.b0 = append([]float64(nil), h.b...)
	// Target concept for interpolation: an independently random rotation.
	h.w1 = randMatrix(h.rng, K, d, -1, 1)
	h.b1 = randVector(h.rng, K, -0.2, 0.2)
	h.dir = randMatrix(h.rng, K, d, -1, 1)
	h.mixed = false
	h.scratch = make([]float64, d)
}

// Schema describes the unit-cube feature space.
func (h *Hyperplane) Schema() stream.Schema {
	return unitSchema(h.cfg.Features, h.cfg.Classes)
}

// SetProgress morphs the concept linearly between its initial weights and an
// independent target concept; alpha in [0,1].
func (h *Hyperplane) SetProgress(alpha float64) {
	if alpha < 0 {
		alpha = 0
	} else if alpha > 1 {
		alpha = 1
	}
	for k := range h.w {
		for i := range h.w[k] {
			h.w[k][i] = (1-alpha)*h.w0[k][i] + alpha*h.w1[k][i]
		}
		h.b[k] = (1-alpha)*h.b0[k] + alpha*h.b1[k]
	}
	h.mixed = true
}

// Next draws x uniformly from the unit cube and labels it by the winning
// class hyperplane, applying autonomous rotation and label noise.
func (h *Hyperplane) Next() stream.Instance {
	d := h.cfg.Features
	x := make([]float64, d)
	for i := range x {
		x[i] = h.rng.Float64()
	}
	best, bestV := 0, math.Inf(-1)
	for k := range h.w {
		v := h.b[k]
		for i := range x {
			v += h.w[k][i] * x[i]
		}
		if v > bestV {
			best, bestV = k, v
		}
	}
	if h.DriftSpeed > 0 {
		for k := range h.w {
			for i := range h.w[k] {
				h.w[k][i] += h.DriftSpeed * h.dir[k][i]
				// Reflect to keep weights bounded.
				if h.w[k][i] > 1.5 || h.w[k][i] < -1.5 {
					h.dir[k][i] = -h.dir[k][i]
				}
			}
		}
	}
	y := maybeFlip(h.rng, best, h.cfg.Classes, h.cfg.Noise)
	return stream.Instance{X: x, Y: y, Weight: 1}
}

// Restart re-seeds the generator to its initial state.
func (h *Hyperplane) Restart() { h.init() }

func randMatrix(rng *rand.Rand, rows, cols int, lo, hi float64) [][]float64 {
	m := make([][]float64, rows)
	for r := range m {
		m[r] = randVector(rng, cols, lo, hi)
	}
	return m
}

func randVector(rng *rand.Rand, n int, lo, hi float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = lo + (hi-lo)*rng.Float64()
	}
	return v
}

func cloneMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}
