package synth

import (
	"math"
	"testing"

	"rbmim/internal/stream"
)

func drawN(s stream.Stream, n int) []stream.Instance {
	out := make([]stream.Instance, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

func checkSchemaConformance(t *testing.T, s stream.Stream, n int) {
	t.Helper()
	sc := s.Schema()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, in := range drawN(s, n) {
		if len(in.X) != sc.Features {
			t.Fatalf("instance %d: %d features, schema says %d", i, len(in.X), sc.Features)
		}
		if in.Y < 0 || in.Y >= sc.Classes {
			t.Fatalf("instance %d: label %d out of [0,%d)", i, in.Y, sc.Classes)
		}
		for j, v := range in.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("instance %d feature %d is %v", i, j, v)
			}
		}
	}
}

func checkRestartDeterminism(t *testing.T, s stream.Stream) {
	t.Helper()
	r, ok := s.(stream.Restartable)
	if !ok {
		t.Fatal("generator must be restartable")
	}
	r.Restart()
	first := drawN(s, 50)
	r.Restart()
	second := drawN(s, 50)
	for i := range first {
		if first[i].Y != second[i].Y {
			t.Fatalf("labels diverge at %d after restart", i)
		}
		for j := range first[i].X {
			if first[i].X[j] != second[i].X[j] {
				t.Fatalf("features diverge at %d after restart", i)
			}
		}
	}
}

func checkClassCoverage(t *testing.T, s stream.Stream, n int) {
	t.Helper()
	sc := s.Schema()
	seen := make([]bool, sc.Classes)
	for _, in := range drawN(s, n) {
		seen[in.Y] = true
	}
	for k, ok := range seen {
		if !ok {
			t.Fatalf("class %d never generated in %d draws", k, n)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Features: 0, Classes: 3},
		{Features: 5, Classes: 1},
		{Features: 5, Classes: 3, Noise: -0.1},
		{Features: 5, Classes: 3, Noise: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	if err := (Config{Features: 5, Classes: 3, Noise: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHyperplaneBasics(t *testing.T) {
	h, err := NewHyperplane(Config{Features: 10, Classes: 4, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkSchemaConformance(t, h, 500)
	checkClassCoverage(t, h, 5000)
	checkRestartDeterminism(t, h)
}

func TestHyperplaneInterpolationChangesConcept(t *testing.T) {
	h, err := NewHyperplane(Config{Features: 10, Classes: 3, Seed: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Labels of fixed inputs should change between alpha=0 and alpha=1 for
	// a reasonable fraction of the space.
	probes := make([][]float64, 300)
	rngStream, _ := NewHyperplane(Config{Features: 10, Classes: 3, Seed: 99}, 0)
	for i := range probes {
		probes[i] = rngStream.Next().X
	}
	label := func(x []float64) int {
		best, bestV := 0, math.Inf(-1)
		for k := range h.w {
			v := h.b[k]
			for i := range x {
				v += h.w[k][i] * x[i]
			}
			if v > bestV {
				best, bestV = k, v
			}
		}
		return best
	}
	h.SetProgress(0)
	before := make([]int, len(probes))
	for i, x := range probes {
		before[i] = label(x)
	}
	h.SetProgress(1)
	changed := 0
	for i, x := range probes {
		if label(x) != before[i] {
			changed++
		}
	}
	if changed < len(probes)/10 {
		t.Fatalf("interpolated concept changed only %d/%d labels", changed, len(probes))
	}
}

func TestHyperplaneAutonomousDrift(t *testing.T) {
	h, err := NewHyperplane(Config{Features: 5, Classes: 2, Seed: 3}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	w0 := h.w[0][0]
	drawN(h, 2000)
	if h.w[0][0] == w0 {
		t.Fatal("autonomous drift should move the weights")
	}
}

func TestRBFBasics(t *testing.T) {
	r, err := NewRBF(Config{Features: 8, Classes: 5, Seed: 4}, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	checkSchemaConformance(t, r, 500)
	checkClassCoverage(t, r, 2000)
	checkRestartDeterminism(t, r)
}

func TestRBFInstancesClusterAroundCentroids(t *testing.T) {
	r, err := NewRBF(Config{Features: 6, Classes: 2, Seed: 5}, 1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// With one centroid per class and tiny spread, the per-class variance
	// must be far below the uniform variance (1/12).
	sums := make([][]float64, 2)
	sqs := make([][]float64, 2)
	counts := make([]float64, 2)
	for k := range sums {
		sums[k] = make([]float64, 6)
		sqs[k] = make([]float64, 6)
	}
	for _, in := range drawN(r, 4000) {
		counts[in.Y]++
		for j, v := range in.X {
			sums[in.Y][j] += v
			sqs[in.Y][j] += v * v
		}
	}
	for k := 0; k < 2; k++ {
		for j := 0; j < 6; j++ {
			mean := sums[k][j] / counts[k]
			variance := sqs[k][j]/counts[k] - mean*mean
			if variance > 0.01 {
				t.Fatalf("class %d feature %d variance %v too high for spread 0.02", k, j, variance)
			}
		}
	}
}

func TestRBFMoveCentroidsChangesDistribution(t *testing.T) {
	r, err := NewRBF(Config{Features: 6, Classes: 3, Seed: 6}, 2, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(class int) []float64 {
		sum := make([]float64, 6)
		n := 0.0
		for _, in := range drawN(r, 6000) {
			if in.Y != class {
				continue
			}
			n++
			for j, v := range in.X {
				sum[j] += v
			}
		}
		for j := range sum {
			sum[j] /= n
		}
		return sum
	}
	before := meanOf(1)
	r.MoveCentroids([]int{1}, 0.5)
	after := meanOf(1)
	dist := 0.0
	for j := range before {
		d := before[j] - after[j]
		dist += d * d
	}
	if math.Sqrt(dist) < 0.05 {
		t.Fatalf("centroid move did not shift the class mean: %v", math.Sqrt(dist))
	}
}

func TestRandomTreeBasics(t *testing.T) {
	rt, err := NewRandomTree(Config{Features: 10, Classes: 6, Seed: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkSchemaConformance(t, rt, 500)
	checkClassCoverage(t, rt, 20000)
	checkRestartDeterminism(t, rt)
}

func TestRandomTreeLabelsAreDeterministicInX(t *testing.T) {
	rt, err := NewRandomTree(Config{Features: 4, Classes: 3, Seed: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two instances with identical features must share a label (noise 0).
	in := rt.Next()
	n := rt.root
	for n.left != nil {
		if in.X[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n.label != in.Y {
		t.Fatal("emitted label must match tree traversal")
	}
}

func TestRandomTreeDifferentSeedsDifferentConcepts(t *testing.T) {
	a, _ := NewRandomTree(Config{Features: 6, Classes: 4, Seed: 1}, 5)
	b, _ := NewRandomTree(Config{Features: 6, Classes: 4, Seed: 2}, 5)
	// Same x through both trees; concepts should disagree somewhere.
	disagree := 0
	for i := 0; i < 200; i++ {
		in := a.Next()
		n := b.root
		for n.left != nil {
			if in.X[n.feature] <= n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
		if n.label != in.Y {
			disagree++
		}
	}
	if disagree == 0 {
		t.Fatal("two random seeds produced identical concepts")
	}
}

func TestAgrawalBasics(t *testing.T) {
	a, err := NewAgrawal(Config{Features: 20, Classes: 5, Seed: 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkSchemaConformance(t, a, 500)
	checkClassCoverage(t, a, 20000)
	checkRestartDeterminism(t, a)
}

func TestAgrawalMinimumFeatures(t *testing.T) {
	a, err := NewAgrawal(Config{Features: 3, Classes: 2, Seed: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema().Features != 9 {
		t.Fatalf("Agrawal should widen to 9 features, got %d", a.Schema().Features)
	}
}

func TestAgrawalFunctionsDiffer(t *testing.T) {
	// The same instance stream binned under different functions should
	// produce different label sequences.
	a0, _ := NewAgrawal(Config{Features: 9, Classes: 4, Seed: 11}, 0)
	a5, _ := NewAgrawal(Config{Features: 9, Classes: 4, Seed: 11}, 5)
	diff := 0
	for i := 0; i < 500; i++ {
		if a0.Next().Y != a5.Next().Y {
			diff++
		}
	}
	if diff < 50 {
		t.Fatalf("functions 0 and 5 nearly identical: %d/500 differ", diff)
	}
}

func TestAgrawalProgressBlendsConcepts(t *testing.T) {
	a, _ := NewAgrawal(Config{Features: 9, Classes: 3, Seed: 12}, 0)
	a.SetDriftTarget(5)
	a.SetProgress(0)
	before := make([]int, 300)
	for i := range before {
		before[i] = a.Next().Y
	}
	a.Restart()
	a.SetProgress(1)
	changed := 0
	for i := range before {
		if a.Next().Y != before[i] {
			changed++
		}
	}
	if changed < 30 {
		t.Fatalf("full progress changed only %d/300 labels", changed)
	}
}

func TestSEABasics(t *testing.T) {
	s, err := NewSEA(Config{Features: 5, Classes: 3, Seed: 13}, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkSchemaConformance(t, s, 500)
	checkClassCoverage(t, s, 5000)
	checkRestartDeterminism(t, s)
}

func TestSEAOffsetShiftsLabels(t *testing.T) {
	s0, _ := NewSEA(Config{Features: 2, Classes: 2, Seed: 14}, 0)
	s1, _ := NewSEA(Config{Features: 2, Classes: 2, Seed: 14}, 0.5)
	diff := 0
	for i := 0; i < 1000; i++ {
		if s0.Next().Y != s1.Next().Y {
			diff++
		}
	}
	if diff < 50 {
		t.Fatalf("offset 0.5 changed only %d/1000 labels", diff)
	}
}

func TestLabelNoiseRate(t *testing.T) {
	noisy, _ := NewRandomTree(Config{Features: 5, Classes: 4, Seed: 15, Noise: 0.3}, 5)
	diff := 0
	const n = 5000
	for i := 0; i < n; i++ {
		in := noisy.Next()
		// Ground truth by tree traversal.
		node := noisy.root
		for node.left != nil {
			if in.X[node.feature] <= node.threshold {
				node = node.left
			} else {
				node = node.right
			}
		}
		if node.label != in.Y {
			diff++
		}
	}
	// 30% of labels are re-drawn uniformly over 4 classes: ~22.5% differ.
	rate := float64(diff) / n
	if rate < 0.15 || rate > 0.30 {
		t.Fatalf("noise rate %v outside expected band [0.15, 0.30]", rate)
	}
}
