package realworld

import (
	"math"
	"testing"

	"rbmim/internal/stream"
)

func TestAllSpecsMatchTableI(t *testing.T) {
	specs := All()
	if len(specs) != 12 {
		t.Fatalf("want 12 real-world benchmarks, got %d", len(specs))
	}
	// Spot-check the Table I rows.
	want := map[string]struct {
		instances, features, classes int
		ir                           float64
	}{
		"Activity-Raw": {1048570, 3, 6, 128.93},
		"Covertype":    {581012, 54, 7, 96.14},
		"IntelSensors": {2219804, 5, 57, 348.26},
		"EEG":          {14980, 14, 2, 29.88},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			continue
		}
		if s.Instances != w.instances || s.Features != w.features || s.Classes != w.classes || s.IR != w.ir {
			t.Errorf("%s: spec %+v does not match Table I", s.Name, s)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Poker")
	if err != nil || s.Name != "Poker" {
		t.Fatalf("ByName(Poker) = %+v, %v", s, err)
	}
	if _, err := ByName("NoSuchSet"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestScaledInstances(t *testing.T) {
	s, _ := ByName("EEG")
	if n := s.ScaledInstances(1); n != 14980 {
		t.Fatalf("full scale = %d", n)
	}
	if n := s.ScaledInstances(0.1); n != 1498+500 && n < 1498 {
		t.Fatalf("scaled = %d", n)
	}
	if n := s.ScaledInstances(0.0001); n < 2000 {
		t.Fatalf("floor not applied: %d", n)
	}
	if n := s.ScaledInstances(-1); n != 14980 {
		t.Fatalf("invalid scale should mean full size, got %d", n)
	}
}

func TestEverySurrogateBuildsAndEmits(t *testing.T) {
	for _, spec := range All() {
		s, n, err := spec.Build(0.001, 5)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		sc := s.Schema()
		if sc.Classes != spec.Classes {
			t.Errorf("%s: classes %d, spec %d", spec.Name, sc.Classes, spec.Classes)
		}
		if sc.Features < spec.Features {
			t.Errorf("%s: features %d below spec %d", spec.Name, sc.Features, spec.Features)
		}
		if n < 2000 {
			t.Errorf("%s: length %d", spec.Name, n)
		}
		for i := 0; i < 200; i++ {
			in := s.Next()
			if in.Y < 0 || in.Y >= sc.Classes {
				t.Fatalf("%s: label %d out of range", spec.Name, in.Y)
			}
			for _, v := range in.X {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: bad feature %v", spec.Name, v)
				}
			}
		}
	}
}

func TestDriftingSurrogatesExposeGroundTruth(t *testing.T) {
	for _, spec := range All() {
		if spec.Drift != "yes" {
			continue
		}
		s, n, err := spec.Build(0.002, 7)
		if err != nil {
			t.Fatal(err)
		}
		td, ok := s.(interface{ TrueDrifts() []stream.DriftEvent })
		if !ok {
			t.Fatalf("%s: drifting surrogate without ground truth", spec.Name)
		}
		events := td.TrueDrifts()
		if len(events) == 0 {
			t.Fatalf("%s: no drift events", spec.Name)
		}
		for _, ev := range events {
			if ev.Position <= 0 || ev.Position >= n {
				t.Fatalf("%s: event position %d outside (0,%d)", spec.Name, ev.Position, n)
			}
		}
	}
}

func TestSurrogateImbalanceApproximatesIR(t *testing.T) {
	spec, _ := ByName("Connect4") // IR 45.81, 3 classes, no injected drift
	s, _, err := spec.Build(0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, spec.Classes)
	const n = 13000
	for i := 0; i < n; i++ {
		counts[s.Next().Y]++
	}
	max, min := counts[0], counts[0]
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if min == 0 {
		t.Fatal("smallest class absent entirely")
	}
	ir := max / min
	// The schedule oscillates between IR/2 and IR; the time-average must be
	// clearly imbalanced but not above IR.
	if ir < spec.IR/4 || ir > spec.IR*1.5 {
		t.Fatalf("observed IR %v far from spec %v", ir, spec.IR)
	}
}

func TestSurrogateDeterminism(t *testing.T) {
	spec, _ := ByName("Gas")
	a, _, err := spec.Build(0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := spec.Build(0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		x, y := a.Next(), b.Next()
		if x.Y != y.Y {
			t.Fatalf("labels diverge at %d for identical seeds", i)
		}
		for j := range x.X {
			if x.X[j] != y.X[j] {
				t.Fatalf("features diverge at %d", i)
			}
		}
	}
}
