// Package realworld provides seeded synthetic surrogates for the 12
// real-world data streams of the paper's Table I. The original datasets
// (Activity-Raw, Connect4, Covertype, Crimes, DJ30, EEG, Electricity, Gas,
// Olympic, Poker, IntelSensors, Tags) are not redistributable and cannot be
// fetched in this offline environment, so each surrogate reproduces the
// dataset's *difficulty profile* — feature count, class count, maximum
// imbalance ratio, and drift presence from Table I — on top of a generator
// family chosen to echo the domain (sensor-like data uses RBF clusters,
// tabular rule-like data uses Agrawal, price-like data uses rotating
// hyperplanes, categorical game states use random trees). Drift detectors
// and classifiers only observe (x, y) tuples, so matching these axes
// preserves the relative detector behaviour that Table III reports. See
// DESIGN.md section 3 for the substitution rationale.
package realworld

import (
	"fmt"
	"math"

	"rbmim/internal/stream"
	"rbmim/internal/synth"
)

// Family names the generator family backing a surrogate.
type Family string

// Families used by the surrogates.
const (
	FamilyRBF        Family = "rbf"
	FamilyAgrawal    Family = "agrawal"
	FamilyHyperplane Family = "hyperplane"
	FamilyRandomTree Family = "randomtree"
)

// Spec describes one Table I benchmark row.
type Spec struct {
	// Name is the dataset name as printed in Table I.
	Name string
	// Instances is the full-size stream length from Table I.
	Instances int
	// Features and Classes match Table I.
	Features int
	Classes  int
	// IR is the maximum imbalance ratio (largest/smallest class).
	IR float64
	// Drift is the Table I drift annotation: "yes" or "unknown" for
	// real-world streams.
	Drift string
	// Family selects the surrogate's generator backbone.
	Family Family
	// driftKind and concepts control the injected drift for Drift == "yes";
	// "unknown" streams get mild autonomous evolution instead of injected
	// concept switches.
	driftKind stream.DriftKind
	concepts  int
}

// All returns the 12 real-world benchmark surrogates in Table I order.
func All() []Spec {
	return []Spec{
		{Name: "Activity-Raw", Instances: 1048570, Features: 3, Classes: 6, IR: 128.93, Drift: "yes", Family: FamilyRBF, driftKind: stream.Sudden, concepts: 4},
		{Name: "Connect4", Instances: 67557, Features: 42, Classes: 3, IR: 45.81, Drift: "unknown", Family: FamilyRandomTree},
		{Name: "Covertype", Instances: 581012, Features: 54, Classes: 7, IR: 96.14, Drift: "unknown", Family: FamilyRandomTree},
		{Name: "Crimes", Instances: 878049, Features: 3, Classes: 39, IR: 106.72, Drift: "unknown", Family: FamilyRBF},
		{Name: "DJ30", Instances: 138166, Features: 8, Classes: 30, IR: 204.66, Drift: "yes", Family: FamilyHyperplane, driftKind: stream.Gradual, concepts: 3},
		{Name: "EEG", Instances: 14980, Features: 14, Classes: 2, IR: 29.88, Drift: "yes", Family: FamilyRBF, driftKind: stream.Sudden, concepts: 2},
		{Name: "Electricity", Instances: 45312, Features: 8, Classes: 2, IR: 17.54, Drift: "yes", Family: FamilyHyperplane, driftKind: stream.Gradual, concepts: 3},
		{Name: "Gas", Instances: 13910, Features: 128, Classes: 6, IR: 138.03, Drift: "yes", Family: FamilyRBF, driftKind: stream.Incremental, concepts: 2},
		{Name: "Olympic", Instances: 271116, Features: 7, Classes: 4, IR: 66.82, Drift: "unknown", Family: FamilyHyperplane},
		{Name: "Poker", Instances: 829201, Features: 10, Classes: 10, IR: 144.00, Drift: "yes", Family: FamilyRandomTree, driftKind: stream.Sudden, concepts: 4},
		{Name: "IntelSensors", Instances: 2219804, Features: 5, Classes: 57, IR: 348.26, Drift: "yes", Family: FamilyRBF, driftKind: stream.Sudden, concepts: 4},
		{Name: "Tags", Instances: 164860, Features: 4, Classes: 11, IR: 194.28, Drift: "unknown", Family: FamilyRBF},
	}
}

// ByName returns the spec with the given Table I name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("realworld: unknown dataset %q", name)
}

// ScaledInstances returns the stream length after applying the scale factor
// (at least 2000 so prequential windows exist).
func (s Spec) ScaledInstances(scale float64) int {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := int(math.Round(float64(s.Instances) * scale))
	if n < 2000 {
		n = 2000
	}
	return n
}

// Build constructs the surrogate stream at the given scale (fraction of the
// full Table I length; 1.0 = full size). The returned stream carries its
// ground-truth drift events when drift is injected.
func (s Spec) Build(scale float64, seed int64) (stream.Stream, int, error) {
	n := s.ScaledInstances(scale)
	base, err := s.concept(seed)
	if err != nil {
		return nil, 0, err
	}
	var st stream.Stream = base
	if s.Drift == "yes" && s.concepts > 1 {
		concepts := make([]stream.Stream, s.concepts)
		concepts[0] = base
		for i := 1; i < s.concepts; i++ {
			c, err := s.concept(seed + int64(i)*1000)
			if err != nil {
				return nil, 0, err
			}
			concepts[i] = c
		}
		positions := make([]int, s.concepts-1)
		for i := range positions {
			positions[i] = (i + 1) * n / s.concepts
		}
		width := n / 20
		if s.driftKind == stream.Sudden {
			width = 0
		}
		st = stream.NewMultiDriftStream(concepts, s.driftKind, positions, width, seed+7)
	}
	// Real-world skew evolves: oscillate between IR/2 and IR.
	sched := stream.NewDynamicSkew(s.Classes, math.Max(1, s.IR/2), s.IR, n/2)
	st = stream.NewImbalanceWrapper(st, sched, seed+13)
	return stream.NewLimit(st, n), n, nil
}

// concept builds one concept of the surrogate's generator family.
func (s Spec) concept(seed int64) (stream.Stream, error) {
	cfg := synth.Config{Features: s.Features, Classes: s.Classes, Seed: seed, Noise: 0.02}
	switch s.Family {
	case FamilyRBF:
		centroids := 2
		if s.Classes <= 10 {
			centroids = 3
		}
		return synth.NewRBF(cfg, centroids, 0.06)
	case FamilyAgrawal:
		fn := int(seed) % 10
		if fn < 0 {
			fn = -fn
		}
		return synth.NewAgrawal(cfg, fn)
	case FamilyHyperplane:
		// Mild autonomous rotation echoes price-like non-stationarity.
		return synth.NewHyperplane(cfg, 1e-5)
	case FamilyRandomTree:
		return synth.NewRandomTree(cfg, 0)
	default:
		return nil, fmt.Errorf("realworld: unknown family %q", s.Family)
	}
}
