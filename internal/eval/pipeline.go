// Package eval implements the prequential evaluation harness and the
// experiment runners that regenerate every table and figure of the paper's
// evaluation section: Table III (detector comparison on 24 streams under
// pmAUC/pmGM with ranks and timings), Figures 4-5 (Bonferroni-Dunn), Figures
// 6-7 (Bayesian signed tests), Figure 8 (local drift sweep), and Figure 9
// (imbalance-ratio robustness sweep).
package eval

import (
	"time"

	"rbmim/internal/classifier"
	"rbmim/internal/detectors"
	"rbmim/internal/metrics"
	"rbmim/internal/stream"
)

// PipelineConfig binds one stream to one detector for a prequential run.
type PipelineConfig struct {
	// Instances is the number of stream instances to process.
	Instances int
	// MetricWindow is the prequential window (paper: 1000).
	MetricWindow int
	// Seed drives the classifier initialization.
	Seed int64
	// DriftHorizon is the window (in instances) after a ground-truth drift
	// within which a signal counts as a true detection (default: 10% of the
	// stream or 5000, whichever is smaller).
	DriftHorizon int
	// Warmup is the initial training phase length during which the
	// classifier learns unconditionally (default: max(2000, Instances/5)).
	Warmup int
	// AdaptWindow is how many instances of training each Warning/Drift
	// signal buys the classifier (default: 2 * MetricWindow). Outside the
	// warmup and these windows the classifier is frozen — the paper's
	// framework couples classifier adaptation to the detector ("the
	// underlying classifier ... stopped being updated" when detectors
	// missed drifts), which is what makes detector quality visible in the
	// prequential metrics.
	AdaptWindow int
	// TrainContinuously disables the detector-gated freezing (for
	// ablations).
	TrainContinuously bool
	// Cooldown suppresses drift handling for this many instances after a
	// handled drift (default: MetricWindow/2). Without it, DDM-family
	// detectors re-trigger on the error spike of the freshly reset
	// classifier, entering a reset storm. The detector is also Reset after
	// each handled drift, as MOA's drift-handling wrappers do.
	Cooldown int
	// BlockSize is the prequential block length B: each iteration predicts
	// (and records metrics for) a block of up to B instances, updates the
	// detector over the whole block in one detectors.UpdateBatch call, then
	// applies drift handling and classifier training per instance in order.
	// The default 1 reproduces the classic per-instance test-then-train
	// loop exactly; larger blocks amortize dispatch and engage the
	// detectors' native batched paths — the block-based prequential
	// processing of the online class-imbalance literature — at the cost of
	// intra-block staleness (predictions inside a block are made before the
	// classifier trains on the block's earlier instances, and drift
	// handling runs after the whole block's detector states are known).
	BlockSize int
}

func (c *PipelineConfig) fill() {
	if c.MetricWindow <= 0 {
		c.MetricWindow = 1000
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Instances / 5
		if c.Warmup < 2000 {
			c.Warmup = 2000
		}
	}
	if c.AdaptWindow <= 0 {
		c.AdaptWindow = 2 * c.MetricWindow
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.MetricWindow / 2
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1
	}
}

// Result summarizes one prequential run.
type Result struct {
	// Detector is the detector name.
	Detector string
	// Stream is the benchmark name.
	Stream string
	// PMAUC and PMGM are the prequential metrics in [0, 100].
	PMAUC float64
	PMGM  float64
	// Accuracy and Kappa are auxiliary prequential metrics in [0, 100].
	Accuracy float64
	Kappa    float64
	// Signals is the list of instance indices where drift was signalled.
	Signals []int
	// Warnings counts the Warning states the detector emitted over the run.
	// Warnings buy no adaptation (see PipelineConfig.AdaptWindow) but are a
	// cheap chattiness diagnostic next to FalseAlarms.
	Warnings int
	// DetectorSeconds is the cumulative wall time spent inside
	// Detector.Update ("test + self-update" time of Table III).
	DetectorSeconds float64
	// AdaptSeconds is the cumulative wall time spent adapting the
	// classifier after drift signals.
	AdaptSeconds float64
	// Instances processed.
	Instances int
	// Drift scoring against ground truth (when the stream provides it).
	TruePositives int
	FalseAlarms   int
	MissedDrifts  int
	// MeanDelay is the average detection delay in instances over detected
	// drifts (-1 when no ground truth or nothing detected).
	MeanDelay float64
}

// RunPipeline executes the prequential test-then-train loop in blocks of
// PipelineConfig.BlockSize: predict and record metrics for a block, update
// the detector over the whole block (one detectors.UpdateBatch call —
// batched detectors take their native path), then, per instance in order,
// adapt the classifier on drift signals and train it while in warmup or
// inside a detector-opened adaptation window (see
// PipelineConfig.AdaptWindow). BlockSize 1 is exactly the classic
// per-instance loop.
func RunPipeline(s stream.Stream, det detectors.Detector, cfg PipelineConfig) Result {
	cfg.fill()
	schema := s.Schema()
	tree := classifier.NewPerceptronTree(schema.Features, schema.Classes, cfg.Seed)
	preq := metrics.NewPrequential(schema.Classes, cfg.MetricWindow)
	res := Result{Detector: det.Name(), Stream: "", Instances: cfg.Instances}

	var detTime, adaptTime time.Duration
	trainUntil := cfg.Warmup
	coolUntil := 0
	// Recent-instance ring used to rebuild the classifier on drift signals
	// (the MOA background-learner pattern: a false alarm costs little
	// because the replacement is retrained on the recent window). The ring
	// owns its feature buffers: X is copied in (slot capacity reused, so the
	// steady state allocates nothing), which keeps the replay window intact
	// even if a stream implementation reuses the backing arrays it emits.
	// Today's generators all allocate a fresh X per Next (audited:
	// internal/synth, internal/stream wrappers, internal/realworld), so the
	// copy is pure insurance — but replay integrity should not depend on an
	// unstated contract with every future stream.
	ring := make([]stream.Instance, 0, 2*cfg.MetricWindow)
	ringPos := 0
	// Block staging. Scores returned by Predict view per-leaf scratch that
	// the next Predict may overwrite, so each block observation gets its own
	// row of a flat scores slab.
	B := cfg.BlockSize
	blockIns := make([]stream.Instance, B)
	blockObs := make([]detectors.Observation, B)
	blockStates := make([]detectors.State, B)
	scoresSlab := make([]float64, B*schema.Classes)
	for base := 0; base < cfg.Instances; base += B {
		n := B
		if rem := cfg.Instances - base; rem < n {
			n = rem
		}
		// Test phase: predict and record metrics for the whole block. The
		// block holds instances across Next calls, so each slot keeps a
		// defensive copy of X (same ownership contract as the ring below) —
		// a stream that reuses its backing arrays must not be able to
		// rewrite the block behind the detector's and classifier's backs.
		for j := 0; j < n; j++ {
			copyInstance(&blockIns[j], s.Next())
			in := blockIns[j]
			pred, scores := tree.Predict(in.X)
			preq.Add(in.Y, pred, scores)
			row := scoresSlab[j*schema.Classes : (j+1)*schema.Classes]
			copy(row, scores)
			blockObs[j] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: pred, Scores: row}
		}
		// Detector phase: one batched update over the block ("test +
		// self-update" time of Table III).
		t0 := time.Now()
		detectors.UpdateBatch(det, blockObs[:n], blockStates[:n])
		detTime += time.Since(t0)
		// Handling + train phase, per instance in block order.
		for j := 0; j < n; j++ {
			i := base + j
			in := blockIns[j]
			switch blockStates[j] {
			case detectors.Drift:
				if i >= coolUntil {
					res.Signals = append(res.Signals, i)
					t1 := time.Now()
					adaptClassifier(tree, det, ring)
					adaptTime += time.Since(t1)
					det.Reset()
					coolUntil = i + cfg.Cooldown
					if i+cfg.AdaptWindow > trainUntil {
						trainUntil = i + cfg.AdaptWindow
					}
				}
			case detectors.Warning:
				// Warnings are counted but buy no adaptation (and therefore
				// no training), so chatty detectors cannot subsidize a
				// frozen classifier with a stream of warnings.
				res.Warnings++
			}
			if cfg.TrainContinuously || i < trainUntil {
				tree.Train(in.X, in.Y)
			}
			if len(ring) < cap(ring) {
				ring = append(ring, in.Clone())
			} else if cap(ring) > 0 {
				copyInstance(&ring[ringPos], in)
				ringPos = (ringPos + 1) % cap(ring)
			}
		}
	}
	preq.Finish()
	res.PMAUC = preq.PMAUC()
	res.PMGM = preq.PMGM()
	res.Accuracy = preq.Accuracy()
	res.Kappa = preq.Kappa()
	res.DetectorSeconds = detTime.Seconds()
	res.AdaptSeconds = adaptTime.Seconds()
	scoreDrifts(&res, s, cfg)
	return res
}

// copyInstance overwrites a block or ring slot with a defensive copy of in,
// reusing the slot's X buffer when it is large enough so the steady state
// allocates nothing.
func copyInstance(slot *stream.Instance, in stream.Instance) {
	if cap(slot.X) >= len(in.X) {
		slot.X = slot.X[:len(in.X)]
	} else {
		slot.X = make([]float64, len(in.X))
	}
	copy(slot.X, in.X)
	slot.Y = in.Y
	slot.Weight = in.Weight
}

// adaptClassifier applies the drift signal to the base learner: a local
// (class-attributed) drift resets only the affected classes, a global one
// rebuilds the tree. In both cases the fresh parts are replayed over the
// recent-instance ring, mirroring MOA's background-learner replacement —
// this keeps the cost of a false alarm low while still letting a true
// detection re-learn the new concept quickly.
func adaptClassifier(tree *classifier.PerceptronTree, det detectors.Detector, ring []stream.Instance) {
	const replayEpochs = 3
	if attr, ok := det.(detectors.ClassAttributor); ok {
		if classes := attr.DriftClasses(); len(classes) > 0 && len(classes) < tree.Classes() {
			// Warm local adaptation: keep the tree and all weights. The
			// other classes' knowledge is intact, the multiclass perceptron
			// scores are relative (a hard per-class reset would destroy
			// calibration), and the affected classes relearn from the fresh
			// post-drift instances that the adaptation window lets in —
			// replaying the ring here would feed them pre-drift data.
			return
		}
	}
	tree.Reset()
	for e := 0; e < replayEpochs; e++ {
		for _, in := range ring {
			tree.Train(in.X, in.Y)
		}
	}
}

// scoreDrifts matches drift signals against the stream's ground truth.
func scoreDrifts(res *Result, s stream.Stream, cfg PipelineConfig) {
	td, ok := s.(interface{ TrueDrifts() []stream.DriftEvent })
	if !ok {
		res.MeanDelay = -1
		return
	}
	events := td.TrueDrifts()
	if len(events) == 0 {
		res.MeanDelay = -1
		res.FalseAlarms = len(res.Signals)
		return
	}
	horizon := cfg.DriftHorizon
	if horizon <= 0 {
		horizon = cfg.Instances / 10
		if horizon > 5000 {
			horizon = 5000
		}
		if horizon < 500 {
			horizon = 500
		}
	}
	matched := make([]bool, len(events))
	delaySum, delayN := 0.0, 0
	for _, sig := range res.Signals {
		hit := false
		for ei, ev := range events {
			start := ev.Position
			end := ev.Position + ev.Width + horizon
			if sig >= start && sig <= end {
				hit = true
				if !matched[ei] {
					matched[ei] = true
					delaySum += float64(sig - start)
					delayN++
				}
				break
			}
		}
		if !hit {
			res.FalseAlarms++
		}
	}
	for _, m := range matched {
		if m {
			res.TruePositives++
		} else {
			res.MissedDrifts++
		}
	}
	if delayN > 0 {
		res.MeanDelay = delaySum / float64(delayN)
	} else {
		res.MeanDelay = -1
	}
}
