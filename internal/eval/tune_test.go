package eval

import (
	"testing"

	"rbmim/internal/core"
	"rbmim/internal/tune"
)

// TestSelfTuneRBMIM wires the online Nelder-Mead self-tuner (the paper's
// parameter-tuning methodology, Veloso et al. 2018) to the prequential
// harness: RBM-IM's batch size and learning rate are tuned by
// shadow-evaluating candidates on a stream prefix, maximizing pmAUC, then
// snapped to the Table II grid. This is the full loop the paper applies to
// every detector/stream pair.
func TestSelfTuneRBMIM(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning loop replays the stream prefix per candidate")
	}
	spec, err := ArtificialByName("RBF5")
	if err != nil {
		t.Fatal(err)
	}
	params := []tune.Param{
		{Name: "batch_size", Min: 25, Max: 100, Init: 50},
		{Name: "learning_rate", Min: 0.05, Max: 0.7, Init: 0.3},
	}
	evals := 0
	score := func(v []float64) float64 {
		evals++
		s, n, err := spec.Build(BuildOptions{Scale: 0.002, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		det, err := core.NewDetector(core.Config{
			Features:       s.Schema().Features,
			Classes:        s.Schema().Classes,
			BatchSize:      int(v[0]),
			LearningRate:   v[1],
			AdaptiveWindow: true,
			Seed:           10,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := RunPipeline(s, det, PipelineConfig{Instances: n, MetricWindow: 500, Seed: 11})
		return res.PMAUC
	}
	res, err := tune.Maximize(params, score, tune.Options{MaxEvals: 12})
	if err != nil {
		t.Fatal(err)
	}
	if evals == 0 || evals > 20 {
		t.Fatalf("tuner consumed %d evaluations, budget was 12 (+simplex init)", evals)
	}
	if res.Score <= 0 || res.Score > 100 {
		t.Fatalf("tuned score out of range: %v", res.Score)
	}
	// Parameters must respect their boxes and snap onto the Table II grid.
	batch := tune.SnapToGrid(res.Params[0], []float64{25, 50, 75, 100})
	if batch < 25 || batch > 100 {
		t.Fatalf("snapped batch size %v outside grid", batch)
	}
	if res.Params[1] < 0.05 || res.Params[1] > 0.7 {
		t.Fatalf("learning rate %v escaped its box", res.Params[1])
	}
}
