package eval

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"rbmim/internal/stats"
)

// Table3Config configures the Experiment 1 runner.
type Table3Config struct {
	// Scale is the fraction of each benchmark's Table I length (default
	// 0.05; 1 = full size).
	Scale float64
	// Seed drives stream and classifier randomness.
	Seed int64
	// MetricWindow is the prequential window (paper: 1000).
	MetricWindow int
	// Parallelism bounds concurrent pipelines (default: NumCPU).
	Parallelism int
	// Benchmarks restricts the run to the named streams (nil = all 24).
	Benchmarks []string
	// IncludeExtras adds the DDM/EDDM/ADWIN/HDDM-A baselines to the grid.
	IncludeExtras bool
	// BlockSize is the prequential block length forwarded to every pipeline
	// (see PipelineConfig.BlockSize; default 1 = per-instance loop).
	BlockSize int
}

// Table3Row is one stream's results across detectors.
type Table3Row struct {
	Stream  string
	Results []Result // in detector order
}

// Table3Output is the full Experiment 1 outcome.
type Table3Output struct {
	// Detectors lists detector names in column order.
	Detectors []string
	// Rows holds one entry per benchmark stream in Table I order.
	Rows []Table3Row
	// RanksAUC and RanksGM are the Friedman average ranks per detector.
	RanksAUC []float64
	RanksGM  []float64
	// FriedmanAUC and FriedmanGM are the test outcomes.
	FriedmanAUC stats.FriedmanResult
	FriedmanGM  stats.FriedmanResult
	// CriticalDifference is the Bonferroni-Dunn CD at alpha = 0.05.
	CriticalDifference float64
}

// RunTable3 reproduces Experiment 1: every detector on every benchmark
// stream, reporting pmAUC, pmGM, timings, ranks and the statistical tests
// that feed Figures 4-7.
func RunTable3(cfg Table3Config) (*Table3Output, error) {
	if cfg.MetricWindow <= 0 {
		cfg.MetricWindow = 1000
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	benches := AllBenchmarks()
	if cfg.Benchmarks != nil {
		var filtered []BenchmarkStream
		for _, want := range cfg.Benchmarks {
			found := false
			for _, b := range benches {
				if b.Name == want {
					filtered = append(filtered, b)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("eval: unknown benchmark %q", want)
			}
		}
		benches = filtered
	}

	type job struct {
		bench    int
		detector int
	}
	type done struct {
		job
		res Result
		err error
	}

	// Detector names come from a probe build (features do not matter for
	// names).
	factories := PaperDetectors(1)
	if cfg.IncludeExtras {
		factories = append(factories, ExtraDetectors()...)
	}
	names := make([]string, len(factories))
	for i, f := range factories {
		names[i] = f.Name
	}

	jobs := make(chan job)
	results := make(chan done)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				b := benches[j.bench]
				s, n, err := b.Build(cfg.Scale, cfg.Seed)
				if err != nil {
					results <- done{job: j, err: err}
					continue
				}
				schema := s.Schema()
				fax := PaperDetectors(schema.Features)
				if cfg.IncludeExtras {
					fax = append(fax, ExtraDetectors()...)
				}
				det := fax[j.detector].New(schema.Classes)
				res := RunPipeline(s, det, PipelineConfig{
					Instances:    n,
					MetricWindow: cfg.MetricWindow,
					Seed:         cfg.Seed + int64(j.detector),
					BlockSize:    cfg.BlockSize,
				})
				res.Stream = b.Name
				results <- done{job: j, res: res}
			}
		}()
	}
	go func() {
		for bi := range benches {
			for di := range factories {
				jobs <- job{bench: bi, detector: di}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	out := &Table3Output{Detectors: names}
	out.Rows = make([]Table3Row, len(benches))
	for i, b := range benches {
		out.Rows[i] = Table3Row{Stream: b.Name, Results: make([]Result, len(factories))}
	}
	for d := range results {
		if d.err != nil {
			return nil, d.err
		}
		out.Rows[d.bench].Results[d.detector] = d.res
	}

	// Rank statistics over the score matrices.
	aucScores := make([][]float64, len(out.Rows))
	gmScores := make([][]float64, len(out.Rows))
	for i, row := range out.Rows {
		aucScores[i] = make([]float64, len(factories))
		gmScores[i] = make([]float64, len(factories))
		for j, r := range row.Results {
			aucScores[i][j] = r.PMAUC
			gmScores[i][j] = r.PMGM
		}
	}
	out.FriedmanAUC = stats.Friedman(aucScores)
	out.FriedmanGM = stats.Friedman(gmScores)
	out.RanksAUC = out.FriedmanAUC.AvgRanks
	out.RanksGM = out.FriedmanGM.AvgRanks
	out.CriticalDifference = stats.BonferroniDunnCD(len(factories), len(out.Rows), 0.05)
	return out, nil
}

// ScoresFor extracts per-stream scores of one detector under the given
// metric ("pmauc" or "pmgm"), in row order — the pairing used by the
// Bayesian signed tests of Figures 6-7.
func (t *Table3Output) ScoresFor(detector, metric string) ([]float64, error) {
	col := -1
	for j, n := range t.Detectors {
		if n == detector {
			col = j
			break
		}
	}
	if col < 0 {
		return nil, fmt.Errorf("eval: detector %q not in output", detector)
	}
	out := make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		switch metric {
		case "pmgm":
			out[i] = row.Results[col].PMGM
		default:
			out[i] = row.Results[col].PMAUC
		}
	}
	return out, nil
}

// SortedByRank returns detector names ordered by average rank (best first)
// under the given metric.
func (t *Table3Output) SortedByRank(metric string) []string {
	ranks := t.RanksAUC
	if metric == "pmgm" {
		ranks = t.RanksGM
	}
	idx := make([]int, len(t.Detectors))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ranks[idx[a]] < ranks[idx[b]] })
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = t.Detectors[j]
	}
	return out
}
