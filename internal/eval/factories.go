package eval

import (
	"rbmim/internal/core"
	"rbmim/internal/detectors"
)

// PaperDetectors returns factories for the six detectors of the paper's
// comparison, in Table III column order: WSTD, RDDM, FHDDM, PerfSim,
// DDM-OCI, RBM-IM. Parameters are the midpoints of the Table II grids.
// features is needed by RBM-IM to size its visible layer.
func PaperDetectors(features int) []detectors.Factory {
	return []detectors.Factory{
		{Name: "WSTD", New: func(classes int) detectors.Detector {
			return detectors.NewWSTD(75, 0.05, 0.005, 2000)
		}},
		{Name: "RDDM", New: func(classes int) detectors.Detector {
			d := detectors.NewRDDM()
			d.MinInstances = 3000
			d.MaxInstances = 20000
			d.Reset()
			return d
		}},
		{Name: "FHDDM", New: func(classes int) detectors.Detector {
			return detectors.NewFHDDM(100, 0.0001)
		}},
		{Name: "PerfSim", New: func(classes int) detectors.Detector {
			return detectors.NewPerfSim(classes, 0.2, 30, 500)
		}},
		{Name: "DDM-OCI", New: func(classes int) detectors.Detector {
			return detectors.NewDDMOCI(classes, 0.99, 30)
		}},
		{Name: "RBM-IM", New: func(classes int) detectors.Detector {
			d, err := core.NewDetector(core.Config{
				Features:       features,
				Classes:        classes,
				BatchSize:      25,
				GibbsSteps:     1,
				AdaptiveWindow: true,
				Seed:           17,
			})
			if err != nil {
				panic(err) // construction is validated by tests; sizes come from schemas
			}
			return d
		}},
	}
}

// ExtraDetectors returns the additional classic baselines implemented beyond
// the paper's comparison (DDM, EDDM, ADWIN, HDDM-A), available to the CLI
// and ablation benches.
func ExtraDetectors() []detectors.Factory {
	return []detectors.Factory{
		{Name: "DDM", New: func(classes int) detectors.Detector { return detectors.NewDDM() }},
		{Name: "EDDM", New: func(classes int) detectors.Detector { return detectors.NewEDDM() }},
		{Name: "ADWIN", New: func(classes int) detectors.Detector { return detectors.NewADWINDetector(0.002) }},
		{Name: "HDDM-A", New: func(classes int) detectors.Detector { return detectors.NewHDDMA() }},
	}
}
