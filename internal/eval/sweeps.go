package eval

import (
	"runtime"
	"sync"
)

// SweepPoint is one (x, detector) cell of a sweep figure: the pmAUC achieved
// by the detector at the swept parameter value.
type SweepPoint struct {
	X      int
	PMAUC  float64
	PMGM   float64
	Result Result
}

// SweepSeries is one detector's curve over the swept parameter.
type SweepSeries struct {
	Detector string
	Points   []SweepPoint
}

// SweepOutput is one benchmark's figure panel.
type SweepOutput struct {
	Stream string
	Series []SweepSeries
}

// SweepConfig configures the Figure 8 / Figure 9 runners.
type SweepConfig struct {
	// Scale, Seed, MetricWindow as in Table3Config.
	Scale        float64
	Seed         int64
	MetricWindow int
	Parallelism  int
	// Benchmarks restricts the sweep to the named artificial streams
	// (nil = all 12).
	Benchmarks []string
	// Values overrides the swept values (Figure 8: class counts 1..K;
	// Figure 9: IRs 50..500).
	Values []int
	// BlockSize is the prequential block length forwarded to every pipeline
	// (see PipelineConfig.BlockSize; default 1 = per-instance loop).
	BlockSize int
}

func (c *SweepConfig) fill() {
	if c.MetricWindow <= 0 {
		c.MetricWindow = 1000
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
}

// selectedArtificial resolves the benchmark subset.
func selectedArtificial(names []string) []ArtificialSpec {
	all := Artificial()
	if names == nil {
		return all
	}
	var out []ArtificialSpec
	for _, want := range names {
		for _, s := range all {
			if s.Name == want {
				out = append(out, s)
			}
		}
	}
	return out
}

// RunLocalDriftSweep reproduces Experiment 2 (Figure 8): for each artificial
// benchmark, inject a local real drift into 1..K of the smallest classes and
// measure each detector's pmAUC. The fewer classes drift, the harder the
// detection.
func RunLocalDriftSweep(cfg SweepConfig) ([]SweepOutput, error) {
	cfg.fill()
	specs := selectedArtificial(cfg.Benchmarks)
	return runSweep(cfg, specs, func(spec ArtificialSpec) []int {
		if cfg.Values != nil {
			var vals []int
			for _, v := range cfg.Values {
				if v >= 1 && v <= spec.Classes {
					vals = append(vals, v)
				}
			}
			return vals
		}
		// Default: every class count 1..K for small K, strided for K = 20
		// (matching the x-axes of Figure 8).
		if spec.Classes <= 10 {
			vals := make([]int, spec.Classes)
			for i := range vals {
				vals[i] = i + 1
			}
			return vals
		}
		var vals []int
		for v := 1; v <= spec.Classes; v += 2 {
			vals = append(vals, v)
		}
		return vals
	}, func(spec ArtificialSpec, v int) BuildOptions {
		return BuildOptions{
			Scale:             cfg.Scale,
			Seed:              cfg.Seed,
			LocalDriftClasses: v,
		}
	})
}

// RunImbalanceSweep reproduces Experiment 3 (Figure 9): for each artificial
// benchmark, scale the multi-class imbalance ratio across {50, 100, 200,
// 300, 400, 500} and measure each detector's pmAUC.
func RunImbalanceSweep(cfg SweepConfig) ([]SweepOutput, error) {
	cfg.fill()
	specs := selectedArtificial(cfg.Benchmarks)
	return runSweep(cfg, specs, func(spec ArtificialSpec) []int {
		if cfg.Values != nil {
			return cfg.Values
		}
		return []int{50, 100, 200, 300, 400, 500}
	}, func(spec ArtificialSpec, v int) BuildOptions {
		return BuildOptions{
			Scale:      cfg.Scale,
			Seed:       cfg.Seed,
			IROverride: float64(v),
		}
	})
}

// runSweep executes the generic (benchmark x value x detector) grid.
func runSweep(cfg SweepConfig, specs []ArtificialSpec,
	values func(ArtificialSpec) []int,
	options func(ArtificialSpec, int) BuildOptions) ([]SweepOutput, error) {

	type job struct {
		spec     int
		valueIdx int
		value    int
		detector int
	}
	type done struct {
		job
		res Result
		err error
	}

	// Column names from a probe.
	probe := PaperDetectors(1)
	names := make([]string, len(probe))
	for i, f := range probe {
		names[i] = f.Name
	}

	var jobList []job
	valueLists := make([][]int, len(specs))
	for si, spec := range specs {
		vals := values(spec)
		valueLists[si] = vals
		for vi, v := range vals {
			for di := range probe {
				jobList = append(jobList, job{spec: si, valueIdx: vi, value: v, detector: di})
			}
		}
	}

	jobs := make(chan job)
	results := make(chan done)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				spec := specs[j.spec]
				s, n, err := spec.Build(options(spec, j.value))
				if err != nil {
					results <- done{job: j, err: err}
					continue
				}
				schema := s.Schema()
				det := PaperDetectors(schema.Features)[j.detector].New(schema.Classes)
				res := RunPipeline(s, det, PipelineConfig{
					Instances:    n,
					MetricWindow: cfg.MetricWindow,
					Seed:         cfg.Seed + int64(j.detector),
					BlockSize:    cfg.BlockSize,
				})
				res.Stream = spec.Name
				results <- done{job: j, res: res}
			}
		}()
	}
	go func() {
		for _, j := range jobList {
			jobs <- j
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	out := make([]SweepOutput, len(specs))
	for si, spec := range specs {
		out[si] = SweepOutput{Stream: spec.Name, Series: make([]SweepSeries, len(names))}
		for di, n := range names {
			out[si].Series[di] = SweepSeries{
				Detector: n,
				Points:   make([]SweepPoint, len(valueLists[si])),
			}
		}
	}
	for d := range results {
		if d.err != nil {
			return nil, d.err
		}
		out[d.spec].Series[d.detector].Points[d.valueIdx] = SweepPoint{
			X:      d.value,
			PMAUC:  d.res.PMAUC,
			PMGM:   d.res.PMGM,
			Result: d.res,
		}
	}
	return out, nil
}
