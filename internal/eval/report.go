package eval

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"rbmim/internal/stats"
)

// WriteTable3 renders the Experiment 1 output in the layout of Table III:
// one row per stream with pmAUC and pmGM per detector, then average ranks
// and timing rows.
func WriteTable3(w io.Writer, out *Table3Output) {
	cols := out.Detectors
	fmt.Fprintf(w, "%-14s |", "Dataset")
	for _, c := range cols {
		fmt.Fprintf(w, " %9s", c)
	}
	fmt.Fprintf(w, " |")
	for _, c := range cols {
		fmt.Fprintf(w, " %9s", c)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s |%s|%s\n", "", strings.Repeat(" [pmAUC] -", len(cols)), strings.Repeat(" [pmGM] --", len(cols)))
	for _, row := range out.Rows {
		fmt.Fprintf(w, "%-14s |", row.Stream)
		for _, r := range row.Results {
			fmt.Fprintf(w, " %9.2f", r.PMAUC)
		}
		fmt.Fprintf(w, " |")
		for _, r := range row.Results {
			fmt.Fprintf(w, " %9.2f", r.PMGM)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-14s |", "ranks")
	for _, r := range out.RanksAUC {
		fmt.Fprintf(w, " %9.2f", r)
	}
	fmt.Fprintf(w, " |")
	for _, r := range out.RanksGM {
		fmt.Fprintf(w, " %9.2f", r)
	}
	fmt.Fprintln(w)

	// Timing rows: average detector seconds per 1k instances across streams.
	fmt.Fprintf(w, "%-14s |", "det s/1k inst")
	for j := range cols {
		sum, n := 0.0, 0.0
		for _, row := range out.Rows {
			r := row.Results[j]
			if r.Instances > 0 {
				sum += r.DetectorSeconds / float64(r.Instances) * 1000
				n++
			}
		}
		fmt.Fprintf(w, " %9.4f", sum/maxFloat(n, 1))
	}
	fmt.Fprintln(w, " |")
	fmt.Fprintf(w, "%-14s |", "adapt s/1k")
	for j := range cols {
		sum, n := 0.0, 0.0
		for _, row := range out.Rows {
			r := row.Results[j]
			if r.Instances > 0 {
				sum += r.AdaptSeconds / float64(r.Instances) * 1000
				n++
			}
		}
		fmt.Fprintf(w, " %9.4f", sum/maxFloat(n, 1))
	}
	fmt.Fprintln(w, " |")

	// Warning chattiness: average Warning states per 1k instances across
	// streams (drift signals are already visible via the ranks and the
	// sweep tables; warnings were previously discarded).
	fmt.Fprintf(w, "%-14s |", "warn/1k inst")
	for j := range cols {
		sum, n := 0.0, 0.0
		for _, row := range out.Rows {
			r := row.Results[j]
			if r.Instances > 0 {
				sum += float64(r.Warnings) / float64(r.Instances) * 1000
				n++
			}
		}
		fmt.Fprintf(w, " %9.2f", sum/maxFloat(n, 1))
	}
	fmt.Fprintln(w, " |")
}

// WriteRankAnalysis renders the Friedman test and the Bonferroni-Dunn
// critical-distance diagram of Figures 4-5 as text.
func WriteRankAnalysis(w io.Writer, out *Table3Output, metric string) {
	fr := out.FriedmanAUC
	ranks := out.RanksAUC
	if metric == "pmgm" {
		fr = out.FriedmanGM
		ranks = out.RanksGM
	}
	fmt.Fprintf(w, "Friedman (%s): chi2=%.3f p=%.4g  CD(Bonferroni-Dunn, a=0.05)=%.3f\n",
		metric, fr.ChiSquare, fr.PValue, out.CriticalDifference)

	type dr struct {
		name string
		rank float64
	}
	items := make([]dr, len(out.Detectors))
	for i := range items {
		items[i] = dr{out.Detectors[i], ranks[i]}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].rank < items[b].rank })
	best := items[0].rank
	fmt.Fprintln(w, "rank axis (lower = better; * within CD of best):")
	for _, it := range items {
		marker := " "
		if it.rank-best <= out.CriticalDifference {
			marker = "*"
		}
		bar := int((it.rank - 1) * 8)
		fmt.Fprintf(w, "  %-9s %s %5.2f |%s\n", it.name, marker, it.rank, strings.Repeat("-", bar)+"o")
	}
}

// WriteBayesianComparison renders the Bayesian signed test of Figures 6-7
// for one detector pair and metric: the posterior probabilities of
// left / rope / right plus a coarse ASCII simplex of the sample cloud.
func WriteBayesianComparison(w io.Writer, out *Table3Output, baseline, challenger, metric string, rope float64, seed int64) error {
	a, err := out.ScoresFor(baseline, metric)
	if err != nil {
		return err
	}
	b, err := out.ScoresFor(challenger, metric)
	if err != nil {
		return err
	}
	res := stats.BayesianSignedTest(a, b, rope, 20000, rand.New(rand.NewSource(seed)))
	fmt.Fprintf(w, "Bayesian signed test (%s): %s vs %s, rope=+-%.2f\n", metric, baseline, challenger, rope)
	fmt.Fprintf(w, "  P(%s better) = %.3f  P(rope) = %.3f  P(%s better) = %.3f\n",
		baseline, res.Left, res.Rope, challenger, res.Right)

	// Coarse triangle: bucket samples by (pLeft, pRight) into a 10x10 grid.
	const gridN = 10
	grid := [gridN][gridN]int{}
	for _, s := range res.Samples {
		li := int(s[0] * gridN)
		ri := int(s[2] * gridN)
		if li >= gridN {
			li = gridN - 1
		}
		if ri >= gridN {
			ri = gridN - 1
		}
		grid[li][ri]++
	}
	fmt.Fprintln(w, "  sample density (rows: P(left) 0..1, cols: P(right) 0..1):")
	for li := gridN - 1; li >= 0; li-- {
		fmt.Fprint(w, "    ")
		for ri := 0; ri < gridN; ri++ {
			c := grid[li][ri]
			switch {
			case c == 0:
				fmt.Fprint(w, ".")
			case c < 50:
				fmt.Fprint(w, "+")
			case c < 500:
				fmt.Fprint(w, "o")
			default:
				fmt.Fprint(w, "#")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteSweep renders one figure panel (Figure 8 or 9) as a column-per-
// detector text table: pmAUC, then pmGM, then the drift-detection rate
// (true positives over injected events — the most direct view of the
// paper's local-drift sensitivity claim).
func WriteSweep(w io.Writer, panels []SweepOutput, xLabel string) {
	for _, p := range panels {
		if len(p.Series) == 0 {
			continue
		}
		fmt.Fprintf(w, "== %s (pmAUC vs %s) ==\n", p.Stream, xLabel)
		writeSweepHeader(w, p, xLabel)
		for i := range p.Series[0].Points {
			fmt.Fprintf(w, "%-8d", p.Series[0].Points[i].X)
			for _, s := range p.Series {
				fmt.Fprintf(w, " %9.2f", s.Points[i].PMAUC)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "-- %s (pmGM) --\n", p.Stream)
		writeSweepHeader(w, p, xLabel)
		for i := range p.Series[0].Points {
			fmt.Fprintf(w, "%-8d", p.Series[0].Points[i].X)
			for _, s := range p.Series {
				fmt.Fprintf(w, " %9.2f", s.Points[i].PMGM)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "-- %s (drift detection rate TP/(TP+miss), false alarms in parens) --\n", p.Stream)
		writeSweepHeader(w, p, xLabel)
		for i := range p.Series[0].Points {
			fmt.Fprintf(w, "%-8d", p.Series[0].Points[i].X)
			for _, s := range p.Series {
				r := s.Points[i].Result
				total := r.TruePositives + r.MissedDrifts
				rate := 0.0
				if total > 0 {
					rate = float64(r.TruePositives) / float64(total)
				}
				fmt.Fprintf(w, " %5.2f(%2d)", rate, r.FalseAlarms)
			}
			fmt.Fprintln(w)
		}
	}
}

func writeSweepHeader(w io.Writer, p SweepOutput, xLabel string) {
	fmt.Fprintf(w, "%-8s", xLabel)
	for _, s := range p.Series {
		fmt.Fprintf(w, " %9s", s.Detector)
	}
	fmt.Fprintln(w)
}
