package eval

import (
	"fmt"

	"rbmim/internal/realworld"
	"rbmim/internal/stream"
	"rbmim/internal/synth"
)

// ArtificialSpec describes one of the 12 artificial benchmarks of Table I.
type ArtificialSpec struct {
	// Name as printed in Table I (e.g. "Aggrawal10").
	Name string
	// Family is the generator family.
	Family string
	// Instances, Features, Classes, IR follow Table I.
	Instances int
	Features  int
	Classes   int
	IR        float64
	// Drift is the drift speed of Table I (incremental/gradual/sudden).
	Drift stream.DriftKind
}

// Artificial returns the 12 artificial benchmarks in Table I order.
func Artificial() []ArtificialSpec {
	return []ArtificialSpec{
		{Name: "Aggrawal5", Family: "agrawal", Instances: 1000000, Features: 20, Classes: 5, IR: 50, Drift: stream.Incremental},
		{Name: "Aggrawal10", Family: "agrawal", Instances: 1000000, Features: 40, Classes: 10, IR: 80, Drift: stream.Incremental},
		{Name: "Aggrawal20", Family: "agrawal", Instances: 2000000, Features: 80, Classes: 20, IR: 100, Drift: stream.Incremental},
		{Name: "Hyperplane5", Family: "hyperplane", Instances: 1000000, Features: 20, Classes: 5, IR: 100, Drift: stream.Gradual},
		{Name: "Hyperplane10", Family: "hyperplane", Instances: 1000000, Features: 40, Classes: 10, IR: 200, Drift: stream.Gradual},
		{Name: "Hyperplane20", Family: "hyperplane", Instances: 2000000, Features: 80, Classes: 20, IR: 300, Drift: stream.Gradual},
		{Name: "RBF5", Family: "rbf", Instances: 1000000, Features: 20, Classes: 5, IR: 100, Drift: stream.Sudden},
		{Name: "RBF10", Family: "rbf", Instances: 1000000, Features: 40, Classes: 10, IR: 200, Drift: stream.Sudden},
		{Name: "RBF20", Family: "rbf", Instances: 2000000, Features: 80, Classes: 20, IR: 300, Drift: stream.Sudden},
		{Name: "RandomTree5", Family: "randomtree", Instances: 1000000, Features: 20, Classes: 5, IR: 100, Drift: stream.Sudden},
		{Name: "RandomTree10", Family: "randomtree", Instances: 1000000, Features: 40, Classes: 10, IR: 200, Drift: stream.Sudden},
		{Name: "RandomTree20", Family: "randomtree", Instances: 2000000, Features: 80, Classes: 20, IR: 300, Drift: stream.Sudden},
	}
}

// ArtificialByName returns the named artificial spec.
func ArtificialByName(name string) (ArtificialSpec, error) {
	for _, s := range Artificial() {
		if s.Name == name {
			return s, nil
		}
	}
	return ArtificialSpec{}, fmt.Errorf("eval: unknown artificial benchmark %q", name)
}

// BuildOptions customize artificial stream construction for the sweep
// experiments.
type BuildOptions struct {
	// Scale multiplies the Table I instance count (default 0.05; 1 = full).
	Scale float64
	// Seed drives all stream randomness.
	Seed int64
	// IROverride, when positive, replaces the Table I imbalance ratio
	// (Figure 9 sweeps 50..500).
	IROverride float64
	// LocalDriftClasses, when positive, switches the stream to Scenario 3:
	// instead of global concept transitions, a local drift affecting the
	// given number of *smallest* classes is injected at mid-stream
	// (Figure 8 sweeps this from 1 to K).
	LocalDriftClasses int
	// RoleSwitch enables class-role rotation in the skew schedule
	// (Scenario 2/3).
	RoleSwitch bool
}

// scaled returns the effective instance count.
func (o BuildOptions) scaled(full int) int {
	s := o.Scale
	if s <= 0 || s > 1 {
		s = 0.05
	}
	n := int(float64(full) * s)
	if n < 3000 {
		n = 3000
	}
	return n
}

// concept builds one concept of the spec's family.
func (a ArtificialSpec) concept(seed int64, variant int) (stream.Stream, error) {
	cfg := synth.Config{Features: a.Features, Classes: a.Classes, Seed: seed, Noise: 0.005}
	switch a.Family {
	case "agrawal":
		return synth.NewAgrawal(cfg, variant%10)
	case "hyperplane":
		return synth.NewHyperplane(cfg, 0)
	case "rbf":
		return synth.NewRBF(cfg, 3, 0.07)
	case "randomtree":
		return synth.NewRandomTree(cfg, 0)
	default:
		return nil, fmt.Errorf("eval: unknown family %q", a.Family)
	}
}

// Build constructs the benchmark stream and returns it with its effective
// instance count.
//
// Global-drift mode (Table III): three concepts with two transitions at n/3
// and 2n/3 using the spec's drift kind, under an oscillating imbalance
// schedule peaking at the spec's IR.
//
// Local-drift mode (Figure 8): one stationary concept with a local real
// drift injected at n/2 into the requested number of smallest classes.
func (a ArtificialSpec) Build(opt BuildOptions) (stream.Stream, int, error) {
	n := opt.scaled(a.Instances)
	ir := a.IR
	if opt.IROverride > 0 {
		ir = opt.IROverride
	}
	sched := stream.NewDynamicSkew(a.Classes, maxFloat(1, ir/2), ir, n/2)
	if opt.RoleSwitch {
		sched.RoleSwitchEvery = n / 4
	}

	if opt.LocalDriftClasses > 0 {
		base, err := a.concept(opt.Seed, 0)
		if err != nil {
			return nil, 0, err
		}
		// The geometric skew makes higher class indices smaller, so the m
		// smallest classes are K-1, K-2, ..., K-m (the paper injects into
		// the smallest classes first).
		m := opt.LocalDriftClasses
		if m > a.Classes {
			m = a.Classes
		}
		classes := make([]int, m)
		for i := 0; i < m; i++ {
			classes[i] = a.Classes - 1 - i
		}
		kind := a.Drift
		width := n / 10
		if kind == stream.Sudden {
			width = 0
		}
		// Scenario 3 keeps the class roles evolving alongside the local
		// drift.
		sched.RoleSwitchEvery = n / 4
		// Skew first, inject the local drift on the emitted stream: the
		// transform then applies at serve time, so the drift position is
		// exact in emission coordinates and buffered minority instances
		// cannot leak the old concept past the drift point. Three chained
		// events (n/4, n/2, 3n/4) keep the affected classes evolving, so a
		// detector that misses them pays for the whole remaining stream.
		var st stream.Stream = stream.NewImbalanceWrapper(base, sched, opt.Seed+11)
		for i, pos := range []int{n / 4, n / 2, 3 * n / 4} {
			st = stream.NewLocalDriftInjector(st, classes, kind, pos, width, opt.Seed+3+int64(i)*101)
		}
		return stream.NewLimit(st, n), n, nil
	}

	concepts := make([]stream.Stream, 3)
	for i := range concepts {
		c, err := a.concept(opt.Seed+int64(i)*977, i)
		if err != nil {
			return nil, 0, err
		}
		concepts[i] = c
	}
	width := 0
	switch a.Drift {
	case stream.Gradual:
		width = n / 10
	case stream.Incremental:
		width = n / 5
	}
	multi := stream.NewMultiDriftStream(concepts, a.Drift, []int{n / 3, 2 * n / 3}, width, opt.Seed+7)
	skewed := stream.NewImbalanceWrapper(multi, sched, opt.Seed+11)
	return stream.NewLimit(skewed, n), n, nil
}

// BenchmarkStream is a uniform handle over the 24 Table I benchmarks.
type BenchmarkStream struct {
	// Name as in Table I.
	Name string
	// Real marks the 12 real-world surrogates.
	Real bool
	// Build constructs the stream at the given scale and seed, returning
	// the stream and its instance count.
	Build func(scale float64, seed int64) (stream.Stream, int, error)
}

// AllBenchmarks returns all 24 benchmarks (12 real-world surrogates followed
// by 12 artificial streams) in Table I order.
func AllBenchmarks() []BenchmarkStream {
	var out []BenchmarkStream
	for _, spec := range realworld.All() {
		spec := spec
		out = append(out, BenchmarkStream{
			Name: spec.Name,
			Real: true,
			Build: func(scale float64, seed int64) (stream.Stream, int, error) {
				return spec.Build(scale, seed)
			},
		})
	}
	for _, spec := range Artificial() {
		spec := spec
		out = append(out, BenchmarkStream{
			Name: spec.Name,
			Build: func(scale float64, seed int64) (stream.Stream, int, error) {
				return spec.Build(BuildOptions{Scale: scale, Seed: seed})
			},
		})
	}
	return out
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
