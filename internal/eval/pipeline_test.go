package eval

import (
	"testing"

	"rbmim/internal/stream"
	"rbmim/internal/synth"
)

func TestRunPipelineBasics(t *testing.T) {
	spec, err := ArtificialByName("RBF5")
	if err != nil {
		t.Fatal(err)
	}
	s, n, err := spec.Build(BuildOptions{Scale: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	det := PaperDetectors(s.Schema().Features)[5].New(s.Schema().Classes) // RBM-IM
	res := RunPipeline(s, det, PipelineConfig{Instances: n, MetricWindow: 500, Seed: 1})
	if res.PMAUC <= 0 || res.PMAUC > 100 {
		t.Fatalf("pmAUC out of range: %v", res.PMAUC)
	}
	if res.PMGM < 0 || res.PMGM > 100 {
		t.Fatalf("pmGM out of range: %v", res.PMGM)
	}
	if res.Instances != n {
		t.Fatalf("instances = %d, want %d", res.Instances, n)
	}
}

func TestRunPipelineScoresGroundTruth(t *testing.T) {
	before, err := synth.NewRBF(synth.Config{Features: 10, Classes: 4, Seed: 5}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	after, err := synth.NewRBF(synth.Config{Features: 10, Classes: 4, Seed: 77}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.NewDriftStream(before, after, stream.Sudden, 6000, 0, 1)
	det := PaperDetectors(10)[5].New(4)
	res := RunPipeline(s, det, PipelineConfig{Instances: 12000, MetricWindow: 500, Seed: 1})
	if res.TruePositives+res.MissedDrifts != 1 {
		t.Fatalf("ground truth has 1 drift, scored TP=%d missed=%d", res.TruePositives, res.MissedDrifts)
	}
}

func TestAllBenchmarksBuild(t *testing.T) {
	benches := AllBenchmarks()
	if len(benches) != 24 {
		t.Fatalf("expected 24 benchmarks, got %d", len(benches))
	}
	for _, b := range benches {
		s, n, err := b.Build(0.002, 7)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if n < 2000 {
			t.Fatalf("%s: scaled length %d too small", b.Name, n)
		}
		schema := s.Schema()
		if err := schema.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		// Draw a few instances to prove the composition works.
		for i := 0; i < 50; i++ {
			in := s.Next()
			if len(in.X) != schema.Features {
				t.Fatalf("%s: instance has %d features, schema says %d", b.Name, len(in.X), schema.Features)
			}
			if in.Y < 0 || in.Y >= schema.Classes {
				t.Fatalf("%s: label %d out of range", b.Name, in.Y)
			}
		}
	}
}

func TestArtificialSpecLocalDriftBuild(t *testing.T) {
	spec, err := ArtificialByName("RBF10")
	if err != nil {
		t.Fatal(err)
	}
	s, n, err := spec.Build(BuildOptions{Scale: 0.01, Seed: 5, LocalDriftClasses: 3})
	if err != nil {
		t.Fatal(err)
	}
	td, ok := s.(interface{ TrueDrifts() []stream.DriftEvent })
	if !ok {
		t.Fatal("local drift stream must expose ground truth")
	}
	events := td.TrueDrifts()
	if len(events) != 3 {
		t.Fatalf("want 3 chained local events, got %d", len(events))
	}
	for _, ev := range events {
		if len(ev.Classes) != 3 {
			t.Fatalf("want 3 affected classes, got %v", ev.Classes)
		}
		// Smallest classes under geometric skew are the highest indices.
		for _, c := range ev.Classes {
			if c < 7 {
				t.Fatalf("affected class %d is not among the smallest three", c)
			}
		}
	}
	_ = n
}

func TestTable3SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("table3 subset is slow for -short")
	}
	out, err := RunTable3(Table3Config{
		Scale:        0.003,
		Seed:         11,
		MetricWindow: 500,
		Benchmarks:   []string{"EEG", "RBF5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(out.Rows))
	}
	if len(out.Detectors) != 6 {
		t.Fatalf("want 6 detectors, got %d", len(out.Detectors))
	}
	for _, row := range out.Rows {
		for j, r := range row.Results {
			if r.PMAUC <= 0 {
				t.Fatalf("%s/%s: zero pmAUC", row.Stream, out.Detectors[j])
			}
		}
	}
	if len(out.RanksAUC) != 6 || out.CriticalDifference <= 0 {
		t.Fatal("rank statistics missing")
	}
}
