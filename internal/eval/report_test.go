package eval

import (
	"strings"
	"testing"
)

// smallTable3 builds a minimal Table3Output without running pipelines.
func smallTable3() *Table3Output {
	out := &Table3Output{
		Detectors: []string{"A", "B"},
		Rows: []Table3Row{
			{Stream: "S1", Results: []Result{
				{Detector: "A", Stream: "S1", PMAUC: 80, PMGM: 70, Instances: 1000, DetectorSeconds: 0.01},
				{Detector: "B", Stream: "S1", PMAUC: 90, PMGM: 85, Instances: 1000, DetectorSeconds: 0.02},
			}},
			{Stream: "S2", Results: []Result{
				{Detector: "A", Stream: "S2", PMAUC: 60, PMGM: 50, Instances: 1000},
				{Detector: "B", Stream: "S2", PMAUC: 75, PMGM: 65, Instances: 1000},
			}},
		},
		RanksAUC:           []float64{2, 1},
		RanksGM:            []float64{2, 1},
		CriticalDifference: 1.0,
	}
	return out
}

func TestWriteTable3Renders(t *testing.T) {
	var sb strings.Builder
	WriteTable3(&sb, smallTable3())
	s := sb.String()
	for _, want := range []string{"S1", "S2", "80.00", "90.00", "ranks", "det s/1k inst"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestWriteRankAnalysisRenders(t *testing.T) {
	var sb strings.Builder
	out := smallTable3()
	WriteRankAnalysis(&sb, out, "pmauc")
	s := sb.String()
	if !strings.Contains(s, "Friedman") || !strings.Contains(s, "CD(") {
		t.Fatalf("rank analysis missing headers:\n%s", s)
	}
	// Best-ranked detector (B) must be listed first on the axis.
	bIdx := strings.Index(s, "B ")
	aIdx := strings.Index(s, "A ")
	if bIdx < 0 || aIdx < 0 || bIdx > aIdx {
		t.Fatalf("rank axis order wrong:\n%s", s)
	}
}

func TestWriteBayesianComparisonRenders(t *testing.T) {
	var sb strings.Builder
	out := smallTable3()
	if err := WriteBayesianComparison(&sb, out, "A", "B", "pmauc", 1.0, 7); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	if !strings.Contains(s, "P(B better)") {
		t.Fatalf("bayesian output missing probabilities:\n%s", s)
	}
	// B dominates A by 10-15 points on both streams; with only two paired
	// observations the Dirichlet prior keeps mass on the rope, but the
	// right region must still dominate the left.
	if strings.Contains(s, "P(A better) = 0.9") || strings.Contains(s, "P(A better) = 1.0") {
		t.Fatalf("A should not dominate:\n%s", s)
	}
	if err := WriteBayesianComparison(&sb, out, "missing", "B", "pmauc", 1, 7); err == nil {
		t.Fatal("unknown detector should error")
	}
}

func TestWriteSweepRenders(t *testing.T) {
	panels := []SweepOutput{{
		Stream: "RBF5",
		Series: []SweepSeries{
			{Detector: "A", Points: []SweepPoint{{X: 1, PMAUC: 70, PMGM: 60}, {X: 5, PMAUC: 80, PMGM: 72}}},
			{Detector: "B", Points: []SweepPoint{{X: 1, PMAUC: 90, PMGM: 81}, {X: 5, PMAUC: 91, PMGM: 83}}},
		},
	}}
	var sb strings.Builder
	WriteSweep(&sb, panels, "classes")
	s := sb.String()
	for _, want := range []string{"RBF5", "pmAUC", "pmGM", "drift detection rate"} {
		if !strings.Contains(s, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, s)
		}
	}
}

func TestDefaultGridsCoverAllDetectors(t *testing.T) {
	grids := DefaultGrids()
	if len(grids) != 6 {
		t.Fatalf("want 6 grids, got %d", len(grids))
	}
	names := map[string]bool{}
	for _, g := range grids {
		names[g.Detector] = true
		if len(g.Params) == 0 {
			t.Fatalf("%s: empty grid", g.Detector)
		}
		for _, p := range g.Params {
			if len(p.Values) == 0 {
				t.Fatalf("%s/%s: empty values", g.Detector, p.Name)
			}
			box := p.TuneBox()
			if box.Min >= box.Max {
				t.Fatalf("%s/%s: degenerate tuning box", g.Detector, p.Name)
			}
		}
	}
	for _, want := range []string{"WSTD", "RDDM", "FHDDM", "PerfSim", "DDM-OCI", "RBM-IM"} {
		if !names[want] {
			t.Fatalf("grid for %s missing", want)
		}
	}
}

func TestPaperDetectorFactoriesValid(t *testing.T) {
	fax := PaperDetectors(10)
	if len(fax) != 6 {
		t.Fatalf("want 6 paper detectors, got %d", len(fax))
	}
	for _, f := range fax {
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		d := f.New(4)
		if d.Name() != f.Name {
			t.Fatalf("factory %q builds detector named %q", f.Name, d.Name())
		}
	}
	extras := ExtraDetectors()
	if len(extras) != 4 {
		t.Fatalf("want 4 extra detectors, got %d", len(extras))
	}
	for _, f := range extras {
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTable3ScoresForAndSorting(t *testing.T) {
	out := smallTable3()
	scores, err := out.ScoresFor("B", "pmauc")
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 || scores[0] != 90 || scores[1] != 75 {
		t.Fatalf("scores = %v", scores)
	}
	if _, err := out.ScoresFor("Z", "pmauc"); err == nil {
		t.Fatal("unknown detector should error")
	}
	sorted := out.SortedByRank("pmauc")
	if sorted[0] != "B" || sorted[1] != "A" {
		t.Fatalf("sorted = %v", sorted)
	}
}
