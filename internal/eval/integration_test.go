package eval

import (
	"testing"

	"rbmim/internal/detectors"
	"rbmim/internal/stream"
)

// oracleDetector fires exactly once per ground-truth event, shortly after it
// begins, with perfect class attribution — an upper reference for every real
// detector.
type oracleDetector struct {
	events  []stream.DriftEvent
	i       int
	next    int
	classes []int
}

func (o *oracleDetector) Name() string        { return "Oracle" }
func (o *oracleDetector) Reset()              {}
func (o *oracleDetector) DriftClasses() []int { return o.classes }
func (o *oracleDetector) Update(detectors.Observation) detectors.State {
	defer func() { o.i++ }()
	if o.next < len(o.events) && o.i == o.events[o.next].Position+o.events[o.next].Width+200 {
		o.classes = o.events[o.next].Classes
		o.next++
		return detectors.Drift
	}
	return detectors.None
}

// neverDetector never signals — the lower reference (a frozen pipeline).
type neverDetector struct{}

func (neverDetector) Name() string                                 { return "Never" }
func (neverDetector) Reset()                                       {}
func (neverDetector) Update(detectors.Observation) detectors.State { return detectors.None }

// buildLocal builds the Figure 8 stream for RBF10 with m drifted classes.
func buildLocal(t *testing.T, m int) (stream.Stream, int) {
	t.Helper()
	spec, err := ArtificialByName("RBF10")
	if err != nil {
		t.Fatal(err)
	}
	s, n, err := spec.Build(BuildOptions{Scale: 0.02, Seed: 42, LocalDriftClasses: m})
	if err != nil {
		t.Fatal(err)
	}
	return s, n
}

func runWith(t *testing.T, s stream.Stream, n int, det detectors.Detector) Result {
	t.Helper()
	return RunPipeline(s, det, PipelineConfig{Instances: n, MetricWindow: 500, Seed: 1})
}

// TestOracleBeatsFrozenWhenManyClassesDrift asserts the economics that make
// the Figure 8 experiment meaningful: when most classes drift, adapting on
// the (perfect) signal must clearly beat a frozen pipeline, and the frozen
// pipeline must degrade as the injected damage grows.
func TestOracleBeatsFrozenWhenManyClassesDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("integration economics test")
	}
	s1, n1 := buildLocal(t, 10)
	td := s1.(interface{ TrueDrifts() []stream.DriftEvent })
	oracle := runWith(t, s1, n1, &oracleDetector{events: td.TrueDrifts()})

	s2, n2 := buildLocal(t, 10)
	frozen := runWith(t, s2, n2, neverDetector{})

	if oracle.PMAUC <= frozen.PMAUC+5 {
		t.Fatalf("oracle pmAUC %.1f should clearly beat frozen %.1f at m=10", oracle.PMAUC, frozen.PMAUC)
	}

	s3, n3 := buildLocal(t, 1)
	frozenSmall := runWith(t, s3, n3, neverDetector{})
	if frozenSmall.PMAUC <= frozen.PMAUC {
		t.Fatalf("frozen pipeline should hurt more with more drifted classes: m=1 %.1f vs m=10 %.1f",
			frozenSmall.PMAUC, frozen.PMAUC)
	}
}

// TestRBMIMDetectsAllLocalDriftsAtMEquals1 asserts the paper's headline
// claim (RQ3): RBM-IM catches local drifts affecting a single minority
// class, which the windowed statistical detectors miss.
func TestRBMIMDetectsAllLocalDriftsAtMEquals1(t *testing.T) {
	if testing.Short() {
		t.Skip("integration detection test")
	}
	s, n := buildLocal(t, 1)
	det := PaperDetectors(s.Schema().Features)[5].New(s.Schema().Classes) // RBM-IM
	res := runWith(t, s, n, det)
	if res.TruePositives < 2 {
		t.Fatalf("RBM-IM detected %d/3 single-class local drifts", res.TruePositives)
	}
	// A single seed is too noisy for a detector-vs-detector assertion here;
	// the comparative claim (standard detectors missing local minority
	// drifts) is exercised by the Figure 8 sweep (cmd/localdrift,
	// BenchmarkFig8LocalDrift) across 12 benchmarks.
}

// TestRBMIMGlobalDriftDetection asserts RQ1-level behavior on a sudden
// global drift: detection within the horizon.
func TestRBMIMGlobalDriftDetection(t *testing.T) {
	spec, err := ArtificialByName("RBF5")
	if err != nil {
		t.Fatal(err)
	}
	s, n, err := spec.Build(BuildOptions{Scale: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	det := PaperDetectors(s.Schema().Features)[5].New(s.Schema().Classes)
	res := RunPipeline(s, det, PipelineConfig{Instances: n, MetricWindow: 500, Seed: 3})
	if res.TruePositives == 0 {
		t.Fatalf("RBM-IM missed both global drifts (signals at %v)", res.Signals)
	}
}

// TestSweepRunnersProduceFullGrids exercises the Figure 8/9 runners on a
// small configuration.
func TestSweepRunnersProduceFullGrids(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grid test")
	}
	out, err := RunLocalDriftSweep(SweepConfig{
		Scale:        0.004,
		Seed:         5,
		MetricWindow: 500,
		Benchmarks:   []string{"RBF5"},
		Values:       []int{1, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Series) != 6 {
		t.Fatalf("grid shape wrong: %d panels", len(out))
	}
	for _, s := range out[0].Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: %d points", s.Detector, len(s.Points))
		}
		for _, p := range s.Points {
			if p.PMAUC <= 0 || p.PMAUC > 100 {
				t.Fatalf("%s: pmAUC %v", s.Detector, p.PMAUC)
			}
		}
	}

	out2, err := RunImbalanceSweep(SweepConfig{
		Scale:        0.004,
		Seed:         5,
		MetricWindow: 500,
		Benchmarks:   []string{"Hyperplane5"},
		Values:       []int{50, 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 1 || len(out2[0].Series[0].Points) != 2 {
		t.Fatal("imbalance grid shape wrong")
	}
}
