package eval

import "rbmim/internal/tune"

// Grid is one detector's hyper-parameter grid from Table II.
type Grid struct {
	// Detector is the table abbreviation.
	Detector string
	// Params maps parameter names to their candidate values.
	Params []GridParam
}

// GridParam is one row of Table II: a named parameter with its swept values.
type GridParam struct {
	Name   string
	Values []float64
}

// TuneBox converts the grid row into a continuous tuning box.
func (g GridParam) TuneBox() tune.Param {
	min, max := g.Values[0], g.Values[0]
	for _, v := range g.Values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return tune.Param{Name: g.Name, Min: min, Max: max, Init: (min + max) / 2}
}

// DefaultGrids returns the Table II parameter grids for the six compared
// detectors.
func DefaultGrids() []Grid {
	return []Grid{
		{Detector: "WSTD", Params: []GridParam{
			{Name: "window", Values: []float64{25, 50, 75, 100}},
			{Name: "warning_sig", Values: []float64{0.01, 0.03, 0.05, 0.07}},
			{Name: "drift_sig", Values: []float64{0.001, 0.003, 0.005, 0.007}},
			{Name: "max_old", Values: []float64{1000, 2000, 3000, 4000}},
		}},
		{Detector: "RDDM", Params: []GridParam{
			{Name: "warning_threshold", Values: []float64{0.90, 0.92, 0.95, 0.98}},
			{Name: "drift_threshold", Values: []float64{0.80, 0.85, 0.90, 0.95}},
			{Name: "min_errors", Values: []float64{10, 30, 50, 70}},
			{Name: "min_instances", Values: []float64{3000, 5000, 7000, 9000}},
			{Name: "max_instances", Values: []float64{10000, 20000, 30000, 40000}},
			{Name: "warn_limit", Values: []float64{800, 1000, 1200, 1400}},
		}},
		{Detector: "FHDDM", Params: []GridParam{
			{Name: "window", Values: []float64{25, 50, 75, 100}},
			{Name: "delta", Values: []float64{0.000001, 0.00001, 0.0001, 0.001}},
		}},
		{Detector: "PerfSim", Params: []GridParam{
			{Name: "lambda", Values: []float64{0.1, 0.2, 0.3, 0.4}},
			{Name: "min_errors", Values: []float64{10, 30, 50, 70}},
		}},
		{Detector: "DDM-OCI", Params: []GridParam{
			{Name: "warning_threshold", Values: []float64{0.90, 0.92, 0.95, 0.98}},
			{Name: "drift_threshold", Values: []float64{0.80, 0.85, 0.90, 0.95}},
			{Name: "min_errors", Values: []float64{10, 30, 50, 70}},
		}},
		{Detector: "RBM-IM", Params: []GridParam{
			{Name: "batch_size", Values: []float64{25, 50, 75, 100}},
			{Name: "hidden_fraction", Values: []float64{0.25, 0.5, 0.75, 1.0}},
			{Name: "learning_rate", Values: []float64{0.01, 0.03, 0.05, 0.07}},
			{Name: "gibbs_steps", Values: []float64{1, 2, 3, 4}},
		}},
	}
}
