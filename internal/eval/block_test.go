package eval

import (
	"reflect"
	"strings"
	"testing"

	"rbmim/internal/classifier"
	"rbmim/internal/detectors"
	"rbmim/internal/metrics"
	"rbmim/internal/stream"
	"rbmim/internal/synth"
)

// runPipelineReference is a frozen copy of the pre-block-refactor
// RunPipeline (the per-instance test-then-train loop, without block staging
// or defensive ring copies), kept as the semantic reference that
// RunPipeline with BlockSize 1 must reproduce byte for byte. Warnings are
// counted identically so the Result structs compare whole.
func runPipelineReference(s stream.Stream, det detectors.Detector, cfg PipelineConfig) Result {
	cfg.fill()
	schema := s.Schema()
	tree := classifier.NewPerceptronTree(schema.Features, schema.Classes, cfg.Seed)
	preq := metrics.NewPrequential(schema.Classes, cfg.MetricWindow)
	res := Result{Detector: det.Name(), Stream: "", Instances: cfg.Instances}

	trainUntil := cfg.Warmup
	coolUntil := 0
	ring := make([]stream.Instance, 0, 2*cfg.MetricWindow)
	ringPos := 0
	for i := 0; i < cfg.Instances; i++ {
		in := s.Next()
		pred, scores := tree.Predict(in.X)
		preq.Add(in.Y, pred, scores)

		obs := detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: pred, Scores: scores}
		state := det.Update(obs)

		switch state {
		case detectors.Drift:
			if i >= coolUntil {
				res.Signals = append(res.Signals, i)
				adaptClassifier(tree, det, ring)
				det.Reset()
				coolUntil = i + cfg.Cooldown
				if i+cfg.AdaptWindow > trainUntil {
					trainUntil = i + cfg.AdaptWindow
				}
			}
		case detectors.Warning:
			res.Warnings++
		}
		if cfg.TrainContinuously || i < trainUntil {
			tree.Train(in.X, in.Y)
		}
		if len(ring) < cap(ring) {
			ring = append(ring, in)
		} else if cap(ring) > 0 {
			ring[ringPos] = in
			ringPos = (ringPos + 1) % cap(ring)
		}
	}
	preq.Finish()
	res.PMAUC = preq.PMAUC()
	res.PMGM = preq.PMGM()
	res.Accuracy = preq.Accuracy()
	res.Kappa = preq.Kappa()
	scoreDrifts(&res, s, cfg)
	return res
}

// stripTimings zeroes the wall-clock fields that legitimately differ
// between two otherwise identical runs.
func stripTimings(r Result) Result {
	r.DetectorSeconds = 0
	r.AdaptSeconds = 0
	return r
}

// TestBlockSize1ByteIdenticalToReferenceLoop is the refactor's anchor: on
// fixed-seed benchmark streams, for both a trainable (RBM-IM) and a
// statistical (RDDM) detector, RunPipeline with BlockSize 1 must produce a
// Result identical to the frozen pre-refactor loop in every non-timing
// field — metrics, signal positions, warnings, and drift scoring.
func TestBlockSize1ByteIdenticalToReferenceLoop(t *testing.T) {
	buildDrift := func() stream.Stream {
		before, err := synth.NewRBF(synth.Config{Features: 10, Classes: 4, Seed: 5}, 3, 0.07)
		if err != nil {
			t.Fatal(err)
		}
		after, err := synth.NewRBF(synth.Config{Features: 10, Classes: 4, Seed: 77}, 3, 0.07)
		if err != nil {
			t.Fatal(err)
		}
		return stream.NewDriftStream(before, after, stream.Sudden, 6000, 0, 1)
	}
	buildBench := func() stream.Stream {
		spec, err := ArtificialByName("RBF5")
		if err != nil {
			t.Fatal(err)
		}
		s, _, err := spec.Build(BuildOptions{Scale: 0.01, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name      string
		build     func() stream.Stream
		detector  int // PaperDetectors index
		instances int
	}{
		{"RBM-IM/driftstream", buildDrift, 5, 12000},
		{"RDDM/driftstream", buildDrift, 1, 12000},
		{"RBM-IM/RBF5", buildBench, 5, 8000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := PipelineConfig{Instances: tc.instances, MetricWindow: 500, Seed: 1, BlockSize: 1}
			features := tc.build().Schema().Features
			classes := tc.build().Schema().Classes
			want := runPipelineReference(tc.build(), PaperDetectors(features)[tc.detector].New(classes), cfg)
			got := RunPipeline(tc.build(), PaperDetectors(features)[tc.detector].New(classes), cfg)
			if !reflect.DeepEqual(stripTimings(got), stripTimings(want)) {
				t.Fatalf("BlockSize 1 diverges from the reference loop:\n got %+v\nwant %+v", stripTimings(got), stripTimings(want))
			}
		})
	}
}

// TestBlockedPipelineDetectsDrift smoke-tests the batched path end to end:
// with a large block the pipeline must still detect an injected sudden
// drift and produce in-range metrics.
func TestBlockedPipelineDetectsDrift(t *testing.T) {
	before, err := synth.NewRBF(synth.Config{Features: 10, Classes: 4, Seed: 5}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	after, err := synth.NewRBF(synth.Config{Features: 10, Classes: 4, Seed: 77}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.NewDriftStream(before, after, stream.Sudden, 6000, 0, 1)
	det := PaperDetectors(10)[5].New(4) // RBM-IM
	res := RunPipeline(s, det, PipelineConfig{
		Instances: 12000, MetricWindow: 500, Seed: 1, BlockSize: 256,
		// Block semantics shift signal timing relative to the per-instance
		// loop; allow the same post-drift slack the detector-level tests use.
		DriftHorizon: 4000,
	})
	if res.PMAUC <= 0 || res.PMAUC > 100 {
		t.Fatalf("pmAUC out of range: %v", res.PMAUC)
	}
	if res.TruePositives+res.MissedDrifts != 1 {
		t.Fatalf("ground truth has 1 drift, scored TP=%d missed=%d", res.TruePositives, res.MissedDrifts)
	}
	if res.TruePositives != 1 {
		t.Fatalf("blocked pipeline missed the sudden drift (signals %v)", res.Signals)
	}
}

// reusingStream emits instances whose X always views the same backing
// array, mutated on every Next — the hostile stream contract the
// adaptation ring must survive.
type reusingStream struct {
	base stream.Stream
	buf  []float64
}

func (r *reusingStream) Schema() stream.Schema { return r.base.Schema() }
func (r *reusingStream) Next() stream.Instance {
	in := r.base.Next()
	if r.buf == nil {
		r.buf = make([]float64, len(in.X))
	}
	copy(r.buf, in.X)
	return stream.Instance{X: r.buf, Y: in.Y, Weight: in.Weight}
}

// periodicSignals deterministically emits Drift every driftEvery updates
// and Warning every warnEvery updates, forcing ring replays at known
// positions without depending on detector dynamics.
type periodicSignals struct {
	n                     int
	driftEvery, warnEvery int
}

func (d *periodicSignals) Update(detectors.Observation) detectors.State {
	d.n++
	if d.driftEvery > 0 && d.n%d.driftEvery == 0 {
		return detectors.Drift
	}
	if d.warnEvery > 0 && d.n%d.warnEvery == 0 {
		return detectors.Warning
	}
	return detectors.None
}

// Reset keeps the counter: the pipeline resets after every handled drift,
// and the stub must keep signalling deterministically across resets.
func (d *periodicSignals) Reset()       {}
func (d *periodicSignals) Name() string { return "periodic" }

// TestRingSurvivesMutatedStreamBuffers is the satellite regression test: a
// stream that mutates the X it returned must not corrupt drift-replay. The
// run over the buffer-reusing stream must equal the run over the clean
// stream exactly — before the ring copied defensively, the replay trained
// the rebuilt classifier on 2*MetricWindow copies of the newest instance.
func TestRingSurvivesMutatedStreamBuffers(t *testing.T) {
	build := func() stream.Stream {
		s, err := synth.NewRBF(synth.Config{Features: 8, Classes: 3, Seed: 9}, 3, 0.07)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// BlockSize 1 exercises the ring replay; BlockSize 8 additionally
	// exercises the block staging, which holds instances across Next calls
	// and must therefore also own its X buffers.
	for _, block := range []int{1, 8} {
		cfg := PipelineConfig{Instances: 9000, MetricWindow: 500, Seed: 2, BlockSize: block}
		clean := RunPipeline(build(), &periodicSignals{driftEvery: 3000}, cfg)
		hostile := RunPipeline(&reusingStream{base: build()}, &periodicSignals{driftEvery: 3000}, cfg)
		if len(clean.Signals) == 0 {
			t.Fatalf("BlockSize %d: no drift handled; the replay path was never exercised", block)
		}
		if !reflect.DeepEqual(stripTimings(clean), stripTimings(hostile)) {
			t.Fatalf("BlockSize %d: buffer-reusing stream corrupted the run:\n clean   %+v\n hostile %+v", block, stripTimings(clean), stripTimings(hostile))
		}
	}
}

// TestWarningsCounted pins the satellite accounting: Warning states land in
// Result.Warnings and surface in the Table III report.
func TestWarningsCounted(t *testing.T) {
	gen, err := synth.NewRBF(synth.Config{Features: 8, Classes: 3, Seed: 4}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	res := RunPipeline(gen, &periodicSignals{warnEvery: 100}, PipelineConfig{Instances: 5000, MetricWindow: 500, Seed: 2})
	if res.Warnings != 50 {
		t.Fatalf("Result.Warnings = %d, want 50 (every 100th of 5000)", res.Warnings)
	}
	out := &Table3Output{
		Detectors: []string{"stub"},
		Rows: []Table3Row{{Stream: "s", Results: []Result{{
			Instances: 5000, Warnings: 50, PMAUC: 50, PMGM: 50,
		}}}},
		RanksAUC: []float64{1},
		RanksGM:  []float64{1},
	}
	var sb strings.Builder
	WriteTable3(&sb, out)
	if !strings.Contains(sb.String(), "warn/1k inst") || !strings.Contains(sb.String(), "10.00") {
		t.Fatalf("Table III output missing the warnings row (50 warnings / 5k = 10.00 per 1k):\n%s", sb.String())
	}
}
