// Package telemetry provides the serving stack's latency instrumentation:
// fixed-bucket log2 histograms cheap enough for the hot path (two atomic
// adds per observation, no locks, no allocation), quantile summaries
// computed from the buckets, a Prometheus histogram exposition, and a
// bucket-wise merge for cluster-wide aggregation.
//
// # Buckets
//
// A Histogram has NumBuckets buckets with power-of-two nanosecond upper
// bounds: bucket i holds durations in (2^(i-1), 2^i] ns (bucket 0 holds
// [0, 1] ns), and the last bucket is the +Inf overflow. The largest finite
// bound is 2^38 ns ≈ 4.6 min — far beyond any request this stack serves —
// so the overflow bucket only ever catches pathology. Log2 bounds trade
// resolution for speed versus HDR-style histograms: the bucket index is one
// bits.Len64, the memory is a fixed 41 words, and the ~2x relative error
// per bucket is immaterial for tail-latency monitoring (p99 at 1.3ms vs
// 1.9ms reads the same to an operator; see DESIGN.md "Latency telemetry").
//
// Histograms are checkpoint-free by design: they describe the process, not
// the detector state, so they never enter the checkpoint codec and restart
// from zero with the process.
//
// # Clock
//
// Now returns nanoseconds on the process-local monotonic clock (time.Since
// against a package epoch — monotonic by construction, allocation-free).
// Timestamps from Now are only meaningful inside one process and are never
// serialized.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// NumBuckets is the bucket count of every Histogram: indices 0..NumBuckets-2
// have finite upper bounds 2^i ns; the last bucket is the +Inf overflow.
const NumBuckets = 40

// maxFinite is the index of the largest finite-bounded bucket.
const maxFinite = NumBuckets - 2

var epoch = time.Now()

// Now returns the current reading of the process-local monotonic clock in
// nanoseconds. Subtract two readings to get an elapsed duration for
// Histogram.Observe. It never allocates.
func Now() int64 { return int64(time.Since(epoch)) }

// Level selects how much of the serving stack is instrumented. The zero
// value is Full: telemetry is on by default, and the benchguard bars are
// enforced with it on.
type Level uint8

const (
	// Full instruments every stage: wire service time, client RTT, shard
	// queue-wait, detector update, and checkpoint save/put.
	Full Level = iota
	// Basic instruments only the wire-visible stages (server service time,
	// client RTT), skipping the per-envelope and per-flush monitor stages.
	Basic
	// Off disables all timing. Detection output is bit-identical at every
	// level — telemetry only ever reads the clock and already-computed
	// values — so Off exists for measuring the instrumentation itself.
	Off
)

// ParseLevel parses the -telemetry flag values "full", "basic", "off".
func ParseLevel(s string) (Level, error) {
	switch s {
	case "full", "":
		return Full, nil
	case "basic":
		return Basic, nil
	case "off":
		return Off, nil
	}
	return Full, fmt.Errorf("telemetry: unknown level %q (want full, basic, or off)", s)
}

// String returns the flag spelling of l.
func (l Level) String() string {
	switch l {
	case Basic:
		return "basic"
	case Off:
		return "off"
	default:
		return "full"
	}
}

// Histogram is a fixed-bucket log2 latency histogram safe for concurrent
// use. The zero value is ready; a nil *Histogram ignores observations, so
// callers can gate instrumentation by leaving the pointer nil.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64
}

// bucketIndex maps a nanosecond duration to its bucket: the smallest i with
// ns <= 2^i, clamped to the overflow bucket.
func bucketIndex(ns int64) int {
	if ns <= 1 {
		return 0
	}
	i := bits.Len64(uint64(ns - 1))
	if i > maxFinite {
		return NumBuckets - 1
	}
	return i
}

// BucketBound returns bucket i's upper bound in nanoseconds, or false for
// the +Inf overflow bucket.
func BucketBound(i int) (int64, bool) {
	if i < 0 || i > maxFinite {
		return 0, false
	}
	return 1 << uint(i), true
}

// Observe records one duration. Negative durations (a clock anomaly) count
// as zero. Observe on a nil Histogram is a no-op.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
}

// Load snapshots the histogram into a Stage named name. Concurrent
// observations may straddle the per-bucket loads; every counter read is
// individually consistent, which is all a monitoring read needs.
func (h *Histogram) Load(name string) Stage {
	st := Stage{Stage: name, Buckets: make([]uint64, NumBuckets)}
	if h == nil {
		return st
	}
	for i := range st.Buckets {
		c := h.buckets[i].Load()
		st.Buckets[i] = c
		st.Count += c
	}
	st.SumNS = h.sum.Load()
	st.fillQuantiles()
	return st
}

// Stage is one instrumented stage's snapshotted histogram: raw buckets for
// merging and Prometheus exposition, plus p50/p95/p99 interpolated from the
// buckets (rounded to whole nanoseconds, so the canonical JSON encoding is
// byte-stable). Buckets[i] counts durations in bucket i (see BucketBound);
// the quantile estimates carry the bucket resolution's ~2x relative error.
type Stage struct {
	Stage   string
	Count   uint64
	SumNS   int64
	P50NS   int64
	P95NS   int64
	P99NS   int64
	Buckets []uint64
}

func (st *Stage) fillQuantiles() {
	st.P50NS = Quantile(st.Buckets, 0.50)
	st.P95NS = Quantile(st.Buckets, 0.95)
	st.P99NS = Quantile(st.Buckets, 0.99)
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds from a
// bucket count vector, interpolating linearly inside the selected bucket.
// An empty histogram estimates 0; ranks landing in the overflow bucket
// return its lower bound (the estimate is then a known underestimate).
func Quantile(buckets []uint64, q float64) int64 {
	var total uint64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		before := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		var lo, hi int64
		if i > 0 {
			lo = 1 << uint(i-1)
		}
		if i <= maxFinite {
			hi = 1 << uint(i)
		} else {
			return 1 << uint(maxFinite) // overflow bucket: lower bound
		}
		frac := (rank - float64(before)) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	return 1 << uint(maxFinite)
}

// MergeStages folds any number of stage lists into one, summing buckets
// element-wise per stage name and recomputing count, sum, and quantiles
// from the merged buckets. The result is sorted by stage name, so merged
// output (cluster-wide views, server overlays) is deterministic.
func MergeStages(groups ...[]Stage) []Stage {
	byName := map[string]*Stage{}
	for _, g := range groups {
		for i := range g {
			src := &g[i]
			dst, ok := byName[src.Stage]
			if !ok {
				dst = &Stage{Stage: src.Stage, Buckets: make([]uint64, len(src.Buckets))}
				byName[src.Stage] = dst
			}
			if len(src.Buckets) > len(dst.Buckets) {
				dst.Buckets = append(dst.Buckets, make([]uint64, len(src.Buckets)-len(dst.Buckets))...)
			}
			for j, c := range src.Buckets {
				dst.Buckets[j] += c
			}
			dst.SumNS += src.SumNS
		}
	}
	out := make([]Stage, 0, len(byName))
	for _, st := range byName {
		st.Count = 0
		for _, c := range st.Buckets {
			st.Count += c
		}
		st.fillQuantiles()
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// WriteStages emits stages as one Prometheus histogram family named name:
// per stage, cumulative name_bucket{stage,le} series with le in seconds,
// the mandatory le="+Inf" bucket equal to name_count, then name_sum (in
// seconds) and name_count. Stages must already be sorted by name (Load
// callers assemble them sorted; MergeStages sorts), which makes consecutive
// scrapes byte-identical.
func WriteStages(w io.Writer, name, help string, stages []Stage) error {
	if len(stages) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	for i := range stages {
		st := &stages[i]
		var cum uint64
		for j, c := range st.Buckets {
			cum += c
			le := "+Inf"
			if bound, ok := BucketBound(j); ok {
				le = strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{stage=%q,le=%q} %d\n", name, st.Stage, le, cum); err != nil {
				return err
			}
		}
		if len(st.Buckets) < NumBuckets {
			// A short bucket vector (foreign merge input) still owes the
			// mandatory le="+Inf" bucket.
			if _, err := fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", name, st.Stage, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum{stage=%q} %s\n", name, st.Stage,
			strconv.FormatFloat(float64(st.SumNS)/1e9, 'g', -1, 64)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{stage=%q} %d\n", name, st.Stage, cum); err != nil {
			return err
		}
	}
	return nil
}
