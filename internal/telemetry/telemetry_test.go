package telemetry

import (
	"math/rand"
	"strings"
	"testing"

	"rbmim/internal/telemetry/telemetrytest"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{1 << maxFinite, maxFinite},
		{1<<maxFinite + 1, NumBuckets - 1},
		{1 << 62, NumBuckets - 1},
	}
	for _, c := range cases {
		ns := c.ns
		if ns < 0 {
			ns = 0 // Observe clamps; bucketIndex expects non-negative
		}
		if got := bucketIndex(ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// The index invariant against the exported bound: every value lands in a
	// bucket whose bound covers it and whose predecessor's does not.
	for _, ns := range []int64{1, 2, 3, 7, 100, 1023, 1025, 999999, 1 << 30} {
		i := bucketIndex(ns)
		if bound, ok := BucketBound(i); ok && ns > bound {
			t.Errorf("ns=%d landed in bucket %d with bound %d", ns, i, bound)
		}
		if i > 0 {
			if prev, ok := BucketBound(i - 1); ok && ns <= prev {
				t.Errorf("ns=%d landed in bucket %d but fits bucket %d (bound %d)", ns, i, i-1, prev)
			}
		}
	}
}

func TestObserveAndLoad(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(1000) // bucket 10 (le 1024ns)
	}
	st := h.Load("x")
	if st.Count != 1000 || st.SumNS != 1000*1000 {
		t.Fatalf("Count=%d SumNS=%d", st.Count, st.SumNS)
	}
	if st.Buckets[10] != 1000 {
		t.Fatalf("bucket 10 = %d", st.Buckets[10])
	}
	// All quantiles land inside bucket 10's range (512, 1024].
	for _, q := range []int64{st.P50NS, st.P95NS, st.P99NS} {
		if q <= 512 || q > 1024 {
			t.Fatalf("quantile %d outside (512,1024]", q)
		}
	}
}

func TestNilHistogramIsNoop(t *testing.T) {
	var h *Histogram
	h.Observe(123) // must not panic
	st := h.Load("x")
	if st.Count != 0 || st.Stage != "x" {
		t.Fatalf("nil Load = %+v", st)
	}
}

func TestQuantileOrdering(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		h.Observe(rng.Int63n(10_000_000))
	}
	st := h.Load("x")
	if !(st.P50NS <= st.P95NS && st.P95NS <= st.P99NS) {
		t.Fatalf("quantiles not ordered: p50=%d p95=%d p99=%d", st.P50NS, st.P95NS, st.P99NS)
	}
	// Uniform [0, 10ms): p50 should be within a bucket's 2x error of 5ms.
	if st.P50NS < 2_500_000 || st.P50NS > 10_000_000 {
		t.Fatalf("p50=%d implausible for uniform [0,10ms)", st.P50NS)
	}
}

func TestQuantileEmpty(t *testing.T) {
	if q := Quantile(make([]uint64, NumBuckets), 0.99); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
}

// TestMergeStagesBucketSums is the bucket-sum property test: merging any
// split of observations equals observing them all in one histogram.
func TestMergeStagesBucketSums(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var whole, a, b Histogram
	for i := 0; i < 5000; i++ {
		ns := rng.Int63n(1 << 40) // exercises the overflow bucket too
		whole.Observe(ns)
		if i%3 == 0 {
			a.Observe(ns)
		} else {
			b.Observe(ns)
		}
	}
	merged := MergeStages(
		[]Stage{a.Load("x"), a.Load("other")},
		[]Stage{b.Load("x")},
	)
	var got *Stage
	for i := range merged {
		if merged[i].Stage == "x" {
			got = &merged[i]
		}
	}
	if got == nil {
		t.Fatal("merged output lost stage x")
	}
	want := whole.Load("x")
	if got.Count != want.Count || got.SumNS != want.SumNS {
		t.Fatalf("merged Count=%d SumNS=%d, want %d/%d", got.Count, got.SumNS, want.Count, want.SumNS)
	}
	for i := range want.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: merged %d, want %d", i, got.Buckets[i], want.Buckets[i])
		}
	}
	if got.P50NS != want.P50NS || got.P95NS != want.P95NS || got.P99NS != want.P99NS {
		t.Fatalf("merged quantiles %d/%d/%d, want %d/%d/%d",
			got.P50NS, got.P95NS, got.P99NS, want.P50NS, want.P95NS, want.P99NS)
	}
	// Output sorted by stage name.
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Stage >= merged[i].Stage {
			t.Fatalf("merged stages not sorted: %q >= %q", merged[i-1].Stage, merged[i].Stage)
		}
	}
}

// TestWriteStagesConformance checks the Prometheus exposition invariants:
// HELP/TYPE present, buckets cumulative (monotone nondecreasing), the
// mandatory le="+Inf" bucket equal to _count, and every scrape of the same
// data byte-identical.
func TestWriteStagesConformance(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 4096; i *= 2 {
		h.Observe(i)
	}
	stages := []Stage{h.Load("alpha"), h.Load("beta")}
	var sb1, sb2 strings.Builder
	if err := WriteStages(&sb1, "rbmim_stage_seconds", "help text", stages); err != nil {
		t.Fatal(err)
	}
	if err := WriteStages(&sb2, "rbmim_stage_seconds", "help text", stages); err != nil {
		t.Fatal(err)
	}
	out := sb1.String()
	if out != sb2.String() {
		t.Fatal("two scrapes of identical data differ")
	}
	if !strings.Contains(out, "# HELP rbmim_stage_seconds ") || !strings.Contains(out, "# TYPE rbmim_stage_seconds histogram") {
		t.Fatalf("missing HELP/TYPE:\n%s", out)
	}
	telemetrytest.CheckHistogramExposition(t, out, "rbmim_stage_seconds")
}

func TestObserveAllocsAndParallel(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(Now()) }); n != 0 {
		t.Fatalf("Observe allocates %.1f per op", n)
	}
	t.Run("race", func(t *testing.T) {
		t.Parallel()
		done := make(chan struct{})
		go func() {
			for i := 0; i < 10000; i++ {
				h.Observe(int64(i))
			}
			close(done)
		}()
		for i := 0; i < 100; i++ {
			h.Load("x")
		}
		<-done
	})
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"": Full, "full": Full, "basic": Basic, "off": Off} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Fatal("ParseLevel accepted bogus")
	}
	if Full.String() != "full" || Basic.String() != "basic" || Off.String() != "off" {
		t.Fatal("Level.String mismatch")
	}
}

func TestNowMonotonic(t *testing.T) {
	a := Now()
	b := Now()
	if a < 0 || b < a {
		t.Fatalf("Now not monotone: %d then %d", a, b)
	}
}
