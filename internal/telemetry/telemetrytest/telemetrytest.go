// Package telemetrytest holds the Prometheus histogram-exposition
// conformance checker shared by the telemetry, monitor, and server tests.
package telemetrytest

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
)

// CheckHistogramExposition asserts the Prometheus exposition invariants for
// every stage of the named histogram family: bucket values cumulative
// (monotone nondecreasing), the mandatory le="+Inf" bucket present and
// equal to _count, and every metric line well-formed ("name value").
func CheckHistogramExposition(t *testing.T, exposition, family string) {
	t.Helper()
	type acc struct {
		last    uint64
		infSeen bool
		inf     uint64
		count   uint64
		hasCnt  bool
	}
	stages := map[string]*acc{}
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, family) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed metric line %q", line)
		}
		val, err := strconv.ParseUint(fields[1], 10, 64)
		stage := LabelValue(t, fields[0], "stage")
		a := stages[stage]
		if a == nil {
			a = &acc{}
			stages[stage] = a
		}
		switch {
		case strings.HasPrefix(line, family+"_bucket{"):
			if err != nil {
				t.Fatalf("non-integer bucket value in %q", line)
			}
			if val < a.last {
				t.Fatalf("bucket counts not cumulative at %q (%d < %d)", line, val, a.last)
			}
			a.last = val
			if LabelValue(t, fields[0], "le") == "+Inf" {
				a.infSeen, a.inf = true, val
			}
		case strings.HasPrefix(line, family+"_count{"):
			if err != nil {
				t.Fatalf("non-integer count in %q", line)
			}
			a.hasCnt, a.count = true, val
		}
	}
	if len(stages) == 0 {
		t.Fatalf("no %s series found", family)
	}
	for stage, a := range stages {
		if !a.infSeen {
			t.Fatalf("stage %q missing le=\"+Inf\" bucket", stage)
		}
		if !a.hasCnt {
			t.Fatalf("stage %q missing _count", stage)
		}
		if a.inf != a.count {
			t.Fatalf("stage %q: le=\"+Inf\" bucket %d != _count %d", stage, a.inf, a.count)
		}
	}
}

// LabelValue extracts one label's value from a metric name with labels,
// returning "" when the label is absent.
func LabelValue(t *testing.T, metric, label string) string {
	t.Helper()
	i := strings.Index(metric, label+`="`)
	if i < 0 {
		return ""
	}
	rest := metric[i+len(label)+2:]
	j := strings.Index(rest, `"`)
	if j < 0 {
		t.Fatalf("unterminated label in %q", metric)
	}
	return rest[:j]
}
