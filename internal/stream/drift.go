package stream

import (
	"math/rand"
)

// DriftKind enumerates the speed-of-change taxonomies of Section II
// (Eq. 2-5 of the paper).
type DriftKind int

const (
	// Sudden switches distributions abruptly at the drift position (Eq. 2).
	Sudden DriftKind = iota
	// Gradual oscillates between the two concepts during the transition
	// window, with the new concept sampled with increasing probability
	// (Eq. 5).
	Gradual
	// Incremental progresses through intermediate concepts: when the
	// underlying generators support parameter interpolation the concept
	// itself morphs; otherwise instances are interpolated mixtures (Eq. 3-4).
	Incremental
)

// String returns the lowercase name used in benchmark tables.
func (k DriftKind) String() string {
	switch k {
	case Sudden:
		return "sudden"
	case Gradual:
		return "gradual"
	case Incremental:
		return "incremental"
	default:
		return "unknown"
	}
}

// Interpolatable is implemented by generators whose concept can morph
// continuously toward a target concept; progress is in [0, 1].
type Interpolatable interface {
	SetProgress(alpha float64)
}

// DriftEvent records a ground-truth concept change, used for scoring
// detectors against injected drifts.
type DriftEvent struct {
	// Position is the instance index at which the transition begins.
	Position int
	// Width is the length of the transition window (0 for sudden).
	Width int
	// Classes lists the affected class labels; nil means the drift is global.
	Classes []int
}

// IsGlobal reports whether every class is affected.
func (e DriftEvent) IsGlobal() bool { return len(e.Classes) == 0 }

// Affects reports whether class y is subject to this drift.
func (e DriftEvent) Affects(y int) bool {
	if e.IsGlobal() {
		return true
	}
	for _, c := range e.Classes {
		if c == y {
			return true
		}
	}
	return false
}

// DriftStream composes a base concept and a post-drift concept according to a
// DriftKind, beginning at Position with transition Width (Eq. 2-5). Both
// streams must share a schema.
type DriftStream struct {
	before, after Stream
	kind          DriftKind
	position      int
	width         int
	t             int
	rng           *rand.Rand
	seed          int64
}

// NewDriftStream builds a drifting composition of two concepts.
// Width is ignored for Sudden drift.
func NewDriftStream(before, after Stream, kind DriftKind, position, width int, seed int64) *DriftStream {
	return &DriftStream{
		before:   before,
		after:    after,
		kind:     kind,
		position: position,
		width:    width,
		rng:      rand.New(rand.NewSource(seed)),
		seed:     seed,
	}
}

// Schema returns the shared schema of the composed concepts.
func (d *DriftStream) Schema() Schema { return d.before.Schema() }

// TrueDrifts returns the single injected global drift event.
func (d *DriftStream) TrueDrifts() []DriftEvent {
	return []DriftEvent{{Position: d.position, Width: d.width}}
}

// alpha returns the transition progress at time t per Eq. 4.
func (d *DriftStream) alpha() float64 {
	if d.t < d.position {
		return 0
	}
	if d.kind == Sudden || d.width <= 0 || d.t >= d.position+d.width {
		return 1
	}
	return float64(d.t-d.position) / float64(d.width)
}

// Next emits the next instance, advancing the drift clock.
func (d *DriftStream) Next() Instance {
	a := d.alpha()
	d.t++
	switch {
	case a <= 0:
		return d.before.Next()
	case a >= 1:
		return d.after.Next()
	case d.kind == Incremental:
		if ip, ok := d.after.(Interpolatable); ok {
			// The generator itself morphs: emit from the interpolated
			// concept, forming true intermediate distributions.
			ip.SetProgress(a)
			return d.after.Next()
		}
		// Fallback: Bernoulli mixture approximating Eq. 3.
		if d.rng.Float64() < a {
			return d.after.Next()
		}
		return d.before.Next()
	default: // Gradual, Eq. 5: oscillate, new concept with probability alpha.
		if d.rng.Float64() < a {
			return d.after.Next()
		}
		return d.before.Next()
	}
}

// Restart rewinds the drift clock and, when supported, both concepts.
func (d *DriftStream) Restart() {
	d.t = 0
	d.rng = rand.New(rand.NewSource(d.seed))
	if r, ok := d.before.(Restartable); ok {
		r.Restart()
	}
	if r, ok := d.after.(Restartable); ok {
		r.Restart()
	}
}

// MultiDriftStream chains several concepts with drifts between consecutive
// pairs, producing a stream with repeated concept changes.
type MultiDriftStream struct {
	concepts  []Stream
	kind      DriftKind
	positions []int
	width     int
	t         int
	rng       *rand.Rand
	seed      int64
}

// NewMultiDriftStream composes len(concepts) concepts; positions give the
// start of each transition and must be strictly increasing, with
// len(positions) == len(concepts)-1.
func NewMultiDriftStream(concepts []Stream, kind DriftKind, positions []int, width int, seed int64) *MultiDriftStream {
	if len(positions) != len(concepts)-1 {
		panic("stream: NewMultiDriftStream needs len(positions) == len(concepts)-1")
	}
	for i := 1; i < len(positions); i++ {
		if positions[i] <= positions[i-1] {
			panic("stream: NewMultiDriftStream positions must be strictly increasing")
		}
	}
	return &MultiDriftStream{
		concepts:  concepts,
		kind:      kind,
		positions: positions,
		width:     width,
		rng:       rand.New(rand.NewSource(seed)),
		seed:      seed,
	}
}

// Schema returns the schema shared by all concepts.
func (m *MultiDriftStream) Schema() Schema { return m.concepts[0].Schema() }

// TrueDrifts lists every injected transition.
func (m *MultiDriftStream) TrueDrifts() []DriftEvent {
	events := make([]DriftEvent, len(m.positions))
	for i, p := range m.positions {
		w := m.width
		if m.kind == Sudden {
			w = 0
		}
		events[i] = DriftEvent{Position: p, Width: w}
	}
	return events
}

// Next emits the next instance from the currently active (or transitioning)
// pair of concepts.
func (m *MultiDriftStream) Next() Instance {
	t := m.t
	m.t++
	// Find the active segment: the last position <= t decides the pair.
	idx := 0
	for idx < len(m.positions) && t >= m.positions[idx] {
		idx++
	}
	// idx is the index of the concept we are transitioning *into* (or in).
	if idx == 0 {
		return m.concepts[0].Next()
	}
	start := m.positions[idx-1]
	var a float64
	switch {
	case m.kind == Sudden || m.width <= 0:
		a = 1
	case t >= start+m.width:
		a = 1
	default:
		a = float64(t-start) / float64(m.width)
	}
	if a >= 1 {
		return m.concepts[idx].Next()
	}
	if m.kind == Incremental {
		if ip, ok := m.concepts[idx].(Interpolatable); ok {
			ip.SetProgress(a)
			return m.concepts[idx].Next()
		}
	}
	if m.rng.Float64() < a {
		return m.concepts[idx].Next()
	}
	return m.concepts[idx-1].Next()
}

// Restart rewinds the composite stream.
func (m *MultiDriftStream) Restart() {
	m.t = 0
	m.rng = rand.New(rand.NewSource(m.seed))
	for _, c := range m.concepts {
		if r, ok := c.(Restartable); ok {
			r.Restart()
		}
	}
}

// LocalDriftInjector applies a real concept drift to a chosen subset of
// classes only (Scenario 3 of the paper): after the drift position, instances
// of the affected classes are relocated toward regions occupied by *other*
// classes, changing p(x|y) — and therefore the decision boundary — for the
// drifted classes while leaving the rest of the stream untouched. The
// relocation blends the instance with an anchor sampled from a reservoir of
// recent other-class instances, so the drifted class genuinely invades
// occupied territory (a model that missed the drift scores it as the invaded
// class), yet keeps part of its own structure (a model that adapts can
// re-separate it).
type LocalDriftInjector struct {
	base     Stream
	classes  map[int]bool
	target   map[int]int // drifted class -> class whose region it invades
	position int
	width    int
	kind     DriftKind
	// Mix is the weight of the drifted instance's own features in the
	// post-drift blend (default 0.5: the class relocates halfway toward the
	// invaded region). Combined with the per-class offset this places the
	// drifted class inside the invaded class's margin — a stale model
	// misranks it — while keeping it separable for a model that adapts.
	Mix float64
	// offset is a fixed seeded displacement per drifted class, giving the
	// relocated class its own recoverable identity.
	offset map[int][]float64
	// reservoir holds recent instances per class for anchor sampling.
	reservoir [][]Instance
	resPos    []int
	t         int
	rng       *rand.Rand
	seed      int64
	// fallback affine transform, used before the reservoir warms up.
	scale []float64
	shift []float64
}

const localDriftReservoir = 32

// NewLocalDriftInjector wraps base so that the given classes experience a
// real local concept drift starting at position; kind controls how the
// transform fades in. Each drifted class invades the region of a
// deterministic (seeded) other class.
func NewLocalDriftInjector(base Stream, classes []int, kind DriftKind, position, width int, seed int64) *LocalDriftInjector {
	sc := base.Schema()
	rng := rand.New(rand.NewSource(seed))
	l := &LocalDriftInjector{
		base:      base,
		classes:   make(map[int]bool, len(classes)),
		target:    make(map[int]int, len(classes)),
		position:  position,
		width:     width,
		kind:      kind,
		Mix:       0.5,
		offset:    make(map[int][]float64, len(classes)),
		reservoir: make([][]Instance, sc.Classes),
		resPos:    make([]int, sc.Classes),
		rng:       rng,
		seed:      seed,
		scale:     make([]float64, sc.Features),
		shift:     make([]float64, sc.Features),
	}
	for _, c := range classes {
		l.classes[c] = true
	}
	// Assign invasion targets: a seeded different class per drifted class.
	for _, c := range classes {
		t := rng.Intn(sc.Classes)
		for t == c || l.classes[t] && sc.Classes > len(classes) {
			t = rng.Intn(sc.Classes)
		}
		l.target[c] = t
	}
	for i := 0; i < sc.Features; i++ {
		l.scale[i] = 0.4 + 1.2*rng.Float64()
		l.shift[i] = (rng.Float64() - 0.5) * 1.6
	}
	span := featureSpan(sc)
	for _, c := range classes {
		off := make([]float64, sc.Features)
		for i := range off {
			off[i] = (rng.Float64() - 0.5) * 0.3 * span[i]
		}
		l.offset[c] = off
	}
	return l
}

// Schema returns the base schema.
func (l *LocalDriftInjector) Schema() Schema { return l.base.Schema() }

// TrueDrifts returns the injected local event with its affected classes,
// merged with any ground truth the wrapped stream exposes (so chained
// injectors report every event).
func (l *LocalDriftInjector) TrueDrifts() []DriftEvent {
	cs := make([]int, 0, len(l.classes))
	for c := range l.classes {
		cs = append(cs, c)
	}
	var events []DriftEvent
	if td, ok := l.base.(interface{ TrueDrifts() []DriftEvent }); ok {
		events = append(events, td.TrueDrifts()...)
	}
	return append(events, DriftEvent{Position: l.position, Width: l.width, Classes: cs})
}

// progress returns the fade-in of the local transform at the current clock.
func (l *LocalDriftInjector) progress() float64 {
	if l.t < l.position {
		return 0
	}
	if l.kind == Sudden || l.width <= 0 || l.t >= l.position+l.width {
		return 1
	}
	return float64(l.t-l.position) / float64(l.width)
}

// observe stores the instance in its class reservoir (pre-transform, so
// anchors always describe the classes' genuine regions).
func (l *LocalDriftInjector) observe(in Instance) {
	k := in.Y
	if k < 0 || k >= len(l.reservoir) {
		return
	}
	if len(l.reservoir[k]) < localDriftReservoir {
		l.reservoir[k] = append(l.reservoir[k], in.Clone())
		return
	}
	l.reservoir[k][l.resPos[k]] = in.Clone()
	l.resPos[k] = (l.resPos[k] + 1) % localDriftReservoir
}

// Next emits the next instance, relocating it when its class has drifted.
func (l *LocalDriftInjector) Next() Instance {
	a := l.progress()
	l.t++
	in := l.base.Next()
	l.observe(in)
	if a == 0 || !l.classes[in.Y] {
		return in
	}
	if l.kind == Gradual && a < 1 {
		// Oscillate between old and new concept.
		if l.rng.Float64() >= a {
			return in
		}
		a = 1
	}
	out := in.Clone()
	tgt := l.target[in.Y]
	if res := l.reservoir[tgt]; len(res) > 0 {
		// Relocate toward the target class's region plus the class's fixed
		// offset: inside the invaded margin, but re-separable.
		anchor := res[l.rng.Intn(len(res))]
		off := l.offset[in.Y]
		for i := range out.X {
			invaded := l.Mix*out.X[i] + (1-l.Mix)*anchor.X[i] + off[i]
			out.X[i] = out.X[i] + a*(invaded-out.X[i])
		}
		return out
	}
	// Reservoir cold (possible only in the first instants): fall back to a
	// bounded affine displacement.
	span := featureSpan(l.base.Schema())
	for i := range out.X {
		target := out.X[i]*l.scale[i] + l.shift[i]*span[i]
		out.X[i] = out.X[i] + a*(target-out.X[i])
	}
	return out
}

// Restart rewinds the injector clock and the base stream.
func (l *LocalDriftInjector) Restart() {
	l.t = 0
	l.rng = rand.New(rand.NewSource(l.seed))
	if r, ok := l.base.(Restartable); ok {
		r.Restart()
	}
}

// featureSpan returns per-feature spans from the schema bounds, defaulting
// to 1 when bounds are unknown.
func featureSpan(sc Schema) []float64 {
	span := make([]float64, sc.Features)
	for i := range span {
		span[i] = 1
		if sc.Min != nil && sc.Max != nil {
			if d := sc.Max[i] - sc.Min[i]; d > 0 {
				span[i] = d
			}
		}
	}
	return span
}
