package stream

import (
	"math"
	"math/rand"
)

// ImbalanceSchedule yields the target class-probability vector at stream
// position t. Implementations model static skew, dynamically evolving
// imbalance ratios, and class-role switching (Scenarios 1-3 of the paper).
type ImbalanceSchedule interface {
	// Distribution returns the class sampling probabilities at position t.
	// The returned slice must sum to 1 and must not be mutated by callers.
	Distribution(t int) []float64
}

// StaticSkew is a constant class distribution with a geometric profile: the
// largest class is IR times more frequent than the smallest, with the
// remaining classes log-linearly interpolated — mirroring how the paper
// reports "the ratio between the biggest and the smallest class".
type StaticSkew struct {
	dist []float64
}

// NewStaticSkew builds a constant geometric skew across classes with the
// given maximum imbalance ratio (largest/smallest). IR <= 1 yields a balanced
// stream.
func NewStaticSkew(classes int, ir float64) *StaticSkew {
	return &StaticSkew{dist: geometricSkew(classes, ir)}
}

// Distribution returns the constant class distribution.
func (s *StaticSkew) Distribution(int) []float64 { return s.dist }

// geometricSkew produces probabilities p_k proportional to ir^(-k/(K-1)),
// so p_0/p_{K-1} == ir exactly.
func geometricSkew(classes int, ir float64) []float64 {
	if ir < 1 {
		ir = 1
	}
	p := make([]float64, classes)
	sum := 0.0
	for k := 0; k < classes; k++ {
		e := 0.0
		if classes > 1 {
			e = float64(k) / float64(classes-1)
		}
		p[k] = math.Pow(ir, -e)
		sum += p[k]
	}
	for k := range p {
		p[k] /= sum
	}
	return p
}

// DynamicSkew oscillates the imbalance ratio between IRLow and IRHigh with a
// given period, so the stream both sharpens and relaxes its skew over time —
// the "dynamic imbalance ratio that both increases and decreases over time"
// used for the artificial benchmarks.
type DynamicSkew struct {
	classes int
	irLow   float64
	irHigh  float64
	period  int
	// RoleSwitchEvery, when positive, rotates class roles (majority becomes
	// minority and vice versa) each time that many instances pass
	// (Scenario 2/3).
	RoleSwitchEvery int

	cache   []float64
	cachedT int
}

// NewDynamicSkew builds an oscillating skew schedule.
func NewDynamicSkew(classes int, irLow, irHigh float64, period int) *DynamicSkew {
	if period <= 0 {
		period = 1
	}
	return &DynamicSkew{classes: classes, irLow: irLow, irHigh: irHigh, period: period, cachedT: -1}
}

// Distribution returns the class distribution at position t: a geometric
// skew whose IR follows a cosine wave, with optional role rotation.
func (dn *DynamicSkew) Distribution(t int) []float64 {
	if t == dn.cachedT && dn.cache != nil {
		return dn.cache
	}
	phase := 2 * math.Pi * float64(t) / float64(dn.period)
	ir := dn.irLow + (dn.irHigh-dn.irLow)*(0.5-0.5*math.Cos(phase))
	p := geometricSkew(dn.classes, ir)
	if dn.RoleSwitchEvery > 0 {
		rot := (t / dn.RoleSwitchEvery) % dn.classes
		if rot != 0 {
			q := make([]float64, dn.classes)
			for k := 0; k < dn.classes; k++ {
				q[(k+rot)%dn.classes] = p[k]
			}
			p = q
		}
	}
	dn.cache, dn.cachedT = p, t
	return p
}

// ImbalanceWrapper reshapes the class distribution of any base stream to
// follow an ImbalanceSchedule. It draws the desired label from the schedule
// and serves an instance of that class, buffering instances of other classes
// encountered while searching (so no base instance is wasted).
type ImbalanceWrapper struct {
	base     Stream
	schedule ImbalanceSchedule
	buffers  []Batch
	maxBuf   int
	t        int
	rng      *rand.Rand
	seed     int64
	// pullCap bounds how many base instances are scanned per emission to
	// keep worst-case latency finite on adversarial bases.
	pullCap int
}

// NewImbalanceWrapper wraps base with the given schedule.
//
// Buffers are deliberately small and freshest-first: a large FIFO buffer
// would serve minority classes instances generated long ago, hiding concept
// drift from downstream consumers for tens of thousands of emissions.
func NewImbalanceWrapper(base Stream, schedule ImbalanceSchedule, seed int64) *ImbalanceWrapper {
	classes := base.Schema().Classes
	return &ImbalanceWrapper{
		base:     base,
		schedule: schedule,
		buffers:  make([]Batch, classes),
		maxBuf:   8,
		rng:      rand.New(rand.NewSource(seed)),
		seed:     seed,
		pullCap:  4096,
	}
}

// Schema returns the base schema.
func (w *ImbalanceWrapper) Schema() Schema { return w.base.Schema() }

// TrueDrifts forwards the ground-truth drifts of the wrapped stream.
func (w *ImbalanceWrapper) TrueDrifts() []DriftEvent {
	if td, ok := w.base.(interface{ TrueDrifts() []DriftEvent }); ok {
		return td.TrueDrifts()
	}
	return nil
}

// Next emits an instance whose label follows the schedule's distribution at
// the current position.
func (w *ImbalanceWrapper) Next() Instance {
	dist := w.schedule.Distribution(w.t)
	w.t++
	want := sampleCategorical(w.rng, dist)
	// Serve the freshest buffered instance when available (LIFO keeps the
	// served concept current).
	if n := len(w.buffers[want]); n > 0 {
		in := w.buffers[want][n-1]
		w.buffers[want] = w.buffers[want][:n-1]
		return in
	}
	// Pull from the base until the desired class appears, buffering the rest
	// (newest kept, oldest dropped).
	for i := 0; i < w.pullCap; i++ {
		in := w.base.Next()
		if in.Y == want {
			return in
		}
		buf := w.buffers[in.Y]
		if len(buf) >= w.maxBuf {
			copy(buf, buf[1:])
			buf = buf[:len(buf)-1]
		}
		w.buffers[in.Y] = append(buf, in)
	}
	// The base failed to produce the class within the cap (possible when the
	// base itself is skewed); recycle a buffered instance of the wanted class
	// if any, else fall back to whatever the base emits.
	return w.base.Next()
}

// Restart rewinds the wrapper, clearing buffers and the position clock.
func (w *ImbalanceWrapper) Restart() {
	w.t = 0
	w.rng = rand.New(rand.NewSource(w.seed))
	for i := range w.buffers {
		w.buffers[i] = nil
	}
	if r, ok := w.base.(Restartable); ok {
		r.Restart()
	}
}

// sampleCategorical draws an index from the given probability vector.
func sampleCategorical(rng *rand.Rand, p []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, pi := range p {
		acc += pi
		if u < acc {
			return i
		}
	}
	return len(p) - 1
}

// Limit caps a stream at n instances; Next panics past the limit. It is a
// convenience for experiment runners that must not overrun generated
// ground-truth schedules.
type Limit struct {
	base Stream
	n    int
	t    int
}

// NewLimit wraps base with a hard instance budget.
func NewLimit(base Stream, n int) *Limit { return &Limit{base: base, n: n} }

// Schema returns the base schema.
func (l *Limit) Schema() Schema { return l.base.Schema() }

// Remaining reports how many instances may still be drawn.
func (l *Limit) Remaining() int { return l.n - l.t }

// Next returns the next instance while the budget lasts.
func (l *Limit) Next() Instance {
	if l.t >= l.n {
		panic("stream: Limit exhausted")
	}
	l.t++
	return l.base.Next()
}

// TrueDrifts forwards ground truth from the wrapped stream.
func (l *Limit) TrueDrifts() []DriftEvent {
	if td, ok := l.base.(interface{ TrueDrifts() []DriftEvent }); ok {
		return td.TrueDrifts()
	}
	return nil
}

// Restart rewinds the budget and the base stream.
func (l *Limit) Restart() {
	l.t = 0
	if r, ok := l.base.(Restartable); ok {
		r.Restart()
	}
}
