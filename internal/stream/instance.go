// Package stream defines the data-stream model used throughout the
// repository: instances, schemas, the Stream interface, and wrappers that
// impose concept drift, class imbalance, and class-role dynamics on any
// underlying generator.
//
// The model follows Section II of Korycki & Krawczyk (ICDE 2021): a stream is
// a sequence of instances S_j ~ p_j(x, y) drawn from a d-dimensional feature
// space with a class label, where the joint distribution may change over time
// (concept drift) in the sudden, gradual, or incremental fashion of Eq. 2-5.
package stream

import "fmt"

// Instance is a single labeled observation drawn from a data stream.
// Features are continuous; categorical attributes of the original domains are
// integer-coded into the same float slice (the detectors and classifier treat
// every attribute numerically, as MOA's filtered streams do).
type Instance struct {
	// X holds the d feature values.
	X []float64
	// Y is the class label in [0, Classes).
	Y int
	// Weight is an optional importance weight; generators emit 1.
	Weight float64
}

// Clone returns a deep copy of the instance.
func (in Instance) Clone() Instance {
	x := make([]float64, len(in.X))
	copy(x, in.X)
	return Instance{X: x, Y: in.Y, Weight: in.Weight}
}

// Schema describes the shape of a stream: its dimensionality and class count,
// plus optional per-feature bounds used for online min-max scaling.
type Schema struct {
	// Features is the dimensionality d of the feature space.
	Features int
	// Classes is the number of distinct labels Z.
	Classes int
	// Min and Max, when non-nil, give static per-feature bounds. Consumers
	// that need [0,1] inputs (e.g. the RBM visible layer) fall back to online
	// estimation when they are nil.
	Min, Max []float64
}

// Validate reports whether the schema is internally consistent.
func (s Schema) Validate() error {
	if s.Features <= 0 {
		return fmt.Errorf("stream: schema needs at least one feature, got %d", s.Features)
	}
	if s.Classes < 2 {
		return fmt.Errorf("stream: schema needs at least two classes, got %d", s.Classes)
	}
	if s.Min != nil && len(s.Min) != s.Features {
		return fmt.Errorf("stream: schema Min has %d entries for %d features", len(s.Min), s.Features)
	}
	if s.Max != nil && len(s.Max) != s.Features {
		return fmt.Errorf("stream: schema Max has %d entries for %d features", len(s.Max), s.Features)
	}
	return nil
}

// Stream is a (conceptually unbounded) source of instances.
//
// Next returns the next instance. Implementations are single-goroutine
// iterators: they own their random state and are not safe for concurrent use.
type Stream interface {
	// Schema describes the instances the stream emits. It is constant for the
	// lifetime of the stream.
	Schema() Schema
	// Next produces the next instance.
	Next() Instance
}

// Restartable is implemented by streams that can be rewound to their initial
// state (same seed, same position zero).
type Restartable interface {
	Restart()
}

// Batch is a mini-batch of consecutive instances.
type Batch []Instance

// Take reads n instances from s into a fresh batch.
func Take(s Stream, n int) Batch {
	b := make(Batch, 0, n)
	for i := 0; i < n; i++ {
		b = append(b, s.Next())
	}
	return b
}

// ClassCounts tallies the labels present in the batch given the total class
// count.
func (b Batch) ClassCounts(classes int) []int {
	counts := make([]int, classes)
	for _, in := range b {
		if in.Y >= 0 && in.Y < classes {
			counts[in.Y]++
		}
	}
	return counts
}

// ByClass splits the batch into per-class sub-batches.
func (b Batch) ByClass(classes int) []Batch {
	out := make([]Batch, classes)
	for _, in := range b {
		if in.Y >= 0 && in.Y < classes {
			out[in.Y] = append(out[in.Y], in)
		}
	}
	return out
}
