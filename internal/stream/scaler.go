package stream

import "rbmim/internal/codec"

// Scaler performs online min-max scaling of feature vectors into [0, 1].
// When the schema carries static bounds those are used as the starting
// estimates; otherwise bounds are learned from the data seen so far, which is
// the standard streaming practice (MOA's normalisation filter behaves the
// same way).
type Scaler struct {
	min, max []float64
	seen     bool
}

// NewScaler builds a scaler for the given schema.
func NewScaler(sc Schema) *Scaler {
	s := &Scaler{
		min: make([]float64, sc.Features),
		max: make([]float64, sc.Features),
	}
	if sc.Min != nil && sc.Max != nil {
		copy(s.min, sc.Min)
		copy(s.max, sc.Max)
		s.seen = true
	}
	return s
}

// Observe widens the bounds to cover x.
func (s *Scaler) Observe(x []float64) {
	if !s.seen {
		copy(s.min, x)
		copy(s.max, x)
		s.seen = true
		return
	}
	for i, v := range x {
		if v < s.min[i] {
			s.min[i] = v
		}
		if v > s.max[i] {
			s.max[i] = v
		}
	}
}

// Scale writes the scaled version of x into dst (allocating when dst is nil
// or too short) and returns it. Values are clamped to [0, 1].
func (s *Scaler) Scale(x []float64, dst []float64) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i, v := range x {
		span := s.max[i] - s.min[i]
		if span <= 0 {
			dst[i] = 0.5
			continue
		}
		u := (v - s.min[i]) / span
		if u < 0 {
			u = 0
		} else if u > 1 {
			u = 1
		}
		dst[i] = u
	}
	return dst
}

// EncodeState appends the scaler's learned bounds to w (checkpoint support;
// see internal/codec for the format contract).
func (s *Scaler) EncodeState(w *codec.Buffer) {
	w.Bool(s.seen)
	w.F64s(s.min)
	w.F64s(s.max)
}

// DecodeState restores bounds written by EncodeState, requiring the same
// feature count the receiver was built with. On error the receiver is
// unchanged.
func (s *Scaler) DecodeState(r *codec.Reader) error {
	seen := r.Bool()
	min := r.F64sLen(len(s.min))
	max := r.F64sLen(len(s.max))
	if r.Err() != nil {
		return r.Err()
	}
	s.seen = seen
	copy(s.min, min)
	copy(s.max, max)
	return nil
}
