package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// constStream emits a fixed feature vector with labels cycling through a
// weighted pattern; used as a deterministic test base.
type constStream struct {
	schema Schema
	rng    *rand.Rand
	seed   int64
	// classProb drives label sampling (uniform when nil).
	classProb []float64
}

func newConstStream(features, classes int, seed int64) *constStream {
	mn := make([]float64, features)
	mx := make([]float64, features)
	for i := range mx {
		mx[i] = 1
	}
	return &constStream{
		schema: Schema{Features: features, Classes: classes, Min: mn, Max: mx},
		rng:    rand.New(rand.NewSource(seed)),
		seed:   seed,
	}
}

func (c *constStream) Schema() Schema { return c.schema }

func (c *constStream) Next() Instance {
	x := make([]float64, c.schema.Features)
	for i := range x {
		x[i] = c.rng.Float64()
	}
	y := c.rng.Intn(c.schema.Classes)
	if c.classProb != nil {
		u := c.rng.Float64()
		acc := 0.0
		for k, p := range c.classProb {
			acc += p
			if u < acc {
				y = k
				break
			}
		}
	}
	return Instance{X: x, Y: y, Weight: 1}
}

func (c *constStream) Restart() { c.rng = rand.New(rand.NewSource(c.seed)) }

func TestSchemaValidate(t *testing.T) {
	good := Schema{Features: 3, Classes: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{Features: 0, Classes: 2},
		{Features: 3, Classes: 1},
		{Features: 3, Classes: 2, Min: []float64{0}},
		{Features: 3, Classes: 2, Max: []float64{0, 1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schema %d should fail validation", i)
		}
	}
}

func TestInstanceClone(t *testing.T) {
	in := Instance{X: []float64{1, 2}, Y: 1, Weight: 1}
	cp := in.Clone()
	cp.X[0] = 99
	if in.X[0] != 1 {
		t.Fatal("clone must not share the feature slice")
	}
}

func TestBatchHelpers(t *testing.T) {
	s := newConstStream(2, 3, 1)
	b := Take(s, 300)
	if len(b) != 300 {
		t.Fatalf("take produced %d", len(b))
	}
	counts := b.ClassCounts(3)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 300 {
		t.Fatalf("class counts sum to %d", total)
	}
	split := b.ByClass(3)
	for k, sub := range split {
		if len(sub) != counts[k] {
			t.Fatalf("class %d split size %d, counts say %d", k, len(sub), counts[k])
		}
		for _, in := range sub {
			if in.Y != k {
				t.Fatalf("instance with label %d in class-%d bucket", in.Y, k)
			}
		}
	}
}

func TestDriftKindString(t *testing.T) {
	if Sudden.String() != "sudden" || Gradual.String() != "gradual" || Incremental.String() != "incremental" {
		t.Fatal("drift kind names wrong")
	}
	if DriftKind(99).String() != "unknown" {
		t.Fatal("unknown drift kind should say unknown")
	}
}

func TestDriftEventAffects(t *testing.T) {
	global := DriftEvent{Position: 10}
	if !global.IsGlobal() || !global.Affects(3) {
		t.Fatal("global event should affect every class")
	}
	local := DriftEvent{Position: 10, Classes: []int{1, 2}}
	if local.IsGlobal() || !local.Affects(1) || local.Affects(0) {
		t.Fatal("local event affecting wrong classes")
	}
}

func TestDriftStreamSuddenSwitchesSource(t *testing.T) {
	// Distinguish sources by the label distribution.
	before := newConstStream(2, 2, 1)
	before.classProb = []float64{1, 0} // always class 0
	after := newConstStream(2, 2, 2)
	after.classProb = []float64{0, 1} // always class 1
	d := NewDriftStream(before, after, Sudden, 100, 0, 3)
	for i := 0; i < 100; i++ {
		if in := d.Next(); in.Y != 0 {
			t.Fatalf("pre-drift instance %d has label %d", i, in.Y)
		}
	}
	for i := 0; i < 100; i++ {
		if in := d.Next(); in.Y != 1 {
			t.Fatalf("post-drift instance %d has label %d", i, in.Y)
		}
	}
}

func TestDriftStreamGradualMixes(t *testing.T) {
	before := newConstStream(2, 2, 1)
	before.classProb = []float64{1, 0}
	after := newConstStream(2, 2, 2)
	after.classProb = []float64{0, 1}
	d := NewDriftStream(before, after, Gradual, 100, 400, 3)
	// Early transition: mostly old concept; late transition: mostly new.
	early, late := 0, 0
	for i := 0; i < 600; i++ {
		in := d.Next()
		if i >= 100 && i < 200 && in.Y == 1 {
			early++
		}
		if i >= 400 && i < 500 && in.Y == 1 {
			late++
		}
	}
	if early >= late {
		t.Fatalf("gradual drift should ramp: early=%d late=%d", early, late)
	}
}

func TestDriftStreamRestart(t *testing.T) {
	before := newConstStream(2, 2, 1)
	after := newConstStream(2, 2, 2)
	d := NewDriftStream(before, after, Sudden, 50, 0, 3)
	first := make([]Instance, 80)
	for i := range first {
		first[i] = d.Next()
	}
	d.Restart()
	for i := range first {
		in := d.Next()
		if in.Y != first[i].Y {
			t.Fatalf("restart not deterministic at %d", i)
		}
		for j := range in.X {
			if in.X[j] != first[i].X[j] {
				t.Fatalf("restart features differ at %d", i)
			}
		}
	}
}

func TestMultiDriftStreamPanicsOnBadArgs(t *testing.T) {
	s := newConstStream(2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched positions")
		}
	}()
	NewMultiDriftStream([]Stream{s, s, s}, Sudden, []int{10}, 0, 1)
}

func TestMultiDriftStreamSegments(t *testing.T) {
	a := newConstStream(2, 3, 1)
	a.classProb = []float64{1, 0, 0}
	b := newConstStream(2, 3, 2)
	b.classProb = []float64{0, 1, 0}
	c := newConstStream(2, 3, 3)
	c.classProb = []float64{0, 0, 1}
	m := NewMultiDriftStream([]Stream{a, b, c}, Sudden, []int{100, 200}, 0, 4)
	events := m.TrueDrifts()
	if len(events) != 2 || events[0].Position != 100 || events[1].Position != 200 {
		t.Fatalf("events = %+v", events)
	}
	for i := 0; i < 300; i++ {
		in := m.Next()
		want := i / 100
		if in.Y != want {
			t.Fatalf("instance %d from segment %d, want %d", i, in.Y, want)
		}
	}
}

func TestLocalDriftInjectorOnlyAffectsChosenClasses(t *testing.T) {
	base := newConstStream(4, 3, 5)
	l := NewLocalDriftInjector(base, []int{2}, Sudden, 200, 0, 6)
	// Collect post-drift instances; class 0/1 must be untouched relative to
	// the base stream's feature distribution (uniform [0,1]); class 2 must
	// leave it.
	var out2 []float64
	for i := 0; i < 5000; i++ {
		in := l.Next()
		if i < 200 {
			continue
		}
		if in.Y == 2 {
			out2 = append(out2, in.X[0])
		} else {
			if in.X[0] < 0 || in.X[0] > 1 {
				t.Fatalf("unaffected class escaped the unit cube: %v", in.X[0])
			}
		}
	}
	if len(out2) == 0 {
		t.Fatal("no drifted-class instances seen")
	}
	// The drifted class's feature distribution should differ from uniform:
	// check the mean moved away from 0.5 or spread shrank.
	mean, meanSq := 0.0, 0.0
	for _, v := range out2 {
		mean += v
		meanSq += v * v
	}
	mean /= float64(len(out2))
	variance := meanSq/float64(len(out2)) - mean*mean
	if math.Abs(mean-0.5) < 0.02 && math.Abs(variance-1.0/12.0) < 0.01 {
		t.Fatalf("drifted class distribution unchanged: mean=%v var=%v", mean, variance)
	}
}

func TestLocalDriftInjectorGroundTruth(t *testing.T) {
	base := newConstStream(4, 3, 5)
	inner := NewLocalDriftInjector(base, []int{1}, Sudden, 100, 0, 6)
	outer := NewLocalDriftInjector(inner, []int{2}, Sudden, 200, 0, 7)
	events := outer.TrueDrifts()
	if len(events) != 2 {
		t.Fatalf("chained injectors should merge ground truth, got %d", len(events))
	}
	if events[0].Position != 100 || events[1].Position != 200 {
		t.Fatalf("positions = %v %v", events[0].Position, events[1].Position)
	}
}

func TestGeometricSkewRatios(t *testing.T) {
	p := geometricSkew(5, 100)
	if math.Abs(p[0]/p[4]-100) > 1e-9 {
		t.Fatalf("IR = %v, want 100", p[0]/p[4])
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	approxStream(t, sum, 1, 1e-12, "skew sums to 1")
	// IR below 1 degenerates to balanced.
	p = geometricSkew(4, 0.5)
	for _, v := range p {
		approxStream(t, v, 0.25, 1e-12, "balanced")
	}
}

func TestStaticSkewDistribution(t *testing.T) {
	s := NewStaticSkew(3, 10)
	d1 := s.Distribution(0)
	d2 := s.Distribution(9999)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("static skew should not change over time")
		}
	}
}

func TestDynamicSkewOscillates(t *testing.T) {
	dn := NewDynamicSkew(4, 10, 100, 1000)
	ir := func(t int) float64 {
		p := dn.Distribution(t)
		max, min := p[0], p[0]
		for _, v := range p {
			if v > max {
				max = v
			}
			if v < min {
				min = v
			}
		}
		return max / min
	}
	atStart := ir(0)
	atPeak := ir(500)
	if atPeak <= atStart*2 {
		t.Fatalf("IR should rise toward the peak: start=%v peak=%v", atStart, atPeak)
	}
	backDown := ir(1000)
	if math.Abs(backDown-atStart) > atStart*0.2 {
		t.Fatalf("IR should fall back: start=%v end=%v", atStart, backDown)
	}
}

func TestDynamicSkewRoleSwitch(t *testing.T) {
	dn := NewDynamicSkew(3, 50, 50, 1000)
	dn.RoleSwitchEvery = 100
	before := append([]float64(nil), dn.Distribution(0)...)
	after := append([]float64(nil), dn.Distribution(100)...)
	// After one rotation, the former majority probability moves to the next
	// class index.
	approxStream(t, after[1], before[0], 1e-9, "role rotation")
}

func TestImbalanceWrapperHitsTargetDistribution(t *testing.T) {
	base := newConstStream(3, 4, 7)
	w := NewImbalanceWrapper(base, NewStaticSkew(4, 20), 8)
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[w.Next().Y]++
	}
	want := geometricSkew(4, 20)
	for k := range counts {
		got := float64(counts[k]) / n
		if math.Abs(got-want[k]) > 0.02 {
			t.Fatalf("class %d frequency %v, want %v", k, got, want[k])
		}
	}
}

func TestImbalanceWrapperRestart(t *testing.T) {
	base := newConstStream(3, 3, 7)
	w := NewImbalanceWrapper(base, NewStaticSkew(3, 5), 8)
	first := make([]int, 200)
	for i := range first {
		first[i] = w.Next().Y
	}
	w.Restart()
	for i := range first {
		if got := w.Next().Y; got != first[i] {
			t.Fatalf("restart not deterministic at %d: %d vs %d", i, got, first[i])
		}
	}
}

func TestLimitPanicsPastBudget(t *testing.T) {
	base := newConstStream(2, 2, 1)
	l := NewLimit(base, 3)
	for i := 0; i < 3; i++ {
		l.Next()
	}
	if l.Remaining() != 0 {
		t.Fatalf("remaining = %d", l.Remaining())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic past the limit")
		}
	}()
	l.Next()
}

func TestScalerStaticBounds(t *testing.T) {
	sc := NewScaler(Schema{Features: 2, Classes: 2, Min: []float64{0, -10}, Max: []float64{1, 10}})
	out := sc.Scale([]float64{0.5, 0}, nil)
	approxStream(t, out[0], 0.5, 1e-12, "scaled mid")
	approxStream(t, out[1], 0.5, 1e-12, "scaled mid 2")
	out = sc.Scale([]float64{2, 20}, out)
	approxStream(t, out[0], 1, 1e-12, "clamped high")
	approxStream(t, out[1], 1, 1e-12, "clamped high 2")
}

func TestScalerOnlineLearning(t *testing.T) {
	sc := NewScaler(Schema{Features: 1, Classes: 2})
	sc.Observe([]float64{10})
	sc.Observe([]float64{20})
	out := sc.Scale([]float64{15}, nil)
	approxStream(t, out[0], 0.5, 1e-12, "online mid")
	// Constant feature maps to 0.5.
	sc2 := NewScaler(Schema{Features: 1, Classes: 2})
	sc2.Observe([]float64{3})
	out = sc2.Scale([]float64{3}, nil)
	approxStream(t, out[0], 0.5, 1e-12, "constant feature")
}

func TestScalerOutputInUnitRangeProperty(t *testing.T) {
	sc := NewScaler(Schema{Features: 3, Classes: 2})
	f := func(a, b, c float64) bool {
		x := []float64{sanitize(a), sanitize(b), sanitize(c)}
		sc.Observe(x)
		out := sc.Scale(x, nil)
		for _, v := range out {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e9)
}

func approxStream(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}
