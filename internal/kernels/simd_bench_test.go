package kernels

// Micro-benchmarks comparing the dispatched SIMD bodies against the pure-Go
// bodies, at the row shapes the RBM hot path produces (H = 40 gradient rows,
// Z = 5 class rows). On non-amd64 hosts both variants take the generic path.

import (
	"math/rand"
	"testing"
)

func benchAxpyMode(b *testing.B, n int, avx bool) {
	old := useAVX
	useAVX = avx && old
	defer func() { useAVX = old }()
	rng := rand.New(rand.NewSource(1))
	x, y := randSlice(rng, n), randSlice(rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(1.1, x, y)
	}
}

func BenchmarkAxpy40AVX(b *testing.B)  { benchAxpyMode(b, 40, true) }
func BenchmarkAxpy40Gen(b *testing.B)  { benchAxpyMode(b, 40, false) }
func BenchmarkAxpy640AVX(b *testing.B) { benchAxpyMode(b, 640, true) }
func BenchmarkAxpy640Gen(b *testing.B) { benchAxpyMode(b, 640, false) }

func benchGradMode(b *testing.B, rows, cols int, avx bool) {
	old := useAVX
	useAVX = avx && old
	defer func() { useAVX = old }()
	rng := rand.New(rand.NewSource(1))
	const m = 64
	w := randSlice(rng, m)
	x, v := randSlice(rng, m*rows), randSlice(rng, m*rows)
	p, q := randSlice(rng, m*cols), randSlice(rng, m*cols)
	g := randSlice(rng, rows*cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AccumRankK(g, w, x, v, p, q, m, rows, cols)
	}
}

func BenchmarkGrad20x40AVX(b *testing.B) { benchGradMode(b, 20, 40, true) }
func BenchmarkGrad20x40Gen(b *testing.B) { benchGradMode(b, 20, 40, false) }
func BenchmarkGrad40x5AVX(b *testing.B)  { benchGradMode(b, 40, 5, true) }
func BenchmarkGrad40x5Gen(b *testing.B)  { benchGradMode(b, 40, 5, false) }
