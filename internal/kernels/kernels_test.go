package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// The kernels' contract is bitwise: every primitive must produce, per output
// element, the exact float64 of its naive reference loop, because core.RBM
// relies on that to keep batch-major CD-k training bit-identical to the
// per-instance path. Each property test therefore draws random shapes
// (including empty and length-1 edges) and random data (with exact zeros
// injected, exercising the zero-skip branches) and compares bit for bit.

// randSlice fills a slice with values in [-2, 2); about one in five entries
// is an exact zero so the zero-skip paths are exercised.
func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		if rng.Intn(5) == 0 {
			continue // exact zero
		}
		s[i] = 4*rng.Float64() - 2
	}
	return s
}

// randDim draws a dimension biased toward the edge cases 0 and 1.
func randDim(rng *rand.Rand, max int) int {
	switch rng.Intn(6) {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return rng.Intn(max) + 1
	}
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// --- naive references (the contract, written as the obvious loops) ---

func naiveDot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func naiveAxpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

func naiveAddScaled(dst []float64, a float64, x []float64, b float64, y []float64) {
	for i := range dst {
		dst[i] = a*x[i] + b*y[i]
	}
}

func naiveAxpyDiff(w float64, x, v, dst []float64) {
	for i := range dst {
		dst[i] += w * (x[i] - v[i])
	}
}

func naiveMatMul(dst, a, b []float64, m, k, n int) {
	for r := 0; r < m; r++ {
		for i := 0; i < k; i++ {
			ai := a[r*k+i]
			if ai == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				dst[r*n+j] += ai * b[i*n+j]
			}
		}
	}
}

func naiveMatMulT(dst, a, b []float64, m, k, n int) {
	for r := 0; r < m; r++ {
		for j := 0; j < n; j++ {
			s := dst[r*n+j]
			for l := 0; l < k; l++ {
				s += a[r*k+l] * b[j*k+l]
			}
			dst[r*n+j] = s
		}
	}
}

func naiveAccumRankK(g, w, x, v, p, q []float64, m, rows, cols int) {
	for n := 0; n < m; n++ {
		wn := w[n]
		for i := 0; i < rows; i++ {
			wxi := wn * x[n*rows+i]
			wvi := wn * v[n*rows+i]
			for j := 0; j < cols; j++ {
				g[i*cols+j] += wxi*p[n*cols+j] - wvi*q[n*cols+j]
			}
		}
	}
}

func naiveSigmoid(dst []float64) {
	for i := range dst {
		dst[i] = 1 / (1 + math.Exp(-dst[i]))
	}
}

func naiveSoftmax(dst []float64) {
	if len(dst) == 0 {
		return
	}
	maxS := math.Inf(-1)
	for _, s := range dst {
		if s > maxS {
			maxS = s
		}
	}
	sum := 0.0
	for k := range dst {
		dst[k] = math.Exp(dst[k] - maxS)
		sum += dst[k]
	}
	for k := range dst {
		dst[k] /= sum
	}
}

// --- property tests ---

const propRounds = 300

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < propRounds; round++ {
		n := randDim(rng, 200)
		x, y := randSlice(rng, n), randSlice(rng, n)
		got, want := Dot(x, y), naiveDot(x, y)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: Dot = %v, naive = %v", n, got, want)
		}
	}
}

func TestAxpyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < propRounds; round++ {
		n := randDim(rng, 200)
		a := 4*rng.Float64() - 2
		x := randSlice(rng, n)
		y := randSlice(rng, n)
		yRef := append([]float64(nil), y...)
		Axpy(a, x, y)
		naiveAxpy(a, x, yRef)
		if !sameBits(y, yRef) {
			t.Fatalf("n=%d: Axpy diverged from naive", n)
		}
	}
}

func TestAddScaledMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < propRounds; round++ {
		n := randDim(rng, 200)
		a, b := 4*rng.Float64()-2, 4*rng.Float64()-2
		x, y := randSlice(rng, n), randSlice(rng, n)
		dst := make([]float64, n)
		dstRef := make([]float64, n)
		AddScaled(dst, a, x, b, y)
		naiveAddScaled(dstRef, a, x, b, y)
		if !sameBits(dst, dstRef) {
			t.Fatalf("n=%d: AddScaled diverged from naive", n)
		}
		// Aliased form dst == x (the momentum update's shape).
		xAlias := append([]float64(nil), x...)
		AddScaled(xAlias, a, xAlias, b, y)
		if !sameBits(xAlias, dstRef) {
			t.Fatalf("n=%d: aliased AddScaled diverged from naive", n)
		}
	}
}

func TestAxpyDiffMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < propRounds; round++ {
		n := randDim(rng, 200)
		w := 4*rng.Float64() - 2
		x, v := randSlice(rng, n), randSlice(rng, n)
		dst := randSlice(rng, n)
		dstRef := append([]float64(nil), dst...)
		AxpyDiff(w, x, v, dst)
		naiveAxpyDiff(w, x, v, dstRef)
		if !sameBits(dst, dstRef) {
			t.Fatalf("n=%d: AxpyDiff diverged from naive", n)
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < propRounds; round++ {
		m, k, n := randDim(rng, 12), randDim(rng, 150), randDim(rng, 150)
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		dst := randSlice(rng, m*n)
		dstRef := append([]float64(nil), dst...)
		MatMul(dst, a, b, m, k, n)
		naiveMatMul(dstRef, a, b, m, k, n)
		if !sameBits(dst, dstRef) {
			t.Fatalf("m=%d k=%d n=%d: MatMul diverged from naive", m, k, n)
		}
	}
}

func TestMatMulTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for round := 0; round < propRounds; round++ {
		m, k, n := randDim(rng, 12), randDim(rng, 150), randDim(rng, 150)
		a := randSlice(rng, m*k)
		b := randSlice(rng, n*k)
		dst := randSlice(rng, m*n)
		dstRef := append([]float64(nil), dst...)
		MatMulT(dst, a, b, m, k, n)
		naiveMatMulT(dstRef, a, b, m, k, n)
		if !sameBits(dst, dstRef) {
			t.Fatalf("m=%d k=%d n=%d: MatMulT diverged from naive", m, k, n)
		}
	}
}

func TestAccumRankKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < propRounds; round++ {
		m, rows, cols := randDim(rng, 150), randDim(rng, 12), randDim(rng, 60)
		w := randSlice(rng, m)
		x, v := randSlice(rng, m*rows), randSlice(rng, m*rows)
		p, q := randSlice(rng, m*cols), randSlice(rng, m*cols)
		g := randSlice(rng, rows*cols)
		gRef := append([]float64(nil), g...)
		AccumRankK(g, w, x, v, p, q, m, rows, cols)
		naiveAccumRankK(gRef, w, x, v, p, q, m, rows, cols)
		if !sameBits(g, gRef) {
			t.Fatalf("m=%d rows=%d cols=%d: AccumRankK diverged from naive", m, rows, cols)
		}
	}
}

func TestBroadcastFillsRows(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < propRounds; round++ {
		m, n := randDim(rng, 20), randDim(rng, 50)
		row := randSlice(rng, n)
		dst := randSlice(rng, m*n)
		Broadcast(dst, row, m)
		for r := 0; r < m; r++ {
			if !sameBits(dst[r*n:r*n+n], row) {
				t.Fatalf("m=%d n=%d: row %d not broadcast", m, n, r)
			}
		}
	}
}

func TestSigmoidMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < propRounds; round++ {
		n := randDim(rng, 200)
		dst := randSlice(rng, n)
		dstRef := append([]float64(nil), dst...)
		Sigmoid(dst)
		naiveSigmoid(dstRef)
		if !sameBits(dst, dstRef) {
			t.Fatalf("n=%d: Sigmoid diverged from naive", n)
		}
	}
}

func TestSoftmaxMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for round := 0; round < propRounds; round++ {
		n := randDim(rng, 50)
		dst := randSlice(rng, n)
		dstRef := append([]float64(nil), dst...)
		Softmax(dst)
		naiveSoftmax(dstRef)
		if !sameBits(dst, dstRef) {
			t.Fatalf("n=%d: Softmax diverged from naive", n)
		}
		sum := 0.0
		for _, p := range dst {
			sum += p
		}
		if n > 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("n=%d: softmax sums to %v", n, sum)
		}
	}
}

// TestSIMDAndGenericPathsAgree reruns the two dispatched kernels with the
// assembly path disabled and asserts bitwise agreement with the enabled
// path over random shapes (on platforms without assembly both runs take the
// generic path and the test is a tautology). The main property tests cover
// whichever path the host dispatches to; this pins the other one.
func TestSIMDAndGenericPathsAgree(t *testing.T) {
	if !useAVX {
		t.Skip("no SIMD path on this host; generic path already covered")
	}
	defer func() { useAVX = true }()
	rng := rand.New(rand.NewSource(20))
	for round := 0; round < propRounds; round++ {
		n := randDim(rng, 200)
		a := 4*rng.Float64() - 2
		x, y := randSlice(rng, n), randSlice(rng, n)
		ySIMD := append([]float64(nil), y...)
		useAVX = true
		Axpy(a, x, ySIMD)
		useAVX = false
		Axpy(a, x, y)
		if !sameBits(y, ySIMD) {
			t.Fatalf("n=%d: Axpy SIMD and generic paths disagree", n)
		}

		mm, mk, mn := randDim(rng, 8), randDim(rng, 100), randDim(rng, 100)
		ma := randSlice(rng, mm*mk)
		mb := randSlice(rng, mk*mn)
		md := randSlice(rng, mm*mn)
		mdSIMD := append([]float64(nil), md...)
		useAVX = true
		MatMul(mdSIMD, ma, mb, mm, mk, mn)
		useAVX = false
		MatMul(md, ma, mb, mm, mk, mn)
		if !sameBits(md, mdSIMD) {
			t.Fatalf("m=%d k=%d n=%d: MatMul SIMD and generic paths disagree", mm, mk, mn)
		}

		m, rows, cols := randDim(rng, 40), randDim(rng, 10), randDim(rng, 60)
		w := randSlice(rng, m)
		xm, vm := randSlice(rng, m*rows), randSlice(rng, m*rows)
		p, q := randSlice(rng, m*cols), randSlice(rng, m*cols)
		g := randSlice(rng, rows*cols)
		gSIMD := append([]float64(nil), g...)
		useAVX = true
		AccumRankK(gSIMD, w, xm, vm, p, q, m, rows, cols)
		useAVX = false
		AccumRankK(g, w, xm, vm, p, q, m, rows, cols)
		if !sameBits(g, gSIMD) {
			t.Fatalf("m=%d rows=%d cols=%d: AccumRankK SIMD and generic paths disagree", m, rows, cols)
		}
	}
}

// TestEmptyAndUnitShapesExplicit pins the degenerate shapes the random
// generators only hit probabilistically.
func TestEmptyAndUnitShapesExplicit(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil, nil) = %v", got)
	}
	if got := Dot([]float64{3}, []float64{4}); got != 12 {
		t.Fatalf("Dot length-1 = %v", got)
	}
	Axpy(2, nil, nil) // must not panic
	y := []float64{1}
	Axpy(2, []float64{3}, y)
	if y[0] != 7 {
		t.Fatalf("Axpy length-1 = %v", y[0])
	}
	AddScaled(nil, 1, nil, 1, nil)
	MatMul(nil, nil, nil, 0, 0, 0)
	MatMulT(nil, nil, nil, 0, 3, 0)
	AccumRankK(nil, nil, nil, nil, nil, nil, 0, 0, 0)
	Softmax(nil)
	Sigmoid(nil)
	Broadcast(nil, nil, 0)

	d := []float64{0.5}
	MatMul(d, []float64{2}, []float64{3}, 1, 1, 1)
	if d[0] != 6.5 {
		t.Fatalf("MatMul 1x1x1 = %v", d[0])
	}
	d = []float64{0.5}
	MatMulT(d, []float64{2}, []float64{3}, 1, 1, 1)
	if d[0] != 6.5 {
		t.Fatalf("MatMulT 1x1x1 = %v", d[0])
	}
	s := []float64{4}
	Softmax(s)
	if s[0] != 1 {
		t.Fatalf("Softmax length-1 = %v", s[0])
	}
}
