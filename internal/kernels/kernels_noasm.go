//go:build !amd64

package kernels

// useAVX is permanently false off amd64; the pure-Go bodies are the only
// implementation and the stubs below are unreachable.
var useAVX = false

func axpyAVX(alpha float64, x, y []float64) {
	panic("kernels: axpyAVX without amd64 support")
}

func gradQuadAVX(g, p, q []float64, wx, wv *[4]float64) {
	panic("kernels: gradQuadAVX without amd64 support")
}

func matmulRowAVX(dst, a, b []float64) {
	panic("kernels: matmulRowAVX without amd64 support")
}
