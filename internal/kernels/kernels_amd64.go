package kernels

// useAVX gates the assembly bodies in kernels_amd64.s. The AVX paths use
// only per-lane IEEE mul/add/sub (no FMA), so enabling them never changes a
// result bit; the package tests exercise both settings.
var useAVX = cpuHasAVX()

// cpuHasAVX reports CPUID+XGETBV support for AVX with OS-enabled YMM state.
func cpuHasAVX() bool

//go:noescape
func axpyAVX(alpha float64, x, y []float64)

//go:noescape
func gradQuadAVX(g, p, q []float64, wx, wv *[4]float64)

//go:noescape
func matmulRowAVX(dst, a, b []float64)
