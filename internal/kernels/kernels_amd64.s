// AVX bodies for the hottest kernels. Bit-exactness: only VMULPD / VADDPD /
// VSUBPD (and their scalar SD forms in the tails) are used — each lane
// performs the exact IEEE-754 operation of the corresponding scalar Go
// expression, and no FMA contraction is introduced — so these produce
// bit-identical results to the pure-Go bodies (asserted by the package's
// property tests, which run both paths on amd64).

#include "textflag.h"

// func cpuHasAVX() bool
//
// CPUID leaf 1: ECX bit 28 = AVX, bit 27 = OSXSAVE; XGETBV(0) bits 1-2 =
// XMM+YMM state enabled by the OS.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  noavx
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET

noavx:
	MOVB $0, ret+0(FP)
	RET

// func axpyAVX(alpha float64, x, y []float64)
//
// y[i] += alpha * x[i]. Requires len(y) >= len(x); iterates over x.
// Each element: one VMULPD lane (alpha*x rounded) then one VADDPD lane
// (+y rounded) — the exact two roundings of the scalar loop.
TEXT ·axpyAVX(SB), NOSPLIT, $0-56
	MOVSD alpha+0(FP), X0
	MOVQ  x_base+8(FP), SI
	MOVQ  x_len+16(FP), CX
	MOVQ  y_base+32(FP), DI
	VBROADCASTSD X0, Y0
	XORQ  AX, AX
	MOVQ  CX, BX
	ANDQ  $-4, BX

axpyloop4:
	CMPQ AX, BX
	JGE  axpytail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpyloop4

axpytail:
	// VEX-encoded scalar ops: legacy SSE here would pay an AVX-SSE
	// transition penalty on every call whose length is not a multiple
	// of four.
	CMPQ AX, CX
	JGE  axpydone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VADDSD (DI)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ   AX
	JMP    axpytail

axpydone:
	VZEROUPPER
	RET

// func gradQuadAVX(g, p, q []float64, wx, wv *[4]float64)
//
// Adds four weighted instance contributions to the gradient row g:
//
//	g[j] += wx[0]*p0[j] - wv[0]*q0[j]   ... then instances 1, 2, 3
//
// where p and q each hold four consecutive len(g)-long rows. Per element
// and instance, the operation sequence is mul, mul, sub, add — the exact
// four roundings of the scalar expression, applied in instance order onto
// a register accumulator that replaces the scalar loop's exact store/load
// round-trips.
TEXT ·gradQuadAVX(SB), NOSPLIT, $0-88
	MOVQ g_base+0(FP), DI
	MOVQ g_len+8(FP), CX
	MOVQ p_base+24(FP), SI
	MOVQ q_base+48(FP), DX
	MOVQ wx+72(FP), R8
	MOVQ wv+80(FP), R9

	VBROADCASTSD 0(R8), Y0
	VBROADCASTSD 8(R8), Y1
	VBROADCASTSD 16(R8), Y2
	VBROADCASTSD 24(R8), Y3
	VBROADCASTSD 0(R9), Y4
	VBROADCASTSD 8(R9), Y5
	VBROADCASTSD 16(R9), Y6
	VBROADCASTSD 24(R9), Y7

	// Row pointers: stride = len(g)*8 bytes; R10 holds the stride until the
	// last row pointer is formed, then becomes q3.
	MOVQ CX, R10
	SHLQ $3, R10
	LEAQ (SI)(R10*1), R8
	LEAQ (R8)(R10*1), R9
	LEAQ (R9)(R10*1), R11
	LEAQ (DX)(R10*1), R12
	LEAQ (R12)(R10*1), R13
	LEAQ (R13)(R10*1), R10

	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-4, BX

gradloop4:
	CMPQ AX, BX
	JGE  gradtail
	VMOVUPD (DI)(AX*8), Y8

	VMOVUPD (SI)(AX*8), Y9
	VMULPD  Y0, Y9, Y9
	VMOVUPD (DX)(AX*8), Y10
	VMULPD  Y4, Y10, Y10
	VSUBPD  Y10, Y9, Y9
	VADDPD  Y9, Y8, Y8

	VMOVUPD (R8)(AX*8), Y9
	VMULPD  Y1, Y9, Y9
	VMOVUPD (R12)(AX*8), Y10
	VMULPD  Y5, Y10, Y10
	VSUBPD  Y10, Y9, Y9
	VADDPD  Y9, Y8, Y8

	VMOVUPD (R9)(AX*8), Y9
	VMULPD  Y2, Y9, Y9
	VMOVUPD (R13)(AX*8), Y10
	VMULPD  Y6, Y10, Y10
	VSUBPD  Y10, Y9, Y9
	VADDPD  Y9, Y8, Y8

	VMOVUPD (R11)(AX*8), Y9
	VMULPD  Y3, Y9, Y9
	VMOVUPD (R10)(AX*8), Y10
	VMULPD  Y7, Y10, Y10
	VSUBPD  Y10, Y9, Y9
	VADDPD  Y9, Y8, Y8

	VMOVUPD Y8, (DI)(AX*8)
	ADDQ $4, AX
	JMP  gradloop4

gradtail:
	// VEX-encoded scalar ops: see axpytail.
	CMPQ AX, CX
	JGE  graddone
	VMOVSD (DI)(AX*8), X8

	VMOVSD (SI)(AX*8), X9
	VMULSD X0, X9, X9
	VMOVSD (DX)(AX*8), X10
	VMULSD X4, X10, X10
	VSUBSD X10, X9, X9
	VADDSD X9, X8, X8

	VMOVSD (R8)(AX*8), X9
	VMULSD X1, X9, X9
	VMOVSD (R12)(AX*8), X10
	VMULSD X5, X10, X10
	VSUBSD X10, X9, X9
	VADDSD X9, X8, X8

	VMOVSD (R9)(AX*8), X9
	VMULSD X2, X9, X9
	VMOVSD (R13)(AX*8), X10
	VMULSD X6, X10, X10
	VSUBSD X10, X9, X9
	VADDSD X9, X8, X8

	VMOVSD (R11)(AX*8), X9
	VMULSD X3, X9, X9
	VMOVSD (R10)(AX*8), X10
	VMULSD X7, X10, X10
	VSUBSD X10, X9, X9
	VADDSD X9, X8, X8

	VMOVSD X8, (DI)(AX*8)
	INCQ   AX
	JMP    gradtail

graddone:
	VZEROUPPER
	RET

// func matmulRowAVX(dst, a, b []float64)
//
// One MatMul output row: dst[c] += Σ_i a[i]*b[i*n+c] with n = len(dst) and
// k = len(a), skipping a[i] == 0 rows (bit test, so ±0.0 both skip, exactly
// like the Go loop's `ai == 0`). Columns are processed in register-resident
// chunks of 16/4/1: per element the products accumulate in ascending i with
// one VMULPD and one VADDPD lane each — the exact roundings of the scalar
// loop — and the chunk registers only replace exact store/load round-trips.
TEXT ·matmulRowAVX(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ a_base+24(FP), R11
	MOVQ a_len+32(FP), R12
	MOVQ b_base+48(FP), DX
	MOVQ CX, R9
	SHLQ $3, R9                  // b row stride in bytes
	XORQ R10, R10                // c0: first column of the current chunk

chunk16:
	LEAQ 16(R10), AX
	CMPQ AX, CX
	JGT  chunk4
	LEAQ (DX)(R10*8), BX
	VMOVUPD (DI)(R10*8), Y8
	VMOVUPD 32(DI)(R10*8), Y9
	VMOVUPD 64(DI)(R10*8), Y10
	VMOVUPD 96(DI)(R10*8), Y11
	MOVQ R11, SI
	MOVQ R12, R13
	TESTQ R13, R13
	JZ   store16

i16:
	MOVQ (SI), AX
	SHLQ $1, AX
	JZ   skip16
	VBROADCASTSD (SI), Y0
	VMOVUPD (BX), Y12
	VMULPD  Y0, Y12, Y12
	VADDPD  Y12, Y8, Y8
	VMOVUPD 32(BX), Y13
	VMULPD  Y0, Y13, Y13
	VADDPD  Y13, Y9, Y9
	VMOVUPD 64(BX), Y14
	VMULPD  Y0, Y14, Y14
	VADDPD  Y14, Y10, Y10
	VMOVUPD 96(BX), Y15
	VMULPD  Y0, Y15, Y15
	VADDPD  Y15, Y11, Y11

skip16:
	ADDQ $8, SI
	ADDQ R9, BX
	DECQ R13
	JNZ  i16

store16:
	VMOVUPD Y8, (DI)(R10*8)
	VMOVUPD Y9, 32(DI)(R10*8)
	VMOVUPD Y10, 64(DI)(R10*8)
	VMOVUPD Y11, 96(DI)(R10*8)
	ADDQ $16, R10
	JMP  chunk16

chunk4:
	LEAQ 4(R10), AX
	CMPQ AX, CX
	JGT  tail1
	LEAQ (DX)(R10*8), BX
	VMOVUPD (DI)(R10*8), Y8
	MOVQ R11, SI
	MOVQ R12, R13
	TESTQ R13, R13
	JZ   store4

i4:
	MOVQ (SI), AX
	SHLQ $1, AX
	JZ   skip4
	VBROADCASTSD (SI), Y0
	VMOVUPD (BX), Y12
	VMULPD  Y0, Y12, Y12
	VADDPD  Y12, Y8, Y8

skip4:
	ADDQ $8, SI
	ADDQ R9, BX
	DECQ R13
	JNZ  i4

store4:
	VMOVUPD Y8, (DI)(R10*8)
	ADDQ $4, R10
	JMP  chunk4

tail1:
	CMPQ R10, CX
	JGE  rowdone
	LEAQ (DX)(R10*8), BX
	VMOVSD (DI)(R10*8), X8
	MOVQ R11, SI
	MOVQ R12, R13
	TESTQ R13, R13
	JZ   store1

i1:
	MOVQ (SI), AX
	SHLQ $1, AX
	JZ   skip1
	VMOVSD (SI), X0
	VMOVSD (BX), X12
	VMULSD X0, X12, X12
	VADDSD X12, X8, X8

skip1:
	ADDQ $8, SI
	ADDQ R9, BX
	DECQ R13
	JNZ  i1

store1:
	VMOVSD X8, (DI)(R10*8)
	INCQ R10
	JMP  tail1

rowdone:
	VZEROUPPER
	RET
