// Package kernels provides the dense linear-algebra micro-kernels behind the
// RBM-IM hot path: unrolled vector primitives (Dot, Axpy, AddScaled), cache-
// blocked matrix products (MatMul, MatMulT), element-wise activations
// (Sigmoid, Softmax), and the fused gradient accumulators the batch-major
// CD-k trainer uses (AccumRankK, AxpyDiff).
//
// # Bit-exactness contract
//
// Every kernel produces, for each output element, the exact floating-point
// result of the obvious scalar reference loop: the same operations, applied
// in the same left-to-right order, with the same expression shapes (no
// re-association, no multiple partial accumulators per element, no FMA
// contraction beyond what the reference expression itself permits). Blocking
// and unrolling are only applied across *independent* output elements, or by
// splitting one element's accumulation at an exact float64 store/load
// boundary — both of which leave each element's value bit-identical.
//
// This contract is what lets core.RBM run its Gibbs layer passes as one
// blocked product over a whole mini-batch while remaining bit-identical to a
// per-instance matvec loop (the property-based tests in this package assert
// bitwise equality against the naive references, and the core package pins
// the end-to-end guarantee at CD-1 and CD-4).
package kernels

import "math"

// blockK is the accumulation-dimension block length of MatMul / MatMulT /
// AccumRankK. 64 float64 rows of a typical (≤160-wide) operand panel stay
// resident in L1/L2 while every output row streams past, and processing
// blocks in increasing index order preserves each element's accumulation
// order exactly.
const blockK = 64

// Dot returns the inner product of x and y accumulated strictly left to
// right into a single accumulator. The loop is unrolled to amortize branch
// and bounds-check overhead; the unrolled body keeps one sequential
// accumulation chain, so the result is bit-identical to the naive loop.
// y must be at least as long as x.
func Dot(x, y []float64) float64 {
	n := len(x)
	y = y[:n]
	var s float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s += x[i] * y[i]
		s += x[i+1] * y[i+1]
		s += x[i+2] * y[i+2]
		s += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y[i] += a*x[i] (BLAS axpy), four doubles at a time — AVX
// lanes on amd64, an unrolled scalar loop elsewhere; both apply the exact
// two roundings of the naive loop per element. y must be at least as long
// as x.
func Axpy(a float64, x, y []float64) {
	if useAVX && len(x) >= 8 {
		axpyAVX(a, x, y[:len(x)])
		return
	}
	axpyGeneric(a, x, y)
}

func axpyGeneric(a float64, x, y []float64) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}

// AddScaled computes dst[i] = a*x[i] + b*y[i]. dst may alias x or y (the
// momentum update uses dst == x). x and y must be at least as long as dst.
func AddScaled(dst []float64, a float64, x []float64, b float64, y []float64) {
	n := len(dst)
	x = x[:n]
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = a*x[i] + b*y[i]
		dst[i+1] = a*x[i+1] + b*y[i+1]
		dst[i+2] = a*x[i+2] + b*y[i+2]
		dst[i+3] = a*x[i+3] + b*y[i+3]
	}
	for ; i < n; i++ {
		dst[i] = a*x[i] + b*y[i]
	}
}

// AxpyDiff computes dst[i] += w*(x[i] - v[i]) — the bias-gradient
// accumulation of one weighted instance. x and v must be at least as long as
// dst.
func AxpyDiff(w float64, x, v, dst []float64) {
	n := len(dst)
	x = x[:n]
	v = v[:n]
	for i := range dst {
		dst[i] += w * (x[i] - v[i])
	}
}

// MatMul accumulates dst[m×n] += a[m×k] · b[k×n], all row-major. Zero
// elements of a are skipped exactly like the matvec loops it replaces (the
// Gibbs chain feeds {0,1} hidden states through it, halving the work).
//
// Per output element, contributions are added in increasing accumulation
// index, matching `for i: dst[j] += a[i] * b[i][j]`. The accumulation
// dimension is processed in blocks of blockK rows of b so the active b panel
// stays cache-resident across all m output rows; blocks run in increasing
// order, so the per-element accumulation order is unchanged.
func MatMul(dst, a, b []float64, m, k, n int) {
	if m == 0 || k == 0 || n == 0 {
		return
	}
	_ = dst[m*n-1]
	_ = a[m*k-1]
	_ = b[k*n-1]
	if useAVX {
		// One micro-kernel call per output row: dst columns accumulate in
		// register-resident chunks over the full (zero-skipping) a row,
		// replacing per-i store/load round-trips exactly. b stays
		// cache-resident across the row loop for this package's operand
		// sizes, so no explicit blocking is needed.
		for r := 0; r < m; r++ {
			matmulRowAVX(dst[r*n:r*n+n], a[r*k:r*k+k], b)
		}
		return
	}
	for k0 := 0; k0 < k; k0 += blockK {
		k1 := k0 + blockK
		if k1 > k {
			k1 = k
		}
		for r := 0; r < m; r++ {
			arow := a[r*k : r*k+k]
			drow := dst[r*n : r*n+n]
			for i := k0; i < k1; i++ {
				ai := arow[i]
				if ai == 0 {
					continue
				}
				Axpy(ai, b[i*n:i*n+n], drow)
			}
		}
	}
}

// MatMulT accumulates dst[m×n] += a[m×k] · b[n×k]ᵀ, all row-major: each
// output element gains the inner product of an a-row with a b-row. Per
// element, products are added strictly in increasing index order onto an
// accumulator seeded from dst (matching `s := dst[j]; for l: s += a[l] *
// b[j][l]`); instruction-level parallelism comes from computing four output
// columns at once, each with its own sequential accumulation chain. The
// accumulation dimension is blocked like MatMul, round-tripping the
// accumulator through dst at exact float64 boundaries between blocks.
// Unlike MatMul there is no zero-skip: the dot-shaped loop would pay an
// unpredictable branch per element, and the dense activations this kernel
// is used on (sigmoid/softmax outputs) are never zero — sparse operands
// belong on MatMul against a transposed b.
func MatMulT(dst, a, b []float64, m, k, n int) {
	if m == 0 || k == 0 || n == 0 {
		return
	}
	_ = dst[m*n-1]
	_ = a[m*k-1]
	_ = b[n*k-1]
	for l0 := 0; l0 < k; l0 += blockK {
		l1 := l0 + blockK
		if l1 > k {
			l1 = k
		}
		for r := 0; r < m; r++ {
			arow := a[r*k+l0 : r*k+l1]
			drow := dst[r*n : r*n+n]
			j := 0
			for ; j+4 <= n; j += 4 {
				b0 := b[(j+0)*k+l0 : (j+0)*k+l1 : (j+0)*k+l1]
				b1 := b[(j+1)*k+l0 : (j+1)*k+l1 : (j+1)*k+l1]
				b2 := b[(j+2)*k+l0 : (j+2)*k+l1 : (j+2)*k+l1]
				b3 := b[(j+3)*k+l0 : (j+3)*k+l1 : (j+3)*k+l1]
				b0 = b0[:len(arow)]
				b1 = b1[:len(arow)]
				b2 = b2[:len(arow)]
				b3 = b3[:len(arow)]
				s0, s1, s2, s3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
				for l, al := range arow {
					s0 += al * b0[l]
					s1 += al * b1[l]
					s2 += al * b2[l]
					s3 += al * b3[l]
				}
				drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
			}
			for ; j < n; j++ {
				brow := b[j*k+l0 : j*k+l1]
				brow = brow[:len(arow)]
				s := drow[j]
				for l, al := range arow {
					s += al * brow[l]
				}
				drow[j] = s
			}
		}
	}
}

// AccumRankK accumulates the fused two-sided rank-m gradient update of CD-k:
//
//	g[i][j] += w[n]*x[n][i] * p[n][j] - w[n]*v[n][i] * q[n][j]   for n = 0..m-1
//
// with g row-major [rows×cols], x and v row-major [m×rows], p and q
// row-major [m×cols]. Per output element the instances contribute in
// increasing n with exactly the per-instance expression
// `g += (w*xi)*p[j] - (w*vi)*q[j]`, so the result is bit-identical to a
// sequential instance loop: the inner loop carries four instances per pass
// with the running element held in a register, which only replaces exact
// store/load round-trips of the one-instance-at-a-time loop. Instances are
// processed in blocks so each g row is revisited while the block's p/q
// panel is cache-resident.
func AccumRankK(g, w, x, v, p, q []float64, m, rows, cols int) {
	if m == 0 || rows == 0 || cols == 0 {
		return
	}
	_ = g[rows*cols-1]
	_ = w[m-1]
	_ = x[m*rows-1]
	_ = v[m*rows-1]
	_ = p[m*cols-1]
	_ = q[m*cols-1]
	for n0 := 0; n0 < m; n0 += blockK {
		n1 := n0 + blockK
		if n1 > m {
			n1 = m
		}
		for i := 0; i < rows; i++ {
			grow := g[i*cols : i*cols+cols]
			n := n0
			for ; n+4 <= n1; n += 4 {
				w0, w1, w2, w3 := w[n], w[n+1], w[n+2], w[n+3]
				wx := [4]float64{w0 * x[(n+0)*rows+i], w1 * x[(n+1)*rows+i], w2 * x[(n+2)*rows+i], w3 * x[(n+3)*rows+i]}
				wv := [4]float64{w0 * v[(n+0)*rows+i], w1 * v[(n+1)*rows+i], w2 * v[(n+2)*rows+i], w3 * v[(n+3)*rows+i]}
				if useAVX {
					gradQuadAVX(grow, p[n*cols:(n+4)*cols], q[n*cols:(n+4)*cols], &wx, &wv)
					continue
				}
				p0 := p[(n+0)*cols : (n+0)*cols+cols]
				p1 := p[(n+1)*cols : (n+1)*cols+cols]
				p2 := p[(n+2)*cols : (n+2)*cols+cols]
				p3 := p[(n+3)*cols : (n+3)*cols+cols]
				q0 := q[(n+0)*cols : (n+0)*cols+cols]
				q1 := q[(n+1)*cols : (n+1)*cols+cols]
				q2 := q[(n+2)*cols : (n+2)*cols+cols]
				q3 := q[(n+3)*cols : (n+3)*cols+cols]
				p0, q0 = p0[:len(grow)], q0[:len(grow)]
				p1, q1 = p1[:len(grow)], q1[:len(grow)]
				p2, q2 = p2[:len(grow)], q2[:len(grow)]
				p3, q3 = p3[:len(grow)], q3[:len(grow)]
				for j := range grow {
					gj := grow[j]
					gj += wx[0]*p0[j] - wv[0]*q0[j]
					gj += wx[1]*p1[j] - wv[1]*q1[j]
					gj += wx[2]*p2[j] - wv[2]*q2[j]
					gj += wx[3]*p3[j] - wv[3]*q3[j]
					grow[j] = gj
				}
			}
			for ; n < n1; n++ {
				wn := w[n]
				wxi := wn * x[n*rows+i]
				wvi := wn * v[n*rows+i]
				prow := p[n*cols : n*cols+cols]
				qrow := q[n*cols : n*cols+cols]
				prow = prow[:len(grow)]
				qrow = qrow[:len(grow)]
				for j := range grow {
					grow[j] += wxi*prow[j] - wvi*qrow[j]
				}
			}
		}
	}
}

// Broadcast copies row into each of the m consecutive len(row)-wide rows of
// dst — the bias seeding step before an accumulating product.
func Broadcast(dst, row []float64, m int) {
	n := len(row)
	for r := 0; r < m; r++ {
		copy(dst[r*n:r*n+n], row)
	}
}

// Sigmoid applies the logistic function element-wise in place, computing
// exactly 1/(1+exp(-x)) per element.
func Sigmoid(dst []float64) {
	for i, x := range dst {
		dst[i] = 1 / (1 + math.Exp(-x))
	}
}

// Softmax applies a max-shifted softmax in place: the maximum is found by a
// strict left-to-right scan, each element becomes exp(x-max), the sum
// accumulates left to right, and every element is divided by it — the exact
// operation sequence of the class-layer softmax it replaces. An empty slice
// is a no-op.
func Softmax(dst []float64) {
	if len(dst) == 0 {
		return
	}
	maxS := math.Inf(-1)
	for _, s := range dst {
		if s > maxS {
			maxS = s
		}
	}
	sum := 0.0
	for k := range dst {
		dst[k] = math.Exp(dst[k] - maxS)
		sum += dst[k]
	}
	for k := range dst {
		dst[k] /= sum
	}
}
