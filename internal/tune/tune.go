// Package tune implements self hyper-parameter tuning in the spirit of
// Veloso, Gama & Malheiro (2018), which the paper applies to every detector
// and stream: a Nelder-Mead simplex searches the detector's parameter space,
// scoring each candidate by shadow-evaluating it on a prefix of the stream.
// The optimizer itself lives in internal/stats; this package adds box
// constraints, maximization, and the stream-prefix evaluation loop.
package tune

import (
	"fmt"

	"rbmim/internal/stats"
)

// Param is one tunable hyper-parameter with box constraints.
type Param struct {
	// Name identifies the parameter (e.g. "learning_rate").
	Name string
	// Min and Max bound the search box.
	Min, Max float64
	// Init is the starting value (midpoint when zero and the box excludes
	// zero).
	Init float64
}

// clamp projects v into the parameter box.
func (p Param) clamp(v float64) float64 {
	if v < p.Min {
		return p.Min
	}
	if v > p.Max {
		return p.Max
	}
	return v
}

// Options configures a tuning run.
type Options struct {
	// MaxEvals bounds objective evaluations (default 40 — each evaluation
	// replays the stream prefix, so the budget is deliberately small,
	// matching the online tuner's frugality).
	MaxEvals int
	// Tol is the stopping tolerance (default 1e-4).
	Tol float64
}

// Result reports the best parameter vector found.
type Result struct {
	// Params are the best values, in the order of the Param slice.
	Params []float64
	// Score is the objective at the optimum (higher = better).
	Score float64
	// Evals is the number of objective calls consumed.
	Evals int
}

// Maximize searches the box for the parameter vector maximizing score.
// score receives already-clamped values.
func Maximize(params []Param, score func([]float64) float64, opt Options) (Result, error) {
	if len(params) == 0 {
		return Result{}, fmt.Errorf("tune: no parameters to tune")
	}
	if opt.MaxEvals <= 0 {
		opt.MaxEvals = 40
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-4
	}
	x0 := make([]float64, len(params))
	for i, p := range params {
		if p.Max <= p.Min {
			return Result{}, fmt.Errorf("tune: parameter %q has empty box [%v, %v]", p.Name, p.Min, p.Max)
		}
		v := p.Init
		if v == 0 && (p.Min > 0 || p.Max < 0) {
			v = (p.Min + p.Max) / 2
		}
		x0[i] = p.clamp(v)
	}
	evals := 0
	obj := func(x []float64) float64 {
		evals++
		clamped := make([]float64, len(x))
		for i := range x {
			clamped[i] = params[i].clamp(x[i])
		}
		return -score(clamped) // Nelder-Mead minimizes
	}
	best, bestV := stats.NelderMead(obj, x0, stats.NelderMeadOptions{
		MaxEvals: opt.MaxEvals,
		Tol:      opt.Tol,
		Step:     0.25,
	})
	out := make([]float64, len(best))
	for i := range best {
		out[i] = params[i].clamp(best[i])
	}
	return Result{Params: out, Score: -bestV, Evals: evals}, nil
}

// SnapToGrid maps a continuous value to the nearest element of the discrete
// grid, used to honor Table II's categorical parameter sets after the
// continuous search.
func SnapToGrid(v float64, grid []float64) float64 {
	if len(grid) == 0 {
		return v
	}
	best, bestD := grid[0], absF(v-grid[0])
	for _, g := range grid[1:] {
		if d := absF(v - g); d < bestD {
			best, bestD = g, d
		}
	}
	return best
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
