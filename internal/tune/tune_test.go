package tune

import (
	"math"
	"testing"
)

func TestMaximizeQuadratic(t *testing.T) {
	params := []Param{
		{Name: "x", Min: -10, Max: 10, Init: 0},
		{Name: "y", Min: -10, Max: 10, Init: 0},
	}
	score := func(v []float64) float64 {
		return -(v[0]-3)*(v[0]-3) - (v[1]+1)*(v[1]+1)
	}
	res, err := Maximize(params, score, Options{MaxEvals: 300})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-3) > 0.1 || math.Abs(res.Params[1]+1) > 0.1 {
		t.Fatalf("optimum at %v, want (3,-1)", res.Params)
	}
	if res.Evals == 0 || res.Score < -0.05 {
		t.Fatalf("result metadata wrong: %+v", res)
	}
}

func TestMaximizeRespectsBox(t *testing.T) {
	params := []Param{{Name: "x", Min: 0, Max: 1, Init: 0.5}}
	// Unconstrained optimum at 5, box caps at 1.
	score := func(v []float64) float64 { return -(v[0] - 5) * (v[0] - 5) }
	res, err := Maximize(params, score, Options{MaxEvals: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params[0] < 0 || res.Params[0] > 1 {
		t.Fatalf("parameter escaped the box: %v", res.Params[0])
	}
	if res.Params[0] < 0.9 {
		t.Fatalf("should push to the box edge, got %v", res.Params[0])
	}
}

func TestMaximizeValidation(t *testing.T) {
	if _, err := Maximize(nil, func([]float64) float64 { return 0 }, Options{}); err == nil {
		t.Fatal("empty parameter set should error")
	}
	bad := []Param{{Name: "x", Min: 2, Max: 1}}
	if _, err := Maximize(bad, func([]float64) float64 { return 0 }, Options{}); err == nil {
		t.Fatal("empty box should error")
	}
}

func TestSnapToGrid(t *testing.T) {
	grid := []float64{25, 50, 75, 100}
	if got := SnapToGrid(60, grid); got != 50 {
		t.Fatalf("snap(60) = %v", got)
	}
	if got := SnapToGrid(63, grid); got != 75 {
		t.Fatalf("snap(63) = %v", got)
	}
	if got := SnapToGrid(-5, grid); got != 25 {
		t.Fatalf("snap(-5) = %v", got)
	}
	if got := SnapToGrid(7, nil); got != 7 {
		t.Fatalf("snap on empty grid = %v", got)
	}
}

func TestParamClamp(t *testing.T) {
	p := Param{Min: 1, Max: 3}
	if p.clamp(0) != 1 || p.clamp(5) != 3 || p.clamp(2) != 2 {
		t.Fatal("clamp wrong")
	}
}
