package core

import (
	"testing"

	"rbmim/internal/detectors"
	"rbmim/internal/stream"
	"rbmim/internal/synth"
)

func testConfig(features, classes int) Config {
	return Config{
		Features:       features,
		Classes:        classes,
		BatchSize:      50,
		AdaptiveWindow: true,
		Seed:           1,
	}
}

// runDetector feeds n instances of s through d (labels as both truth and
// prediction; RBM-IM ignores the prediction) and returns the batch indices
// at which drift was signalled.
func runDetector(d *Detector, s stream.Stream, n int) []int {
	var driftAt []int
	for i := 0; i < n; i++ {
		in := s.Next()
		st := d.Update(detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y})
		if st == detectors.Drift {
			driftAt = append(driftAt, i)
		}
	}
	return driftAt
}

func TestDetectorValidation(t *testing.T) {
	if _, err := NewDetector(Config{Features: 0, Classes: 2}); err == nil {
		t.Fatal("expected error for zero features")
	}
	if _, err := NewDetector(Config{Features: 4, Classes: 1}); err == nil {
		t.Fatal("expected error for one class")
	}
	d, err := NewDetector(testConfig(4, 3))
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	if d.Name() != "RBM-IM" {
		t.Fatalf("Name() = %q", d.Name())
	}
}

func TestDetectorStationaryLowFalseAlarms(t *testing.T) {
	gen, err := synth.NewRBF(synth.Config{Features: 10, Classes: 4, Seed: 5}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(testConfig(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	drifts := runDetector(d, gen, n)
	batches := n / d.Config().BatchSize
	if len(drifts) > batches/10 {
		t.Fatalf("stationary stream: %d drift signals over %d batches (too many false alarms)", len(drifts), batches)
	}
}

func TestDetectorFindsSuddenGlobalDrift(t *testing.T) {
	before, err := synth.NewRBF(synth.Config{Features: 10, Classes: 4, Seed: 5}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	after, err := synth.NewRBF(synth.Config{Features: 10, Classes: 4, Seed: 99}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	const driftAt = 10000
	s := stream.NewDriftStream(before, after, stream.Sudden, driftAt, 0, 1)
	d, err := NewDetector(testConfig(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	drifts := runDetector(d, s, 20000)
	found := false
	for _, at := range drifts {
		if at >= driftAt && at <= driftAt+4000 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("sudden global drift at %d not detected; signals at %v", driftAt, drifts)
	}
}

func TestDetectorFindsLocalDriftSingleClass(t *testing.T) {
	gen, err := synth.NewRBF(synth.Config{Features: 10, Classes: 5, Seed: 6}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	const driftAt = 12000
	// Drift only class 3.
	s := stream.NewLocalDriftInjector(gen, []int{3}, stream.Sudden, driftAt, 0, 2)
	d, err := NewDetector(testConfig(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	foundOnClass := false
	for i := 0; i < 24000; i++ {
		in := s.Next()
		st := d.Update(detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y})
		if st == detectors.Drift && i >= driftAt && i <= driftAt+6000 {
			for _, c := range d.DriftClasses() {
				if c == 3 {
					foundOnClass = true
				}
			}
		}
	}
	if !foundOnClass {
		t.Fatal("local drift on class 3 not attributed to class 3")
	}
}

func TestDetectorResetClearsState(t *testing.T) {
	gen, err := synth.NewRBF(synth.Config{Features: 8, Classes: 3, Seed: 9}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(testConfig(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	runDetector(d, gen, 3000)
	d.Reset()
	slopes := d.TrendSlopes()
	for k, s := range slopes {
		if s != 0 {
			t.Fatalf("class %d slope %v after Reset, want 0", k, s)
		}
	}
}

func TestDetectorHandlesImbalancedStream(t *testing.T) {
	gen, err := synth.NewRBF(synth.Config{Features: 10, Classes: 5, Seed: 8}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	skew := stream.NewImbalanceWrapper(gen, stream.NewStaticSkew(5, 100), 3)
	d, err := NewDetector(testConfig(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Must run without panics and keep false alarms bounded.
	drifts := runDetector(d, skew, 15000)
	batches := 15000 / d.Config().BatchSize
	if len(drifts) > batches/8 {
		t.Fatalf("imbalanced stationary stream: %d drifts over %d batches", len(drifts), batches)
	}
}
