package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"testing"

	"rbmim/internal/codec"
	"rbmim/internal/detectors"
)

// stateTestConfig is small enough for fast tests while exercising odd kernel
// tails, several classes, and the adaptive window.
func stateTestConfig(steps int) Config {
	return Config{
		Features: 9, Classes: 4, BatchSize: 10,
		GibbsSteps: steps, WarmupBatches: 3, TrendWindow: 8,
		AdaptiveWindow: true, Seed: 11,
	}
}

// stateObsDraw produces a reproducible raw (unscaled) observation stream
// with exact zeros, occasional out-of-range labels, and a mid-stream shift
// so the monitors see real trend activity.
func stateObsDraw(seed int64, features, classes int) func(i int) detectors.Observation {
	rng := rand.New(rand.NewSource(seed))
	return func(i int) detectors.Observation {
		x := make([]float64, features)
		for j := range x {
			if rng.Intn(8) == 0 {
				continue
			}
			x[j] = rng.Float64() * 3
			if i > 900 {
				x[j] += 1.5 // level shift: make drifts plausible post-resume
			}
		}
		y := rng.Intn(classes)
		if rng.Intn(97) == 0 {
			y = -1 // out-of-range label travels the partial-batch path too
		}
		return detectors.Observation{X: x, TrueClass: y, Predicted: y}
	}
}

// detectorStateBytes snapshots det into a fresh byte slice.
func detectorStateBytes(t *testing.T, det *Detector) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := det.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDetectorKillResumeBitIdentical is the tentpole contract: training N
// observations, checkpointing mid-mini-batch, restoring into a fresh
// detector (a simulated new process), and continuing must be bit-identical
// to never stopping — same per-observation states, same RBM weights, same
// serialized state — at CD-1 and CD-4.
func TestDetectorKillResumeBitIdentical(t *testing.T) {
	for _, steps := range []int{1, 4} {
		cfg := stateTestConfig(steps)
		control, err := NewDetector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		victim, err := NewDetector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		draw := stateObsDraw(int64(steps)*31, cfg.Features, cfg.Classes)

		// Phase 1: both detectors consume the same prefix. 577 is not a
		// multiple of BatchSize, so the checkpoint carries a partial batch.
		const cut, total = 577, 1800
		for i := 0; i < cut; i++ {
			o := draw(i)
			if s1, s2 := control.Update(o), victim.Update(o); s1 != s2 {
				t.Fatalf("CD-%d: pre-cut step %d states diverged: %v vs %v", steps, i, s1, s2)
			}
		}

		// Kill: serialize the victim and rebuild it from scratch.
		snapshot := detectorStateBytes(t, victim)
		resumed, err := NewDetector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.LoadState(bytes.NewReader(snapshot)); err != nil {
			t.Fatal(err)
		}

		// Phase 2: the control (which never stopped) and the resumed copy
		// must agree on every subsequent observation.
		for i := cut; i < total; i++ {
			o := draw(i)
			if s1, s2 := control.Update(o), resumed.Update(o); s1 != s2 {
				t.Fatalf("CD-%d: post-resume step %d states diverged: %v vs %v", steps, i, s1, s2)
			}
		}
		paramsEqualBits(t, "kill-resume CD-"+string(rune('0'+steps)), control.rbm, resumed.rbm)
		if control.rbm.WeightChecksum() != resumed.rbm.WeightChecksum() {
			t.Fatalf("CD-%d: weight checksums differ", steps)
		}
		// The strongest equivalence: the complete serialized states (weights,
		// counts, scaler, monitors, RNG position, partial batch) match byte
		// for byte.
		if !bytes.Equal(detectorStateBytes(t, control), detectorStateBytes(t, resumed)) {
			t.Fatalf("CD-%d: serialized states differ after resume", steps)
		}
	}
}

// TestDetectorLoadStateRejectsMismatchedConfig pins that a snapshot only
// loads into an identically configured detector.
func TestDetectorLoadStateRejectsMismatchedConfig(t *testing.T) {
	cfg := stateTestConfig(1)
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	draw := stateObsDraw(5, cfg.Features, cfg.Classes)
	for i := 0; i < 100; i++ {
		det.Update(draw(i))
	}
	snapshot := detectorStateBytes(t, det)

	mutations := []Config{cfg, cfg, cfg, cfg}
	mutations[0].Seed = 12
	mutations[1].BatchSize = 20
	mutations[2].GibbsSteps = 2
	mutations[3].Classes = 5
	for i, bad := range mutations {
		other, err := NewDetector(bad)
		if err != nil {
			t.Fatal(err)
		}
		before := detectorStateBytes(t, other)
		if err := other.LoadStateBytes(snapshot); err == nil {
			t.Fatalf("mutation %d: mismatched config accepted", i)
		} else if !errors.Is(err, codec.ErrInvalid) {
			t.Fatalf("mutation %d: error %v is not codec.ErrInvalid", i, err)
		}
		if !bytes.Equal(before, detectorStateBytes(t, other)) {
			t.Fatalf("mutation %d: failed load mutated the receiver", i)
		}
	}
}

// patchCRC recomputes a frame's trailing CRC after a deliberate payload
// mutation, so the corruption reaches the semantic validators instead of
// being caught by the checksum.
func patchCRC(frame []byte) {
	binary.LittleEndian.PutUint32(frame[len(frame)-4:],
		crc32.ChecksumIEEE(frame[:len(frame)-4]))
}

// TestDetectorLoadStateNeverHalfLoads flips every byte of a valid snapshot
// (with the CRC re-fixed so decoding actually runs) and requires that every
// failed load leaves the receiver bit-identical to before, and that no input
// panics. Successful loads (a flipped weight bit is still a valid snapshot)
// are fine — the guarantee under test is error ⇒ untouched.
func TestDetectorLoadStateNeverHalfLoads(t *testing.T) {
	cfg := stateTestConfig(1)
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	draw := stateObsDraw(7, cfg.Features, cfg.Classes)
	for i := 0; i < 137; i++ {
		det.Update(draw(i))
	}
	snapshot := detectorStateBytes(t, det)

	receiver, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pristine := detectorStateBytes(t, receiver)
	loaded := 0
	for i := 0; i < len(snapshot)-4; i++ {
		bad := append([]byte(nil), snapshot...)
		bad[i] ^= 0x10
		patchCRC(bad)
		if err := receiver.LoadStateBytes(bad); err != nil {
			if !errors.Is(err, codec.ErrInvalid) {
				t.Fatalf("flip at %d: error %v is not codec.ErrInvalid", i, err)
			}
			if !bytes.Equal(pristine, detectorStateBytes(t, receiver)) {
				t.Fatalf("flip at %d: failed load mutated the receiver", i)
			}
			continue
		}
		// Load succeeded: the mutated state must still be continuable.
		loaded++
		receiver.Update(draw(0))
		// Rebuild a pristine receiver for the next iteration.
		receiver, err = NewDetector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pristine = detectorStateBytes(t, receiver)
	}
	if loaded == 0 {
		t.Log("no mutation produced a loadable snapshot (all were caught by validation)")
	}
	// Pure truncations must always fail.
	for n := 0; n < len(snapshot); n += 7 {
		if err := receiver.LoadStateBytes(snapshot[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// A wrong format version must fail with a version message.
	bad := append([]byte(nil), snapshot...)
	bad[4] = codec.Version + 1
	patchCRC(bad)
	if err := receiver.LoadStateBytes(bad); err == nil || !errors.Is(err, codec.ErrInvalid) {
		t.Fatalf("wrong version accepted: %v", err)
	}
}

// TestRNGReplayCeiling pins both halves of the ceiling: SaveState refuses to
// emit a snapshot that could never be restored, and LoadState rejects a
// hand-rolled snapshot past the ceiling instead of replaying for hours.
func TestRNGReplayCeiling(t *testing.T) {
	cfg := stateTestConfig(1)
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det.rbm.src.calls = maxRNGReplay + 1
	var buf bytes.Buffer
	if err := det.SaveState(&buf); err == nil {
		t.Fatal("SaveState emitted a snapshot beyond the replay ceiling")
	}
	// Craft the over-ceiling snapshot directly (bypassing SaveState's guard)
	// to exercise the decode-side check.
	w := codec.NewBuffer(nil)
	det.encodeState(w)
	snapshot := codec.AppendFrame(nil, codec.KindRBMIM, w.Bytes())
	fresh, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadStateBytes(snapshot); err == nil {
		t.Fatal("RNG position beyond the replay ceiling accepted")
	}
}

// TestSaveStateAllocationFree pins that periodic snapshots reuse the
// struct-owned scratch: after the first call, SaveState performs no heap
// allocations (the property the monitor's snapshot cadence relies on).
func TestSaveStateAllocationFree(t *testing.T) {
	cfg := stateTestConfig(1)
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	draw := stateObsDraw(9, cfg.Features, cfg.Classes)
	for i := 0; i < 250; i++ {
		det.Update(draw(i))
	}
	if err := det.SaveState(io.Discard); err != nil { // grow the scratch once
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := det.SaveState(io.Discard); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("SaveState allocates %.1f per call", allocs)
	}
}

// FuzzDetectorLoadState feeds arbitrary bytes to the loader: it must never
// panic, and whenever it reports success the detector must still be usable.
func FuzzDetectorLoadState(f *testing.F) {
	cfg := stateTestConfig(1)
	seedDet, err := NewDetector(cfg)
	if err != nil {
		f.Fatal(err)
	}
	draw := stateObsDraw(13, cfg.Features, cfg.Classes)
	for i := 0; i < 120; i++ {
		seedDet.Update(draw(i))
	}
	var buf bytes.Buffer
	if err := seedDet.SaveState(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("RBCK garbage"))
	f.Add([]byte{})

	probe := draw(0)
	f.Fuzz(func(t *testing.T, data []byte) {
		det, err := NewDetector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := det.LoadStateBytes(data); err != nil && !errors.Is(err, codec.ErrInvalid) {
			t.Fatalf("load error %v does not wrap codec.ErrInvalid", err)
		}
		det.Update(probe) // must not panic, loaded or not
	})
}
