package core

import (
	"fmt"
	"math"
	"slices"

	"rbmim/internal/detectors"
	"rbmim/internal/stats"
	"rbmim/internal/stream"
)

// Config parameterizes the RBM-IM drift detector (Table II, row "RBM-IM").
type Config struct {
	// Features and Classes describe the monitored stream.
	Features int
	Classes  int
	// BatchSize is the mini-batch length M (Table II: {25,50,75,100}).
	BatchSize int
	// HiddenFraction sets H = max(2, round(f*V)) when Hidden is zero.
	// Table II sweeps {0.25..1.0}; the default here is 2.0 — see the
	// calibration notes in EXPERIMENTS.md.
	HiddenFraction float64
	// Hidden overrides the hidden layer size directly when positive.
	Hidden int
	// LearningRate is eta. Table II sweeps {0.01..0.07}; the default here
	// is 0.5 (with momentum 0.9) because this implementation applies one
	// averaged CD update per mini-batch rather than the paper's
	// per-instance schedule, so it needs a much larger step for the same
	// per-batch learning progress. The detector must compress the current
	// concept quickly for drifts to register as reconstruction-error
	// escapes; the constants were selected by the detection-quality grid in
	// EXPERIMENTS.md (calibration notes).
	LearningRate float64
	// GibbsSteps is k of CD-k (Table II: {1..4}).
	GibbsSteps int
	// Alpha is the significance level shared by the trend prediction
	// interval and the Granger causality decision (default 0.05).
	Alpha float64
	// TrendWindow is the initial sliding-window length W in batches
	// (default 16); with AdaptiveWindow it is re-fit by ADWIN afterwards.
	TrendWindow int
	// AdaptiveWindow enables ADWIN-driven self-adaptation of W (default on
	// via NewDetector; the paper: "we propose to use a self-adaptive window
	// size").
	AdaptiveWindow bool
	// GrangerLags is the lag order of the causality test (default 1).
	GrangerLags int
	// WarmupBatches is the number of initial batches used purely for
	// training before detection starts. The paper trains on the first
	// batch only; the default here is 30 because the early CD updates
	// descend steeply and non-linearly, which the linear trend model would
	// otherwise misread as changes.
	WarmupBatches int
	// Seed drives all randomness.
	Seed int64
	// Momentum, Beta, CountDecay tune the RBM (see RBMConfig).
	Momentum   float64
	Beta       float64
	CountDecay float64
}

// withDefaults fills zero values with the paper-aligned defaults.
func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 50
	}
	if c.HiddenFraction <= 0 {
		c.HiddenFraction = 2.0
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.5
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.GibbsSteps <= 0 {
		c.GibbsSteps = 1
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.05
	}
	if c.TrendWindow < 4 {
		c.TrendWindow = 16
	}
	if c.GrangerLags <= 0 {
		c.GrangerLags = 1
	}
	if c.WarmupBatches <= 0 {
		c.WarmupBatches = 30
	}
	return c
}

// classMonitor holds the per-class detection state: the sliding trend of the
// class's reconstruction error, the ADWIN that adapts the window, and the
// retained trend history for the Granger test. The error series is updated
// only on batches in which the class appears (Eq. 27 is computed over the
// class's instances in the current mini-batch), so minority classes form
// sparse but *fresh* series — every point reflects the newest instances of
// that class, which is what makes local minority drifts visible.
type classMonitor struct {
	trend   *stats.SlidingTrend
	adwin   *stats.ADWIN
	history []float64 // recent trend slopes for the causality test
	batches int       // class-present batches since (re)start
	lastErr float64
	// accSum/accCount accumulate the class's reconstruction errors across
	// batches until at least minPointSupport instances back a series point,
	// so extreme-minority series stay low-noise without losing freshness.
	accSum   float64
	accCount int
	// pending marks that the previous series point already escaped the
	// prediction interval: a drift is only confirmed on two consecutive
	// escapes, which a level shift produces and isolated noise does not.
	pending bool
}

// minPointSupport is the minimum number of class instances backing one
// reconstruction-error series point.
const minPointSupport = 3

// Detector is RBM-IM. It implements detectors.Detector and
// detectors.ClassAttributor so the evaluation harness treats it exactly like
// the baselines while exposing local (per-class) drift attribution.
type Detector struct {
	cfg    Config
	rbm    *RBM
	scaler *stream.Scaler
	// batchX holds BatchSize preallocated rows (views into batchBuf) that
	// are scaled into in place; batchN counts the filled rows. Together with
	// the struct-owned scratch below this keeps steady-state Update calls
	// free of heap allocations.
	batchX   [][]float64
	batchBuf []float64
	batchY   []int
	batchN   int
	monitor  []*classMonitor
	batches  int
	drifted  []int
	// blockDrifted accumulates the union of drifted classes across the
	// mini-batches completed inside one UpdateBatch call.
	blockDrifted []int
	// historyCap bounds the retained per-class trend history: two Granger
	// windows.
	historyCap int
	// Per-batch scratch: the batched per-instance reconstruction errors,
	// per-class error sums/counts, and the regression buffers of
	// trendCandidate.
	errs      []float64
	errSums   []float64
	errCounts []int
	xsScratch []float64
	vScratch  []float64
	// Checkpoint scratch (state.go): the encoded payload and the framed
	// snapshot, reused so periodic SaveState calls are allocation-free.
	stateScratch []byte
	frameScratch []byte
	// Drift flight recorder (flightrecorder.go): a ring of recent per-class
	// detection samples and the record snapshotted at the last confirmed
	// drift. Process-local observability, excluded from SaveState.
	recorder  []DriftSample
	recHead   int
	recLen    int
	lastDrift *DriftRecord
}

var _ detectors.Detector = (*Detector)(nil)
var _ detectors.BatchDetector = (*Detector)(nil)
var _ detectors.ClassAttributor = (*Detector)(nil)

// NewDetector builds an RBM-IM detector for the given stream schema.
func NewDetector(cfg Config) (*Detector, error) {
	cfg = cfg.withDefaults()
	if cfg.Features < 1 || cfg.Classes < 2 {
		return nil, fmt.Errorf("core: detector needs features >= 1 and classes >= 2, got %d/%d", cfg.Features, cfg.Classes)
	}
	hidden := cfg.Hidden
	if hidden <= 0 {
		hidden = int(math.Round(cfg.HiddenFraction * float64(cfg.Features)))
		if hidden < 2 {
			hidden = 2
		}
	}
	rbm, err := NewRBM(RBMConfig{
		Visible:      cfg.Features,
		Hidden:       hidden,
		Classes:      cfg.Classes,
		LearningRate: cfg.LearningRate,
		GibbsSteps:   cfg.GibbsSteps,
		Momentum:     cfg.Momentum,
		Beta:         cfg.Beta,
		CountDecay:   cfg.CountDecay,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	d := &Detector{
		cfg:        cfg,
		rbm:        rbm,
		scaler:     stream.NewScaler(stream.Schema{Features: cfg.Features, Classes: cfg.Classes}),
		historyCap: 2 * cfg.TrendWindow,
	}
	d.batchBuf = make([]float64, cfg.BatchSize*cfg.Features)
	d.batchX = make([][]float64, cfg.BatchSize)
	for i := range d.batchX {
		d.batchX[i] = d.batchBuf[i*cfg.Features : (i+1)*cfg.Features : (i+1)*cfg.Features]
	}
	d.batchY = make([]int, cfg.BatchSize)
	d.errs = make([]float64, cfg.BatchSize)
	// Pre-grow the RBM's batch-major matrices for the configured mini-batch
	// so the detector never allocates on the hot path, first batch included.
	rbm.ensureBatch(cfg.BatchSize)
	d.errSums = make([]float64, cfg.Classes)
	d.errCounts = make([]int, cfg.Classes)
	// The adaptive window is clamped to 4*TrendWindow, so these scratch
	// slices never grow after construction.
	d.xsScratch = make([]float64, 0, 4*cfg.TrendWindow)
	d.vScratch = make([]float64, 0, 4*cfg.TrendWindow)
	d.recorder = make([]DriftSample, flightRecorderDepth)
	d.monitor = make([]*classMonitor, cfg.Classes)
	for k := range d.monitor {
		d.monitor[k] = &classMonitor{
			trend:   stats.NewSlidingTrend(cfg.TrendWindow),
			adwin:   stats.NewADWIN(0.002),
			history: make([]float64, 0, d.historyCap),
		}
	}
	return d, nil
}

// Name returns "RBM-IM".
func (d *Detector) Name() string { return "RBM-IM" }

// Config returns the resolved configuration.
func (d *Detector) Config() Config { return d.cfg }

// DriftClasses lists the classes attributed to the most recent drift signal.
func (d *Detector) DriftClasses() []int { return d.drifted }

// Reset clears the detection statistics. The trained RBM is retained: the
// paper's detector "re-trains itself in an online fashion" rather than being
// re-initialized by the harness.
func (d *Detector) Reset() {
	for _, m := range d.monitor {
		m.trend = stats.NewSlidingTrend(d.cfg.TrendWindow)
		m.adwin = stats.NewADWIN(0.002)
		m.history = m.history[:0]
		m.batches = 0
		m.lastErr = 0
		m.accSum, m.accCount = 0, 0
		m.pending = false
	}
	d.drifted = nil
	d.batchN = 0
	d.recHead, d.recLen = 0, 0
	d.lastDrift = nil
}

// Update consumes one observation; detection work happens when a mini-batch
// completes.
func (d *Detector) Update(o detectors.Observation) detectors.State {
	if len(o.X) != d.cfg.Features {
		// Fail loudly: silently padding or truncating would train the RBM
		// on garbage (the batch rows are fixed at cfg.Features wide).
		panic(fmt.Sprintf("core: observation has %d features, detector configured for %d", len(o.X), d.cfg.Features))
	}
	d.scaler.Observe(o.X)
	d.scaler.Scale(o.X, d.batchX[d.batchN])
	d.batchY[d.batchN] = o.TrueClass
	d.batchN++
	if d.batchN < d.cfg.BatchSize {
		return detectors.None
	}
	state := d.processBatch()
	d.batchN = 0
	return state
}

// UpdateBatch consumes a block of observations through the same scale →
// mini-batch → CD-k path as Update, writing the per-observation state into
// states; it implements detectors.BatchDetector. The per-observation states
// and the detector's internal evolution are identical to calling Update in a
// loop — batching amortizes the interface dispatch and bounds checks, and
// lets the monitor and the evaluation pipeline move whole blocks at once.
// After the call, DriftClasses lists the union of classes over every
// mini-batch that drifted within the block (see detectors.BatchDetector).
func (d *Detector) UpdateBatch(obs []detectors.Observation, states []detectors.State) {
	d.blockDrifted = d.blockDrifted[:0]
	blockDrifts := false
	for i := range obs {
		o := &obs[i]
		if len(o.X) != d.cfg.Features {
			panic(fmt.Sprintf("core: observation has %d features, detector configured for %d", len(o.X), d.cfg.Features))
		}
		d.scaler.Observe(o.X)
		d.scaler.Scale(o.X, d.batchX[d.batchN])
		d.batchY[d.batchN] = o.TrueClass
		d.batchN++
		if d.batchN < d.cfg.BatchSize {
			states[i] = detectors.None
			continue
		}
		states[i] = d.processBatch()
		d.batchN = 0
		if states[i] == detectors.Drift {
			blockDrifts = true
			for _, k := range d.drifted {
				if !slices.Contains(d.blockDrifted, k) {
					d.blockDrifted = append(d.blockDrifted, k)
				}
			}
		}
	}
	// A drifting mini-batch followed by quiet ones inside the same block
	// would leave d.drifted describing only the last batch; restore the
	// block-wide union so DriftClasses matches the states the caller sees.
	// Without any drift in the block, d.drifted keeps whatever the
	// sequential loop would have left (allocation only on actual drifts).
	if blockDrifts {
		d.drifted = append([]int(nil), d.blockDrifted...)
	}
}

// processBatch trains the RBM on the completed mini-batch and runs the
// per-class trend + Granger drift tests.
func (d *Detector) processBatch() detectors.State {
	d.batches++
	// The unscored variant skips the pre-update error pass behind
	// TrainBatch's return value: Eq. 27 is evaluated below against the
	// updated weights, so that pass would be discarded work.
	d.rbm.TrainBatchUnscored(d.batchX, d.batchY)
	if d.batches <= d.cfg.WarmupBatches {
		return detectors.None
	}
	d.drifted = nil
	warning := false
	// Per-class mean reconstruction error over the instances of the class
	// in this mini-batch (Eq. 27). Classes absent from the batch get no
	// update, so minority series are sparse but always fresh. Scoring runs
	// batch-major (ScoreBatch: three blocked layer passes for the whole
	// mini-batch, bit-identical to per-instance ReconstructionError calls).
	sums := d.errSums
	counts := d.errCounts
	clear(sums)
	clear(counts)
	d.rbm.ScoreBatch(d.batchX, d.batchY, d.errs)
	for i := range d.batchX {
		y := d.batchY[i]
		if y < 0 || y >= d.cfg.Classes {
			continue
		}
		sums[y] += d.errs[i]
		counts[y]++
	}
	for k, m := range d.monitor {
		if counts[k] == 0 {
			continue
		}
		m.accSum += sums[k]
		m.accCount += counts[k]
		if m.accCount < minPointSupport {
			continue
		}
		r := m.accSum / float64(m.accCount)
		m.accSum, m.accCount = 0, 0
		m.lastErr = r
		m.batches++
		d.recordSample(k, r, m)

		// Candidate test: does the new error escape the trend's prediction
		// interval?
		candidate, escaped := d.trendCandidate(m, r)
		if escaped {
			warning = true
		}

		if candidate {
			if !m.pending {
				// First escape: arm the class but hold the point out of the
				// statistics, so the next point is tested against the same
				// pre-jump window. A real level shift escapes again; an
				// isolated noise spike does not.
				m.pending = true
				continue
			}
			// Second consecutive escape: consult the causality test —
			// Granger between the previous and current halves of the trend
			// history on first differences. A rejected causality hypothesis
			// (past no longer forecasts present) confirms the drift.
			if d.grangerConfirms(m) {
				d.drifted = append(d.drifted, k)
				// Restart this class's detection statistics; the RBM itself
				// keeps training online.
				m.trend = stats.NewSlidingTrend(d.cfg.TrendWindow)
				m.adwin = stats.NewADWIN(0.002)
				m.history = m.history[:0]
				m.batches = 0
				m.pending = false
				continue
			}
			// Causality holds: treat the escapes as explained variation and
			// absorb the point below.
		}
		m.pending = false

		// Feed the statistics so later tests compare against this window.
		if d.cfg.AdaptiveWindow {
			if m.adwin.Add(r) {
				// ADWIN shrank: adapt the trend window toward the
				// homogeneous suffix it found (bounded to sane sizes).
				w := m.adwin.Width()
				if w < 4 {
					w = 4
				}
				if w > 4*d.cfg.TrendWindow {
					w = 4 * d.cfg.TrendWindow
				}
				m.trend.SetWindow(w)
			}
		}
		m.trend.Add(r)
		// Fixed-capacity history: shift-and-append instead of reslicing the
		// tail, so the backing array is reused forever.
		if len(m.history) == d.historyCap {
			copy(m.history, m.history[1:])
			m.history = m.history[:d.historyCap-1]
		}
		m.history = append(m.history, m.trend.Slope())
	}
	if len(d.drifted) > 0 {
		d.lastDrift = d.buildDriftRecord()
		return detectors.Drift
	}
	if warning {
		return detectors.Warning
	}
	return detectors.None
}

// trendCandidate checks whether the new reconstruction error r escapes the
// two-sided prediction interval of the class's trend regression at a
// Bonferroni-corrected significance (alpha split across the monitored
// classes, since each batch runs one test per class). Both directions count:
// a concept change usually makes previously-learned prototypes reconstruct
// worse, but a class relocating into an already well-modeled region shows up
// as a sharp *decrease* — the paper's trend analysis is
// direction-agnostic. A small relative magnitude floor guards against
// micro-escapes when the interval is degenerately tight. Returns candidate
// (consult the causality test) and escaped (the observation lay outside the
// interval).
func (d *Detector) trendCandidate(m *classMonitor, r float64) (candidate, escaped bool) {
	n := m.trend.Count()
	if n < 5 {
		return false, false
	}
	vals := m.trend.ValuesInto(d.vScratch)
	d.vScratch = vals[:0]
	if cap(d.xsScratch) < n {
		d.xsScratch = make([]float64, 0, n)
	}
	xs := d.xsScratch[:n]
	for i := range xs {
		xs[i] = float64(i)
	}
	alphaHat, betaHat, rss := stats.OLS(xs, vals)
	dfree := float64(n - 2)
	if dfree <= 0 {
		return false, false
	}
	s2 := rss / dfree
	// Prediction at the next time index.
	x0 := float64(n)
	xBar := (x0 - 1) / 2
	var sxx float64
	for _, x := range xs {
		dx := x - xBar
		sxx += dx * dx
	}
	if sxx <= 0 {
		return false, false
	}
	pred := alphaHat + betaHat*x0
	se := math.Sqrt(s2 * (1 + 1/float64(n) + (x0-xBar)*(x0-xBar)/sxx))
	if se < 1e-9 {
		se = 1e-9
	}
	effAlpha := d.cfg.Alpha / float64(d.cfg.Classes)
	tcrit := stats.StudentTQuantile(1-effAlpha/2, dfree)
	jump := math.Abs(r - pred)
	floor := 0.05 * m.trend.Mean()
	if floor < 1e-6 {
		floor = 1e-6
	}
	escaped = jump > tcrit*se
	candidate = escaped && jump > floor
	return candidate, escaped
}

// grangerConfirms runs the first-difference Granger causality test between
// the older and newer halves of the class's retained trend history,
// returning true when the causality hypothesis is rejected (drift).
func (d *Detector) grangerConfirms(m *classMonitor) bool {
	h := m.history
	half := len(h) / 2
	need := 2*d.cfg.GrangerLags + 3
	if half < need {
		// Not enough history for the causality test yet: stay conservative
		// and keep gathering evidence (a short refractory period after each
		// restart, matching the paper's "first batch trains the detector").
		return false
	}
	prev := h[:half]
	cur := h[len(h)-half:]
	res, err := stats.GrangerCausality(prev, cur, d.cfg.GrangerLags, d.cfg.Alpha)
	if err != nil {
		return true
	}
	return !res.Causal
}

// LastErrors returns the most recent per-class reconstruction errors
// (diagnostics, examples, and the local-drift demos).
func (d *Detector) LastErrors() []float64 {
	out := make([]float64, d.cfg.Classes)
	for k, m := range d.monitor {
		out[k] = m.lastErr
	}
	return out
}

// TrendSlopes returns the current per-class trend slopes Qr(t)^m (Eq. 28).
func (d *Detector) TrendSlopes() []float64 {
	out := make([]float64, d.cfg.Classes)
	for k, m := range d.monitor {
		out[k] = m.trend.Slope()
	}
	return out
}

// RBM exposes the underlying network (examples and diagnostics).
func (d *Detector) RBM() *RBM { return d.rbm }
