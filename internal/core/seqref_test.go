package core

import (
	"math"
	"math/rand"
	"testing"
)

// seqTrainBatch is the frozen pre-kernel implementation of one CD-k update:
// a per-instance loop of seven matvec layer passes using the production
// single-instance helpers (hiddenProbs / visibleProbs / classProbs /
// sampleBinary) and verbatim copies of the old gradient and momentum loops.
// It is the reference the batch-major trainBatch must match bit for bit.
//
// legacyWeights selects the pre-PR per-instance class weighting (observe one
// label, then an O(Z·pow) classWeight scan, per instance); with it false the
// reference shares the production per-batch weight table, isolating the
// kernel restructuring — that is the configuration the bit-identity tests
// pin, since the weight-table semantics are an intended (tolerance-tested)
// deviation. With score it returns the mean reconstruction error like
// TrainBatch; without, it mirrors TrainBatchUnscored (the detector's pre-PR
// hot path, which the benchmarks compare against).
func seqTrainBatch(r *RBM, xs [][]float64, ys []int, legacyWeights, score bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	V, H, Z := r.cfg.Visible, r.cfg.Hidden, r.cfg.Classes
	gw := make([]float64, V*H)
	gu := make([]float64, H*Z)
	ga := make([]float64, V)
	gb := make([]float64, H)
	gc := make([]float64, Z)
	z0 := make([]float64, Z)
	hProb := make([]float64, H)
	hState := make([]float64, H)
	hRecon := make([]float64, H)
	vRecon := make([]float64, V)
	zRecon := make([]float64, Z)
	if !legacyWeights {
		r.computeBatchWeights(ys[:len(xs)])
	}
	totalErr := 0.0

	for n := range xs {
		x, y := xs[n], ys[n]
		var weight float64
		if legacyWeights {
			r.observeClass(y)
			weight = r.classWeight(y)
		} else {
			weight = r.wVec[n]
		}
		for k := range z0 {
			z0[k] = 0
		}
		if y >= 0 && y < Z {
			z0[y] = 1
		}
		// Positive phase: h ~ P(h | v = x, z = 1_y) (Eq. 25).
		r.hiddenProbs(x, z0, hProb)
		r.sampleBinary(hProb, hState)

		// Gibbs chain (CD-k): alternate reconstruction of (v, z) and h.
		hCur := hState
		for step := 0; step < r.cfg.GibbsSteps; step++ {
			r.visibleProbs(hCur, vRecon)
			r.classProbs(hCur, zRecon)
			r.hiddenProbs(vRecon, zRecon, hRecon)
			if step < r.cfg.GibbsSteps-1 {
				r.sampleBinary(hRecon, hRecon)
			}
			hCur = hRecon
		}

		// Accumulate weighted gradients: E_data[..] - E_recon[..].
		for i := 0; i < V; i++ {
			xi, vi := x[i], vRecon[i]
			ga[i] += weight * (xi - vi)
			wxi, wvi := weight*xi, weight*vi
			grow := gw[i*H : i*H+H]
			for j := range grow {
				grow[j] += wxi*hProb[j] - wvi*hRecon[j]
			}
		}
		for j := 0; j < H; j++ {
			hp, hr := hProb[j], hRecon[j]
			gb[j] += weight * (hp - hr)
			whp, whr := weight*hp, weight*hr
			grow := gu[j*Z : j*Z+Z]
			for k := range grow {
				grow[k] += whp*z0[k] - whr*zRecon[k]
			}
		}
		for k := 0; k < Z; k++ {
			gc[k] += weight * (z0[k] - zRecon[k])
		}
		if score {
			totalErr += r.reconErrorFrom(x, z0)
		}
	}

	// Apply momentum-smoothed updates (Eq. 17-21).
	inv := 1 / float64(len(xs))
	eta, mom := r.cfg.LearningRate, r.cfg.Momentum
	scale := eta * inv
	for i := 0; i < V; i++ {
		r.da[i] = mom*r.da[i] + scale*ga[i]
		r.a[i] += r.da[i]
	}
	for p := range r.w {
		r.dw[p] = mom*r.dw[p] + scale*gw[p]
		r.w[p] += r.dw[p]
	}
	for j := 0; j < H; j++ {
		r.db[j] = mom*r.db[j] + scale*gb[j]
		r.b[j] += r.db[j]
	}
	for p := range r.u {
		r.du[p] = mom*r.du[p] + scale*gu[p]
		r.u[p] += r.du[p]
	}
	for k := 0; k < Z; k++ {
		r.dc[k] = mom*r.dc[k] + scale*gc[k]
		r.c[k] += r.dc[k]
	}
	return totalErr * inv
}

// seqBatchStream draws reproducible mini-batches with exact zeros mixed in
// (the scaler emits exact zeros at feature minima, which exercises the
// zero-skip branches of the kernels).
func seqBatchStream(seed int64, V, Z int) func(bn int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	return func(bn int) ([][]float64, []int) {
		xs := make([][]float64, bn)
		ys := make([]int, bn)
		for i := range xs {
			x := make([]float64, V)
			for j := range x {
				if rng.Intn(8) == 0 {
					continue // exact zero
				}
				x[j] = rng.Float64()
			}
			xs[i] = x
			ys[i] = rng.Intn(Z)
		}
		return xs, ys
	}
}

func paramsEqualBits(t *testing.T, label string, a, b *RBM) {
	t.Helper()
	check := func(name string, x, y []float64) {
		t.Helper()
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				t.Fatalf("%s: %s[%d] = %x batch-major vs %x sequential",
					label, name, i, math.Float64bits(x[i]), math.Float64bits(y[i]))
			}
		}
	}
	check("w", a.w, b.w)
	check("u", a.u, b.u)
	check("a", a.a, b.a)
	check("b", a.b, b.b)
	check("c", a.c, b.c)
	check("dw", a.dw, b.dw)
	check("du", a.du, b.du)
}

// TestTrainBatchBitIdenticalToSequential is the tentpole contract: the
// batch-major kernel path must produce bit-identical weights to the
// per-instance sequential loop at CD-1 and CD-4, across batch sizes
// including 1, for dimensions that exercise the kernels' unroll tails. The
// RNG is only consumed in sampling, in the same per-instance order on both
// paths, so every Bernoulli draw — and therefore every weight — must agree
// exactly.
func TestTrainBatchBitIdenticalToSequential(t *testing.T) {
	const V, H, Z = 9, 13, 5 // odd sizes: 4-wide unroll tails everywhere
	for _, steps := range []int{1, 4} {
		for _, bn := range []int{1, 3, 50} {
			cfg := RBMConfig{
				Visible: V, Hidden: H, Classes: Z,
				LearningRate: 0.5, Momentum: 0.9, GibbsSteps: steps, Seed: 11,
			}
			bm, err := NewRBM(cfg)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := NewRBM(cfg)
			if err != nil {
				t.Fatal(err)
			}
			draw := seqBatchStream(int64(100*steps+bn), V, Z)
			for batch := 0; batch < 25; batch++ {
				xs, ys := draw(bn)
				gotErr := bm.TrainBatch(xs, ys)
				wantErr := seqTrainBatch(seq, xs, ys, false, true)
				label := t.Name() + ": "
				paramsEqualBits(t, label+"CD-"+string(rune('0'+steps)), bm, seq)
				if math.Float64bits(gotErr) != math.Float64bits(wantErr) {
					t.Fatalf("steps=%d bn=%d batch=%d: scored error %v batch-major vs %v sequential",
						steps, bn, batch, gotErr, wantErr)
				}
			}
		}
	}
}

// TestScoreBatchMatchesReconstructionError pins the batched scorer: every
// entry must be bit-identical to the single-instance ReconstructionError.
func TestScoreBatchMatchesReconstructionError(t *testing.T) {
	const V, H, Z = 11, 7, 3
	r, err := NewRBM(RBMConfig{Visible: V, Hidden: H, Classes: Z, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	draw := seqBatchStream(9, V, Z)
	xs, ys := draw(33)
	r.TrainBatchUnscored(xs, ys)
	ys[7] = -1 // out-of-range label: all-zero class row on both paths
	errs := make([]float64, len(xs))
	r.ScoreBatch(xs, ys, errs)
	for i := range xs {
		want := r.ReconstructionError(xs[i], ys[i])
		if math.Float64bits(errs[i]) != math.Float64bits(want) {
			t.Fatalf("instance %d: ScoreBatch %v vs ReconstructionError %v", i, errs[i], want)
		}
	}
}

// TestBatchWeightTableMatchesEndOfBatchWeights pins the exactness half of
// the weight-table argument: after observing the batch, the table entry of
// every seen class equals classWeight bit for bit (same arithmetic, hoisted
// out of the instance loop).
func TestBatchWeightTableMatchesEndOfBatchWeights(t *testing.T) {
	r, err := NewRBM(RBMConfig{Visible: 4, Hidden: 6, Classes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	ys := make([]int, 50)
	for round := 0; round < 30; round++ {
		for i := range ys {
			ys[i] = rng.Intn(4)
		}
		r.computeBatchWeights(ys)
		for k := 0; k < 4; k++ {
			want := r.classWeight(k)
			if math.Float64bits(r.wTab[k]) != math.Float64bits(want) {
				t.Fatalf("round %d class %d: table %v vs classWeight %v", round, k, r.wTab[k], want)
			}
		}
	}
}

// TestBatchWeightTableNearPerInstanceWeights pins the tolerance half: on
// warmed-up counts, the per-batch table deviates from the pre-PR
// per-instance weights by no more than the within-batch count drift — a few
// percent at the default decay for batches up to 256 (the cold-start case,
// where a class's very first instances carried weight ~1 before its batch
// count accumulated, is the documented exception).
func TestBatchWeightTableNearPerInstanceWeights(t *testing.T) {
	const Z = 5
	const decay = 0.999
	const beta = 0.99
	r, err := NewRBM(RBMConfig{Visible: 4, Hidden: 6, Classes: Z, Seed: 5, Beta: beta, CountDecay: decay})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	drawLabel := func() int {
		// Imbalanced but warm: class 0 dominates, the rest share the tail.
		if rng.Float64() < 0.6 {
			return 0
		}
		return 1 + rng.Intn(Z-1)
	}
	for i := 0; i < 4000; i++ {
		r.observeClass(drawLabel())
	}

	// Replay the pre-PR per-instance scheme on a snapshot of the counts.
	counts := r.ClassCounts()
	legacyWeight := func(m int) float64 {
		n := counts[m]
		if n < 1 {
			n = 1
		}
		w := (1 - beta) / (1 - math.Pow(beta, n))
		sum, cnt := 0.0, 0
		for k := range counts {
			nk := counts[k]
			if nk < 1 {
				continue
			}
			sum += (1 - beta) / (1 - math.Pow(beta, nk))
			cnt++
		}
		if cnt == 0 || sum == 0 {
			return 1
		}
		return w / (sum / float64(cnt))
	}

	for _, bn := range []int{50, 256} {
		ys := make([]int, bn)
		for i := range ys {
			ys[i] = drawLabel()
		}
		perInstance := make([]float64, bn)
		for i, y := range ys {
			for k := range counts {
				counts[k] *= decay
			}
			counts[y]++
			perInstance[i] = legacyWeight(y)
		}
		r.computeBatchWeights(ys)
		worst := 0.0
		for i := range ys {
			rel := math.Abs(r.wVec[i]-perInstance[i]) / perInstance[i]
			if rel > worst {
				worst = rel
			}
		}
		if worst > 0.05 {
			t.Fatalf("batch %d: worst relative weight deviation %.4f exceeds 5%%", bn, worst)
		}
		// Keep the replayed counts in sync with the RBM's (it observed ys in
		// computeBatchWeights) before the next batch size.
		counts = r.ClassCounts()
	}
}

// TestTrainAndScorePathsAllocationFree pins the zero-allocation property of
// the batch-major hot paths after the matrices have grown once.
func TestTrainAndScorePathsAllocationFree(t *testing.T) {
	const V, H, Z = 12, 24, 5
	r, err := NewRBM(RBMConfig{Visible: V, Hidden: H, Classes: Z, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	draw := seqBatchStream(4, V, Z)
	xs, ys := draw(50)
	errs := make([]float64, len(xs))
	r.TrainBatchUnscored(xs, ys) // grow the matrices once
	if allocs := testing.AllocsPerRun(20, func() { r.TrainBatchUnscored(xs, ys) }); allocs != 0 {
		t.Fatalf("TrainBatchUnscored allocates %.1f per call", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { r.TrainBatch(xs, ys) }); allocs != 0 {
		t.Fatalf("TrainBatch allocates %.1f per call", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { r.ScoreBatch(xs, ys, errs) }); allocs != 0 {
		t.Fatalf("ScoreBatch allocates %.1f per call", allocs)
	}
}
