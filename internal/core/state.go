package core

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"rbmim/internal/codec"
	"rbmim/internal/detectors"
	"rbmim/internal/stats"
	"rbmim/internal/stream"
)

// This file implements checkpointing for RBM-IM: a versioned, reflection-free
// binary snapshot of every piece of mutable detector state, with the hard
// guarantee that save → load → continue training is bit-identical to never
// stopping (pinned by state_test.go at CD-1 and CD-4, mid-mini-batch
// included). The persistent state is exactly:
//
//   - the RBM parameters (w, u, a, b, c), momentum buffers, decayed class
//     counts with their lazy scale/gain pair, and the RNG position;
//   - the online min-max scaler bounds;
//   - the partially filled mini-batch (scaled rows + labels);
//   - the per-class monitors (sliding trend, ADWIN, trend history, pending
//     flag, accumulators) and the detector's batch/drift counters.
//
// Everything else on the structs (batch matrices, gradient scratch,
// transposes, per-batch weight tables) is derived scratch and is rebuilt on
// demand after a load. LoadState is atomic: the receiver is only mutated
// after the entire snapshot decoded and validated, so a corrupt or truncated
// snapshot leaves the detector exactly as it was.

// countedSource wraps the math/rand source with a pass-through draw counter.
// Values are unchanged, so every pinned random sequence in the repository is
// preserved; the counter is what makes the RNG serializable without access
// to the generator's internal state.
type countedSource struct {
	src   rand.Source64
	calls uint64
}

func newCountedSource(seed int64) *countedSource {
	return &countedSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countedSource) Int63() int64 {
	c.calls++
	return c.src.Int63()
}

func (c *countedSource) Uint64() uint64 {
	c.calls++
	return c.src.Uint64()
}

func (c *countedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.calls = 0
}

// skipTo re-seeds the source and replays it forward to the given draw count.
// Both Int63 and Uint64 advance the underlying generator by exactly one
// step, so replaying with Uint64 lands on the identical state regardless of
// which mix of calls produced the count.
func (c *countedSource) skipTo(seed int64, calls uint64) {
	c.src.Seed(seed)
	for i := uint64(0); i < calls; i++ {
		c.src.Uint64()
	}
	c.calls = calls
}

// maxRNGReplay bounds the RNG position a snapshot may carry, because a
// restore replays that many raw draws (~1-2 ns each). 2^32 draws replay in
// roughly ten seconds and cover ~10^8 observations per stream at typical
// CD-k draw rates — far beyond the paper's stream lengths. Snapshots past
// the ceiling fail loudly rather than hang the loader; see DESIGN.md
// ("Checkpoint format") for the jump-ahead discussion.
const maxRNGReplay = 1 << 32

// encodeState appends the RBM's persistent state: the construction
// parameters (validated on load) followed by every mutable field.
func (r *RBM) encodeState(w *codec.Buffer) {
	c := r.cfg
	w.Int(c.Visible)
	w.Int(c.Hidden)
	w.Int(c.Classes)
	w.F64(c.LearningRate)
	w.Int(c.GibbsSteps)
	w.F64(c.Momentum)
	w.F64(c.Beta)
	w.F64(c.CountDecay)
	w.I64(c.Seed)
	w.F64s(r.w)
	w.F64s(r.u)
	w.F64s(r.a)
	w.F64s(r.b)
	w.F64s(r.c)
	w.F64s(r.dw)
	w.F64s(r.du)
	w.F64s(r.da)
	w.F64s(r.db)
	w.F64s(r.dc)
	w.F64s(r.classCounts)
	w.F64(r.countScale)
	w.F64(r.countGain)
	w.U64(r.src.calls)
}

// rbmStaged holds a fully decoded RBM state before it is applied.
type rbmStaged struct {
	w, u, a, b, c         []float64
	dw, du, da, db, dc    []float64
	classCounts           []float64
	countScale, countGain float64
	rngCalls              uint64
}

// decodeState reads and validates an RBM state against the receiver's
// configuration without touching the receiver.
func (r *RBM) decodeState(rd *codec.Reader) *rbmStaged {
	c := r.cfg
	if v := rd.Int(); rd.Err() == nil && v != c.Visible {
		rd.Fail("snapshot has %d visible neurons, RBM has %d", v, c.Visible)
	}
	if h := rd.Int(); rd.Err() == nil && h != c.Hidden {
		rd.Fail("snapshot has %d hidden neurons, RBM has %d", h, c.Hidden)
	}
	if z := rd.Int(); rd.Err() == nil && z != c.Classes {
		rd.Fail("snapshot has %d classes, RBM has %d", z, c.Classes)
	}
	if lr := rd.F64(); rd.Err() == nil && lr != c.LearningRate {
		rd.Fail("snapshot learning rate %v, RBM has %v", lr, c.LearningRate)
	}
	if k := rd.Int(); rd.Err() == nil && k != c.GibbsSteps {
		rd.Fail("snapshot CD-%d, RBM is CD-%d", k, c.GibbsSteps)
	}
	if m := rd.F64(); rd.Err() == nil && m != c.Momentum {
		rd.Fail("snapshot momentum %v, RBM has %v", m, c.Momentum)
	}
	if b := rd.F64(); rd.Err() == nil && b != c.Beta {
		rd.Fail("snapshot beta %v, RBM has %v", b, c.Beta)
	}
	if d := rd.F64(); rd.Err() == nil && d != c.CountDecay {
		rd.Fail("snapshot count decay %v, RBM has %v", d, c.CountDecay)
	}
	if s := rd.I64(); rd.Err() == nil && s != c.Seed {
		rd.Fail("snapshot seed %d, RBM has %d", s, c.Seed)
	}
	V, H, Z := c.Visible, c.Hidden, c.Classes
	st := &rbmStaged{
		w:           rd.F64sLen(V * H),
		u:           rd.F64sLen(H * Z),
		a:           rd.F64sLen(V),
		b:           rd.F64sLen(H),
		c:           rd.F64sLen(Z),
		dw:          rd.F64sLen(V * H),
		du:          rd.F64sLen(H * Z),
		da:          rd.F64sLen(V),
		db:          rd.F64sLen(H),
		dc:          rd.F64sLen(Z),
		classCounts: rd.F64sLen(Z),
		countScale:  rd.F64(),
		countGain:   rd.F64(),
		rngCalls:    rd.U64(),
	}
	if rd.Err() != nil {
		return nil
	}
	// The lazy decay pair lives in (floor, 1] x [1, 1/floor); anything else
	// means a corrupt snapshot that would silently skew Eq. 13.
	if !(st.countScale > 0 && st.countScale <= 1) || !(st.countGain >= 1) {
		rd.Fail("count scale/gain %v/%v outside the lazy-decay range", st.countScale, st.countGain)
		return nil
	}
	if st.rngCalls > maxRNGReplay {
		rd.Fail("RNG position %d exceeds the replay ceiling %d", st.rngCalls, uint64(maxRNGReplay))
		return nil
	}
	return st
}

// applyState installs a staged state, repositioning the RNG by replay. The
// batch matrices, transposes, and weight tables are derived scratch: they
// are invalidated (wuStale) or rebuilt on the next batch.
func (r *RBM) applyState(st *rbmStaged) {
	copy(r.w, st.w)
	copy(r.u, st.u)
	copy(r.a, st.a)
	copy(r.b, st.b)
	copy(r.c, st.c)
	copy(r.dw, st.dw)
	copy(r.du, st.du)
	copy(r.da, st.da)
	copy(r.db, st.db)
	copy(r.dc, st.dc)
	copy(r.classCounts, st.classCounts)
	r.countScale = st.countScale
	r.countGain = st.countGain
	r.src.skipTo(r.cfg.Seed, st.rngCalls)
	r.wuStale = true
}

// WeightChecksum returns an FNV-1a digest over the bit patterns of the
// learned parameters (w, u, a, b, c). Two detectors whose training histories
// are bit-identical — the checkpoint guarantee — have equal checksums; used
// by the kill-and-resume demos and tests.
func (r *RBM) WeightChecksum() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	sum := uint64(offset)
	for _, s := range [][]float64{r.w, r.u, r.a, r.b, r.c} {
		for _, v := range s {
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				sum ^= bits >> (8 * i) & 0xff
				sum *= prime
			}
		}
	}
	return sum
}

// detectorStaged holds a fully decoded Detector state before it is applied.
type detectorStaged struct {
	rbm      *rbmStaged
	scaler   *stream.Scaler
	batchBuf []float64
	batchY   []int
	batchN   int
	batches  int
	drifted  []int
	monitor  []*classMonitor
}

// encodeState appends the detector's complete persistent state (the frame
// payload behind SaveState).
func (d *Detector) encodeState(w *codec.Buffer) {
	c := d.cfg
	w.Int(c.Features)
	w.Int(c.Classes)
	w.Int(c.BatchSize)
	w.F64(c.HiddenFraction)
	w.Int(c.Hidden)
	w.F64(c.LearningRate)
	w.Int(c.GibbsSteps)
	w.F64(c.Alpha)
	w.Int(c.TrendWindow)
	w.Bool(c.AdaptiveWindow)
	w.Int(c.GrangerLags)
	w.Int(c.WarmupBatches)
	w.I64(c.Seed)
	w.F64(c.Momentum)
	w.F64(c.Beta)
	w.F64(c.CountDecay)

	d.rbm.encodeState(w)
	d.scaler.EncodeState(w)

	w.Int(d.batchN)
	w.F64s(d.batchBuf[:d.batchN*c.Features])
	w.Ints(d.batchY[:d.batchN])
	w.Int(d.batches)
	w.Ints(d.drifted)

	for _, m := range d.monitor {
		m.trend.EncodeState(w)
		m.adwin.EncodeState(w)
		w.F64s(m.history)
		w.Int(m.batches)
		w.F64(m.lastErr)
		w.F64(m.accSum)
		w.Int(m.accCount)
		w.Bool(m.pending)
	}
}

// decodeState reads and validates a full detector snapshot without touching
// the receiver.
func (d *Detector) decodeState(rd *codec.Reader) (*detectorStaged, error) {
	c := d.cfg
	checkInt := func(name string, want int) {
		if got := rd.Int(); rd.Err() == nil && got != want {
			rd.Fail("snapshot %s %d, detector has %d", name, got, want)
		}
	}
	checkF64 := func(name string, want float64) {
		if got := rd.F64(); rd.Err() == nil && got != want {
			rd.Fail("snapshot %s %v, detector has %v", name, got, want)
		}
	}
	checkInt("features", c.Features)
	checkInt("classes", c.Classes)
	checkInt("batch size", c.BatchSize)
	checkF64("hidden fraction", c.HiddenFraction)
	checkInt("hidden override", c.Hidden)
	checkF64("learning rate", c.LearningRate)
	checkInt("gibbs steps", c.GibbsSteps)
	checkF64("alpha", c.Alpha)
	checkInt("trend window", c.TrendWindow)
	if got := rd.Bool(); rd.Err() == nil && got != c.AdaptiveWindow {
		rd.Fail("snapshot adaptive-window %v, detector has %v", got, c.AdaptiveWindow)
	}
	checkInt("granger lags", c.GrangerLags)
	checkInt("warmup batches", c.WarmupBatches)
	if got := rd.I64(); rd.Err() == nil && got != c.Seed {
		rd.Fail("snapshot seed %d, detector has %d", got, c.Seed)
	}
	checkF64("momentum", c.Momentum)
	checkF64("beta", c.Beta)
	checkF64("count decay", c.CountDecay)
	if rd.Err() != nil {
		return nil, rd.Err()
	}

	st := &detectorStaged{}
	if st.rbm = d.rbm.decodeState(rd); rd.Err() != nil {
		return nil, rd.Err()
	}
	st.scaler = stream.NewScaler(stream.Schema{Features: c.Features, Classes: c.Classes})
	if err := st.scaler.DecodeState(rd); err != nil {
		return nil, err
	}

	st.batchN = rd.Int()
	if rd.Err() == nil && (st.batchN < 0 || st.batchN >= c.BatchSize) {
		rd.Fail("partial batch holds %d rows, batch size is %d", st.batchN, c.BatchSize)
	}
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	st.batchBuf = rd.F64sLen(st.batchN * c.Features)
	st.batchY = rd.Ints()
	if rd.Err() == nil && len(st.batchY) != st.batchN {
		rd.Fail("partial batch has %d labels for %d rows", len(st.batchY), st.batchN)
	}
	st.batches = rd.Int()
	if rd.Err() == nil && st.batches < 0 {
		rd.Fail("negative batch counter %d", st.batches)
	}
	st.drifted = rd.Ints()
	for _, k := range st.drifted {
		if rd.Err() == nil && (k < 0 || k >= c.Classes) {
			rd.Fail("drifted class %d out of range", k)
		}
	}
	if rd.Err() != nil {
		return nil, rd.Err()
	}

	st.monitor = make([]*classMonitor, c.Classes)
	for k := range st.monitor {
		m := &classMonitor{
			trend: stats.NewSlidingTrend(c.TrendWindow),
			adwin: stats.NewADWIN(0.002),
		}
		if err := m.trend.DecodeState(rd); err != nil {
			return nil, err
		}
		if err := m.adwin.DecodeState(rd); err != nil {
			return nil, err
		}
		hist := rd.F64s()
		if rd.Err() == nil && len(hist) > d.historyCap {
			rd.Fail("class %d history has %d entries, cap is %d", k, len(hist), d.historyCap)
		}
		m.batches = rd.Int()
		m.lastErr = rd.F64()
		m.accSum = rd.F64()
		m.accCount = rd.Int()
		m.pending = rd.Bool()
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		if m.batches < 0 || m.accCount < 0 {
			rd.Fail("class %d monitor counters negative", k)
			return nil, rd.Err()
		}
		// Fixed-capacity history: the shift-and-append in processBatch relies
		// on the backing array never growing past historyCap.
		m.history = make([]float64, len(hist), d.historyCap)
		copy(m.history, hist)
		st.monitor[k] = m
	}
	if err := rd.Done(); err != nil {
		return nil, err
	}
	return st, nil
}

// applyState installs a staged detector snapshot.
func (d *Detector) applyState(st *detectorStaged) {
	d.rbm.applyState(st.rbm)
	d.scaler = st.scaler
	copy(d.batchBuf, st.batchBuf)
	copy(d.batchY, st.batchY)
	d.batchN = st.batchN
	d.batches = st.batches
	d.drifted = st.drifted
	d.blockDrifted = d.blockDrifted[:0]
	d.monitor = st.monitor
}

// AppendState appends one complete checkpoint frame (header, payload, CRC —
// see internal/codec) for the detector to dst and returns the extended
// slice. The payload scratch is struct-owned, so steady-state snapshots
// allocate nothing beyond dst's own growth. It fails once the detector's
// RNG position passes the replay ceiling LoadState enforces — failing at
// save time surfaces the problem on the first unusable snapshot instead of
// at a much later restore.
func (d *Detector) AppendState(dst []byte) ([]byte, error) {
	if calls := d.rbm.src.calls; calls > maxRNGReplay {
		return dst, fmt.Errorf("core: RNG position %d exceeds the %d-draw replay ceiling; this detector's state can no longer be checkpointed (see DESIGN.md)", calls, uint64(maxRNGReplay))
	}
	w := codec.NewBuffer(d.stateScratch)
	d.encodeState(w)
	d.stateScratch = w.Bytes()
	return codec.AppendFrame(dst, codec.KindRBMIM, w.Bytes()), nil
}

// SaveState writes one checkpoint frame for the detector to w; it implements
// detectors.StatefulDetector. Steady-state calls reuse struct-owned scratch,
// so periodic snapshots stay allocation-free.
func (d *Detector) SaveState(w io.Writer) error {
	frame, err := d.AppendState(d.frameScratch[:0])
	if err != nil {
		return err
	}
	d.frameScratch = frame
	if _, err := w.Write(d.frameScratch); err != nil {
		return fmt.Errorf("core: writing detector state: %w", err)
	}
	return nil
}

// LoadStateBytes restores the detector from one checkpoint frame. The
// receiver must have been constructed with the identical configuration
// (including Seed) as the saved detector; after a successful load, continued
// training is bit-identical to the saved detector having never stopped.
// Corrupt, truncated, or mismatched input returns an error wrapping
// codec.ErrInvalid and leaves the receiver completely unchanged.
func (d *Detector) LoadStateBytes(data []byte) error {
	payload, err := codec.ExpectFrame(data, codec.KindRBMIM)
	if err != nil {
		return err
	}
	st, err := d.decodeState(codec.NewReader(payload))
	if err != nil {
		return err
	}
	d.applyState(st)
	return nil
}

// LoadState reads one checkpoint frame from r and restores the detector; it
// implements detectors.StatefulDetector. See LoadStateBytes for the
// contract.
func (d *Detector) LoadState(r io.Reader) error {
	kind, payload, err := codec.ReadFrame(r)
	if err != nil {
		return err
	}
	if kind != codec.KindRBMIM {
		return fmt.Errorf("%w: frame kind %d is not an RBM-IM snapshot", codec.ErrInvalid, kind)
	}
	st, err := d.decodeState(codec.NewReader(payload))
	if err != nil {
		return err
	}
	d.applyState(st)
	return nil
}

var _ detectors.StatefulDetector = (*Detector)(nil)
