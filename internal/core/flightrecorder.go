package core

// Drift flight recorder: a small ring of the most recent per-class
// detection-statistics samples, kept so a confirmed drift can ship its own
// postmortem. Every completed reconstruction-error point (Eq. 27) deposits
// one sample — the per-class mean error, the trend slope (Eq. 28 family),
// and the ADWIN window width at that moment — and a confirmed drift
// snapshots the ring into an immutable DriftRecord. The recorder reads only
// values the detector already computed, so it never perturbs a detection
// decision, and it is deliberately excluded from SaveState/LoadState: it
// describes the recent past of a live process, not detector state, and a
// rehydrated stream restarts with an empty ring.

// flightRecorderDepth is the ring capacity: enough to cover the trend
// window plus the two-escape confirmation sequence leading into a drift.
const flightRecorderDepth = 32

// DriftSample is one flight-recorder entry: the detection statistics of one
// class at one completed reconstruction-error point.
type DriftSample struct {
	// Batch is the detector's mini-batch counter when the sample was taken.
	Batch int
	// Class is the class the sample describes.
	Class int
	// Err is the per-class mean reconstruction error (Eq. 27).
	Err float64
	// Slope is the class's trend slope before this point was absorbed.
	Slope float64
	// Width is the class's ADWIN window width at the sample.
	Width int
}

// DriftRecord is the postmortem attached to a confirmed drift: the classes
// that drifted, the detector batch index at confirmation, and the recorder
// ring's samples in chronological order. A record is immutable once built,
// so it may be shared across events and goroutines freely.
type DriftRecord struct {
	// Batch is the mini-batch index at which the drift was confirmed.
	Batch int
	// Classes lists the drifted classes (DriftClasses at confirmation).
	Classes []int
	// Samples holds the recorder ring, oldest first. Interleaves all
	// classes; filter by Class for one class's trajectory.
	Samples []DriftSample
}

// recordSample deposits one sample in the ring. Called on the hot path; a
// ring write, never an allocation.
func (d *Detector) recordSample(k int, r float64, m *classMonitor) {
	d.recorder[d.recHead] = DriftSample{
		Batch: d.batches,
		Class: k,
		Err:   r,
		Slope: m.trend.Slope(),
		Width: m.adwin.Width(),
	}
	d.recHead = (d.recHead + 1) % len(d.recorder)
	if d.recLen < len(d.recorder) {
		d.recLen++
	}
}

// buildDriftRecord snapshots the ring into a fresh record. Only called when
// a drift is confirmed (cold path), so the copies are off the ingest fast
// path.
func (d *Detector) buildDriftRecord() *DriftRecord {
	rec := &DriftRecord{
		Batch:   d.batches,
		Classes: append([]int(nil), d.drifted...),
		Samples: make([]DriftSample, d.recLen),
	}
	start := d.recHead - d.recLen
	if start < 0 {
		start += len(d.recorder)
	}
	for i := 0; i < d.recLen; i++ {
		rec.Samples[i] = d.recorder[(start+i)%len(d.recorder)]
	}
	return rec
}

// LastDriftRecord returns the flight record of the most recent confirmed
// drift, or nil before the first drift. The record is immutable; callers
// may retain it.
func (d *Detector) LastDriftRecord() *DriftRecord { return d.lastDrift }
