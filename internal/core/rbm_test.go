package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestRBM(t *testing.T, visible, hidden, classes int) *RBM {
	t.Helper()
	r, err := NewRBM(RBMConfig{
		Visible: visible, Hidden: hidden, Classes: classes,
		LearningRate: 0.1, GibbsSteps: 1, Seed: 42,
	})
	if err != nil {
		t.Fatalf("NewRBM: %v", err)
	}
	return r
}

func TestNewRBMValidation(t *testing.T) {
	if _, err := NewRBM(RBMConfig{Visible: 0, Classes: 3}); err == nil {
		t.Fatal("expected error for zero visible neurons")
	}
	if _, err := NewRBM(RBMConfig{Visible: 4, Classes: 1}); err == nil {
		t.Fatal("expected error for single class")
	}
	r, err := NewRBM(RBMConfig{Visible: 4, Classes: 3})
	if err != nil {
		t.Fatalf("defaults should validate: %v", err)
	}
	cfg := r.Config()
	if cfg.Hidden <= 0 || cfg.LearningRate <= 0 || cfg.GibbsSteps <= 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}

func TestHiddenProbsAreProbabilities(t *testing.T) {
	r := newTestRBM(t, 6, 4, 3)
	x := []float64{0.1, 0.9, 0.3, 0.7, 0.5, 0.2}
	z := []float64{1, 0, 0}
	h := make([]float64, 4)
	r.hiddenProbs(x, z, h)
	for j, p := range h {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("hidden prob %d out of range: %v", j, p)
		}
	}
}

func TestClassProbsSoftmaxSumsToOne(t *testing.T) {
	r := newTestRBM(t, 6, 4, 5)
	h := []float64{0.2, 0.8, 0.5, 0.1}
	z := make([]float64, 5)
	r.classProbs(h, z)
	sum := 0.0
	for _, p := range z {
		if p < 0 || p > 1 {
			t.Fatalf("class prob out of range: %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sums to %v, want 1", sum)
	}
}

func TestTrainingReducesReconstructionError(t *testing.T) {
	r := newTestRBM(t, 8, 6, 2)
	rng := rand.New(rand.NewSource(7))
	makeBatch := func(n int) ([][]float64, []int) {
		xs := make([][]float64, n)
		ys := make([]int, n)
		for i := range xs {
			y := rng.Intn(2)
			x := make([]float64, 8)
			for j := range x {
				// Two well-separated class prototypes plus noise.
				base := 0.2
				if y == 1 {
					base = 0.8
				}
				x[j] = clamp01(base + 0.05*rng.NormFloat64())
			}
			xs[i], ys[i] = x, y
		}
		return xs, ys
	}
	xs, ys := makeBatch(64)
	before := 0.0
	for i := range xs {
		before += r.ReconstructionError(xs[i], ys[i])
	}
	for epoch := 0; epoch < 60; epoch++ {
		bx, by := makeBatch(32)
		r.TrainBatch(bx, by)
	}
	after := 0.0
	for i := range xs {
		after += r.ReconstructionError(xs[i], ys[i])
	}
	if after >= before {
		t.Fatalf("training did not reduce reconstruction error: before=%v after=%v", before, after)
	}
}

func TestReconstructionErrorGrowsOnConceptShift(t *testing.T) {
	r := newTestRBM(t, 8, 6, 2)
	rng := rand.New(rand.NewSource(11))
	gen := func(flip bool, n int) ([][]float64, []int) {
		xs := make([][]float64, n)
		ys := make([]int, n)
		for i := range xs {
			y := rng.Intn(2)
			x := make([]float64, 8)
			for j := range x {
				base := 0.2
				if (y == 1) != flip { // flipping swaps the class prototypes
					base = 0.8
				}
				x[j] = clamp01(base + 0.04*rng.NormFloat64())
			}
			xs[i], ys[i] = x, y
		}
		return xs, ys
	}
	for epoch := 0; epoch < 300; epoch++ {
		bx, by := gen(false, 32)
		r.TrainBatch(bx, by)
	}
	oldX, oldY := gen(false, 100)
	newX, newY := gen(true, 100) // real drift: class-conditional prototypes swapped
	var errOld, errNew float64
	for i := range oldX {
		errOld += r.ReconstructionError(oldX[i], oldY[i])
		errNew += r.ReconstructionError(newX[i], newY[i])
	}
	if errNew <= errOld*1.05 {
		t.Fatalf("shifted concept should reconstruct worse: old=%v new=%v", errOld, errNew)
	}
}

func TestClassBalancedWeightFavorsMinority(t *testing.T) {
	r := newTestRBM(t, 4, 3, 2)
	// Feed a 9:1 imbalanced label stream into the count tracker.
	for i := 0; i < 200; i++ {
		y := 0
		if i%10 == 0 {
			y = 1
		}
		r.observeClass(y)
	}
	wMaj := r.classWeight(0)
	wMin := r.classWeight(1)
	if wMin <= wMaj {
		t.Fatalf("minority weight %v should exceed majority weight %v", wMin, wMaj)
	}
}

func TestEnergyMatchesDefinition(t *testing.T) {
	r := newTestRBM(t, 2, 2, 2)
	// Zero states must have zero interaction terms: energy equals negated
	// bias dot products = 0 for zero vectors.
	zero2 := []float64{0, 0}
	if e := r.Energy(zero2, zero2, zero2); e != 0 {
		t.Fatalf("energy of zero state should be 0, got %v", e)
	}
	v := []float64{1, 0}
	h := []float64{0, 1}
	z := []float64{1, 0}
	H, Z := r.cfg.Hidden, r.cfg.Classes
	want := -(r.a[0] + r.b[1] + r.c[0] + r.w[0*H+1] + r.u[1*Z+0])
	if e := r.Energy(v, h, z); math.Abs(e-want) > 1e-12 {
		t.Fatalf("energy = %v, want %v", e, want)
	}
}

func TestClassScoresLearnLabels(t *testing.T) {
	r := newTestRBM(t, 6, 8, 2)
	rng := rand.New(rand.NewSource(3))
	for epoch := 0; epoch < 150; epoch++ {
		xs := make([][]float64, 32)
		ys := make([]int, 32)
		for i := range xs {
			y := rng.Intn(2)
			x := make([]float64, 6)
			for j := range x {
				base := 0.15
				if y == 1 {
					base = 0.85
				}
				x[j] = clamp01(base + 0.05*rng.NormFloat64())
			}
			xs[i], ys[i] = x, y
		}
		r.TrainBatch(xs, ys)
	}
	x0 := []float64{0.15, 0.15, 0.15, 0.15, 0.15, 0.15}
	x1 := []float64{0.85, 0.85, 0.85, 0.85, 0.85, 0.85}
	s0 := r.ClassScores(x0)
	s1 := r.ClassScores(x1)
	if s0[0] <= s0[1] {
		t.Errorf("class 0 prototype scored %v, want class 0 to win", s0)
	}
	if s1[1] <= s1[0] {
		t.Errorf("class 1 prototype scored %v, want class 1 to win", s1)
	}
}

func TestClassScoresIntoAllocationFreeAndMatchesWrapper(t *testing.T) {
	r := newTestRBM(t, 6, 8, 3)
	x := []float64{0.1, 0.9, 0.3, 0.7, 0.5, 0.2}
	dst := make([]float64, 3)
	if allocs := testing.AllocsPerRun(100, func() { r.ClassScoresInto(x, dst) }); allocs != 0 {
		t.Fatalf("ClassScoresInto allocates %.1f per call, want 0", allocs)
	}
	want := r.ClassScores(x)
	r.ClassScoresInto(x, dst)
	for k := range dst {
		if math.Float64bits(dst[k]) != math.Float64bits(want[k]) {
			t.Fatalf("class %d: ClassScoresInto %v vs ClassScores %v", k, dst[k], want[k])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ClassScoresInto should panic on a wrong-length dst")
		}
	}()
	r.ClassScoresInto(x, make([]float64, 2))
}

func TestReconstructionErrorNonNegativeProperty(t *testing.T) {
	r := newTestRBM(t, 5, 4, 3)
	f := func(raw [5]float64, yRaw uint8) bool {
		x := make([]float64, 5)
		for i, v := range raw {
			x[i] = clamp01(math.Abs(math.Mod(v, 1)))
		}
		y := int(yRaw) % 3
		e := r.ReconstructionError(x, y)
		return e >= 0 && !math.IsNaN(e) && !math.IsInf(e, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainBatchEmptyIsNoop(t *testing.T) {
	r := newTestRBM(t, 4, 3, 2)
	if got := r.TrainBatch(nil, nil); got != 0 {
		t.Fatalf("empty batch should return 0 error, got %v", got)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
