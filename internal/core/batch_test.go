package core

import (
	"testing"

	"rbmim/internal/detectors"
	"rbmim/internal/stream"
	"rbmim/internal/synth"
)

// driftObservations pre-draws a drifting stream so the sequential and
// batched detectors consume the exact same instances.
func driftObservations(t *testing.T, n int) []detectors.Observation {
	t.Helper()
	before, err := synth.NewRBF(synth.Config{Features: 10, Classes: 4, Seed: 5}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	after, err := synth.NewRBF(synth.Config{Features: 10, Classes: 4, Seed: 99}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.NewDriftStream(before, after, stream.Sudden, n/2, 0, 1)
	obs := make([]detectors.Observation, n)
	for i := range obs {
		in := s.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	return obs
}

// TestUpdateBatchMatchesSequential is the core batched-path contract: for
// every chunking, UpdateBatch must emit the exact per-observation states of
// the sequential Update loop, and the RBM must end in the same weights (same
// CD-k randomness consumed in the same order).
func TestUpdateBatchMatchesSequential(t *testing.T) {
	const n = 20000
	obs := driftObservations(t, n)
	for _, chunk := range []int{1, 7, 50, 256, 1000} {
		seq, err := NewDetector(testConfig(10, 4))
		if err != nil {
			t.Fatal(err)
		}
		bat, err := NewDetector(testConfig(10, 4))
		if err != nil {
			t.Fatal(err)
		}
		want := make([]detectors.State, n)
		for i := range obs {
			want[i] = seq.Update(obs[i])
		}
		got := make([]detectors.State, n)
		for start := 0; start < n; start += chunk {
			end := start + chunk
			if end > n {
				end = n
			}
			bat.UpdateBatch(obs[start:end], got[start:end])
		}
		drifts := 0
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk=%d: state[%d] = %v batched, %v sequential", chunk, i, got[i], want[i])
			}
			if want[i] == detectors.Drift {
				drifts++
			}
		}
		if drifts == 0 {
			t.Fatal("comparison stream produced no drift; the test is vacuous")
		}
		seqErr, batErr := seq.LastErrors(), bat.LastErrors()
		for k := range seqErr {
			if seqErr[k] != batErr[k] {
				t.Fatalf("chunk=%d: class %d reconstruction error %v batched vs %v sequential", chunk, k, batErr[k], seqErr[k])
			}
		}
	}
}

// TestUpdateBatchDriftClassesSurviveBlock checks the documented
// BatchDetector attribution semantics: a drift signalled by a mini-batch in
// the middle of a block must still be attributed after UpdateBatch returns,
// even when later mini-batches in the same block are quiet.
func TestUpdateBatchDriftClassesSurviveBlock(t *testing.T) {
	const n = 24000
	gen, err := synth.NewRBF(synth.Config{Features: 10, Classes: 5, Seed: 6}, 3, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.NewLocalDriftInjector(gen, []int{3}, stream.Sudden, n/2, 0, 2)
	obs := make([]detectors.Observation, n)
	for i := range obs {
		in := s.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	d, err := NewDetector(testConfig(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Blocks of 1000 span 20 mini-batches of 50, so a drifting batch is
	// almost always followed by quiet ones inside the same block.
	const block = 1000
	states := make([]detectors.State, block)
	foundOnClass := false
	for start := 0; start < n; start += block {
		d.UpdateBatch(obs[start:start+block], states)
		for i, st := range states {
			if st != detectors.Drift || start+i < n/2 {
				continue
			}
			for _, c := range d.DriftClasses() {
				if c == 3 {
					foundOnClass = true
				}
			}
		}
	}
	if !foundOnClass {
		t.Fatal("mid-block drift on class 3 lost its attribution after UpdateBatch")
	}
}

// TestTrainBatchUnscoredMatchesTrainBatch verifies the amortization claim:
// skipping the scoring pass must leave the weights bit-identical.
func TestTrainBatchUnscoredMatchesTrainBatch(t *testing.T) {
	build := func() *RBM {
		r, err := NewRBM(RBMConfig{Visible: 8, Hidden: 16, Classes: 3, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := build(), build()
	gen, err := synth.NewRBF(synth.Config{Features: 8, Classes: 3, Seed: 2}, 3, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([][]float64, 50)
	ys := make([]int, 50)
	for batch := 0; batch < 40; batch++ {
		for i := range xs {
			in := gen.Next()
			xs[i] = in.X
			ys[i] = in.Y
		}
		a.TrainBatch(xs, ys)
		b.TrainBatchUnscored(xs, ys)
	}
	x := xs[0]
	for y := 0; y < 3; y++ {
		if ea, eb := a.ReconstructionError(x, y), b.ReconstructionError(x, y); ea != eb {
			t.Fatalf("class %d: reconstruction error %v scored vs %v unscored", y, ea, eb)
		}
	}
}
