// Package core implements RBM-IM, the paper's contribution: a trainable
// concept drift detector for multi-class imbalanced data streams realized as
// a three-layer Restricted Boltzmann Machine (visible v, hidden h, class z —
// Eq. 6-12) trained by mini-batch Contrastive Divergence with a
// class-balanced, skew-insensitive loss (Eq. 13-21, using the effective
// number of samples of Cui et al. 2019). The detector tracks the
// reconstruction error of every class independently (Eq. 22-27), fits
// incremental linear trends of that error inside a self-adaptive sliding
// window (Eq. 28-37, window length chosen by ADWIN), and signals per-class
// drift when a Granger causality test on first differences rejects the
// hypothesis that the previous trend forecasts the current one.
package core

import (
	"fmt"
	"math"
	"math/rand"
)

// RBMConfig parameterizes the skew-insensitive RBM (Table II row "RBM-IM").
type RBMConfig struct {
	// Visible is the number of visible neurons V (= feature count).
	Visible int
	// Hidden is the number of hidden neurons H (Table II: {0.25V..V}).
	Hidden int
	// Classes is the number of class neurons Z.
	Classes int
	// LearningRate is eta in Eq. 17-21 (Table II: {0.01..0.07}).
	LearningRate float64
	// GibbsSteps is k of CD-k (Table II: {1..4}).
	GibbsSteps int
	// Momentum accelerates CD updates. Zero selects the default 0.5; pass a
	// negative value to disable momentum entirely.
	Momentum float64
	// Beta is the effective-number-of-samples parameter of the
	// class-balanced loss (Eq. 13); default 0.99.
	Beta float64
	// CountDecay exponentially decays per-class counts so evolving class
	// roles re-weight quickly; default 0.999.
	CountDecay float64
	// Seed drives weight initialization and Gibbs sampling.
	Seed int64
}

// Validate checks the configuration, filling defaults for zero values.
func (c *RBMConfig) Validate() error {
	if c.Visible < 1 {
		return fmt.Errorf("core: RBM needs at least 1 visible neuron, got %d", c.Visible)
	}
	if c.Classes < 2 {
		return fmt.Errorf("core: RBM needs at least 2 class neurons, got %d", c.Classes)
	}
	if c.Hidden <= 0 {
		c.Hidden = (c.Visible + 1) / 2
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	if c.GibbsSteps <= 0 {
		c.GibbsSteps = 1
	}
	switch {
	case c.Momentum == 0 || c.Momentum >= 1:
		c.Momentum = 0.5
	case c.Momentum < 0:
		c.Momentum = 0
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.99
	}
	if c.CountDecay <= 0 || c.CountDecay >= 1 {
		c.CountDecay = 0.999
	}
	return nil
}

// RBM is the three-layer network of Eq. 6-12: visible layer v (features),
// hidden layer h, and class layer z with softmax activation. Weights W
// connect v-h and U connects h-z.
//
// Both weight matrices are stored flat in row-major order — w[i*H+j] is
// W_ij, u[j*Z+k] is U_jk — so every inner loop of the Gibbs sampler and the
// gradient accumulation walks memory sequentially, and all scratch needed by
// TrainBatch / ReconstructionError lives on the struct: steady-state
// training and scoring perform zero heap allocations.
type RBM struct {
	cfg RBMConfig
	rng *rand.Rand

	w []float64 // flat [Visible][Hidden], row-major
	u []float64 // flat [Hidden][Classes], row-major
	a []float64 // visible biases
	b []float64 // hidden biases
	c []float64 // class biases

	// Momentum buffers (same layouts as w / u).
	dw []float64
	du []float64
	da []float64
	db []float64
	dc []float64

	// Class-balanced loss state: decayed per-class counts (Eq. 13).
	classCounts []float64

	// Gibbs / reconstruction scratch reused across calls.
	hProb, hState  []float64
	vProb          []float64
	zProb          []float64
	hRecon, vRecon []float64
	zRecon         []float64

	// TrainBatch gradient scratch (same layouts as the parameters).
	gw, gu     []float64
	ga, gb, gc []float64
	z0         []float64
	zLabel     []float64 // one-hot scratch for ReconstructionError
}

// NewRBM builds the network with small random weights.
func NewRBM(cfg RBMConfig) (*RBM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &RBM{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	V, H, Z := cfg.Visible, cfg.Hidden, cfg.Classes
	r.w = gaussianSlice(r.rng, V*H, 0.1)
	r.u = gaussianSlice(r.rng, H*Z, 0.1)
	r.a = make([]float64, V)
	r.b = make([]float64, H)
	r.c = make([]float64, Z)
	r.dw = make([]float64, V*H)
	r.du = make([]float64, H*Z)
	r.da = make([]float64, V)
	r.db = make([]float64, H)
	r.dc = make([]float64, Z)
	r.classCounts = make([]float64, Z)
	r.hProb = make([]float64, H)
	r.hState = make([]float64, H)
	r.vProb = make([]float64, V)
	r.zProb = make([]float64, Z)
	r.hRecon = make([]float64, H)
	r.vRecon = make([]float64, V)
	r.zRecon = make([]float64, Z)
	r.gw = make([]float64, V*H)
	r.gu = make([]float64, H*Z)
	r.ga = make([]float64, V)
	r.gb = make([]float64, H)
	r.gc = make([]float64, Z)
	r.z0 = make([]float64, Z)
	r.zLabel = make([]float64, Z)
	return r, nil
}

// Config returns the active configuration (with defaults resolved).
func (r *RBM) Config() RBMConfig { return r.cfg }

func gaussianSlice(rng *rand.Rand, n int, sd float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * sd
	}
	return s
}

// hiddenProbs computes P(h_j | v, z) of Eq. 10 into dst. The v-h pass
// accumulates row-by-row over w so memory access stays sequential; the z-h
// pass dots each contiguous u row against z.
func (r *RBM) hiddenProbs(v []float64, z []float64, dst []float64) {
	H, Z := r.cfg.Hidden, r.cfg.Classes
	copy(dst, r.b)
	for i := 0; i < r.cfg.Visible; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := r.w[i*H : i*H+H]
		for j, wij := range row {
			dst[j] += vi * wij
		}
	}
	for j := 0; j < H; j++ {
		s := dst[j]
		row := r.u[j*Z : j*Z+Z]
		for k, ujk := range row {
			s += z[k] * ujk
		}
		dst[j] = sigmoid(s)
	}
}

// visibleProbs computes P(v_i | h) of Eq. 11 into dst.
func (r *RBM) visibleProbs(h []float64, dst []float64) {
	H := r.cfg.Hidden
	for i := 0; i < r.cfg.Visible; i++ {
		s := r.a[i]
		row := r.w[i*H : i*H+H]
		for j, wij := range row {
			s += h[j] * wij
		}
		dst[i] = sigmoid(s)
	}
}

// classProbs computes the softmax P(z = 1_k | h) of Eq. 12 into dst,
// accumulating over the contiguous rows of u.
func (r *RBM) classProbs(h []float64, dst []float64) {
	Z := r.cfg.Classes
	copy(dst, r.c)
	for j := 0; j < r.cfg.Hidden; j++ {
		hj := h[j]
		if hj == 0 {
			continue
		}
		row := r.u[j*Z : j*Z+Z]
		for k, ujk := range row {
			dst[k] += hj * ujk
		}
	}
	maxS := math.Inf(-1)
	for _, s := range dst {
		if s > maxS {
			maxS = s
		}
	}
	sum := 0.0
	for k := range dst {
		dst[k] = math.Exp(dst[k] - maxS)
		sum += dst[k]
	}
	for k := range dst {
		dst[k] /= sum
	}
}

// sampleBinary draws Bernoulli states from probabilities.
func (r *RBM) sampleBinary(p []float64, dst []float64) {
	for i, pi := range p {
		if r.rng.Float64() < pi {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// classWeight returns the class-balanced loss weight of Eq. 13 for class m:
// (1 - beta) / (1 - beta^{n_m}), normalized so the average weight over
// observed classes is 1.
func (r *RBM) classWeight(m int) float64 {
	n := r.classCounts[m]
	if n < 1 {
		n = 1
	}
	w := (1 - r.cfg.Beta) / (1 - math.Pow(r.cfg.Beta, n))
	// Normalize by the mean weight across seen classes so the global
	// learning-rate scale is imbalance-invariant.
	sum, cnt := 0.0, 0
	for k := range r.classCounts {
		nk := r.classCounts[k]
		if nk < 1 {
			continue
		}
		sum += (1 - r.cfg.Beta) / (1 - math.Pow(r.cfg.Beta, nk))
		cnt++
	}
	if cnt == 0 || sum == 0 {
		return 1
	}
	return w / (sum / float64(cnt))
}

// observeClass updates the decayed class counts feeding the balanced loss.
func (r *RBM) observeClass(y int) {
	for k := range r.classCounts {
		r.classCounts[k] *= r.cfg.CountDecay
	}
	if y >= 0 && y < r.cfg.Classes {
		r.classCounts[y]++
	}
}

// TrainBatch performs one CD-k update (Eq. 15-21) over the mini-batch of
// scaled feature vectors xs with labels ys, applying the class-balanced
// gradient weighting. Inputs must be scaled to [0,1]. Returns the mean
// (weighted) reconstruction error of the batch. Steady-state calls perform
// no heap allocations: all gradient and Gibbs scratch is struct-owned.
func (r *RBM) TrainBatch(xs [][]float64, ys []int) float64 {
	return r.trainBatch(xs, ys, true)
}

// TrainBatchUnscored performs the identical CD-k update without computing
// the per-instance reconstruction errors behind TrainBatch's return value.
// The detector's batched path scores every instance against the *updated*
// weights afterwards (Eq. 27 is evaluated post-update), so TrainBatch's
// pre-update errors would be discarded; skipping them removes three of the
// roughly seven layer passes per instance. The scoring passes draw no
// randomness, so the resulting weights are bit-identical to TrainBatch's.
func (r *RBM) TrainBatchUnscored(xs [][]float64, ys []int) {
	r.trainBatch(xs, ys, false)
}

func (r *RBM) trainBatch(xs [][]float64, ys []int, score bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	V, H, Z := r.cfg.Visible, r.cfg.Hidden, r.cfg.Classes
	gw, gu := r.gw, r.gu
	ga, gb, gc := r.ga, r.gb, r.gc
	z0 := r.z0
	clear(gw)
	clear(gu)
	clear(ga)
	clear(gb)
	clear(gc)
	totalErr := 0.0

	for n := range xs {
		x, y := xs[n], ys[n]
		r.observeClass(y)
		weight := r.classWeight(y)
		for k := range z0 {
			z0[k] = 0
		}
		if y >= 0 && y < Z {
			z0[y] = 1
		}
		// Positive phase: h ~ P(h | v = x, z = 1_y) (Eq. 25).
		r.hiddenProbs(x, z0, r.hProb)
		copy(r.hState, r.hProb)
		r.sampleBinary(r.hProb, r.hState)

		// Gibbs chain (CD-k): alternate reconstruction of (v, z) and h.
		copy(r.vRecon, x)
		copy(r.zRecon, z0)
		hCur := r.hState
		for step := 0; step < r.cfg.GibbsSteps; step++ {
			r.visibleProbs(hCur, r.vRecon)
			r.classProbs(hCur, r.zRecon)
			r.hiddenProbs(r.vRecon, r.zRecon, r.hRecon)
			if step < r.cfg.GibbsSteps-1 {
				r.sampleBinary(r.hRecon, r.hRecon)
			}
			hCur = r.hRecon
		}

		// Accumulate weighted gradients: E_data[..] - E_recon[..].
		for i := 0; i < V; i++ {
			xi, vi := x[i], r.vRecon[i]
			ga[i] += weight * (xi - vi)
			wxi, wvi := weight*xi, weight*vi
			grow := gw[i*H : i*H+H]
			for j := range grow {
				grow[j] += wxi*r.hProb[j] - wvi*r.hRecon[j]
			}
		}
		for j := 0; j < H; j++ {
			hp, hr := r.hProb[j], r.hRecon[j]
			gb[j] += weight * (hp - hr)
			whp, whr := weight*hp, weight*hr
			grow := gu[j*Z : j*Z+Z]
			for k := range grow {
				grow[k] += whp*z0[k] - whr*r.zRecon[k]
			}
		}
		for k := 0; k < Z; k++ {
			gc[k] += weight * (z0[k] - r.zRecon[k])
		}
		if score {
			totalErr += r.reconErrorFrom(x, z0)
		}
	}

	// Apply momentum-smoothed updates (Eq. 17-21).
	inv := 1 / float64(len(xs))
	eta, mom := r.cfg.LearningRate, r.cfg.Momentum
	scale := eta * inv
	for i := 0; i < V; i++ {
		r.da[i] = mom*r.da[i] + scale*ga[i]
		r.a[i] += r.da[i]
	}
	for p := range r.w {
		r.dw[p] = mom*r.dw[p] + scale*gw[p]
		r.w[p] += r.dw[p]
	}
	for j := 0; j < H; j++ {
		r.db[j] = mom*r.db[j] + scale*gb[j]
		r.b[j] += r.db[j]
	}
	for p := range r.u {
		r.du[p] = mom*r.du[p] + scale*gu[p]
		r.u[p] += r.du[p]
	}
	for k := 0; k < Z; k++ {
		r.dc[k] = mom*r.dc[k] + scale*gc[k]
		r.c[k] += r.dc[k]
	}
	return totalErr * inv
}

// reconErrorFrom computes R(S) of Eq. 26 for a single already-scaled
// instance: the root of the summed squared feature and class reconstruction
// gaps, using a deterministic (mean-field) hidden pass. The class block is
// weighted by V/Z so that it carries the same total weight as the feature
// block regardless of dimensionality — under Eq. 26's literal unweighted sum
// a label-association change (exactly what a local drift is) contributes
// only Z of V+Z terms and becomes invisible on wide streams (V = 80,
// Z = 5 would dilute it 16:1).
func (r *RBM) reconErrorFrom(x []float64, z []float64) float64 {
	r.hiddenProbs(x, z, r.hProb)
	r.visibleProbs(r.hProb, r.vProb)
	r.classProbs(r.hProb, r.zProb)
	sum := 0.0
	for i := range x {
		d := x[i] - r.vProb[i]
		sum += d * d
	}
	classWeight := float64(r.cfg.Visible) / float64(r.cfg.Classes)
	for k := range z {
		d := z[k] - r.zProb[k]
		sum += classWeight * d * d
	}
	return math.Sqrt(sum)
}

// ReconstructionError computes R(S_n) of Eq. 26 for a scaled instance with
// label y. Allocation-free: the one-hot class input is struct scratch.
func (r *RBM) ReconstructionError(x []float64, y int) float64 {
	z := r.zLabel
	for k := range z {
		z[k] = 0
	}
	if y >= 0 && y < r.cfg.Classes {
		z[y] = 1
	}
	return r.reconErrorFrom(x, z)
}

// ClassScores returns the class-layer softmax for a scaled instance using a
// neutral class input, i.e. the RBM's own class posterior; usable as a
// generative classifier and in tests.
func (r *RBM) ClassScores(x []float64) []float64 {
	z := make([]float64, r.cfg.Classes)
	for k := range z {
		z[k] = 1.0 / float64(r.cfg.Classes)
	}
	r.hiddenProbs(x, z, r.hProb)
	out := make([]float64, r.cfg.Classes)
	r.classProbs(r.hProb, out)
	return out
}

// ClassCounts exposes the decayed class counts (diagnostics and tests).
func (r *RBM) ClassCounts() []float64 {
	return append([]float64(nil), r.classCounts...)
}

// Energy computes E(v, h, z) of Eq. 8 for explicit layer states.
func (r *RBM) Energy(v, h, z []float64) float64 {
	H, Z := r.cfg.Hidden, r.cfg.Classes
	e := 0.0
	for i := range v {
		e -= v[i] * r.a[i]
	}
	for j := range h {
		e -= h[j] * r.b[j]
	}
	for k := range z {
		e -= z[k] * r.c[k]
	}
	for i := range v {
		for j := range h {
			e -= v[i] * h[j] * r.w[i*H+j]
		}
	}
	for j := range h {
		for k := range z {
			e -= h[j] * z[k] * r.u[j*Z+k]
		}
	}
	return e
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}
