// Package core implements RBM-IM, the paper's contribution: a trainable
// concept drift detector for multi-class imbalanced data streams realized as
// a three-layer Restricted Boltzmann Machine (visible v, hidden h, class z —
// Eq. 6-12) trained by mini-batch Contrastive Divergence with a
// class-balanced, skew-insensitive loss (Eq. 13-21, using the effective
// number of samples of Cui et al. 2019). The detector tracks the
// reconstruction error of every class independently (Eq. 22-27), fits
// incremental linear trends of that error inside a self-adaptive sliding
// window (Eq. 28-37, window length chosen by ADWIN), and signals per-class
// drift when a Granger causality test on first differences rejects the
// hypothesis that the previous trend forecasts the current one.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"rbmim/internal/kernels"
)

// RBMConfig parameterizes the skew-insensitive RBM (Table II row "RBM-IM").
type RBMConfig struct {
	// Visible is the number of visible neurons V (= feature count).
	Visible int
	// Hidden is the number of hidden neurons H (Table II: {0.25V..V}).
	Hidden int
	// Classes is the number of class neurons Z.
	Classes int
	// LearningRate is eta in Eq. 17-21 (Table II: {0.01..0.07}).
	LearningRate float64
	// GibbsSteps is k of CD-k (Table II: {1..4}).
	GibbsSteps int
	// Momentum accelerates CD updates. Zero selects the default 0.5; pass a
	// negative value to disable momentum entirely.
	Momentum float64
	// Beta is the effective-number-of-samples parameter of the
	// class-balanced loss (Eq. 13); default 0.99.
	Beta float64
	// CountDecay exponentially decays per-class counts so evolving class
	// roles re-weight quickly; default 0.999.
	CountDecay float64
	// Seed drives weight initialization and Gibbs sampling.
	Seed int64
}

// Validate checks the configuration, filling defaults for zero values.
func (c *RBMConfig) Validate() error {
	if c.Visible < 1 {
		return fmt.Errorf("core: RBM needs at least 1 visible neuron, got %d", c.Visible)
	}
	if c.Classes < 2 {
		return fmt.Errorf("core: RBM needs at least 2 class neurons, got %d", c.Classes)
	}
	if c.Hidden <= 0 {
		c.Hidden = (c.Visible + 1) / 2
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	if c.GibbsSteps <= 0 {
		c.GibbsSteps = 1
	}
	switch {
	case c.Momentum == 0 || c.Momentum >= 1:
		c.Momentum = 0.5
	case c.Momentum < 0:
		c.Momentum = 0
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.99
	}
	if c.CountDecay <= 0 || c.CountDecay >= 1 {
		c.CountDecay = 0.999
	}
	return nil
}

// countRescaleFloor triggers the periodic re-materialization of the
// lazily-decayed class counts: when the global decay multiplier shrinks past
// it, the scaled counts are folded down and the multiplier resets to 1.
// 1e-12 keeps both the multiplier and its cached inverse far from the
// float64 range limits while making the O(Z) fold-down amortize over
// ~27k observations at the default decay.
const countRescaleFloor = 1e-12

// RBM is the three-layer network of Eq. 6-12: visible layer v (features),
// hidden layer h, and class layer z with softmax activation. Weights W
// connect v-h and U connects h-z.
//
// Both weight matrices are stored flat in row-major order — w[i*H+j] is
// W_ij, u[j*Z+k] is U_jk — and training is batch-major: TrainBatch packs the
// mini-batch into struct-owned [B×V]/[B×H]/[B×Z] matrices and runs every
// Gibbs layer pass as one blocked product over the whole batch
// (internal/kernels), instead of B per-instance matvecs. The kernels
// preserve each output element's exact accumulation order and CD-k
// randomness is pre-drawn in instance order, so the resulting weights are
// bit-identical to the per-instance loop (pinned at CD-1 and CD-4 by the
// regression tests in seqref_test.go). All scratch lives on the struct:
// steady-state training and scoring perform zero heap allocations.
type RBM struct {
	cfg RBMConfig
	rng *rand.Rand
	// src is the counted source behind rng: it passes every value through
	// unchanged (so all pinned randomness is untouched) while tracking how
	// many raw draws have been consumed since the seed. That count is the
	// RBM's entire RNG state for checkpointing — a restore re-seeds and
	// replays the source forward (see state.go).
	src *countedSource

	w []float64 // flat [Visible][Hidden], row-major
	u []float64 // flat [Hidden][Classes], row-major
	a []float64 // visible biases
	b []float64 // hidden biases
	c []float64 // class biases

	// Per-batch transposes of w and u (wT is [Hidden][Visible], uT is
	// [Classes][Hidden]). The Gibbs chain's h→v and z→h passes run as
	// zero-skipping MatMul against these instead of MatMulT against w/u:
	// the chain's hidden input is always a sampled {0,1} state and its
	// class input starts one-hot, so the row-level skip halves the h→v
	// work and reduces the z→h pass to one row-add per instance. The
	// transpose costs O(VH + HZ) once per mini-batch.
	wT []float64
	uT []float64
	// wuStale marks wT/uT as out of date (set by the weight update, cleared
	// by ensureTransposed).
	wuStale bool

	// Momentum buffers (same layouts as w / u).
	dw []float64
	du []float64
	da []float64
	db []float64
	dc []float64

	// Class-balanced loss state (Eq. 13): lazily-decayed per-class counts.
	// The true count of class k is classCounts[k] * countScale; observeClass
	// multiplies countScale by the decay once (O(1)) instead of walking all
	// Z counts, and adds countGain (= 1/countScale, maintained incrementally)
	// for the observed class. countScale is folded back into the counts
	// whenever it passes countRescaleFloor.
	classCounts []float64
	countScale  float64
	countGain   float64

	// Per-batch class-weight table: wTab[k] is the normalized Eq. 13 weight
	// shared by every instance of class k in the current mini-batch, wVec its
	// per-instance expansion.
	wTab []float64
	wVec []float64

	// Single-instance scoring scratch (ReconstructionError, ClassScores).
	hProb  []float64
	vProb  []float64
	zProb  []float64
	zLabel []float64 // class-input scratch (one-hot / uniform)

	// TrainBatch gradient scratch (same layouts as the parameters).
	gw, gu     []float64
	ga, gb, gc []float64

	// Batch-major matrices, grown once to the largest mini-batch seen. The
	// inputs, one-hot labels and pre-drawn CD-k uniforms hold the whole
	// batch (B rows); the Gibbs-chain activations only ever hold one
	// trainTile-row tile — the chain runs tile by tile so its working set
	// stays cache-resident at large B (tiling is invisible to the results:
	// instances never interact inside a pass, and the gradient tiles
	// accumulate in ascending instance order).
	batchCap   int
	xMat       []float64 // [B×V]
	z0Mat      []float64 // [B×Z]
	hPos       []float64 // [tile×H] P(h | v=x, z=1_y)
	hSt        []float64 // [tile×H] sampled positive states
	hRec       []float64 // [tile×H] chain hidden layer
	vRec       []float64 // [tile×V] chain visible layer
	zRec       []float64 // [tile×Z] chain class layer
	uRand      []float64 // [B×GibbsSteps×H] pre-drawn uniforms
	trainSteps int       // GibbsSteps snapshot backing uRand's layout
}

// NewRBM builds the network with small random weights.
func NewRBM(cfg RBMConfig) (*RBM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := newCountedSource(cfg.Seed)
	r := &RBM{cfg: cfg, src: src, rng: rand.New(src)}
	V, H, Z := cfg.Visible, cfg.Hidden, cfg.Classes
	r.w = gaussianSlice(r.rng, V*H, 0.1)
	r.u = gaussianSlice(r.rng, H*Z, 0.1)
	r.wT = make([]float64, V*H)
	r.uT = make([]float64, H*Z)
	r.wuStale = true
	r.a = make([]float64, V)
	r.b = make([]float64, H)
	r.c = make([]float64, Z)
	r.dw = make([]float64, V*H)
	r.du = make([]float64, H*Z)
	r.da = make([]float64, V)
	r.db = make([]float64, H)
	r.dc = make([]float64, Z)
	r.classCounts = make([]float64, Z)
	r.countScale = 1
	r.countGain = 1
	r.wTab = make([]float64, Z)
	r.hProb = make([]float64, H)
	r.vProb = make([]float64, V)
	r.zProb = make([]float64, Z)
	r.zLabel = make([]float64, Z)
	r.gw = make([]float64, V*H)
	r.gu = make([]float64, H*Z)
	r.ga = make([]float64, V)
	r.gb = make([]float64, H)
	r.gc = make([]float64, Z)
	r.trainSteps = cfg.GibbsSteps
	return r, nil
}

// Config returns the active configuration (with defaults resolved).
func (r *RBM) Config() RBMConfig { return r.cfg }

func gaussianSlice(rng *rand.Rand, n int, sd float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * sd
	}
	return s
}

// trainTile is the number of instances the Gibbs chain and the gradient
// pass move through the kernels at once. 64 keeps every activation tile
// (tile×H plus tile×V rows) within a few hundred kilobytes for the paper's
// stream widths, so each layer pass re-reads cache-resident tiles instead
// of streaming whole-batch matrices from L2/L3 at large block sizes.
const trainTile = 64

// ensureBatch grows the batch-major matrices to hold bn rows. Growth happens
// at most a handful of times (callers reuse a fixed mini-batch size), after
// which training is allocation-free.
func (r *RBM) ensureBatch(bn int) {
	if bn <= r.batchCap {
		return
	}
	V, H, Z := r.cfg.Visible, r.cfg.Hidden, r.cfg.Classes
	tile := bn
	if tile > trainTile {
		tile = trainTile
	}
	r.xMat = make([]float64, bn*V)
	r.z0Mat = make([]float64, bn*Z)
	r.hPos = make([]float64, tile*H)
	r.hSt = make([]float64, tile*H)
	r.hRec = make([]float64, tile*H)
	r.vRec = make([]float64, tile*V)
	r.zRec = make([]float64, tile*Z)
	r.uRand = make([]float64, bn*r.trainSteps*H)
	r.wVec = make([]float64, bn)
	r.batchCap = bn
}

// ensureTransposed refreshes wT and uT from the current w and u when a
// weight update left them stale — at most once per trainBatch or ScoreBatch
// call (the weights only change in trainBatch's final update step).
func (r *RBM) ensureTransposed() {
	if !r.wuStale {
		return
	}
	r.wuStale = false
	V, H, Z := r.cfg.Visible, r.cfg.Hidden, r.cfg.Classes
	for i := 0; i < V; i++ {
		row := r.w[i*H : i*H+H]
		for j, wij := range row {
			r.wT[j*V+i] = wij
		}
	}
	for j := 0; j < H; j++ {
		row := r.u[j*Z : j*Z+Z]
		for k, ujk := range row {
			r.uT[k*H+j] = ujk
		}
	}
}

// packBatch copies the mini-batch into the struct-owned input and one-hot
// label matrices. Out-of-range labels produce an all-zero class row, exactly
// like the one-hot scratch of the per-instance path.
func (r *RBM) packBatch(xs [][]float64, ys []int) (xMat, z0 []float64) {
	V, Z := r.cfg.Visible, r.cfg.Classes
	B := len(xs)
	r.ensureBatch(B)
	xMat = r.xMat[:B*V]
	z0 = r.z0Mat[:B*Z]
	for n, x := range xs {
		if len(x) != V {
			panic(fmt.Sprintf("core: instance has %d features, RBM configured for %d", len(x), V))
		}
		copy(xMat[n*V:n*V+V], x)
	}
	clear(z0)
	for n, y := range ys[:B] {
		if y >= 0 && y < Z {
			z0[n*Z+y] = 1
		}
	}
	return xMat, z0
}

// hiddenProbs computes P(h_j | v, z) of Eq. 10 into dst. The v-h pass
// accumulates row-by-row over w so memory access stays sequential; the z-h
// pass dots each contiguous u row against z. (Single-instance path, used by
// the scoring helpers; training runs the same passes batch-major through
// internal/kernels.)
func (r *RBM) hiddenProbs(v []float64, z []float64, dst []float64) {
	H, Z := r.cfg.Hidden, r.cfg.Classes
	copy(dst, r.b)
	for i := 0; i < r.cfg.Visible; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := r.w[i*H : i*H+H]
		for j, wij := range row {
			dst[j] += vi * wij
		}
	}
	for j := 0; j < H; j++ {
		s := dst[j]
		row := r.u[j*Z : j*Z+Z]
		for k, ujk := range row {
			s += z[k] * ujk
		}
		dst[j] = sigmoid(s)
	}
}

// visibleProbs computes P(v_i | h) of Eq. 11 into dst.
func (r *RBM) visibleProbs(h []float64, dst []float64) {
	H := r.cfg.Hidden
	for i := 0; i < r.cfg.Visible; i++ {
		s := r.a[i]
		row := r.w[i*H : i*H+H]
		for j, wij := range row {
			s += h[j] * wij
		}
		dst[i] = sigmoid(s)
	}
}

// classProbs computes the softmax P(z = 1_k | h) of Eq. 12 into dst,
// accumulating over the contiguous rows of u.
func (r *RBM) classProbs(h []float64, dst []float64) {
	Z := r.cfg.Classes
	copy(dst, r.c)
	for j := 0; j < r.cfg.Hidden; j++ {
		hj := h[j]
		if hj == 0 {
			continue
		}
		row := r.u[j*Z : j*Z+Z]
		for k, ujk := range row {
			dst[k] += hj * ujk
		}
	}
	kernels.Softmax(dst)
}

// sampleBinary draws Bernoulli states from probabilities, consuming one
// uniform per element from the RBM's generator. (Kept for the sequential
// reference path in tests; trainBatch pre-draws the identical uniforms via
// sampleBinaryPre.)
func (r *RBM) sampleBinary(p []float64, dst []float64) {
	for i, pi := range p {
		if r.rng.Float64() < pi {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// sampleBinaryPre draws Bernoulli states from probabilities using pre-drawn
// uniforms: dst[i] = 1 iff u[i] < p[i], the exact comparison sampleBinary
// performs against a fresh draw. The comparison is computed branchlessly
// from the sign of u-p (for finite operands u < p iff u-p is strictly
// negative: IEEE gradual underflow keeps u-p nonzero whenever u != p, and
// u == p yields +0.0) — the data-dependent branch would mispredict half the
// time on well-trained probabilities.
func sampleBinaryPre(u, p, dst []float64) {
	u = u[:len(p)]
	dst = dst[:len(p)]
	for i, pi := range p {
		dst[i] = float64(math.Float64bits(u[i]-pi) >> 63)
	}
}

// count returns the decayed observation count of class k (Eq. 13's n_k),
// materializing the lazy global decay multiplier.
func (r *RBM) count(k int) float64 { return r.classCounts[k] * r.countScale }

// classWeight returns the class-balanced loss weight of Eq. 13 for class m:
// (1 - beta) / (1 - beta^{n_m}), normalized so the average weight over
// observed classes is 1. TrainBatch computes the same table once per batch
// (computeBatchWeights); this per-class form serves diagnostics and tests.
func (r *RBM) classWeight(m int) float64 {
	n := r.count(m)
	if n < 1 {
		n = 1
	}
	w := (1 - r.cfg.Beta) / (1 - math.Pow(r.cfg.Beta, n))
	// Normalize by the mean weight across seen classes so the global
	// learning-rate scale is imbalance-invariant.
	sum, cnt := 0.0, 0
	for k := range r.classCounts {
		nk := r.count(k)
		if nk < 1 {
			continue
		}
		sum += (1 - r.cfg.Beta) / (1 - math.Pow(r.cfg.Beta, nk))
		cnt++
	}
	if cnt == 0 || sum == 0 {
		return 1
	}
	return w / (sum / float64(cnt))
}

// observeClass updates the decayed class counts feeding the balanced loss in
// O(1): the decay of all Z counts is a single multiply on the global scale,
// and the increment is pre-scaled by the cached inverse. The scale is folded
// back into the counts before it can underflow (or its inverse overflow).
func (r *RBM) observeClass(y int) {
	d := r.cfg.CountDecay
	r.countScale *= d
	r.countGain /= d
	if r.countScale < countRescaleFloor {
		for k := range r.classCounts {
			r.classCounts[k] *= r.countScale
		}
		r.countScale = 1
		r.countGain = 1
	}
	if y >= 0 && y < r.cfg.Classes {
		r.classCounts[y] += r.countGain
	}
}

// computeBatchWeights observes every label of the mini-batch and rebuilds
// the per-batch class-weight table (Eq. 13, normalized to mean 1 over seen
// classes — the same arithmetic as classWeight, factored so the O(Z·pow)
// normalization runs once per batch instead of once per instance). Every
// instance of class k in the batch shares wTab[k]; out-of-range labels get
// the neutral weight 1. See DESIGN.md for the exactness argument versus the
// per-instance weighting this replaces.
func (r *RBM) computeBatchWeights(ys []int) {
	for _, y := range ys {
		r.observeClass(y)
	}
	beta := r.cfg.Beta
	sum, cnt := 0.0, 0
	for k := range r.wTab {
		n := r.count(k)
		seen := n >= 1
		if n < 1 {
			n = 1
		}
		wk := (1 - beta) / (1 - math.Pow(beta, n))
		r.wTab[k] = wk
		if seen {
			sum += wk
			cnt++
		}
	}
	if cnt == 0 || sum == 0 {
		for k := range r.wTab {
			r.wTab[k] = 1
		}
	} else {
		mean := sum / float64(cnt)
		for k := range r.wTab {
			r.wTab[k] /= mean
		}
	}
	if len(r.wVec) < len(ys) {
		r.wVec = make([]float64, len(ys))
	}
	wVec := r.wVec[:len(ys)]
	for i, y := range ys {
		if y >= 0 && y < len(r.wTab) {
			wVec[i] = r.wTab[y]
		} else {
			wVec[i] = 1
		}
	}
}

// TrainBatch performs one CD-k update (Eq. 15-21) over the mini-batch of
// scaled feature vectors xs with labels ys, applying the class-balanced
// gradient weighting. Inputs must be scaled to [0,1]. Returns the mean
// reconstruction error of the batch against the pre-update weights.
// Steady-state calls perform no heap allocations: all matrices and gradient
// scratch are struct-owned.
func (r *RBM) TrainBatch(xs [][]float64, ys []int) float64 {
	return r.trainBatch(xs, ys, true)
}

// TrainBatchUnscored performs the identical CD-k update without computing
// the per-instance reconstruction errors behind TrainBatch's return value.
// The detector's batched path scores every instance against the *updated*
// weights afterwards (Eq. 27 is evaluated post-update), so TrainBatch's
// pre-update errors would be discarded; skipping them removes the three
// scoring layer passes. The scoring passes draw no randomness, so the
// resulting weights are bit-identical to TrainBatch's.
func (r *RBM) TrainBatchUnscored(xs [][]float64, ys []int) {
	r.trainBatch(xs, ys, false)
}

// trainBatch is the batch-major CD-k core: it packs the mini-batch into
// [B×V]/[B×H]/[B×Z] matrices and runs every Gibbs layer pass as one blocked
// kernel over the whole batch. The kernels preserve each element's exact
// accumulation order and the Bernoulli uniforms are pre-drawn in instance
// order (positive phase first, then each chain step, per instance — the
// order a per-instance loop consumes them), so the updated weights are
// bit-identical to sequential per-instance training; only the class-weight
// table (computed once per batch, see computeBatchWeights) deviates from the
// original per-instance weighting, within the tolerance documented in
// DESIGN.md.
func (r *RBM) trainBatch(xs [][]float64, ys []int, score bool) float64 {
	B := len(xs)
	if B == 0 {
		return 0
	}
	V, H, Z := r.cfg.Visible, r.cfg.Hidden, r.cfg.Classes
	xMat, z0 := r.packBatch(xs, ys)
	r.computeBatchWeights(ys[:B])
	r.ensureTransposed()

	// Pre-draw all CD-k randomness in the per-instance consumption order:
	// instance n's positive-phase draws occupy uRand[n*kH : n*kH+H], its
	// chain-step s draws the following H-wide windows.
	steps := r.cfg.GibbsSteps
	kH := steps * H
	ur := r.uRand[:B*kH]
	for i := range ur {
		ur[i] = r.rng.Float64()
	}

	// Gradient accumulators, filled tile by tile below.
	gw, gu := r.gw, r.gu
	ga, gb, gc := r.ga, r.gb, r.gc
	clear(gw)
	clear(gu)
	clear(ga)
	clear(gb)
	clear(gc)
	wVec := r.wVec[:B]
	totalErr := 0.0

	// The positive phase, Gibbs chain, gradient accumulation and optional
	// scoring run over trainTile-instance tiles: instances never interact
	// inside a layer pass and the gradient tiles land in ascending instance
	// order, so tiling leaves every result bit-identical while the
	// activation tiles stay cache-resident at large B.
	for t0 := 0; t0 < B; t0 += trainTile {
		t1 := t0 + trainTile
		if t1 > B {
			t1 = B
		}
		tb := t1 - t0
		xT := xMat[t0*V : t1*V]
		z0T := z0[t0*Z : t1*Z]
		wTile := wVec[t0:t1]

		// Positive phase: h ~ P(h | v = x, z = 1_y) (Eq. 25). The one-hot
		// class rows go through the transposed MatMul, whose zero-skip
		// reduces the z→h pass to one uT row-add per instance. The skip is
		// exact here (and in every chain pass below) because MatMul's
		// accumulators are seeded from the biases, which round-to-nearest
		// addition can never drive to -0.0 — so the skipped `s += ±0.0`
		// terms of the unskipped per-instance loops are no-ops (see the
		// MatMul docs; the bit-identity regression tests pin this end to
		// end).
		hPos := r.hPos[:tb*H]
		kernels.Broadcast(hPos, r.b, tb)
		kernels.MatMul(hPos, xT, r.w, tb, V, H)
		kernels.MatMul(hPos, z0T, r.uT, tb, Z, H)
		kernels.Sigmoid(hPos)
		hSt := r.hSt[:tb*H]
		for n := 0; n < tb; n++ {
			off := (t0 + n) * kH
			sampleBinaryPre(ur[off:off+H], hPos[n*H:n*H+H], hSt[n*H:n*H+H])
		}

		// Gibbs chain (CD-k): alternate reconstruction of (v, z) and h, one
		// blocked layer pass per step over the tile. hCur is always a
		// sampled {0,1} state, so the transposed h→v pass skips roughly
		// half its rows.
		vRec := r.vRec[:tb*V]
		zRec := r.zRec[:tb*Z]
		hRec := r.hRec[:tb*H]
		hCur := hSt
		for step := 0; step < steps; step++ {
			kernels.Broadcast(vRec, r.a, tb)
			kernels.MatMul(vRec, hCur, r.wT, tb, H, V)
			kernels.Sigmoid(vRec)
			kernels.Broadcast(zRec, r.c, tb)
			kernels.MatMul(zRec, hCur, r.u, tb, H, Z)
			for n := 0; n < tb; n++ {
				kernels.Softmax(zRec[n*Z : n*Z+Z])
			}
			kernels.Broadcast(hRec, r.b, tb)
			kernels.MatMul(hRec, vRec, r.w, tb, V, H)
			kernels.MatMul(hRec, zRec, r.uT, tb, Z, H)
			kernels.Sigmoid(hRec)
			if step < steps-1 {
				for n := 0; n < tb; n++ {
					off := (t0+n)*kH + (step+1)*H
					sampleBinaryPre(ur[off:off+H], hRec[n*H:n*H+H], hRec[n*H:n*H+H])
				}
			}
			hCur = hRec
		}

		// Accumulate weighted gradients, E_data[..] - E_recon[..]: the bias
		// gradients instance by instance, the two weight matrices as
		// blocked rank-tb updates.
		for n := 0; n < tb; n++ {
			wn := wTile[n]
			kernels.AxpyDiff(wn, xT[n*V:n*V+V], vRec[n*V:n*V+V], ga)
			kernels.AxpyDiff(wn, hPos[n*H:n*H+H], hRec[n*H:n*H+H], gb)
			kernels.AxpyDiff(wn, z0T[n*Z:n*Z+Z], zRec[n*Z:n*Z+Z], gc)
		}
		kernels.AccumRankK(gw, wTile, xT, vRec, hPos, hRec, tb, V, H)
		kernels.AccumRankK(gu, wTile, hPos, hRec, z0T, zRec, tb, H, Z)

		// Optional pre-update scoring (Eq. 26), before the updates are
		// applied: hPos already holds hiddenProbs(x, z0), so only the
		// visible and class reconstructions remain; vRec/zRec are dead
		// after the gradient pass and are reused.
		if score {
			kernels.Broadcast(vRec, r.a, tb)
			kernels.MatMulT(vRec, hPos, r.w, tb, H, V)
			kernels.Sigmoid(vRec)
			kernels.Broadcast(zRec, r.c, tb)
			kernels.MatMul(zRec, hPos, r.u, tb, H, Z)
			for n := 0; n < tb; n++ {
				kernels.Softmax(zRec[n*Z : n*Z+Z])
			}
			for n := 0; n < tb; n++ {
				totalErr += reconErrorRow(xT[n*V:n*V+V], vRec[n*V:n*V+V], z0T[n*Z:n*Z+Z], zRec[n*Z:n*Z+Z], V, Z)
			}
		}
	}

	// Apply momentum-smoothed updates (Eq. 17-21).
	inv := 1 / float64(B)
	scale := r.cfg.LearningRate * inv
	mom := r.cfg.Momentum
	kernels.AddScaled(r.da, mom, r.da, scale, ga)
	kernels.Axpy(1, r.da, r.a)
	kernels.AddScaled(r.dw, mom, r.dw, scale, gw)
	kernels.Axpy(1, r.dw, r.w)
	kernels.AddScaled(r.db, mom, r.db, scale, gb)
	kernels.Axpy(1, r.db, r.b)
	kernels.AddScaled(r.du, mom, r.du, scale, gu)
	kernels.Axpy(1, r.du, r.u)
	kernels.AddScaled(r.dc, mom, r.dc, scale, gc)
	kernels.Axpy(1, r.dc, r.c)
	r.wuStale = true
	return totalErr * inv
}

// ScoreBatch computes R(S) of Eq. 26 for every instance of the mini-batch
// into errs (len(errs) >= len(xs)), running the three scoring layer passes
// as blocked kernels over the whole batch. Each error is bit-identical to
// ReconstructionError(xs[i], ys[i]) — the kernels preserve the
// single-instance accumulation order — at roughly a third of the
// per-instance cost on detector-sized batches. Allocation-free in steady
// state; shares the training matrices, so do not interleave with a
// concurrent TrainBatch on the same RBM (the type is single-goroutine like
// the rest of the detector).
func (r *RBM) ScoreBatch(xs [][]float64, ys []int, errs []float64) {
	B := len(xs)
	if B == 0 {
		return
	}
	V, H, Z := r.cfg.Visible, r.cfg.Hidden, r.cfg.Classes
	xMat, z0 := r.packBatch(xs, ys)
	r.ensureTransposed()
	for t0 := 0; t0 < B; t0 += trainTile {
		t1 := t0 + trainTile
		if t1 > B {
			t1 = B
		}
		tb := t1 - t0
		xT := xMat[t0*V : t1*V]
		z0T := z0[t0*Z : t1*Z]
		hPos := r.hPos[:tb*H]
		kernels.Broadcast(hPos, r.b, tb)
		kernels.MatMul(hPos, xT, r.w, tb, V, H)
		kernels.MatMul(hPos, z0T, r.uT, tb, Z, H)
		kernels.Sigmoid(hPos)
		vRec := r.vRec[:tb*V]
		kernels.Broadcast(vRec, r.a, tb)
		kernels.MatMulT(vRec, hPos, r.w, tb, H, V)
		kernels.Sigmoid(vRec)
		zRec := r.zRec[:tb*Z]
		kernels.Broadcast(zRec, r.c, tb)
		kernels.MatMul(zRec, hPos, r.u, tb, H, Z)
		for n := 0; n < tb; n++ {
			kernels.Softmax(zRec[n*Z : n*Z+Z])
		}
		for n := 0; n < tb; n++ {
			errs[t0+n] = reconErrorRow(xT[n*V:n*V+V], vRec[n*V:n*V+V], z0T[n*Z:n*Z+Z], zRec[n*Z:n*Z+Z], V, Z)
		}
	}
}

// reconErrorRow sums one instance's squared feature and class reconstruction
// gaps (Eq. 26) in the exact order of the single-instance scorer: features
// first, then the V/Z-weighted class block.
func reconErrorRow(x, vp, z, zp []float64, V, Z int) float64 {
	sum := 0.0
	vp = vp[:len(x)]
	for i := range x {
		d := x[i] - vp[i]
		sum += d * d
	}
	classWeight := float64(V) / float64(Z)
	zp = zp[:len(z)]
	for k := range z {
		d := z[k] - zp[k]
		sum += classWeight * d * d
	}
	return math.Sqrt(sum)
}

// reconErrorFrom computes R(S) of Eq. 26 for a single already-scaled
// instance: the root of the summed squared feature and class reconstruction
// gaps, using a deterministic (mean-field) hidden pass. The class block is
// weighted by V/Z so that it carries the same total weight as the feature
// block regardless of dimensionality — under Eq. 26's literal unweighted sum
// a label-association change (exactly what a local drift is) contributes
// only Z of V+Z terms and becomes invisible on wide streams (V = 80,
// Z = 5 would dilute it 16:1).
func (r *RBM) reconErrorFrom(x []float64, z []float64) float64 {
	r.hiddenProbs(x, z, r.hProb)
	r.visibleProbs(r.hProb, r.vProb)
	r.classProbs(r.hProb, r.zProb)
	return reconErrorRow(x, r.vProb, z, r.zProb, r.cfg.Visible, r.cfg.Classes)
}

// ReconstructionError computes R(S_n) of Eq. 26 for a scaled instance with
// label y. Allocation-free: the one-hot class input is struct scratch.
func (r *RBM) ReconstructionError(x []float64, y int) float64 {
	z := r.zLabel
	for k := range z {
		z[k] = 0
	}
	if y >= 0 && y < r.cfg.Classes {
		z[y] = 1
	}
	return r.reconErrorFrom(x, z)
}

// ClassScoresInto computes the class-layer softmax for a scaled instance
// using a neutral class input — the RBM's own class posterior — into dst
// (len(dst) must be Classes). Allocation-free: the hidden pass and the
// neutral class input use struct scratch.
func (r *RBM) ClassScoresInto(x []float64, dst []float64) {
	if len(dst) != r.cfg.Classes {
		panic(fmt.Sprintf("core: ClassScoresInto dst has %d entries, RBM has %d classes", len(dst), r.cfg.Classes))
	}
	z := r.zLabel
	for k := range z {
		z[k] = 1.0 / float64(r.cfg.Classes)
	}
	r.hiddenProbs(x, z, r.hProb)
	r.classProbs(r.hProb, dst)
}

// ClassScores is the allocating convenience wrapper around ClassScoresInto;
// usable as a generative classifier and in tests.
func (r *RBM) ClassScores(x []float64) []float64 {
	out := make([]float64, r.cfg.Classes)
	r.ClassScoresInto(x, out)
	return out
}

// ClassCounts exposes the decayed class counts (diagnostics and tests),
// materializing the lazy decay multiplier.
func (r *RBM) ClassCounts() []float64 {
	out := make([]float64, len(r.classCounts))
	for k := range out {
		out[k] = r.count(k)
	}
	return out
}

// Energy computes E(v, h, z) of Eq. 8 for explicit layer states: the
// negated bias terms plus the two interaction blocks, each a dot of a layer
// state with a contiguous weight row.
func (r *RBM) Energy(v, h, z []float64) float64 {
	H, Z := r.cfg.Hidden, r.cfg.Classes
	e := -kernels.Dot(v, r.a) - kernels.Dot(h, r.b) - kernels.Dot(z, r.c)
	for i := range v {
		if v[i] == 0 {
			continue
		}
		e -= v[i] * kernels.Dot(h, r.w[i*H:i*H+H])
	}
	for j := range h {
		if h[j] == 0 {
			continue
		}
		e -= h[j] * kernels.Dot(z, r.u[j*Z:j*Z+Z])
	}
	return e
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}
