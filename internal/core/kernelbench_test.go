package core

import (
	"fmt"
	"testing"
)

// BenchmarkTrainBatchKernels measures one CD-1 update per observation for
// the two training paths at the shapes the kernel refactor targets
// (V ∈ {20, 80}, H = 2V, Z = 5, batch ∈ {32, 256}):
//
//   - "batch": the production batch-major path (blocked kernels, per-batch
//     weight table).
//   - "seq": the frozen pre-kernel reference — per-instance matvec layer
//     passes with the pre-PR per-instance class weighting.
//
// ns/op is per mini-batch; the ns/obs metric is comparable across paths and
// sizes and is the number BENCH_core.json tracks (scripts/benchguard fails
// CI when the batch path regresses against the committed baseline).
func BenchmarkTrainBatchKernels(b *testing.B) {
	const Z = 5
	for _, V := range []int{20, 80} {
		for _, bn := range []int{32, 256} {
			draw := seqBatchStream(int64(V*1000+bn), V, Z)
			xs, ys := draw(bn)
			newRBM := func(b *testing.B) *RBM {
				r, err := NewRBM(RBMConfig{
					Visible: V, Hidden: 2 * V, Classes: Z,
					LearningRate: 0.5, Momentum: 0.9, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				return r
			}
			perObs := func(b *testing.B) {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(bn), "ns/obs")
			}
			b.Run(fmt.Sprintf("V%d/B%d/batch", V, bn), func(b *testing.B) {
				r := newRBM(b)
				r.TrainBatchUnscored(xs, ys) // grow the matrices outside the timing
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.TrainBatchUnscored(xs, ys)
				}
				perObs(b)
			})
			b.Run(fmt.Sprintf("V%d/B%d/seq", V, bn), func(b *testing.B) {
				r := newRBM(b)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					seqTrainBatch(r, xs, ys, true, false)
				}
				perObs(b)
			})
		}
	}
}

// BenchmarkScoreBatch measures the batched Eq. 26 scorer against the
// per-instance ReconstructionError loop it replaced in the detector. The
// reference sub-benchmark is named "seq" so scripts/benchguard pairs it
// with "batch" for the speedup floor.
func BenchmarkScoreBatch(b *testing.B) {
	const V, H, Z, bn = 20, 40, 5, 50
	draw := seqBatchStream(6, V, Z)
	xs, ys := draw(bn)
	errs := make([]float64, bn)
	newRBM := func(b *testing.B) *RBM {
		r, err := NewRBM(RBMConfig{Visible: V, Hidden: H, Classes: Z, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		r.TrainBatchUnscored(xs, ys)
		return r
	}
	perObs := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(bn), "ns/obs")
	}
	b.Run("batch", func(b *testing.B) {
		r := newRBM(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.ScoreBatch(xs, ys, errs)
		}
		perObs(b)
	})
	b.Run("seq", func(b *testing.B) {
		r := newRBM(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for n := range xs {
				errs[n] = r.ReconstructionError(xs[n], ys[n])
			}
		}
		perObs(b)
	})
}
