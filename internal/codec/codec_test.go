package codec

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	w := NewBuffer(nil)
	w.U8(7)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-42)
	w.Int(-1)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Inf(1))
	w.F64(math.Copysign(0, -1))
	w.F64s([]float64{1.5, -2.5, 0})
	w.Ints([]int{3, -4, 5})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Int(); got != -1 {
		t.Fatalf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round-trip failed")
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, 1) {
		t.Fatalf("F64 inf = %v", got)
	}
	if got := r.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("F64 -0 bits = %x", math.Float64bits(got))
	}
	fs := r.F64s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.5 || fs[2] != 0 {
		t.Fatalf("F64s = %v", fs)
	}
	is := r.Ints()
	if len(is) != 3 || is[0] != 3 || is[1] != -4 || is[2] != 5 {
		t.Fatalf("Ints = %v", is)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestReaderTruncationIsSticky(t *testing.T) {
	w := NewBuffer(nil)
	w.U64(1)
	r := NewReader(w.Bytes()[:5])
	_ = r.U64()
	if r.Err() == nil {
		t.Fatal("truncated U64 did not error")
	}
	// Sticky: further reads stay zero-valued and keep the first error.
	if got := r.U32(); got != 0 {
		t.Fatalf("read after error = %d", got)
	}
	if !errors.Is(r.Err(), ErrInvalid) {
		t.Fatalf("error %v is not ErrInvalid", r.Err())
	}
}

func TestReaderCountBound(t *testing.T) {
	// A declared count far beyond the remaining bytes must error without
	// allocating the declared size.
	w := NewBuffer(nil)
	w.U32(1 << 30)
	r := NewReader(w.Bytes())
	if got := r.F64s(); got != nil || r.Err() == nil {
		t.Fatalf("oversized count accepted: %v / %v", got, r.Err())
	}
}

func TestReaderDoneRejectsTrailingBytes(t *testing.T) {
	w := NewBuffer(nil)
	w.U8(1)
	w.U8(2)
	r := NewReader(w.Bytes())
	r.U8()
	if err := r.Done(); err == nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
}

func TestMarkPatchLen(t *testing.T) {
	w := NewBuffer(nil)
	w.U8(9)
	mark := w.Mark()
	w.F64(1.0)
	w.F64(2.0)
	w.PatchLen(mark)
	r := NewReader(w.Bytes())
	if got := r.U8(); got != 9 {
		t.Fatalf("prefix = %d", got)
	}
	blob := r.Blob()
	if len(blob) != 16 {
		t.Fatalf("blob length = %d", len(blob))
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	frame := AppendFrame(nil, KindRBM, payload)
	kind, got, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindRBM || !bytes.Equal(got, payload) {
		t.Fatalf("kind %d payload %v", kind, got)
	}
	if _, err := ExpectFrame(frame, KindDDM); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	payload := []byte("detector state bytes")
	frame := AppendFrame(nil, KindRBMIM, payload)
	// Every single-byte flip anywhere in the frame must be rejected.
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, err := ParseFrame(bad); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		} else if !errors.Is(err, ErrInvalid) {
			t.Fatalf("flip at byte %d: error %v is not ErrInvalid", i, err)
		}
	}
	// Every truncation must be rejected.
	for n := 0; n < len(frame); n++ {
		if _, _, err := ParseFrame(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage must be rejected (a frame is exactly one frame).
	if _, _, err := ParseFrame(append(append([]byte(nil), frame...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestReadWriteFrameStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindEDDM, []byte{42}); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindEDDM || len(payload) != 1 || payload[0] != 42 {
		t.Fatalf("kind %d payload %v", kind, payload)
	}
	// A stream that ends mid-frame errors instead of hanging or panicking.
	short := AppendFrame(nil, KindDDM, []byte{1, 2, 3})
	if _, _, err := ReadFrame(bytes.NewReader(short[:len(short)-2])); err == nil {
		t.Fatal("short stream accepted")
	}
}

func TestBufferReuseAndWriter(t *testing.T) {
	w := NewBuffer(make([]byte, 0, 64))
	w.U32(1)
	first := w.Len()
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	n, err := w.Write([]byte{1, 2, 3})
	if err != nil || n != 3 || w.Len() != 3 {
		t.Fatalf("Write: n=%d err=%v len=%d", n, err, w.Len())
	}
	_ = first
}

// TestBeginEndFrame: the in-place frame builder must produce bytes
// identical to AppendFrame for the same payload, including back-to-back
// frames in one buffer (the coalesced write path of the network server) and
// interleaved with non-frame appends before the first BeginFrame.
func TestBeginEndFrame(t *testing.T) {
	payloads := [][]byte{
		[]byte("first payload"),
		{},
		bytes.Repeat([]byte{0xCD}, 2000),
	}
	kinds := []uint8{KindWireIngest, KindWireOK, KindWireIngestBatch}
	var want []byte
	w := NewBuffer(nil)
	for i, p := range payloads {
		want = AppendFrame(want, kinds[i], p)
		mark := w.BeginFrame(kinds[i])
		w.Write(p)
		w.EndFrame(mark)
	}
	if !bytes.Equal(w.Bytes(), want) {
		t.Fatalf("BeginFrame/EndFrame bytes differ from AppendFrame:\n got %x\nwant %x", w.Bytes(), want)
	}
	// Every frame in the coalesced region parses back intact.
	sc := NewFrameScanner(bytes.NewReader(w.Bytes()))
	for i := range payloads {
		kind, payload, err := sc.Next()
		if err != nil || kind != kinds[i] || !bytes.Equal(payload, payloads[i]) {
			t.Fatalf("frame %d: kind=%d err=%v payload=%q", i, kind, err, payload)
		}
	}
	if _, _, err := sc.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after last frame, got %v", err)
	}
	// A frame built mid-buffer (after unrelated bytes) still checksums only
	// its own region.
	w.Reset()
	w.U64(0xDEADBEEF) // unrelated prefix
	pre := w.Len()
	mark := w.BeginFrame(KindWireEvent)
	w.Str("payload")
	w.EndFrame(mark)
	var ref Buffer
	ref.Str("payload")
	if !bytes.Equal(w.Bytes()[pre:], AppendFrame(nil, KindWireEvent, ref.Bytes())) {
		t.Fatal("mid-buffer frame differs from AppendFrame over the same payload")
	}
}

// chunkReader serves its input in fixed-size chunks, simulating a TCP stream
// whose Read boundaries never align with frame boundaries.
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// TestFrameScannerFragmentedReads drives a multi-frame stream through Read
// chunk sizes from one byte up past a whole frame — the boundary cases the
// TCP path produces for real — and requires every frame to decode intact.
func TestFrameScannerFragmentedReads(t *testing.T) {
	var stream []byte
	want := [][]byte{
		[]byte("first payload"),
		{},
		bytes.Repeat([]byte{0xAB}, 3000), // larger than any single chunk
		[]byte("last"),
	}
	kinds := []uint8{KindWireIngest, KindWireOK, KindWireIngestBatch, KindWireEvent}
	for i, p := range want {
		stream = AppendFrame(stream, kinds[i], p)
	}
	for _, chunk := range []int{1, 2, 3, 7, 10, 13, 64, 1000, len(stream)} {
		sc := NewFrameScanner(&chunkReader{data: stream, n: chunk})
		for i := range want {
			kind, payload, err := sc.Next()
			if err != nil {
				t.Fatalf("chunk=%d frame=%d: %v", chunk, i, err)
			}
			if kind != kinds[i] || !bytes.Equal(payload, want[i]) {
				t.Fatalf("chunk=%d frame=%d: kind=%d payload=%q", chunk, i, kind, payload)
			}
		}
		if _, _, err := sc.Next(); err != io.EOF {
			t.Fatalf("chunk=%d: want clean io.EOF at stream end, got %v", chunk, err)
		}
	}
}

// TestFrameScannerTruncation cuts a frame at every possible byte boundary:
// a cut at offset zero is a clean EOF, every later cut must surface as
// ErrInvalid (a peer died mid-frame).
func TestFrameScannerTruncation(t *testing.T) {
	frame := AppendFrame(nil, KindWireIngest, []byte("payload under test"))
	for cut := 0; cut < len(frame); cut++ {
		sc := NewFrameScanner(&chunkReader{data: frame[:cut], n: 5})
		_, _, err := sc.Next()
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut=0: want io.EOF, got %v", err)
			}
			continue
		}
		if !errors.Is(err, ErrInvalid) {
			t.Fatalf("cut=%d: want ErrInvalid, got %v", cut, err)
		}
	}
}

// TestFrameScannerLimitPayload verifies that a frame declaring a payload
// beyond the configured limit is rejected from the header alone.
func TestFrameScannerLimitPayload(t *testing.T) {
	frame := AppendFrame(nil, KindWireIngestBatch, make([]byte, 1024))
	sc := NewFrameScanner(bytes.NewReader(frame))
	sc.LimitPayload(512)
	if _, _, err := sc.Next(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid for over-limit payload, got %v", err)
	}
	// The same frame passes with the limit at its size.
	sc = NewFrameScanner(bytes.NewReader(frame))
	sc.LimitPayload(1024)
	if _, _, err := sc.Next(); err != nil {
		t.Fatalf("within-limit frame rejected: %v", err)
	}
}

// TestFrameScannerBufferReuse checks the steady-state contract: after the
// buffer has grown to the largest frame seen, further frames of that size or
// smaller allocate nothing.
func TestFrameScannerBufferReuse(t *testing.T) {
	var stream []byte
	for i := 0; i < 32; i++ {
		stream = AppendFrame(stream, KindWireIngest, bytes.Repeat([]byte{byte(i)}, 2048))
	}
	sc := NewFrameScanner(bytes.NewReader(stream))
	if _, _, err := sc.Next(); err != nil { // grow once
		t.Fatal(err)
	}
	// 30 measured runs + AllocsPerRun's warmup run + the explicit grow call
	// above consume the 32 frames exactly.
	allocs := testing.AllocsPerRun(30, func() {
		if _, _, err := sc.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state scanner allocates %.1f allocs/frame, want 0", allocs)
	}
}

// TestReadFrameFragmented covers the one-shot ReadFrame entry point over the
// same fragmented transport (checkpoint loads from sockets or pipes).
func TestReadFrameFragmented(t *testing.T) {
	frame := AppendFrame(nil, KindRBM, []byte("detector state bytes"))
	for _, chunk := range []int{1, 3, 9, len(frame)} {
		kind, payload, err := ReadFrame(&chunkReader{data: frame, n: chunk})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if kind != KindRBM || string(payload) != "detector state bytes" {
			t.Fatalf("chunk=%d: kind=%d payload=%q", chunk, kind, payload)
		}
	}
	// ReadFrame (unlike FrameScanner.Next) treats an empty input as invalid:
	// a checkpoint load expects a frame to be there.
	if _, _, err := ReadFrame(&chunkReader{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty input: want ErrInvalid, got %v", err)
	}
}

// TestReaderResetAndRemaining exercises the reusable-Reader path the
// connection loops depend on.
func TestReaderResetAndRemaining(t *testing.T) {
	var r Reader
	w := NewBuffer(nil)
	w.U32(7)
	w.Str("stream-1")
	r.Reset(w.Bytes())
	if got := r.Remaining(); got != w.Len() {
		t.Fatalf("Remaining = %d, want %d", got, w.Len())
	}
	if got := r.U32(); got != 7 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.Blob(); string(got) != "stream-1" {
		t.Fatalf("Blob = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	// Trip the sticky error, then Reset must clear it.
	r.U64()
	if r.Err() == nil {
		t.Fatal("expected sticky error after over-read")
	}
	if got := r.Remaining(); got != 0 {
		t.Fatalf("Remaining after error = %d, want 0", got)
	}
	r.Reset([]byte{1})
	if r.Err() != nil {
		t.Fatal("Reset must clear the sticky error")
	}
	if got := r.U8(); got != 1 {
		t.Fatalf("U8 after Reset = %d", got)
	}
}

// TestF64sInto verifies append-into decoding reuses capacity and matches
// F64s element-for-element.
func TestF64sInto(t *testing.T) {
	w := NewBuffer(nil)
	vals := []float64{1.25, -7, 0, math.Inf(-1)}
	w.F64s(vals)
	w.F64s(nil)

	dst := make([]float64, 0, 16)
	r := NewReader(w.Bytes())
	dst = r.F64sInto(dst)
	if len(dst) != len(vals) {
		t.Fatalf("decoded %d floats, want %d", len(dst), len(vals))
	}
	for i := range vals {
		if math.Float64bits(dst[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("element %d: %v != %v", i, dst[i], vals[i])
		}
	}
	dst = r.F64sInto(dst)
	if len(dst) != len(vals) {
		t.Fatalf("empty slice decode appended: len=%d", len(dst))
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}
