package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	w := NewBuffer(nil)
	w.U8(7)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-42)
	w.Int(-1)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Inf(1))
	w.F64(math.Copysign(0, -1))
	w.F64s([]float64{1.5, -2.5, 0})
	w.Ints([]int{3, -4, 5})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Int(); got != -1 {
		t.Fatalf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round-trip failed")
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, 1) {
		t.Fatalf("F64 inf = %v", got)
	}
	if got := r.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("F64 -0 bits = %x", math.Float64bits(got))
	}
	fs := r.F64s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.5 || fs[2] != 0 {
		t.Fatalf("F64s = %v", fs)
	}
	is := r.Ints()
	if len(is) != 3 || is[0] != 3 || is[1] != -4 || is[2] != 5 {
		t.Fatalf("Ints = %v", is)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestReaderTruncationIsSticky(t *testing.T) {
	w := NewBuffer(nil)
	w.U64(1)
	r := NewReader(w.Bytes()[:5])
	_ = r.U64()
	if r.Err() == nil {
		t.Fatal("truncated U64 did not error")
	}
	// Sticky: further reads stay zero-valued and keep the first error.
	if got := r.U32(); got != 0 {
		t.Fatalf("read after error = %d", got)
	}
	if !errors.Is(r.Err(), ErrInvalid) {
		t.Fatalf("error %v is not ErrInvalid", r.Err())
	}
}

func TestReaderCountBound(t *testing.T) {
	// A declared count far beyond the remaining bytes must error without
	// allocating the declared size.
	w := NewBuffer(nil)
	w.U32(1 << 30)
	r := NewReader(w.Bytes())
	if got := r.F64s(); got != nil || r.Err() == nil {
		t.Fatalf("oversized count accepted: %v / %v", got, r.Err())
	}
}

func TestReaderDoneRejectsTrailingBytes(t *testing.T) {
	w := NewBuffer(nil)
	w.U8(1)
	w.U8(2)
	r := NewReader(w.Bytes())
	r.U8()
	if err := r.Done(); err == nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
}

func TestMarkPatchLen(t *testing.T) {
	w := NewBuffer(nil)
	w.U8(9)
	mark := w.Mark()
	w.F64(1.0)
	w.F64(2.0)
	w.PatchLen(mark)
	r := NewReader(w.Bytes())
	if got := r.U8(); got != 9 {
		t.Fatalf("prefix = %d", got)
	}
	blob := r.Blob()
	if len(blob) != 16 {
		t.Fatalf("blob length = %d", len(blob))
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	frame := AppendFrame(nil, KindRBM, payload)
	kind, got, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindRBM || !bytes.Equal(got, payload) {
		t.Fatalf("kind %d payload %v", kind, got)
	}
	if _, err := ExpectFrame(frame, KindDDM); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	payload := []byte("detector state bytes")
	frame := AppendFrame(nil, KindRBMIM, payload)
	// Every single-byte flip anywhere in the frame must be rejected.
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, err := ParseFrame(bad); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		} else if !errors.Is(err, ErrInvalid) {
			t.Fatalf("flip at byte %d: error %v is not ErrInvalid", i, err)
		}
	}
	// Every truncation must be rejected.
	for n := 0; n < len(frame); n++ {
		if _, _, err := ParseFrame(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage must be rejected (a frame is exactly one frame).
	if _, _, err := ParseFrame(append(append([]byte(nil), frame...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestReadWriteFrameStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindEDDM, []byte{42}); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindEDDM || len(payload) != 1 || payload[0] != 42 {
		t.Fatalf("kind %d payload %v", kind, payload)
	}
	// A stream that ends mid-frame errors instead of hanging or panicking.
	short := AppendFrame(nil, KindDDM, []byte{1, 2, 3})
	if _, _, err := ReadFrame(bytes.NewReader(short[:len(short)-2])); err == nil {
		t.Fatal("short stream accepted")
	}
}

func TestBufferReuseAndWriter(t *testing.T) {
	w := NewBuffer(make([]byte, 0, 64))
	w.U32(1)
	first := w.Len()
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	n, err := w.Write([]byte{1, 2, 3})
	if err != nil || n != 3 || w.Len() != 3 {
		t.Fatalf("Write: n=%d err=%v len=%d", n, err, w.Len())
	}
	_ = first
}
