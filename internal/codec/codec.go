// Package codec implements the reflection-free binary format behind every
// checkpointable object in this repository (RBM weights, detector state,
// monitor stream envelopes). The design goals, in order:
//
//  1. Corrupt, truncated, or wrong-version input must produce an error —
//     never a panic and never a half-decoded object. Every frame carries a
//     magic, a format version, an explicit payload length, and a CRC-32 of
//     everything before it; every Reader access is bounds-checked with a
//     sticky error.
//  2. Save → load must be bit-exact. Floats travel as their IEEE-754 bit
//     patterns (math.Float64bits), never through text formatting.
//  3. The hot callers (periodic monitor snapshots) must be able to reuse
//     buffers: Buffer appends into a caller-owned byte slice and implements
//     io.Writer, so steady-state snapshots allocate nothing once grown.
//
// The format is deliberately hand-rolled rather than encoding/gob: gob is
// reflection-driven, embeds type descriptors whose layout is outside our
// control (so "bit-identical across save/load" becomes unfalsifiable), and
// cannot decode into preallocated storage. See DESIGN.md, "Checkpoint
// format".
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the current checkpoint format version. Decoders reject frames
// carrying any other version; bump it on any layout change.
const Version = 1

// Frame kinds: which object a frame's payload describes. A decoder asserts
// the kind it expects, so feeding a DDM snapshot to an RBM-IM detector fails
// cleanly instead of mis-decoding.
const (
	KindRBM           uint8 = 1 // core.RBM network state
	KindRBMIM         uint8 = 2 // core.Detector (RBM-IM) full state
	KindDDM           uint8 = 3
	KindEDDM          uint8 = 4
	KindADWINDetector uint8 = 5
	KindMonitorStream uint8 = 6 // monitor per-stream envelope (seq + detector frame)
)

// Wire kinds: the frames of the driftserver network protocol (see
// internal/server). They share the checkpoint frame format — magic, version,
// length, CRC — so the server reuses this package's framing and corruption
// handling verbatim, but live in a disjoint numeric range so a checkpoint
// file fed to a server socket (or vice versa) fails cleanly on kind.
//
// The numeric block doubles as the wire protocol revision: the frame-level
// Version byte is shared with the checkpoint format and cannot be bumped
// for wire-only changes without orphaning saved checkpoints, so any
// incompatible change to a wire payload moves the whole kind block to a
// fresh range instead. A version-skewed peer then fails fast and loudly —
// the server answers "unknown request kind" and hangs up, the client
// surfaces an unexpected reply kind — rather than misparsing the payload
// bytes into garbage requests. Revision 1 occupied 16–28; revision 2 moved
// to 32–49 when the ingest payloads gained the exactly-once session id +
// sequence number between the request id and the stream ID (the cluster
// migration kinds 45–49 joined it as compatible additions); revision 3
// (current) moved to 64–87 when the Event payload gained the optional
// drift flight-recorder record and the LastDrift request was added.
const (
	// Requests (client -> server). Every request payload starts with a u64
	// request id echoed by the matching reply.
	KindWireIngest         uint8 = 64 // one observation for one stream
	KindWireIngestBatch    uint8 = 65 // a block of observations (blocking backpressure)
	KindWireTryIngestBatch uint8 = 66 // a block of observations (Busy instead of blocking)
	KindWireSubscribe      uint8 = 67 // turn the connection into a drift-event stream
	KindWireSnapshotReq    uint8 = 68 // request an aggregate monitor snapshot
	KindWireEvict          uint8 = 69 // evict one stream (spills with checkpointing on)
	KindWireFlush          uint8 = 70 // process everything queued + flush checkpoints
	KindWireMigrate        uint8 = 71 // export a stream's detector state for handoff
	KindWireHandoff        uint8 = 72 // install an exported state on the target server
	KindWireStreams        uint8 = 73 // list resident stream IDs
	KindWireLastDrift      uint8 = 74 // fetch a stream's last drift flight record

	// Replies (server -> client).
	KindWireOK        uint8 = 80 // request succeeded, no payload beyond the id
	KindWireBusy      uint8 = 81 // TryIngestBatch dropped the block (queue full)
	KindWireError     uint8 = 82 // request failed; payload carries a message
	KindWireSnapshot  uint8 = 83 // snapshot reply; payload is canonical JSON
	KindWireEvent     uint8 = 84 // pushed drift event (request id 0)
	KindWireState     uint8 = 85 // Migrate reply; payload is a checkpoint envelope frame
	KindWireStreamIDs uint8 = 86 // Streams reply; payload is a list of stream IDs
	KindWireDrift     uint8 = 87 // LastDrift reply; payload is a JSON drift report
)

// ErrInvalid is wrapped by every decode failure, so callers can test
// errors.Is(err, codec.ErrInvalid) regardless of the specific corruption.
var ErrInvalid = errors.New("codec: invalid checkpoint data")

// frame layout: magic(4) | version(1) | kind(1) | payloadLen(u32) | payload | crc32(u32)
// The CRC covers magic through payload inclusive.
const (
	magic       = "RBCK"
	headerSize  = 4 + 1 + 1 + 4
	trailerSize = 4
	// MaxPayload bounds a frame's declared payload length so corrupt length
	// fields cannot drive giant allocations. 1 GiB is orders of magnitude
	// above any real detector state.
	MaxPayload = 1 << 30
)

// Buffer is the append-side primitive writer. The zero value is ready to
// use; Bytes returns the accumulated encoding. It implements io.Writer so
// object Save methods can stream a nested frame straight into an outer
// payload without a second buffer.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer appending onto b (pass a recycled slice to
// reuse its capacity; pass nil to start fresh).
func NewBuffer(b []byte) *Buffer { return &Buffer{b: b[:0]} }

// Bytes returns the encoded bytes. The slice is owned by the Buffer and is
// invalidated by the next append or Reset.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the number of encoded bytes.
func (w *Buffer) Len() int { return len(w.b) }

// Reset discards the contents, keeping the backing array.
func (w *Buffer) Reset() { w.b = w.b[:0] }

// Write implements io.Writer (raw append, no length prefix).
func (w *Buffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// U8 appends one byte.
func (w *Buffer) U8(v uint8) { w.b = append(w.b, v) }

// U32 appends a little-endian uint32.
func (w *Buffer) U32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }

// U64 appends a little-endian uint64.
func (w *Buffer) U64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

// I64 appends a little-endian int64.
func (w *Buffer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as an int64.
func (w *Buffer) Int(v int) { w.I64(int64(v)) }

// Bool appends a bool as one byte (0/1).
func (w *Buffer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 appends a float64 as its IEEE-754 bit pattern.
func (w *Buffer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string (decode with Blob).
func (w *Buffer) Str(s string) {
	w.U32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// F64s appends a length-prefixed float64 slice.
func (w *Buffer) F64s(v []float64) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.F64(x)
	}
}

// Ints appends a length-prefixed int slice (each element an int64).
func (w *Buffer) Ints(v []int) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.I64(int64(x))
	}
}

// BeginFrame appends a frame header (magic, version, kind) with a zero
// payload length and returns a mark for EndFrame. Everything appended
// between the two calls becomes the frame's payload, so hot paths build a
// complete wire frame in one buffer — payload and framing together, no
// second copy like AppendFrame's — and several frames appended back to back
// form one contiguous region a single socket write (or writev batch entry)
// can push out.
func (w *Buffer) BeginFrame(kind uint8) int {
	w.b = append(w.b, magic...)
	w.b = append(w.b, Version, kind)
	mark := len(w.b)
	w.U32(0)
	return mark
}

// EndFrame completes the frame begun at mark: it patches the payload length
// and appends the CRC-32 over the header and payload, producing bytes
// identical to AppendFrame over the same payload.
func (w *Buffer) EndFrame(mark int) {
	binary.LittleEndian.PutUint32(w.b[mark:mark+4], uint32(len(w.b)-mark-4))
	start := mark - (headerSize - 4)
	sum := crc32.ChecksumIEEE(w.b[start:])
	w.U32(sum)
}

// Mark reserves a u32 slot at the current position (for a to-be-known
// length) and returns its offset for PatchLen.
func (w *Buffer) Mark() int {
	off := len(w.b)
	w.U32(0)
	return off
}

// PatchLen writes the number of bytes appended since Mark into the reserved
// slot, turning everything after the mark into a length-prefixed region.
func (w *Buffer) PatchLen(mark int) {
	binary.LittleEndian.PutUint32(w.b[mark:mark+4], uint32(len(w.b)-mark-4))
}

// Reader is the bounds-checked decode-side cursor over one payload. Any
// out-of-bounds access or failed validation sets a sticky error; subsequent
// reads return zero values. Decoders must check Err (or Done) before
// committing decoded state.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Reset repoints the Reader at b and clears the sticky error, so decode
// loops (one payload per network frame) can reuse one Reader value instead
// of allocating per frame.
func (r *Reader) Reset(b []byte) {
	r.b, r.off, r.err = b, 0, nil
}

// Remaining returns the number of unread bytes (0 after an error).
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.b) - r.off
}

// Err returns the sticky error, nil while all reads have been in bounds.
func (r *Reader) Err() error { return r.err }

// Fail sets the sticky error (used by decoders for semantic validation
// failures, e.g. an impossible field value). The first failure wins.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
	}
}

// Done returns the sticky error, or an error when decodable bytes remain —
// a well-formed frame must be consumed exactly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrInvalid, len(r.b)-r.off)
	}
	return nil
}

// take returns the next n bytes, or nil after setting the sticky error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.err = fmt.Errorf("%w: truncated (need %d bytes, have %d)", ErrInvalid, n, len(r.b)-r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 and validates it fits the platform int.
func (r *Reader) Int() int {
	v := r.I64()
	n := int(v)
	if int64(n) != v {
		r.Fail("int64 %d overflows int", v)
		return 0
	}
	return n
}

// Bool reads one byte, requiring 0 or 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail("bad bool byte")
		return false
	}
}

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// count reads a u32 length prefix and validates that count elements of
// elemSize bytes fit in the remaining input, so corrupt prefixes cannot
// drive giant allocations. The bound is computed in int64 so a prefix near
// 2^32 cannot wrap on 32-bit platforms and reach make() (the check also
// proves the returned value fits the platform int).
func (r *Reader) count(elemSize int) int {
	n := int64(r.U32())
	if r.err != nil {
		return 0
	}
	if n*int64(elemSize) > int64(len(r.b)-r.off) {
		r.Fail("count %d exceeds remaining input", n)
		return 0
	}
	return int(n)
}

// F64s reads a length-prefixed float64 slice into a fresh allocation.
func (r *Reader) F64s() []float64 {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// F64sInto reads a length-prefixed float64 slice by appending onto dst,
// reusing its capacity — the decode-side sibling of Buffer.F64s for callers
// that recycle buffers (the server's pooled observation slabs). On error the
// input dst is returned unchanged.
func (r *Reader) F64sInto(dst []float64) []float64 {
	n := r.count(8)
	if r.err != nil {
		return dst
	}
	for i := 0; i < n; i++ {
		dst = append(dst, r.F64())
	}
	return dst
}

// F64sLen reads a length-prefixed float64 slice, requiring exactly want
// elements (the shape check every fixed-dimension field needs).
func (r *Reader) F64sLen(want int) []float64 {
	mark := r.off
	out := r.F64s()
	if r.err == nil && len(out) != want {
		r.off = mark
		r.Fail("float slice has %d elements, want %d", len(out), want)
		return nil
	}
	return out
}

// Ints reads a length-prefixed int slice into a fresh allocation.
func (r *Reader) Ints() []int {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

// Blob reads a length-prefixed byte region and returns a view into the
// Reader's input (valid as long as the input is).
func (r *Reader) Blob() []byte {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	return r.take(n)
}

// AppendFrame appends a complete frame (header, payload, CRC) to dst and
// returns the extended slice.
func AppendFrame(dst []byte, kind uint8, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, magic...)
	dst = append(dst, Version, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// ParseFrame validates a complete frame and returns its kind and a view of
// its payload. The input must contain exactly one frame.
func ParseFrame(data []byte) (kind uint8, payload []byte, err error) {
	if len(data) < headerSize+trailerSize {
		return 0, nil, fmt.Errorf("%w: %d bytes is shorter than a frame", ErrInvalid, len(data))
	}
	if string(data[:4]) != magic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrInvalid)
	}
	if v := data[4]; v != Version {
		return 0, nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrInvalid, v, Version)
	}
	kind = data[5]
	n := binary.LittleEndian.Uint32(data[6:10])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrInvalid, n)
	}
	if len(data) != headerSize+int(n)+trailerSize {
		return 0, nil, fmt.Errorf("%w: frame is %d bytes, header declares %d", ErrInvalid, len(data), headerSize+int(n)+trailerSize)
	}
	body := data[:headerSize+int(n)]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return 0, nil, fmt.Errorf("%w: CRC mismatch (corrupt frame)", ErrInvalid)
	}
	return kind, data[headerSize : headerSize+int(n)], nil
}

// ExpectFrame parses a frame and additionally asserts its kind.
func ExpectFrame(data []byte, kind uint8) ([]byte, error) {
	k, payload, err := ParseFrame(data)
	if err != nil {
		return nil, err
	}
	if k != kind {
		return nil, fmt.Errorf("%w: frame kind %d, want %d", ErrInvalid, k, kind)
	}
	return payload, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, kind uint8, payload []byte) error {
	_, err := w.Write(AppendFrame(nil, kind, payload))
	return err
}

// ReadFrame reads exactly one frame from r: the fixed header first, then the
// declared payload and CRC. Short reads surface as ErrInvalid-wrapped
// errors, and the frame is re-validated end to end (including CRC) before
// the payload is returned.
func ReadFrame(r io.Reader) (kind uint8, payload []byte, err error) {
	kind, payload, err = NewFrameScanner(r).Next()
	if err == io.EOF {
		// Unlike a connection loop (FrameScanner.Next), a checkpoint load
		// expects a frame to be present: an empty input is invalid input.
		return 0, nil, fmt.Errorf("%w: reading frame header: %v", ErrInvalid, io.EOF)
	}
	return kind, payload, err
}

// FrameScanner reads a stream of consecutive frames from r, reusing one
// internal buffer across frames — the connection-loop primitive of the
// network protocol, where a steady-state reader must not allocate per frame.
// The payload returned by Next is a view into that buffer, valid only until
// the next call. The scanner makes no assumptions about how the underlying
// reads fragment: a frame split across arbitrarily small Reads (TCP
// segmentation) is reassembled via io.ReadFull.
type FrameScanner struct {
	r   io.Reader
	buf []byte
	max uint32
}

// NewFrameScanner returns a FrameScanner over r accepting payloads up to
// MaxPayload (lower it with LimitPayload when r is an untrusted peer).
func NewFrameScanner(r io.Reader) *FrameScanner {
	return &FrameScanner{r: r, max: MaxPayload}
}

// LimitPayload lowers the maximum accepted payload length. A frame declaring
// more than n bytes fails with ErrInvalid before any allocation, so a hostile
// length field cannot drive memory growth.
func (s *FrameScanner) LimitPayload(n int) {
	if n > 0 && uint32(n) < s.max {
		s.max = uint32(n)
	}
}

// Next reads and validates the next frame. A clean end of stream at a frame
// boundary returns io.EOF untouched (the signal a server loop exits on);
// every other failure — truncation mid-frame included — wraps ErrInvalid.
// The underlying read error is wrapped too, so a caller can distinguish a
// connection cut mid-frame (errors.Is(err, io.ErrUnexpectedEOF)) from other
// corruption.
func (s *FrameScanner) Next() (kind uint8, payload []byte, err error) {
	if cap(s.buf) < headerSize {
		s.buf = make([]byte, headerSize, 4096)
	}
	head := s.buf[:headerSize]
	if _, err := io.ReadFull(s.r, head); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: reading frame header: %w", ErrInvalid, err)
	}
	if string(head[:4]) != magic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrInvalid)
	}
	if v := head[4]; v != Version {
		return 0, nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrInvalid, v, Version)
	}
	n := binary.LittleEndian.Uint32(head[6:10])
	if n > s.max {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrInvalid, n, s.max)
	}
	total := headerSize + int(n) + trailerSize
	if cap(s.buf) < total {
		grown := make([]byte, total)
		copy(grown, head)
		s.buf = grown
	}
	frame := s.buf[:total]
	if _, err := io.ReadFull(s.r, frame[headerSize:]); err != nil {
		return 0, nil, fmt.Errorf("%w: reading frame body: %w", ErrInvalid, err)
	}
	return ParseFrame(frame)
}
