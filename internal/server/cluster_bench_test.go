package server

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
)

// The cluster benchmarks measure the tentpole claim end to end: real
// driftserver processes (one per fleet member), real TCP, the cluster
// client fanning a pipelined batch workload across the ring. Comparing the
// 1/2/3-node rows gives the horizontal-scaling factor — on a multi-core
// box the fleet rows should beat the single node; on a single-core CI
// machine all processes time-slice one core and the rows mostly measure
// protocol overhead (see EXPERIMENTS.md, "Cluster scaling").

var clusterBin struct {
	once sync.Once
	path string
	err  error
}

// driftserverBin builds cmd/driftserver once per test process.
func driftserverBin(tb testing.TB) string {
	tb.Helper()
	clusterBin.once.Do(func() {
		dir, err := os.MkdirTemp("", "driftserver-bench-")
		if err != nil {
			clusterBin.err = err
			return
		}
		bin := filepath.Join(dir, "driftserver")
		build := exec.Command("go", "build", "-o", bin, "./cmd/driftserver")
		build.Dir = "../.."
		if out, err := build.CombinedOutput(); err != nil {
			clusterBin.err = fmt.Errorf("building driftserver: %v\n%s", err, out)
			return
		}
		clusterBin.path = bin
	})
	if clusterBin.err != nil {
		tb.Fatal(clusterBin.err)
	}
	return clusterBin.path
}

// spawnDriftserver starts one real driftserver process and returns its TCP
// address; cleanup sends SIGTERM and reaps it.
func spawnDriftserver(tb testing.TB, args ...string) string {
	tb.Helper()
	cmd := exec.Command(driftserverBin(tb), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		tb.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "driftserver: serving on ") {
			addr := strings.TrimPrefix(line, "driftserver: serving on ")
			go func() { // keep draining so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return addr
		}
	}
	tb.Fatalf("driftserver never reported its address (scan err: %v)", sc.Err())
	return ""
}

// startClusterNodes spawns an n-member fleet with identical detector
// templates and in-memory checkpoint stores (the configuration migration
// needs).
func startClusterNodes(tb testing.TB, n int) []string {
	tb.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = spawnDriftserver(tb,
			"-addr", "127.0.0.1:0",
			"-features", "8", "-classes", "3", "-shards", "2", "-seed", "7",
			"-checkpoint", "mem", "-ckptint", "1h")
	}
	return addrs
}

// benchCluster drives b.N pipelined 256-observation blocks across a fleet
// of real driftserver processes, round-robin over 64 streams, and reports
// per-observation cost. The closing flush barrier is inside the measured
// window, so acked-but-unprocessed work cannot flatter the number.
func benchCluster(b *testing.B, nodes int) {
	if testing.Short() {
		b.Skip("multi-process benchmark")
	}
	const (
		streams = 64
		block   = 256
		window  = 4
	)
	addrs := startClusterNodes(b, nodes)
	cc, err := DialCluster(ClusterConfig{Addrs: addrs, Window: window})
	if err != nil {
		b.Fatal(err)
	}
	defer cc.Close()

	obs := testObs(8, block)
	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("stream-%04d", i)
	}
	// Warm-up: materialize every stream's detector on its member.
	for _, id := range ids {
		if err := cc.IngestBatch(id, obs); err != nil {
			b.Fatal(err)
		}
	}

	inflight := nodes * window
	ring := make([]Pending, inflight)
	n := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n >= inflight {
			if err := ring[n%inflight].Wait(); err != nil {
				b.Fatal(err)
			}
		}
		pd, err := cc.IngestBatchAsync(ids[i%streams], obs)
		if err != nil {
			b.Fatal(err)
		}
		ring[n%inflight] = pd
		n++
	}
	for i := 0; i < n && i < inflight; i++ {
		if err := ring[i].Wait(); err != nil {
			b.Fatal(err)
		}
	}
	if err := cc.FlushCheckpoints(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(block), "ns/obs")
}

func BenchmarkClusterIngestBatch1(b *testing.B) { benchCluster(b, 1) }
func BenchmarkClusterIngestBatch2(b *testing.B) { benchCluster(b, 2) }
func BenchmarkClusterIngestBatch3(b *testing.B) { benchCluster(b, 3) }

// BenchmarkClusterMigration measures one live stream migration end to end —
// export over the wire, checkpoint-frame handoff, install on the target —
// against streams trained with one warm-up block.
func BenchmarkClusterMigration(b *testing.B) {
	if testing.Short() {
		b.Skip("multi-process benchmark")
	}
	addrs := startClusterNodes(b, 2)
	cc, err := DialCluster(ClusterConfig{Addrs: addrs, Window: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer cc.Close()
	obs := testObs(8, 256)
	if err := cc.IngestBatch("hot-stream", obs); err != nil {
		b.Fatal(err)
	}
	members := cc.Members()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owner, err := cc.Owner("hot-stream")
		if err != nil {
			b.Fatal(err)
		}
		target := members[0]
		if target == owner {
			target = members[1]
		}
		if err := cc.Migrate("hot-stream", target); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/migration")
}
