//go:build race

package server

// raceEnabled reports whether the race detector is instrumenting this build;
// allocation-count tests skip under it (the instrumentation itself
// allocates).
const raceEnabled = true
