package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"rbmim/internal/codec"
	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
	"rbmim/internal/telemetry"
)

// Config parameterizes a Server. Monitor is required; every other zero
// value selects a sensible default.
type Config struct {
	// Monitor is the sharded drift-detection service the server exposes.
	// The server borrows it: Close tears down the network side only, and
	// the caller closes the Monitor afterwards (which flushes checkpoints).
	Monitor *monitor.Monitor
	// Addr is the TCP listen address; default "127.0.0.1:0" (loopback,
	// kernel-chosen port — read the result from Server.Addr).
	Addr string
	// HTTPAddr, when non-empty, starts the HTTP sidecar serving GET
	// /healthz and GET /metrics (Prometheus text) on that address.
	HTTPAddr string
	// Pprof, when true, additionally mounts net/http/pprof under
	// /debug/pprof/ on the HTTP sidecar, so a running server is profilable
	// in place (CPU, heap, goroutine, block). Off by default — the profile
	// endpoints cost CPU while sampling and should not be reachable
	// accidentally — and meaningless without HTTPAddr.
	Pprof bool
	// MaxFrame bounds a request frame's payload length; connections
	// declaring more are rejected before any allocation. Default 16 MiB
	// (batch 256 at 80 features is ~170 KiB, so the default leaves two
	// orders of magnitude of headroom).
	MaxFrame int
	// SubscriberBuffer is the per-subscription event queue capacity used
	// when a Subscribe request does not specify one. Default 1024.
	SubscriberBuffer int
	// DrainTimeout bounds the graceful phase of Close: connections that
	// have not wound down by then (e.g. a subscriber that stopped reading,
	// leaving the server parked in a socket write) are force-closed so
	// shutdown always terminates. Default 5s.
	DrainTimeout time.Duration
	// DedupWindow sizes the per-(session, stream) exactly-once window, in
	// sequence numbers (see dedup.go): a retried ingest whose seq was
	// already committed inside the window is acked without re-ingesting.
	// Rounded up to a power of two, minimum 64; default 1024 (it must
	// comfortably exceed a client's total in-flight requests per stream).
	// Negative disables deduplication entirely — retries may then
	// double-ingest.
	DedupWindow int
	// MaxSessions bounds the distinct client sessions the dedup table
	// tracks; past it the least-recently-active session's window is
	// dropped. Default 1024.
	MaxSessions int
	// Telemetry selects how much of the wire path is timed. The zero value
	// (telemetry.Full) times every request's service time (decode through
	// reply buffering) into per-kind serve_* latency histograms, exposed on
	// Snapshot replies and /metrics alongside the monitor's own stages;
	// telemetry.Basic keeps the serve_* stages too (they are the
	// wire-visible ones); telemetry.Off removes all server-side timing.
	// Telemetry never changes replies or drift decisions.
	Telemetry telemetry.Level
	// ShedHighWater, in (0, 1], enables overload shedding: a blocking
	// Ingest/IngestBatch whose target shard's queue occupancy is at or
	// above this fraction of capacity is refused with a Busy reply instead
	// of queueing (counted in Snapshot.Shedded), keeping the server
	// responsive — and its sheds observable — instead of silently pushing
	// the stall into TCP. TryIngestBatch already has Busy semantics and is
	// shed at the same threshold. 0 disables shedding (blocking ingests
	// apply the monitor's backpressure as before).
	ShedHighWater float64
}

func (c *Config) withDefaults() error {
	if c.Monitor == nil {
		return errors.New("server: Config.Monitor is required")
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 16 << 20
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 1024
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.DedupWindow == 0 {
		c.DedupWindow = 1024
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	return nil
}

// Server serves a Monitor over TCP (plus the optional HTTP sidecar). All
// methods are safe for concurrent use.
type Server struct {
	cfg    Config
	ln     net.Listener
	httpLn net.Listener
	httpSv *http.Server

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	closed    bool
	closeDone chan struct{}
	wg        sync.WaitGroup

	// Wire-path counters, overlaid onto Snapshot replies and /metrics (the
	// in-process monitor cannot know them): the deepest per-connection
	// pipeline observed, frames (replies and event pushes) that rode a
	// preceding frame's socket write instead of costing their own, and
	// blocking ingests refused with Busy by overload shedding.
	inflightHW       atomic.Uint64
	repliesCoalesced atomic.Uint64
	shedded          atomic.Uint64

	// dedup is the exactly-once window (nil when Config.DedupWindow < 0).
	dedup *dedupTable

	// tele times per-kind request service (nil at telemetry.Off).
	tele *serverTele

	// ready gates /readyz: true while the server accepts and serves ingest,
	// flipped false at the top of Close — before the drain — so a load
	// balancer polling readiness stops routing to a draining server while
	// /healthz (liveness) still answers.
	ready atomic.Bool
}

// serverTele holds one service-time histogram per request kind, indexed
// kind - codec.KindWireIngest (the request kinds are contiguous).
type serverTele struct {
	serve [codec.KindWireLastDrift - codec.KindWireIngest + 1]telemetry.Histogram
}

// serveStageNames maps a serverTele.serve index to its stage label.
var serveStageNames = [...]string{
	"serve_ingest", "serve_ingest_batch", "serve_try_ingest_batch",
	"serve_subscribe", "serve_snapshot", "serve_evict", "serve_flush",
	"serve_migrate", "serve_handoff", "serve_streams", "serve_last_drift",
}

// stages snapshots the non-empty serve histograms (unsorted; the caller
// merges them with the monitor's stages, which sorts by name).
func (t *serverTele) stages() []telemetry.Stage {
	var out []telemetry.Stage
	for i := range t.serve {
		if st := t.serve[i].Load(serveStageNames[i]); st.Count > 0 {
			out = append(out, st)
		}
	}
	return out
}

// New builds a Server and starts serving immediately (accept loop and, when
// configured, the HTTP sidecar).
func New(cfg Config) (*Server, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:       cfg,
		ln:        ln,
		conns:     make(map[net.Conn]struct{}),
		closeDone: make(chan struct{}),
	}
	if cfg.DedupWindow > 0 {
		s.dedup = newDedupTable(cfg.DedupWindow, cfg.MaxSessions)
	}
	if cfg.Telemetry != telemetry.Off {
		s.tele = &serverTele{}
	}
	if cfg.HTTPAddr != "" {
		hln, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("server: listen http %s: %w", cfg.HTTPAddr, err)
		}
		mux := http.NewServeMux()
		// Liveness vs readiness: /healthz answers "the process is up" for as
		// long as the sidecar runs; /readyz answers "route traffic here" and
		// flips to 503 the moment Close begins draining (and stays reachable
		// through the drain — the sidecar shuts down after it).
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if !s.ready.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, "draining")
				return
			}
			fmt.Fprintln(w, "ready")
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			s.wireSnapshot().WritePrometheus(w)
		})
		if cfg.Pprof {
			// Explicit registration: importing net/http/pprof only touches
			// http.DefaultServeMux, and the sidecar deliberately runs its own.
			mux.HandleFunc("/debug/pprof/", httppprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		}
		s.httpLn = hln
		s.httpSv = &http.Server{Handler: mux}
		go s.httpSv.Serve(hln)
	}
	s.ready.Store(true)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the TCP address the server is listening on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HTTPAddr returns the sidecar's address, or "" when no sidecar runs.
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Close shuts the server down gracefully: it stops accepting, lets every
// in-flight request finish and its reply go out, flushes subscribed
// connections' queued events, and waits for all connection handlers to
// exit. Connections that cannot wind down — a peer that stopped reading,
// leaving a pump or reply parked in a socket write — are force-closed
// after Config.DrainTimeout, so Close always terminates. The Monitor is
// left running — close it separately (Monitor.Close flushes the
// checkpoint store). Close is idempotent, and a concurrent second Close
// blocks until the teardown is complete.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.closeDone
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	// Readiness flips before anything else so a poller sees 503 for the
	// whole drain window; the sidecar itself closes only after the drain.
	s.ready.Store(false)
	s.ln.Close()
	// Graceful phase: expire every connection's pending read. A handler
	// blocked waiting for the next request returns immediately; a handler
	// mid-request finishes it, writes the reply, and exits on its next
	// read. Subscribed connections close their monitor subscription on
	// wakeup, which lets their pump drain the already-queued events before
	// the socket closes.
	for _, nc := range conns {
		nc.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		// Force phase: a blocked socket write (stuck subscriber, client
		// that never reads replies) holds its handler hostage; closing the
		// socket errors the write out and the handler's teardown runs.
		s.mu.Lock()
		for nc := range s.conns {
			nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	if s.httpSv != nil {
		s.httpSv.Close()
	}
	close(s.closeDone)
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			// The only non-transient accept failure in practice is our own
			// Close; either way the loop is done.
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(nc)
	}
}

func (s *Server) forget(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
}

// wireSnapshot is the monitor snapshot with the server-owned wire counters
// overlaid — the view the Snapshot reply and /metrics expose.
func (s *Server) wireSnapshot() monitor.Snapshot {
	sn := s.cfg.Monitor.Snapshot()
	sn.InFlightHighWater = s.inflightHW.Load()
	sn.RepliesCoalesced = s.repliesCoalesced.Load()
	sn.Shedded = s.shedded.Load()
	if s.dedup != nil {
		sn.DedupHits = s.dedup.hits.Load()
	}
	if s.tele != nil {
		if st := s.tele.stages(); len(st) > 0 {
			sn.Latency = telemetry.MergeStages(sn.Latency, st)
		}
	}
	return sn
}

// connHandler is one connection's state: the frame scanner and scratch
// buffers are connection-owned and reused across requests, so the
// steady-state request loop performs zero allocations.
type connHandler struct {
	s    *Server
	nc   net.Conn
	br   *bufio.Reader // buffered socket read side; Buffered() drives flush-on-idle
	rd   codec.Reader
	out  *codec.Buffer // coalesced reply frames awaiting one socket write
	outN int           // reply frames currently buffered in out
	json []byte        // snapshot JSON scratch

	// Pooled batch-decode slabs: slabObs views slabF exactly like the
	// monitor's internal batchBuf, and both are reusable the moment
	// IngestBatch returns (the monitor copies).
	slabObs []detectors.Observation
	slabF   []float64

	// names interns stream IDs so repeated ingests for the same stream skip
	// the []byte -> string allocation. Bounded: a connection cycling
	// through unbounded distinct IDs falls back to allocating per request
	// instead of growing the map forever.
	names map[string]string

	// Subscription state (nil until a Subscribe request).
	sub      *monitor.Subscription
	pumpDone chan struct{}
}

const maxInternedNames = 4096

// replyFlushBytes caps how many coalesced reply bytes may sit unwritten:
// past it the buffer is flushed even with more requests pending, bounding
// both reply latency under a saturating pipeline and the buffer's size.
const replyFlushBytes = 16 << 10

func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	defer s.forget(nc)
	defer nc.Close()
	// Replies are coalesced and flushed on idle: while more requests are
	// already buffered on the read side, their replies pile into h.out and
	// go out in one write. A pipelined client's W-deep window then costs ~1
	// reply syscall per drain instead of W, and the serial client is
	// unaffected (its read side is always idle after one request, so every
	// reply flushes immediately). This cannot deadlock: clients write whole
	// frames before blocking on their window, so an empty read buffer means
	// the peer is waiting on us, and that is exactly when we flush.
	br := bufio.NewReaderSize(nc, 32<<10)
	sc := codec.NewFrameScanner(br)
	sc.LimitPayload(s.cfg.MaxFrame)
	h := &connHandler{
		s:     s,
		nc:    nc,
		br:    br,
		out:   codec.NewBuffer(nil),
		names: make(map[string]string),
	}
	for {
		if h.outN > 0 && br.Buffered() == 0 {
			if !h.flushReplies() {
				break
			}
		}
		kind, payload, err := sc.Next()
		if err != nil {
			// Clean close, peer death, framing corruption, or our own
			// shutdown deadline — all end the connection.
			break
		}
		// Service time is decode through reply buffering (the coalesced
		// socket write is shared across requests and charged to none).
		var t0 int64
		if s.tele != nil {
			t0 = telemetry.Now()
		}
		ok := h.serve(kind, payload)
		if s.tele != nil {
			if i := int(kind) - int(codec.KindWireIngest); i >= 0 && i < len(s.tele.serve) {
				s.tele.serve[i].Observe(telemetry.Now() - t0)
			}
		}
		if !ok {
			break
		}
	}
	// Teardown flush: a buffered Error reply (bad request, unknown kind)
	// must still reach the peer before the socket closes under it.
	h.flushReplies()
	if h.sub != nil {
		h.sub.Close()
		<-h.pumpDone
	}
}

// serve handles one request frame; false ends the connection.
func (h *connHandler) serve(kind uint8, payload []byte) bool {
	if h.sub != nil {
		// A subscribed connection is one-way; a client that keeps sending is
		// violating the protocol.
		return false
	}
	h.rd.Reset(payload)
	id := h.rd.U64()
	if h.rd.Err() != nil {
		return false // no id to address an Error reply to
	}
	// In-flight accounting: the replies still buffered plus this request.
	maxUint64(&h.s.inflightHW, uint64(h.outN)+1)
	m := h.s.cfg.Monitor
	switch kind {
	case codec.KindWireIngest:
		session, seq := h.rd.U64(), h.rd.U64()
		sid, ok := h.streamID()
		if !ok {
			return h.replyErr(id, "bad ingest payload")
		}
		var o detectors.Observation
		h.slabF, o = decodeObs(&h.rd, h.growSlab(h.rd.Remaining()))
		if h.rd.Done() != nil {
			return h.replyErr(id, "bad ingest payload")
		}
		// Claim before shed: a duplicate of an already-committed request
		// must ack OK even under overload — the work is already done.
		state, token := h.claim(session, sid, seq)
		switch state {
		case claimApplied:
			return h.reply(id, codec.KindWireOK)
		case claimAged:
			return h.replyErr(id, errSeqAged)
		}
		if h.shed(sid) {
			h.settle(session, sid, seq, token, false)
			return h.reply(id, codec.KindWireBusy)
		}
		if err := m.Ingest(sid, o); err != nil {
			h.settle(session, sid, seq, token, false)
			return h.replyErr(id, err.Error())
		}
		h.settle(session, sid, seq, token, true)
		return h.reply(id, codec.KindWireOK)

	case codec.KindWireIngestBatch, codec.KindWireTryIngestBatch:
		session, seq := h.rd.U64(), h.rd.U64()
		sid, obs, ok := h.decodeBatch()
		if !ok {
			return h.replyErr(id, "bad batch payload")
		}
		state, token := h.claim(session, sid, seq)
		switch state {
		case claimApplied:
			return h.reply(id, codec.KindWireOK)
		case claimAged:
			return h.replyErr(id, errSeqAged)
		}
		if kind == codec.KindWireTryIngestBatch {
			if h.shed(sid) {
				h.settle(session, sid, seq, token, false)
				return h.reply(id, codec.KindWireBusy)
			}
			accepted, err := m.TryIngestBatch(sid, obs)
			if err != nil {
				h.settle(session, sid, seq, token, false)
				return h.replyErr(id, err.Error())
			}
			if !accepted {
				h.settle(session, sid, seq, token, false)
				return h.reply(id, codec.KindWireBusy)
			}
			h.settle(session, sid, seq, token, true)
			return h.reply(id, codec.KindWireOK)
		}
		if h.shed(sid) {
			h.settle(session, sid, seq, token, false)
			return h.reply(id, codec.KindWireBusy)
		}
		if err := m.IngestBatch(sid, obs); err != nil {
			h.settle(session, sid, seq, token, false)
			return h.replyErr(id, err.Error())
		}
		h.settle(session, sid, seq, token, true)
		return h.reply(id, codec.KindWireOK)

	case codec.KindWireSubscribe:
		buffer := int(h.rd.U32())
		if h.rd.Done() != nil {
			return h.replyErr(id, "bad subscribe payload")
		}
		if buffer <= 0 {
			buffer = h.s.cfg.SubscriberBuffer
		}
		sub, err := m.Subscribe(buffer)
		if err != nil {
			return h.replyErr(id, err.Error())
		}
		// The pump goroutine owns the write side of the socket from here, so
		// the OK — and any replies coalesced behind it — must be flushed
		// before it starts; this goroutine then only watches for EOF (see
		// handle).
		if !h.reply(id, codec.KindWireOK) || !h.flushReplies() {
			sub.Close()
			return false
		}
		h.sub = sub
		h.pumpDone = make(chan struct{})
		go h.pump()
		return true

	case codec.KindWireSnapshotReq:
		if h.rd.Done() != nil {
			return h.replyErr(id, "bad snapshot payload")
		}
		h.json = h.s.wireSnapshot().AppendJSON(h.json[:0])
		mark := h.out.BeginFrame(codec.KindWireSnapshot)
		h.out.U64(id)
		h.out.U32(uint32(len(h.json)))
		h.out.Write(h.json)
		return h.endReply(mark)

	case codec.KindWireEvict:
		sid, ok := h.streamID()
		if !ok || h.rd.Done() != nil {
			return h.replyErr(id, "bad evict payload")
		}
		if err := m.Evict(sid); err != nil {
			return h.replyErr(id, err.Error())
		}
		return h.reply(id, codec.KindWireOK)

	case codec.KindWireFlush:
		if h.rd.Done() != nil {
			return h.replyErr(id, "bad flush payload")
		}
		if err := m.FlushCheckpoints(); err != nil {
			return h.replyErr(id, err.Error())
		}
		return h.reply(id, codec.KindWireOK)

	case codec.KindWireMigrate:
		sid, ok := h.streamID()
		if !ok || h.rd.Done() != nil {
			return h.replyErr(id, "bad migrate payload")
		}
		// Blocks this connection (like IngestBatch) until the shard applied
		// everything queued ahead and serialized the state; the spill-first
		// export makes a retried Migrate after a lost reply re-read the same
		// bytes from the checkpoint store.
		frame, err := m.ExportStream(sid)
		if err != nil {
			return h.replyErr(id, err.Error())
		}
		mark := h.out.BeginFrame(codec.KindWireState)
		h.out.U64(id)
		h.out.U32(uint32(len(frame)))
		h.out.Write(frame)
		return h.endReply(mark)

	case codec.KindWireHandoff:
		sid, ok := h.streamID()
		if !ok {
			return h.replyErr(id, "bad handoff payload")
		}
		state := h.rd.Blob()
		if h.rd.Err() != nil || h.rd.Done() != nil {
			return h.replyErr(id, "bad handoff payload")
		}
		// ImportStream waits for the shard to decode before returning, so
		// the payload view is safe to hand over.
		if err := m.ImportStream(sid, state); err != nil {
			return h.replyErr(id, err.Error())
		}
		return h.reply(id, codec.KindWireOK)

	case codec.KindWireLastDrift:
		sid, ok := h.streamID()
		if !ok || h.rd.Done() != nil {
			return h.replyErr(id, "bad last-drift payload")
		}
		// Cold path (operator query): the JSON allocation is fine here.
		var data []byte
		if rep, found := m.LastDrift(sid); found {
			d, err := json.Marshal(rep)
			if err != nil {
				return h.replyErr(id, err.Error())
			}
			data = d
		}
		// A zero-length blob means "no drift recorded yet" — a report never
		// marshals to empty JSON.
		mark := h.out.BeginFrame(codec.KindWireDrift)
		h.out.U64(id)
		h.out.U32(uint32(len(data)))
		h.out.Write(data)
		return h.endReply(mark)

	case codec.KindWireStreams:
		if h.rd.Done() != nil {
			return h.replyErr(id, "bad streams payload")
		}
		ids, err := m.StreamIDs()
		if err != nil {
			return h.replyErr(id, err.Error())
		}
		mark := h.out.BeginFrame(codec.KindWireStreamIDs)
		h.out.U64(id)
		h.out.U32(uint32(len(ids)))
		for _, sid := range ids {
			h.out.Str(sid)
		}
		return h.endReply(mark)

	default:
		// Unknown kind: the peer speaks a different protocol revision (the
		// wire kinds move to a new numeric block on incompatible payload
		// changes — see internal/codec) or is corrupt; answer once and hang
		// up rather than misparse.
		h.replyErr(id, fmt.Sprintf("unknown request kind %d (wire protocol version skew?)", kind))
		return false
	}
}

// errSeqAged is the Error-reply message for a seq that fell out of the
// exactly-once window undecided (see dedup.go): acking it could report
// silent data loss as success, so the client must surface the failure.
const errSeqAged = "ingest seq aged out of the exactly-once window undecided; not applied"

// claim atomically resolves (session, stream, seq) against the exactly-once
// window, waiting out a concurrent ingest of the same seq on another
// connection (the reconnect-resend race: the old connection's handler may
// still be blocked inside the monitor's enqueue when the resend arrives).
// A claimOwned result obliges the caller to settle the returned token on
// every outcome path. Session 0 marks a client without retry identity and
// bypasses deduplication (claimOwned with token 0; settle no-ops).
func (h *connHandler) claim(session uint64, sid string, seq uint64) (claimState, uint64) {
	d := h.s.dedup
	if d == nil || session == 0 {
		return claimOwned, 0
	}
	return d.claim(session, sid, seq)
}

// settle resolves a claimOwned ingest: committed on success, released (the
// seq stays fresh for a retry) on shed or error.
func (h *connHandler) settle(session uint64, sid string, seq uint64, token uint64, committed bool) {
	if token != 0 {
		h.s.dedup.settle(session, sid, seq, token, committed)
	}
}

// shed reports whether overload shedding refuses work for sid's shard right
// now (queue occupancy at or above Config.ShedHighWater of capacity),
// counting the refusal.
func (h *connHandler) shed(sid string) bool {
	hw := h.s.cfg.ShedHighWater
	if hw <= 0 {
		return false
	}
	q, capacity := h.s.cfg.Monitor.QueuePressure(sid)
	if float64(q) < hw*float64(capacity) {
		return false
	}
	h.s.shedded.Add(1)
	return true
}

// streamID reads a length-prefixed stream ID, interning it so steady-state
// traffic for known streams does not allocate.
func (h *connHandler) streamID() (string, bool) {
	b := h.rd.Blob()
	if h.rd.Err() != nil {
		return "", false
	}
	if sid, ok := h.names[string(b)]; ok {
		return sid, true
	}
	sid := string(b)
	if len(h.names) < maxInternedNames {
		h.names[sid] = sid
	}
	return sid, true
}

// growSlab resets the float slab with capacity for every float the rest of
// the payload could possibly hold, so per-observation appends never
// relocate earlier observations' views.
func (h *connHandler) growSlab(payloadBytes int) []float64 {
	need := payloadBytes / 8
	if cap(h.slabF) < need {
		h.slabF = make([]float64, 0, need)
	}
	return h.slabF[:0]
}

// decodeBatch decodes an IngestBatch/TryIngestBatch payload into the
// connection's pooled slabs.
func (h *connHandler) decodeBatch() (string, []detectors.Observation, bool) {
	sid, ok := h.streamID()
	if !ok {
		return "", nil, false
	}
	n := int(h.rd.U32())
	if h.rd.Err() != nil || n*minObsBytes > h.rd.Remaining() {
		return "", nil, false
	}
	slab := h.growSlab(h.rd.Remaining())
	if cap(h.slabObs) < n {
		h.slabObs = make([]detectors.Observation, n)
	}
	obs := h.slabObs[:n]
	for i := range obs {
		slab, obs[i] = decodeObs(&h.rd, slab)
	}
	h.slabF = slab
	if h.rd.Done() != nil {
		return "", nil, false
	}
	return sid, obs, true
}

// reply buffers a payload-less reply (OK / Busy) carrying the request id.
func (h *connHandler) reply(id uint64, kind uint8) bool {
	mark := h.out.BeginFrame(kind)
	h.out.U64(id)
	return h.endReply(mark)
}

// replyErr buffers an Error reply with a message; the connection stays open
// (the framing is intact, only the request was bad).
func (h *connHandler) replyErr(id uint64, msg string) bool {
	mark := h.out.BeginFrame(codec.KindWireError)
	h.out.U64(id)
	h.out.Str(msg)
	return h.endReply(mark)
}

// endReply seals a reply frame begun in h.out. Replies normally stay
// buffered until the flush-on-idle point in handle; past replyFlushBytes
// the buffer is flushed here to bound latency and memory.
func (h *connHandler) endReply(mark int) bool {
	h.out.EndFrame(mark)
	h.outN++
	if h.out.Len() >= replyFlushBytes {
		return h.flushReplies()
	}
	return true
}

// flushReplies writes every buffered reply frame in one socket write,
// crediting the frames beyond the first as coalesced (syscalls saved).
func (h *connHandler) flushReplies() bool {
	if h.outN == 0 {
		return true
	}
	if h.outN > 1 {
		h.s.repliesCoalesced.Add(uint64(h.outN - 1))
	}
	_, err := h.nc.Write(h.out.Bytes())
	h.out.Reset()
	h.outN = 0
	return err == nil
}

// pumpBatch bounds how many queued events one pump iteration coalesces into
// a single vector write.
const pumpBatch = 64

// pump streams the connection's subscription to the socket. It owns its own
// scratch (the request loop no longer writes once a subscription exists)
// and exits when the subscription channel closes — via Subscription.Close
// on connection teardown, via monitor-side slow-subscriber eviction, or via
// Monitor.Close. A drift burst that queues faster than one event per write
// is drained in batches: the frames are encoded back to back in one buffer
// and pushed with a single vector write (writev), so fan-out under load
// costs ~1 syscall per drain instead of per event.
func (h *connHandler) pump() {
	defer close(h.pumpDone)
	defer h.nc.Close() // wake the request loop if it outlives us
	b := codec.NewBuffer(nil)
	// frames is the master net.Buffers backing; the header copy handed to
	// WriteTo is consumed/advanced, the master keeps its capacity. wv lives
	// out here because WriteTo's pointer receiver makes it escape — one heap
	// cell per pump instead of one allocation per vector write.
	frames := make(net.Buffers, 0, pumpBatch)
	var wv net.Buffers
	offs := make([]int, 0, pumpBatch+1)
	encode := func(ev monitor.Event) {
		mark := b.BeginFrame(codec.KindWireEvent)
		b.U64(0) // events are pushes, not replies
		b.Str(ev.StreamID)
		b.U64(ev.Seq)
		b.I64(ev.At.UnixNano())
		b.Ints(ev.Classes)
		// Flight-recorder record as a JSON blob (len 0 when absent — e.g. a
		// Warning event, or a detector without a recorder). Drift events are
		// rare, so the marshal allocation stays off the ingest hot path.
		if ev.Record != nil {
			if rec, err := json.Marshal(ev.Record); err == nil {
				b.U32(uint32(len(rec)))
				b.Write(rec)
			} else {
				b.U32(0)
			}
		} else {
			b.U32(0)
		}
		b.EndFrame(mark)
		offs = append(offs, b.Len())
	}
	for ev := range h.sub.Events() {
		b.Reset()
		offs = append(offs[:0], 0)
		encode(ev)
	coalesce:
		for len(offs) <= pumpBatch {
			select {
			case next, ok := <-h.sub.Events():
				if !ok {
					break coalesce // flush what we have; the outer range ends too
				}
				encode(next)
			default:
				break coalesce
			}
		}
		n := len(offs) - 1
		var err error
		if n == 1 {
			_, err = h.nc.Write(b.Bytes())
		} else {
			all := b.Bytes()
			frames = frames[:0]
			for i := 0; i < n; i++ {
				frames = append(frames, all[offs[i]:offs[i+1]])
			}
			wv = frames
			_, err = wv.WriteTo(h.nc)
			if err == nil {
				h.s.repliesCoalesced.Add(uint64(n - 1))
			}
		}
		if err != nil {
			// Peer gone: detach so the monitor stops queueing for us, and
			// drain what it already queued so the channel close can proceed.
			h.sub.Close()
			for range h.sub.Events() {
			}
			return
		}
	}
}
