package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
	"rbmim/internal/telemetry"
	"rbmim/internal/telemetry/telemetrytest"
)

// recordingDriftEveryN is wireDriftEveryN plus the flight-recorder
// capability the monitor attaches to events: a deterministic record built
// from the update counter, so the test can assert exact round-trip bytes.
type recordingDriftEveryN struct {
	wireDriftEveryN
}

func (d *recordingDriftEveryN) LastDriftRecord() *core.DriftRecord {
	return &core.DriftRecord{
		Batch:   d.updates,
		Classes: []int{d.class},
		Samples: []core.DriftSample{
			{Batch: d.updates - 1, Class: d.class, Err: 0.75, Slope: 0.0625, Width: d.updates},
		},
	}
}

// TestServerReadyz covers the readiness split: /readyz answers 200 while
// serving, 503 once the server starts draining, and /healthz stays a
// liveness-only 200 throughout.
func TestServerReadyz(t *testing.T) {
	srv, _, _ := newTestServer(t, monitor.Config{
		NewDetector: func(string) (detectors.Detector, error) { return nullDetector{}, nil },
	}, Config{HTTPAddr: "127.0.0.1:0"})

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.HTTPAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz while serving = %d %q, want 200 ready", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while serving = %d, want 200", code)
	}

	// Flip the readiness gate the way Close does (Close's first store),
	// with the sidecar still up: the draining window a load balancer sees.
	srv.ready.Store(false)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz while draining = %d %q, want 503 draining", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200 (liveness is not readiness)", code)
	}
}

// TestFlightRecorderWire round-trips a drift flight record end to end: the
// event frame carries the record to subscribers, and LastDrift retrieves
// the same report on demand — including from a different connection.
func TestFlightRecorderWire(t *testing.T) {
	_, _, c := newTestServer(t, monitor.Config{
		Shards: 2,
		NewDetector: func(string) (detectors.Detector, error) {
			return &recordingDriftEveryN{wireDriftEveryN{n: 10, class: 2}}, nil
		},
	}, Config{})
	sub, err := c.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	obs := testObs(4, 25)
	if err := c.IngestBatch("drifty", obs); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestBatch("calm", obs[:5]); err != nil {
		t.Fatal(err)
	}
	for _, wantSeq := range []uint64{10, 20} {
		select {
		case ev := <-sub.Events():
			if ev.StreamID != "drifty" || ev.Seq != wantSeq {
				t.Fatalf("event = %q/%d, want drifty/%d", ev.StreamID, ev.Seq, wantSeq)
			}
			rec := ev.Record
			if rec == nil {
				t.Fatalf("event seq %d carries no flight record", wantSeq)
			}
			if rec.Batch != int(wantSeq) || len(rec.Classes) != 1 || rec.Classes[0] != 2 {
				t.Fatalf("record = batch %d classes %v, want batch %d classes [2]", rec.Batch, rec.Classes, wantSeq)
			}
			want := core.DriftSample{Batch: int(wantSeq) - 1, Class: 2, Err: 0.75, Slope: 0.0625, Width: int(wantSeq)}
			if len(rec.Samples) != 1 || rec.Samples[0] != want {
				t.Fatalf("record samples = %+v, want [%+v]", rec.Samples, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for event seq %d", wantSeq)
		}
	}

	// LastDrift from a second connection: the report is server state, not
	// subscription state.
	c2, err := Dial(c.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rep, found, err := c2.LastDrift("drifty")
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("LastDrift(drifty) found nothing after two drift events")
	}
	if rep.StreamID != "drifty" || rep.Seq != 20 {
		t.Fatalf("report = %q/%d, want drifty/20", rep.StreamID, rep.Seq)
	}
	if len(rep.Classes) != 1 || rep.Classes[0] != 2 {
		t.Fatalf("report classes = %v, want [2]", rep.Classes)
	}
	if rep.Record == nil || rep.Record.Batch != 20 || len(rep.Record.Samples) != 1 {
		t.Fatalf("report record = %+v, want batch 20 with one sample", rep.Record)
	}
	if rep.At.IsZero() || time.Since(rep.At) > time.Minute {
		t.Fatalf("report timestamp %v did not survive the wire", rep.At)
	}
	if _, found, err := c2.LastDrift("calm"); err != nil || found {
		t.Fatalf("LastDrift(calm) = found %v err %v, want not found on an undrifted stream", found, err)
	}
	if _, found, err := c2.LastDrift("no-such-stream"); err != nil || found {
		t.Fatalf("LastDrift(no-such-stream) = found %v err %v, want not found", found, err)
	}
}

// TestServerTelemetryStages checks the full telemetry path over the wire:
// server-side serve_* stages land in the snapshot, client-side rtt_* stages
// land in Client.Latency, and the HTTP sidecar exports both as conformant
// Prometheus histogram series.
func TestServerTelemetryStages(t *testing.T) {
	srv, _, c := newTestServer(t, monitor.Config{
		Detector: core.Config{Features: 8, Classes: 3, Seed: 7},
		Shards:   2,
	}, Config{HTTPAddr: "127.0.0.1:0"})

	obs := testObs(8, 48)
	if err := c.Ingest("alpha", obs[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestBatch("alpha", obs[1:]); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	stages := make(map[string]uint64)
	for _, st := range sn.Latency {
		stages[st.Stage] = st.Count
	}
	for _, want := range []string{"serve_ingest", "serve_ingest_batch", "queue_wait", "detector_update"} {
		if stages[want] == 0 {
			t.Fatalf("snapshot latency lacks stage %q (have %v)", want, sn.Latency)
		}
	}
	if got := stages["serve_ingest"]; got != 1 {
		t.Fatalf("serve_ingest count = %d, want 1", got)
	}

	lat := c.Latency()
	rtt := make(map[string]uint64)
	for _, st := range lat {
		rtt[st.Stage] = st.Count
	}
	// Ingest + IngestBatch + Snapshot have completed round trips by now.
	for _, want := range []string{"rtt_ingest", "rtt_ingest_batch", "rtt_snapshot"} {
		if rtt[want] == 0 {
			t.Fatalf("client latency lacks stage %q (have %v)", want, lat)
		}
	}
	for _, st := range lat {
		if st.P50NS <= 0 || st.P99NS < st.P50NS {
			t.Fatalf("stage %q quantiles p50=%d p99=%d are not ordered", st.Stage, st.P50NS, st.P99NS)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.HTTPAddr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)
	if !strings.Contains(exposition, `rbmim_stage_seconds_bucket{stage="serve_ingest_batch",le=`) {
		t.Fatalf("/metrics lacks serve_ingest_batch histogram series:\n%s", exposition)
	}
	telemetrytest.CheckHistogramExposition(t, exposition, "rbmim_stage_seconds")
}

// TestServerTelemetryOff verifies the off switch removes every histogram
// without touching replies: the same workload serves fine and the snapshot
// exports no latency stages.
func TestServerTelemetryOff(t *testing.T) {
	_, _, c := newTestServer(t, monitor.Config{
		Detector:  core.Config{Features: 8, Classes: 3, Seed: 7},
		Telemetry: telemetry.Off,
	}, Config{Telemetry: telemetry.Off})

	if err := c.IngestBatch("alpha", testObs(8, 16)); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.Latency) != 0 {
		t.Fatalf("snapshot with telemetry off has latency stages %v, want none", sn.Latency)
	}
	if sn.Ingested != 16 {
		t.Fatalf("ingested = %d, want 16 (telemetry off must not change serving)", sn.Ingested)
	}
}
