package server

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	mrand "math/rand"
	"sync"
	"time"
)

// Failure taxonomy and retry policy for the reconnecting client.
//
// Every error the client surfaces carries a class, because the right
// reaction differs per class and only the client knows which one it saw:
//
//   - transport (dial/read/write failures, stalls, the server draining):
//     retryable by reconnecting — the request may or may not have been
//     applied, which is exactly what the exactly-once session/seq layer
//     (see dedup.go) makes safe to resend;
//   - protocol (framing corruption, reply id mismatches, unsolicited
//     replies): also cleared by a reconnect — a fresh connection abandons
//     the poisoned stream (e.g. the second reply to a duplicated frame)
//     and the resent requests dedup server-side;
//   - Busy (overload shed or a full Try queue): the connection is healthy,
//     the server is not; retryable after a backoff, with the same seq;
//   - app (the server's Error reply, local misuse): resending the same
//     request reproduces the same failure — never retried;
//   - closed / deadline: the caller's own doing; never retried.

// ErrBusy is the error a Busy reply resolves to on the blocking ingest
// paths: the server is shedding load (Config.ShedHighWater) or refusing a
// full Try queue. Retryable after a backoff; Client.Ingest and
// Client.IngestBatch retry it themselves up to RetryPolicy.BusyAttempts.
var ErrBusy = errors.New("server: busy (overload shed)")

// ErrDeadlineExceeded is returned when a request's deadline
// (RetryPolicy.RequestTimeout, Pending.WaitTimeout/WaitDeadline) expires
// before its reply. The request itself is not cancelled — the server may
// still apply it; a later retry of the same seq dedups.
var ErrDeadlineExceeded = errors.New("server: request deadline exceeded")

// ErrServerDrain marks a connection the server closed cleanly at a frame
// boundary — a graceful drain (shutdown, restart), as opposed to a cut
// connection, which surfaces as an error satisfying
// errors.Is(err, io.ErrUnexpectedEOF).
var ErrServerDrain = errors.New("server: connection closed by server (clean end of stream)")

// ErrorClass is the retry-relevant classification of a client error; see
// Classify and the taxonomy above.
type ErrorClass uint8

const (
	// ClassApp is a request the server (or the local call) rejected on its
	// merits; retrying reproduces the failure.
	ClassApp ErrorClass = iota
	// ClassTransport is a connection-level failure (dial, read, write,
	// stall, server drain); retryable by reconnecting.
	ClassTransport
	// ClassProtocol is framing or reply-matching corruption; retryable by
	// reconnecting (the fresh connection abandons the poisoned stream).
	ClassProtocol
	// ClassBusy is the server shedding load; retryable after a backoff.
	ClassBusy
	// ClassClosed is the client's own Close; never retried.
	ClassClosed
	// ClassDeadline is the caller's expired deadline; never retried.
	ClassDeadline
)

// classedError attaches an ErrorClass to an error; errors.Is/As reach the
// wrapped cause through Unwrap.
type classedError struct {
	class ErrorClass
	err   error
}

func (e *classedError) Error() string { return e.err.Error() }
func (e *classedError) Unwrap() error { return e.err }

func classed(class ErrorClass, err error) error { return &classedError{class, err} }

// Singletons for the hot failure paths, so classifying costs no allocation.
var (
	errBusyClassed     = classed(ClassBusy, ErrBusy)
	errClosedClassed   = classed(ClassClosed, ErrClientClosed)
	errDeadlineClassed = classed(ClassDeadline, ErrDeadlineExceeded)
)

// Classify returns the retry-relevant class of an error returned by Client,
// ClientPool, Pending, or Subscription methods. Unrecognized errors
// classify as ClassApp (not retryable) — the conservative default.
func Classify(err error) ErrorClass {
	var ce *classedError
	if errors.As(err, &ce) {
		return ce.class
	}
	switch {
	case errors.Is(err, ErrClientClosed):
		return ClassClosed
	case errors.Is(err, ErrBusy):
		return ClassBusy
	case errors.Is(err, ErrDeadlineExceeded):
		return ClassDeadline
	}
	return ClassApp
}

// retryable reports whether an epoch death with this error is worth a
// reconnect (see RetryPolicy.Reconnect).
func retryable(err error) bool {
	switch Classify(err) {
	case ClassTransport, ClassProtocol, ClassBusy:
		return true
	}
	return false
}

// RetryPolicy configures how a Client survives failure. The zero value —
// what Dial and DialWindow use — disables every mechanism: a dead
// connection permanently fails the client (the pre-retry behavior), Busy
// surfaces immediately, requests wait forever. DefaultRetryPolicy is the
// production shape; DialRetry takes either.
type RetryPolicy struct {
	// Reconnect enables transparent recovery from transport and protocol
	// failures: the failed connection is torn down, a fresh one dialed with
	// exponential backoff, and every request that was in flight or queued
	// is resent in order — exactly once server-side, via the session/seq
	// dedup window.
	Reconnect bool
	// MaxDialAttempts bounds the redials of one outage; past it the client
	// permanently fails with the last dial error. Default 8.
	MaxDialAttempts int
	// BackoffBase is the first reconnect delay; each attempt doubles it up
	// to BackoffMax, and every delay is jittered to 0.5–1.5x so a fleet of
	// clients does not reconnect in lockstep. Defaults 20ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BusyAttempts is how many times the blocking ingest paths resend a
	// Busy-shed request (with the same seq) before surfacing ErrBusy; the
	// delay starts at BusyBackoff (default 2ms) and doubles up to
	// BackoffMax. 0 surfaces the first Busy.
	BusyAttempts int
	BusyBackoff  time.Duration
	// RequestTimeout bounds every synchronous call and Pending.Wait; past
	// it the call returns ErrDeadlineExceeded (the request is abandoned,
	// not cancelled — see Pending.WaitTimeout). 0 waits forever.
	RequestTimeout time.Duration
	// StallTimeout kills a connection that has requests in flight but has
	// not delivered a reply for this long — the black-holed connection
	// case, which neither read nor write errors ever surface. The kill is
	// an ordinary transport failure: with Reconnect set the client redials
	// and resends. 0 disables the watchdog.
	StallTimeout time.Duration
}

// DefaultRetryPolicy returns the production retry shape: reconnect with
// capped jittered exponential backoff, Busy retries, and a stall watchdog.
// Request timeouts stay opt-in.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Reconnect:       true,
		MaxDialAttempts: 8,
		BackoffBase:     20 * time.Millisecond,
		BackoffMax:      2 * time.Second,
		BusyAttempts:    8,
		BusyBackoff:     2 * time.Millisecond,
		StallTimeout:    30 * time.Second,
	}
}

// withDefaults fills the backoff-shape fields every mechanism shares.
// Enablement fields (Reconnect, BusyAttempts, RequestTimeout, StallTimeout)
// keep their zero = off semantics.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxDialAttempts <= 0 {
		p.MaxDialAttempts = 8
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 20 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	if p.BackoffMax < p.BackoffBase {
		p.BackoffMax = p.BackoffBase
	}
	if p.BusyBackoff <= 0 {
		p.BusyBackoff = 2 * time.Millisecond
	}
	return p
}

// jitter spreads d to a uniform 0.5–1.5x, decorrelating retry schedules
// across clients. math/rand's global source is locked and good enough —
// this runs once per backoff sleep, not per request.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(mrand.Int63n(int64(d)))
}

// newSessionID mints the client's nonzero random session id — its identity
// in the server's exactly-once dedup window. Collisions across clients
// would merge their windows; 64 random bits make that a non-concern at any
// realistic session count.
func newSessionID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano()) | 1
		}
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// seqTable assigns each stream's monotone per-stream sequence numbers (the
// other half of the exactly-once identity). Shared across a ClientPool's
// connections so a failover retry reuses the original seq. The hot path is
// a mutex-guarded map increment: no allocation after a stream's first
// request, and contention is trivial next to the frame encode around it.
type seqTable struct {
	mu sync.Mutex
	m  map[string]uint64
}

func newSeqTable() *seqTable { return &seqTable{m: make(map[string]uint64)} }

func (t *seqTable) next(streamID string) uint64 {
	t.mu.Lock()
	t.m[streamID]++
	v := t.m[streamID]
	t.mu.Unlock()
	return v
}
