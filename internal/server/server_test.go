package server

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rbmim/internal/codec"
	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
	"rbmim/internal/synth"
)

// nullDetector does nothing — it isolates the network + monitor path.
type nullDetector struct{}

func (nullDetector) Update(detectors.Observation) detectors.State { return detectors.None }
func (nullDetector) Reset()                                       {}
func (nullDetector) Name() string                                 { return "null" }

// wireDriftEveryN drifts deterministically every n observations.
type wireDriftEveryN struct {
	n, updates, class int
}

func (d *wireDriftEveryN) Update(detectors.Observation) detectors.State {
	d.updates++
	if d.updates%d.n == 0 {
		return detectors.Drift
	}
	return detectors.None
}
func (d *wireDriftEveryN) Reset()              {}
func (d *wireDriftEveryN) Name() string        { return "wireDriftEveryN" }
func (d *wireDriftEveryN) DriftClasses() []int { return []int{d.class} }

// newTestServer starts a monitor + server pair on loopback and returns a
// connected client. Cleanup tears all three down.
func newTestServer(t testing.TB, mcfg monitor.Config, scfg Config) (*Server, *monitor.Monitor, *Client) {
	t.Helper()
	m, err := monitor.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Monitor = m
	srv, err := New(scfg)
	if err != nil {
		m.Close()
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		srv.Close()
		m.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
		m.Close()
	})
	return srv, m, c
}

func testObs(features, n int) []detectors.Observation {
	gen, err := synth.NewRBF(synth.Config{Features: features, Classes: 3, Seed: 11}, 3, 0.08)
	if err != nil {
		panic(err)
	}
	obs := make([]detectors.Observation, n)
	for i := range obs {
		in := gen.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	return obs
}

// TestServerRoundTrip drives every request kind end to end and checks the
// monitor's counters through the wire snapshot.
func TestServerRoundTrip(t *testing.T) {
	store := monitor.NewMemStore()
	_, _, c := newTestServer(t, monitor.Config{
		Detector:   core.Config{Features: 8, Classes: 3, Seed: 7},
		Shards:     2,
		Checkpoint: monitor.CheckpointConfig{Store: store, Interval: time.Hour},
	}, Config{})

	obs := testObs(8, 64)
	if err := c.Ingest("alpha", obs[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestBatch("alpha", obs[1:33]); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestBatch("beta", obs[33:]); err != nil {
		t.Fatal(err)
	}
	ok, err := c.TryIngestBatch("beta", obs[:8])
	if err != nil || !ok {
		t.Fatalf("TryIngestBatch = (%v, %v), want accepted", ok, err)
	}
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Ingested != 72 || sn.Streams != 2 {
		t.Fatalf("snapshot after ingest: Ingested=%d Streams=%d, want 72/2", sn.Ingested, sn.Streams)
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d checkpoints after flush, want 2", store.Len())
	}
	// Evict is async; the flush barrier makes it visible.
	if err := c.Evict("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err = c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Streams != 1 {
		t.Fatalf("streams after evict = %d, want 1", sn.Streams)
	}
	// Observations with per-class scores survive the wire.
	scored := obs[0]
	scored.Scores = []float64{0.2, 0.5, 0.3}
	if err := c.Ingest("gamma", scored); err != nil {
		t.Fatal(err)
	}
}

// TestServerSubscribe checks the event path: a subscribed connection
// receives every drift with stream, sequence, and attributed classes.
func TestServerSubscribe(t *testing.T) {
	_, _, c := newTestServer(t, monitor.Config{
		Shards: 2,
		NewDetector: func(string) (detectors.Detector, error) {
			return &wireDriftEveryN{n: 10, class: 2}, nil
		},
	}, Config{})
	sub, err := c.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	obs := testObs(4, 25)
	if err := c.IngestBatch("drifty", obs); err != nil {
		t.Fatal(err)
	}
	for _, wantSeq := range []uint64{10, 20} {
		select {
		case ev := <-sub.Events():
			if ev.StreamID != "drifty" || ev.Seq != wantSeq {
				t.Fatalf("event = %q/%d, want drifty/%d", ev.StreamID, ev.Seq, wantSeq)
			}
			if len(ev.Classes) != 1 || ev.Classes[0] != 2 {
				t.Fatalf("event classes = %v, want [2]", ev.Classes)
			}
			if ev.At.IsZero() || time.Since(ev.At) > time.Minute {
				t.Fatalf("event timestamp %v did not survive the wire", ev.At)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for event seq %d", wantSeq)
		}
	}
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
}

// blockingDetector parks inside Update until released, letting the test
// wedge a shard deterministically.
type blockingDetector struct {
	entered chan struct{}
	release chan struct{}
	blocked bool
}

func (d *blockingDetector) Update(detectors.Observation) detectors.State {
	if !d.blocked {
		d.blocked = true
		d.entered <- struct{}{}
		<-d.release
	}
	return detectors.None
}
func (d *blockingDetector) Reset()       {}
func (d *blockingDetector) Name() string { return "blocking" }

// TestServerBusyReply wedges the single shard and fills its ring queue
// (QueueSize 1 rounds up to the 2-slot ring minimum): TryIngestBatch must
// come back as a Busy reply — (false, nil) at the client — while blocking
// IngestBatch keeps its backpressure semantics.
func TestServerBusyReply(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	_, _, c := newTestServer(t, monitor.Config{
		Shards:    1,
		QueueSize: 1,
		NewDetector: func(string) (detectors.Detector, error) {
			return &blockingDetector{entered: entered, release: release}, nil
		},
	}, Config{})
	obs := testObs(4, 4)
	// First observation occupies the shard inside Update.
	if err := c.Ingest("s", obs[0]); err != nil {
		t.Fatal(err)
	}
	<-entered
	// Second and third fill the ring's two slots.
	if err := c.Ingest("s", obs[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest("s", obs[2]); err != nil {
		t.Fatal(err)
	}
	// A try-ingest now bounces with Busy.
	ok, err := c.TryIngestBatch("s", obs[3:])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("TryIngestBatch on a full queue reported accepted, want Busy")
	}
	close(release)
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Ingested != 3 || sn.Dropped != 1 {
		t.Fatalf("Ingested=%d Dropped=%d, want 3/1", sn.Ingested, sn.Dropped)
	}
}

// TestServerBadRequest: a well-framed but undecodable payload draws an
// Error reply and leaves the connection usable; a corrupt frame ends it.
func TestServerBadRequest(t *testing.T) {
	srv, _, c := newTestServer(t, monitor.Config{
		Detector: core.Config{Features: 8, Classes: 3, Seed: 7},
		Shards:   1,
	}, Config{})

	// Hand-roll a truncated ingest payload (id + stream ID, no observation).
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	b := codec.NewBuffer(nil)
	b.U64(1)
	b.Str("s")
	if _, err := nc.Write(codec.AppendFrame(nil, codec.KindWireIngest, b.Bytes())); err != nil {
		t.Fatal(err)
	}
	sc := codec.NewFrameScanner(nc)
	kind, body, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if kind != codec.KindWireError {
		t.Fatalf("reply kind %d, want Error", kind)
	}
	rd := codec.NewReader(body)
	if id := rd.U64(); id != 1 {
		t.Fatalf("error reply echoes id %d, want 1", id)
	}
	if msg := rd.Blob(); len(msg) == 0 {
		t.Fatal("error reply carries no message")
	}
	// The connection survives a payload error: a valid request still works.
	// Session 0 opts out of exactly-once dedup, so seq can be anything.
	obs := testObs(8, 1)
	b.Reset()
	b.U64(2)
	b.U64(0)
	b.U64(0)
	b.Str("s")
	encodeObs(b, obs[0])
	if _, err := nc.Write(codec.AppendFrame(nil, codec.KindWireIngest, b.Bytes())); err != nil {
		t.Fatal(err)
	}
	kind, body, err = sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	rd.Reset(body)
	if rd.U64(); kind != codec.KindWireOK {
		t.Fatalf("reply kind %d after recovery, want OK", kind)
	}

	// A frame with a corrupted CRC ends the connection.
	frame := codec.AppendFrame(nil, codec.KindWireIngest, b.Bytes())
	frame[len(frame)-1] ^= 0xFF
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.Next(); err == nil {
		t.Fatal("server kept talking after a corrupt frame")
	}

	// An unknown request kind draws an Error and a hangup on a fresh conn.
	nc2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	b.Reset()
	b.U64(9)
	if _, err := nc2.Write(codec.AppendFrame(nil, 99, b.Bytes())); err != nil {
		t.Fatal(err)
	}
	sc2 := codec.NewFrameScanner(nc2)
	if kind, _, err := sc2.Next(); err != nil || kind != codec.KindWireError {
		t.Fatalf("unknown kind: reply (%d, %v), want Error", kind, err)
	}
	if _, _, err := sc2.Next(); err != io.EOF {
		t.Fatalf("connection after unknown kind: %v, want EOF", err)
	}

	// The original client was unaffected throughout.
	if err := c.Ingest("t", obs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestServerMaxFrame: a frame declaring a payload over the configured bound
// is rejected without allocation and the connection is closed.
func TestServerMaxFrame(t *testing.T) {
	srv, _, _ := newTestServer(t, monitor.Config{
		Detector: core.Config{Features: 8, Classes: 3, Seed: 7},
		Shards:   1,
	}, Config{MaxFrame: 1024})
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write(codec.AppendFrame(nil, codec.KindWireIngestBatch, make([]byte, 4096))); err != nil {
		t.Fatal(err)
	}
	sc := codec.NewFrameScanner(nc)
	// The server hangs up without reading the oversized body, so the close
	// may surface as EOF or a reset — either way, no reply and no connection.
	if _, _, err := sc.Next(); err == nil {
		t.Fatal("server answered an over-limit frame")
	}
}

// TestServerGracefulShutdown: Close lets in-flight work finish, flushes a
// subscriber's queued events, and ends every connection; the monitor stays
// usable until its own Close.
func TestServerGracefulShutdown(t *testing.T) {
	m, err := monitor.New(monitor.Config{
		Shards: 1,
		NewDetector: func(string) (detectors.Detector, error) {
			return &wireDriftEveryN{n: 1, class: 0}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv, err := New(Config{Monitor: m})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe(256)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	const obsN = 50
	if err := c.IngestBatch("s", testObs(4, obsN)); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushCheckpoints(); err != nil { // all 50 events published
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Close() // idempotent
	// Every event queued before shutdown must still be delivered, then the
	// stream ends cleanly.
	got := 0
	for range sub.Events() {
		got++
	}
	if got != obsN {
		t.Fatalf("subscriber got %d events across shutdown, want %d", got, obsN)
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("subscription ended with error: %v", err)
	}
	// New connections are refused; the monitor itself still works.
	if _, err := Dial(srv.Addr()); err == nil {
		t.Fatal("Dial succeeded after server Close")
	}
	if err := m.Ingest("s", testObs(4, 1)[0]); err != nil {
		t.Fatalf("monitor must outlive the server: %v", err)
	}
}

// TestServerHTTPSidecar checks /healthz and the Prometheus /metrics payload.
func TestServerHTTPSidecar(t *testing.T) {
	srv, _, c := newTestServer(t, monitor.Config{
		Detector: core.Config{Features: 8, Classes: 3, Seed: 7},
		Shards:   2,
	}, Config{HTTPAddr: "127.0.0.1:0"})
	if err := c.IngestBatch("s", testObs(8, 32)); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.HTTPAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
	resp, err = http.Get("http://" + srv.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{"rbmim_ingested_total 32", "rbmim_streams 1", "# TYPE rbmim_drifts_total counter"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestClientIngestAllocs pins the acceptance criterion: the steady-state
// client batch-ingest path performs zero allocations per call, measured
// process-wide against a live server (whose own hot path must therefore be
// allocation-free too).
func TestClientIngestAllocs(t *testing.T) {
	if raceEnabled {
		// The race detector inflates allocation counts (and sync.Pool
		// deliberately drops items under race), so the 0-alloc bar is only
		// meaningful in a plain build.
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	_, _, c := newTestServer(t, monitor.Config{
		Shards:    1,
		QueueSize: 4096,
		NewDetector: func(string) (detectors.Detector, error) {
			return nullDetector{}, nil
		},
	}, Config{})
	obs := testObs(20, 256)
	// Warm every pool, map, and scratch buffer on both sides.
	for i := 0; i < 50; i++ {
		if err := c.IngestBatch("stream-1", obs); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.IngestBatch("stream-1", obs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state IngestBatch allocates %.2f allocs/op (process-wide), want 0", allocs)
	}
	single := testing.AllocsPerRun(100, func() {
		if err := c.Ingest("stream-1", obs[0]); err != nil {
			t.Fatal(err)
		}
	})
	if single > 0.5 {
		t.Fatalf("steady-state Ingest allocates %.2f allocs/op (process-wide), want 0", single)
	}
}

// TestServerConcurrentSoak is the -race soak: parallel batch producers over
// many streams with subscribers churning underneath, then a full teardown.
func TestServerConcurrentSoak(t *testing.T) {
	srv, m, c := newTestServer(t, monitor.Config{
		Shards:    4,
		QueueSize: 64,
		NewDetector: func(string) (detectors.Detector, error) {
			return &wireDriftEveryN{n: 7, class: 1}, nil
		},
	}, Config{})
	obs := testObs(8, 256)
	const (
		producers = 6
		rounds    = 40
		churners  = 3
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pc, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer pc.Close()
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("stream-%d-%d", p, r%8)
				if r%5 == 4 {
					if _, err := pc.TryIngestBatch(id, obs[:64]); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if err := pc.IngestBatch(id, obs[:64]); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	for s := 0; s < churners; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				sub, err := c.Subscribe(32)
				if err != nil {
					t.Error(err)
					return
				}
				// Read a few events (or give up quickly) and drop the
				// subscription mid-stream.
				for i := 0; i < 3; i++ {
					select {
					case <-sub.Events():
					case <-time.After(10 * time.Millisecond):
					}
				}
				sub.Close()
			}
		}()
	}
	wg.Wait()
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantMin := uint64(producers * rounds * 64 * 4 / 5) // Try batches may drop
	if sn.Ingested+sn.Dropped != uint64(producers*rounds*64) {
		t.Fatalf("Ingested+Dropped = %d, want %d", sn.Ingested+sn.Dropped, producers*rounds*64)
	}
	if sn.Ingested < wantMin {
		t.Fatalf("Ingested = %d, want >= %d", sn.Ingested, wantMin)
	}
	srv.Close()
	m.Close()
}

// TestServerCloseWithStuckSubscriber pins the shutdown liveness fix: a
// subscriber that stops reading fills the socket buffers and parks the
// server's event pump inside a write; Close must still terminate, via the
// DrainTimeout force phase.
func TestServerCloseWithStuckSubscriber(t *testing.T) {
	srv, m, c := newTestServer(t, monitor.Config{
		Shards:    1,
		QueueSize: 4096,
		NewDetector: func(string) (detectors.Detector, error) {
			return &wireDriftEveryN{n: 1, class: 0}, nil
		},
	}, Config{DrainTimeout: 200 * time.Millisecond})

	// A raw subscriber that never reads past the OK: no client-side loop
	// draining the socket, so the server's pump wedges once the kernel
	// buffers fill.
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	b := codec.NewBuffer(nil)
	b.U64(1)
	b.U32(64)
	if _, err := nc.Write(codec.AppendFrame(nil, codec.KindWireSubscribe, b.Bytes())); err != nil {
		t.Fatal(err)
	}
	if kind, _, err := codec.NewFrameScanner(nc).Next(); err != nil || kind != codec.KindWireOK {
		t.Fatalf("subscribe reply (%d, %v), want OK", kind, err)
	}
	// Every observation drifts: tens of thousands of event frames swamp the
	// unread socket. IngestBatch keeps the producer itself unblocked.
	obs := testObs(4, 1000)
	for i := 0; i < 40; i++ {
		if err := c.IngestBatch("s", obs); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v with a stuck subscriber; the drain timeout did not engage", elapsed)
	}
	m.Close()
}

// TestClientSubscriptionCloseUnblocks pins the client-side leak fix:
// closing a subscription whose channel is full (nobody reading) must let
// the decode goroutine exit, observable as the channel closing after the
// buffered events drain.
func TestClientSubscriptionCloseUnblocks(t *testing.T) {
	_, _, c := newTestServer(t, monitor.Config{
		Shards: 1,
		NewDetector: func(string) (detectors.Detector, error) {
			return &wireDriftEveryN{n: 1, class: 0}, nil
		},
	}, Config{})
	sub, err := c.Subscribe(8) // tiny local buffer, immediately saturated
	if err != nil {
		t.Fatal(err)
	}
	if err := c.IngestBatch("s", testObs(4, 200)); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	// Wait until the local queue is provably full (the loop goroutine is
	// then parked on the channel send).
	deadline := time.Now().Add(5 * time.Second)
	for len(sub.Events()) < 8 {
		if time.Now().After(deadline) {
			t.Fatal("subscription queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	sub.Close()
	// The loop must exit, closing the channel behind the buffered events.
	drained := 0
	timeout := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.Events():
			if !ok {
				if drained < 8 {
					t.Fatalf("channel closed after only %d events", drained)
				}
				return
			}
			drained++
		case <-timeout:
			t.Fatalf("channel never closed after Close (drained %d); decode goroutine leaked", drained)
		}
	}
}

// TestServerConcurrentDuplicateExactlyOnce pins the reconnect-resend race:
// a request blocked inside the monitor's enqueue on one connection and its
// duplicate (same session/stream/seq) arriving on another must commit
// exactly once — the duplicate waits for the first's outcome instead of
// passing the committed-check while the first has not committed yet.
func TestServerConcurrentDuplicateExactlyOnce(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv, _, c := newTestServer(t, monitor.Config{
		Shards:    1,
		QueueSize: 1, // rounds up to the 2-slot ring minimum
		NewDetector: func(string) (detectors.Detector, error) {
			return &blockingDetector{entered: entered, release: release}, nil
		},
	}, Config{})
	obs := testObs(4, 4)
	// Wedge the shard: one observation inside Update, two filling the ring.
	if err := c.Ingest("s", obs[0]); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := c.Ingest("s", obs[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest("s", obs[2]); err != nil {
		t.Fatal(err)
	}
	// Two raw connections send the same (session, stream, seq). The first
	// handler blocks inside Monitor.Ingest (full ring) before it can commit;
	// the duplicate must not ingest concurrently.
	ingestFrame := func() []byte {
		b := codec.NewBuffer(nil)
		b.U64(1)
		b.U64(7) // session
		b.U64(1) // seq
		b.Str("s")
		encodeObs(b, obs[3])
		return codec.AppendFrame(nil, codec.KindWireIngest, b.Bytes())
	}
	var conns [2]net.Conn
	for i := range conns {
		nc, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		conns[i] = nc
		if _, err := nc.Write(ingestFrame()); err != nil {
			t.Fatal(err)
		}
		// Let the first handler park inside the enqueue before the duplicate
		// arrives, maximizing the overlap the claim must serialize.
		time.Sleep(50 * time.Millisecond)
	}
	close(release)
	for i, nc := range conns {
		kind, _, err := codec.NewFrameScanner(nc).Next()
		if err != nil {
			t.Fatalf("conn %d reply: %v", i, err)
		}
		if kind != codec.KindWireOK {
			t.Fatalf("conn %d reply kind %d, want OK", i, kind)
		}
	}
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Ingested != 4 {
		t.Fatalf("Ingested = %d after a concurrent duplicate, want exactly 4", sn.Ingested)
	}
	if sn.DedupHits != 1 {
		t.Fatalf("DedupHits = %d, want 1 (the duplicate acked without re-ingesting)", sn.DedupHits)
	}
}

// TestServerSeqAgedRejected: a seq that fell out of the dedup window without
// ever committing is undecidable and must draw an Error reply — acking OK
// would report silent data loss (a Busy-shed retry deferred past the window)
// as success.
func TestServerSeqAgedRejected(t *testing.T) {
	srv, _, _ := newTestServer(t, monitor.Config{
		Shards: 1,
		NewDetector: func(string) (detectors.Detector, error) {
			return nullDetector{}, nil
		},
	}, Config{}) // default DedupWindow 1024
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	obs := testObs(4, 1)
	send := func(id, seq uint64) {
		t.Helper()
		b := codec.NewBuffer(nil)
		b.U64(id)
		b.U64(9) // session
		b.U64(seq)
		b.Str("s")
		encodeObs(b, obs[0])
		if _, err := nc.Write(codec.AppendFrame(nil, codec.KindWireIngest, b.Bytes())); err != nil {
			t.Fatal(err)
		}
	}
	sc := codec.NewFrameScanner(nc)
	send(1, 2000)
	if kind, _, err := sc.Next(); err != nil || kind != codec.KindWireOK {
		t.Fatalf("seq 2000 reply (%d, %v), want OK", kind, err)
	}
	// seq 1 is now 1999 behind maxSeq — beyond the 1024 window, never
	// committed: rejected, and nothing ingested for it.
	send(2, 1)
	kind, body, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if kind != codec.KindWireError {
		t.Fatalf("aged seq reply kind %d, want Error", kind)
	}
	rd := codec.NewReader(body)
	rd.U64()
	if msg := string(rd.Blob()); !strings.Contains(msg, "aged") {
		t.Fatalf("aged seq error %q does not explain the aging", msg)
	}
}

// TestServerWireRevisionSkew: a frame kind from wire protocol revision 1
// (16, the pre-session/seq Ingest) must fail fast with an "unknown request
// kind" Error and a hangup — never be misparsed under the revision-2 payload
// layout, where its first 16 payload bytes would be consumed as session/seq.
func TestServerWireRevisionSkew(t *testing.T) {
	srv, _, _ := newTestServer(t, monitor.Config{
		Detector: core.Config{Features: 8, Classes: 3, Seed: 7},
		Shards:   1,
	}, Config{})
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A well-formed revision-1 Ingest: id, stream ID, observation — no
	// session or seq.
	b := codec.NewBuffer(nil)
	b.U64(1)
	b.Str("s")
	encodeObs(b, testObs(8, 1)[0])
	const kindWireIngestRev1 = 16
	if _, err := nc.Write(codec.AppendFrame(nil, kindWireIngestRev1, b.Bytes())); err != nil {
		t.Fatal(err)
	}
	sc := codec.NewFrameScanner(nc)
	kind, body, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if kind != codec.KindWireError {
		t.Fatalf("revision-1 frame reply kind %d, want Error", kind)
	}
	rd := codec.NewReader(body)
	rd.U64()
	if msg := string(rd.Blob()); !strings.Contains(msg, "unknown request kind") {
		t.Fatalf("revision skew error %q does not name the unknown kind", msg)
	}
	if _, _, err := sc.Next(); err != io.EOF {
		t.Fatalf("connection after revision skew: %v, want EOF", err)
	}
}

// TestClientTryIngestBatchErrorNotAccepted pins the reply mapping: an Error
// reply must come back as (false, err), mirroring Monitor.TryIngestBatch.
func TestClientTryIngestBatchErrorNotAccepted(t *testing.T) {
	_, m, c := newTestServer(t, monitor.Config{
		Detector: core.Config{Features: 8, Classes: 3, Seed: 7},
		Shards:   1,
	}, Config{})
	m.Close() // the server now answers every ingest with an Error reply
	ok, err := c.TryIngestBatch("s", testObs(8, 4))
	if err == nil {
		t.Fatal("TryIngestBatch against a closed monitor returned no error")
	}
	if ok {
		t.Fatal("TryIngestBatch reported accepted=true alongside an error")
	}
}
