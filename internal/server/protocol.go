// Package server exposes a Monitor over TCP: a length-prefixed binary
// protocol built from internal/codec's versioned, CRC-protected frames, a
// serving loop whose steady-state ingest path allocates nothing, and a
// matching Client with the same property. See DESIGN.md ("Network serving
// layer") for the protocol-vs-gRPC decision record.
//
// # Wire protocol
//
// Every message is one codec frame (magic | version | kind | length |
// payload | CRC-32). Request payloads start with a uint64 request id that
// the matching reply echoes; replies are sent in request order on the same
// connection. The request kinds are Ingest, IngestBatch, TryIngestBatch,
// Subscribe, SnapshotReq, Evict, Flush, the cluster-migration trio
// Migrate, Handoff, and Streams, and LastDrift (fetch a stream's most
// recent drift report with its flight-recorder samples); replies are OK,
// Busy (a TryIngestBatch whose shard queue was full), Error (with a
// message), Snapshot (canonical JSON), State (a Migrate reply carrying the
// exported stream's checkpoint envelope), StreamIDs (a Streams reply
// listing resident streams), and Drift (a LastDrift reply carrying a JSON
// drift report, zero-length when the stream has not drifted). Event frames
// carry, after the classes, a length-prefixed JSON flight-recorder record
// (length 0 when absent) — the detector-internal samples leading up to the
// drift, attached server-side at publish time.
// Migrate serializes a stream's detector into the same envelope frame the
// checkpoint store holds, spills a copy, and removes the stream — a re-sent
// Migrate whose reply was lost re-reads the spilled copy, so retries return
// identical bytes. Handoff installs an exported envelope on the receiving
// server via the rehydration path and refuses a stream that is already
// resident, which is how a duplicate handoff after a lost ack surfaces (the
// cluster layer treats that refusal as success; see cluster.go). A
// connection that sends Subscribe receives an
// OK and then becomes a one-way event stream: the server pushes Event
// frames (request id 0) and treats any further request on that connection
// as a protocol error. Backpressure is explicit at every hop: IngestBatch
// blocks its own connection (never the accept loop), TryIngestBatch turns a
// full queue into a Busy reply, and a slow subscriber overflows its own
// bounded queue on the monitor side, where the drops are counted.
//
// An observation travels as X (length-prefixed float64s), the true and
// predicted labels, and optional per-class scores. Batch payloads carry the
// stream ID once and the observation count up front, so the server can
// decode straight into pooled slabs sized from the payload length.
//
// Ingest, IngestBatch, and TryIngestBatch payloads carry, between the
// request id and the stream ID, the client's session id and a per-stream
// sequence number (both uint64) — the exactly-once identity under retry: a
// reconnecting client resends requests whose acks were lost, and the server
// acks a (session, stream, seq) it already committed without re-ingesting
// (see dedup.go). The commit check is an atomic claim, not a lookup: a
// resend arriving on a new connection while the original request is still
// blocked inside the monitor's enqueue on the old one waits for that
// outcome instead of double-ingesting. A seq that fell out of the dedup
// window without ever committing is rejected with an Error reply — its fate
// is undecidable, and a false OK would be silent data loss. Session 0 opts
// out of deduplication. When overload shedding is enabled
// (Config.ShedHighWater) a blocking ingest for a saturated shard is refused
// with Busy, which a retrying client backs off and resends — with the same
// seq, so the eventual commit is still exactly once.
//
// The protocol has no handshake; version negotiation is by frame kind. The
// wire kind ids live in a numeric block that moves wholesale on any
// incompatible payload change (internal/codec documents the revisions), so
// a version-skewed peer draws one "unknown request kind" Error and a
// hangup — a clean incompatibility failure — instead of having its payload
// bytes misparsed under the new layout.
//
// # Parallel fan-in
//
// Each connection is served by its own goroutine, so N clients are N
// concurrent producers pushing into the monitor's per-shard MPSC rings
// (internal/monitor). No serialization happens on the server side: the
// rings take concurrent pushes directly, a stream's observations stay in
// its connection's send order (per-producer FIFO through one ring), and the
// monitor's ordering-equivalence guarantee — identical per-stream drift
// decisions at any shard/producer count — extends to wire-fed workloads.
// Replies stay in per-connection request order because each handler decodes
// and answers sequentially; only the detector work behind the rings fans
// out across cores.
package server

import (
	"rbmim/internal/codec"
	"rbmim/internal/detectors"
)

// minObsBytes is the smallest possible encoded observation (empty X, no
// scores): the length prefix, two int64 labels, and the scores flag. Batch
// decoding validates the declared count against it so a hostile count field
// cannot drive allocation.
const minObsBytes = 4 + 8 + 8 + 1

// encodeObs appends one observation to a request payload.
func encodeObs(b *codec.Buffer, o detectors.Observation) {
	b.F64s(o.X)
	b.Int(o.TrueClass)
	b.Int(o.Predicted)
	if o.Scores != nil {
		b.Bool(true)
		b.F64s(o.Scores)
	} else {
		b.Bool(false)
	}
}

// decodeObs reads one observation, appending its X and Scores onto slab and
// returning the grown slab with the observation viewing it. The caller must
// presize slab so the appends cannot relocate earlier observations' views
// (payloadLen/8 is a safe bound on the total floats in a payload).
func decodeObs(rd *codec.Reader, slab []float64) ([]float64, detectors.Observation) {
	var o detectors.Observation
	start := len(slab)
	slab = rd.F64sInto(slab)
	o.X = slab[start:len(slab):len(slab)]
	o.TrueClass = rd.Int()
	o.Predicted = rd.Int()
	if rd.Bool() {
		start = len(slab)
		slab = rd.F64sInto(slab)
		o.Scores = slab[start:len(slab):len(slab)]
	}
	return slab, o
}
