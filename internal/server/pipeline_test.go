package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rbmim/internal/codec"
	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
	"rbmim/internal/stream"
	"rbmim/internal/synth"
)

// testHash is a local FNV-1a so the test owns the per-stream detector seeds
// end to end (the monitor's default factory hash is unexported, and the
// equivalence check below must rebuild the exact detector a stream got).
func testHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func orderingDetectorConfig(id string) core.Config {
	return core.Config{
		Features: 8, Classes: 3, Seed: 11 ^ int64(testHash(id)),
		BatchSize: 25, WarmupBatches: 5, AdaptiveWindow: true,
	}
}

// buildWireWorkload generates a deterministic multi-stream workload with a
// sudden concept change halfway through each stream, so the equivalence
// check covers real drift decisions, not just quiet streams.
func buildWireWorkload(t *testing.T, streams, perStream int) map[string][]detectors.Observation {
	t.Helper()
	base := synth.Config{Features: 8, Classes: 3, Seed: 3}
	work := make(map[string][]detectors.Observation, streams)
	for s := 0; s < streams; s++ {
		before, err := synth.NewRBF(base, 3, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		afterCfg := base
		afterCfg.Seed = 200 + int64(s)
		after, err := synth.NewRBF(afterCfg, 3, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		src := stream.NewDriftStream(before, after, stream.Sudden, perStream/2, 0, 1)
		obs := make([]detectors.Observation, perStream)
		for i := range obs {
			in := src.Next()
			obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
		}
		work[fmt.Sprintf("stream-%d", s)] = obs
	}
	return work
}

// runWireWorkload pushes the workload through a fresh monitor+server over
// loopback — serially (one window-1 client, synchronous calls) or pipelined
// (a 2-connection ClientPool, window 16, 3 racing producers keeping a ring
// of async batches in flight) — and returns per-stream drift sequence
// numbers plus per-stream weight checksums restored from flushed
// checkpoints.
func runWireWorkload(t *testing.T, work map[string][]detectors.Observation, pipelined bool) (map[string][]uint64, map[string]uint64) {
	t.Helper()
	var mu sync.Mutex
	drifts := make(map[string][]uint64)
	store := monitor.NewMemStore()
	m, err := monitor.New(monitor.Config{
		Detector: core.Config{Classes: 3}, // sizes per-class stats; factory below overrides
		NewDetector: func(id string) (detectors.Detector, error) {
			return core.NewDetector(orderingDetectorConfig(id))
		},
		Shards:     4,
		QueueSize:  128,
		Checkpoint: monitor.CheckpointConfig{Store: store},
		OnDrift: func(ev monitor.Event) {
			mu.Lock()
			drifts[ev.StreamID] = append(drifts[ev.StreamID], ev.Seq)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv, err := New(Config{Monitor: m})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ids := make([]string, 0, len(work))
	for id := range work {
		ids = append(ids, id)
	}
	const block = 50
	if pipelined {
		pool, err := DialPool(srv.Addr(), 2, 16)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		const producers = 3
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			mine := make([]string, 0, len(ids)/producers+1)
			for i := p; i < len(ids); i += producers {
				mine = append(mine, ids[i])
			}
			wg.Add(1)
			go func(mine []string) {
				defer wg.Done()
				// Keep a ring of async batches in flight, interleaved across
				// the producer's streams so connections carry mixed traffic.
				var ring [8]Pending
				n := 0
				send := func(id string, obs []detectors.Observation) bool {
					if n >= len(ring) {
						if err := ring[n%len(ring)].Wait(); err != nil {
							t.Errorf("Wait: %v", err)
							return false
						}
					}
					p, err := pool.IngestBatchAsync(id, obs)
					if err != nil {
						t.Errorf("IngestBatchAsync(%s): %v", id, err)
						return false
					}
					ring[n%len(ring)] = p
					n++
					return true
				}
				for off := 0; ; off += block {
					sent := false
					for _, id := range mine {
						obs := work[id]
						if off >= len(obs) {
							continue
						}
						end := off + block
						if end > len(obs) {
							end = len(obs)
						}
						if !send(id, obs[off:end]) {
							return
						}
						sent = true
					}
					if !sent {
						break
					}
				}
				for i := 0; i < n && i < len(ring); i++ {
					if err := ring[i].Wait(); err != nil {
						t.Errorf("drain Wait: %v", err)
					}
				}
			}(mine)
		}
		wg.Wait()
		if err := pool.FlushCheckpoints(); err != nil {
			t.Fatal(err)
		}
	} else {
		c, err := DialWindow(srv.Addr(), 1)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for off := 0; ; off += block {
			sent := false
			for _, id := range ids {
				obs := work[id]
				if off >= len(obs) {
					continue
				}
				end := off + block
				if end > len(obs) {
					end = len(obs)
				}
				if err := c.IngestBatch(id, obs[off:end]); err != nil {
					t.Fatal(err)
				}
				sent = true
			}
			if !sent {
				break
			}
		}
		if err := c.FlushCheckpoints(); err != nil {
			t.Fatal(err)
		}
	}

	// Restore every stream's checkpoint into a fresh detector and checksum
	// the learned weights. The raw frame is NOT hashed directly: it also
	// carries the last drift's attributed class list, which is a block-union
	// and hence grouping-dependent — the weights are the bit-identity
	// guarantee.
	sums := make(map[string]uint64, len(ids))
	for _, id := range ids {
		data, ok, err := store.Get(id)
		if err != nil || !ok {
			t.Fatalf("checkpoint for %s after flush: ok=%v err=%v", id, ok, err)
		}
		det, err := core.NewDetector(orderingDetectorConfig(id))
		if err != nil {
			t.Fatal(err)
		}
		payload, err := codec.ExpectFrame(data, codec.KindMonitorStream)
		if err != nil {
			t.Fatalf("checkpoint frame for %s: %v", id, err)
		}
		if err := det.LoadStateBytes(payload[8:]); err != nil {
			t.Fatalf("restore %s: %v", id, err)
		}
		sums[id] = det.RBM().WeightChecksum()
	}
	return drifts, sums
}

// TestPipelinedOrderingEquivalence is the acceptance bar for the pipelined
// wire path: the same workload pushed through a window-1 serial client and
// through a multiplexed pool of window-16 pipelined connections with racing
// producers must yield identical per-stream drift decisions (sequence
// numbers at detection) and bit-identical detector weights. Consistent-hash
// connection affinity plus in-order per-connection processing is what makes
// this hold — a pool that sprayed one stream across connections would fail
// it.
func TestPipelinedOrderingEquivalence(t *testing.T) {
	streams, perStream := 6, 2500
	if testing.Short() {
		streams, perStream = 4, 1200
	}
	work := buildWireWorkload(t, streams, perStream)
	serialDrifts, serialSums := runWireWorkload(t, work, false)
	pipeDrifts, pipeSums := runWireWorkload(t, work, true)

	total := 0
	for id := range work {
		s, p := serialDrifts[id], pipeDrifts[id]
		if len(s) != len(p) {
			t.Fatalf("%s: %d drifts serial vs %d pipelined\nserial:    %v\npipelined: %v", id, len(s), len(p), s, p)
		}
		for i := range s {
			if s[i] != p[i] {
				t.Fatalf("%s: drift %d at seq %d serial vs %d pipelined", id, i, s[i], p[i])
			}
		}
		total += len(s)
		if serialSums[id] != pipeSums[id] {
			t.Fatalf("%s: weight checksum %x serial vs %x pipelined — detector state diverged", id, serialSums[id], pipeSums[id])
		}
	}
	if total == 0 {
		t.Fatal("no drift detected on any stream: the equivalence check is vacuous")
	}
}

// pipeClient wires a pipelined client to an in-memory fake server: the test
// gets the raw server end of the pipe and full control over reply bytes.
func pipeClient(window int) (*Client, net.Conn) {
	cliEnd, srvEnd := net.Pipe()
	return newPipelined("pipe", cliEnd, window), srvEnd
}

// readRequest reads one request frame off the fake server end and returns
// its kind and echoed id.
func readRequest(t *testing.T, sc *codec.FrameScanner) (uint8, uint64) {
	t.Helper()
	kind, body, err := sc.Next()
	if err != nil {
		t.Fatalf("fake server read: %v", err)
	}
	rd := codec.NewReader(body)
	id := rd.U64()
	if rd.Err() != nil {
		t.Fatalf("fake server parse: %v", rd.Err())
	}
	return kind, id
}

// TestPipelinedMidWindowCrash: the server dies with most of the window
// unacknowledged. Every pending caller must get an error — none may hang —
// and later calls must return the same sticky error.
func TestPipelinedMidWindowCrash(t *testing.T) {
	const window = 8
	c, srvEnd := pipeClient(window)
	defer c.Close()
	obs := testObs(4, 1)[0]

	done := make(chan error, window)
	go func() {
		// Fake server: ack the first request, swallow two more, then crash.
		sc := codec.NewFrameScanner(srvEnd)
		_, id := readRequest(t, sc)
		b := codec.NewBuffer(nil)
		b.U64(id)
		if _, err := srvEnd.Write(codec.AppendFrame(nil, codec.KindWireOK, b.Bytes())); err != nil {
			t.Errorf("fake server write: %v", err)
		}
		readRequest(t, sc)
		readRequest(t, sc)
		srvEnd.Close()
	}()

	var pend [window]Pending
	for i := range pend {
		p, err := c.IngestAsync("s", obs)
		if err != nil {
			t.Fatalf("IngestAsync %d: %v", i, err)
		}
		pend[i] = p
	}
	for i := range pend {
		go func(i int) { done <- pend[i].Wait() }(i)
	}
	okN, errN := 0, 0
	for i := 0; i < window; i++ {
		select {
		case err := <-done:
			if err == nil {
				okN++
			} else {
				errN++
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("mid-window crash hung a caller: %d/%d completions after 10s", okN+errN, window)
		}
	}
	if okN != 1 || errN != window-1 {
		t.Fatalf("completions after crash: %d ok / %d errors, want 1/%d", okN, errN, window-1)
	}
	// The failure is sticky: the client is dead, not wedged.
	if err := c.Ingest("s", obs); err == nil {
		t.Fatal("Ingest succeeded on a crashed client")
	}
}

// TestPipelinedReplyIDMismatch: a server echoing the wrong request id is a
// connection-fatal protocol error, surfaced to the waiting caller and sticky
// thereafter.
func TestPipelinedReplyIDMismatch(t *testing.T) {
	c, srvEnd := pipeClient(4)
	defer c.Close()
	go func() {
		sc := codec.NewFrameScanner(srvEnd)
		_, id := readRequest(t, sc)
		b := codec.NewBuffer(nil)
		b.U64(id ^ 0xFF) // corrupt the echo
		srvEnd.Write(codec.AppendFrame(nil, codec.KindWireOK, b.Bytes()))
	}()
	p, err := c.IngestAsync("s", testObs(4, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	err = p.Wait()
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("Wait after id mismatch = %v, want id-mismatch protocol error", err)
	}
	if err2 := c.FlushCheckpoints(); err2 == nil {
		t.Fatal("client survived an id-mismatch reply")
	}
}

// TestPipelinedUnsolicitedReply: a reply with nothing in flight kills the
// connection instead of being silently dropped.
func TestPipelinedUnsolicitedReply(t *testing.T) {
	c, srvEnd := pipeClient(4)
	defer c.Close()
	b := codec.NewBuffer(nil)
	b.U64(uint64(1)<<32 | 0)
	go srvEnd.Write(codec.AppendFrame(nil, codec.KindWireOK, b.Bytes()))
	deadline := time.Now().Add(10 * time.Second)
	for c.sticky() == nil {
		if time.Now().After(deadline) {
			t.Fatal("unsolicited reply never killed the client")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Ingest("s", testObs(4, 1)[0]); err == nil {
		t.Fatal("Ingest succeeded after an unsolicited reply")
	}
}

// TestPipelinedFragmentedReplies sweeps read-fragmentation over a window of
// interleaved pipelined replies: the fake server banks a full window of
// requests, then dribbles all the replies — OKs interleaved with an Error —
// in chunks of every awkward size. Reply matching and the per-slot payload
// copy must be boundary-proof.
func TestPipelinedFragmentedReplies(t *testing.T) {
	obs := testObs(4, 1)[0]
	for _, chunk := range []int{1, 2, 3, 7, 10, 13, 64, 1 << 20} {
		const n = 12
		c, srvEnd := pipeClient(n)
		fakeDone := make(chan struct{})
		go func() {
			defer close(fakeDone)
			defer srvEnd.Close()
			sc := codec.NewFrameScanner(srvEnd)
			ids := make([]uint64, n)
			for i := range ids {
				_, ids[i] = readRequest(t, sc)
			}
			// Build every reply back to back, then dribble the bytes.
			out := codec.NewBuffer(nil)
			for i, id := range ids {
				if i == 5 {
					mark := out.BeginFrame(codec.KindWireError)
					out.U64(id)
					out.Str("boom-5")
					out.EndFrame(mark)
					continue
				}
				mark := out.BeginFrame(codec.KindWireOK)
				out.U64(id)
				out.EndFrame(mark)
			}
			all := out.Bytes()
			for off := 0; off < len(all); off += chunk {
				end := off + chunk
				if end > len(all) {
					end = len(all)
				}
				if _, err := srvEnd.Write(all[off:end]); err != nil {
					t.Errorf("chunk %d: fake write: %v", chunk, err)
					return
				}
			}
		}()
		var pend [n]Pending
		for i := range pend {
			p, err := c.IngestAsync("s", obs)
			if err != nil {
				t.Fatalf("chunk %d: IngestAsync %d: %v", chunk, i, err)
			}
			pend[i] = p
		}
		for i := range pend {
			err := pend[i].Wait()
			if i == 5 {
				if err == nil || !strings.Contains(err.Error(), "boom-5") {
					t.Fatalf("chunk %d: request 5 = %v, want server error boom-5", chunk, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("chunk %d: request %d failed: %v", chunk, i, err)
			}
		}
		<-fakeDone
		c.Close()
	}
}

// TestClientCloseStickyRace is the satellite regression test: Close racing
// in-flight Ingest calls must never hang a caller or surface a raw
// connection-teardown error — after Close wins, every outcome is the sticky
// ErrClientClosed.
func TestClientCloseStickyRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		srv, m, _ := newTestServer(t, monitor.Config{
			Shards: 1,
			NewDetector: func(string) (detectors.Detector, error) {
				return nullDetector{}, nil
			},
		}, Config{})
		c, err := DialWindow(srv.Addr(), 8)
		if err != nil {
			t.Fatal(err)
		}
		obs := testObs(4, 1)[0]
		const workers = 4
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					if err := c.Ingest("s", obs); err != nil {
						if !errors.Is(err, ErrClientClosed) {
							t.Errorf("Ingest during Close = %v, want ErrClientClosed", err)
						}
						return
					}
				}
			}()
		}
		close(start)
		time.Sleep(time.Duration(round) * 500 * time.Microsecond)
		go c.Close() // and a concurrent second Close
		c.Close()
		wg.Wait()
		if err := c.FlushCheckpoints(); !errors.Is(err, ErrClientClosed) {
			t.Fatalf("FlushCheckpoints after Close = %v, want ErrClientClosed", err)
		}
		srv.Close()
		m.Close()
	}
}

// TestClientPoolRoundTrip drives a multiplexed pool end to end: every
// stream's traffic lands intact (counter conservation through the flush
// barrier), Busy and Error mappings survive the mux, and the server-side
// wire counters — in-flight high water, coalesced replies — actually move
// under a pipelined load and surface through the wire snapshot.
func TestClientPoolRoundTrip(t *testing.T) {
	srv, _, _ := newTestServer(t, monitor.Config{
		Shards:    2,
		QueueSize: 4096,
		NewDetector: func(string) (detectors.Detector, error) {
			return nullDetector{}, nil
		},
	}, Config{})
	pool, err := DialPool(srv.Addr(), 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Conns() != 3 {
		t.Fatalf("Conns = %d, want 3", pool.Conns())
	}
	obs := testObs(4, 64)
	const streams, rounds = 32, 6
	var wg sync.WaitGroup
	sent := make([]uint64, 4)
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var ring [8]Pending
			n := 0
			for r := 0; r < rounds; r++ {
				for s := p; s < streams; s += 4 {
					if n >= len(ring) {
						if err := ring[n%len(ring)].Wait(); err != nil {
							t.Errorf("Wait: %v", err)
							return
						}
					}
					pd, err := pool.IngestBatchAsync(fmt.Sprintf("stream-%d", s), obs)
					if err != nil {
						t.Errorf("IngestBatchAsync: %v", err)
						return
					}
					ring[n%len(ring)] = pd
					n++
					sent[p] += uint64(len(obs))
				}
			}
			for i := 0; i < n && i < len(ring); i++ {
				if err := ring[i].Wait(); err != nil {
					t.Errorf("drain Wait: %v", err)
				}
			}
		}(p)
	}
	wg.Wait()
	if err := pool.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := pool.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, s := range sent {
		want += s
	}
	if sn.Ingested != want {
		t.Fatalf("Ingested = %d, want %d", sn.Ingested, want)
	}
	if sn.Streams != streams {
		t.Fatalf("Streams = %d, want %d", sn.Streams, streams)
	}
	// The wire overlay: a pipelined pool load must have driven the
	// connection pipelines deeper than one and coalesced replies.
	if sn.InFlightHighWater < 2 {
		t.Fatalf("InFlightHighWater = %d after a pipelined load, want >= 2", sn.InFlightHighWater)
	}
	if sn.RepliesCoalesced == 0 {
		t.Fatal("RepliesCoalesced = 0 after a pipelined load")
	}
	// Per-stream routing is consistent: the same stream always lands on the
	// same connection.
	for s := 0; s < streams; s++ {
		id := fmt.Sprintf("stream-%d", s)
		if pool.conn(id) != pool.conn(id) {
			t.Fatalf("stream %s routed to different connections", id)
		}
	}
}

// TestPipelinedAsyncAllocs extends the 0-alloc bar to the pipelined path: a
// full window of async batches plus their Waits must not allocate at steady
// state, measured process-wide against a live server.
func TestPipelinedAsyncAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the alloc bar is measured without -race")
	}
	srv, _, _ := newTestServer(t, monitor.Config{
		Shards:    1,
		QueueSize: 4096,
		NewDetector: func(string) (detectors.Detector, error) {
			return nullDetector{}, nil
		},
	}, Config{})
	c, err := DialWindow(srv.Addr(), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	obs := testObs(20, 64)
	var pend [8]Pending
	run := func() {
		for i := range pend {
			p, err := c.IngestBatchAsync("stream-1", obs)
			if err != nil {
				t.Fatal(err)
			}
			pend[i] = p
		}
		for i := range pend {
			if err := pend[i].Wait(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 50; i++ {
		run() // warm every pool, map, and scratch buffer on both sides
	}
	allocs := testing.AllocsPerRun(100, run)
	if allocs > 0.5 {
		t.Fatalf("steady-state pipelined window allocates %.2f allocs/op (process-wide), want 0", allocs)
	}
}
