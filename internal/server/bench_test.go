package server

import (
	"fmt"
	"testing"

	"rbmim/internal/core"
	"rbmim/internal/monitor"
	"rbmim/internal/synth"

	"rbmim/internal/detectors"
	"rbmim/internal/telemetry"
)

// BenchmarkServerIngestBatch measures the full loopback serving path —
// client encode, TCP, server decode into pooled slabs, monitor enqueue,
// batched RBM-IM detection — at the acceptance batch size (256) and a
// smaller block for comparison. ns/op is per block; the ns/obs metric is
// what scripts/benchguard gates against BENCH_server.json in CI. Steady
// state is 0 allocs/op on the client ingest path (run with -benchmem; the
// residue reported here is the server side's rare event/bookkeeping work
// divided across iterations).
func BenchmarkServerIngestBatch(b *testing.B) {
	const (
		streams  = 64
		features = 20
		classes  = 5
	)
	gen, err := synth.NewRBF(synth.Config{Features: features, Classes: classes, Seed: 17}, 3, 0.08)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]detectors.Observation, 4096)
	for i := range obs {
		in := gen.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("stream-%02d", i)
	}
	for _, block := range []int{64, 256} {
		block := block
		b.Run(fmt.Sprintf("B%d", block), func(b *testing.B) {
			m, err := monitor.New(monitor.Config{
				Detector:  core.Config{Features: features, Classes: classes, Seed: 7},
				Shards:    4,
				QueueSize: 4096 / block,
			})
			if err != nil {
				b.Fatal(err)
			}
			srv, err := New(Config{Monitor: m})
			if err != nil {
				b.Fatal(err)
			}
			c, err := Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			// Warm detectors, pools, and scratch on both ends.
			for s := 0; s < streams; s++ {
				if err := c.IngestBatch(ids[s], obs[:block]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := (i * block) % len(obs)
				if err := c.IngestBatch(ids[i%streams], obs[base:base+block]); err != nil {
					b.Fatal(err)
				}
			}
			// The monitor drain is part of the measured throughput, exactly
			// like BenchmarkMonitorIngestBatch.
			m.Close()
			b.StopTimer()
			c.Close()
			srv.Close()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(block), "ns/obs")
		})
	}
}

// BenchmarkServerIngest is the per-observation round trip — one frame, one
// reply, one observation — the latency-bound worst case of the protocol.
func BenchmarkServerIngest(b *testing.B) {
	gen, err := synth.NewRBF(synth.Config{Features: 20, Classes: 5, Seed: 17}, 3, 0.08)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]detectors.Observation, 4096)
	for i := range obs {
		in := gen.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	m, err := monitor.New(monitor.Config{
		Detector:  core.Config{Features: 20, Classes: 5, Seed: 7},
		Shards:    1,
		QueueSize: 4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(Config{Monitor: m})
	if err != nil {
		b.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if err := c.Ingest("only", obs[i%len(obs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Ingest("only", obs[i%len(obs)]); err != nil {
			b.Fatal(err)
		}
	}
	m.Close()
	b.StopTimer()
	c.Close()
	srv.Close()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/obs")
}

// BenchmarkServerPipelined measures the same loopback serving path with the
// in-flight window open: a ring of async requests deep enough that the
// connection never idles a round trip and both sides coalesce — the client
// batches frames into vector writes, the server batches acks into one flush
// per socket drain. Single is the per-observation case that is latency-bound
// serially (compare BenchmarkServerIngest); B256 is the acceptance batch
// size (compare BenchmarkServerIngestBatch/B256 and the in-process
// BenchmarkMonitorIngestBatch).
func BenchmarkServerPipelined(b *testing.B) {
	const (
		streams  = 64
		features = 20
		classes  = 5
	)
	gen, err := synth.NewRBF(synth.Config{Features: features, Classes: classes, Seed: 17}, 3, 0.08)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]detectors.Observation, 4096)
	for i := range obs {
		in := gen.Next()
		obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
	}
	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("stream-%02d", i)
	}
	run := func(b *testing.B, block, window, shards, queue int, tele telemetry.Level) {
		m, err := monitor.New(monitor.Config{
			Detector:  core.Config{Features: features, Classes: classes, Seed: 7},
			Shards:    shards,
			QueueSize: queue,
			Telemetry: tele,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv, err := New(Config{Monitor: m, Telemetry: tele})
		if err != nil {
			b.Fatal(err)
		}
		c, err := DialWindow(srv.Addr(), window)
		if err != nil {
			b.Fatal(err)
		}
		send := func(i int) (Pending, error) {
			if block == 1 {
				return c.IngestAsync(ids[i%streams], obs[i%len(obs)])
			}
			base := (i * block) % len(obs)
			return c.IngestBatchAsync(ids[i%streams], obs[base:base+block])
		}
		// Warm detectors, pools, and scratch on both ends.
		for s := 0; s < streams; s++ {
			if err := c.IngestBatch(ids[s], obs[:block]); err != nil {
				b.Fatal(err)
			}
		}
		// ring bounds outstanding Pendings to the window without ever letting
		// the pipeline drain between iterations.
		ring := make([]Pending, window)
		n := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n >= window {
				if err := ring[n%window].Wait(); err != nil {
					b.Fatal(err)
				}
			}
			p, err := send(i)
			if err != nil {
				b.Fatal(err)
			}
			ring[n%window] = p
			n++
		}
		for i := 0; i < n && i < window; i++ {
			if err := ring[i].Wait(); err != nil {
				b.Fatal(err)
			}
		}
		// The monitor drain is part of the measured throughput.
		m.Close()
		b.StopTimer()
		c.Close()
		srv.Close()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(block), "ns/obs")
	}
	// The gated series (Single, B256) runs at the default telemetry level —
	// full stage timing is the production configuration, so that is what
	// benchguard holds against BENCH_server.json. The /off variants exist
	// for the telemetry-overhead table in EXPERIMENTS.md and are not gated.
	b.Run("Single", func(b *testing.B) { run(b, 1, 16, 1, 4096, telemetry.Full) })
	b.Run("B256", func(b *testing.B) { run(b, 256, 8, 4, 16, telemetry.Full) })
	b.Run("Single/off", func(b *testing.B) { run(b, 1, 16, 1, 4096, telemetry.Off) })
	b.Run("B256/off", func(b *testing.B) { run(b, 256, 8, 4, 16, telemetry.Off) })
}
