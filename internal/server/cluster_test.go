package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
)

// clusterDetectorConfig is the deterministic template every fleet member
// shares: the monitor's factory seeds each stream's detector from
// (Seed, stream ID), so identically configured members build identical
// detectors for the same stream — the precondition for bit-identical
// migration.
func clusterDetectorConfig() core.Config {
	return core.Config{
		Features: 6, Classes: 3, BatchSize: 10,
		WarmupBatches: 3, TrendWindow: 8, AdaptiveWindow: true, Seed: 5,
	}
}

// shiftObs draws a reproducible sequence with a level shift in the back
// half so drifts actually fire on both sides of a migration.
func shiftObs(seed int64, n int) []detectors.Observation {
	rng := rand.New(rand.NewSource(seed))
	obs := make([]detectors.Observation, n)
	for i := range obs {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.Float64() * 2
			if i > (3*n)/4 {
				x[j] += 2.5
			}
		}
		y := rng.Intn(3)
		obs[i] = detectors.Observation{X: x, TrueClass: y, Predicted: y}
	}
	return obs
}

// seqCollector gathers drift events synchronously via OnDrift.
type seqCollector struct {
	mu   sync.Mutex
	seqs []uint64
}

func (c *seqCollector) onDrift(ev monitor.Event) {
	c.mu.Lock()
	c.seqs = append(c.seqs, ev.Seq)
	c.mu.Unlock()
}

// newFleet starts n checkpointed driftservers on loopback and returns their
// addresses and monitors (indexable by address for white-box asserts).
func newFleet(t testing.TB, n int, onDrift func(monitor.Event)) (addrs []string, byAddr map[string]*monitor.Monitor) {
	t.Helper()
	byAddr = make(map[string]*monitor.Monitor, n)
	for i := 0; i < n; i++ {
		m, err := monitor.New(monitor.Config{
			Detector:   clusterDetectorConfig(),
			Shards:     2,
			OnDrift:    onDrift,
			Checkpoint: monitor.CheckpointConfig{Store: monitor.NewMemStore(), Interval: time.Hour},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{Monitor: m})
		if err != nil {
			m.Close()
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Close()
			m.Close()
		})
		addrs = append(addrs, srv.Addr())
		byAddr[srv.Addr()] = m
	}
	return addrs, byAddr
}

// TestRingRemapProperty pins the consistent-hashing invariants the cluster
// depends on: adding a member remaps only ~K/n streams, removing a member
// remaps exactly that member's streams and nothing else, and virtual nodes
// keep the load spread.
func TestRingRemapProperty(t *testing.T) {
	const streams = 30000
	members := []string{"10.0.0.1:7365", "10.0.0.2:7365", "10.0.0.3:7365"}
	ring3 := newHashRing(members, 64)
	ring4 := newHashRing(append(append([]string{}, members...), "10.0.0.4:7365"), 64)

	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("stream-%05d", i)
	}

	// Balance: with 64 vnodes no member of three may fall far below its
	// fair third.
	load := map[string]int{}
	for _, id := range ids {
		load[ring3.owner(id)]++
	}
	for m, n := range load {
		if frac := float64(n) / streams; frac < 0.15 {
			t.Fatalf("member %s owns %.1f%% of streams; virtual nodes are not spreading load", m, frac*100)
		}
	}

	// Join: only ~K/n streams may remap, and every remapped stream must land
	// on the joiner (anything else would be gratuitous movement).
	remapped := 0
	for _, id := range ids {
		if from, to := ring3.owner(id), ring4.owner(id); from != to {
			remapped++
			if to != "10.0.0.4:7365" {
				t.Fatalf("stream %s remapped %s -> %s on a join; only moves onto the joiner are allowed", id, from, to)
			}
		}
	}
	if frac := float64(remapped) / streams; frac < 0.10 || frac > 0.45 {
		t.Fatalf("join remapped %.1f%% of streams, want ~25%%", frac*100)
	}

	// Leave: removing a member moves exactly its streams — every stream it
	// did not own keeps its owner.
	ring2 := newHashRing(members[:2], 64)
	for _, id := range ids {
		if from := ring3.owner(id); from != members[2] && ring2.owner(id) != from {
			t.Fatalf("stream %s remapped %s -> %s although its owner stayed in the fleet", id, from, ring2.owner(id))
		}
	}

	// Determinism: member order must not matter.
	shuffled := []string{members[2], members[0], members[1]}
	alt := newHashRing(shuffled, 64)
	for _, id := range ids[:1000] {
		if ring3.owner(id) != alt.owner(id) {
			t.Fatalf("owner of %s depends on member order", id)
		}
	}
}

// TestClusterMigrationEquivalence is the acceptance gate over real TCP:
// drive a stream through a two-member fleet, live-migrate it mid-workload,
// and require the drift decisions (count and sequence positions) and the
// final detector bytes to be identical to an unmigrated single-monitor
// reference.
func TestClusterMigrationEquivalence(t *testing.T) {
	const n, cut = 2400, 1237
	obs := shiftObs(9, n)

	// Reference: one uninterrupted in-process monitor, same template.
	var control seqCollector
	cm, err := monitor.New(monitor.Config{Detector: clusterDetectorConfig(), Shards: 1, OnDrift: control.onDrift})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := cm.Ingest("sensor-42", o); err != nil {
			t.Fatal(err)
		}
	}
	if err := cm.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	controlState, err := cm.ExportStream("sensor-42")
	if err != nil {
		t.Fatal(err)
	}
	cm.Close()

	var col seqCollector
	addrs, byAddr := newFleet(t, 2, col.onDrift)
	cc, err := DialCluster(ClusterConfig{Addrs: addrs, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	for _, o := range obs[:cut] {
		if err := cc.Ingest("sensor-42", o); err != nil {
			t.Fatal(err)
		}
	}
	src, err := cc.Owner("sensor-42")
	if err != nil {
		t.Fatal(err)
	}
	target := addrs[0]
	if target == src {
		target = addrs[1]
	}
	if err := cc.Migrate("sensor-42", target); err != nil {
		t.Fatal(err)
	}
	if got, _ := cc.Owner("sensor-42"); got != target {
		t.Fatalf("post-migration owner = %s, want %s", got, target)
	}
	if cc.Migrations() != 1 {
		t.Fatalf("Migrations = %d, want 1", cc.Migrations())
	}
	for _, o := range obs[cut:] {
		if err := cc.Ingest("sensor-42", o); err != nil {
			t.Fatal(err)
		}
	}
	if err := cc.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}

	// The source must no longer host the stream; the target must have
	// installed it via the rehydration path.
	if ids, err := byAddr[src].StreamIDs(); err != nil || len(ids) != 0 {
		t.Fatalf("source still hosts %v after migration (err %v)", ids, err)
	}
	if got := byAddr[target].Snapshot().Rehydrated; got != 1 {
		t.Fatalf("target Rehydrated = %d, want 1", got)
	}

	if len(control.seqs) == 0 {
		t.Fatal("reference run detected no drifts; the test stream is too tame")
	}
	if len(col.seqs) != len(control.seqs) {
		t.Fatalf("drift counts differ: migrated %d vs reference %d", len(col.seqs), len(control.seqs))
	}
	for i := range control.seqs {
		if control.seqs[i] != col.seqs[i] {
			t.Fatalf("drift %d at seq %d migrated vs %d reference", i, col.seqs[i], control.seqs[i])
		}
	}
	migratedState, err := byAddr[target].ExportStream("sensor-42")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(controlState, migratedState) {
		t.Fatal("final detector states differ: cluster migration is not bit-identical")
	}
}

// TestClusterMigrationUnderConcurrentIngest hammers migrations against live
// traffic (the -race half of the acceptance gate): producers batch-ingest a
// stream population through the cluster client while every stream is
// migrated to its ring neighbor mid-run. The striped gates plus per-member
// exactly-once tables must conserve every observation.
func TestClusterMigrationUnderConcurrentIngest(t *testing.T) {
	const (
		streams   = 24
		producers = 4
		rounds    = 6
		block     = 25
	)
	addrs, _ := newFleet(t, 3, nil)
	cc, err := DialCluster(ClusterConfig{Addrs: addrs, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	members := cc.Members()

	obs := shiftObs(10, rounds*block)
	var wg sync.WaitGroup
	errs := make(chan error, producers+1)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for s := p; s < streams; s += producers {
					id := fmt.Sprintf("stream-%03d", s)
					if err := cc.IngestBatch(id, obs[r*block:(r+1)*block]); err != nil {
						errs <- err
						return
					}
				}
			}
		}(p)
	}
	// The migrator walks every stream once, concurrently with the producers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 0; s < streams; s++ {
			id := fmt.Sprintf("stream-%03d", s)
			owner, err := cc.Owner(id)
			if err != nil {
				errs <- err
				return
			}
			next := members[0]
			for i, m := range members {
				if m == owner {
					next = members[(i+1)%len(members)]
					break
				}
			}
			if err := cc.Migrate(id, next); err != nil {
				errs <- fmt.Errorf("migrating %s: %w", id, err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := cc.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := cc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(streams * rounds * block)
	if sn.Ingested != want {
		t.Fatalf("fleet ingested %d observations, sent %d — migration lost or double-applied traffic", sn.Ingested, want)
	}
	if sn.Streams != streams {
		t.Fatalf("fleet hosts %d streams, want %d", sn.Streams, streams)
	}
	if sn.Rehydrated < cc.Migrations() {
		t.Fatalf("Rehydrated = %d < %d migrations; handoffs degenerated to fresh detectors", sn.Rehydrated, cc.Migrations())
	}
}

// TestClusterRebalance pins topology changes: growing and shrinking the
// fleet moves only remapped streams, drains leavers completely, and
// conserves every observation across the transition.
func TestClusterRebalance(t *testing.T) {
	const streams = 40
	addrs, byAddr := newFleet(t, 3, nil)
	cc, err := DialCluster(ClusterConfig{Addrs: addrs[:2], Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	obs := shiftObs(11, 60)
	feed := func(lo, hi int) {
		t.Helper()
		for s := 0; s < streams; s++ {
			if err := cc.IngestBatch(fmt.Sprintf("stream-%03d", s), obs[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(0, 30)
	if err := cc.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}

	// Count residents on the member about to leave.
	leaving, err := byAddr[addrs[1]].StreamIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(leaving) == 0 {
		t.Fatal("no streams landed on the leaver; the test proves nothing")
	}

	// Swap member 2 for member 3 in one transition.
	moved, err := cc.Rebalance([]string{addrs[0], addrs[2]})
	if err != nil {
		t.Fatal(err)
	}
	if moved < len(leaving) {
		t.Fatalf("Rebalance moved %d streams, but the leaver alone hosted %d", moved, len(leaving))
	}
	if moved >= streams {
		t.Fatalf("Rebalance moved all %d streams; consistent hashing should keep unremapped streams put", moved)
	}
	if ids, err := byAddr[addrs[1]].StreamIDs(); err != nil || len(ids) != 0 {
		t.Fatalf("leaver still hosts %v after rebalance (err %v)", ids, err)
	}
	got := cc.Members()
	if len(got) != 2 || got[0] > got[1] || byAddr[got[0]] == byAddr[addrs[1]] {
		t.Fatalf("Members = %v after rebalance", got)
	}

	feed(30, 60)
	if err := cc.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sns, err := cc.MemberSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	var merged []monitor.Snapshot
	for _, m := range sns {
		merged = append(merged, m.Snapshot)
	}
	sn := monitor.MergeSnapshots(merged...)
	// The leaver's counters left the fleet with it, so conservation is
	// checked against what the surviving members saw: everything after the
	// rebalance plus whatever they ingested before it.
	want := uint64(streams * 30)
	if sn.Ingested < want {
		t.Fatalf("surviving members ingested %d, want at least the %d post-rebalance observations", sn.Ingested, want)
	}
	if sn.Streams != streams {
		t.Fatalf("fleet hosts %d streams after rebalance, want %d", sn.Streams, streams)
	}
	if sn.Rehydrated < uint64(len(leaving)) {
		t.Fatalf("Rehydrated = %d < %d drained streams", sn.Rehydrated, len(leaving))
	}
}

// TestMergeSnapshots pins the fold arithmetic MergeSnapshots applies.
func TestMergeSnapshots(t *testing.T) {
	a := monitor.Snapshot{
		Shards: 2, Streams: 3, Ingested: 100, Received: 120, Rejected: 20,
		Drifts: 4, DriftsByClass: []uint64{1, 3},
		QueueCap: 64, QueueHighWater: 10, Rehydrated: 1,
		ShardIngested: []uint64{60, 40}, Uptime: 2 * time.Second,
	}
	b := monitor.Snapshot{
		Shards: 1, Streams: 2, Ingested: 50, Received: 50,
		Drifts: 1, DriftsByClass: []uint64{0, 0, 2},
		QueueCap: 32, QueueHighWater: 30, Rehydrated: 2,
		ShardIngested: []uint64{50}, Uptime: 4 * time.Second,
	}
	got := monitor.MergeSnapshots(a, b)
	if got.Shards != 3 || got.Streams != 5 || got.Ingested != 150 || got.Received != 170 || got.Rejected != 20 {
		t.Fatalf("counter sums wrong: %+v", got)
	}
	if got.Drifts != 5 || len(got.DriftsByClass) != 3 || got.DriftsByClass[0] != 1 || got.DriftsByClass[1] != 3 || got.DriftsByClass[2] != 2 {
		t.Fatalf("drift merge wrong: %+v", got.DriftsByClass)
	}
	if got.QueueCap != 64 || got.QueueHighWater != 30 || got.Uptime != 4*time.Second {
		t.Fatalf("max fields wrong: %+v", got)
	}
	if got.Rehydrated != 3 || len(got.ShardIngested) != 3 {
		t.Fatalf("concat/sum fields wrong: %+v", got)
	}
	if want := 150.0 / 4.0; got.InstancesPerSec != want {
		t.Fatalf("InstancesPerSec = %v, want %v", got.InstancesPerSec, want)
	}
}

// TestPprofSidecar pins the -pprof satellite: the profiling handlers are
// mounted only when Config.Pprof is set.
func TestPprofSidecar(t *testing.T) {
	get := func(pprof bool) int {
		t.Helper()
		m, err := monitor.New(monitor.Config{Detector: clusterDetectorConfig(), Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		srv, err := New(Config{Monitor: m, HTTPAddr: "127.0.0.1:0", Pprof: pprof})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		resp, err := http.Get("http://" + srv.HTTPAddr() + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(true); code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ with Pprof on = %d, want 200", code)
	}
	if code := get(false); code != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ with Pprof off = %d, want 404", code)
	}
}
