package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"rbmim/internal/chaos"
	"rbmim/internal/codec"
	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
)

// The chaos battery: every resilience claim the client makes, proven
// against the fault injector (internal/chaos) with exact — not approximate
// — postconditions. The standard under fault is the same as without:
// conservation (Received == Ingested + Rejected + Queued, Queued == 0 at a
// flush barrier), exactly-once ingest (Ingested equals observations sent,
// no matter how many times frames were resent or duplicated), and
// bit-identical drift decisions and checkpoint bytes versus an unfaulted
// serial reference.

// newChaosServer starts monitor + server + fault proxy; clients dial
// px.Addr(). Cleanup order: proxy, then server, then monitor.
func newChaosServer(t *testing.T, mcfg monitor.Config, scfg Config, ccfg chaos.Config) (*monitor.Monitor, *chaos.Proxy) {
	t.Helper()
	m, err := monitor.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Monitor = m
	srv, err := New(scfg)
	if err != nil {
		m.Close()
		t.Fatal(err)
	}
	ccfg.Target = srv.Addr()
	px, err := chaos.New(ccfg)
	if err != nil {
		srv.Close()
		m.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		px.Close()
		srv.Close()
		m.Close()
	})
	return m, px
}

// driftCollector records per-stream drift sequences via Config.OnDrift
// (synchronous on the shard goroutine, so per-stream order is exact).
type driftCollector struct {
	mu   sync.Mutex
	seqs map[string][]uint64
}

func newDriftCollector() *driftCollector {
	return &driftCollector{seqs: make(map[string][]uint64)}
}

func (dc *driftCollector) onDrift(ev monitor.Event) {
	dc.mu.Lock()
	dc.seqs[ev.StreamID] = append(dc.seqs[ev.StreamID], ev.Seq)
	dc.mu.Unlock()
}

// chaosPolicy is DefaultRetryPolicy tightened for tests: fast backoff, and
// a stall watchdog short enough to recover from dropped frames quickly.
func chaosPolicy() RetryPolicy {
	p := DefaultRetryPolicy()
	p.BackoffBase = 2 * time.Millisecond
	p.BackoffMax = 50 * time.Millisecond
	p.StallTimeout = 250 * time.Millisecond
	return p
}

// TestChaosExactlyOnceDriftEquivalence runs drops, duplicates, and resets
// against a synchronous multi-stream workload and demands the faulted run
// be indistinguishable from a clean serial one: exact observation count and
// bit-identical per-stream drift sequences.
func TestChaosExactlyOnceDriftEquivalence(t *testing.T) {
	streams := []string{"alpha", "beta", "gamma", "delta"}
	const perStream, batch = 240, 8
	obs := testObs(4, perStream)
	factory := func(string) (detectors.Detector, error) {
		return &wireDriftEveryN{n: 7, class: 1}, nil
	}

	// Unfaulted serial reference: same observations, same per-stream order,
	// straight into an in-process monitor.
	ref := newDriftCollector()
	mr, err := monitor.New(monitor.Config{
		NewDetector: factory, Shards: 2, OnDrift: ref.onDrift,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < perStream; i += batch {
		for _, s := range streams {
			if err := mr.IngestBatch(s, obs[i:i+batch]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := mr.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	mr.Close()

	// Faulted run: the same workload through the chaos proxy.
	faulted := newDriftCollector()
	_, px := newChaosServer(t,
		monitor.Config{NewDetector: factory, Shards: 2, OnDrift: faulted.onDrift},
		Config{},
		chaos.Config{Seed: 42, DropRate: 0.04, DuplicateRate: 0.2, ResetEvery: 30},
	)
	c, err := DialRetry(px.Addr(), 8, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < perStream; i += batch {
		for _, s := range streams {
			if err := c.IngestBatch(s, obs[i:i+batch]); err != nil {
				t.Fatalf("IngestBatch(%s) through chaos: %v", s, err)
			}
		}
	}
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	st := px.Stats()
	t.Logf("chaos: %+v; reconnects=%d dedupHits=%d", st, c.Reconnects(), sn.DedupHits)
	if st.Dropped == 0 && st.Duplicated == 0 && st.Resets == 0 {
		t.Fatal("proxy injected no faults; the test proved nothing")
	}
	if c.Reconnects() == 0 {
		t.Fatal("client never reconnected despite injected faults")
	}

	total := uint64(len(streams) * perStream)
	if sn.Ingested != total {
		t.Fatalf("Ingested=%d, want exactly %d (exactly-once under resend)", sn.Ingested, total)
	}
	if sn.Received != sn.Ingested+sn.Rejected+sn.Queued || sn.Queued != 0 {
		t.Fatalf("conservation violated: Received=%d Ingested=%d Rejected=%d Queued=%d",
			sn.Received, sn.Ingested, sn.Rejected, sn.Queued)
	}
	if st.Duplicated >= 3 && sn.DedupHits == 0 {
		t.Fatalf("proxy duplicated %d frames but the server counted no dedup hits", st.Duplicated)
	}
	if !reflect.DeepEqual(ref.seqs, faulted.seqs) {
		t.Fatalf("drift sequences diverged from unfaulted reference:\nref:     %v\nfaulted: %v",
			ref.seqs, faulted.seqs)
	}
}

// TestChaosReconnectMidWindowConservation kills connections by RST with a
// full async window in flight: the reconnect must resubmit the in-flight
// frames in order, every Pending must resolve nil, and the count must be
// exact.
func TestChaosReconnectMidWindowConservation(t *testing.T) {
	const batches, batch = 200, 4
	obs := testObs(4, batch)
	_, px := newChaosServer(t,
		monitor.Config{NewDetector: func(string) (detectors.Detector, error) { return nullDetector{}, nil }, Shards: 2},
		Config{},
		chaos.Config{Seed: 7, ResetEvery: 25},
	)
	c, err := DialRetry(px.Addr(), 16, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pending := make([]Pending, 0, batches)
	for i := 0; i < batches; i++ {
		p, err := c.IngestBatchAsync(fmt.Sprintf("s%d", i%3), obs)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		pending = append(pending, p)
	}
	for i, p := range pending {
		if err := p.Wait(); err != nil {
			t.Fatalf("pending %d failed through reconnects: %v", i, err)
		}
	}
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sn.Ingested, uint64(batches*batch); got != want {
		t.Fatalf("Ingested=%d, want exactly %d", got, want)
	}
	if sn.Received != sn.Ingested+sn.Rejected+sn.Queued || sn.Queued != 0 {
		t.Fatalf("conservation violated: %+v", sn)
	}
	if px.Stats().Resets == 0 {
		t.Fatal("no resets injected; the test proved nothing")
	}
	if c.Reconnects() == 0 {
		t.Fatal("client never reconnected")
	}
}

// TestChaosDuplicateRepliesDeepWindow pipelines a deep async window through
// a duplicate-heavy proxy. A duplicated request frame makes the server reply
// twice; with more requests in flight the second reply mismatches the next
// oldest slot's id — the reader has already dequeued that slot when it kills
// the epoch, so the reconnect must resubmit it as the epoch's orphan.
// (Regression: the orphan used to vanish from both inflight and sendq, its
// Pending never resolving — a permanent hang, not an error.)
func TestChaosDuplicateRepliesDeepWindow(t *testing.T) {
	const batches, batch = 200, 4
	obs := testObs(4, batch)
	_, px := newChaosServer(t,
		monitor.Config{NewDetector: func(string) (detectors.Detector, error) { return nullDetector{}, nil }, Shards: 2},
		Config{},
		chaos.Config{Seed: 11, DuplicateRate: 0.3},
	)
	c, err := DialRetry(px.Addr(), 8, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pending := make([]Pending, 0, batches)
	for i := 0; i < batches; i++ {
		p, err := c.IngestBatchAsync(fmt.Sprintf("s%d", i%3), obs)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		pending = append(pending, p)
	}
	for i, p := range pending {
		if err := p.Wait(); err != nil {
			t.Fatalf("pending %d failed through duplicate storms: %v", i, err)
		}
	}
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sn.Ingested, uint64(batches*batch); got != want {
		t.Fatalf("Ingested=%d, want exactly %d", got, want)
	}
	if sn.Received != sn.Ingested+sn.Rejected+sn.Queued || sn.Queued != 0 {
		t.Fatalf("conservation violated: %+v", sn)
	}
	if px.Stats().Duplicated == 0 {
		t.Fatal("no duplicates injected; the test proved nothing")
	}
	if c.Reconnects() == 0 {
		t.Fatal("duplicate replies never forced a reconnect")
	}
}

// TestChaosCheckpointBitIdentical drives the real RBM detector through
// duplicates and resets and compares the checkpointed detector state —
// weights included — byte for byte against an unfaulted serial run.
func TestChaosCheckpointBitIdentical(t *testing.T) {
	streams := []string{"w0", "w1"}
	const perStream, batch = 128, 16
	obs := testObs(8, perStream)
	det := core.Config{Features: 8, Classes: 3, Seed: 7}

	refStore := monitor.NewMemStore()
	mr, err := monitor.New(monitor.Config{
		Detector: det, Shards: 2,
		Checkpoint: monitor.CheckpointConfig{Store: refStore, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < perStream; i += batch {
		for _, s := range streams {
			if err := mr.IngestBatch(s, obs[i:i+batch]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := mr.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	mr.Close()

	faultStore := monitor.NewMemStore()
	_, px := newChaosServer(t,
		monitor.Config{
			Detector: det, Shards: 2,
			Checkpoint: monitor.CheckpointConfig{Store: faultStore, Interval: time.Hour},
		},
		Config{},
		chaos.Config{Seed: 99, DuplicateRate: 0.3, ResetEvery: 10},
	)
	c, err := DialRetry(px.Addr(), 8, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < perStream; i += batch {
		for _, s := range streams {
			if err := c.IngestBatch(s, obs[i:i+batch]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	for _, s := range streams {
		refBytes, ok, err := refStore.Get(s)
		if err != nil || !ok {
			t.Fatalf("reference checkpoint for %s: ok=%v err=%v", s, ok, err)
		}
		gotBytes, ok, err := faultStore.Get(s)
		if err != nil || !ok {
			t.Fatalf("faulted checkpoint for %s: ok=%v err=%v", s, ok, err)
		}
		if !bytes.Equal(refBytes, gotBytes) {
			t.Fatalf("checkpoint for %s diverged from unfaulted reference (%d vs %d bytes)",
				s, len(refBytes), len(gotBytes))
		}
	}
	if st := px.Stats(); st.Duplicated == 0 && st.Resets == 0 {
		t.Fatal("no faults injected; the test proved nothing")
	}
}

// TestChaosStallWatchdogReconnects black-holes every connection: no read or
// write ever errors, so only the stall watchdog can declare the connection
// dead. The client must keep reconnecting (each attempt black-holed again)
// while the caller's own deadline bounds the damage.
func TestChaosStallWatchdogReconnects(t *testing.T) {
	_, px := newChaosServer(t,
		monitor.Config{NewDetector: func(string) (detectors.Detector, error) { return nullDetector{}, nil }, Shards: 1},
		Config{},
		chaos.Config{Seed: 3, BlackholeRate: 1},
	)
	pol := chaosPolicy()
	pol.StallTimeout = 100 * time.Millisecond
	c, err := DialRetry(px.Addr(), 4, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := c.IngestAsync("s", testObs(4, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WaitTimeout(2 * time.Second); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Wait through a black hole = %v, want ErrDeadlineExceeded", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Reconnects() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stall watchdog never triggered a reconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if Classify(ErrDeadlineExceeded) != ClassDeadline {
		t.Fatal("ErrDeadlineExceeded must classify as ClassDeadline")
	}
}

// TestServerShedsUnderOverload wedges the single shard so its queue fills,
// and checks the shed path end to end: Busy reply, ErrBusy at the client
// (no retry with a zero policy), the Shedded counter, and conservation —
// shed requests never reach the monitor.
func TestServerShedsUnderOverload(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	_, _, c := newTestServer(t, monitor.Config{
		Shards:    1,
		QueueSize: 1,
		NewDetector: func(string) (detectors.Detector, error) {
			return &blockingDetector{entered: entered, release: release}, nil
		},
	}, Config{ShedHighWater: 0.5})
	var relOnce sync.Once
	rel := func() { relOnce.Do(func() { close(release) }) }
	t.Cleanup(rel) // un-wedge even on a failed assertion, or teardown hangs

	obs := testObs(4, 2)
	if err := c.Ingest("s", obs[0]); err != nil {
		t.Fatal(err)
	}
	// The shard is wedged inside Update and the observation is drawn down
	// from the queue counter only when Update returns, so occupancy is
	// pinned at 1 — at the 0.5 high water of the 2-slot ring.
	<-entered
	err := c.Ingest("s", obs[1])
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("ingest over high water = %v, want ErrBusy", err)
	}
	if Classify(err) != ClassBusy {
		t.Fatalf("Classify(%v) = %d, want ClassBusy", err, Classify(err))
	}
	rel()
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Shedded == 0 {
		t.Fatalf("Shedded=%d, want > 0", sn.Shedded)
	}
	if sn.Ingested != 1 {
		t.Fatalf("Ingested=%d, want 1 (the shed request must not reach the monitor)", sn.Ingested)
	}
	if sn.Received != sn.Ingested+sn.Rejected+sn.Queued || sn.Queued != 0 {
		t.Fatalf("conservation violated: %+v", sn)
	}
}

// TestClientBusyRetrySucceeds: with a retry policy, a Busy shed is retried
// (same seq) until the queue drains — the caller never sees ErrBusy.
func TestClientBusyRetrySucceeds(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	m, err := monitor.New(monitor.Config{
		Shards:    1,
		QueueSize: 1,
		NewDetector: func(string) (detectors.Detector, error) {
			return &blockingDetector{entered: entered, release: release}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Monitor: m, ShedHighWater: 0.5})
	if err != nil {
		m.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); m.Close() })
	var relOnce sync.Once
	rel := func() { relOnce.Do(func() { close(release) }) }
	t.Cleanup(rel)
	pol := DefaultRetryPolicy()
	pol.BusyAttempts = 100
	pol.BusyBackoff = 5 * time.Millisecond
	pol.BackoffMax = 20 * time.Millisecond
	c, err := DialRetry(srv.Addr(), 4, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obs := testObs(4, 2)
	if err := c.Ingest("s", obs[0]); err != nil {
		t.Fatal(err)
	}
	<-entered
	// The shard is wedged with occupancy pinned at the high water: this
	// ingest is shed until the release below un-wedges the detector.
	done := make(chan error, 1)
	go func() { done <- c.Ingest("s", obs[1]) }()
	time.Sleep(30 * time.Millisecond) // let at least one Busy round-trip happen
	rel()
	if err := <-done; err != nil {
		t.Fatalf("busy-retried ingest = %v, want success after drain", err)
	}
	if err := c.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Ingested != 2 {
		t.Fatalf("Ingested=%d, want exactly 2 (busy retries must not double-ingest)", sn.Ingested)
	}
	if sn.Shedded == 0 {
		t.Fatal("the test never actually shed")
	}
}

// TestClientBackoffTiming: reconnect sleeps must actually back off. With
// base 40ms and 3 attempts the jittered sleeps are at least 20+40+80ms.
func TestClientBackoffTiming(t *testing.T) {
	m, err := monitor.New(monitor.Config{
		NewDetector: func(string) (detectors.Detector, error) { return nullDetector{}, nil },
		Shards:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Monitor: m})
	if err != nil {
		m.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	pol := RetryPolicy{
		Reconnect:       true,
		MaxDialAttempts: 3,
		BackoffBase:     40 * time.Millisecond,
		BackoffMax:      400 * time.Millisecond,
	}
	c, err := DialRetry(srv.Addr(), 4, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	srv.Close() // the port closes; every redial is refused
	err = c.Ingest("s", testObs(4, 1)[0])
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ingest succeeded against a closed server")
	}
	if Classify(err) != ClassTransport {
		t.Fatalf("Classify(%v) = %d, want ClassTransport", err, Classify(err))
	}
	if elapsed < 100*time.Millisecond {
		t.Fatalf("3 reconnect attempts took %v, want >= ~140ms of backoff", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("3 reconnect attempts took %v — backoff cap not applied?", elapsed)
	}
}

// TestClientCloseAbortsBackoff: Close during a reconnect backoff sleep must
// return promptly, not wait out a 10s sleep.
func TestClientCloseAbortsBackoff(t *testing.T) {
	m, err := monitor.New(monitor.Config{
		NewDetector: func(string) (detectors.Detector, error) { return nullDetector{}, nil },
		Shards:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Monitor: m})
	if err != nil {
		m.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	pol := RetryPolicy{Reconnect: true, MaxDialAttempts: 3, BackoffBase: 10 * time.Second}
	c, err := DialRetry(srv.Addr(), 4, pol)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Wait until the client has noticed the death and entered backoff.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	c.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v with a 10s backoff in progress, want prompt", elapsed)
	}
}

// TestPendingExpiredDeadline: a deadline already in the past must fail fast
// with ErrDeadlineExceeded — and still prefer an ack that has landed.
func TestPendingExpiredDeadline(t *testing.T) {
	_, px := newChaosServer(t,
		monitor.Config{NewDetector: func(string) (detectors.Detector, error) { return nullDetector{}, nil }, Shards: 1},
		Config{},
		chaos.Config{Seed: 1, BlackholeRate: 1},
	)
	c, err := DialWindow(px.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := c.IngestAsync("s", testObs(4, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.WaitDeadline(time.Now().Add(-time.Second)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("WaitDeadline(past) = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("expired deadline took %v, want immediate", elapsed)
	}

	// An ack that has already landed beats even an expired deadline.
	mcfg := monitor.Config{NewDetector: func(string) (detectors.Detector, error) { return nullDetector{}, nil }, Shards: 1}
	_, _, c2 := newTestServer(t, mcfg, Config{})
	p2, err := c2.IngestAsync("s", testObs(4, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.FlushCheckpoints(); err != nil { // barrier: the ack is in
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the reader resolve the ack cell
	if err := p2.WaitDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatalf("WaitDeadline(past) with landed ack = %v, want nil", err)
	}
}

// TestClientPoolFailover is the affinity regression test: a permanently
// dead connection must stop receiving its hash-mapped streams — every
// stream re-homes to the next live connection, deterministically, and
// ingest keeps working.
func TestClientPoolFailover(t *testing.T) {
	m, err := monitor.New(monitor.Config{
		NewDetector: func(string) (detectors.Detector, error) { return nullDetector{}, nil },
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Monitor: m})
	if err != nil {
		m.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); m.Close() })
	p, err := DialPool(srv.Addr(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Find a stream homed on connection 0 and one on connection 1.
	var home0, home1 string
	for i := 0; home0 == "" || home1 == ""; i++ {
		name := fmt.Sprintf("stream-%d", i)
		if monitor.ShardFor(name, 2) == 0 {
			if home0 == "" {
				home0 = name
			}
		} else if home1 == "" {
			home1 = name
		}
	}
	obs := testObs(4, 4)
	if err := p.Ingest(home0, obs[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(home1, obs[1]); err != nil {
		t.Fatal(err)
	}

	// Kill connection 0. Streams homed there must fail over to connection 1
	// instead of erroring forever (the old behavior: conn() kept returning
	// the dead client).
	p.clients[0].Close()
	if got := p.conn(home0); got != p.clients[1] {
		t.Fatal("conn() still routes a dead connection's stream to it")
	}
	if got := p.conn(home1); got != p.clients[1] {
		t.Fatal("conn() moved a live connection's stream")
	}
	if err := p.Ingest(home0, obs[2]); err != nil {
		t.Fatalf("ingest after failover = %v, want success on the surviving connection", err)
	}
	if err := p.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Ingested != 3 {
		t.Fatalf("Ingested=%d, want 3", sn.Ingested)
	}
}

// TestClientCleanEOFVsMidFrame: the two ways a connection ends must be
// distinguishable — ErrServerDrain for a clean close at a frame boundary,
// io.ErrUnexpectedEOF for a mid-frame cut.
func TestClientCleanEOFVsMidFrame(t *testing.T) {
	// Clean: a graceful server shutdown closes at a frame boundary.
	m, err := monitor.New(monitor.Config{
		NewDetector: func(string) (detectors.Detector, error) { return nullDetector{}, nil },
		Shards:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Monitor: m})
	if err != nil {
		m.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	c, err := DialWindow(srv.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ingest("s", testObs(4, 1)[0]); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !c.Dead() {
		if time.Now().After(deadline) {
			t.Fatal("client never noticed the server closing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.sticky(); !errors.Is(err, ErrServerDrain) {
		t.Fatalf("clean close surfaced %v, want ErrServerDrain", err)
	}

	// Mid-frame: a reply cut off inside its header.
	cliEnd, srvEnd := net.Pipe()
	c2 := newPipelined("pipe", cliEnd, 4)
	defer c2.Close()
	frame := codec.AppendFrame(nil, codec.KindWireOK, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if _, err := srvEnd.Write(frame[:5]); err != nil {
		t.Fatal(err)
	}
	srvEnd.Close()
	deadline = time.Now().Add(5 * time.Second)
	for !c2.Dead() {
		if time.Now().After(deadline) {
			t.Fatal("client never noticed the cut connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c2.sticky(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-frame cut surfaced %v, want io.ErrUnexpectedEOF underneath", err)
	}
	if errors.Is(c2.sticky(), ErrServerDrain) {
		t.Fatal("mid-frame cut must not look like a clean drain")
	}
}

// TestDedupTable exercises the exact-set window directly: duplicates inside
// the window, gaps staying fresh, aged-out rejection, and session eviction.
func TestDedupTable(t *testing.T) {
	d := newDedupTable(64, 2)
	// commit claims a seq (which must be fresh) and settles it committed.
	commit := func(session uint64, stream string, seq uint64) {
		t.Helper()
		state, token := d.claim(session, stream, seq)
		if state != claimOwned {
			t.Fatalf("claim(%d,%q,%d) = %d, want owned", session, stream, seq, state)
		}
		d.settle(session, stream, seq, token, true)
	}
	// fate probes a seq's state without leaving an in-flight marker behind.
	fate := func(session uint64, stream string, seq uint64) claimState {
		t.Helper()
		state, token := d.claim(session, stream, seq)
		if state == claimOwned {
			d.settle(session, stream, seq, token, false)
		}
		return state
	}

	if fate(1, "s", 5) != claimOwned {
		t.Fatal("fresh seq not claimable")
	}
	commit(1, "s", 5)
	if fate(1, "s", 5) != claimApplied {
		t.Fatal("committed seq reported fresh")
	}
	// A gap (seq 6 skipped, e.g. a shed) stays fresh after newer commits.
	commit(1, "s", 7)
	if fate(1, "s", 6) != claimOwned {
		t.Fatal("gap seq reported applied")
	}
	if fate(1, "s", 5) != claimApplied || fate(1, "s", 7) != claimApplied {
		t.Fatal("committed seqs lost after advance")
	}
	// A released seq (shed, ingest error) stays fresh for the retry.
	state, token := d.claim(1, "s", 8)
	if state != claimOwned {
		t.Fatalf("claim(8) = %d, want owned", state)
	}
	d.settle(1, "s", 8, token, false)
	if fate(1, "s", 8) != claimOwned {
		t.Fatal("released seq not claimable again")
	}
	// Aging past the window: a never-committed seq far below maxSeq is
	// undecidable — it must be rejected, never acked as applied (a false OK
	// would report silent data loss as success).
	commit(1, "s", 500)
	if fate(1, "s", 6) != claimAged {
		t.Fatal("aged-out seq must be rejected, not acked")
	}
	// Other streams and sessions are independent.
	if fate(1, "other", 5) != claimOwned || fate(2, "s", 5) != claimOwned {
		t.Fatal("dedup leaked across stream or session")
	}
	// Session eviction: capacity 2, a new session evicts the oldest.
	commit(2, "s", 1)
	commit(3, "s", 1)
	if fate(1, "s", 5) != claimOwned {
		t.Fatal("evicted session's state survived")
	}
	if fate(3, "s", 1) != claimApplied {
		t.Fatal("newest session evicted instead of oldest")
	}
	if d.hits.Load() == 0 {
		t.Fatal("dedup hits not counted")
	}
}

// TestDedupClaimInFlight pins the reconnect-resend race the claim API
// exists for: a duplicate of a seq that is still being ingested (the old
// connection's handler blocked inside the monitor's enqueue) must wait for
// the owner's outcome — ack if it committed, take ownership if it was
// released — never ingest concurrently.
func TestDedupClaimInFlight(t *testing.T) {
	d := newDedupTable(64, 4)
	dup := func(dt *dedupTable, session uint64, stream string, seq uint64) chan claimState {
		got := make(chan claimState, 1)
		go func() {
			state, _ := dt.claim(session, stream, seq)
			got <- state
		}()
		return got
	}

	// Owner commits: the waiting duplicate resolves to applied.
	state, token := d.claim(1, "s", 9)
	if state != claimOwned {
		t.Fatalf("first claim = %d, want owned", state)
	}
	got := dup(d, 1, "s", 9)
	select {
	case st := <-got:
		t.Fatalf("duplicate resolved to %d while its seq was in flight", st)
	case <-time.After(50 * time.Millisecond):
	}
	d.settle(1, "s", 9, token, true)
	select {
	case st := <-got:
		if st != claimApplied {
			t.Fatalf("duplicate after commit = %d, want applied", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate still blocked after the owner committed")
	}

	// Owner releases (shed / error): the duplicate inherits ownership.
	state, token = d.claim(1, "s", 10)
	if state != claimOwned {
		t.Fatalf("claim(10) = %d, want owned", state)
	}
	got = dup(d, 1, "s", 10)
	d.settle(1, "s", 10, token, false)
	select {
	case st := <-got:
		if st != claimOwned {
			t.Fatalf("duplicate after release = %d, want owned", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate still blocked after the owner released")
	}

	// Eviction wakes waiters instead of stranding them: session 1 holds an
	// in-flight seq with a duplicate parked on it; sessions 2 and 3 push the
	// cap-2 table over, evicting 1 and releasing its marker.
	d2 := newDedupTable(64, 2)
	if state, _ := d2.claim(1, "s", 1); state != claimOwned {
		t.Fatalf("claim on fresh table = %d, want owned", state)
	}
	got = dup(d2, 1, "s", 1)
	select {
	case st := <-got:
		t.Fatalf("duplicate resolved to %d before eviction", st)
	case <-time.After(20 * time.Millisecond):
	}
	d2.claim(2, "s", 1)
	d2.claim(3, "s", 1) // evicts session 1, waking its waiter
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("eviction stranded an in-flight waiter")
	}
}
