package server

import (
	"fmt"

	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
	"rbmim/internal/telemetry"
)

// ClientPool fans many logical producers over a fixed set of pipelined
// connections. Streams are routed to connections by the same consistent
// hash the monitor uses for shard placement (monitor.ShardFor), which gives
// the two properties that make a pool safe to put in front of the monitor:
//
//   - per-stream ordering: all of a stream's requests travel one connection,
//     and the server handles one connection's requests in order, so a
//     stream's observations reach its shard in send order — the pool is
//     just another producer as far as the monitor's ordering-equivalence
//     guarantee is concerned;
//   - stable placement: growing or shrinking the pool moves only ~1/n of
//     the streams to a different connection.
//
// N producer goroutines sharing one pool therefore look to the server like
// K pipelined clients, multiplexing N ways of traffic into K×window
// in-flight requests — connections stop being the unit of concurrency.
//
// The pool's connections share one session id and one per-stream sequence
// table, so the server sees the pool as a single exactly-once producer.
// That makes failover safe: when a connection dies permanently (its own
// RetryPolicy exhausted, or no policy at all), routing deterministically
// probes forward to the next live connection — every pool member re-homes
// the same streams to the same survivor — and a synchronous ingest whose
// connection died mid-call is resent there with its original sequence
// number, so a request the dead connection did manage to deliver is acked,
// not re-applied. All methods are safe for concurrent use.
type ClientPool struct {
	clients []*Client
	session uint64
	seqs    *seqTable
}

// DialPool opens conns pipelined connections to addr, each with the given
// in-flight window and no retry policy (see DialWindow; conns < 1 and
// window < 1 select 1).
func DialPool(addr string, conns, window int) (*ClientPool, error) {
	return DialPoolRetry(addr, conns, window, RetryPolicy{})
}

// DialPoolRetry is DialPool with a retry policy applied to every
// connection (see DialRetry).
func DialPoolRetry(addr string, conns, window int, policy RetryPolicy) (*ClientPool, error) {
	if conns < 1 {
		conns = 1
	}
	p := &ClientPool{
		clients: make([]*Client, conns),
		session: newSessionID(),
		seqs:    newSeqTable(),
	}
	for i := range p.clients {
		c, err := DialRetry(addr, window, policy)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("server: dialing pool connection %d: %w", i, err)
		}
		// Re-home the fresh client onto the pool's shared exactly-once
		// identity before any request can be issued on it.
		c.session = p.session
		c.seqs = p.seqs
		p.clients[i] = c
	}
	return p, nil
}

// Conns returns the pool's connection count.
func (p *ClientPool) Conns() int { return len(p.clients) }

// Reconnects sums the reconnect counts across the pool's connections.
func (p *ClientPool) Reconnects() uint64 {
	var n uint64
	for _, c := range p.clients {
		n += c.Reconnects()
	}
	return n
}

// conn returns the connection that owns streamID: its home connection by
// consistent hash, or — when the home is permanently dead — the first live
// connection probing forward from it. The probe order is a pure function of
// (stream, set of dead connections), so every goroutine re-homes a stream
// identically and its requests keep traveling one connection, preserving
// per-stream ordering. With every connection dead, the home is returned and
// the call surfaces its sticky error.
func (p *ClientPool) conn(streamID string) *Client {
	n := len(p.clients)
	home := monitor.ShardFor(streamID, n)
	for i := 0; i < n; i++ {
		if c := p.clients[(home+i)%n]; !c.Dead() {
			return c
		}
	}
	return p.clients[home]
}

// failedOver reports whether a synchronous call that failed on c should be
// resent (same seq) on a re-homed connection: c is permanently dead, the
// failure is the death rather than the request's own doing, and the pool
// has somewhere else to send it.
func (p *ClientPool) failedOver(c *Client, streamID string, err error) (*Client, bool) {
	if err == nil || !c.Dead() {
		return nil, false
	}
	switch Classify(err) {
	case ClassTransport, ClassProtocol, ClassClosed:
		// ClassClosed from a dead-but-not-pool-closed client is its sticky
		// error surfacing; a pool-wide Close leaves no live conn to probe.
	default:
		return nil, false
	}
	next := p.conn(streamID)
	if next == c || next.Dead() {
		return nil, false
	}
	return next, true
}

// Ingest routes one observation over the stream's connection and waits for
// the ack (see Client.Ingest). If the connection dies permanently mid-call,
// the request is resent on the stream's re-homed connection with its
// original sequence number — exactly once either way.
func (p *ClientPool) Ingest(streamID string, o detectors.Observation) error {
	seq := p.seqs.next(streamID)
	c := p.conn(streamID)
	err := c.ingestSeq(streamID, o, seq)
	if next, ok := p.failedOver(c, streamID, err); ok {
		err = next.ingestSeq(streamID, o, seq)
	}
	return err
}

// IngestAsync routes one observation over the stream's connection without
// waiting (see Client.IngestAsync). Async requests do not fail over — the
// Pending surfaces the dead connection's error and the caller decides.
func (p *ClientPool) IngestAsync(streamID string, o detectors.Observation) (Pending, error) {
	return p.conn(streamID).IngestAsync(streamID, o)
}

// IngestBatch routes a block over the stream's connection and waits for the
// ack (see Client.IngestBatch), failing over like Ingest.
func (p *ClientPool) IngestBatch(streamID string, obs []detectors.Observation) error {
	seq := p.seqs.next(streamID)
	c := p.conn(streamID)
	err := c.ingestBatchSeq(streamID, obs, seq)
	if next, ok := p.failedOver(c, streamID, err); ok {
		err = next.ingestBatchSeq(streamID, obs, seq)
	}
	return err
}

// IngestBatchAsync routes a block over the stream's connection without
// waiting (see Client.IngestBatchAsync).
func (p *ClientPool) IngestBatchAsync(streamID string, obs []detectors.Observation) (Pending, error) {
	return p.conn(streamID).IngestBatchAsync(streamID, obs)
}

// TryIngestBatch routes a block over the stream's connection without
// blocking backpressure (see Client.TryIngestBatch).
func (p *ClientPool) TryIngestBatch(streamID string, obs []detectors.Observation) (bool, error) {
	return p.conn(streamID).TryIngestBatch(streamID, obs)
}

// Evict routes the eviction over the stream's connection, behind any of the
// stream's requests already pipelined there.
func (p *ClientPool) Evict(streamID string) error {
	return p.conn(streamID).Evict(streamID)
}

// FlushCheckpoints issues the flush on every live connection, so it is a
// barrier for requests pipelined ahead of it on all of them, then for the
// monitor itself (Monitor.FlushCheckpoints semantics). It stops at the
// first error; dead connections are skipped unless every connection is
// dead, in which case the first sticky error surfaces.
func (p *ClientPool) FlushCheckpoints() error {
	live := 0
	for _, c := range p.clients {
		if c.Dead() {
			continue
		}
		live++
		if err := c.FlushCheckpoints(); err != nil {
			return err
		}
	}
	if live == 0 {
		return p.clients[0].sticky()
	}
	return nil
}

// Snapshot fetches the monitor's aggregate counters over the first live
// connection.
func (p *ClientPool) Snapshot() (monitor.Snapshot, error) {
	for _, c := range p.clients {
		if !c.Dead() {
			return c.Snapshot()
		}
	}
	return p.clients[0].Snapshot()
}

// Migrate exports a stream for handoff over the stream's own connection —
// behind any of its requests already pipelined there, so everything sent
// before the migrate is applied before the state is serialized (see
// Client.Migrate). A connection death mid-call fails over like Ingest: the
// re-sent Migrate re-exports from the server's checkpoint store (exports
// spill first), so the retry returns the same bytes.
func (p *ClientPool) Migrate(streamID string) ([]byte, error) {
	c := p.conn(streamID)
	state, err := c.Migrate(streamID)
	if next, ok := p.failedOver(c, streamID, err); ok {
		state, err = next.Migrate(streamID)
	}
	return state, err
}

// Handoff installs a migrated stream's state over the stream's connection
// (see Client.Handoff), failing over like Ingest. A handoff resend after a
// lost ack is refused with "already resident", which the cluster layer
// treats as success.
func (p *ClientPool) Handoff(streamID string, state []byte) error {
	c := p.conn(streamID)
	err := c.Handoff(streamID, state)
	if next, ok := p.failedOver(c, streamID, err); ok {
		err = next.Handoff(streamID, state)
	}
	return err
}

// StreamIDs lists the server's resident streams over the first live
// connection (see Client.StreamIDs).
func (p *ClientPool) StreamIDs() ([]string, error) {
	for _, c := range p.clients {
		if !c.Dead() {
			return c.StreamIDs()
		}
	}
	return p.clients[0].StreamIDs()
}

// Subscribe opens a drift-event subscription (its own connection, outside
// the pool's request pipelines) via the pool's first connection's dialer.
func (p *ClientPool) Subscribe(buffer int) (*Subscription, error) {
	return p.clients[0].Subscribe(buffer)
}

// LastDrift fetches the most recent drift report for a stream over the
// stream's own connection (see Client.LastDrift).
func (p *ClientPool) LastDrift(streamID string) (monitor.DriftReport, bool, error) {
	return p.conn(streamID).LastDrift(streamID)
}

// Latency merges the client-observed RTT histograms across the pool's
// connections into one stage set (see Client.Latency).
func (p *ClientPool) Latency() []telemetry.Stage {
	groups := make([][]telemetry.Stage, 0, len(p.clients))
	for _, c := range p.clients {
		if st := c.Latency(); len(st) > 0 {
			groups = append(groups, st)
		}
	}
	if len(groups) == 0 {
		return nil
	}
	return telemetry.MergeStages(groups...)
}

// Close closes every connection. In-flight requests on all of them receive
// errors, never hangs; like Client.Close it is idempotent.
func (p *ClientPool) Close() error {
	for _, c := range p.clients {
		if c != nil {
			c.Close()
		}
	}
	return nil
}
