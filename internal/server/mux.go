package server

import (
	"fmt"

	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
)

// ClientPool fans many logical producers over a fixed set of pipelined
// connections. Streams are routed to connections by the same consistent
// hash the monitor uses for shard placement (monitor.ShardFor), which gives
// the two properties that make a pool safe to put in front of the monitor:
//
//   - per-stream ordering: all of a stream's requests travel one connection,
//     and the server handles one connection's requests in order, so a
//     stream's observations reach its shard in send order — the pool is
//     just another producer as far as the monitor's ordering-equivalence
//     guarantee is concerned;
//   - stable placement: growing or shrinking the pool moves only ~1/n of
//     the streams to a different connection.
//
// N producer goroutines sharing one pool therefore look to the server like
// K pipelined clients, multiplexing N ways of traffic into K×window
// in-flight requests — connections stop being the unit of concurrency.
// All methods are safe for concurrent use.
type ClientPool struct {
	clients []*Client
}

// DialPool opens conns pipelined connections to addr, each with the given
// in-flight window (see DialWindow; conns < 1 and window < 1 select 1).
func DialPool(addr string, conns, window int) (*ClientPool, error) {
	if conns < 1 {
		conns = 1
	}
	p := &ClientPool{clients: make([]*Client, conns)}
	for i := range p.clients {
		c, err := DialWindow(addr, window)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("server: dialing pool connection %d: %w", i, err)
		}
		p.clients[i] = c
	}
	return p, nil
}

// Conns returns the pool's connection count.
func (p *ClientPool) Conns() int { return len(p.clients) }

// conn returns the connection that owns streamID.
func (p *ClientPool) conn(streamID string) *Client {
	return p.clients[monitor.ShardFor(streamID, len(p.clients))]
}

// Ingest routes one observation over the stream's connection and waits for
// the ack (see Client.Ingest).
func (p *ClientPool) Ingest(streamID string, o detectors.Observation) error {
	return p.conn(streamID).Ingest(streamID, o)
}

// IngestAsync routes one observation over the stream's connection without
// waiting (see Client.IngestAsync).
func (p *ClientPool) IngestAsync(streamID string, o detectors.Observation) (Pending, error) {
	return p.conn(streamID).IngestAsync(streamID, o)
}

// IngestBatch routes a block over the stream's connection and waits for the
// ack (see Client.IngestBatch).
func (p *ClientPool) IngestBatch(streamID string, obs []detectors.Observation) error {
	return p.conn(streamID).IngestBatch(streamID, obs)
}

// IngestBatchAsync routes a block over the stream's connection without
// waiting (see Client.IngestBatchAsync).
func (p *ClientPool) IngestBatchAsync(streamID string, obs []detectors.Observation) (Pending, error) {
	return p.conn(streamID).IngestBatchAsync(streamID, obs)
}

// TryIngestBatch routes a block over the stream's connection without
// blocking backpressure (see Client.TryIngestBatch).
func (p *ClientPool) TryIngestBatch(streamID string, obs []detectors.Observation) (bool, error) {
	return p.conn(streamID).TryIngestBatch(streamID, obs)
}

// Evict routes the eviction over the stream's connection, behind any of the
// stream's requests already pipelined there.
func (p *ClientPool) Evict(streamID string) error {
	return p.conn(streamID).Evict(streamID)
}

// FlushCheckpoints issues the flush on every connection, so it is a barrier
// for requests pipelined ahead of it on all of them, then for the monitor
// itself (Monitor.FlushCheckpoints semantics). It stops at the first error.
func (p *ClientPool) FlushCheckpoints() error {
	for _, c := range p.clients {
		if err := c.FlushCheckpoints(); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot fetches the monitor's aggregate counters over the pool's first
// connection.
func (p *ClientPool) Snapshot() (monitor.Snapshot, error) {
	return p.clients[0].Snapshot()
}

// Subscribe opens a drift-event subscription (its own connection, outside
// the pool's request pipelines) via the pool's first connection's dialer.
func (p *ClientPool) Subscribe(buffer int) (*Subscription, error) {
	return p.clients[0].Subscribe(buffer)
}

// Close closes every connection. In-flight requests on all of them receive
// errors, never hangs; like Client.Close it is idempotent.
func (p *ClientPool) Close() error {
	for _, c := range p.clients {
		if c != nil {
			c.Close()
		}
	}
	return nil
}
