package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"rbmim/internal/codec"
)

// Pipelined client core.
//
// The wire protocol already carries an echoed request id on every reply, so
// nothing forces a client to stop-and-wait — it only did because the original
// Client serialized begin/finish under a mutex. This file replaces that loop
// with a window of W in-flight requests over one connection:
//
//	caller:  acquire slot -> build frame in the slot -> sendq
//	writer:  drain sendq, register slots in flight, one writev per drain
//	reader:  match each reply to the oldest in-flight slot, resolve the
//	         ack and recycle the slot (ack-only requests) or park the
//	         reply and signal the awaiting caller (payload requests)
//
// Slots are the unit of everything: each of the W slots owns its request
// frame buffer, its reply scratch, and its completion channel, so a caller
// holding a slot builds and consumes in place and the steady state allocates
// nothing. The slot index travels through three uint32 channels — free,
// sendq, inflight — whose combined capacity W makes every send non-blocking
// and makes `free` double as the window semaphore: when W requests are
// outstanding the next acquire parks until a reply releases a slot
// (backpressure, not unbounded queueing).
//
// Request ids encode gen<<32|slot, where gen increments on every slot reuse:
// the reader can therefore verify not just "some id I know" but "the id of
// the exact call occupying this slot right now", catching a server that
// echoes a stale or foreign id. Because the server replies strictly in
// request order per connection and the writer registers a slot in `inflight`
// before its bytes reach the socket, the oldest element of `inflight` is
// always the reply's rightful owner — a reply with no registered slot is a
// protocol violation, not a race.
//
// Failures are sticky and total: transport errors, protocol violations, and
// Close all funnel through fail(), which records the first error, closes the
// `dead` channel, and closes the socket. Every waiter — callers parked on
// acquire or on a completion, the writer, the reader — selects on `dead`, so
// a mid-window crash errors all pending calls instead of hanging any of
// them, and every later method call returns the sticky error immediately.

// DefaultWindow is the in-flight window Dial selects: deep enough that a
// single producer saturates the server's request loop, small enough that a
// stalled server applies backpressure within a few hundred KiB of frames.
const DefaultWindow = 32

// call is one slot of the pipeline window: the request frame under
// construction, the identity check for its reply, and the reply itself.
type call struct {
	frame codec.Buffer  // complete framed request (BeginFrame/EndFrame)
	mark  int           // EndFrame mark while the frame is being built
	gen   uint32        // reuse generation; request id = gen<<32|slot
	done  chan struct{} // cap 1; reader signals reply arrival

	// ack, when non-nil, marks an ack-only request (the Async ingest paths,
	// Evict, FlushCheckpoints): the reader resolves the ack itself and
	// releases the slot immediately instead of parking the reply for await.
	ack *pendingAck

	// Reply, owned by the reader until done is signalled, then by the
	// caller until release: the kind and the payload after the echoed id,
	// copied out of the scanner's reused buffer.
	replyKind uint8
	msg       []byte
}

// pendingAck decouples an ack-only request's completion from its window
// slot. The reader interprets the reply and releases the slot the moment it
// lands, so a window slot is never held hostage by a caller that has not
// called Wait yet. Without this, a producer blocked in acquire on one pool
// connection while holding completed-but-unwaited Pendings on another could
// deadlock the window (hold-and-wait across connections) — with it, slots
// recycle as fast as the server replies, no matter when Wait runs. Cells
// are pooled; Wait returns them.
type pendingAck struct {
	err chan error // cap 1; the reader delivers exactly one ack
}

var ackPool = sync.Pool{New: func() any { return &pendingAck{err: make(chan error, 1)} }}

// Client speaks the driftserver wire protocol over one TCP connection with a
// pipelined in-flight window (see the package comment above and Dial /
// DialWindow). All methods are safe for concurrent use; calls from one
// goroutine are delivered in order, and the synchronous methods still behave
// exactly like the serial client's. After Close — or after any transport or
// protocol failure — every method returns the same sticky error.
type Client struct {
	addr   string
	nc     net.Conn
	window int

	calls    []call
	free     chan uint32 // released slots; doubles as the window semaphore
	sendq    chan uint32 // built frames awaiting the writer
	inflight chan uint32 // written (or about to be) frames awaiting replies
	dead     chan struct{}
	deadOnce sync.Once

	errMu sync.Mutex
	err   error // first failure wins; ErrClientClosed after a clean Close

	wg sync.WaitGroup
}

// Dial connects to a driftserver at addr ("host:port") with the default
// in-flight window.
func Dial(addr string) (*Client, error) { return DialWindow(addr, DefaultWindow) }

// DialWindow connects with an explicit in-flight window: up to window
// requests may be outstanding before the next call blocks. window 1
// degenerates to the serial stop-and-wait client.
func DialWindow(addr string, window int) (*Client, error) {
	if window < 1 {
		window = 1
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	c := newPipelined(addr, nc, window)
	return c, nil
}

// newPipelined wires the pipeline core around an established connection
// (split from DialWindow so tests can run the core over a net.Pipe).
func newPipelined(addr string, nc net.Conn, window int) *Client {
	c := &Client{
		addr:     addr,
		nc:       nc,
		window:   window,
		calls:    make([]call, window),
		free:     make(chan uint32, window),
		sendq:    make(chan uint32, window),
		inflight: make(chan uint32, window),
		dead:     make(chan struct{}),
	}
	for i := range c.calls {
		c.calls[i].gen = 1 // ids start nonzero; 0 marks server pushes
		c.calls[i].done = make(chan struct{}, 1)
		c.free <- uint32(i)
	}
	c.wg.Add(2)
	go c.writeLoop()
	go c.readLoop()
	return c
}

// Window returns the client's in-flight window.
func (c *Client) Window() int { return c.window }

// Close fails the pipeline with ErrClientClosed (first error wins: a client
// that already died of a transport error keeps reporting that), closes the
// connection, and waits for the writer and reader to exit. It is idempotent
// and safe to call concurrently with in-flight requests — those requests'
// callers all receive an error, never a hang. Subscriptions returned by
// Subscribe have their own connections and are closed separately.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	c.wg.Wait()
	return nil
}

// fail records the first error, marks the client dead, and closes the socket
// so goroutines parked in Read/Write error out.
func (c *Client) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
	c.deadOnce.Do(func() { close(c.dead) })
	c.nc.Close()
}

// sticky returns the error that killed the client.
func (c *Client) sticky() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// acquire claims a free slot, parking when the full window is in flight.
func (c *Client) acquire() (uint32, error) {
	select {
	case slot := <-c.free:
		return slot, nil
	case <-c.dead:
		return 0, c.sticky()
	}
}

// beginCall starts building the request frame in a claimed slot and returns
// the buffer to append operands to.
func (c *Client) beginCall(slot uint32, kind uint8) *codec.Buffer {
	cl := &c.calls[slot]
	cl.frame.Reset()
	cl.mark = cl.frame.BeginFrame(kind)
	cl.frame.U64(uint64(cl.gen)<<32 | uint64(slot))
	return &cl.frame
}

// submit seals the slot's frame and hands it to the writer. The send never
// blocks: sendq's capacity is the window and a slot is in at most one of
// free/sendq/inflight at a time.
func (c *Client) submit(slot uint32) {
	cl := &c.calls[slot]
	cl.frame.EndFrame(cl.mark)
	c.sendq <- slot
}

// await parks until the slot's reply arrives or the client dies. On death a
// reply that had already landed still wins — the call genuinely completed.
func (c *Client) await(slot uint32) (*call, error) {
	cl := &c.calls[slot]
	select {
	case <-cl.done:
		return cl, nil
	case <-c.dead:
		select {
		case <-cl.done:
			return cl, nil
		default:
			// The slot is deliberately not recycled: the client is dead and
			// the reader may still be about to write into it.
			return nil, c.sticky()
		}
	}
}

// release returns a consumed slot to the free list, bumping its generation
// so a stale reply addressed to the previous occupant can never match.
func (c *Client) release(slot uint32) {
	c.calls[slot].gen++
	c.free <- slot
}

// writeLoop drains the send queue and writes frames to the socket, batching
// whatever is queued into a single vector write (writev) so W pipelined
// requests cost ~1 syscall instead of W. A slot is registered in `inflight`
// before its bytes can reach the wire, so by the time the server's reply
// arrives the reader is guaranteed to find the owner at the head of the
// queue.
func (c *Client) writeLoop() {
	defer c.wg.Done()
	// bufs is the master backing array; wv (the net.Buffers WriteTo consumes
	// and advances) is a copy of its header, so the master keeps its
	// capacity across rounds. wv lives outside the loop because WriteTo's
	// pointer receiver makes it escape — one heap cell for the goroutine's
	// lifetime instead of one allocation per vector write.
	bufs := make(net.Buffers, 0, c.window)
	var wv net.Buffers
	for {
		var slot uint32
		select {
		case slot = <-c.sendq:
		case <-c.dead:
			return
		}
		c.inflight <- slot
		bufs = append(bufs[:0], c.calls[slot].frame.Bytes())
	coalesce:
		for len(bufs) < c.window {
			select {
			case s := <-c.sendq:
				c.inflight <- s
				bufs = append(bufs, c.calls[s].frame.Bytes())
			default:
				break coalesce
			}
		}
		var err error
		if len(bufs) == 1 {
			_, err = c.nc.Write(bufs[0])
		} else {
			wv = bufs
			_, err = wv.WriteTo(c.nc)
		}
		if err != nil {
			c.fail(fmt.Errorf("server: write: %w", err))
			return
		}
	}
}

// readLoop matches replies to in-flight slots. The server replies strictly
// in request order per connection, so the oldest registered slot owns the
// next reply; the echoed id (gen<<32|slot) is verified against the slot's
// current occupant, making a mismatched, stale, or unsolicited reply a
// connection-fatal protocol error rather than silent corruption.
func (c *Client) readLoop() {
	defer c.wg.Done()
	sc := codec.NewFrameScanner(c.nc)
	var rd codec.Reader
	for {
		kind, body, err := sc.Next()
		if err != nil {
			c.fail(fmt.Errorf("server: reading reply: %w", err))
			return
		}
		var slot uint32
		select {
		case slot = <-c.inflight:
		default:
			c.fail(errors.New("server: unsolicited reply with no request in flight"))
			return
		}
		cl := &c.calls[slot]
		rd.Reset(body)
		id := rd.U64()
		if rd.Err() != nil {
			c.fail(fmt.Errorf("server: bad reply frame: %v", rd.Err()))
			return
		}
		if want := uint64(cl.gen)<<32 | uint64(slot); id != want {
			c.fail(fmt.Errorf("server: reply id %#x does not match in-flight request %#x", id, want))
			return
		}
		if ack := cl.ack; ack != nil {
			// Ack-only request: interpret the reply here, recycle the slot
			// now (eager window release — see pendingAck), then deliver.
			cl.ack = nil
			err := ackErrWire(kind, body[8:])
			c.release(slot)
			ack.err <- err
			continue
		}
		// Copy the reply payload out of the scanner's reused buffer before
		// the next Next() overwrites it. OK/Busy replies carry nothing, so
		// the hot path copies zero bytes.
		cl.replyKind = kind
		cl.msg = append(cl.msg[:0], body[8:]...)
		cl.done <- struct{}{}
	}
}

// Pending is the handle of an asynchronous request (IngestAsync /
// IngestBatchAsync): the request is on the wire (or queued behind the
// window); Wait parks until its ack. The window slot is released by the
// reader the moment the reply lands — a Pending that has not been waited
// yet never blocks other requests. Wait must still be called exactly once
// per Pending (it consumes the ack and recycles its cell). The zero
// Pending is invalid.
type Pending struct {
	c   *Client
	ack *pendingAck
}

// Wait blocks until the request's reply arrives and returns the ack error
// (nil for OK, the server's message for Error, the sticky client error if
// the connection died mid-window).
func (p Pending) Wait() error {
	if p.c == nil || p.ack == nil {
		return errors.New("server: Wait on zero Pending")
	}
	select {
	case err := <-p.ack.err:
		ackPool.Put(p.ack)
		return err
	case <-p.c.dead:
		// An ack that had already landed still wins — the call genuinely
		// completed.
		select {
		case err := <-p.ack.err:
			ackPool.Put(p.ack)
			return err
		default:
			// The reader died before resolving this ack. The cell is
			// abandoned rather than pooled: the reader may have been
			// mid-delivery when it was killed.
			return p.c.sticky()
		}
	}
}

// asyncAck attaches a pooled ack cell to a claimed slot (before submit, so
// the reader cannot race it) and returns the caller's Pending handle.
func (c *Client) asyncAck(slot uint32) Pending {
	ack := ackPool.Get().(*pendingAck)
	c.calls[slot].ack = ack
	return Pending{c: c, ack: ack}
}

// ackErr interprets a parked reply for a request that expects a bare OK.
func (c *Client) ackErr(cl *call) error {
	return ackErrWire(cl.replyKind, cl.msg)
}

// ackErrWire interprets a bare-OK reply straight from the wire: nil for OK,
// the server's message for Error. Allocates only on the error path.
func ackErrWire(kind uint8, payload []byte) error {
	switch kind {
	case codec.KindWireOK:
		return nil
	case codec.KindWireError:
		var rd codec.Reader
		rd.Reset(payload)
		msg := rd.Blob()
		if rd.Err() != nil {
			return rd.Err()
		}
		return fmt.Errorf("server: %s", msg)
	default:
		return fmt.Errorf("server: unexpected reply kind %d", kind)
	}
}

// maxUint64 raises a to at least v (atomic high-water mark).
func maxUint64(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
