package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rbmim/internal/codec"
	"rbmim/internal/telemetry"
)

// Pipelined client core.
//
// The wire protocol already carries an echoed request id on every reply, so
// nothing forces a client to stop-and-wait — it only did because the original
// Client serialized begin/finish under a mutex. This file replaces that loop
// with a window of W in-flight requests over one connection:
//
//	caller:  acquire slot -> build frame in the slot -> sendq
//	writer:  drain sendq, register slots in flight, one writev per drain
//	reader:  match each reply to the oldest in-flight slot, resolve the
//	         ack and recycle the slot (ack-only requests) or park the
//	         reply and signal the awaiting caller (payload requests)
//
// Slots are the unit of everything: each of the W slots owns its request
// frame buffer, its reply scratch, and its completion channel, so a caller
// holding a slot builds and consumes in place and the steady state allocates
// nothing. The slot index travels through three uint32 channels — free,
// sendq, inflight — whose combined capacity W makes every send non-blocking
// and makes `free` double as the window semaphore: when W requests are
// outstanding the next acquire parks until a reply releases a slot
// (backpressure, not unbounded queueing).
//
// Request ids encode gen<<32|slot, where gen increments on every slot reuse:
// the reader can therefore verify not just "some id I know" but "the id of
// the exact call occupying this slot right now", catching a server that
// echoes a stale or foreign id. Because the server replies strictly in
// request order per connection and the writer registers a slot in `inflight`
// before its bytes reach the socket, the oldest element of `inflight` is
// always the reply's rightful owner — a reply with no registered slot is a
// protocol violation, not a race.
//
// # Epochs and reconnection
//
// The connection-bound state — socket, inflight queue, writer, reader, and
// stall watchdog — lives in an epoch; the slots, free list, and sendq are
// Client-level and outlive it. A supervisor goroutine watches the current
// epoch: when it dies (transport error, protocol violation, stall), the
// supervisor waits for its loops to exit, reclaims every slot the epoch
// still owed a reply (oldest first) plus everything the writer never picked
// up, and — when RetryPolicy.Reconnect is set and the failure class is
// retryable — redials with capped jittered exponential backoff and hands
// the reclaimed slots to the new epoch, whose writer resubmits them before
// consuming new work from sendq. Per-stream order is preserved (anything
// submitted during the outage sits in sendq, strictly newer), callers never
// notice beyond latency, and the server's session/seq dedup window makes
// the resend of possibly-already-applied requests exactly-once. Without
// Reconnect (the Dial/DialWindow default), the first epoch death
// permanently fails the client.
//
// Permanent failures are sticky and total: they funnel through fail(),
// which records the first error, closes the `dead` channel, and kills the
// current epoch. Every waiter — callers parked on acquire or on a
// completion, the epoch loops, the supervisor's backoff sleep — selects on
// `dead`, so Close (or a non-retryable failure) errors all pending calls
// promptly instead of hanging any of them, and every later method call
// returns the sticky error immediately.

// DefaultWindow is the in-flight window Dial selects: deep enough that a
// single producer saturates the server's request loop, small enough that a
// stalled server applies backpressure within a few hundred KiB of frames.
const DefaultWindow = 32

// A call's fate arbitrates the race between its awaiting caller's deadline
// and the reader delivering its reply: exactly one side wins the CAS from
// fatePending and becomes responsible for the slot.
const (
	fatePending   uint32 = iota // reply outstanding, caller waiting
	fateReplied                 // reader won; caller consumes and releases
	fateAbandoned               // deadline won; reader releases on delivery
)

// call is one slot of the pipeline window: the request frame under
// construction, the identity check for its reply, and the reply itself.
type call struct {
	frame codec.Buffer  // complete framed request (BeginFrame/EndFrame)
	mark  int           // EndFrame mark while the frame is being built
	gen   uint32        // reuse generation; request id = gen<<32|slot
	done  chan struct{} // cap 1; reader signals reply arrival
	fate  atomic.Uint32 // await-path deadline arbitration (see above)

	// RTT telemetry: the request kind's histogram index and the submit
	// stamp. A reconnect's resend keeps the original stamp, so the observed
	// RTT honestly includes the outage the caller actually waited through.
	// Both fields ride the slot through the sendq/inflight channels, which
	// order the caller's writes before the reader's read.
	kindIdx int8 // index into Client.rtt; -1 for unmapped kinds
	sentNS  int64

	// ack, when non-nil, marks an ack-only request (the Async ingest paths,
	// Evict, FlushCheckpoints): the reader resolves the ack itself and
	// releases the slot immediately instead of parking the reply for await.
	ack *pendingAck

	// Reply, owned by the reader until done is signalled, then by the
	// caller until release: the kind and the payload after the echoed id,
	// copied out of the scanner's reused buffer.
	replyKind uint8
	msg       []byte
}

// pendingAck decouples an ack-only request's completion from its window
// slot. The reader interprets the reply and releases the slot the moment it
// lands, so a window slot is never held hostage by a caller that has not
// called Wait yet. Without this, a producer blocked in acquire on one pool
// connection while holding completed-but-unwaited Pendings on another could
// deadlock the window (hold-and-wait across connections) — with it, slots
// recycle as fast as the server replies, no matter when Wait runs. Cells
// are pooled; Wait returns them.
type pendingAck struct {
	err chan error // cap 1; the reader delivers exactly one ack
}

var ackPool = sync.Pool{New: func() any { return &pendingAck{err: make(chan error, 1)} }}

// Client speaks the driftserver wire protocol over one TCP connection at a
// time with a pipelined in-flight window (see the package comment above and
// Dial / DialWindow / DialRetry). All methods are safe for concurrent use;
// calls from one goroutine are delivered in order, and the synchronous
// methods still behave exactly like the serial client's. After Close — or
// after any failure the RetryPolicy does not absorb — every method returns
// the same sticky error.
type Client struct {
	addr    string
	window  int
	policy  RetryPolicy
	session uint64    // exactly-once identity (see dedup.go); pool-shared
	seqs    *seqTable // per-stream seq assignment; pool-shared

	calls    []call
	free     chan uint32 // released slots; doubles as the window semaphore
	sendq    chan uint32 // built frames awaiting the writer
	dead     chan struct{}
	deadOnce sync.Once

	errMu sync.Mutex
	err   error // first permanent failure wins; ErrClientClosed after Close

	epMu sync.Mutex
	ep   *epoch // current connection epoch; protected so fail() can kill it

	acked      atomic.Uint64 // replies matched, across epochs (stall progress)
	reconnects atomic.Uint64

	// rtt holds client-observed round-trip-time histograms per request
	// kind, indexed like serverTele.serve. Always on: the timing is two
	// clock reads on the client's own path and cannot perturb the server.
	rtt [codec.KindWireLastDrift - codec.KindWireIngest + 1]telemetry.Histogram

	wg sync.WaitGroup // the supervisor (which in turn waits epoch loops)
}

// epoch is one connection's lifetime: the socket, the in-flight queue, and
// the goroutines bound to them. Slots travel between epochs; an epoch's
// death hands its outstanding slots to the supervisor for the next one.
type epoch struct {
	c        *Client
	nc       net.Conn
	inflight chan uint32 // written (or about to be) frames awaiting replies
	resub    []uint32    // prior epoch's outstanding slots, oldest first
	dead     chan struct{}
	once     sync.Once
	errMu    sync.Mutex
	err      error
	wg       sync.WaitGroup
	// orphan is the slot the reader had already dequeued from inflight when
	// it killed the epoch (a mismatched or corrupt reply — e.g. the second
	// reply to a frame a middlebox duplicated). It is still owed a reply, and
	// it is older than everything left in inflight, so collect resubmits it
	// first. Written only by the dead reader, read only after ep.wg.Wait.
	orphan int64 // -1 = none
}

// Dial connects to a driftserver at addr ("host:port") with the default
// in-flight window and no retry policy (a dead connection permanently
// fails the client; see DialRetry).
func Dial(addr string) (*Client, error) { return DialWindow(addr, DefaultWindow) }

// DialWindow connects with an explicit in-flight window: up to window
// requests may be outstanding before the next call blocks. window 1
// degenerates to the serial stop-and-wait client.
func DialWindow(addr string, window int) (*Client, error) {
	return DialRetry(addr, window, RetryPolicy{})
}

// DialRetry connects with an explicit in-flight window and retry policy —
// the entry point for clients that must survive real networks (see
// RetryPolicy and DefaultRetryPolicy). The initial dial is not retried;
// the caller decides whether an unreachable server at startup is fatal.
func DialRetry(addr string, window int, policy RetryPolicy) (*Client, error) {
	if window < 1 {
		window = 1
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, classed(ClassTransport, fmt.Errorf("server: dial %s: %w", addr, err))
	}
	return newPipelinedPolicy(addr, nc, window, policy), nil
}

// newPipelined wires the pipeline core around an established connection
// with no retry policy (split from DialWindow so tests can run the core
// over a net.Pipe).
func newPipelined(addr string, nc net.Conn, window int) *Client {
	return newPipelinedPolicy(addr, nc, window, RetryPolicy{})
}

func newPipelinedPolicy(addr string, nc net.Conn, window int, policy RetryPolicy) *Client {
	c := &Client{
		addr:    addr,
		window:  window,
		policy:  policy.withDefaults(),
		session: newSessionID(),
		seqs:    newSeqTable(),
		calls:   make([]call, window),
		free:    make(chan uint32, window),
		sendq:   make(chan uint32, window),
		dead:    make(chan struct{}),
	}
	for i := range c.calls {
		c.calls[i].gen = 1 // ids start nonzero; 0 marks server pushes
		c.calls[i].done = make(chan struct{}, 1)
		c.free <- uint32(i)
	}
	ep := c.newEpoch(nc, nil)
	c.wg.Add(1)
	go c.supervise(ep)
	return c
}

// newEpoch registers a fresh connection as the current epoch and starts its
// loops. Registration and the died-while-dialing check share the epoch
// lock, so a Close racing the redial cannot leave the new socket open.
func (c *Client) newEpoch(nc net.Conn, resub []uint32) *epoch {
	ep := &epoch{
		c:        c,
		nc:       nc,
		inflight: make(chan uint32, c.window),
		resub:    resub,
		dead:     make(chan struct{}),
		orphan:   -1,
	}
	c.epMu.Lock()
	c.ep = ep
	if c.isDead() {
		ep.fail(c.sticky())
	}
	c.epMu.Unlock()
	// All Adds before any goroutine starts: an epoch that dies instantly
	// must not race the supervisor's Wait against a late Add.
	watch := c.policy.StallTimeout > 0
	if watch {
		ep.wg.Add(3)
	} else {
		ep.wg.Add(2)
	}
	go ep.writeLoop()
	go ep.readLoop()
	if watch {
		go ep.stallWatch()
	}
	return ep
}

// supervise owns the epoch lifecycle: wait for the current epoch to die,
// reclaim its outstanding work, and either reconnect (policy allowing) or
// fail the client permanently.
func (c *Client) supervise(ep *epoch) {
	defer c.wg.Done()
	for {
		select {
		case <-ep.dead:
		case <-c.dead:
			ep.fail(c.sticky())
		}
		ep.wg.Wait()
		if c.isDead() {
			return
		}
		err := ep.error()
		if !c.policy.Reconnect || !retryable(err) {
			c.fail(err)
			return
		}
		resub := ep.collect()
		nc, derr := c.redial()
		if derr != nil {
			c.fail(derr)
			return
		}
		c.reconnects.Add(1)
		ep = c.newEpoch(nc, resub)
	}
}

// collect reclaims every slot the dead epoch owed a reply (oldest first —
// its loops have exited, so the queue is quiescent), then everything the
// writer never picked up from sendq. The order is the submission order:
// the reader's orphan (if any) predates all of inflight, inflight is FIFO,
// sendq is FIFO, and nothing in sendq can predate anything in inflight.
func (ep *epoch) collect() []uint32 {
	out := make([]uint32, 0, ep.c.window)
	if ep.orphan >= 0 {
		out = append(out, uint32(ep.orphan))
	}
	for {
		select {
		case s := <-ep.inflight:
			out = append(out, s)
			continue
		default:
		}
		break
	}
	for {
		select {
		case s := <-ep.c.sendq:
			out = append(out, s)
			continue
		default:
		}
		break
	}
	return out
}

// redial dials the server with capped jittered exponential backoff. The
// sleep aborts promptly when the client dies (Close during backoff).
func (c *Client) redial() (net.Conn, error) {
	backoff := c.policy.BackoffBase
	var lastErr error
	for attempt := 1; attempt <= c.policy.MaxDialAttempts; attempt++ {
		if !c.pause(jitter(backoff)) {
			return nil, c.sticky()
		}
		nc, err := net.Dial("tcp", c.addr)
		if err == nil {
			return nc, nil
		}
		lastErr = err
		if backoff *= 2; backoff > c.policy.BackoffMax {
			backoff = c.policy.BackoffMax
		}
	}
	return nil, classed(ClassTransport, fmt.Errorf(
		"server: reconnect to %s failed after %d attempts: %w",
		c.addr, c.policy.MaxDialAttempts, lastErr))
}

// pause sleeps d, returning false the moment the client dies instead —
// Close during a backoff sleep must not wait the sleep out.
func (c *Client) pause(d time.Duration) bool {
	if d <= 0 {
		return !c.isDead()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.dead:
		return false
	}
}

// Window returns the client's in-flight window.
func (c *Client) Window() int { return c.window }

// Reconnects returns how many times the client has replaced a dead
// connection with a fresh one.
func (c *Client) Reconnects() uint64 { return c.reconnects.Load() }

// rttStageNames maps a Client.rtt index to its stage label (same indexing
// as serveStageNames).
var rttStageNames = [...]string{
	"rtt_ingest", "rtt_ingest_batch", "rtt_try_ingest_batch",
	"rtt_subscribe", "rtt_snapshot", "rtt_evict", "rtt_flush",
	"rtt_migrate", "rtt_handoff", "rtt_streams", "rtt_last_drift",
}

// Latency snapshots the client-observed round-trip-time histograms, one
// stage per request kind actually issued (rtt_ingest, rtt_ingest_batch,
// ...), sorted by stage name. RTT spans submit to reply-matched, so it
// includes queue wait behind the window, the server's service time, and —
// across a reconnect — the outage the request rode through.
func (c *Client) Latency() []telemetry.Stage {
	var out []telemetry.Stage
	for i := range c.rtt {
		if st := c.rtt[i].Load(rttStageNames[i]); st.Count > 0 {
			out = append(out, st)
		}
	}
	if out == nil {
		return nil
	}
	return telemetry.MergeStages(out)
}

// Dead reports whether the client has permanently failed (Close, or a
// failure its RetryPolicy does not absorb). A client mid-reconnect is not
// dead — callers park and their requests resume on the next connection.
func (c *Client) Dead() bool { return c.isDead() }

func (c *Client) isDead() bool {
	select {
	case <-c.dead:
		return true
	default:
		return false
	}
}

// Close fails the pipeline with ErrClientClosed (first error wins: a client
// that already died permanently keeps reporting that), closes the
// connection, aborts any reconnect backoff in progress, and waits for the
// supervisor and epoch loops to exit. It is idempotent and safe to call
// concurrently with in-flight requests — those requests' callers all
// receive an error, never a hang. Subscriptions returned by Subscribe have
// their own connections and are closed separately.
func (c *Client) Close() error {
	c.fail(errClosedClassed)
	c.wg.Wait()
	return nil
}

// fail records the first permanent error, marks the client dead, and kills
// the current epoch (closing its socket) so goroutines parked in Read/Write
// error out.
func (c *Client) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
	c.deadOnce.Do(func() { close(c.dead) })
	c.epMu.Lock()
	if c.ep != nil {
		c.ep.fail(err)
	}
	c.epMu.Unlock()
}

// sticky returns the error that killed the client.
func (c *Client) sticky() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// fail records the epoch's first error, marks it dead, and closes its
// socket so its loops error out of blocking reads and writes. The
// supervisor decides what the death means for the client.
func (ep *epoch) fail(err error) {
	ep.errMu.Lock()
	if ep.err == nil {
		ep.err = err
	}
	ep.errMu.Unlock()
	ep.once.Do(func() { close(ep.dead) })
	ep.nc.Close()
}

func (ep *epoch) error() error {
	ep.errMu.Lock()
	defer ep.errMu.Unlock()
	return ep.err
}

// acquire claims a free slot, parking when the full window is in flight.
func (c *Client) acquire() (uint32, error) {
	select {
	case slot := <-c.free:
		return slot, nil
	case <-c.dead:
		return 0, c.sticky()
	}
}

// beginCall starts building the request frame in a claimed slot and returns
// the buffer to append operands to.
func (c *Client) beginCall(slot uint32, kind uint8) *codec.Buffer {
	cl := &c.calls[slot]
	cl.frame.Reset()
	cl.fate.Store(fatePending)
	if i := int(kind) - int(codec.KindWireIngest); i >= 0 && i < len(c.rtt) {
		cl.kindIdx = int8(i)
	} else {
		cl.kindIdx = -1
	}
	cl.mark = cl.frame.BeginFrame(kind)
	cl.frame.U64(uint64(cl.gen)<<32 | uint64(slot))
	return &cl.frame
}

// submit seals the slot's frame and hands it to the writer. The send never
// blocks: sendq's capacity is the window and a slot is in at most one of
// free/sendq/inflight at a time.
func (c *Client) submit(slot uint32) {
	cl := &c.calls[slot]
	cl.frame.EndFrame(cl.mark)
	cl.sentNS = telemetry.Now()
	c.sendq <- slot
}

// await parks until the slot's reply arrives or the client dies, bounded by
// the policy's RequestTimeout. On death a reply that had already landed
// still wins — the call genuinely completed.
func (c *Client) await(slot uint32) (*call, error) {
	return c.awaitTimeout(slot, c.policy.RequestTimeout)
}

func (c *Client) awaitTimeout(slot uint32, timeout time.Duration) (*call, error) {
	cl := &c.calls[slot]
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-cl.done:
		return cl, nil
	case <-c.dead:
		select {
		case <-cl.done:
			return cl, nil
		default:
			// The slot is deliberately not recycled: the client is dead and
			// the reader may still be about to write into it.
			return nil, c.sticky()
		}
	case <-expire:
		// Abandon the call: whichever side wins the fate CAS owns the slot.
		// The request is not cancelled — its reply, whenever it lands (this
		// connection or a reconnect's resend), recycles the slot.
		if cl.fate.CompareAndSwap(fatePending, fateAbandoned) {
			return nil, errDeadlineClassed
		}
		<-cl.done // reply raced the timer and won; consume it
		return cl, nil
	}
}

// release returns a consumed slot to the free list, bumping its generation
// so a stale reply addressed to the previous occupant can never match.
func (c *Client) release(slot uint32) {
	c.calls[slot].gen++
	c.free <- slot
}

// writeLoop drains the send queue and writes frames to the socket, batching
// whatever is queued into a single vector write (writev) so W pipelined
// requests cost ~1 syscall instead of W. A slot is registered in `inflight`
// before its bytes can reach the wire, so by the time the server's reply
// arrives the reader is guaranteed to find the owner at the head of the
// queue. A reconnect epoch resubmits the previous epoch's outstanding
// slots before consuming anything new.
func (ep *epoch) writeLoop() {
	defer ep.wg.Done()
	c := ep.c
	// bufs is the master backing array; wv (the net.Buffers WriteTo consumes
	// and advances) is a copy of its header, so the master keeps its
	// capacity across rounds. wv lives outside the loop because WriteTo's
	// pointer receiver makes it escape — one heap cell for the goroutine's
	// lifetime instead of one allocation per vector write.
	bufs := make(net.Buffers, 0, c.window)
	var wv net.Buffers
	if len(ep.resub) > 0 {
		for _, slot := range ep.resub {
			ep.inflight <- slot
			bufs = append(bufs, c.calls[slot].frame.Bytes())
		}
		if !ep.writeVec(&wv, bufs) {
			return
		}
	}
	for {
		var slot uint32
		select {
		case slot = <-c.sendq:
		case <-ep.dead:
			return
		}
		ep.inflight <- slot
		bufs = append(bufs[:0], c.calls[slot].frame.Bytes())
	coalesce:
		for len(bufs) < c.window {
			select {
			case s := <-c.sendq:
				ep.inflight <- s
				bufs = append(bufs, c.calls[s].frame.Bytes())
			default:
				break coalesce
			}
		}
		if !ep.writeVec(&wv, bufs) {
			return
		}
	}
}

func (ep *epoch) writeVec(wv *net.Buffers, bufs net.Buffers) bool {
	var err error
	if len(bufs) == 1 {
		_, err = ep.nc.Write(bufs[0])
	} else {
		*wv = bufs
		_, err = wv.WriteTo(ep.nc)
	}
	if err != nil {
		ep.fail(classed(ClassTransport, fmt.Errorf("server: write: %w", err)))
		return false
	}
	return true
}

// readLoop matches replies to in-flight slots. The server replies strictly
// in request order per connection, so the oldest registered slot owns the
// next reply; the echoed id (gen<<32|slot) is verified against the slot's
// current occupant, making a mismatched, stale, or unsolicited reply a
// connection-fatal protocol error rather than silent corruption. (With
// Reconnect set, "connection-fatal" means a reconnect: a poisoned stream —
// e.g. the second reply to a frame a middlebox duplicated — is abandoned
// with the socket, and the resent requests dedup server-side.)
func (ep *epoch) readLoop() {
	defer ep.wg.Done()
	c := ep.c
	sc := codec.NewFrameScanner(ep.nc)
	var rd codec.Reader
	for {
		kind, body, err := sc.Next()
		if err != nil {
			ep.fail(classifyRead(err))
			return
		}
		var slot uint32
		select {
		case slot = <-ep.inflight:
		default:
			ep.fail(classed(ClassProtocol, errors.New("server: unsolicited reply with no request in flight")))
			return
		}
		cl := &c.calls[slot]
		rd.Reset(body)
		id := rd.U64()
		if rd.Err() != nil {
			// The dequeued slot is still owed a reply — park it as the
			// epoch's orphan so collect resubmits it ahead of inflight.
			ep.orphan = int64(slot)
			ep.fail(classed(ClassProtocol, fmt.Errorf("server: bad reply frame: %v", rd.Err())))
			return
		}
		if want := uint64(cl.gen)<<32 | uint64(slot); id != want {
			ep.orphan = int64(slot)
			ep.fail(classed(ClassProtocol, fmt.Errorf("server: reply id %#x does not match in-flight request %#x", id, want)))
			return
		}
		c.acked.Add(1)
		if cl.kindIdx >= 0 {
			c.rtt[cl.kindIdx].Observe(telemetry.Now() - cl.sentNS)
		}
		if ack := cl.ack; ack != nil {
			// Ack-only request: interpret the reply here, recycle the slot
			// now (eager window release — see pendingAck), then deliver.
			cl.ack = nil
			err := ackErrWire(kind, body[8:])
			c.release(slot)
			ack.err <- err
			continue
		}
		// Copy the reply payload out of the scanner's reused buffer before
		// the next Next() overwrites it. OK/Busy replies carry nothing, so
		// the hot path copies zero bytes.
		cl.replyKind = kind
		cl.msg = append(cl.msg[:0], body[8:]...)
		if cl.fate.CompareAndSwap(fatePending, fateReplied) {
			cl.done <- struct{}{}
		} else {
			// The awaiting caller abandoned the call at its deadline; the
			// reply is consumed here and the slot recycled.
			c.release(slot)
		}
	}
}

// classifyRead maps a reader failure to its class: a clean EOF at a frame
// boundary is the server draining gracefully; a mid-frame cut is a crashed
// transport (callers can test errors.Is(err, io.ErrUnexpectedEOF)); other
// corruption is a protocol failure — also cleared by a reconnect, since a
// fresh connection abandons the poisoned stream.
func classifyRead(err error) error {
	if err == io.EOF {
		return classed(ClassTransport, ErrServerDrain)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return classed(ClassTransport, fmt.Errorf("server: reading reply: %w", err))
	}
	return classed(ClassProtocol, fmt.Errorf("server: reading reply: %w", err))
}

// stallWatch kills an epoch whose connection stopped making progress with
// requests outstanding — the black-holed connection, which neither read nor
// write errors ever surface. Progress is replies matched (c.acked); an
// empty pipeline never stalls. The kill is an ordinary transport failure,
// so a Reconnect policy redials and resends.
func (ep *epoch) stallWatch() {
	defer ep.wg.Done()
	c := ep.c
	interval := c.policy.StallTimeout / 8
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	last := c.acked.Load()
	var stalled time.Duration
	for {
		select {
		case <-ep.dead:
			return
		case <-t.C:
		}
		if a := c.acked.Load(); a != last || len(ep.inflight) == 0 {
			last = a
			stalled = 0
			continue
		}
		stalled += interval
		if stalled >= c.policy.StallTimeout {
			ep.fail(classed(ClassTransport, fmt.Errorf(
				"server: connection stalled: no reply in %v with requests in flight",
				c.policy.StallTimeout)))
			return
		}
	}
}

// Pending is the handle of an asynchronous request (IngestAsync /
// IngestBatchAsync): the request is on the wire (or queued behind the
// window); Wait parks until its ack. The window slot is released by the
// reader the moment the reply lands — a Pending that has not been waited
// yet never blocks other requests. Wait must still be called exactly once
// per Pending (it consumes the ack and recycles its cell). The zero
// Pending is invalid.
type Pending struct {
	c   *Client
	ack *pendingAck
}

// Wait blocks until the request's reply arrives and returns the ack error
// (nil for OK, ErrBusy for an overload shed, the server's message for
// Error, the sticky client error if the client died permanently). When the
// client's RetryPolicy sets RequestTimeout, Wait is bounded by it.
func (p Pending) Wait() error {
	var timeout time.Duration
	if p.c != nil {
		timeout = p.c.policy.RequestTimeout
	}
	return p.waitTimeout(timeout)
}

// WaitTimeout is Wait bounded by d (overriding the policy's
// RequestTimeout); d <= 0 waits indefinitely. Past the bound it returns
// ErrDeadlineExceeded and abandons the ack — the request is NOT cancelled:
// the server may still apply it, and a reconnect may still resend it, with
// the session/seq window keeping the eventual commit exactly-once. An
// abandoned Pending must not be waited again.
func (p Pending) WaitTimeout(d time.Duration) error { return p.waitTimeout(d) }

// WaitDeadline is WaitTimeout against an absolute deadline. A deadline
// already in the past still wins an ack that has landed; otherwise it
// returns ErrDeadlineExceeded without parking.
func (p Pending) WaitDeadline(t time.Time) error {
	if p.c == nil || p.ack == nil {
		return errors.New("server: Wait on zero Pending")
	}
	d := time.Until(t)
	if d <= 0 {
		select {
		case err := <-p.ack.err:
			ackPool.Put(p.ack)
			return err
		default:
			return errDeadlineClassed
		}
	}
	return p.waitTimeout(d)
}

func (p Pending) waitTimeout(timeout time.Duration) error {
	if p.c == nil || p.ack == nil {
		return errors.New("server: Wait on zero Pending")
	}
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case err := <-p.ack.err:
		ackPool.Put(p.ack)
		return err
	case <-p.c.dead:
		// An ack that had already landed still wins — the call genuinely
		// completed.
		select {
		case err := <-p.ack.err:
			ackPool.Put(p.ack)
			return err
		default:
			// The reader died before resolving this ack. The cell is
			// abandoned rather than pooled: the reader may have been
			// mid-delivery when it was killed.
			return p.c.sticky()
		}
	case <-expire:
		select {
		case err := <-p.ack.err:
			ackPool.Put(p.ack)
			return err
		default:
			// Abandoned, not pooled: the reader will still deliver into the
			// cell when the reply lands; nobody collects it.
			return errDeadlineClassed
		}
	}
}

// asyncAck attaches a pooled ack cell to a claimed slot (before submit, so
// the reader cannot race it) and returns the caller's Pending handle.
func (c *Client) asyncAck(slot uint32) Pending {
	ack := ackPool.Get().(*pendingAck)
	c.calls[slot].ack = ack
	return Pending{c: c, ack: ack}
}

// ackErr interprets a parked reply for a request that expects a bare OK.
func (c *Client) ackErr(cl *call) error {
	return ackErrWire(cl.replyKind, cl.msg)
}

// ackErrWire interprets a bare-OK reply straight from the wire: nil for OK,
// ErrBusy for an overload shed, the server's message for Error. Allocates
// only on the Error path.
func ackErrWire(kind uint8, payload []byte) error {
	switch kind {
	case codec.KindWireOK:
		return nil
	case codec.KindWireBusy:
		return errBusyClassed
	case codec.KindWireError:
		var rd codec.Reader
		rd.Reset(payload)
		msg := rd.Blob()
		if rd.Err() != nil {
			return rd.Err()
		}
		return fmt.Errorf("server: %s", msg)
	default:
		return fmt.Errorf("server: unexpected reply kind %d", kind)
	}
}

// maxUint64 raises a to at least v (atomic high-water mark).
func maxUint64(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
