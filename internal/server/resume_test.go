package server

import (
	"bufio"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
	"rbmim/internal/synth"
)

// TestServerKillResume is the server-level analogue of the monitor's
// kill-resume equivalence test, with a real process boundary: a driftserver
// is driven over loopback, checkpoint-flushed, killed with SIGKILL (no
// graceful shutdown, no close-time flush), and restarted against the same
// FSStore directory. The restarted server must rehydrate every stream and
// produce exactly the drift decisions an uninterrupted in-process run makes
// on the same observation sequence — which it can only do because RBM-IM's
// save -> load -> continue is bit-identical.
func TestServerKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-process test (builds and spawns driftserver)")
	}
	const (
		streams  = 4
		n        = 3000 // per stream
		cut      = 1500 // SIGKILL after this many observations per stream
		driftAt  = 2000 // concept switch (detected ~2100, well after the cut)
		features = 12
		classes  = 3
		seed     = 7
		batch    = 100
	)

	// Workload: per stream, concept A then a sharply different concept B.
	type wstream struct {
		id  string
		obs []detectors.Observation
	}
	workload := make([]wstream, streams)
	for s := range workload {
		a, err := synth.NewRBF(synth.Config{Features: features, Classes: classes, Seed: int64(100 + s)}, 3, 0.08)
		if err != nil {
			t.Fatal(err)
		}
		b, err := synth.NewRBF(synth.Config{Features: features, Classes: classes, Seed: int64(900 + s)}, 5, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		obs := make([]detectors.Observation, n)
		for i := range obs {
			src := a
			if i >= driftAt {
				src = b
			}
			in := src.Next()
			obs[i] = detectors.Observation{X: in.X, TrueClass: in.Y, Predicted: in.Y}
		}
		workload[s] = wstream{id: fmt.Sprintf("stream-%d", s), obs: obs}
	}

	// Reference: one uninterrupted in-process monitor with the exact
	// configuration driftserver builds from its flags.
	var refMu sync.Mutex
	refEvents := map[string][]uint64{}
	ref, err := monitor.New(monitor.Config{
		Detector: core.Config{Features: features, Classes: classes, Seed: seed, AdaptiveWindow: true},
		Shards:   2,
		OnDrift: func(ev monitor.Event) {
			refMu.Lock()
			refEvents[ev.StreamID] = append(refEvents[ev.StreamID], ev.Seq)
			refMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range ref.Events() {
		}
	}()
	for _, ws := range workload {
		for i := 0; i < n; i += batch {
			if err := ref.IngestBatch(ws.id, ws.obs[i:i+batch]); err != nil {
				t.Fatal(err)
			}
		}
	}
	ref.Close()
	wantPost := map[string][]uint64{}
	post := 0
	for id, seqs := range refEvents {
		for _, q := range seqs {
			if q > cut {
				wantPost[id] = append(wantPost[id], q)
				post++
			}
		}
	}
	if post == 0 {
		t.Fatal("reference run produced no post-cut drifts; the equivalence check would be vacuous")
	}

	// Build the real binary once.
	dir := t.TempDir()
	bin := filepath.Join(dir, "driftserver")
	build := exec.Command("go", "build", "-o", bin, "./cmd/driftserver")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building driftserver: %v\n%s", err, out)
	}
	ckptDir := filepath.Join(dir, "ckpt")
	serverArgs := []string{
		"-addr", "127.0.0.1:0",
		"-features", fmt.Sprint(features), "-classes", fmt.Sprint(classes),
		"-seed", fmt.Sprint(seed), "-adaptive", "-shards", "2",
		// A cadence that never fires: durability comes only from the
		// explicit FlushCheckpoints, so the kill point is exact.
		"-checkpoint", ckptDir, "-ckptint", "1h",
	}
	start := func() (*exec.Cmd, string) {
		cmd := exec.Command(bin, serverArgs...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "driftserver: serving on ") {
				addr := strings.TrimPrefix(line, "driftserver: serving on ")
				go func() { // keep draining so the child never blocks on stdout
					for sc.Scan() {
					}
				}()
				return cmd, addr
			}
		}
		t.Fatalf("driftserver never reported its address (scan err: %v)", sc.Err())
		return nil, ""
	}

	// Phase 1: first half of every stream, explicit durability, SIGKILL.
	cmd1, addr1 := start()
	c1, err := Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range workload {
		for i := 0; i < cut; i += batch {
			if err := c1.IngestBatch(ws.id, ws.obs[i:i+batch]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c1.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	if err := cmd1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait() // reaps the kill; exit status is expectedly non-zero

	// Phase 2: restart on the same store, subscribe, replay the second half.
	cmd2, addr2 := start()
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	sub, err := c2.Subscribe(4096)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for _, ws := range workload {
		for i := cut; i < n; i += batch {
			if err := c2.IngestBatch(ws.id, ws.obs[i:i+batch]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c2.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	sn, err := c2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Rehydrated != streams {
		t.Fatalf("restarted server rehydrated %d streams, want %d", sn.Rehydrated, streams)
	}
	if sn.Ingested != uint64(streams*(n-cut)) {
		t.Fatalf("restarted server ingested %d, want %d", sn.Ingested, streams*(n-cut))
	}
	if sn.CheckpointErrors != 0 {
		t.Fatalf("restarted server hit %d checkpoint errors", sn.CheckpointErrors)
	}
	// This process's drift counter counts post-restart decisions only; its
	// events are still in flight on the subscription, so collect until the
	// counts agree.
	gotPost := map[string][]uint64{}
	received := 0
	deadline := time.After(10 * time.Second)
	for uint64(received) < sn.Drifts {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("event stream ended after %d of %d events (err: %v)", received, sn.Drifts, sub.Err())
			}
			gotPost[ev.StreamID] = append(gotPost[ev.StreamID], ev.Seq)
			received++
		case <-deadline:
			t.Fatalf("timed out after %d of %d events", received, sn.Drifts)
		}
	}

	// The acceptance criterion: identical post-restart drift decisions.
	for id, want := range wantPost {
		got := gotPost[id]
		if len(got) != len(want) {
			t.Fatalf("stream %s: post-restart drifts at %v, reference %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stream %s: post-restart drifts at %v, reference %v", id, got, want)
			}
		}
	}
	for id := range gotPost {
		if _, ok := wantPost[id]; !ok {
			t.Fatalf("stream %s drifted post-restart but not in the reference run", id)
		}
	}
}
