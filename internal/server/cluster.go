package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
	"rbmim/internal/telemetry"
)

// ClusterClient shards the stream space across a fleet of driftservers: a
// client-side consistent-hash ring maps every stream ID to one member, and
// each member is driven through its own retrying ClientPool, so the whole
// single-node stack — pipelining, exactly-once sequence dedup, reconnect
// with resend, shedding-aware Busy retry — composes per node. There is no
// proxy tier and no coordination service: the ring is a pure function of
// (member list, stream ID), so any number of ClusterClients over the same
// member list route identically (see DESIGN.md, "Cluster routing").
//
// The ring hashes VirtualNodes points per member (monitor.Hash64 over
// "addr#i"), which keeps the load spread even with few members and — the
// consistent-hashing invariant — makes a topology change remap only ~K/n of
// K streams across n members. Jump hash, which places monitor shards, is
// not used here: it only supports removing the highest-numbered bucket,
// and a fleet must survive any member leaving.
//
// Stream migration (Migrate, and Rebalance's bulk form) moves a live
// stream's trained detector between members via the checkpoint codec: the
// source server applies everything pipelined ahead, serializes the detector
// into the same envelope frame its checkpoint store holds, spills a copy,
// and removes the stream; the caller installs the frame on the target. The
// restored stream continues bit-identically to never having moved. During
// the transfer the stream's requests are excluded by a striped gate (its
// stripe's write lock); afterwards an override pins routing to the target
// until the ring agrees. Because the export travels the stream's own
// connection behind its pipelined ingests, and resends of an applied export
// re-read the spilled copy, migration keeps the exactly-once story intact
// under reconnects and retries.
//
// All methods are safe for concurrent use.
type ClusterClient struct {
	conns  int
	window int
	vnodes int
	policy RetryPolicy

	mu        sync.RWMutex
	ring      *hashRing
	members   map[string]*ClientPool
	overrides map[string]string // stream -> member addr, where it disagrees with the ring
	closed    bool

	// gates stripe the stream space: requests hold their stream's stripe
	// read-locked for the duration of the call, a migration holds the write
	// lock, so a stream is never ingested mid-transfer. 256 stripes keep
	// writer exclusion cheap (a migration blocks ~1/256th of streams).
	gates [gateStripes]sync.RWMutex

	rebalanceMu sync.Mutex // serializes Rebalance; requests and Migrate stay concurrent
	migrations  atomic.Uint64
}

const gateStripes = 256

// ClusterConfig parameterizes DialCluster. Addrs is required; every other
// zero value selects a default.
type ClusterConfig struct {
	// Addrs lists the fleet members (driftserver TCP addresses). Order does
	// not matter: routing depends only on the set.
	Addrs []string
	// Conns is the pooled connection count per member (DialPool); default 1.
	Conns int
	// Window is the pipelined in-flight window per connection; default 1.
	Window int
	// VirtualNodes is the ring points hashed per member; default 64, which
	// keeps the max/mean stream-load ratio within a few percent for small
	// fleets. More points smooth further at O(n·vnodes·log) ring build cost.
	VirtualNodes int
	// Policy is the per-connection retry policy (reconnect, resend, Busy
	// backoff); the zero value disables retries, exactly like DialRetry.
	Policy RetryPolicy
}

// DialCluster connects to every member of the fleet and returns the routing
// client. Like DialPool it fails fast: any unreachable member fails the
// whole dial (a fleet with a hole would silently concentrate load).
func DialCluster(cfg ClusterConfig) (*ClusterClient, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("server: DialCluster needs at least one address")
	}
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.VirtualNodes < 1 {
		cfg.VirtualNodes = 64
	}
	addrs := dedupAddrs(cfg.Addrs)
	cc := &ClusterClient{
		conns:     cfg.Conns,
		window:    cfg.Window,
		vnodes:    cfg.VirtualNodes,
		policy:    cfg.Policy,
		ring:      newHashRing(addrs, cfg.VirtualNodes),
		members:   make(map[string]*ClientPool, len(addrs)),
		overrides: make(map[string]string),
	}
	for _, addr := range addrs {
		p, err := DialPoolRetry(addr, cc.conns, cc.window, cc.policy)
		if err != nil {
			cc.Close()
			return nil, fmt.Errorf("server: dialing cluster member %s: %w", addr, err)
		}
		cc.members[addr] = p
	}
	return cc, nil
}

func dedupAddrs(addrs []string) []string {
	seen := make(map[string]struct{}, len(addrs))
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		out = append(out, a)
	}
	return out
}

// gate returns the stripe lock guarding streamID's migrations.
func (cc *ClusterClient) gate(streamID string) *sync.RWMutex {
	return &cc.gates[monitor.Hash64(streamID)&(gateStripes-1)]
}

// route resolves streamID to its member pool: a migration override first
// (ignored if it points at a member that has since left), the ring
// otherwise.
func (cc *ClusterClient) route(streamID string) (*ClientPool, string, error) {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.routeLocked(streamID)
}

func (cc *ClusterClient) routeLocked(streamID string) (*ClientPool, string, error) {
	if cc.closed {
		return nil, "", ErrClientClosed
	}
	if addr, ok := cc.overrides[streamID]; ok {
		if p, ok := cc.members[addr]; ok {
			return p, addr, nil
		}
	}
	addr := cc.ring.owner(streamID)
	return cc.members[addr], addr, nil
}

// Owner returns the member address streamID currently routes to.
func (cc *ClusterClient) Owner(streamID string) (string, error) {
	_, addr, err := cc.route(streamID)
	return addr, err
}

// Members returns the fleet's member addresses, sorted.
func (cc *ClusterClient) Members() []string {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	out := make([]string, 0, len(cc.members))
	for addr := range cc.members {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Migrations returns how many stream migrations this client has completed.
func (cc *ClusterClient) Migrations() uint64 { return cc.migrations.Load() }

// Ingest routes one observation to the stream's member and waits for the
// ack (Client.Ingest semantics through the member's pool).
func (cc *ClusterClient) Ingest(streamID string, o detectors.Observation) error {
	g := cc.gate(streamID)
	g.RLock()
	defer g.RUnlock()
	p, _, err := cc.route(streamID)
	if err != nil {
		return err
	}
	return p.Ingest(streamID, o)
}

// IngestAsync routes one observation without waiting for its ack. The
// migration gate is held only for the submission: the request is pipelined
// on the stream's connection, and a later migration on that connection
// queues behind it, so the observation is applied before any export.
func (cc *ClusterClient) IngestAsync(streamID string, o detectors.Observation) (Pending, error) {
	g := cc.gate(streamID)
	g.RLock()
	defer g.RUnlock()
	p, _, err := cc.route(streamID)
	if err != nil {
		return Pending{}, err
	}
	return p.IngestAsync(streamID, o)
}

// IngestBatch routes a block to the stream's member and waits for the ack.
func (cc *ClusterClient) IngestBatch(streamID string, obs []detectors.Observation) error {
	g := cc.gate(streamID)
	g.RLock()
	defer g.RUnlock()
	p, _, err := cc.route(streamID)
	if err != nil {
		return err
	}
	return p.IngestBatch(streamID, obs)
}

// IngestBatchAsync routes a block without waiting for its ack (see
// IngestAsync for the gate semantics).
func (cc *ClusterClient) IngestBatchAsync(streamID string, obs []detectors.Observation) (Pending, error) {
	g := cc.gate(streamID)
	g.RLock()
	defer g.RUnlock()
	p, _, err := cc.route(streamID)
	if err != nil {
		return Pending{}, err
	}
	return p.IngestBatchAsync(streamID, obs)
}

// TryIngestBatch routes a block without blocking backpressure: a full or
// shedding member surfaces as (false, nil), exactly like
// Client.TryIngestBatch.
func (cc *ClusterClient) TryIngestBatch(streamID string, obs []detectors.Observation) (bool, error) {
	g := cc.gate(streamID)
	g.RLock()
	defer g.RUnlock()
	p, _, err := cc.route(streamID)
	if err != nil {
		return false, err
	}
	return p.TryIngestBatch(streamID, obs)
}

// Evict routes the eviction to the stream's member (Client.Evict
// semantics); a pinned override for the evicted stream is left in place, so
// a re-ingest rehydrates where the state was spilled.
func (cc *ClusterClient) Evict(streamID string) error {
	g := cc.gate(streamID)
	g.RLock()
	defer g.RUnlock()
	p, _, err := cc.route(streamID)
	if err != nil {
		return err
	}
	return p.Evict(streamID)
}

// FlushCheckpoints flushes every member (ClientPool.FlushCheckpoints over
// the fleet): a full processing and durability barrier for everything sent
// before the call, on every node. It stops at the first error.
func (cc *ClusterClient) FlushCheckpoints() error {
	for _, member := range cc.pools() {
		if err := member.pool.FlushCheckpoints(); err != nil {
			return fmt.Errorf("server: flush %s: %w", member.addr, err)
		}
	}
	return nil
}

// Snapshot returns the fleet-merged view: every member's snapshot folded
// through monitor.MergeSnapshots. The conservation identity survives the
// merge, so at quiescence (after FlushCheckpoints) the fleet-wide
// Received == Ingested + Rejected holds exactly.
func (cc *ClusterClient) Snapshot() (monitor.Snapshot, error) {
	sns, err := cc.MemberSnapshots()
	if err != nil {
		return monitor.Snapshot{}, err
	}
	merged := make([]monitor.Snapshot, 0, len(sns))
	for _, m := range sns {
		merged = append(merged, m.Snapshot)
	}
	return monitor.MergeSnapshots(merged...), nil
}

// LastDrift fetches the most recent drift report for a stream from the
// member that owns it (see Client.LastDrift). Taken under the stream's
// migration gate so a concurrent Migrate cannot answer from the wrong node.
func (cc *ClusterClient) LastDrift(streamID string) (monitor.DriftReport, bool, error) {
	g := cc.gate(streamID)
	g.RLock()
	defer g.RUnlock()
	p, _, err := cc.route(streamID)
	if err != nil {
		return monitor.DriftReport{}, false, err
	}
	return p.LastDrift(streamID)
}

// Latency merges the client-observed RTT histograms across every member
// pool (see Client.Latency) — the fleet-wide ingest-latency view from this
// client's vantage point.
func (cc *ClusterClient) Latency() []telemetry.Stage {
	var groups [][]telemetry.Stage
	for _, member := range cc.pools() {
		if st := member.pool.Latency(); len(st) > 0 {
			groups = append(groups, st)
		}
	}
	if len(groups) == 0 {
		return nil
	}
	return telemetry.MergeStages(groups...)
}

// MemberSnapshot is one member's snapshot, labelled with its address.
type MemberSnapshot struct {
	Addr string
	monitor.Snapshot
}

// MemberSnapshots fetches every member's snapshot, in Members() order.
func (cc *ClusterClient) MemberSnapshots() ([]MemberSnapshot, error) {
	var out []MemberSnapshot
	for _, member := range cc.pools() {
		sn, err := member.pool.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("server: snapshot %s: %w", member.addr, err)
		}
		out = append(out, MemberSnapshot{Addr: member.addr, Snapshot: sn})
	}
	return out, nil
}

type memberRef struct {
	addr string
	pool *ClientPool
}

// pools snapshots the member set in sorted address order, so fleet-wide
// operations iterate deterministically without holding cc.mu across
// network calls.
func (cc *ClusterClient) pools() []memberRef {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	out := make([]memberRef, 0, len(cc.members))
	for addr, p := range cc.members {
		out = append(out, memberRef{addr, p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// IsStreamNotFound reports whether err is a Migrate failure for a stream the
// source member neither hosts nor has checkpointed (the server relays
// monitor.ErrStreamNotFound as an Error reply, so the match is textual).
func IsStreamNotFound(err error) bool {
	return err != nil && strings.Contains(err.Error(), "stream not found")
}

// isAlreadyResident matches the target-side refusal of a duplicate Handoff.
// A reconnect can resend a Handoff whose ack was lost after the import
// applied, so under the migration gate (no other writer can have installed
// the stream) this refusal means the handoff succeeded.
func isAlreadyResident(err error) bool {
	return err != nil && strings.Contains(err.Error(), "already resident")
}

// Migrate moves streamID to the target member: export from wherever it
// currently routes, install on the target, repoint routing. The stream's
// requests are held out by its stripe gate for the duration; its pipelined
// requests already in flight are applied first (the export travels the same
// connection, behind them). Moving a stream that has no state anywhere
// (never ingested, or spilled on a member that since left) just repoints
// the routing. Migrating a stream to the member it already routes to is a
// no-op.
//
// On a failed install the source is restored best-effort (hand the state
// back, or rely on the source's checkpoint spill to rehydrate on the next
// ingest) and routing is left unchanged.
func (cc *ClusterClient) Migrate(streamID, target string) error {
	g := cc.gate(streamID)
	g.Lock()
	defer g.Unlock()
	cc.mu.RLock()
	src, cur, err := cc.routeLocked(streamID)
	dst, ok := cc.members[target]
	cc.mu.RUnlock()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("server: migrate %q: %s is not a cluster member", streamID, target)
	}
	if cur == target {
		return nil
	}
	return cc.transfer(streamID, src, dst, target)
}

// transfer is the gate-held export/install/repoint core shared by Migrate
// and Rebalance. The caller holds the stream's stripe write lock.
func (cc *ClusterClient) transfer(streamID string, src, dst *ClientPool, target string) error {
	state, err := src.Migrate(streamID)
	if err != nil {
		if IsStreamNotFound(err) {
			cc.pin(streamID, target)
			return nil
		}
		return err
	}
	if err := dst.Handoff(streamID, state); err != nil && !isAlreadyResident(err) {
		// Put the state back where it came from so the stream keeps its
		// training even without a source-side checkpoint store. A duplicate
		// refusal here means the source still holds it (a resend raced);
		// any other failure leaves the spilled copy as the recovery path.
		if restoreErr := src.Handoff(streamID, state); restoreErr != nil && !isAlreadyResident(restoreErr) {
			return fmt.Errorf("server: migrate %q: install on %s failed (%v) and restore failed: %w",
				streamID, target, err, restoreErr)
		}
		return fmt.Errorf("server: migrate %q: install on %s: %w", streamID, target, err)
	}
	cc.migrations.Add(1)
	cc.pin(streamID, target)
	return nil
}

// pin repoints streamID's routing at target: an override where the ring
// disagrees, nothing where it already agrees.
func (cc *ClusterClient) pin(streamID, target string) {
	cc.mu.Lock()
	if cc.ring.owner(streamID) == target {
		delete(cc.overrides, streamID)
	} else {
		cc.overrides[streamID] = target
	}
	cc.mu.Unlock()
}

// Rebalance transitions the fleet to a new member list, migrating only the
// streams the ring remaps (~K/n of K streams for one member joining or
// leaving — the consistent-hashing invariant) and returns how many it
// moved. New members are dialed first; the ring is swapped only after the
// bulk sweep, so requests keep routing to wherever each stream's state
// actually is throughout (each completed migration repoints its own stream
// immediately via override). Members leaving the fleet are drained — swept
// once in bulk and once after the swap for stragglers that first ingested
// mid-sweep — and then closed.
//
// Rebalance runs concurrently with ingest traffic; only each migrating
// stream is briefly excluded by its stripe gate. Concurrent Rebalance calls
// serialize. Observations are never lost or double-applied (the per-member
// exactly-once tables are untouched), but a stream whose very first
// observations race the ring swap can split its earliest training across
// two members; the winning copy is the routed one, and the loser's spill
// remains in the old member's store.
func (cc *ClusterClient) Rebalance(addrs []string) (int, error) {
	if len(addrs) == 0 {
		return 0, fmt.Errorf("server: Rebalance needs at least one address")
	}
	cc.rebalanceMu.Lock()
	defer cc.rebalanceMu.Unlock()

	addrs = dedupAddrs(addrs)
	next := make(map[string]struct{}, len(addrs))
	for _, a := range addrs {
		next[a] = struct{}{}
	}

	// Dial joiners before touching shared state, so a failed dial aborts
	// with the fleet unchanged.
	cc.mu.RLock()
	if cc.closed {
		cc.mu.RUnlock()
		return 0, ErrClientClosed
	}
	var joiners []string
	for _, a := range addrs {
		if _, ok := cc.members[a]; !ok {
			joiners = append(joiners, a)
		}
	}
	cc.mu.RUnlock()
	dialed := make(map[string]*ClientPool, len(joiners))
	for _, a := range joiners {
		p, err := DialPoolRetry(a, cc.conns, cc.window, cc.policy)
		if err != nil {
			for _, d := range dialed {
				d.Close()
			}
			return 0, fmt.Errorf("server: dialing cluster member %s: %w", a, err)
		}
		dialed[a] = p
	}

	// Install joiners (the old ring never routes to them, so they take no
	// traffic yet) and compute the target ring.
	newRing := newHashRing(addrs, cc.vnodes)
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		for _, d := range dialed {
			d.Close()
		}
		return 0, ErrClientClosed
	}
	for a, p := range dialed {
		cc.members[a] = p
	}
	old := make([]memberRef, 0, len(cc.members))
	for addr, p := range cc.members {
		old = append(old, memberRef{addr, p})
	}
	sort.Slice(old, func(i, j int) bool { return old[i].addr < old[j].addr })
	cc.mu.Unlock()

	// Bulk sweep: list each current member's residents and move every
	// stream whose target-ring owner differs. Each transfer repoints its
	// stream's routing the moment it lands, so traffic follows the state.
	moved := 0
	var firstErr error
	for _, member := range old {
		if _, staying := next[member.addr]; staying && len(dialed) == 0 && len(old) == len(addrs) {
			// Identical topology: nothing can have remapped.
			continue
		}
		ids, err := member.pool.StreamIDs()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("server: listing streams on %s: %w", member.addr, err)
			}
			continue
		}
		for _, id := range ids {
			target := newRing.owner(id)
			if target == member.addr {
				continue
			}
			ok, err := cc.sweepTransfer(id, member.addr, target)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if ok {
				moved++
			}
		}
	}

	// Swap the ring; prune overrides the new ring agrees with, and
	// overrides pointing at leavers (their streams were just swept).
	cc.mu.Lock()
	cc.ring = newRing
	var leavers []memberRef
	for addr, p := range cc.members {
		if _, ok := next[addr]; !ok {
			leavers = append(leavers, memberRef{addr, p})
			delete(cc.members, addr)
		}
	}
	for id, addr := range cc.overrides {
		if _, gone := next[addr]; !gone || newRing.owner(id) == addr {
			delete(cc.overrides, id)
		}
	}
	cc.mu.Unlock()

	// Barrier: every request that routed before the swap holds its stripe
	// read-locked for the duration of its call, so cycling every stripe's
	// write lock guarantees no in-flight request can still land on a leaver.
	for i := range cc.gates {
		cc.gates[i].Lock()
		cc.gates[i].Unlock() //nolint:staticcheck // intentional barrier, not a critical section
	}

	// Straggler sweep: streams that first ingested on a leaver mid-sweep.
	// Routing no longer points there, so move their state to wherever each
	// stream routes now.
	for _, leaver := range leavers {
		ids, err := leaver.pool.StreamIDs()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("server: listing streams on %s: %w", leaver.addr, err)
			}
			continue
		}
		for _, id := range ids {
			g := cc.gate(id)
			g.Lock()
			cc.mu.RLock()
			dst, target, err := cc.routeLocked(id)
			cc.mu.RUnlock()
			if err == nil && target != leaver.addr {
				err = cc.transfer(id, leaver.pool, dst, target)
				if err == nil {
					moved++
				}
			}
			g.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		leaver.pool.Close()
	}
	return moved, firstErr
}

// sweepTransfer is one bulk-sweep migration: under the stream's gate,
// re-verify it still routes to the member it was listed on (a concurrent
// Migrate may have moved it) and transfer it to the target member. Returns
// whether a transfer happened.
func (cc *ClusterClient) sweepTransfer(streamID, from, target string) (bool, error) {
	g := cc.gate(streamID)
	g.Lock()
	defer g.Unlock()
	cc.mu.RLock()
	src, cur, err := cc.routeLocked(streamID)
	dst, ok := cc.members[target]
	cc.mu.RUnlock()
	if err != nil {
		return false, err
	}
	if cur != from || cur == target || !ok {
		return false, nil
	}
	if err := cc.transfer(streamID, src, dst, target); err != nil {
		return false, err
	}
	return true, nil
}

// Close closes every member pool. In-flight requests receive errors, never
// hangs; Close is idempotent.
func (cc *ClusterClient) Close() error {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil
	}
	cc.closed = true
	pools := make([]*ClientPool, 0, len(cc.members))
	for _, p := range cc.members {
		pools = append(pools, p)
	}
	cc.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
	return nil
}

// ringPoint is one virtual node: a member address at a hash position.
type ringPoint struct {
	hash   uint64
	member string
}

// hashRing is a classic sorted consistent-hash ring with virtual nodes: a
// stream is owned by the first point clockwise from its hash. Immutable
// once built — topology changes build a new ring and swap it.
type hashRing struct {
	points []ringPoint
}

// ringHash positions a key on the ring: the monitor's placement hash with a
// 64-bit avalanche finalizer (MurmurHash3 fmix64) on top. Raw FNV-1a leaves
// sequentially numbered keys ("stream-00042", "stream-00043", ...) in
// correlated clusters — its final byte only goes through one multiply — and
// clustered keys defeat the whole point of the ring: whole runs of streams
// would land on one member. The finalizer makes neighboring keys
// independent without changing the monitor-side placement hash.
func ringHash(s string) uint64 {
	h := monitor.Hash64(s)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func newHashRing(members []string, vnodes int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{ringHash(m + "#" + strconv.Itoa(v)), m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit hash collision between virtual nodes is vanishingly
		// unlikely, but the tiebreak keeps ownership deterministic and
		// member-order independent even then.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// owner returns the member owning streamID: the first ring point at or
// clockwise-after the stream's hash, wrapping at the top.
func (r *hashRing) owner(streamID string) string {
	h := ringHash(streamID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}
