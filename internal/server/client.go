package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rbmim/internal/codec"
	"rbmim/internal/core"
	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
)

// ErrClientClosed is returned by Client methods after Close. The error is
// sticky: once Close (or a transport failure) kills the client, every later
// call — including calls that were racing the Close — fails with the same
// error instead of racing the connection teardown.
var ErrClientClosed = errors.New("server: client closed")

// This file is the Client's request method set; the pipelined transport
// underneath (slots, writer, reader, Pending) lives in pipeline.go and the
// multi-connection ClientPool in mux.go. Every method is a thin shell over
// the same four steps — acquire a window slot, build the request frame in
// it, submit, await the matched reply — so the synchronous API and the
// Async variants share one code path and the 0 allocs/op steady state.

// Ingest sends one observation for one stream and waits for the ack. The
// server applies the monitor's blocking backpressure, so a full shard queue
// delays the reply rather than dropping data. A Busy reply (overload shed)
// is retried with backoff up to RetryPolicy.BusyAttempts — with the same
// sequence number, so the eventual commit is exactly once.
func (c *Client) Ingest(streamID string, o detectors.Observation) error {
	return c.ingestSeq(streamID, o, c.seqs.next(streamID))
}

// ingestSeq is Ingest at a fixed sequence number: the Busy-retry loop, and
// ClientPool's failover resend (same seq on a different connection).
func (c *Client) ingestSeq(streamID string, o detectors.Observation, seq uint64) error {
	backoff := c.policy.BusyBackoff
	for attempt := 0; ; attempt++ {
		p, err := c.ingestAsyncSeq(streamID, o, seq)
		if err != nil {
			return err
		}
		err = p.Wait()
		if err == nil || Classify(err) != ClassBusy || attempt >= c.policy.BusyAttempts {
			return err
		}
		if !c.pause(jitter(backoff)) {
			return c.sticky()
		}
		if backoff *= 2; backoff > c.policy.BackoffMax {
			backoff = c.policy.BackoffMax
		}
	}
}

// IngestAsync sends one observation without waiting for its ack, returning a
// Pending whose Wait delivers it. Up to Window() requests may be outstanding
// before the call blocks on the in-flight window. Requests from one
// goroutine reach the server in call order. Busy replies are not retried on
// the async path — Wait surfaces ErrBusy and the caller decides.
func (c *Client) IngestAsync(streamID string, o detectors.Observation) (Pending, error) {
	return c.ingestAsyncSeq(streamID, o, c.seqs.next(streamID))
}

func (c *Client) ingestAsyncSeq(streamID string, o detectors.Observation, seq uint64) (Pending, error) {
	slot, err := c.acquire()
	if err != nil {
		return Pending{}, err
	}
	p := c.asyncAck(slot)
	b := c.beginCall(slot, codec.KindWireIngest)
	b.U64(c.session)
	b.U64(seq)
	b.Str(streamID)
	encodeObs(b, o)
	c.submit(slot)
	return p, nil
}

// IngestBatch sends a block of observations for one stream in a single
// frame — one server-side queue hop, one batched detector update — and
// waits for the ack. Steady state allocates nothing on either side. An
// empty block is a no-op. Busy replies retry like Ingest's.
func (c *Client) IngestBatch(streamID string, obs []detectors.Observation) error {
	return c.ingestBatchSeq(streamID, obs, c.seqs.next(streamID))
}

func (c *Client) ingestBatchSeq(streamID string, obs []detectors.Observation, seq uint64) error {
	backoff := c.policy.BusyBackoff
	for attempt := 0; ; attempt++ {
		p, err := c.ingestBatchAsyncSeq(streamID, obs, seq)
		if err != nil {
			return err
		}
		err = p.Wait()
		if err == nil || Classify(err) != ClassBusy || attempt >= c.policy.BusyAttempts {
			return err
		}
		if !c.pause(jitter(backoff)) {
			return c.sticky()
		}
		if backoff *= 2; backoff > c.policy.BackoffMax {
			backoff = c.policy.BackoffMax
		}
	}
}

// IngestBatchAsync is IngestBatch without waiting for the ack — the
// pipelined bulk-load path: keep Window() batches in flight and the
// connection streams frames back to back instead of idling a round trip
// between blocks.
func (c *Client) IngestBatchAsync(streamID string, obs []detectors.Observation) (Pending, error) {
	return c.ingestBatchAsyncSeq(streamID, obs, c.seqs.next(streamID))
}

func (c *Client) ingestBatchAsyncSeq(streamID string, obs []detectors.Observation, seq uint64) (Pending, error) {
	slot, err := c.acquire()
	if err != nil {
		return Pending{}, err
	}
	p := c.asyncAck(slot)
	c.encodeBatch(slot, codec.KindWireIngestBatch, streamID, obs, seq)
	c.submit(slot)
	return p, nil
}

// TryIngestBatch is IngestBatch without blocking backpressure: a full shard
// queue on the server surfaces as a Busy reply, returned here as
// (false, nil) — the caller decides whether to retry, thin out, or drop,
// exactly like Monitor.TryIngestBatch in process. A refused batch's
// sequence number is simply never committed; a later attempt gets a fresh
// one.
func (c *Client) TryIngestBatch(streamID string, obs []detectors.Observation) (bool, error) {
	slot, err := c.acquire()
	if err != nil {
		return false, err
	}
	c.encodeBatch(slot, codec.KindWireTryIngestBatch, streamID, obs, c.seqs.next(streamID))
	c.submit(slot)
	cl, err := c.await(slot)
	if err != nil {
		return false, err
	}
	if cl.replyKind == codec.KindWireBusy {
		c.release(slot)
		return false, nil
	}
	// Anything but OK (an Error reply, a protocol violation) means the batch
	// was not accepted — mirror Monitor.TryIngestBatch's (false, err).
	err = c.ackErr(cl)
	c.release(slot)
	return err == nil, err
}

func (c *Client) encodeBatch(slot uint32, kind uint8, streamID string, obs []detectors.Observation, seq uint64) {
	b := c.beginCall(slot, kind)
	b.U64(c.session)
	b.U64(seq)
	b.Str(streamID)
	b.U32(uint32(len(obs)))
	for i := range obs {
		encodeObs(b, obs[i])
	}
}

// Evict asks the server to evict a stream (spilling its state to the
// checkpoint store when one is configured). Like Monitor.Evict the removal
// is asynchronous; FlushCheckpoints acts as the barrier.
func (c *Client) Evict(streamID string) error {
	slot, err := c.acquire()
	if err != nil {
		return err
	}
	p := c.asyncAck(slot)
	c.beginCall(slot, codec.KindWireEvict).Str(streamID)
	c.submit(slot)
	return p.Wait()
}

// FlushCheckpoints asks the server to process everything queued ahead of
// the call and flush every dirty stream to the checkpoint store, returning
// when the writes are durable (Monitor.FlushCheckpoints over the wire).
// Without a configured store it is still a full processing barrier — and
// because the server handles one connection's requests in order, it is also
// a barrier for every request pipelined ahead of it on this connection.
func (c *Client) FlushCheckpoints() error {
	slot, err := c.acquire()
	if err != nil {
		return err
	}
	p := c.asyncAck(slot)
	c.beginCall(slot, codec.KindWireFlush)
	c.submit(slot)
	return p.Wait()
}

// Snapshot fetches the monitor's aggregate counters, including the
// server-side wire counters (InFlightHighWater, RepliesCoalesced) the
// in-process monitor cannot know.
func (c *Client) Snapshot() (monitor.Snapshot, error) {
	slot, err := c.acquire()
	if err != nil {
		return monitor.Snapshot{}, err
	}
	c.beginCall(slot, codec.KindWireSnapshotReq)
	c.submit(slot)
	cl, err := c.await(slot)
	if err != nil {
		return monitor.Snapshot{}, err
	}
	if cl.replyKind != codec.KindWireSnapshot {
		err := c.ackErr(cl)
		c.release(slot)
		if err == nil {
			err = fmt.Errorf("server: unexpected snapshot reply kind %d", cl.replyKind)
		}
		return monitor.Snapshot{}, err
	}
	var rd codec.Reader
	rd.Reset(cl.msg)
	data := rd.Blob()
	if rd.Err() != nil {
		c.release(slot)
		return monitor.Snapshot{}, rd.Err()
	}
	var sn monitor.Snapshot
	err = json.Unmarshal(data, &sn)
	c.release(slot)
	if err != nil {
		return monitor.Snapshot{}, fmt.Errorf("server: decoding snapshot: %w", err)
	}
	return sn, nil
}

// Migrate asks the server to export a stream for handoff: the stream's
// queued observations are applied, its detector state is serialized into a
// checkpoint envelope frame (and spilled to the server's checkpoint store,
// when one is configured), and the stream is removed from the server — the
// returned bytes are the only live copy unless the server is checkpointed.
// Feed them to Handoff on the target server; the restored stream continues
// bit-identically. A stream that is neither resident nor in the server's
// store draws an Error reply whose message contains "stream not found"
// (match with IsStreamNotFound).
func (c *Client) Migrate(streamID string) ([]byte, error) {
	slot, err := c.acquire()
	if err != nil {
		return nil, err
	}
	b := c.beginCall(slot, codec.KindWireMigrate)
	b.Str(streamID)
	c.submit(slot)
	cl, err := c.await(slot)
	if err != nil {
		return nil, err
	}
	if cl.replyKind != codec.KindWireState {
		err := c.ackErr(cl)
		c.release(slot)
		if err == nil {
			err = fmt.Errorf("server: unexpected migrate reply kind %d", cl.replyKind)
		}
		return nil, err
	}
	var rd codec.Reader
	rd.Reset(cl.msg)
	data := rd.Blob()
	err = rd.Err()
	// The reply buffer is slot-owned; copy before releasing the slot.
	state := make([]byte, len(data))
	copy(state, data)
	c.release(slot)
	if err != nil {
		return nil, err
	}
	return state, nil
}

// Handoff installs a state frame produced by Migrate (on this or another
// server with a compatible detector configuration) as a new resident stream.
// Installing over an already resident stream is refused with an Error reply;
// the caller routes ingests away from the target until Handoff returns.
func (c *Client) Handoff(streamID string, state []byte) error {
	slot, err := c.acquire()
	if err != nil {
		return err
	}
	p := c.asyncAck(slot)
	b := c.beginCall(slot, codec.KindWireHandoff)
	b.Str(streamID)
	b.U32(uint32(len(state)))
	b.Write(state)
	c.submit(slot)
	return p.Wait()
}

// LastDrift fetches the server's most recent drift report for a stream —
// when it fired, which classes, and the flight-recorder samples (recent
// per-class reconstruction error / trend slope / ADWIN width) leading up to
// it. found is false when the stream has not drifted since the server
// started (reports are process-local observability: they survive eviction
// but are not checkpointed, so a restart clears them).
func (c *Client) LastDrift(streamID string) (monitor.DriftReport, bool, error) {
	slot, err := c.acquire()
	if err != nil {
		return monitor.DriftReport{}, false, err
	}
	b := c.beginCall(slot, codec.KindWireLastDrift)
	b.Str(streamID)
	c.submit(slot)
	cl, err := c.await(slot)
	if err != nil {
		return monitor.DriftReport{}, false, err
	}
	if cl.replyKind != codec.KindWireDrift {
		err := c.ackErr(cl)
		c.release(slot)
		if err == nil {
			err = fmt.Errorf("server: unexpected last-drift reply kind %d", cl.replyKind)
		}
		return monitor.DriftReport{}, false, err
	}
	var rd codec.Reader
	rd.Reset(cl.msg)
	data := rd.Blob()
	if err := rd.Err(); err != nil {
		c.release(slot)
		return monitor.DriftReport{}, false, err
	}
	if len(data) == 0 {
		c.release(slot)
		return monitor.DriftReport{}, false, nil
	}
	var rep monitor.DriftReport
	err = json.Unmarshal(data, &rep)
	c.release(slot)
	if err != nil {
		return monitor.DriftReport{}, false, fmt.Errorf("server: decoding drift report: %w", err)
	}
	return rep, true, nil
}

// StreamIDs lists the server's resident streams, sorted. Like
// FlushCheckpoints it travels the shard queues, so the listing includes at
// least every stream whose first ingest was acknowledged before the call —
// the enumeration cluster rebalancing uses to find remapped streams.
func (c *Client) StreamIDs() ([]string, error) {
	slot, err := c.acquire()
	if err != nil {
		return nil, err
	}
	c.beginCall(slot, codec.KindWireStreams)
	c.submit(slot)
	cl, err := c.await(slot)
	if err != nil {
		return nil, err
	}
	if cl.replyKind != codec.KindWireStreamIDs {
		err := c.ackErr(cl)
		c.release(slot)
		if err == nil {
			err = fmt.Errorf("server: unexpected streams reply kind %d", cl.replyKind)
		}
		return nil, err
	}
	var rd codec.Reader
	rd.Reset(cl.msg)
	n := int(rd.U32())
	var ids []string
	for i := 0; i < n && rd.Err() == nil; i++ {
		ids = append(ids, string(rd.Blob()))
	}
	err = rd.Err()
	c.release(slot)
	if err != nil {
		return nil, err
	}
	return ids, nil
}

// Subscription is a client-side drift-event stream (see Client.Subscribe).
// It owns a dedicated connection; the server pushes Event frames which
// arrive on Events.
type Subscription struct {
	nc     net.Conn
	ch     chan monitor.Event
	done   chan struct{} // closed by Close; unblocks a parked delivery
	once   sync.Once
	closed atomic.Bool

	mu  sync.Mutex
	err error
}

// Events returns the event channel. It is closed when the subscription is
// closed, the server shuts down, the server evicts this subscriber for
// falling irrecoverably behind (monitor.Config.SubscriberEvictDrops), or
// the connection fails; Err explains a non-local close.
func (s *Subscription) Events() <-chan monitor.Event { return s.ch }

// Err returns why the event channel closed: nil after a local Close or a
// server shutdown's clean end-of-stream, the transport or protocol error
// otherwise.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close terminates the subscription and its connection. It is idempotent
// and safe to call with undrained events still queued: a delivery parked on
// the full channel is released, so the decode goroutine never leaks.
func (s *Subscription) Close() error {
	s.once.Do(func() {
		s.closed.Store(true)
		close(s.done)
		s.nc.Close()
	})
	return nil
}

// Subscribe opens a dedicated connection that streams every drift event the
// monitor publishes. buffer sizes the server-side per-subscriber queue
// (<= 0 selects the server's default): when this subscriber falls behind —
// slow reader, slow link — events overflowing that queue are dropped for
// this subscriber only and counted in Snapshot.SubscriberDropped (and, when
// the server's monitor enables SubscriberEvictDrops, a subscriber that
// keeps dropping is evicted: its event channel closes).
func (c *Client) Subscribe(buffer int) (*Subscription, error) {
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", c.addr, err)
	}
	b := codec.NewBuffer(nil)
	b.U64(1)
	if buffer < 0 {
		buffer = 0
	}
	b.U32(uint32(buffer))
	if _, err := nc.Write(codec.AppendFrame(nil, codec.KindWireSubscribe, b.Bytes())); err != nil {
		nc.Close()
		return nil, fmt.Errorf("server: write: %w", err)
	}
	sc := codec.NewFrameScanner(nc)
	kind, body, err := sc.Next()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("server: reading subscribe reply: %w", err)
	}
	rd := codec.NewReader(body)
	rd.U64() // request id
	switch kind {
	case codec.KindWireOK:
	case codec.KindWireError:
		msg := rd.Blob()
		nc.Close()
		return nil, fmt.Errorf("server: %s", msg)
	default:
		nc.Close()
		return nil, fmt.Errorf("server: unexpected subscribe reply kind %d", kind)
	}
	chanCap := buffer
	if chanCap <= 0 {
		chanCap = 256
	}
	sub := &Subscription{
		nc:   nc,
		ch:   make(chan monitor.Event, chanCap),
		done: make(chan struct{}),
	}
	go sub.loop(sc)
	return sub, nil
}

// loop decodes pushed Event frames until the stream ends. Delivery into the
// local channel is blocking: a consumer that stops reading eventually
// stalls this loop, TCP pushes back, and the overflow is dropped (and
// counted) at the server-side subscriber queue — never silently in between.
func (s *Subscription) loop(sc *codec.FrameScanner) {
	defer close(s.ch)
	for {
		kind, body, err := sc.Next()
		if err != nil {
			// A clean end-of-stream (server shutdown) and a local Close both
			// end quietly; anything else is worth surfacing via Err.
			if err != io.EOF && !s.closed.Load() {
				s.fail(err)
			}
			return
		}
		if kind != codec.KindWireEvent {
			s.fail(fmt.Errorf("server: unexpected frame kind %d on event stream", kind))
			s.nc.Close()
			return
		}
		rd := codec.NewReader(body)
		rd.U64() // id, always 0 for pushes
		ev := monitor.Event{StreamID: string(rd.Blob())}
		ev.Seq = rd.U64()
		ev.At = time.Unix(0, rd.I64())
		ev.Classes = rd.Ints()
		// Trailing flight-recorder blob: JSON DriftRecord, len 0 when absent.
		if rec := rd.Blob(); rd.Err() == nil && len(rec) > 0 {
			r := new(core.DriftRecord)
			if json.Unmarshal(rec, r) == nil {
				ev.Record = r
			}
		}
		if rd.Done() != nil {
			s.fail(fmt.Errorf("server: bad event frame: %v", rd.Done()))
			s.nc.Close()
			return
		}
		select {
		case s.ch <- ev:
		case <-s.done:
			// Closed with the channel full and nobody reading: exit instead
			// of leaking this goroutine on the parked send.
			return
		}
	}
}

func (s *Subscription) fail(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}
