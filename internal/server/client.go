package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rbmim/internal/codec"
	"rbmim/internal/detectors"
	"rbmim/internal/monitor"
)

// ErrClientClosed is returned by Client methods after Close.
var ErrClientClosed = errors.New("server: client closed")

// Client speaks the driftserver wire protocol. One Client owns one TCP
// connection plus connection-owned scratch buffers (encode payload, frame,
// reply scanner), so steady-state Ingest/IngestBatch calls allocate
// nothing: the 0 allocs/op hot path of the in-process Monitor survives the
// network boundary. Requests on one Client are serialized (a mutex); use
// one Client per producer goroutine for parallel ingestion, exactly like
// the monitor's producers.
type Client struct {
	addr string

	mu      sync.Mutex
	nc      net.Conn
	sc      *codec.FrameScanner
	rd      codec.Reader
	payload *codec.Buffer
	frame   []byte
	nextID  uint64
	closed  bool
}

// Dial connects to a driftserver at addr ("host:port").
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return &Client{
		addr:    addr,
		nc:      nc,
		sc:      codec.NewFrameScanner(nc),
		payload: codec.NewBuffer(nil),
	}, nil
}

// Close closes the connection. Subscriptions returned by Subscribe have
// their own connections and are closed separately.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}

// begin starts a request payload (caller holds c.mu) and returns the buffer
// to append operands to.
func (c *Client) begin() *codec.Buffer {
	c.nextID++
	c.payload.Reset()
	c.payload.U64(c.nextID)
	return c.payload
}

// finish frames the pending request, writes it, and reads the matching
// reply. On success the client's reader is positioned just after the echoed
// request id, ready for reply operands.
func (c *Client) finish(kind uint8) (replyKind uint8, err error) {
	c.frame = codec.AppendFrame(c.frame[:0], kind, c.payload.Bytes())
	if _, err := c.nc.Write(c.frame); err != nil {
		return 0, fmt.Errorf("server: write: %w", err)
	}
	k, body, err := c.sc.Next()
	if err != nil {
		return 0, fmt.Errorf("server: reading reply: %w", err)
	}
	c.rd.Reset(body)
	id := c.rd.U64()
	if err := c.rd.Err(); err != nil {
		return 0, err
	}
	if id != c.nextID {
		return 0, fmt.Errorf("server: reply id %d does not match request %d", id, c.nextID)
	}
	return k, nil
}

// expectOK maps a reply kind to an error: OK is success, Error carries the
// server's message, anything else is a protocol violation.
func (c *Client) expectOK(kind uint8) error {
	switch kind {
	case codec.KindWireOK:
		return nil
	case codec.KindWireError:
		msg := c.rd.Blob()
		if c.rd.Err() != nil {
			return c.rd.Err()
		}
		return fmt.Errorf("server: %s", msg)
	default:
		return fmt.Errorf("server: unexpected reply kind %d", kind)
	}
}

// Ingest sends one observation for one stream and waits for the ack. The
// server applies the monitor's blocking backpressure, so a full shard queue
// delays the reply rather than dropping data.
func (c *Client) Ingest(streamID string, o detectors.Observation) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	b := c.begin()
	b.Str(streamID)
	encodeObs(b, o)
	k, err := c.finish(codec.KindWireIngest)
	if err != nil {
		return err
	}
	return c.expectOK(k)
}

// IngestBatch sends a block of observations for one stream in a single
// frame — one round trip, one server-side queue hop, one batched detector
// update — and waits for the ack. Steady state allocates nothing on either
// side. An empty block is a no-op.
func (c *Client) IngestBatch(streamID string, obs []detectors.Observation) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	k, err := c.sendBatch(codec.KindWireIngestBatch, streamID, obs)
	if err != nil {
		return err
	}
	return c.expectOK(k)
}

// TryIngestBatch is IngestBatch without blocking backpressure: a full shard
// queue on the server surfaces as a Busy reply, returned here as
// (false, nil) — the caller decides whether to retry, thin out, or drop,
// exactly like Monitor.TryIngestBatch in process.
func (c *Client) TryIngestBatch(streamID string, obs []detectors.Observation) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, ErrClientClosed
	}
	k, err := c.sendBatch(codec.KindWireTryIngestBatch, streamID, obs)
	if err != nil {
		return false, err
	}
	if k == codec.KindWireBusy {
		return false, nil
	}
	// Anything but OK (an Error reply, a protocol violation) means the batch
	// was not accepted — mirror Monitor.TryIngestBatch's (false, err).
	return k == codec.KindWireOK, c.expectOK(k)
}

func (c *Client) sendBatch(kind uint8, streamID string, obs []detectors.Observation) (uint8, error) {
	b := c.begin()
	b.Str(streamID)
	b.U32(uint32(len(obs)))
	for i := range obs {
		encodeObs(b, obs[i])
	}
	return c.finish(kind)
}

// Evict asks the server to evict a stream (spilling its state to the
// checkpoint store when one is configured). Like Monitor.Evict the removal
// is asynchronous; FlushCheckpoints acts as the barrier.
func (c *Client) Evict(streamID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	c.begin().Str(streamID)
	k, err := c.finish(codec.KindWireEvict)
	if err != nil {
		return err
	}
	return c.expectOK(k)
}

// FlushCheckpoints asks the server to process everything queued ahead of
// the call and flush every dirty stream to the checkpoint store, returning
// when the writes are durable (Monitor.FlushCheckpoints over the wire).
// Without a configured store it is still a full processing barrier.
func (c *Client) FlushCheckpoints() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	c.begin()
	k, err := c.finish(codec.KindWireFlush)
	if err != nil {
		return err
	}
	return c.expectOK(k)
}

// Snapshot fetches the monitor's aggregate counters.
func (c *Client) Snapshot() (monitor.Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return monitor.Snapshot{}, ErrClientClosed
	}
	c.begin()
	k, err := c.finish(codec.KindWireSnapshotReq)
	if err != nil {
		return monitor.Snapshot{}, err
	}
	if k != codec.KindWireSnapshot {
		return monitor.Snapshot{}, c.expectOK(k)
	}
	data := c.rd.Blob()
	if err := c.rd.Err(); err != nil {
		return monitor.Snapshot{}, err
	}
	var sn monitor.Snapshot
	if err := json.Unmarshal(data, &sn); err != nil {
		return monitor.Snapshot{}, fmt.Errorf("server: decoding snapshot: %w", err)
	}
	return sn, nil
}

// Subscription is a client-side drift-event stream (see Client.Subscribe).
// It owns a dedicated connection; the server pushes Event frames which
// arrive on Events.
type Subscription struct {
	nc     net.Conn
	ch     chan monitor.Event
	done   chan struct{} // closed by Close; unblocks a parked delivery
	once   sync.Once
	closed atomic.Bool

	mu  sync.Mutex
	err error
}

// Events returns the event channel. It is closed when the subscription is
// closed, the server shuts down, or the connection fails; Err explains a
// non-local close.
func (s *Subscription) Events() <-chan monitor.Event { return s.ch }

// Err returns why the event channel closed: nil after a local Close or a
// server shutdown's clean end-of-stream, the transport or protocol error
// otherwise.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close terminates the subscription and its connection. It is idempotent
// and safe to call with undrained events still queued: a delivery parked on
// the full channel is released, so the decode goroutine never leaks.
func (s *Subscription) Close() error {
	s.once.Do(func() {
		s.closed.Store(true)
		close(s.done)
		s.nc.Close()
	})
	return nil
}

// Subscribe opens a dedicated connection that streams every drift event the
// monitor publishes. buffer sizes the server-side per-subscriber queue
// (<= 0 selects the server's default): when this subscriber falls behind —
// slow reader, slow link — events overflowing that queue are dropped for
// this subscriber only and counted in Snapshot.SubscriberDropped.
func (c *Client) Subscribe(buffer int) (*Subscription, error) {
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", c.addr, err)
	}
	b := codec.NewBuffer(nil)
	b.U64(1)
	if buffer < 0 {
		buffer = 0
	}
	b.U32(uint32(buffer))
	if _, err := nc.Write(codec.AppendFrame(nil, codec.KindWireSubscribe, b.Bytes())); err != nil {
		nc.Close()
		return nil, fmt.Errorf("server: write: %w", err)
	}
	sc := codec.NewFrameScanner(nc)
	kind, body, err := sc.Next()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("server: reading subscribe reply: %w", err)
	}
	rd := codec.NewReader(body)
	rd.U64() // request id
	switch kind {
	case codec.KindWireOK:
	case codec.KindWireError:
		msg := rd.Blob()
		nc.Close()
		return nil, fmt.Errorf("server: %s", msg)
	default:
		nc.Close()
		return nil, fmt.Errorf("server: unexpected subscribe reply kind %d", kind)
	}
	chanCap := buffer
	if chanCap <= 0 {
		chanCap = 256
	}
	sub := &Subscription{
		nc:   nc,
		ch:   make(chan monitor.Event, chanCap),
		done: make(chan struct{}),
	}
	go sub.loop(sc)
	return sub, nil
}

// loop decodes pushed Event frames until the stream ends. Delivery into the
// local channel is blocking: a consumer that stops reading eventually
// stalls this loop, TCP pushes back, and the overflow is dropped (and
// counted) at the server-side subscriber queue — never silently in between.
func (s *Subscription) loop(sc *codec.FrameScanner) {
	defer close(s.ch)
	for {
		kind, body, err := sc.Next()
		if err != nil {
			// A clean end-of-stream (server shutdown) and a local Close both
			// end quietly; anything else is worth surfacing via Err.
			if err != io.EOF && !s.closed.Load() {
				s.fail(err)
			}
			return
		}
		if kind != codec.KindWireEvent {
			s.fail(fmt.Errorf("server: unexpected frame kind %d on event stream", kind))
			s.nc.Close()
			return
		}
		rd := codec.NewReader(body)
		rd.U64() // id, always 0 for pushes
		ev := monitor.Event{StreamID: string(rd.Blob())}
		ev.Seq = rd.U64()
		ev.At = time.Unix(0, rd.I64())
		ev.Classes = rd.Ints()
		if rd.Done() != nil {
			s.fail(fmt.Errorf("server: bad event frame: %v", rd.Done()))
			s.nc.Close()
			return
		}
		select {
		case s.ch <- ev:
		case <-s.done:
			// Closed with the channel full and nobody reading: exit instead
			// of leaking this goroutine on the parked send.
			return
		}
	}
}

func (s *Subscription) fail(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}
