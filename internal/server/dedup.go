package server

import (
	"math"
	"sync"
	"sync/atomic"
)

// Exactly-once ingest under retry.
//
// A reconnecting client cannot know whether a request that was in flight
// when its connection died was applied before the ack was lost — so it must
// resend, and a resend of an already-applied batch would double-count
// observations, silently corrupting the prequential drift statistics the
// whole system exists to compute. Every Ingest / IngestBatch /
// TryIngestBatch frame therefore carries the client's session id (a random
// nonzero uint64 minted per Client or shared per ClientPool) and a
// per-stream sequence number; the server remembers, per (session, stream),
// which of the last DedupWindow sequence numbers it has committed and acks a
// duplicate with OK without re-ingesting.
//
// The window is an exact-set bitmap, not a high-water mark: with W requests
// pipelined, a Busy-shed batch's retry can race batches with newer sequence
// numbers that were accepted, so "seq <= max applied" does not imply
// "applied". A seq that has fallen out of the window entirely is treated as
// applied (ack, don't re-ingest): sequence numbers are assigned in send
// order per stream, so a seq can only age out of the window after the
// window's worth of newer seqs for the same stream were committed — which,
// as long as DedupWindow comfortably exceeds the client's total in-flight
// requests per stream (default 1024 vs a default window of 32), means its
// own fate was decided long ago and the conservative answer is the one that
// cannot double-ingest.
//
// Sessions are capped: past maxSessions the least-recently-active session's
// state is dropped (a client that comes back after eviction retries into an
// empty window, which at worst re-ingests — bounded memory is the better
// failure mode for a server facing session churn).

// dedupStream is one (session, stream)'s committed-seq window: a bitmap
// over the window-aligned positions of the last `window` sequence numbers,
// plus the highest committed seq that anchors it.
type dedupStream struct {
	maxSeq uint64
	bits   []uint64
}

type dedupSession struct {
	streams    map[string]*dedupStream
	lastActive uint64 // dedupTable.tick at last touch; eviction order
}

// dedupTable is the server's (session, stream) → committed-seq-window map.
// One mutex guards it: the critical sections are a map probe and a bitmap
// test or set, far cheaper than the decode and ring push on either side.
type dedupTable struct {
	window      uint64 // power of two, >= 64
	maxSessions int
	hits        atomic.Uint64

	mu       sync.Mutex
	sessions map[uint64]*dedupSession
	tick     uint64
}

func newDedupTable(window, maxSessions int) *dedupTable {
	w := uint64(64)
	for w < uint64(window) {
		w <<= 1
	}
	return &dedupTable{
		window:      w,
		maxSessions: maxSessions,
		sessions:    make(map[uint64]*dedupSession),
	}
}

func (st *dedupStream) bit(seq, window uint64) (idx int, mask uint64) {
	return int((seq & (window - 1)) >> 6), 1 << (seq & 63)
}

// applied reports whether (session, stream, seq) was already committed,
// counting a hit. Sessions and streams never seen are trivially fresh.
func (d *dedupTable) applied(session uint64, stream string, seq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick++
	ds := d.sessions[session]
	if ds == nil {
		return false
	}
	ds.lastActive = d.tick
	st := ds.streams[stream]
	if st == nil || seq > st.maxSeq {
		return false
	}
	dup := true
	if st.maxSeq-seq < d.window {
		idx, mask := st.bit(seq, d.window)
		dup = st.bits[idx]&mask != 0
	}
	if dup {
		d.hits.Add(1)
	}
	return dup
}

// commit records (session, stream, seq) as applied. Advancing past maxSeq
// clears the bitmap positions the new range reuses, so a gap's seqs (never
// committed: a Busy shed, a bad payload) stay reported fresh while they
// remain inside the window.
func (d *dedupTable) commit(session uint64, stream string, seq uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick++
	ds := d.sessions[session]
	if ds == nil {
		d.evictOldest()
		ds = &dedupSession{streams: make(map[string]*dedupStream)}
		d.sessions[session] = ds
	}
	ds.lastActive = d.tick
	st := ds.streams[stream]
	if st == nil {
		st = &dedupStream{bits: make([]uint64, d.window/64)}
		ds.streams[stream] = st
	}
	if seq > st.maxSeq {
		if seq-st.maxSeq >= d.window {
			clear(st.bits)
		} else {
			for s := st.maxSeq + 1; s <= seq; s++ {
				idx, mask := st.bit(s, d.window)
				st.bits[idx] &^= mask
			}
		}
		st.maxSeq = seq
	}
	idx, mask := st.bit(seq, d.window)
	st.bits[idx] |= mask
}

// evictOldest drops the least-recently-active session when the table is at
// its cap. Called with d.mu held, before inserting a new session.
func (d *dedupTable) evictOldest() {
	if d.maxSessions <= 0 || len(d.sessions) < d.maxSessions {
		return
	}
	var victim uint64
	oldest := uint64(math.MaxUint64)
	for id, s := range d.sessions {
		if s.lastActive < oldest {
			oldest = s.lastActive
			victim = id
		}
	}
	delete(d.sessions, victim)
}
