package server

import (
	"math"
	"sync"
	"sync/atomic"
)

// Exactly-once ingest under retry.
//
// A reconnecting client cannot know whether a request that was in flight
// when its connection died was applied before the ack was lost — so it must
// resend, and a resend of an already-applied batch would double-count
// observations, silently corrupting the prequential drift statistics the
// whole system exists to compute. Every Ingest / IngestBatch /
// TryIngestBatch frame therefore carries the client's session id (a random
// nonzero uint64 minted per Client or shared per ClientPool) and a
// per-stream sequence number; the server remembers, per (session, stream),
// which of the last DedupWindow sequence numbers it has committed and acks a
// duplicate with OK without re-ingesting.
//
// The fate of a (session, stream, seq) is resolved atomically via claim:
// the first handler to claim a seq owns it and marks it in flight *before*
// ingesting, and a duplicate arriving on another connection while the owner
// is still blocked inside the monitor's enqueue waits (on the table's
// condition variable) for the owner's settle instead of racing it. Without
// the in-flight marker the reconnect-under-stall scenario double-ingests:
// the old connection's handler sits in Monitor.Ingest (it commits only
// after the blocking enqueue returns) while the client's resend on the new
// connection passes the committed-check and ingests the same observations
// again. The marker is a plain token in a map — no per-claim allocation, so
// the zero-alloc steady state of the serving loop survives.
//
// The window is an exact-set bitmap, not a high-water mark: with W requests
// pipelined, a Busy-shed batch's retry can race batches with newer sequence
// numbers that were accepted, so "seq <= max applied" does not imply
// "applied". A seq that has fallen out of the window entirely is
// *undecidable* — it was either committed long ago or is a gap (a Busy
// shed, an outage resend) that never committed — so it is rejected with an
// error rather than acked: an ack would report silent data loss as success
// for the never-committed case, while an error at worst makes the client
// surface a failure for data that did land (the loud, recoverable side).
// As long as DedupWindow comfortably exceeds the client's total in-flight
// requests per stream (default 1024 vs a default window of 32) a live
// retry's seq cannot age out, so the rejection only fires for pathological
// deferral.
//
// Sessions are capped: past maxSessions the least-recently-active session's
// state is dropped (a client that comes back after eviction retries into an
// empty window, which at worst re-ingests — bounded memory is the better
// failure mode for a server facing session churn). Eviction wakes any
// waiter parked on the victim's in-flight seqs so nobody is stranded.

// claimState is the atomically-resolved fate of a (session, stream, seq);
// see dedupTable.claim.
type claimState uint8

const (
	// claimOwned: the caller owns the seq (marked in flight) and must
	// settle it exactly once, on every outcome path.
	claimOwned claimState = iota
	// claimApplied: duplicate of a committed seq; ack without re-ingesting.
	claimApplied
	// claimAged: the seq fell out of the window undecided; reject.
	claimAged
)

// dedupStream is one (session, stream)'s committed-seq window: a bitmap
// over the window-aligned positions of the last `window` sequence numbers,
// the highest committed seq that anchors it, and the seqs currently being
// ingested (seq → owner's claim token).
type dedupStream struct {
	maxSeq   uint64
	bits     []uint64
	inflight map[uint64]uint64 // lazily allocated
}

type dedupSession struct {
	streams    map[string]*dedupStream
	lastActive uint64 // dedupTable.tick at last touch; eviction order
}

// dedupTable is the server's (session, stream) → committed-seq-window map.
// One mutex guards it: the critical sections are a map probe and a bitmap
// test or set, far cheaper than the decode and ring push on either side.
// cond (on mu) wakes handlers waiting out a concurrent in-flight duplicate.
type dedupTable struct {
	window      uint64 // power of two, >= 64
	maxSessions int
	hits        atomic.Uint64

	mu        sync.Mutex
	cond      sync.Cond
	sessions  map[uint64]*dedupSession
	tick      uint64
	lastToken uint64 // claim token generator; 0 is never issued
}

func newDedupTable(window, maxSessions int) *dedupTable {
	w := uint64(64)
	for w < uint64(window) {
		w <<= 1
	}
	d := &dedupTable{
		window:      w,
		maxSessions: maxSessions,
		sessions:    make(map[uint64]*dedupSession),
	}
	d.cond.L = &d.mu
	return d
}

func (st *dedupStream) bit(seq, window uint64) (idx int, mask uint64) {
	return int((seq & (window - 1)) >> 6), 1 << (seq & 63)
}

// claim atomically resolves the fate of (session, stream, seq) against both
// the committed window and concurrent handlers. A seq currently in flight
// on another connection (the reconnect-resend race) blocks here until that
// handler settles — or its session is evicted — then re-resolves. For
// claimOwned the returned token (nonzero) must be passed back to settle; it
// keeps settle precise when the session was evicted and re-claimed
// mid-ingest (the re-claimed seq's fresh marker belongs to its new owner
// and is left alone). Duplicates of committed seqs count as hits.
func (d *dedupTable) claim(session uint64, stream string, seq uint64) (claimState, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		d.tick++
		ds := d.sessions[session]
		if ds == nil {
			d.evictOldest()
			ds = &dedupSession{streams: make(map[string]*dedupStream)}
			d.sessions[session] = ds
		}
		ds.lastActive = d.tick
		st := ds.streams[stream]
		if st == nil {
			st = &dedupStream{bits: make([]uint64, d.window/64)}
			ds.streams[stream] = st
		}
		if seq <= st.maxSeq {
			if st.maxSeq-seq >= d.window {
				return claimAged, 0
			}
			idx, mask := st.bit(seq, d.window)
			if st.bits[idx]&mask != 0 {
				d.hits.Add(1)
				return claimApplied, 0
			}
		}
		if _, busy := st.inflight[seq]; !busy {
			if st.inflight == nil {
				st.inflight = make(map[uint64]uint64)
			}
			d.lastToken++
			st.inflight[seq] = d.lastToken
			return claimOwned, d.lastToken
		}
		// Another handler owns this seq right now — typically the old
		// connection's handler still blocked inside the monitor's enqueue
		// when the resend arrived on a new connection. Its settle (or its
		// session's eviction) broadcasts; re-resolve then. Wait releases mu,
		// so the owner is never blocked out of settling.
		d.cond.Wait()
	}
}

// settle resolves a claimOwned seq: the in-flight marker is removed and its
// waiters woken, and — when the ingest was committed — the seq is recorded
// in the window. Advancing past maxSeq clears the bitmap positions the new
// range reuses, so a gap's seqs (never committed) stay reported fresh while
// they remain inside the window.
func (d *dedupTable) settle(session uint64, stream string, seq uint64, token uint64, committed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick++
	ds := d.sessions[session]
	if ds == nil {
		return // session evicted mid-ingest; eviction woke the waiters
	}
	ds.lastActive = d.tick
	st := ds.streams[stream]
	if st == nil {
		return
	}
	if st.inflight[seq] == token {
		delete(st.inflight, seq)
		d.cond.Broadcast()
	}
	if !committed {
		return
	}
	if seq > st.maxSeq {
		if seq-st.maxSeq >= d.window {
			clear(st.bits)
		} else {
			for s := st.maxSeq + 1; s <= seq; s++ {
				idx, mask := st.bit(s, d.window)
				st.bits[idx] &^= mask
			}
		}
		st.maxSeq = seq
	}
	idx, mask := st.bit(seq, d.window)
	st.bits[idx] |= mask
}

// evictOldest drops the least-recently-active session when the table is at
// its cap, waking any handler waiting on one of its in-flight seqs so no
// duplicate is stranded on a marker nobody will settle. Called with d.mu
// held, before inserting a new session.
func (d *dedupTable) evictOldest() {
	if d.maxSessions <= 0 || len(d.sessions) < d.maxSessions {
		return
	}
	var victim uint64
	oldest := uint64(math.MaxUint64)
	for id, s := range d.sessions {
		if s.lastActive < oldest {
			oldest = s.lastActive
			victim = id
		}
	}
	for _, st := range d.sessions[victim].streams {
		if len(st.inflight) > 0 {
			d.cond.Broadcast()
			break
		}
	}
	delete(d.sessions, victim)
}
