// Package chaos is a fault-injecting TCP proxy for driftserver's wire
// protocol: it sits between a client and a server and drops, delays,
// duplicates, fragments, resets, or black-holes traffic on a seeded,
// reproducible schedule. It exists to prove the resilience claims the
// client makes — reconnect with backoff, exactly-once ingest under resend,
// stall detection — against the failure modes real networks actually
// produce, inside ordinary `go test` (see the chaos battery in
// internal/server and the -chaos flags on cmd/monitorbench).
//
// The client→server direction is frame-aware: the proxy reassembles codec
// frames and applies faults per frame, so a "drop" loses exactly one
// request (forcing a reply-stream misalignment the client must detect as a
// protocol violation) and a "duplicate" delivers exactly one extra
// (forcing the server's dedup window to prove itself). The server→client
// direction is a plain byte pipe — reply-side faults are covered by the
// same reconnect path, and resets cut both directions anyway. Fault
// schedules are derived from Config.Seed and the connection's accept
// index, so a failed run replays exactly.
package chaos

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rbmim/internal/codec"
)

// Config selects the faults. The zero value of every fault field is "off":
// a zero Config (plus Target) is a transparent proxy.
type Config struct {
	// Target is the upstream server address ("host:port"). Required.
	Target string
	// Addr is the listen address; empty selects an ephemeral localhost port
	// (read it back from Proxy.Addr).
	Addr string
	// Seed roots every connection's fault schedule. Connection i draws from
	// rand.NewSource(Seed + i*1_000_003), so schedules are independent per
	// connection and the whole run replays from the seed.
	Seed int64
	// Delay pauses that long before forwarding each client frame upstream —
	// added latency, applied after the drop/duplicate decision.
	Delay time.Duration
	// DropRate is the probability a client frame is silently discarded.
	DropRate float64
	// DuplicateRate is the probability a client frame is delivered twice
	// back to back.
	DuplicateRate float64
	// ResetEvery, when > 0, hard-resets each connection (SO_LINGER 0, so the
	// peer sees RST, not FIN) after a number of forwarded frames drawn
	// uniformly from [1, 2*ResetEvery) — mean ResetEvery.
	ResetEvery int
	// BlackholeRate is the probability a connection is black-holed at
	// accept: bytes in both directions are consumed and discarded, the
	// connection stays open, and neither side sees an error — the failure
	// only a stall watchdog can detect.
	BlackholeRate float64
	// FragmentSize, when > 0, splits each forwarded frame into writes of at
	// most that many bytes with the proxy's buffers flushed between them —
	// exercising the server's short-read reassembly.
	FragmentSize int
}

// Stats are cumulative fault counters, all connections combined.
type Stats struct {
	Conns      uint64 // connections accepted
	Frames     uint64 // client frames forwarded (including duplicates)
	Dropped    uint64 // client frames discarded
	Duplicated uint64 // client frames delivered twice
	Resets     uint64 // connections hard-reset
	Blackholed uint64 // connections black-holed at accept
}

// Proxy is a running fault injector; see New.
type Proxy struct {
	cfg Config
	ln  net.Listener

	conns      atomic.Uint64
	frames     atomic.Uint64
	dropped    atomic.Uint64
	duplicated atomic.Uint64
	resets     atomic.Uint64
	blackholed atomic.Uint64

	mu     sync.Mutex
	closed bool
	open   map[net.Conn]struct{}

	wg sync.WaitGroup
}

// New starts a proxy listening on cfg.Addr and forwarding to cfg.Target
// with cfg's faults applied. Close stops it.
func New(cfg Config) (*Proxy, error) {
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, ln: ln, open: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats returns a snapshot of the fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:      p.conns.Load(),
		Frames:     p.frames.Load(),
		Dropped:    p.dropped.Load(),
		Duplicated: p.duplicated.Load(),
		Resets:     p.resets.Load(),
		Blackholed: p.blackholed.Load(),
	}
}

// Close stops accepting, severs every proxied connection, and waits for the
// forwarding goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for nc := range p.open {
		nc.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// track registers a live connection for Close, returning false (and closing
// it) when the proxy is already shut down.
func (p *Proxy) track(nc net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		nc.Close()
		return false
	}
	p.open[nc] = struct{}{}
	return true
}

func (p *Proxy) untrack(nc net.Conn) {
	nc.Close()
	p.mu.Lock()
	delete(p.open, nc)
	p.mu.Unlock()
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		cli, err := p.ln.Accept()
		if err != nil {
			return
		}
		idx := p.conns.Add(1) - 1
		if !p.track(cli) {
			continue
		}
		p.wg.Add(1)
		go p.serve(cli, int64(idx))
	}
}

// serve proxies one client connection: dial upstream, pump server→client
// verbatim, pump client→server frame by frame with faults.
func (p *Proxy) serve(cli net.Conn, idx int64) {
	defer p.wg.Done()
	defer p.untrack(cli)
	rng := rand.New(rand.NewSource(p.cfg.Seed + idx*1_000_003))

	if p.cfg.BlackholeRate > 0 && rng.Float64() < p.cfg.BlackholeRate {
		p.blackholed.Add(1)
		// Swallow everything until the client gives up; never error, never
		// deliver. No upstream connection exists at all.
		io.Copy(io.Discard, cli)
		return
	}

	srv, err := net.Dial("tcp", p.cfg.Target)
	if err != nil {
		return
	}
	if !p.track(srv) {
		return
	}
	defer p.untrack(srv)

	// Replies flow back untouched; when the server side ends, cut the
	// client side too so its reader sees the close promptly.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		io.Copy(cli, srv)
		cli.Close()
	}()

	resetAt := 0
	if p.cfg.ResetEvery > 0 {
		resetAt = 1 + rng.Intn(2*p.cfg.ResetEvery)
	}

	sc := codec.NewFrameScanner(cli)
	var buf []byte
	forwarded := 0
	for {
		kind, payload, err := sc.Next()
		if err != nil {
			return
		}
		if p.cfg.DropRate > 0 && rng.Float64() < p.cfg.DropRate {
			p.dropped.Add(1)
			continue
		}
		if p.cfg.Delay > 0 {
			time.Sleep(p.cfg.Delay)
		}
		buf = codec.AppendFrame(buf[:0], kind, payload)
		writes := 1
		if p.cfg.DuplicateRate > 0 && rng.Float64() < p.cfg.DuplicateRate {
			p.duplicated.Add(1)
			writes = 2
		}
		for ; writes > 0; writes-- {
			if !p.writeFrame(srv, buf) {
				return
			}
			p.frames.Add(1)
			forwarded++
		}
		if resetAt > 0 && forwarded >= resetAt {
			p.reset(cli, srv)
			return
		}
	}
}

// writeFrame forwards one reconstructed frame, fragmented when configured.
func (p *Proxy) writeFrame(srv net.Conn, frame []byte) bool {
	if p.cfg.FragmentSize <= 0 {
		_, err := srv.Write(frame)
		return err == nil
	}
	for len(frame) > 0 {
		n := p.cfg.FragmentSize
		if n > len(frame) {
			n = len(frame)
		}
		if _, err := srv.Write(frame[:n]); err != nil {
			return false
		}
		frame = frame[n:]
	}
	return true
}

// reset kills both sides hard: SO_LINGER 0 makes the close an RST, so the
// client sees a mid-stream connection reset rather than a clean FIN.
func (p *Proxy) reset(cli, srv net.Conn) {
	p.resets.Add(1)
	if tc, ok := cli.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	cli.Close()
	srv.Close()
}
