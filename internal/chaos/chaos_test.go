package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"rbmim/internal/codec"
)

// echoBackend accepts connections and echoes every codec frame back
// verbatim — enough of a server to observe exactly what the proxy
// delivered upstream.
func echoBackend(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				sc := codec.NewFrameScanner(nc)
				var buf []byte
				for {
					kind, payload, err := sc.Next()
					if err != nil {
						return
					}
					buf = codec.AppendFrame(buf[:0], kind, payload)
					if _, err := nc.Write(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func newProxy(t *testing.T, cfg Config) *Proxy {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func frame(payload string) []byte {
	return codec.AppendFrame(nil, 42, []byte(payload))
}

func TestProxyTransparent(t *testing.T) {
	ln := echoBackend(t)
	p := newProxy(t, Config{Target: ln.Addr().String(), Seed: 1})
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	sc := codec.NewFrameScanner(nc)
	for i := 0; i < 10; i++ {
		if _, err := nc.Write(frame("hello")); err != nil {
			t.Fatal(err)
		}
		kind, payload, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if kind != 42 || !bytes.Equal(payload, []byte("hello")) {
			t.Fatalf("echo %d: kind=%d payload=%q", i, kind, payload)
		}
	}
	st := p.Stats()
	if st.Frames != 10 || st.Dropped != 0 || st.Conns != 1 {
		t.Fatalf("stats %+v, want 10 frames, 0 dropped, 1 conn", st)
	}
}

func TestProxyFragmented(t *testing.T) {
	ln := echoBackend(t)
	p := newProxy(t, Config{Target: ln.Addr().String(), Seed: 1, FragmentSize: 3})
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	sc := codec.NewFrameScanner(nc)
	if _, err := nc.Write(frame("fragmented payload")); err != nil {
		t.Fatal(err)
	}
	_, payload, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, []byte("fragmented payload")) {
		t.Fatalf("payload %q corrupted by fragmentation", payload)
	}
}

func TestProxyDropAndDuplicate(t *testing.T) {
	ln := echoBackend(t)
	p := newProxy(t, Config{Target: ln.Addr().String(), Seed: 1, DuplicateRate: 1})
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	sc := codec.NewFrameScanner(nc)
	if _, err := nc.Write(frame("dup")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, payload, err := sc.Next(); err != nil || !bytes.Equal(payload, []byte("dup")) {
			t.Fatalf("duplicate echo %d: payload=%q err=%v", i, payload, err)
		}
	}
	if st := p.Stats(); st.Duplicated != 1 || st.Frames != 2 {
		t.Fatalf("stats %+v, want 1 duplicated / 2 frames", st)
	}

	pd := newProxy(t, Config{Target: ln.Addr().String(), Seed: 1, DropRate: 1})
	nc2, err := net.Dial("tcp", pd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	if _, err := nc2.Write(frame("gone")); err != nil {
		t.Fatal(err)
	}
	nc2.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, _, err := codec.NewFrameScanner(nc2).Next(); err == nil {
		t.Fatal("frame survived DropRate=1")
	}
	if st := pd.Stats(); st.Dropped != 1 {
		t.Fatalf("stats %+v, want 1 dropped", st)
	}
}

func TestProxyReset(t *testing.T) {
	ln := echoBackend(t)
	p := newProxy(t, Config{Target: ln.Addr().String(), Seed: 7, ResetEvery: 2})
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	sc := codec.NewFrameScanner(nc)
	// The reset point is drawn from [1, 4); at most 3 frames survive before
	// the connection dies with an error (RST or a cut mid-read).
	var readErr error
	for i := 0; i < 10; i++ {
		if _, err := nc.Write(frame("tick")); err != nil {
			readErr = err
			break
		}
		if _, _, err := sc.Next(); err != nil {
			readErr = err
			break
		}
	}
	if readErr == nil {
		t.Fatal("connection survived 10 frames with ResetEvery=2")
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("stats %+v, want 1 reset", st)
	}
}

func TestProxyBlackhole(t *testing.T) {
	ln := echoBackend(t)
	p := newProxy(t, Config{Target: ln.Addr().String(), Seed: 1, BlackholeRate: 1})
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Writes succeed (the proxy consumes them) but nothing ever comes back
	// and no error surfaces — the stall-watchdog scenario.
	if _, err := nc.Write(frame("void")); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("blackholed connection delivered bytes")
	} else if !isTimeout(err) {
		t.Fatalf("blackholed read failed with %v, want timeout", err)
	}
	if st := p.Stats(); st.Blackholed != 1 {
		t.Fatalf("stats %+v, want 1 blackholed", st)
	}
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

func TestProxyDeterministicSchedule(t *testing.T) {
	ln := echoBackend(t)
	counts := make([]uint64, 2)
	for run := 0; run < 2; run++ {
		p := newProxy(t, Config{Target: ln.Addr().String(), Seed: 99, DropRate: 0.5})
		nc, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if _, err := nc.Write(frame("coin")); err != nil {
				t.Fatal(err)
			}
		}
		// Drain whatever survived so the writes are fully processed before
		// reading the counters.
		nc.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		io.Copy(io.Discard, nc)
		nc.Close()
		counts[run] = p.Stats().Dropped
		p.Close()
	}
	if counts[0] != counts[1] || counts[0] == 0 || counts[0] == 64 {
		t.Fatalf("drop schedule not deterministic or degenerate: %v", counts)
	}
}
